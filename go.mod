module nasaic

go 1.24
