// Heterogeneous: the Table II study (§V-D) — on the homogeneous CIFAR-10
// workload W3, quantify the benefit of going from a single accelerator to
// homogeneous sub-accelerators to NASAIC's heterogeneous design.
//
//	go run ./examples/heterogeneous [-paper]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nasaic/internal/experiments"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's full search budget (slower)")
	flag.Parse()

	b := experiments.QuickBudget()
	if *paper {
		b = experiments.PaperBudget()
	}

	fmt.Println("Single vs homogeneous vs heterogeneous accelerators on W3")
	fmt.Println("(CIFAR-10 x2, specs <4e5 cycles, 1e9 nJ, 4e9 um2>)")
	fmt.Println()
	rows, stats, err := experiments.Table2(context.Background(), b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.RenderTable2(os.Stdout, rows)
	fmt.Printf("\nevaluator work: %d hardware evaluations for %d requests (%.1f%% cache hits, %d in-batch dedups)\n",
		stats.HWEvals, stats.HWRequests, stats.HitPct(), stats.HWDeduped)

	fmt.Println()
	fmt.Println("Reading the table bottom-up: spec-blind NAS reaches the highest")
	fmt.Println("accuracy but violates the specs even with every PE in the budget;")
	fmt.Println("a single accelerator must run the network twice and is capped by")
	fmt.Println("the halved per-run budget; homogeneous sub-accelerators restore")
	fmt.Println("task parallelism; and the heterogeneous NASAIC design pairs each")
	fmt.Println("network with the dataflow that fits it, reaching the best accuracy")
	fmt.Println("while meeting every spec — with two distinct networks usable for")
	fmt.Println("ensemble inference [31].")
}
