// Costmodel: reproduce the dataflow-affinity observation that motivates
// heterogeneous accelerators (§II, Challenge 2): the NVDLA-style template
// favors convolution layers with many channels and low resolution (ResNet
// bodies), while the Shidiannao-style template favors shallow high-resolution
// layers (U-Net encoders/decoders); row-stationary sits in between.
//
//	go run ./examples/costmodel
package main

import (
	"fmt"
	"os"

	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/export"
	"nasaic/internal/maestro"
)

func main() {
	cfg := maestro.DefaultConfig()
	const pes, bw = 1024, 32

	layers := []dnn.Layer{
		// U-Net regime: few channels, huge maps.
		{Name: "unet-enc1", Op: dnn.Conv, K: 16, C: 16, R: 3, S: 3, X: 128, Y: 128, Stride: 1},
		{Name: "unet-enc2", Op: dnn.Conv, K: 32, C: 32, R: 3, S: 3, X: 64, Y: 64, Stride: 1},
		// Transition regime.
		{Name: "mid-conv", Op: dnn.Conv, K: 64, C: 64, R: 3, S: 3, X: 32, Y: 32, Stride: 1},
		// ResNet regime: many channels, small maps.
		{Name: "resnet-b2", Op: dnn.Conv, K: 256, C: 128, R: 3, S: 3, X: 16, Y: 16, Stride: 1},
		{Name: "resnet-b3", Op: dnn.Conv, K: 256, C: 256, R: 3, S: 3, X: 8, Y: 8, Stride: 1},
		// Classifier.
		{Name: "fc", Op: dnn.FC, K: 10, C: 256, R: 1, S: 1, X: 1, Y: 1, Stride: 1},
	}

	fmt.Printf("per-layer latency in cycles on a %d-PE, %d GB/s sub-accelerator\n", pes, bw)
	fmt.Println("(winner per row in the last column)")
	header := []string{"layer", "shape KxC @XxY", "shi", "dla", "rs", "winner"}
	var rows [][]string
	for _, l := range layers {
		cyc := map[dataflow.Style]int64{}
		for _, s := range dataflow.AllStyles {
			cyc[s] = cfg.LayerCost(l, s, pes, bw).Cycles
		}
		winner := dataflow.Shidiannao
		for _, s := range dataflow.AllStyles {
			if cyc[s] < cyc[winner] {
				winner = s
			}
		}
		rows = append(rows, []string{
			l.Name,
			fmt.Sprintf("%dx%d @%dx%d", l.K, l.C, l.X, l.Y),
			export.Sci(float64(cyc[dataflow.Shidiannao])),
			export.Sci(float64(cyc[dataflow.NVDLA])),
			export.Sci(float64(cyc[dataflow.RowStationary])),
			winner.String(),
		})
	}
	export.Table(os.Stdout, header, rows)

	// Whole-network view: the same affinity at network granularity.
	fmt.Println("\nwhole-network serial latency (cycles) per dataflow:")
	resnet, err := dnn.BuildResNet(dnn.ResNetConfig{
		Name: "resnet9", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0: 32, Blocks: []dnn.ResBlock{{FN: 128, SK: 2}, {FN: 256, SK: 2}, {FN: 256, SK: 2}},
	})
	if err != nil {
		panic(err)
	}
	unetShallow, err := dnn.BuildUNet(dnn.UNetConfig{
		Name: "unet-h3", InputX: 128, InputY: 128, InputC: 3, OutC: 1,
		FN: []int{8, 16, 32},
	})
	if err != nil {
		panic(err)
	}
	unetDeep, err := dnn.BuildUNet(dnn.UNetConfig{
		Name: "unet-h5", InputX: 128, InputY: 128, InputC: 3, OutC: 1,
		FN: []int{16, 32, 64, 128, 256},
	})
	if err != nil {
		panic(err)
	}
	header2 := []string{"network", "shi", "dla", "rs", "winner"}
	var rows2 [][]string
	for _, n := range []*dnn.Network{resnet, unetShallow, unetDeep} {
		cyc := map[dataflow.Style]int64{}
		for _, s := range dataflow.AllStyles {
			cyc[s] = cfg.NetworkCost(n, s, pes, bw).Cycles
		}
		winner := dataflow.Shidiannao
		for _, s := range dataflow.AllStyles {
			if cyc[s] < cyc[winner] {
				winner = s
			}
		}
		rows2 = append(rows2, []string{
			n.Name,
			export.Sci(float64(cyc[dataflow.Shidiannao])),
			export.Sci(float64(cyc[dataflow.NVDLA])),
			export.Sci(float64(cyc[dataflow.RowStationary])),
			winner.String(),
		})
	}
	export.Table(os.Stdout, header2, rows2)
	fmt.Println("\nNVDLA wins the ResNet; Shidiannao wins the shallow U-Net. The deep")
	fmt.Println("U-Net mixes both regimes — its encoder/decoder favor Shidiannao while")
	fmt.Println("its bottleneck favors NVDLA — which is why NASAIC both searches")
	fmt.Println("heterogeneous sub-accelerator combinations and maps individual layers")
	fmt.Println("onto the sub-accelerator whose dataflow fits them (§IV-③).")
}
