// Multitask: the paper's motivating AR-glasses scenario (§I, §V-A) — one
// device concurrently runs an image-classification DNN and a medical-image
// segmentation DNN under a single latency/energy/area budget (workload W1).
//
// The example runs a compact NASAIC co-exploration and contrasts the result
// with the successive NAS→ASIC flow to show why co-exploration matters.
//
//	go run ./examples/multitask [-episodes 150]
package main

import (
	"context"
	"flag"
	"fmt"

	"nasaic/internal/core"
	"nasaic/internal/export"
	"nasaic/internal/search"
	"nasaic/internal/workload"
)

func main() {
	episodes := flag.Int("episodes", 150, "NASAIC exploration episodes")
	flag.Parse()

	w := workload.W1()
	fmt.Printf("AR-glasses workload %s: %s + %s under specs %s\n\n",
		w.Name, w.Tasks[0].Dataset, w.Tasks[1].Dataset, w.Specs)

	cfg := core.DefaultConfig()
	cfg.Episodes = *episodes
	cfg.Seed = 1

	// The successive flow: accuracy-only NAS, then brute-force hardware
	// search for the chosen networks.
	fmt.Println("1) successive NAS -> ASIC (the paper's strawman):")
	nas, err := search.NASToASIC(context.Background(), w, cfg, 150, 300)
	if err != nil {
		panic(err)
	}
	printOutcome(w, nas.Design.String(), nas.Accuracies, nas.Latency, nas.EnergyNJ, nas.AreaUM2, nas.Feasible)

	// The co-exploration flow.
	fmt.Printf("\n2) NASAIC co-exploration (%d episodes):\n", cfg.Episodes)
	x, err := core.New(w, cfg)
	if err != nil {
		panic(err)
	}
	res := x.Run()
	if res.Best == nil {
		fmt.Println("   no feasible solution found — raise -episodes")
		return
	}
	b := res.Best
	printOutcome(w, b.Design.String(), b.Accuracies, b.Latency, b.EnergyNJ, b.AreaUM2, true)
	fmt.Printf("\n   explored %d feasible co-designs, pruned %d episodes without\n",
		len(res.Explored), res.Pruned)
	fmt.Printf("   feasible hardware before training (early pruning, §IV-2)\n")

	if !nas.Feasible {
		fmt.Printf("\nco-exploration met the specs the successive flow missed, keeping\n")
		fmt.Printf("accuracy within %.2f points of the unconstrained networks.\n",
			100*((nas.Accuracies[0]+nas.Accuracies[1])-(b.Accuracies[0]+b.Accuracies[1]))/2)
	}
}

func printOutcome(w workload.Workload, design string, accs []float64, lat int64, e, a float64, ok bool) {
	fmt.Printf("   accelerator %s\n", design)
	for i, t := range w.Tasks {
		fmt.Printf("   %-10s %s = %s\n", t.Dataset.String(), t.Dataset.Metric(), export.Pct(accs[i]))
	}
	fmt.Printf("   latency %s  energy %s  area %s  -> %s\n",
		export.Sci(float64(lat)), export.Sci(e), export.Sci(a), export.Mark(ok))
}
