// Quickstart: run a NASAIC co-exploration through the public pkg/nasaic
// API — submit a small deterministic search, stream per-episode progress,
// and inspect the best (architectures, accelerator) pair it found.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"nasaic/pkg/nasaic"
)

func main() {
	// A deadline bounds the whole exploration; cancellation is prompt and
	// goroutine-leak-free, and a cancelled run still returns the partial
	// result accumulated so far.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fmt.Println("available workloads:")
	for _, w := range nasaic.Workloads() {
		fmt.Printf("  %-3s specs %s  tasks %v\n", w.Name, w.Specs, w.Tasks)
	}

	// Stream progress: one event per episode with the reward and the
	// best-so-far solution.
	onEvent := func(e nasaic.Event) {
		if e.Episode%10 != 0 {
			return
		}
		best := "none yet"
		if e.Best != nil {
			best = fmt.Sprintf("%.4f weighted accuracy", e.Best.WeightedAccuracy)
		}
		fmt.Printf("episode %3d  reward %+.3f  best so far: %s\n", e.Episode, e.Reward, best)
	}

	fmt.Println("\nexploring W3 (CIFAR-10 x2) ...")
	res, err := nasaic.Run(ctx,
		nasaic.WithWorkload("W3"),
		nasaic.WithEpisodes(60), // quick demo; the paper uses 500
		nasaic.WithSeed(1),      // runs are deterministic per seed
		nasaic.WithEventHandler(onEvent),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.Best == nil {
		fmt.Println("no feasible solution found — try more episodes")
		return
	}

	best := res.Best
	fmt.Printf("\nbest solution (episode %d):\n", best.Episode)
	fmt.Printf("  accelerator %s\n", best.Design)
	for _, task := range best.Tasks {
		fmt.Printf("  %-14s %s = %.2f%%  arch %s\n",
			task.Dataset, task.Metric, 100*task.Accuracy, task.Architecture)
	}
	fmt.Printf("  latency %d cycles, energy %.3g nJ, area %.3g um2 (specs %s)\n",
		best.LatencyCycles, best.EnergyNJ, best.AreaUM2, res.Specs)
	fmt.Printf("  %d feasible solutions explored, %d episodes pruned, %.1f%% hw-eval cache hits\n",
		len(res.Explored), res.Stats.PrunedEpisodes, res.Stats.HWCacheHitPct())

	// The HAP schedule behind the best solution, as a Gantt chart.
	fmt.Println("\nlayer-to-sub-accelerator schedule:")
	if err := res.RenderSchedule(os.Stdout, 88); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
