// Quickstart: evaluate one (neural architecture, accelerator design) pair
// end to end — the core operation inside NASAIC's evaluator.
//
// It builds the paper's best-reported CIFAR-10 ResNet-9, pairs it with a
// two-sub-accelerator heterogeneous design, and reports per-layer mapping,
// the scheduled latency/energy/area, and the predicted accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"nasaic/internal/accel"
	"nasaic/internal/core"
	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/export"
	"nasaic/internal/predictor"
	"nasaic/internal/workload"
)

func main() {
	// 1. A network from the paper's search space: Table II's NAS optimum
	//    <32, 128, 2, 256, 2, 256, 2>.
	net, err := dnn.BuildResNet(dnn.ResNetConfig{
		Name: "resnet9-cifar10", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0: 32,
		Blocks: []dnn.ResBlock{
			{FN: 128, SK: 2}, {FN: 256, SK: 2}, {FN: 256, SK: 2},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(net)
	fmt.Printf("predicted CIFAR-10 accuracy: %s\n\n",
		export.Pct(predictor.Accuracy(predictor.CIFAR10, net)))

	// 2. A heterogeneous accelerator: an NVDLA-style and a Shidiannao-style
	//    sub-accelerator sharing the 4096-PE / 64 GB/s budget (§III-➋).
	design := accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 2112, BW: 48},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 1984, BW: 16},
	)
	if err := design.Validate(accel.DefaultLimits()); err != nil {
		panic(err)
	}
	fmt.Printf("accelerator: %s\n\n", design)

	// 3. Per-layer costs on each sub-accelerator (the HAP cost table).
	cost := core.DefaultConfig().Cost
	fmt.Println("per-layer cost table (cycles / nJ):")
	header := []string{"layer", design.Subs[0].String(), design.Subs[1].String()}
	var rows [][]string
	for _, l := range net.ComputeLayers() {
		row := []string{l.Name}
		for _, s := range design.Subs {
			lc := cost.LayerCost(l, s.DF, s.PEs, s.BW)
			row = append(row, fmt.Sprintf("%s / %s", export.Sci(float64(lc.Cycles)), export.Sci(lc.EnergyNJ)))
		}
		rows = append(rows, row)
	}
	export.Table(os.Stdout, header, rows)

	// 4. Where does the energy go? Per-level breakdown of the heaviest layer
	//    on each sub-accelerator.
	heaviest := net.ComputeLayers()[0]
	for _, l := range net.ComputeLayers() {
		if l.MACs() > heaviest.MACs() {
			heaviest = l
		}
	}
	fmt.Printf("\nenergy breakdown of %s (nJ):\n", heaviest.Name)
	bh := []string{"sub-accelerator", "MAC", "RF", "NoC", "GB", "DRAM", "total"}
	var brows [][]string
	for _, s := range design.Subs {
		bd := cost.EnergyBreakdown(heaviest, s.DF, s.PEs, s.BW)
		brows = append(brows, []string{
			s.String(),
			export.Sci(bd.MACNJ), export.Sci(bd.RFNJ), export.Sci(bd.NoCNJ),
			export.Sci(bd.GBNJ), export.Sci(bd.DRAMNJ), export.Sci(bd.Total()),
		})
	}
	export.Table(os.Stdout, bh, brows)

	// 5. Full evaluation against W3's specs via the mapper/scheduler.
	w := workload.W3()
	e, err := core.NewEvaluator(w, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	m := e.HWEval([]*dnn.Network{net, net}, design)
	fmt.Printf("\nscheduled on the accelerator (both W3 task instances):\n")
	fmt.Printf("  latency %s cycles, energy %s nJ, area %s um2\n",
		export.Sci(float64(m.Latency)), export.Sci(m.EnergyNJ), export.Sci(m.AreaUM2))
	fmt.Printf("  specs %s -> %s (penalty %.3f)\n", w.Specs, export.Mark(m.Feasible), e.Penalty(m))
}
