// Package nasaic is a from-scratch Go reproduction of "Co-Exploration of
// Neural Architectures and Heterogeneous ASIC Accelerator Designs Targeting
// Multiple Tasks" (Yang et al., DAC 2020, arXiv:2002.04116).
//
// The root package only anchors the module and the benchmark harness in
// bench_test.go. The public, context-first library API lives in pkg/nasaic
// (Run with functional options, streaming per-episode events, prompt
// cancellation); the engine lives under internal/ (see DESIGN.md for the
// system inventory); the runnable entry points are cmd/nasaic, cmd/compare
// and cmd/dse (CLIs over the public API), cmd/nasaicd (the HTTP job
// service), and examples/.
package nasaic
