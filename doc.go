// Package nasaic is a from-scratch Go reproduction of "Co-Exploration of
// Neural Architectures and Heterogeneous ASIC Accelerator Designs Targeting
// Multiple Tasks" (Yang et al., DAC 2020, arXiv:2002.04116).
//
// The root package only anchors the module and the benchmark harness in
// bench_test.go; the implementation lives under internal/ (see DESIGN.md for
// the system inventory) and the runnable entry points under cmd/ and
// examples/.
package nasaic
