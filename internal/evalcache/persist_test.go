package evalcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nasaic/internal/cachefile"
)

// fillCache populates a cache with n deterministic float-bearing values.
func fillCache(c *Cache[float64], n int) {
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("net%d|<dla, %d, %d>", i, 32*(i%129), 8*(i%9)), float64(i)*1.0000000000000002/3)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.cache")
	const key = "cfg-v1"

	c1 := New[float64](Options{Capacity: 1 << 10, Shards: 8})
	fillCache(c1, 300)
	if err := SaveFile(c1, path, key); err != nil {
		t.Fatal(err)
	}

	c2 := New[float64](Options{Capacity: 1 << 10, Shards: 8})
	n, err := LoadFile(c2, path, key)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("loaded %d entries, want 300", n)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("net%d|<dla, %d, %d>", i, 32*(i%129), 8*(i%9))
		want := float64(i) * 1.0000000000000002 / 3
		got, ok := c2.Get(k)
		if !ok {
			t.Fatalf("key %q missing after reload", k)
		}
		if got != want {
			t.Fatalf("key %q: value %v != saved %v (bit-exactness violated)", k, got, want)
		}
	}

	// Save → load → save must be byte-identical: Entries snapshots per-shard
	// LRU order, the shard hash is stable, and replaying Put reconstructs the
	// same recency — so the warm tier is a fixpoint.
	path2 := filepath.Join(dir, "c2.cache")
	if err := SaveFile(c2, path2, key); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("save/load/save produced a different snapshot file")
	}
}

func TestLoadMissingFileIsColdStart(t *testing.T) {
	c := New[float64](Options{})
	n, err := LoadFile(c, filepath.Join(t.TempDir(), "absent.cache"), "k")
	if err == nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v, want 0 and an error", n, err)
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty after failed load: %d entries", c.Len())
	}
}

// Every damaged or mismatched file must load nothing and leave the cache
// fully usable — the warm tier degrades to cold, never crashes or serves
// garbage.
func TestLoadFailureModesAreCold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.cache")
	const key = "cfg-v1"
	src := New[float64](Options{Capacity: 1 << 10, Shards: 4})
	fillCache(src, 64)
	if err := SaveFile(src, path, key); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func() []byte
		loadKey string
		wantErr error
	}{
		{"truncated", func() []byte { return good[:len(good)/2] }, key, cachefile.ErrCorrupt},
		{"flipped byte", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/2] ^= 0x40
			return b
		}, key, nil}, // any sentinel is fine; must just fail
		{"config mismatch", func() []byte { return good }, "cfg-v2", cachefile.ErrConfig},
		{"gob garbage", func() []byte {
			return cachefile.Encode(Kind, key, []byte("not gob"))
		}, key, cachefile.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".cache")
			if err := os.WriteFile(p, tc.mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			c := New[float64](Options{})
			n, err := LoadFile(c, p, tc.loadKey)
			if err == nil {
				t.Fatal("damaged file loaded without error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if n != 0 || c.Len() != 0 {
				t.Fatalf("cold start violated: n=%d len=%d", n, c.Len())
			}
			// The cache must stay fully usable after the failed load.
			c.Put("k", 1.5)
			if v, ok := c.Get("k"); !ok || v != 1.5 {
				t.Fatal("cache unusable after failed load")
			}
		})
	}
}

// Loading into a warm cache refreshes existing keys without inflating Len.
func TestLoadIntoWarmCacheKeepsLenExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.cache")
	src := New[float64](Options{Capacity: 1 << 10, Shards: 4})
	fillCache(src, 50)
	if err := SaveFile(src, path, "k"); err != nil {
		t.Fatal(err)
	}
	dst := New[float64](Options{Capacity: 1 << 10, Shards: 4})
	fillCache(dst, 30) // overlapping prefix
	if _, err := LoadFile(dst, path, "k"); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Len(), 50; got != want {
		t.Fatalf("Len after overlapping load = %d, want %d", got, want)
	}
	if got, want := dst.Len(), dst.lenScan(); got != want {
		t.Fatalf("Len counter %d diverged from scan %d", got, want)
	}
}

// The O(1) Len counter must track the locked full-shard scan exactly through
// inserts, hits, overwrites and evictions.
func TestLenCounterMatchesScan(t *testing.T) {
	c := New[float64](Options{Capacity: 64, Shards: 4})
	check := func(stage string) {
		t.Helper()
		if got, want := c.Len(), c.lenScan(); got != want {
			t.Fatalf("%s: Len() = %d, scan = %d", stage, got, want)
		}
	}
	check("empty")
	for i := 0; i < 200; i++ { // far past capacity: evictions must decrement
		c.Put(fmt.Sprintf("k%d", i), float64(i))
	}
	check("after evicting inserts")
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i%10), float64(i)) // overwrites
		c.Get(fmt.Sprintf("k%d", i))
		c.GetOrCompute(fmt.Sprintf("g%d", i%7), func() float64 { return 1 })
	}
	check("after mixed traffic")
	if c.Len() > 64 {
		t.Fatalf("Len %d exceeds capacity 64", c.Len())
	}
}
