package evalcache

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"nasaic/internal/cachefile"
)

// Kind is the cachefile payload discriminator of persisted evalcache
// snapshots.
const Kind = "evalcache"

// Entry is one persisted key/value pair.
type Entry[V any] struct {
	Key string
	Val V
}

// Entries snapshots the resident entries in least-to-most recently used
// order per shard, so replaying them through Put reconstructs each shard's
// LRU recency. The snapshot is taken shard by shard: concurrent writers can
// add entries the snapshot misses, which only means they are recomputed
// after a reload — never that a stale value is served.
func (c *Cache[V]) Entries() []Entry[V] {
	var out []Entry[V]
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry[V])
			out = append(out, Entry[V]{Key: e.key, Val: e.val})
		}
		s.mu.Unlock()
	}
	return out
}

// SaveFile atomically writes the cache's resident entries to path under the
// given config key (the canonical fingerprint of everything parameterizing
// the cached computation; see cachefile). The values are gob-encoded, which
// round-trips float64s bit-exactly — a reloaded entry is indistinguishable
// from a recomputed one.
func SaveFile[V any](c *Cache[V], path, configKey string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.Entries()); err != nil {
		return fmt.Errorf("evalcache: encode snapshot: %w", err)
	}
	return cachefile.WriteFile(path, Kind, configKey, buf.Bytes())
}

// LoadFile loads a snapshot written by SaveFile into c, returning the number
// of entries inserted. A missing, torn, corrupt, stale-versioned or
// differently-configured file returns an error and loads nothing — callers
// treat every failure as a cold start. Loading into a non-empty cache is
// safe: existing keys are refreshed with the (identical) stored value.
func LoadFile[V any](c *Cache[V], path, configKey string) (int, error) {
	payload, err := cachefile.ReadFile(path, Kind, configKey)
	if err != nil {
		return 0, err
	}
	var entries []Entry[V]
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entries); err != nil {
		return 0, fmt.Errorf("%w: gob payload: %v", cachefile.ErrCorrupt, err)
	}
	for _, e := range entries {
		c.Put(e.Key, e.Val)
	}
	return len(entries), nil
}
