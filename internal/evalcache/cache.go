package evalcache

import (
	"container/list"
	"sync"

	"nasaic/internal/stats"
)

// Default sizing. A full paper-budget NASAIC run touches ~5,500 distinct
// (architectures, design) points, so the default capacity holds several runs
// without eviction while bounding worst-case memory.
const (
	DefaultCapacity = 1 << 14
	DefaultShards   = 16
)

// Options configures a Cache.
type Options struct {
	// Capacity is the total entry budget across all shards; <=0 selects
	// DefaultCapacity. The budget is split evenly per shard, rounding up so
	// the effective capacity is never below the requested one; it can exceed
	// it by at most N-1 entries, where N is the power-of-two-rounded shard
	// count (each shard holds at least 1).
	Capacity int
	// Shards is the number of independently locked segments; <=0 selects
	// DefaultShards. Rounded up to a power of two.
	Shards int
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 // lookups served from a resident entry
	Misses    int64 // lookups that ran the compute function
	Dedups    int64 // lookups that waited on another caller's in-flight compute
	Evictions int64 // entries dropped by the LRU policy
	Size      int   // resident entries at snapshot time
}

// Requests returns the total number of lookups observed.
func (s Stats) Requests() int64 { return s.Hits + s.Misses + s.Dedups }

// HitPct returns the percentage of lookups that avoided a computation
// (resident hits plus in-flight dedups), or 0 with no traffic.
func (s Stats) HitPct() float64 {
	return stats.Pct(s.Hits+s.Dedups, s.Requests())
}

// entry is one resident key/value pair; stored in the shard's LRU list.
type entry[V any] struct {
	key string
	val V
}

// call tracks one in-flight computation other callers can wait on.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	ok  bool // false when the compute function panicked
}

type shard[V any] struct {
	// mu is on the hot path of every hardware evaluation: no IO and no
	// fsync may ever run under it (enforced by nasaiclint); singleflight
	// computes run with the shard lock released.
	mu       sync.Mutex //lint:guard journal,io
	capacity int
	items    map[string]*list.Element // key → *entry element in ll
	ll       *list.List               // front = most recently used
	inflight map[string]*call[V]
}

// Cache is a sharded LRU memoization cache keyed by canonical strings.
// All methods are safe for concurrent use.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint64

	hits      stats.Counter
	misses    stats.Counter
	dedups    stats.Counter
	evictions stats.Counter
	size      stats.Counter // resident entries across all shards
}

// New builds a cache with the given options.
func New[V any](opts Options) *Cache[V] {
	capTotal := opts.Capacity
	if capTotal <= 0 {
		capTotal = DefaultCapacity
	}
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round the shard count up to a power of two so selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	perShard := (capTotal + pow - 1) / pow
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{shards: make([]*shard[V], pow), mask: uint64(pow - 1)}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			capacity: perShard,
			items:    make(map[string]*list.Element),
			ll:       list.New(),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

// shardFor hashes the key (FNV-1a, 64-bit) onto a shard.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h&c.mask]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry[V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry of the
// key's shard when that shard is at capacity.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.putLocked(s, key, val)
}

func (c *Cache[V]) putLocked(s *shard[V], key string, val V) {
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry[V]{key: key, val: val})
	c.size.Inc()
	if s.ll.Len() > s.capacity {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*entry[V]).key)
		c.evictions.Inc()
		c.size.Add(-1)
	}
}

// GetOrCompute returns the value for key, running compute on a miss. The
// returned flag reports whether this call avoided the computation: true for
// a resident hit or a wait on another caller's in-flight compute, false when
// this call ran compute itself. Concurrent callers that miss on the same key
// share a single computation (singleflight); if compute panics, the panic
// propagates to the computing caller and waiters retry.
func (c *Cache[V]) GetOrCompute(key string, compute func() V) (V, bool) {
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if el, ok := s.items[key]; ok {
			s.ll.MoveToFront(el)
			c.hits.Inc()
			v := el.Value.(*entry[V]).val
			s.mu.Unlock()
			return v, true
		}
		if cl, ok := s.inflight[key]; ok {
			c.dedups.Inc()
			s.mu.Unlock()
			cl.wg.Wait()
			if cl.ok {
				return cl.val, true
			}
			// The computing caller panicked; race to recompute.
			continue
		}
		cl := &call[V]{}
		cl.wg.Add(1)
		s.inflight[key] = cl
		c.misses.Inc()
		s.mu.Unlock()

		func() {
			defer func() {
				s.mu.Lock()
				if cl.ok {
					c.putLocked(s, key, cl.val)
				}
				delete(s.inflight, key)
				s.mu.Unlock()
				cl.wg.Done()
			}()
			cl.val = compute()
			cl.ok = true
		}()
		return cl.val, false
	}
}

// GetOrComputeErr is GetOrCompute for fallible computations (typically ones
// that honour a context): when compute returns an error, nothing is cached,
// the error is returned to the computing caller, and waiters retry with their
// own compute function — mirroring the panic semantics of GetOrCompute. The
// flag reports whether this call avoided running compute itself.
func (c *Cache[V]) GetOrComputeErr(key string, compute func() (V, error)) (V, bool, error) {
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if el, ok := s.items[key]; ok {
			s.ll.MoveToFront(el)
			c.hits.Inc()
			v := el.Value.(*entry[V]).val
			s.mu.Unlock()
			return v, true, nil
		}
		if cl, ok := s.inflight[key]; ok {
			c.dedups.Inc()
			s.mu.Unlock()
			cl.wg.Wait()
			if cl.ok {
				return cl.val, true, nil
			}
			// The computing caller failed or panicked; race to recompute
			// (a caller whose own context is done fails fast in compute).
			continue
		}
		cl := &call[V]{}
		cl.wg.Add(1)
		s.inflight[key] = cl
		c.misses.Inc()
		s.mu.Unlock()

		var err error
		func() {
			defer func() {
				s.mu.Lock()
				if cl.ok {
					c.putLocked(s, key, cl.val)
				}
				delete(s.inflight, key)
				s.mu.Unlock()
				cl.wg.Done()
			}()
			cl.val, err = compute()
			cl.ok = err == nil
		}()
		return cl.val, false, err
	}
}

// Len returns the number of resident entries. It reads a running atomic
// counter maintained by insert/evict, so it is O(1) — safe to call on hot
// paths like per-episode stats snapshots — rather than locking every shard.
func (c *Cache[V]) Len() int {
	return int(c.size.Value())
}

// lenScan counts resident entries by locking and walking every shard — the
// O(shards) ground truth the Len counter is regression-tested against.
func (c *Cache[V]) lenScan() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Dedups:    c.dedups.Value(),
		Evictions: c.evictions.Value(),
		Size:      c.Len(),
	}
}

// NumShards returns the shard count after power-of-two rounding.
func (c *Cache[V]) NumShards() int { return len(c.shards) }

// shardLens reports per-shard entry counts (test hook for distribution).
func (c *Cache[V]) shardLens() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.ll.Len()
		s.mu.Unlock()
	}
	return out
}
