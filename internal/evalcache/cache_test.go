package evalcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewRoundsAndSizes(t *testing.T) {
	cases := []struct {
		name       string
		opts       Options
		wantShards int
	}{
		{"defaults", Options{}, DefaultShards},
		{"power-of-two kept", Options{Shards: 8}, 8},
		{"rounded up", Options{Shards: 5}, 8},
		{"single shard", Options{Shards: 1}, 1},
		{"tiny capacity still holds one entry per shard", Options{Capacity: 2, Shards: 16}, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New[int](tc.opts)
			if got := c.NumShards(); got != tc.wantShards {
				t.Fatalf("NumShards = %d, want %d", got, tc.wantShards)
			}
			c.Put("k", 1)
			if v, ok := c.Get("k"); !ok || v != 1 {
				t.Fatalf("Get after Put = (%d, %v), want (1, true)", v, ok)
			}
		})
	}
}

// Keys must spread across shards: with many random-ish keys no shard may
// stay empty and no shard may hold the bulk of the population.
func TestShardDistribution(t *testing.T) {
	c := New[int](Options{Capacity: 1 << 14, Shards: 16})
	const n = 4096
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("net%d|<dla, %d, %d>", i, 32*(i%129), 8*(i%9)), i)
	}
	lens := c.shardLens()
	total := 0
	for si, l := range lens {
		total += l
		if l == 0 {
			t.Errorf("shard %d is empty after %d inserts", si, n)
		}
		if l > n/4 {
			t.Errorf("shard %d holds %d of %d entries: hashing is skewed", si, l, n)
		}
	}
	if total != n {
		t.Fatalf("resident entries = %d, want %d", total, n)
	}
}

func TestLRUEvictionAtCapacity(t *testing.T) {
	// One shard makes the recency order deterministic and observable.
	c := New[int](Options{Capacity: 3, Shards: 1})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch "a" so "b" becomes least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("Evictions = %d, want 1", ev)
	}
	// Re-putting an existing key refreshes in place, never grows past cap.
	c.Put("c", 33)
	if v, _ := c.Get("c"); v != 33 {
		t.Errorf("refresh lost: c = %d, want 33", v)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len after refresh = %d, want 3", got)
	}
}

// Concurrent mixed get/put/GetOrCompute over a shared key range; correctness
// is checked by -race plus value integrity (a key always maps to its own
// deterministic value).
func TestConcurrentMixedAccess(t *testing.T) {
	c := New[int](Options{Capacity: 256, Shards: 8})
	const (
		goroutines = 16
		iters      = 2000
		keys       = 512 // twice the capacity, so eviction churns throughout
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i*7) % keys
				key := fmt.Sprintf("k%d", k)
				switch i % 3 {
				case 0:
					c.Put(key, k)
				case 1:
					if v, ok := c.Get(key); ok && v != k {
						t.Errorf("key %s holds %d, want %d", key, v, k)
						return
					}
				default:
					v, _ := c.GetOrCompute(key, func() int { return k })
					if v != k {
						t.Errorf("GetOrCompute(%s) = %d, want %d", key, v, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 256 {
		t.Errorf("Len = %d exceeds capacity 256", got)
	}
	st := c.Stats()
	if st.Requests() == 0 {
		t.Error("no requests recorded")
	}
}

// N concurrent misses on one key must run the compute function exactly once.
func TestInflightDedup(t *testing.T) {
	c := New[int](Options{Capacity: 8, Shards: 1})
	const waiters = 16
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = c.GetOrCompute("k", func() int {
			computes.Add(1)
			close(started)
			<-release
			return 42
		})
	}()
	<-started // the computing caller is now inside compute()
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, avoided := c.GetOrCompute("k", func() int {
				computes.Add(1)
				return 42
			})
			if !avoided {
				t.Errorf("waiter %d recomputed instead of deduplicating", i)
			}
			results[i] = v
		}(i)
	}
	// Wait until every waiter is parked on the in-flight call, then release.
	for c.Stats().Dedups < waiters-1 {
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Dedups != waiters-1 {
		t.Errorf("stats = %+v, want Misses=1 Dedups=%d", st, waiters-1)
	}
}

// A panicking compute must not wedge waiters or leave the key poisoned.
func TestComputePanicRecovers(t *testing.T) {
	c := New[int](Options{Capacity: 8, Shards: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate to the computing caller")
			}
		}()
		c.GetOrCompute("k", func() int { panic("boom") })
	}()
	v, avoided := c.GetOrCompute("k", func() int { return 7 })
	if v != 7 || avoided {
		t.Fatalf("retry after panic = (%d, %v), want (7, false)", v, avoided)
	}
}

// Counter accuracy under a deterministic single-threaded access pattern.
func TestCounterAccuracy(t *testing.T) {
	c := New[string](Options{Capacity: 2, Shards: 1})

	c.Get("a")                                        // miss
	c.Put("a", "v")                                   //
	c.Get("a")                                        // hit
	c.GetOrCompute("a", func() string { return "x" }) // hit (no recompute)
	c.GetOrCompute("b", func() string { return "w" }) // miss + compute
	c.Get("b")                                        // hit
	c.Put("c", "u")                                   // evicts "a" (LRU)
	c.Get("a")                                        // miss

	st := c.Stats()
	want := Stats{Hits: 3, Misses: 3, Dedups: 0, Evictions: 1, Size: 2}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
	if st.Requests() != 6 {
		t.Errorf("Requests = %d, want 6", st.Requests())
	}
	if pct := st.HitPct(); pct != 50 {
		t.Errorf("HitPct = %v, want 50", pct)
	}
	if (Stats{}).HitPct() != 0 {
		t.Error("HitPct of empty stats should be 0")
	}
}
