// Package evalcache provides the sharded, concurrency-safe memoization layer
// for hardware evaluations: a generic string-keyed LRU cache with per-shard
// locking, hit/miss/eviction counters, and singleflight-style in-flight
// deduplication so N concurrent misses on the same key cost exactly one
// computation.
//
// The package exists because NASAIC's RL controller resamples overlapping
// (architecture, accelerator-design) points across thousands of episodes:
// as the policy converges, most hardware evaluations repeat earlier ones,
// and the MAESTRO cost model plus HAP scheduling they trigger dominates the
// search's wall clock. The paper's non-blocking trainer applies "never
// re-evaluate what you already know" to the accuracy path; this package
// extends it to the much hotter mapping-and-scheduling path.
//
// Values must be deterministic functions of their key and are shared between
// callers on a hit, so cached values must be treated as immutable. Keys are
// canonical fingerprints (accel.Design.Fingerprint plus dnn.Network
// signatures); two semantically identical inputs must produce identical
// keys for deduplication to fire.
//
// SaveFile/LoadFile extend the cache with a persistent on-disk warm tier:
// resident entries snapshot into a versioned, checksummed cachefile
// (internal/cachefile) under a caller-supplied config key — the canonical
// fingerprint of everything parameterizing the cached computation — and a
// later process reloads them before its first request. gob round-trips
// values bit-exactly and every damaged or mismatched file degrades to a
// cold start, so warm starts change hit counters, never results.
package evalcache
