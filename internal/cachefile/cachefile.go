// Package cachefile is the on-disk container format of the persistent warm
// tier: a versioned, checksummed envelope around an opaque payload (the
// gob-encoded entries of internal/maestro's cost memo or internal/evalcache's
// hardware-evaluation cache).
//
// A file is a single atomic snapshot:
//
//	offset  field
//	0       magic "NSAICCHE" (8 bytes)
//	8       format version, big-endian uint32
//	12      kind length (uint32) + kind bytes       — payload discriminator
//	…       config-key length (uint32) + key bytes  — invalidation identity
//	…       payload length (uint64) + payload bytes
//	end-8   CRC64-ECMA over everything before it
//
// Readers verify the magic, version, section bounds and checksum before
// surfacing a single byte of payload, so a torn write, a flipped bit or a
// file from a different format generation degrades to a cold start instead
// of garbage results. Writers go through a temp file + rename, so a crash
// mid-write leaves the previous snapshot (or nothing) in place, never a
// partial file under the final name.
//
// The config key is the caller's canonical fingerprint of everything that
// parameterizes the cached computation beyond the entry keys (e.g. the
// cost-model calibration constants): Load rejects a file whose stored key
// differs, which is how a recalibration invalidates stale caches.
package cachefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Version is the current format generation. Bump it whenever the envelope or
// any payload encoding changes incompatibly; older files then load cold.
const Version = 1

var magic = [8]byte{'N', 'S', 'A', 'I', 'C', 'C', 'H', 'E'}

// Sentinel load failures. All of them mean "start cold" to callers; they are
// distinguished so tests and logs can tell a corrupt file from a stale one.
var (
	// ErrCorrupt reports a structurally invalid file: bad magic, impossible
	// section bounds, or a checksum mismatch (torn write, bit rot).
	ErrCorrupt = errors.New("cachefile: corrupt cache file")
	// ErrVersion reports a file written by a different format generation.
	ErrVersion = errors.New("cachefile: cache file version mismatch")
	// ErrKind reports a structurally valid file holding a different payload
	// kind than the caller asked for.
	ErrKind = errors.New("cachefile: cache file kind mismatch")
	// ErrConfig reports a valid file whose stored config key differs from
	// the caller's — the cached computation was parameterized differently.
	ErrConfig = errors.New("cachefile: cache config key mismatch")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Encode serializes one snapshot into the container format.
func Encode(kind, configKey string, payload []byte) []byte {
	n := len(magic) + 4 + 4 + len(kind) + 4 + len(configKey) + 8 + len(payload) + 8
	buf := make([]byte, 0, n)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(kind)))
	buf = append(buf, kind...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(configKey)))
	buf = append(buf, configKey...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
}

// Decode parses and verifies one container, returning its kind, config key
// and payload. It never panics on malformed input (fuzzed in fuzz_test.go):
// every failure maps to ErrCorrupt or ErrVersion.
func Decode(data []byte) (kind, configKey string, payload []byte, err error) {
	// Smallest possible file: magic + version + three empty sections + CRC.
	if len(data) < len(magic)+4+4+4+8+8 {
		return "", "", nil, fmt.Errorf("%w: %d bytes is below the minimum envelope size", ErrCorrupt, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return "", "", nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := data[:len(data)-8], binary.BigEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != sum {
		return "", "", nil, fmt.Errorf("%w: checksum mismatch (stored %016x, computed %016x)", ErrCorrupt, sum, got)
	}
	// The checksum validates the version field, so check it after: a stale
	// generation is reported as ErrVersion, not as corruption.
	if v := binary.BigEndian.Uint32(body[8:12]); v != Version {
		return "", "", nil, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, v, Version)
	}
	rest := body[12:]
	next := func(width int) ([]byte, bool) {
		if len(rest) < width {
			return nil, false
		}
		var n uint64
		if width == 4 {
			n = uint64(binary.BigEndian.Uint32(rest))
		} else {
			n = binary.BigEndian.Uint64(rest)
		}
		rest = rest[width:]
		if uint64(len(rest)) < n {
			return nil, false
		}
		sec := rest[:n]
		rest = rest[n:]
		return sec, true
	}
	k, ok1 := next(4)
	c, ok2 := next(4)
	p, ok3 := next(8)
	if !ok1 || !ok2 || !ok3 || len(rest) != 0 {
		return "", "", nil, fmt.Errorf("%w: section bounds exceed file size", ErrCorrupt)
	}
	return string(k), string(c), p, nil
}

// WriteFile atomically replaces path with a snapshot: the envelope is staged
// in a temp file in the same directory (created on demand), synced, and
// renamed over path, so readers only ever observe complete snapshots.
func WriteFile(path, kind, configKey string, payload []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(Encode(kind, configKey, payload)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and verifies path, requiring the given kind and config key.
// Every failure — including a missing file (os.IsNotExist on the unwrapped
// error) — means the caller starts cold.
func ReadFile(path, kind, configKey string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	k, c, payload, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if k != kind {
		return nil, fmt.Errorf("%w: file holds %q, want %q", ErrKind, k, kind)
	}
	if c != configKey {
		return nil, fmt.Errorf("%w: stored configuration differs", ErrConfig)
	}
	return payload, nil
}

// Name derives a stable file name for one (prefix, configKey) pair, hashing
// the key so differently calibrated caches coexist in one directory instead
// of clobbering each other. The full key is still stored and verified inside
// the file; the hash only namespaces the directory entry.
func Name(prefix, configKey string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(configKey))
	return fmt.Sprintf("%s-%016x.cache", prefix, h.Sum64())
}
