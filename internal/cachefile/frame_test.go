package cachefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("hello framing"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	rest := stream
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = SplitFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(rest))
	}
}

func TestFrameTornTailIsUnexpectedEOF(t *testing.T) {
	full := AppendFrame(nil, []byte("one full record"))
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := SplitFrame(full[:len(full)-cut]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d bytes: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if _, _, err := SplitFrame(nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty stream: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameBitFlipIsCorrupt(t *testing.T) {
	frame := AppendFrame(nil, []byte("guarded payload"))
	// Flip one bit in every byte position (length, payload and CRC).
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		_, _, err := SplitFrame(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("bit flip at byte %d: unexpected error %v", i, err)
		}
	}
}

func TestFrameAbsurdLengthIsCorrupt(t *testing.T) {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, MaxFramePayload+1)
	buf = append(buf, make([]byte, 64)...)
	if _, _, err := SplitFrame(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: err = %v, want ErrCorrupt", err)
	}
}

func TestFrameSecondRecordSurvivesFirstIntact(t *testing.T) {
	stream := AppendFrame(nil, []byte("first"))
	stream = AppendFrame(stream, []byte("second"))
	p1, rest, err := SplitFrame(stream)
	if err != nil || string(p1) != "first" {
		t.Fatalf("first: %q, %v", p1, err)
	}
	// Corrupt the second frame; the first must still have parsed cleanly and
	// the error surfaces only at the damaged record.
	rest = append([]byte(nil), rest...)
	rest[len(rest)-1] ^= 0xFF
	if _, _, err := SplitFrame(rest); err == nil {
		t.Fatal("corrupted second frame accepted")
	}
}
