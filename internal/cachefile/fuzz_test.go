package cachefile

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the container parser: it must
// never panic, and whenever it does accept an input, re-encoding the parsed
// sections must reproduce the accepted bytes exactly (the format has no
// redundant encodings, so accept ⇒ canonical).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode("", "", nil))
	f.Add(Encode("layercost", "cfg", []byte("payload")))
	f.Add(Encode("evalcache", "a|b|c", bytes.Repeat([]byte{0xfe, 0x00}, 300)))
	truncated := Encode("k", "c", []byte("p"))
	f.Add(truncated[:len(truncated)-3])
	flipped := Encode("k", "c", []byte("p"))
	flipped[10] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, configKey, payload, err := Decode(data)
		if err != nil {
			return
		}
		if got := Encode(kind, configKey, payload); !bytes.Equal(got, data) {
			t.Errorf("accepted input is not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}

// FuzzEncodeDecode checks the inverse direction: every encodable triple must
// decode back to itself bit-for-bit.
func FuzzEncodeDecode(f *testing.F) {
	f.Add("layercost", "cfg", []byte("payload"))
	f.Add("", "", []byte{})
	f.Fuzz(func(t *testing.T, kind, configKey string, payload []byte) {
		k, c, p, err := Decode(Encode(kind, configKey, payload))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if k != kind || c != configKey || !bytes.Equal(p, payload) {
			t.Errorf("round trip mutated sections: (%q,%q,%x) -> (%q,%q,%x)",
				kind, configKey, payload, k, c, p)
		}
	})
}
