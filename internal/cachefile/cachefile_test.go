package cachefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name("layercost", "cfgA"))
	payload := []byte("some gob bytes \x00\x01\x02")
	if err := WriteFile(path, "layercost", "cfgA", payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, "layercost", "cfgA")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round trip: got %q, want %q", got, payload)
	}
}

func TestEmptySections(t *testing.T) {
	k, c, p, err := Decode(Encode("", "", nil))
	if err != nil {
		t.Fatal(err)
	}
	if k != "" || c != "" || len(p) != 0 {
		t.Errorf("empty round trip: got (%q,%q,%d bytes)", k, c, len(p))
	}
}

func TestWriteCreatesDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "deeper", "x.cache")
	if err := WriteFile(path, "k", "c", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, "k", "c"); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFile(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "absent.cache"), "k", "c")
	if !os.IsNotExist(err) {
		t.Errorf("missing file: got %v, want IsNotExist", err)
	}
}

// writeRaw writes arbitrary bytes under the final name, bypassing WriteFile's
// envelope, to simulate torn and tampered files.
func writeRaw(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tampered.cache")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncatedFile(t *testing.T) {
	full := Encode("k", "c", bytes.Repeat([]byte("payload"), 64))
	for _, n := range []int{0, 1, 7, 8, 20, len(full) / 2, len(full) - 1} {
		path := writeRaw(t, full[:n])
		if _, err := ReadFile(path, "k", "c"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestFlippedByte(t *testing.T) {
	full := Encode("k", "c", bytes.Repeat([]byte("payload"), 8))
	// Flip one byte at every offset: header, sections, payload and checksum
	// corruption must all be detected.
	for i := range full {
		tampered := append([]byte(nil), full...)
		tampered[i] ^= 0x40
		path := writeRaw(t, tampered)
		if _, err := ReadFile(path, "k", "c"); err == nil {
			t.Errorf("flipped byte at offset %d went undetected", i)
		}
	}
}

func TestVersionBump(t *testing.T) {
	full := Encode("k", "c", []byte("payload"))
	// Rewrite the version field and re-checksum, simulating a file from a
	// future (or past) format generation that is otherwise intact.
	binary.BigEndian.PutUint32(full[8:12], Version+1)
	body := full[:len(full)-8]
	binary.BigEndian.PutUint64(full[len(full)-8:], crc64.Checksum(body, crcTable))
	path := writeRaw(t, full)
	if _, err := ReadFile(path, "k", "c"); !errors.Is(err, ErrVersion) {
		t.Errorf("version bump: got %v, want ErrVersion", err)
	}
}

func TestKindMismatch(t *testing.T) {
	path := writeRaw(t, Encode("evalcache", "c", []byte("p")))
	if _, err := ReadFile(path, "layercost", "c"); !errors.Is(err, ErrKind) {
		t.Errorf("kind mismatch: got %v, want ErrKind", err)
	}
}

func TestConfigMismatch(t *testing.T) {
	path := writeRaw(t, Encode("k", "calibration-A", []byte("p")))
	if _, err := ReadFile(path, "k", "calibration-B"); !errors.Is(err, ErrConfig) {
		t.Errorf("config mismatch: got %v, want ErrConfig", err)
	}
}

func TestAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.cache")
	if err := WriteFile(path, "k", "c", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, "k", "c", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, "k", "c")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("replace: got %q, want %q", got, "second")
	}
	// The staging temp file must not linger after a successful rename.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after replace, want 1", len(entries))
	}
}

func TestNameIsStableAndDistinct(t *testing.T) {
	a1, a2 := Name("hweval", "cfgA"), Name("hweval", "cfgA")
	b := Name("hweval", "cfgB")
	if a1 != a2 {
		t.Errorf("Name not stable: %q vs %q", a1, a2)
	}
	if a1 == b {
		t.Errorf("Name collides across config keys: %q", a1)
	}
}
