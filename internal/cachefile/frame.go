package cachefile

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
)

// Record framing shared by the warm-tier snapshots and internal/journal's
// write-ahead log. One frame is
//
//	offset  field
//	0       payload length, big-endian uint32
//	4       payload bytes
//	4+n     CRC64-ECMA over the length field and the payload
//
// so a reader walking a byte stream can both delimit records and verify each
// one independently: a torn tail shows up as io.ErrUnexpectedEOF (the stream
// ends inside a frame) and a damaged record as ErrCorrupt (checksum or
// impossible length), letting log recovery truncate at the last valid frame
// instead of refusing the whole file.

// FrameOverhead is the fixed per-frame cost: the length prefix + the CRC.
const FrameOverhead = 4 + 8

// MaxFramePayload bounds a single frame. A length prefix beyond it is treated
// as corruption rather than an instruction to wait for gigabytes that a
// flipped bit invented.
const MaxFramePayload = 1 << 28

// AppendFrame appends one framed record to dst and returns the extended
// slice.
func AppendFrame(dst, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint64(dst, Checksum(dst[start:]))
}

// SplitFrame splits the first frame off data, returning its payload and the
// remaining bytes. An incomplete frame (the stream ends mid-record) returns
// io.ErrUnexpectedEOF; an impossible length or a checksum mismatch returns
// ErrCorrupt. The returned payload aliases data.
func SplitFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFramePayload {
		return nil, nil, fmt.Errorf("%w: frame length %d exceeds the %d-byte bound", ErrCorrupt, n, MaxFramePayload)
	}
	total := 4 + int(n) + 8
	if len(data) < total {
		return nil, nil, io.ErrUnexpectedEOF
	}
	body, sum := data[:4+n], binary.BigEndian.Uint64(data[4+n:total])
	if got := Checksum(body); got != sum {
		return nil, nil, fmt.Errorf("%w: frame checksum mismatch (stored %016x, computed %016x)", ErrCorrupt, sum, got)
	}
	return body[4:], data[total:], nil
}

// Checksum is the CRC64-ECMA used by every cachefile container and frame.
func Checksum(b []byte) uint64 {
	return crc64.Checksum(b, crcTable)
}
