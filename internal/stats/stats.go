package stats

import (
	"math"
	"sort"
)

// EMA is an exponential moving average, used as the REINFORCE reward
// baseline b in Eq. (1) of the paper. The zero value is invalid; use NewEMA.
type EMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0,1]. Larger alpha
// weights recent observations more heavily.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EMA alpha must be in (0,1]")
	}
	return &EMA{alpha: alpha}
}

// Update folds x into the average and returns the new value. The first
// observation initializes the average exactly.
func (e *EMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EMA) Initialized() bool { return e.init }

// Summary holds order statistics of a sample.
type Summary struct {
	N           int
	Min, Max    float64
	Mean, Std   float64
	P25, Median float64
	P75         float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(sq / float64(len(s)-1))
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Std:    std,
		P25:    quantile(s, 0.25),
		Median: quantile(s, 0.5),
		P75:    quantile(s, 0.75),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ArgMax returns the index of the maximum element of xs, or -1 if empty.
// Ties resolve to the first maximum.
func ArgMax(xs []float64) int {
	best := -1
	bv := math.Inf(-1)
	for i, v := range xs {
		if v > bv {
			bv, best = v, i
		}
	}
	return best
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
