// Package stats provides deterministic randomness, running statistics, and
// small numeric helpers shared by the NASAIC search infrastructure.
//
// All experiments in this repository are seeded so that every table and
// figure regenerates identically run-to-run; RNG wraps math/rand with a
// splittable seed scheme so concurrent workers stay deterministic.
package stats

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random source. It is a thin wrapper over
// math/rand.Rand that adds categorical sampling and child-stream splitting.
// An RNG is not safe for concurrent use; use Split to derive independent
// streams for worker goroutines.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by label. The child
// sequence depends only on (parent seed state, label), so workers created in
// a fixed order observe fixed streams.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()) ^ g.r.Int63())
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Categorical samples an index from the probability vector p. The vector
// must be non-negative; it is normalized internally so callers may pass
// unnormalized weights. It panics if p is empty or sums to zero.
func (g *RNG) Categorical(p []float64) int {
	return CategoricalU(g.r.Float64(), p)
}

// CategoricalU samples an index from p using the externally drawn uniform
// u0 ∈ [0,1). It is the deterministic core of Categorical: batched samplers
// pre-draw their uniforms in the sequential call order and delegate here, so
// a lockstep batch consumes the RNG stream — and picks actions —
// bit-identically to the equivalent sequential draws.
func CategoricalU(u0 float64, p []float64) int {
	if len(p) == 0 {
		panic("stats: Categorical on empty distribution")
	}
	var sum float64
	for _, v := range p {
		if v < 0 {
			panic("stats: Categorical with negative weight")
		}
		sum += v
	}
	if sum == 0 {
		panic("stats: Categorical with zero-mass distribution")
	}
	u := u0 * sum
	acc := 0.0
	for i, v := range p {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}

// HashString maps a string to a stable 64-bit value. It is used to derive
// deterministic per-architecture perturbations in the accuracy predictor.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashUnit maps a string to a stable value in [0,1).
func HashUnit(s string) float64 {
	return float64(HashString(s)%1_000_000_007) / 1_000_000_007.0
}
