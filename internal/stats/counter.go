package stats

import "sync/atomic"

// Counter is a lock-free monotonically adjustable event counter, safe for
// concurrent use. The zero value is ready to use. It backs the hot-path
// telemetry (cache hits, hardware evaluations) where a mutex per increment
// would serialize the worker pool.
type Counter struct {
	v atomic.Int64
}

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Add adds n (which may be negative) and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Pct returns 100*part/total, or 0 when total is 0. It is the single
// definition of "hit percentage" shared by every cache/evaluator stats type.
func Pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
