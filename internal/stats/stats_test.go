package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(1)
	w1 := g.Split("worker-1")
	g2 := NewRNG(1)
	w1b := g2.Split("worker-1")
	for i := 0; i < 20; i++ {
		if w1.Float64() != w1b.Float64() {
			t.Fatal("split with same label from same parent state must match")
		}
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 3)
	p := []float64{0.1, 0.2, 0.7}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Categorical(p)]++
	}
	for i, want := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("category %d frequency %.3f, want ~%.3f", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(1)
	for _, p := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", p)
				}
			}()
			g.Categorical(p)
		}()
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Initialized() {
		t.Error("fresh EMA should be uninitialized")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10", got)
	}
	if got := e.Update(20); got != 15 {
		t.Errorf("second update = %v, want 15", got)
	}
	if !e.Initialized() || e.Value() != 15 {
		t.Error("EMA state wrong after updates")
	}
}

func TestEMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		a := a
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for alpha=%v", a)
				}
			}()
			NewEMA(a)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("bad summary: %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestArgMaxAndClamp(t *testing.T) {
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Error("ArgMax should return first maximum")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

// Property: EMA stays within [min, max] of observed values.
func TestEMABounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEMA(0.3)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			got := e.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize respects ordering invariants.
func TestSummarizeInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Restrict to magnitudes where the sum cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				clean = append(clean, math.Mod(v, 1e9))
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.P25 && s.P25 <= s.Median &&
			s.Median <= s.P75 && s.P75 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashUnitRange(t *testing.T) {
	f := func(s string) bool {
		u := HashUnit(s)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if HashUnit("a") == HashUnit("b") {
		t.Error("distinct strings should (almost surely) hash differently")
	}
	if HashUnit("x") != HashUnit("x") {
		t.Error("hash must be stable")
	}
}
