package stats

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Value())
	}
	if got := c.Inc(); got != 1 {
		t.Errorf("Inc = %d, want 1", got)
	}
	if got := c.Add(5); got != 6 {
		t.Errorf("Add(5) = %d, want 6", got)
	}
	if got := c.Add(-2); got != 4 {
		t.Errorf("Add(-2) = %d, want 4", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*iters {
		t.Errorf("Value = %d, want %d", got, goroutines*iters)
	}
}
