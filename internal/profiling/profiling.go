// Package profiling provides the shared -cpuprofile/-memprofile plumbing of
// the command-line tools, so future performance work can profile real
// searches instead of synthetic benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). Either path may be empty; the stop function is
// idempotent so it can run both deferred and before explicit exits.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
