// Package faultfs is the filesystem seam under internal/journal: a minimal
// FS/File interface with two implementations — OS, a passthrough to the real
// filesystem, and Mem, an in-memory filesystem with precise fault injection
// (fail the Nth write, short writes, fsync errors) and crash-point simulation
// (a crash discards everything not yet fsynced, optionally keeping a torn
// prefix of the in-flight write, exactly like a lost page cache).
//
// The journal's durability claims are only as honest as the failures they
// were tested against; Mem lets the crash-point matrix in internal/journal
// kill and recover the log at every record boundary without touching a disk.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the set of filesystem operations the journal needs. Paths use the
// host separator conventions (callers build them with path/filepath).
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the names (not full paths) of the directory's entries,
	// sorted ascending. A missing directory returns an error satisfying
	// os.IsNotExist.
	ReadDir(path string) ([]string, error)
	// ReadFile returns the file's full contents.
	ReadFile(path string) ([]byte, error)
	// OpenAppend opens the file for appending, creating it when absent.
	OpenAppend(path string) (File, error)
	// Truncate cuts the file to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes the file.
	Remove(path string) error
}

// File is an append-only handle.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	io.Closer
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// Injected fault errors.
var (
	// ErrInjectedWrite is returned by a write the Faults configuration failed.
	ErrInjectedWrite = errors.New("faultfs: injected write failure")
	// ErrInjectedSync is returned by an fsync the Faults configuration failed.
	ErrInjectedSync = errors.New("faultfs: injected fsync failure")
	// ErrCrashed is returned by every operation after a simulated crash until
	// Reboot is called.
	ErrCrashed = errors.New("faultfs: simulated crash")
)

// Faults configures injection points. Counters are 1-based over the whole
// filesystem (the Nth write anywhere), matching how a crash-point matrix
// sweeps a workload; zero disables that injection.
type Faults struct {
	// FailWriteAt makes the Nth write return ErrInjectedWrite without
	// writing anything.
	FailWriteAt int
	// ShortWriteAt makes the Nth write persist only the first half of its
	// buffer and then return ErrInjectedWrite (a torn write the caller is
	// told about).
	ShortWriteAt int
	// FailSyncAt makes the Nth fsync return ErrInjectedSync without marking
	// anything durable.
	FailSyncAt int
	// CrashAtWrite simulates a crash at the Nth write: the filesystem drops
	// every byte not yet fsynced, keeps the first CrashKeepBytes bytes of
	// the in-flight write (a torn tail the application never learned about),
	// and fails every operation with ErrCrashed until Reboot.
	CrashAtWrite int
	// CrashKeepBytes is how much of the crashing write lands anyway.
	CrashKeepBytes int
	// SyncGate, when non-nil, stalls every fsync until a token is received
	// from the channel (close the channel to release all of them). It
	// simulates a slow or hung disk: tests use it to prove a caller does not
	// hold application-level locks across an fsync.
	SyncGate chan struct{}
}

// Mem is an in-memory FS with fault injection. The zero value is unusable;
// construct with NewMem. All methods are safe for concurrent use.
type Mem struct {
	mu       sync.Mutex
	files    map[string]*memFile
	dirs     map[string]bool
	faults   Faults
	writeOps int
	syncOps  int
	crashed  bool
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash
}

// NewMem builds an empty in-memory filesystem with the given faults armed.
func NewMem(f Faults) *Mem {
	return &Mem{
		files:  make(map[string]*memFile),
		dirs:   make(map[string]bool),
		faults: f,
	}
}

// SetFaults rearms the injection counters (existing op counts keep running).
func (m *Mem) SetFaults(f Faults) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = f
}

// WriteOps reports the number of write calls observed so far; a clean run's
// count is the sweep bound of a crash-point matrix.
func (m *Mem) WriteOps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeOps
}

// Crash simulates a power loss now: unsynced bytes vanish and every
// subsequent operation fails with ErrCrashed until Reboot.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashLocked(nil, nil)
}

// Crashed reports whether the filesystem is down.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Reboot brings a crashed filesystem back up with only its durable contents.
func (m *Mem) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
}

// crashLocked drops unsynced data; keep (if non-nil) is a torn fragment of
// the in-flight write appended to file f's durable prefix.
func (m *Mem) crashLocked(f *memFile, keep []byte) {
	for _, mf := range m.files {
		mf.data = mf.data[:mf.synced]
	}
	if f != nil && len(keep) > 0 {
		f.data = append(f.data, keep...)
	}
	m.crashed = true
}

func (m *Mem) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for p := filepath.Clean(path); p != "." && p != string(filepath.Separator); p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

func (m *Mem) ReadDir(path string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir := filepath.Clean(path)
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: path, Err: os.ErrNotExist}
	}
	var names []string
	for p := range m.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: path, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *Mem) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	p := filepath.Clean(path)
	f, ok := m.files[p]
	if !ok {
		f = &memFile{}
		m.files[p] = f
		m.dirs[filepath.Dir(p)] = true
	}
	return &memHandle{fs: m, f: f, path: p}, nil
}

func (m *Mem) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[filepath.Clean(path)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: path, Err: os.ErrNotExist}
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, int(size)-len(f.data))...)
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	p := filepath.Clean(path)
	if _, ok := m.files[p]; !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

// memHandle is an append handle into one Mem file.
type memHandle struct {
	fs     *Mem
	f      *memFile
	path   string
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fmt.Errorf("faultfs: write to closed file %s", h.path)
	}
	m.writeOps++
	switch m.writeOps {
	case m.faults.FailWriteAt:
		return 0, fmt.Errorf("%w (write #%d, %s)", ErrInjectedWrite, m.writeOps, h.path)
	case m.faults.ShortWriteAt:
		n := len(p) / 2
		h.f.data = append(h.f.data, p[:n]...)
		return n, fmt.Errorf("%w: short write %d of %d bytes (write #%d, %s)",
			ErrInjectedWrite, n, len(p), m.writeOps, h.path)
	case m.faults.CrashAtWrite:
		keep := m.faults.CrashKeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		m.crashLocked(h.f, p[:keep])
		return 0, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	gate := m.faults.SyncGate
	m.mu.Unlock()
	if gate != nil {
		// Block outside the filesystem lock: a stalled disk must not stop
		// unrelated filesystem operations, only this fsync's caller.
		<-gate
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if h.closed {
		return fmt.Errorf("faultfs: sync of closed file %s", h.path)
	}
	m.syncOps++
	if m.syncOps == m.faults.FailSyncAt {
		return fmt.Errorf("%w (fsync #%d, %s)", ErrInjectedSync, m.syncOps, h.path)
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	h.closed = true
	return nil
}

// DurableBytes reports how many bytes of path would survive a crash right
// now (synced prefix length); testing helper.
func (m *Mem) DurableBytes(path string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[filepath.Clean(path)]; ok {
		return f.synced
	}
	return 0
}

// Dump renders the filesystem state for test failure messages.
func (m *Mem) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	var paths []string
	for p := range m.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := m.files[p]
		fmt.Fprintf(&b, "%s: %d bytes (%d synced)\n", p, len(f.data), f.synced)
	}
	return b.String()
}
