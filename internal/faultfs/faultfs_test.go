package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestMemBasicReadWrite(t *testing.T) {
	m := NewMem(Faults{})
	dir := filepath.Join("data", "journal")
	if err := m.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "seg-1.wal")
	f, err := m.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile(path)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	names, err := m.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "seg-1.wal" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if _, err := m.ReadDir("nope"); !os.IsNotExist(err) {
		t.Fatalf("missing dir: err = %v, want not-exist", err)
	}
	if _, err := m.ReadFile(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want not-exist", err)
	}
	if err := m.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	got, _ = m.ReadFile(path)
	if string(got) != "hello" {
		t.Fatalf("after truncate: %q", got)
	}
	if err := m.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile(path); !os.IsNotExist(err) {
		t.Fatalf("removed file readable: %v", err)
	}
}

func TestMemCrashDropsUnsyncedBytes(t *testing.T) {
	m := NewMem(Faults{})
	_ = m.MkdirAll("d")
	f, _ := m.OpenAppend("d/f")
	_, _ = f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte(" volatile"))
	m.Crash()
	if !m.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := m.ReadFile("d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write while crashed: %v", err)
	}
	m.Reboot()
	got, err := m.ReadFile("d/f")
	if err != nil || string(got) != "durable" {
		t.Fatalf("after reboot: %q, %v (want only the synced prefix)", got, err)
	}
}

func TestMemCrashAtWriteKeepsTornPrefix(t *testing.T) {
	m := NewMem(Faults{CrashAtWrite: 2, CrashKeepBytes: 3})
	_ = m.MkdirAll("d")
	f, _ := m.OpenAppend("d/f")
	if _, err := f.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("BBBBBB")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: err = %v, want ErrCrashed", err)
	}
	m.Reboot()
	got, err := m.ReadFile("d/f")
	if err != nil || string(got) != "AAAABBB" {
		t.Fatalf("after reboot: %q, %v (want synced prefix + 3 torn bytes)", got, err)
	}
}

func TestMemInjectedWriteAndSyncFaults(t *testing.T) {
	m := NewMem(Faults{FailWriteAt: 2, ShortWriteAt: 3, FailSyncAt: 2})
	_ = m.MkdirAll("d")
	f, _ := m.OpenAppend("d/f")

	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("fails")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("write 2: err = %v, want ErrInjectedWrite", err)
	}
	n, err := f.Write([]byte("shorted!"))
	if !errors.Is(err, ErrInjectedWrite) || n != 4 {
		t.Fatalf("write 3: n=%d err=%v, want torn half + ErrInjectedWrite", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2: err = %v, want ErrInjectedSync", err)
	}
	got, _ := m.ReadFile("d/f")
	if string(got) != "okshor" {
		t.Fatalf("contents %q, want the successful write + the torn half", got)
	}
	if m.WriteOps() != 3 {
		t.Fatalf("WriteOps = %d, want 3", m.WriteOps())
	}
}

// The OS implementation is a thin passthrough; one round-trip keeps it
// honest without faulting the real disk.
func TestOSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested")
	if err := OS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.wal")
	f, err := OS.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Append handles append even across truncation.
	if err := OS.Truncate(path, 3); err != nil {
		t.Fatal(err)
	}
	f, err = OS.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "abcXYZ" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	names, err := OS.ReadDir(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatal(err)
	}
}
