// Package predictor is this repository's substitute for the paper's
// training-and-validating path (§IV-③, "Training and validating"): a
// deterministic, capacity-based accuracy model for the three datasets the
// paper evaluates (CIFAR-10, STL-10, and the Nuclei segmentation set).
//
// The paper trains every sampled architecture from scratch on a GPU; the
// search, however, consumes only the resulting scalar quality. This model
// reproduces the property the co-exploration depends on — accuracy grows
// monotonically with capacity and saturates — and is pinned to the anchor
// points the paper reports (e.g. CIFAR-10 78.93% for the smallest network in
// the space and ~94.2% at saturation; see DESIGN.md §4). A small
// deterministic per-architecture perturbation stands in for training
// variance, so distinct architectures of similar capacity still rank
// distinctly and reruns are reproducible.
package predictor

import (
	"fmt"
	"math"

	"nasaic/internal/dnn"
	"nasaic/internal/stats"
)

// Dataset identifies one of the paper's evaluation datasets.
type Dataset int

// The datasets used by workloads W1–W3 (§V-A).
const (
	CIFAR10 Dataset = iota
	STL10
	Nuclei
)

// String returns the dataset name.
func (d Dataset) String() string {
	switch d {
	case CIFAR10:
		return "CIFAR-10"
	case STL10:
		return "STL-10"
	case Nuclei:
		return "Nuclei"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// Metric returns the quality metric name reported for the dataset.
func (d Dataset) Metric() string {
	if d == Nuclei {
		return "IoU"
	}
	return "accuracy"
}

// Task returns the task type the dataset belongs to.
func (d Dataset) Task() dnn.Task {
	if d == Nuclei {
		return dnn.Segmentation
	}
	return dnn.Classification
}

// anchors holds the per-dataset calibration: floor is the quality of the
// smallest architecture in the paper's search space, ceil the saturation
// quality, refParams/refMACs the smallest architecture's capacity, and k the
// saturation rate. noise is the half-width of the deterministic
// per-architecture perturbation.
type anchors struct {
	floor, ceil float64
	refParams   float64
	refMACs     float64
	k           float64
	p           float64
	noise       float64
}

// Calibration targets (quality in [0,1]):
//
//	CIFAR-10: 0.7893 (smallest) … 0.9111/0.9304 mid … 0.9417 (NAS best, Table II) … ~0.946
//	STL-10:   0.7157 (smallest) … 0.7650 (NAS best, Table I W2) … ~0.769
//	Nuclei:   0.642  (smallest) … 0.8374 (NAS best, Table I W1) … ~0.845
//
// A stretched exponential exp(−k·x^p) with p>1 fits both the paper's
// mid-size anchors (Table II accuracies near 91–92%) and the near-saturation
// NAS anchors, which a plain exponential cannot do simultaneously.
var anchorTable = map[Dataset]anchors{
	CIFAR10: {floor: 0.7893, ceil: 0.9460, refParams: 2.1e3, refMACs: 1.1e6, k: 0.00419, p: 3.0, noise: 0.0030},
	STL10:   {floor: 0.7157, ceil: 0.7690, refParams: 4.6e4, refMACs: 3.5e7, k: 0.0070, p: 3.0, noise: 0.0030},
	Nuclei:  {floor: 0.6420, ceil: 0.8450, refParams: 2.5e2, refMACs: 4.1e6, k: 0.0038, p: 3.0, noise: 0.0040},
}

// Accuracy returns the converged validation quality of network n trained on
// dataset d, in [0,1] (top-1 accuracy for classification, IoU for Nuclei).
// It is deterministic in the architecture.
func Accuracy(d Dataset, n *dnn.Network) float64 {
	a, ok := anchorTable[d]
	if !ok {
		panic(fmt.Sprintf("predictor: unknown dataset %d", int(d)))
	}
	p := float64(n.TotalParams())
	m := float64(n.TotalMACs())
	if p <= 0 || m <= 0 {
		panic(fmt.Sprintf("predictor: network %s has no capacity", n.Name))
	}
	// Capacity score: parameters and MACs both matter (width vs. work);
	// clamp at the reference so under-reference capacity pins to the floor.
	xp := math.Log2(math.Max(1, p/a.refParams))
	xm := math.Log2(math.Max(1, m/a.refMACs))
	x := 0.5*xp + 0.5*xm

	q := a.ceil - (a.ceil-a.floor)*math.Exp(-a.k*math.Pow(x, a.p))

	// Deterministic per-architecture perturbation (stand-in for training
	// variance), zero-mean over the space.
	jitter := (stats.HashUnit(d.String()+n.Signature()) - 0.5) * 2 * a.noise
	return stats.Clamp(q+jitter, 0, 1)
}

// TrainResult is the outcome of a simulated training run.
type TrainResult struct {
	Dataset Dataset
	Final   float64
	// Curve is the per-epoch validation quality trajectory.
	Curve []float64
}

// Train simulates training n on d for the given number of epochs, producing
// a saturating learning curve that converges to Accuracy(d, n). Like the
// real path it is the expensive evaluator step; the early-pruning logic in
// internal/core skips it when no feasible hardware exists.
func Train(d Dataset, n *dnn.Network, epochs int) TrainResult {
	if epochs <= 0 {
		panic("predictor: epochs must be positive")
	}
	final := Accuracy(d, n)
	a := anchorTable[d]
	// Bigger networks converge more slowly.
	tau := 3.0 + math.Log2(math.Max(1, float64(n.TotalParams())/a.refParams))/2

	curve := make([]float64, epochs)
	start := a.floor * 0.35 // roughly random-init quality
	sig := d.String() + n.Signature()
	for e := 0; e < epochs; e++ {
		progress := 1 - math.Exp(-float64(e+1)/tau)
		q := start + (final-start)*progress
		// Per-epoch jitter that dies out as training converges.
		j := (stats.HashUnit(fmt.Sprintf("%s#%d", sig, e)) - 0.5) * 0.02 * (1 - progress)
		curve[e] = stats.Clamp(q+j, 0, 1)
	}
	curve[epochs-1] = final
	return TrainResult{Dataset: d, Final: final, Curve: curve}
}
