package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"nasaic/internal/dnn"
	"nasaic/internal/stats"
)

func TestDatasetMeta(t *testing.T) {
	if CIFAR10.String() != "CIFAR-10" || STL10.String() != "STL-10" || Nuclei.String() != "Nuclei" {
		t.Error("dataset names wrong")
	}
	if CIFAR10.Metric() != "accuracy" || Nuclei.Metric() != "IoU" {
		t.Error("metrics wrong")
	}
	if CIFAR10.Task() != dnn.Classification || Nuclei.Task() != dnn.Segmentation {
		t.Error("tasks wrong")
	}
}

// The calibration anchors from the paper: the smallest network in each space
// must land at the reported lower bound, and the largest near (at or below)
// the ceiling.
func TestCalibrationAnchors(t *testing.T) {
	cases := []struct {
		ds          Dataset
		space       *dnn.Space
		floor, ceil float64
	}{
		{CIFAR10, dnn.CIFARResNetSpace(), 0.7893, 0.9460},
		{STL10, dnn.STLResNetSpace(), 0.7157, 0.7690},
		{Nuclei, dnn.NucleiUNetSpace(), 0.6420, 0.8450},
	}
	for _, c := range cases {
		small := c.space.MustDecode(c.space.Smallest())
		large := c.space.MustDecode(c.space.Largest())
		qs := Accuracy(c.ds, small)
		ql := Accuracy(c.ds, large)
		if math.Abs(qs-c.floor) > 0.008 {
			t.Errorf("%s smallest accuracy %.4f, want ~%.4f", c.ds, qs, c.floor)
		}
		if ql > c.ceil || ql < c.ceil-0.015 {
			t.Errorf("%s largest accuracy %.4f, want just below ceiling %.4f", c.ds, ql, c.ceil)
		}
		if qs >= ql {
			t.Errorf("%s smallest %.4f should be below largest %.4f", c.ds, qs, ql)
		}
	}
}

// The paper's NAS-optimal CIFAR-10 network <32,128,2,256,2,256,2> reaches
// 94.17%; our saturating model must put it within about half a point.
func TestNASBestCIFARAnchor(t *testing.T) {
	n, err := dnn.BuildResNet(dnn.ResNetConfig{
		Name: "resnet9-cifar10", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0:    32,
		Blocks: []dnn.ResBlock{{FN: 128, SK: 2}, {FN: 256, SK: 2}, {FN: 256, SK: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Accuracy(CIFAR10, n)
	if math.Abs(q-0.9417) > 0.006 {
		t.Errorf("NAS-best CIFAR-10 accuracy %.4f, want ~0.9417", q)
	}
}

func TestAccuracyDeterministic(t *testing.T) {
	s := dnn.CIFARResNetSpace()
	n := s.MustDecode([]int{2, 3, 1, 4, 1, 4, 2})
	if Accuracy(CIFAR10, n) != Accuracy(CIFAR10, s.MustDecode([]int{2, 3, 1, 4, 1, 4, 2})) {
		t.Error("accuracy must be deterministic in the architecture")
	}
	// Dataset matters: the same backbone scores differently per dataset.
	if Accuracy(CIFAR10, n) == Accuracy(STL10, n) {
		t.Error("different datasets should not coincide exactly")
	}
}

// Property: accuracy is monotone (up to jitter) in a pure width scaling.
func TestAccuracyMonotoneInWidth(t *testing.T) {
	build := func(fn int) *dnn.Network {
		n, err := dnn.BuildResNet(dnn.ResNetConfig{
			Name: "m", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
			FN0: fn, Blocks: []dnn.ResBlock{{FN: fn, SK: 1}, {FN: fn, SK: 1}, {FN: fn, SK: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	prev := -1.0
	for _, fn := range []int{8, 16, 32, 64, 128, 256} {
		q := Accuracy(CIFAR10, build(fn))
		if q < prev-0.006 { // allow jitter half-width
			t.Errorf("FN=%d: accuracy %.4f dropped below previous %.4f", fn, q, prev)
		}
		prev = q
	}
}

// Property: accuracy stays in [0,1] for arbitrary space points.
func TestAccuracyBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	spaces := []struct {
		ds Dataset
		sp *dnn.Space
	}{
		{CIFAR10, dnn.CIFARResNetSpace()},
		{STL10, dnn.STLResNetSpace()},
		{Nuclei, dnn.NucleiUNetSpace()},
	}
	f := func(_ uint8) bool {
		c := spaces[rng.Intn(len(spaces))]
		n := c.sp.MustDecode(c.sp.Random(rng))
		q := Accuracy(c.ds, n)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTrainCurve(t *testing.T) {
	s := dnn.CIFARResNetSpace()
	n := s.MustDecode(s.Smallest())
	res := Train(CIFAR10, n, 30)
	if len(res.Curve) != 30 {
		t.Fatalf("curve length %d, want 30", len(res.Curve))
	}
	if res.Curve[29] != res.Final {
		t.Error("curve must converge exactly to Final")
	}
	if res.Final != Accuracy(CIFAR10, n) {
		t.Error("Train final must equal Accuracy")
	}
	if res.Curve[0] >= res.Final {
		t.Error("training should start below the converged quality")
	}
	// Determinism.
	res2 := Train(CIFAR10, n, 30)
	for i := range res.Curve {
		if res.Curve[i] != res2.Curve[i] {
			t.Fatal("training curve must be deterministic")
		}
	}
	// Broad upward trend: late average above early average.
	early := (res.Curve[0] + res.Curve[1] + res.Curve[2]) / 3
	late := (res.Curve[27] + res.Curve[28] + res.Curve[29]) / 3
	if late <= early {
		t.Error("learning curve should trend upward")
	}
}

func TestTrainPanicsOnBadEpochs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for epochs=0")
		}
	}()
	s := dnn.CIFARResNetSpace()
	Train(CIFAR10, s.MustDecode(s.Smallest()), 0)
}
