package rl

import (
	"fmt"

	"nasaic/internal/nn"
	"nasaic/internal/stats"
)

// This file is the controller's batched fast path: the B episodes of one
// policy-gradient batch step through the LSTM in lockstep as a column block
// (nn's matrix-matrix kernels) instead of B separate matrix-vector rollouts.
//
// Bit-identity with the sequential path is a hard invariant, enforced by
// differential_test.go:
//
//   - SampleBatch pre-draws its uniforms from the controller RNG in the
//     exact order B sequential Sample calls would (episode-major), then
//     feeds them to stats.CategoricalU, so actions and the post-batch RNG
//     state match draw-for-draw.
//   - The lockstep forward/backward kernels are bit-identical per column to
//     their sequential counterparts (see internal/nn).
//   - AccumulateBatch computes the backward *flows* batched, but replays the
//     parameter-gradient accumulation episode-major with t descending — the
//     exact floating-point add order of B sequential Accumulate calls.

// SampleBatch draws b independent rollouts from the current policy in one
// lockstep pass. The episodes — actions, logits, caches — and the
// controller's RNG state afterwards are bit-identical to b sequential
// Sample calls.
func (c *Controller) SampleBatch(b int) []*Episode {
	return c.sampleBatch(nil, b)
}

// SampleForcedBatch draws b rollouts whose first len(prefix) actions are all
// forced to the given values (the optimizer selector's SA=0, SH=1 mode),
// bit-identical to b sequential SampleForced calls.
func (c *Controller) SampleForcedBatch(prefix []int, b int) []*Episode {
	if len(prefix) > len(c.specs) {
		panic("rl: forced prefix longer than rollout")
	}
	return c.sampleBatch(prefix, b)
}

func (c *Controller) sampleBatch(prefix []int, b int) []*Episode {
	if b <= 0 {
		panic("rl: batch size must be positive")
	}
	T := len(c.specs)
	P := len(prefix)

	// Pre-draw the uniforms episode-major: episode e's step-t draw is
	// u[e*draws + (t-P)], exactly the order b sequential rollouts would
	// consume the stream in (each sequential rollout draws once per
	// non-forced step, in step order).
	draws := T - P
	us := make([]float64, b*draws)
	for i := range us {
		us[i] = c.rng.Float64()
	}

	eps := make([]*Episode, b)
	for e := range eps {
		eps[e] = &Episode{
			Actions: make([]int, T),
			Logits:  make([][]float64, T),
			caches:  make([]*nn.LSTMCache, T),
			hs:      make([][]float64, T),
		}
	}

	state := c.lstm.ZeroBatchState(b)
	x := nn.NewMat(c.hidden, b)
	for e := 0; e < b; e++ {
		x.CopyColFrom(e, c.start.Val, 0)
	}
	for t := 0; t < T; t++ {
		var cacheB *nn.LSTMBatchCache
		state, cacheB = c.lstm.ForwardBatch(x, state)
		logitsB := c.heads[t].ForwardBatch(state.H)
		caches := cacheB.SeqCaches()
		for e := 0; e < b; e++ {
			logits := logitsB.Col(e)
			var a int
			if t < P {
				a = prefix[t]
				if a < 0 || a >= c.specs[t].NumOptions {
					panic(fmt.Sprintf("rl: forced action %d out of range for %s", a, c.specs[t].Name))
				}
			} else {
				a = stats.CategoricalU(us[e*draws+(t-P)], nn.Softmax(logits))
			}
			eps[e].Actions[t] = a
			eps[e].Logits[t] = logits
			eps[e].caches[t] = caches[e]
			eps[e].hs[t] = caches[e].H
		}
		// Next step's input: each episode's chosen embedding column. The
		// per-sequence caches hold copies, so overwriting x here is safe.
		for e := 0; e < b; e++ {
			x.CopyColFrom(e, c.embeds[t].Val, eps[e].Actions[t])
		}
	}
	return eps
}

// AccumulateBatch adds the REINFORCE gradients of a batch of episodes with
// per-episode advantages, bit-identical to calling Accumulate(eps[i],
// advs[i], gamma, batchScale) for i = 0..len(eps)-1 in order.
func (c *Controller) AccumulateBatch(eps []*Episode, advs []float64, gamma, batchScale float64) {
	c.AccumulateMaskedBatch(eps, advs, gamma, batchScale, nil)
}

// AccumulateMaskedBatch is AccumulateBatch with the per-step credit mask of
// AccumulateMasked applied to every episode. The episodes may come from any
// mix of Sample, SampleForced and the batched samplers.
func (c *Controller) AccumulateMaskedBatch(eps []*Episode, advs []float64, gamma, batchScale float64, active []bool) {
	b := len(eps)
	if b == 0 {
		return
	}
	T := len(c.specs)
	if len(advs) != b {
		panic("rl: advantage count mismatch")
	}
	for _, ep := range eps {
		if len(ep.Actions) != T {
			panic("rl: episode length mismatch")
		}
	}
	if active != nil && len(active) != T {
		panic("rl: mask length mismatch")
	}

	// Phase 1 — lockstep BPTT. Only the gradient *flows* (dh, dc, dx) are
	// computed here, through the batched matrix-matrix kernels; the
	// per-(episode, step) pre-activation gradients are retained for phase 2.
	dlogits := make([][][]float64, T) // [t][e] logit gradients
	dzs := make([]*nn.Mat, T)         // [t] 4H×B gate pre-activation grads
	dxs := make([]*nn.Mat, T)         // [t] H×B input grads
	caches := make([]*nn.LSTMCache, b)

	dH := nn.NewMat(c.hidden, b)
	var dC *nn.Mat
	for t := T - 1; t >= 0; t-- {
		disc := pow(gamma, float64(T-1-t))
		opts := c.specs[t].NumOptions
		dLog := nn.NewMat(opts, b)
		dlog := make([][]float64, b)
		for e := 0; e < b; e++ {
			scale := advs[e] * batchScale * disc
			if active != nil && !active[t] {
				scale = 0
			}
			dl := nn.ScaleVec(nn.LogPGrad(eps[e].Logits[t], eps[e].Actions[t]), scale)
			if c.EntropyCoef > 0 && (active == nil || active[t]) {
				// Gradient of −coef·H(π) w.r.t. logits: coef·p_i(log p_i + H).
				p := nn.Softmax(eps[e].Logits[t])
				h := nn.Entropy(p)
				for i := range dl {
					dl[i] += c.EntropyCoef * batchScale * p[i] * (mathLog(p[i]+1e-12) + h)
				}
			}
			dlog[e] = dl
			dLog.SetCol(e, dl)
		}
		dlogits[t] = dlog

		dh := c.heads[t].BackwardBatchFlows(dLog)
		dh.Add(dH) // matches AccumVec(dh, dhNext) per column
		for e := range eps {
			caches[e] = eps[e].caches[t]
		}
		var dz, dx *nn.Mat
		var dPrev nn.LSTMBatchState
		dz, dx, dPrev = c.lstm.BackwardBatch(dh, dC, caches)
		dzs[t], dxs[t] = dz, dx
		dH, dC = dPrev.H, dPrev.C
	}

	// Phase 2 — replay the parameter-gradient accumulation episode-major
	// with t descending: the exact add order of len(eps) sequential
	// Accumulate calls, so batched training is bit-identical (floating-point
	// addition is not associative; order is part of the contract). The LSTM
	// weights take the blocked whole-batch path (one walk over each
	// gradient matrix); heads, start and embeddings are small and replay
	// per step.
	xs := make([][]float64, b*T)
	hps := make([][]float64, b*T)
	k := 0
	for e := 0; e < b; e++ {
		for t := T - 1; t >= 0; t-- {
			xs[k] = eps[e].caches[t].X
			hps[k] = eps[e].caches[t].HPrev
			k++
		}
	}
	c.lstm.AccumBPTTGrads(dzs, xs, hps)

	dxcol := make([]float64, c.hidden)
	for e := 0; e < b; e++ {
		ep := eps[e]
		for t := T - 1; t >= 0; t-- {
			c.heads[t].AccumStepGrads(dlogits[t][e], ep.hs[t])
			dxs[t].ColInto(dxcol, e)
			if t == 0 {
				c.start.Grad.AddCol(0, dxcol)
			} else {
				c.embeds[t-1].Grad.AddCol(ep.Actions[t-1], dxcol)
			}
		}
	}
}
