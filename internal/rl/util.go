package rl

import "math"

func mathLog(x float64) float64 { return math.Log(x) }

func pow(base, exp float64) float64 {
	if base == 1 {
		return 1
	}
	return math.Pow(base, exp)
}

// Trainer bundles the REINFORCE training loop state: the EMA reward
// baseline b and the discount γ of Eq. (1).
type Trainer struct {
	Gamma     float64
	BatchSize int

	baselineAlpha float64
	baseline      float64
	baselineInit  bool
	steps         int
}

// NewTrainer returns a trainer with the defaults used in the experiments:
// γ=1 (undiscounted within the short rollout), batch size 1 episode per
// update, and an exponential-moving-average baseline with α=0.05 ("the
// average exponential moving of rewards", Eq. 1).
func NewTrainer() *Trainer {
	return &Trainer{Gamma: 1.0, BatchSize: 1, baselineAlpha: 0.05}
}

// Baseline returns the current reward baseline b.
func (t *Trainer) Baseline() float64 { return t.baseline }

// Advantage folds reward into the baseline and returns (R − b) computed
// against the pre-update baseline.
func (t *Trainer) Advantage(reward float64) float64 {
	if !t.baselineInit {
		t.baseline = reward
		t.baselineInit = true
		return 0
	}
	adv := reward - t.baseline
	t.baseline = t.baselineAlpha*reward + (1-t.baselineAlpha)*t.baseline
	return adv
}
