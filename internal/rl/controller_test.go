package rl

import (
	"math"
	"testing"

	"nasaic/internal/nn"
	"nasaic/internal/stats"
)

func testSpecs() []DecisionSpec {
	return []DecisionSpec{
		{Name: "FN0", NumOptions: 4},
		{Name: "SK0", NumOptions: 3},
		{Name: "df", NumOptions: 3},
		{Name: "pe", NumOptions: 5},
	}
}

func TestControllerSampleShape(t *testing.T) {
	c := NewController(testSpecs(), 16, stats.NewRNG(1))
	ep := c.Sample()
	if len(ep.Actions) != 4 || len(ep.Logits) != 4 {
		t.Fatalf("episode shape wrong: %d actions", len(ep.Actions))
	}
	for tIdx, s := range testSpecs() {
		if a := ep.Actions[tIdx]; a < 0 || a >= s.NumOptions {
			t.Errorf("step %d: action %d out of range [0,%d)", tIdx, a, s.NumOptions)
		}
		if len(ep.Logits[tIdx]) != s.NumOptions {
			t.Errorf("step %d: %d logits, want %d", tIdx, len(ep.Logits[tIdx]), s.NumOptions)
		}
	}
	if lp := ep.LogProb(); lp >= 0 || math.IsNaN(lp) {
		t.Errorf("log prob %f should be negative and finite", lp)
	}
}

func TestControllerDeterministicGivenSeed(t *testing.T) {
	a := NewController(testSpecs(), 16, stats.NewRNG(42)).Sample()
	b := NewController(testSpecs(), 16, stats.NewRNG(42)).Sample()
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			t.Fatal("same seed must reproduce the same rollout")
		}
	}
}

func TestGreedyAndProbsConsistent(t *testing.T) {
	c := NewController(testSpecs(), 16, stats.NewRNG(3))
	g := c.Greedy()
	probs := c.Probs()
	if len(g) != 4 || len(probs) != 4 {
		t.Fatal("wrong lengths")
	}
	for tIdx := range g {
		if g[tIdx] != stats.ArgMax(probs[tIdx]) {
			t.Errorf("step %d: greedy %d != argmax of probs", tIdx, g[tIdx])
		}
		var sum float64
		for _, p := range probs[tIdx] {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("step %d: probs sum to %f", tIdx, sum)
		}
	}
}

// The core learning test: with a reward that prefers one specific action
// tuple, REINFORCE must concentrate probability mass on it.
func TestControllerLearnsTargetTuple(t *testing.T) {
	rng := stats.NewRNG(7)
	c := NewController(testSpecs(), 24, rng)
	opt := nn.NewRMSProp()
	opt.LR = 0.02
	opt.LRDecaySteps = 0
	tr := NewTrainer()
	target := []int{2, 1, 0, 3}

	reward := func(actions []int) float64 {
		r := 0.0
		for i, a := range actions {
			if a == target[i] {
				r += 0.25
			}
		}
		return r
	}

	for ep := 0; ep < 600; ep++ {
		e := c.Sample()
		adv := tr.Advantage(reward(e.Actions))
		c.Accumulate(e, adv, tr.Gamma, 1.0)
		c.Update(opt)
	}
	g := c.Greedy()
	match := 0
	for i := range g {
		if g[i] == target[i] {
			match++
		}
	}
	if match < 3 {
		t.Errorf("greedy rollout %v matches target %v on only %d/4 decisions", g, target, match)
	}
}

// Training must raise the expected reward over time (weaker, faster check).
func TestTrainingImprovesReward(t *testing.T) {
	rng := stats.NewRNG(9)
	c := NewController(testSpecs(), 16, rng)
	opt := nn.NewRMSProp()
	opt.LR = 0.02
	opt.LRDecaySteps = 0
	tr := NewTrainer()
	reward := func(a []int) float64 {
		if a[0] == 1 {
			return 1
		}
		return 0
	}
	early, late := 0.0, 0.0
	const n = 300
	for ep := 0; ep < n; ep++ {
		e := c.Sample()
		r := reward(e.Actions)
		if ep < 50 {
			early += r
		}
		if ep >= n-50 {
			late += r
		}
		adv := tr.Advantage(r)
		c.Accumulate(e, adv, tr.Gamma, 1.0)
		c.Update(opt)
	}
	if late <= early {
		t.Errorf("reward did not improve: early %f late %f", early, late)
	}
}

func TestTrainerBaseline(t *testing.T) {
	tr := NewTrainer()
	if adv := tr.Advantage(1.0); adv != 0 {
		t.Errorf("first advantage should be 0 (baseline bootstrap), got %f", adv)
	}
	adv := tr.Advantage(2.0)
	if adv <= 0 {
		t.Errorf("reward above baseline must yield positive advantage, got %f", adv)
	}
	if tr.Baseline() <= 1.0 || tr.Baseline() >= 2.0 {
		t.Errorf("baseline %f should move toward the new reward", tr.Baseline())
	}
}

func TestBatchAccumulation(t *testing.T) {
	rng := stats.NewRNG(11)
	c := NewController(testSpecs(), 16, rng)
	// Accumulating two episodes with batchScale 0.5 must not panic and must
	// leave finite gradients.
	e1 := c.Sample()
	e2 := c.Sample()
	c.Accumulate(e1, 0.7, 1.0, 0.5)
	c.Accumulate(e2, -0.3, 1.0, 0.5)
	for _, p := range c.Params() {
		for _, g := range p.Grad.W {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("non-finite gradient in %s", p.Name)
			}
		}
	}
	c.Update(nn.NewRMSProp())
}

func TestControllerPanicsOnBadConstruction(t *testing.T) {
	for name, f := range map[string]func(){
		"no specs":    func() { NewController(nil, 8, stats.NewRNG(1)) },
		"zero hidden": func() { NewController(testSpecs(), 0, stats.NewRNG(1)) },
		"zero options": func() {
			NewController([]DecisionSpec{{Name: "x", NumOptions: 0}}, 8, stats.NewRNG(1))
		},
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Discounting: with gamma < 1 earlier steps receive larger discount factors
// (gamma^(T-t) with T-t larger), mirroring Eq. (1). Verify indirectly: the
// gradient magnitude of the first head is smaller with gamma < 1 than with
// gamma = 1 for the same episode and advantage.
func TestDiscountingScalesEarlySteps(t *testing.T) {
	rng := stats.NewRNG(13)
	c := NewController(testSpecs(), 16, rng)
	ep := c.Sample()

	gradNormOfFirstHead := func(gamma float64) float64 {
		c.Accumulate(ep, 1.0, gamma, 1.0)
		n := c.heads[0].W.GradNorm()
		for _, p := range c.Params() {
			p.ZeroGrad()
		}
		return n
	}
	full := gradNormOfFirstHead(1.0)
	discounted := gradNormOfFirstHead(0.5)
	if discounted >= full {
		t.Errorf("gamma=0.5 first-step grad %f should be below gamma=1 grad %f", discounted, full)
	}
}

func TestSampleForcedPinsPrefix(t *testing.T) {
	c := NewController(testSpecs(), 16, stats.NewRNG(21))
	prefix := []int{3, 2}
	for trial := 0; trial < 20; trial++ {
		ep := c.SampleForced(prefix)
		if ep.Actions[0] != 3 || ep.Actions[1] != 2 {
			t.Fatalf("forced prefix not respected: %v", ep.Actions)
		}
		for tIdx := 2; tIdx < len(ep.Actions); tIdx++ {
			if a := ep.Actions[tIdx]; a < 0 || a >= testSpecs()[tIdx].NumOptions {
				t.Fatalf("sampled action out of range at step %d: %d", tIdx, a)
			}
		}
	}
}

func TestSampleForcedPanics(t *testing.T) {
	c := NewController(testSpecs(), 16, stats.NewRNG(22))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for over-long prefix")
			}
		}()
		c.SampleForced([]int{0, 0, 0, 0, 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range forced action")
			}
		}()
		c.SampleForced([]int{99})
	}()
}

// Masked accumulation must leave the masked steps' heads untouched.
func TestAccumulateMaskedZerosInactiveSteps(t *testing.T) {
	c := NewController(testSpecs(), 16, stats.NewRNG(23))
	ep := c.Sample()
	mask := []bool{false, false, true, true}
	c.AccumulateMasked(ep, 1.0, 1.0, 1.0, mask)
	if n := c.heads[0].W.GradNorm(); n != 0 {
		t.Errorf("masked step 0 head received gradient %f", n)
	}
	if n := c.heads[1].W.GradNorm(); n != 0 {
		t.Errorf("masked step 1 head received gradient %f", n)
	}
	if n := c.heads[2].W.GradNorm(); n == 0 {
		t.Error("active step 2 head received no gradient")
	}
	if n := c.heads[3].W.GradNorm(); n == 0 {
		t.Error("active step 3 head received no gradient")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong mask length")
			}
		}()
		c.AccumulateMasked(ep, 1.0, 1.0, 1.0, []bool{true})
	}()
}

// Entropy regularization must flatten the policy relative to an identical
// unregularized training run on a deterministic reward.
func TestEntropyRegularizationKeepsExploring(t *testing.T) {
	train := func(coef float64) float64 {
		rng := stats.NewRNG(31)
		c := NewController(testSpecs()[:1], 16, rng)
		c.EntropyCoef = coef
		opt := nn.NewRMSProp()
		opt.LR = 0.05
		opt.LRDecaySteps = 0
		tr := NewTrainer()
		for ep := 0; ep < 250; ep++ {
			e := c.Sample()
			r := 0.0
			if e.Actions[0] == 1 {
				r = 1
			}
			adv := tr.Advantage(r)
			c.Accumulate(e, adv, 1.0, 1.0)
			c.Update(opt)
		}
		p := c.Probs()[0]
		return nn.Entropy(p)
	}
	plain := train(0)
	regularized := train(0.1)
	if regularized <= plain {
		t.Errorf("entropy bonus should keep the policy flatter: H=%f vs plain %f", regularized, plain)
	}
}
