// Package rl implements the multi-task co-exploration controller of §IV-①:
// a recurrent (LSTM) policy that predicts, in one rollout, the
// hyperparameters of every DNN in the workload followed by the design
// parameters of every sub-accelerator (Fig. 5), trained with the Monte Carlo
// policy gradient of Eq. (1).
package rl

import (
	"fmt"

	"nasaic/internal/nn"
	"nasaic/internal/stats"
)

// DecisionSpec describes one controller output slot: a categorical decision
// with NumOptions choices. The flat decision list is the concatenation of
// the controller's segments — first the m DNN segments, then the k
// sub-accelerator segments.
type DecisionSpec struct {
	Name       string
	NumOptions int
}

// Controller is the REINFORCE-trained RNN policy.
type Controller struct {
	// EntropyCoef adds an entropy bonus to the policy-gradient objective,
	// discouraging premature collapse of the sampling distribution. Zero
	// disables it (the paper's plain REINFORCE).
	EntropyCoef float64

	specs  []DecisionSpec
	hidden int

	lstm   *nn.LSTM
	heads  []*nn.Linear // per-decision logit head
	embeds []*nn.Param  // per-decision input embedding (hidden × options)
	start  *nn.Param    // learned initial input (hidden × 1)

	rng *stats.RNG
}

// NewController builds a controller for the given decision sequence.
func NewController(specs []DecisionSpec, hidden int, rng *stats.RNG) *Controller {
	if len(specs) == 0 {
		panic("rl: controller needs at least one decision")
	}
	if hidden <= 0 {
		panic("rl: hidden size must be positive")
	}
	init := func(p *nn.Param) { p.InitXavier(rng) }
	c := &Controller{
		specs:  append([]DecisionSpec(nil), specs...),
		hidden: hidden,
		lstm:   nn.NewLSTM(hidden, hidden, init),
		start:  nn.NewParam("start", hidden, 1),
		rng:    rng,
	}
	c.start.InitXavier(rng)
	for _, s := range specs {
		if s.NumOptions <= 0 {
			panic(fmt.Sprintf("rl: decision %s has no options", s.Name))
		}
		c.heads = append(c.heads, nn.NewLinear(fmt.Sprintf("head.%s", s.Name), hidden, s.NumOptions, init))
		e := nn.NewParam(fmt.Sprintf("embed.%s", s.Name), hidden, s.NumOptions)
		e.InitXavier(rng)
		c.embeds = append(c.embeds, e)
	}
	return c
}

// NumDecisions returns the rollout length T.
func (c *Controller) NumDecisions() int { return len(c.specs) }

// Specs returns a copy of the decision list.
func (c *Controller) Specs() []DecisionSpec { return append([]DecisionSpec(nil), c.specs...) }

// Params returns every trainable parameter.
func (c *Controller) Params() []*nn.Param {
	ps := []*nn.Param{c.start}
	ps = append(ps, c.lstm.Params()...)
	for i := range c.heads {
		ps = append(ps, c.heads[i].Params()...)
		ps = append(ps, c.embeds[i])
	}
	return ps
}

// Episode is one sampled rollout with everything needed for the policy
// gradient.
type Episode struct {
	Actions []int
	Logits  [][]float64

	caches []*nn.LSTMCache
	hs     [][]float64 // h_t fed to head t
}

// Sample draws one rollout a_1..a_T from the current policy.
func (c *Controller) Sample() *Episode {
	ep := &Episode{
		Actions: make([]int, len(c.specs)),
		Logits:  make([][]float64, len(c.specs)),
		caches:  make([]*nn.LSTMCache, len(c.specs)),
		hs:      make([][]float64, len(c.specs)),
	}
	state := c.lstm.ZeroState()
	x := c.start.Val.Col(0)
	for t := range c.specs {
		var cache *nn.LSTMCache
		state, cache = c.lstm.Forward(x, state)
		logits := c.heads[t].Forward(state.H)
		a := c.rng.Categorical(nn.Softmax(logits))
		ep.Actions[t] = a
		ep.Logits[t] = logits
		ep.caches[t] = cache
		ep.hs[t] = state.H
		x = c.embeds[t].Val.Col(a)
	}
	return ep
}

// SampleForced draws a rollout whose first len(prefix) actions are forced to
// the given values while the remaining steps are sampled from the policy.
// This implements the optimizer selector's SA=0, SH=1 mode (§IV-②): the
// architecture segment is pinned to a previously identified architecture and
// only the hardware segment is explored.
func (c *Controller) SampleForced(prefix []int) *Episode {
	if len(prefix) > len(c.specs) {
		panic("rl: forced prefix longer than rollout")
	}
	ep := &Episode{
		Actions: make([]int, len(c.specs)),
		Logits:  make([][]float64, len(c.specs)),
		caches:  make([]*nn.LSTMCache, len(c.specs)),
		hs:      make([][]float64, len(c.specs)),
	}
	state := c.lstm.ZeroState()
	x := c.start.Val.Col(0)
	for t := range c.specs {
		var cache *nn.LSTMCache
		state, cache = c.lstm.Forward(x, state)
		logits := c.heads[t].Forward(state.H)
		var a int
		if t < len(prefix) {
			a = prefix[t]
			if a < 0 || a >= c.specs[t].NumOptions {
				panic(fmt.Sprintf("rl: forced action %d out of range for %s", a, c.specs[t].Name))
			}
		} else {
			a = c.rng.Categorical(nn.Softmax(logits))
		}
		ep.Actions[t] = a
		ep.Logits[t] = logits
		ep.caches[t] = cache
		ep.hs[t] = state.H
		x = c.embeds[t].Val.Col(a)
	}
	return ep
}

// Greedy returns the argmax rollout under the current policy (no sampling).
func (c *Controller) Greedy() []int {
	actions := make([]int, len(c.specs))
	state := c.lstm.ZeroState()
	x := c.start.Val.Col(0)
	for t := range c.specs {
		state, _ = c.lstm.Forward(x, state)
		logits := c.heads[t].Forward(state.H)
		actions[t] = stats.ArgMax(logits)
		x = c.embeds[t].Val.Col(actions[t])
	}
	return actions
}

// LogProb returns Σ_t log π(a_t) of an episode (from its recorded logits).
func (ep *Episode) LogProb() float64 {
	var lp float64
	for t, logits := range ep.Logits {
		p := nn.Softmax(logits)
		lp += logProb(p[ep.Actions[t]])
	}
	return lp
}

func logProb(p float64) float64 {
	if p < 1e-300 {
		p = 1e-300
	}
	return mathLog(p)
}

// Accumulate adds the REINFORCE gradient of one episode into the parameter
// gradient buffers following Eq. (1): each step t receives the advantage
// (reward − baseline) discounted by gamma^(T−t), and the whole episode is
// scaled by batchScale = 1/m. Callers run Accumulate for every episode in a
// batch and then Update once.
func (c *Controller) Accumulate(ep *Episode, advantage, gamma, batchScale float64) {
	c.AccumulateMasked(ep, advantage, gamma, batchScale, nil)
}

// AccumulateMasked is Accumulate with a per-step credit mask: steps with
// active[t]=false receive no policy-gradient signal (their actions were
// forced, not chosen — the optimizer selector's switch semantics). A nil
// mask activates every step.
func (c *Controller) AccumulateMasked(ep *Episode, advantage, gamma, batchScale float64, active []bool) {
	T := len(c.specs)
	if len(ep.Actions) != T {
		panic("rl: episode length mismatch")
	}
	if active != nil && len(active) != T {
		panic("rl: mask length mismatch")
	}
	dhNext := make([]float64, c.hidden)
	var dcNext []float64

	for t := T - 1; t >= 0; t-- {
		scale := advantage * batchScale * pow(gamma, float64(T-1-t))
		if active != nil && !active[t] {
			scale = 0
		}
		dlogits := nn.ScaleVec(nn.LogPGrad(ep.Logits[t], ep.Actions[t]), scale)
		if c.EntropyCoef > 0 && (active == nil || active[t]) {
			// Gradient of −coef·H(π) w.r.t. logits: coef·p_i(log p_i + H).
			p := nn.Softmax(ep.Logits[t])
			h := nn.Entropy(p)
			for i := range dlogits {
				dlogits[i] += c.EntropyCoef * batchScale * p[i] * (mathLog(p[i]+1e-12) + h)
			}
		}
		dh := c.heads[t].Backward(dlogits, ep.hs[t])
		nn.AccumVec(dh, dhNext)
		dx, dPrev := c.lstm.Backward(dh, dcNext, ep.caches[t])
		dhNext, dcNext = dPrev.H, dPrev.C
		if t == 0 {
			c.start.Grad.AddCol(0, dx)
		} else {
			c.embeds[t-1].Grad.AddCol(ep.Actions[t-1], dx)
		}
	}
}

// Update applies one optimizer step and clears the gradients.
func (c *Controller) Update(opt *nn.RMSProp) {
	params := c.Params()
	opt.Step(params)
	for _, p := range params {
		p.ZeroGrad()
	}
	nn.CheckFinite(params)
}

// Probs returns the per-step action distributions along the greedy path —
// useful for inspecting convergence.
func (c *Controller) Probs() [][]float64 {
	out := make([][]float64, len(c.specs))
	state := c.lstm.ZeroState()
	x := c.start.Val.Col(0)
	for t := range c.specs {
		state, _ = c.lstm.Forward(x, state)
		p := nn.Softmax(c.heads[t].Forward(state.H))
		out[t] = p
		x = c.embeds[t].Val.Col(stats.ArgMax(p))
	}
	return out
}
