package rl

import (
	"fmt"
	"math"
	"testing"

	"nasaic/internal/nn"
	"nasaic/internal/stats"
)

// The batched controller path promises bit-identity with the sequential
// path: same actions, same logits, same RNG stream consumption, and — after
// AccumulateBatch/Update — the same parameters down to the last bit.
// Floating-point addition is not associative, so this is a real contract
// (the batched implementation replays its gradient adds in the sequential
// order); these differential tests enforce it across batch sizes, forced
// prefixes, masks, entropy regularization and multi-round training.

func wideSpecs() []DecisionSpec {
	return []DecisionSpec{
		{Name: "FN0", NumOptions: 4},
		{Name: "SK0", NumOptions: 3},
		{Name: "FN1", NumOptions: 6},
		{Name: "df", NumOptions: 3},
		{Name: "pe", NumOptions: 9},
		{Name: "bw", NumOptions: 5},
	}
}

// twinControllers builds two controllers with identical parameters and
// independent but identically seeded RNG streams.
func twinControllers(t *testing.T, seed int64, hidden int) (seq, bat *Controller) {
	t.Helper()
	seq = NewController(wideSpecs(), hidden, stats.NewRNG(seed))
	bat = NewController(wideSpecs(), hidden, stats.NewRNG(seed))
	requireParamsEqual(t, seq, bat, "fresh controllers")
	return seq, bat
}

func requireParamsEqual(t *testing.T, a, b *Controller, stage string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: parameter count %d vs %d", stage, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("%s: parameter order diverged: %s vs %s", stage, pa[i].Name, pb[i].Name)
		}
		for j := range pa[i].Val.W {
			if va, vb := pa[i].Val.W[j], pb[i].Val.W[j]; va != vb {
				t.Fatalf("%s: %s[%d] = %.17g (seq) vs %.17g (batched), delta %g",
					stage, pa[i].Name, j, va, vb, va-vb)
			}
		}
		for j := range pa[i].Grad.W {
			if ga, gb := pa[i].Grad.W[j], pb[i].Grad.W[j]; ga != gb {
				t.Fatalf("%s: grad %s[%d] = %.17g (seq) vs %.17g (batched), delta %g",
					stage, pa[i].Name, j, ga, gb, ga-gb)
			}
		}
	}
}

func requireEpisodesEqual(t *testing.T, seqEps, batEps []*Episode, stage string) {
	t.Helper()
	if len(seqEps) != len(batEps) {
		t.Fatalf("%s: episode count %d vs %d", stage, len(seqEps), len(batEps))
	}
	for e := range seqEps {
		a, b := seqEps[e], batEps[e]
		for tt := range a.Actions {
			if a.Actions[tt] != b.Actions[tt] {
				t.Fatalf("%s: episode %d step %d action %d vs %d", stage, e, tt, a.Actions[tt], b.Actions[tt])
			}
			for i := range a.Logits[tt] {
				if a.Logits[tt][i] != b.Logits[tt][i] {
					t.Fatalf("%s: episode %d step %d logit[%d] %.17g vs %.17g",
						stage, e, tt, i, a.Logits[tt][i], b.Logits[tt][i])
				}
			}
		}
		if lpa, lpb := a.LogProb(), b.LogProb(); lpa != lpb {
			t.Fatalf("%s: episode %d log prob %.17g vs %.17g", stage, e, lpa, lpb)
		}
	}
}

// advsFor derives a deterministic per-episode advantage spread (positive and
// negative, magnitude varying) without touching the controller RNGs.
func advsFor(b int, round int) []float64 {
	advs := make([]float64, b)
	for i := range advs {
		advs[i] = math.Sin(float64(i*7+round*13+1)) * 1.5
	}
	return advs
}

func TestSampleBatchBitIdenticalToSequential(t *testing.T) {
	for _, b := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("batch=%d", b), func(t *testing.T) {
			seq, bat := twinControllers(t, 42+int64(b), 20)
			seqEps := make([]*Episode, b)
			for e := range seqEps {
				seqEps[e] = seq.Sample()
			}
			batEps := bat.SampleBatch(b)
			requireEpisodesEqual(t, seqEps, batEps, "sample")
			// Both paths must have consumed the RNG stream identically.
			if us, ub := seq.rng.Float64(), bat.rng.Float64(); us != ub {
				t.Fatalf("post-sample RNG streams diverged: %.17g vs %.17g", us, ub)
			}
		})
	}
}

func TestSampleForcedBatchBitIdenticalToSequential(t *testing.T) {
	prefix := []int{2, 1, 5}
	for _, b := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("batch=%d", b), func(t *testing.T) {
			seq, bat := twinControllers(t, 7+int64(b), 20)
			seqEps := make([]*Episode, b)
			for e := range seqEps {
				seqEps[e] = seq.SampleForced(prefix)
			}
			batEps := bat.SampleForcedBatch(prefix, b)
			requireEpisodesEqual(t, seqEps, batEps, "forced sample")
			for e, ep := range batEps {
				for i, want := range prefix {
					if ep.Actions[i] != want {
						t.Fatalf("episode %d: forced action %d not pinned", e, i)
					}
				}
			}
			if us, ub := seq.rng.Float64(), bat.rng.Float64(); us != ub {
				t.Fatalf("post-sample RNG streams diverged: %.17g vs %.17g", us, ub)
			}
		})
	}
}

// The full update differential: sample, accumulate with per-episode
// advantages, optimizer step — gradients and post-update parameters must be
// bit-identical, with and without mask and entropy regularization.
func TestAccumulateBatchBitIdenticalToSequential(t *testing.T) {
	mask := []bool{false, false, false, true, true, true}
	cases := []struct {
		name    string
		entropy float64
		masked  bool
	}{
		{"plain", 0, false},
		{"entropy", 0.02, false},
		{"masked", 0, true},
		{"masked+entropy", 0.015, true},
	}
	for _, tc := range cases {
		for _, b := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/batch=%d", tc.name, b), func(t *testing.T) {
				seq, bat := twinControllers(t, 100+int64(b), 24)
				seq.EntropyCoef, bat.EntropyCoef = tc.entropy, tc.entropy
				var active []bool
				if tc.masked {
					active = mask
				}

				seqEps := make([]*Episode, b)
				for e := range seqEps {
					seqEps[e] = seq.Sample()
				}
				batEps := bat.SampleBatch(b)
				requireEpisodesEqual(t, seqEps, batEps, "sample")

				advs := advsFor(b, 0)
				scale := 1.0 / float64(b)
				for e := range seqEps {
					seq.AccumulateMasked(seqEps[e], advs[e], 0.97, scale, active)
				}
				bat.AccumulateMaskedBatch(batEps, advs, 0.97, scale, active)
				requireParamsEqual(t, seq, bat, "post-accumulate")

				seq.Update(nn.NewRMSProp())
				bat.Update(nn.NewRMSProp())
				requireParamsEqual(t, seq, bat, "post-update")
			})
		}
	}
}

// Multi-round differential mimicking core.Run's structure: a sequential
// combined sample, a forced lockstep batch, a joint accumulation of the
// heterogeneous episode set, a replay accumulation of a retained episode
// from an earlier round, and periodic updates — over several rounds with a
// shared optimizer, so divergence anywhere would compound and be caught.
func TestTrainingLoopBitIdenticalAcrossRounds(t *testing.T) {
	seq, bat := twinControllers(t, 77, 24)
	seq.EntropyCoef, bat.EntropyCoef = 0.015, 0.015
	optSeq, optBat := nn.NewRMSProp(), nn.NewRMSProp()
	optSeq.LR, optBat.LR = 0.03, 0.03
	mask := []bool{false, false, true, true, true, true}
	const phi = 5

	var replaySeq, replayBat *Episode
	for round := 0; round < 6; round++ {
		combinedSeq := seq.Sample()
		combinedBat := bat.Sample()

		prefixSeq := combinedSeq.Actions[:2]
		prefixBat := combinedBat.Actions[:2]
		seqEps := []*Episode{combinedSeq}
		for i := 0; i < phi; i++ {
			seqEps = append(seqEps, seq.SampleForced(prefixSeq))
		}
		batEps := append([]*Episode{combinedBat}, bat.SampleForcedBatch(prefixBat, phi)...)
		requireEpisodesEqual(t, seqEps, batEps, fmt.Sprintf("round %d sample", round))

		advs := advsFor(len(seqEps), round)
		scale := 0.2 / float64(len(seqEps))
		for e := range seqEps {
			seq.AccumulateMasked(seqEps[e], advs[e], 1.0, scale, mask)
		}
		bat.AccumulateMaskedBatch(batEps, advs, 1.0, scale, mask)

		// Self-imitation replay of an episode retained from a prior round,
		// accumulated sequentially on both sides (as core.Run does).
		if replaySeq != nil {
			seq.Accumulate(replaySeq, 0.4, 1.0, 0.2)
			bat.Accumulate(replayBat, 0.4, 1.0, 0.2)
		}
		replaySeq, replayBat = seqEps[1+round%phi], batEps[1+round%phi]

		if round%2 == 1 {
			seq.Update(optSeq)
			bat.Update(optBat)
		}
		requireParamsEqual(t, seq, bat, fmt.Sprintf("round %d", round))
	}
}

func TestBatchAPIValidation(t *testing.T) {
	c := NewController(wideSpecs(), 12, stats.NewRNG(5))
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("zero batch", func() { c.SampleBatch(0) })
	expectPanic("negative batch", func() { c.SampleBatch(-3) })
	expectPanic("long prefix", func() { c.SampleForcedBatch(make([]int, 7), 2) })
	expectPanic("bad forced action", func() { c.SampleForcedBatch([]int{99}, 2) })
	eps := c.SampleBatch(3)
	expectPanic("advantage count", func() { c.AccumulateBatch(eps, []float64{1}, 1, 1) })
	expectPanic("mask length", func() { c.AccumulateMaskedBatch(eps, []float64{1, 1, 1}, 1, 1, []bool{true}) })

	// Empty batch accumulation is a no-op, matching a zero-iteration loop.
	c.AccumulateBatch(nil, nil, 1, 1)
	for _, p := range c.Params() {
		if n := p.GradNorm(); n != 0 {
			t.Errorf("empty-batch accumulate touched %s (grad norm %g)", p.Name, n)
		}
	}
}
