package dnn

import "fmt"

// UNetConfig determines a U-Net architecture in the paper's segmentation
// search space (§V-A): Height resolution levels (1–5) and a filter count per
// level, where the paper's per-level options are {4, 8, 16}·2^(i-1).
type UNetConfig struct {
	Name   string
	InputX int
	InputY int
	InputC int
	OutC   int   // output channels (1 for binary nuclei masks)
	FN     []int // filters per level; len(FN) == Height
}

// Height returns the number of resolution levels.
func (c UNetConfig) Height() int { return len(c.FN) }

// BuildUNet constructs the U-Net layer chain: an encoder of Height levels
// (two 3x3 convolutions per level, 2x2 max-pool between levels), a symmetric
// decoder (2x2 up-convolution, then two 3x3 convolutions over the
// concatenated skip tensor), and a final 1x1 output convolution [26].
func BuildUNet(cfg UNetConfig) (*Network, error) {
	h := cfg.Height()
	if h < 1 {
		return nil, fmt.Errorf("dnn: unet %s: height must be >= 1", cfg.Name)
	}
	for i, fn := range cfg.FN {
		if fn <= 0 {
			return nil, fmt.Errorf("dnn: unet %s: level %d FN must be positive, got %d", cfg.Name, i+1, fn)
		}
	}
	if cfg.InputX>>(h-1) < 1 || cfg.InputY>>(h-1) < 1 {
		return nil, fmt.Errorf("dnn: unet %s: input %dx%d too small for height %d",
			cfg.Name, cfg.InputX, cfg.InputY, h)
	}

	x, y, c := cfg.InputX, cfg.InputY, cfg.InputC
	n := &Network{Name: cfg.Name, Task: Segmentation}
	add := func(l Layer) {
		n.Layers = append(n.Layers, l)
		x, y, c = l.OutX(), l.OutY(), l.K
	}

	// Encoder (the deepest level acts as the bottleneck).
	for i := 0; i < h; i++ {
		fn := cfg.FN[i]
		add(Layer{Name: fmt.Sprintf("enc%d_conv1", i+1), Op: Conv, K: fn, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
		add(Layer{Name: fmt.Sprintf("enc%d_conv2", i+1), Op: Conv, K: fn, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
		if i < h-1 {
			add(Layer{Name: fmt.Sprintf("enc%d_pool", i+1), Op: MaxPool, K: c, C: c, R: 2, S: 2, X: x, Y: y, Stride: 2})
		}
	}
	// Decoder. After the up-convolution to level i's filter count, the skip
	// concatenation doubles the input channels of the first decoder conv.
	for i := h - 2; i >= 0; i-- {
		fn := cfg.FN[i]
		add(Layer{Name: fmt.Sprintf("dec%d_up", i+1), Op: UpConv, K: fn, C: c, R: 2, S: 2, X: x, Y: y, Stride: 1})
		// Model the concatenated tensor by widening the conv input channels.
		n.Layers = append(n.Layers, Layer{
			Name: fmt.Sprintf("dec%d_conv1", i+1), Op: Conv,
			K: fn, C: 2 * fn, R: 3, S: 3, X: x, Y: y, Stride: 1,
		})
		c = fn
		add(Layer{Name: fmt.Sprintf("dec%d_conv2", i+1), Op: Conv, K: fn, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
	}
	add(Layer{Name: "out_conv", Op: Conv, K: cfg.OutC, C: c, R: 1, S: 1, X: x, Y: y, Stride: 1})

	// The decoder concatenation intentionally breaks strict chain channel
	// agreement, so validate layers individually rather than as a chain.
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("dnn: unet %s layer %d: %w", cfg.Name, i, err)
		}
	}
	return n, nil
}

// UNetEncoding renders the architecture tuple ⟨H, FN1, ..., FNh⟩.
func UNetEncoding(cfg UNetConfig) string {
	s := fmt.Sprintf("<H=%d", cfg.Height())
	for _, fn := range cfg.FN {
		s += fmt.Sprintf(", %d", fn)
	}
	return s + ">"
}
