package dnn

import (
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

func TestCIFARSpaceDecodesTableIIArchitectures(t *testing.T) {
	s := CIFARResNetSpace()
	// The NAS-optimal network from Table II: <32, 128, 2, 256, 2, 256, 2>.
	idx := func(d Decision, v int) int {
		for i, o := range d.Options {
			if o == v {
				return i
			}
		}
		t.Fatalf("option %d not in %s %v", v, d.Name, d.Options)
		return -1
	}
	vals := []int{32, 128, 2, 256, 2, 256, 2}
	choices := make([]int, len(vals))
	for i, v := range vals {
		choices[i] = idx(s.Decisions[i], v)
	}
	n, err := s.Decode(choices)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	if n.MaxWidth() != 256 {
		t.Errorf("MaxWidth = %d, want 256", n.MaxWidth())
	}
	// conv0 + 3*(1 + SK) convs + fc = 1 + (3+3+3)... blocks have 1+2 convs each.
	if got, want := n.Depth(), 1+3*(1+2)+1; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
}

func TestSpaceSmallestLargest(t *testing.T) {
	for _, s := range []*Space{CIFARResNetSpace(), STLResNetSpace(), NucleiUNetSpace()} {
		small := s.MustDecode(s.Smallest())
		large := s.MustDecode(s.Largest())
		if small.TotalParams() >= large.TotalParams() {
			t.Errorf("%s: smallest params %d !< largest %d",
				s.Name, small.TotalParams(), large.TotalParams())
		}
		if small.TotalMACs() >= large.TotalMACs() {
			t.Errorf("%s: smallest MACs %d !< largest %d",
				s.Name, small.TotalMACs(), large.TotalMACs())
		}
	}
}

func TestSpaceValidateRejectsBadVectors(t *testing.T) {
	s := CIFARResNetSpace()
	if err := s.Validate([]int{0}); err == nil {
		t.Error("short vector accepted")
	}
	bad := s.Smallest()
	bad[0] = len(s.Decisions[0].Options)
	if err := s.Validate(bad); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.Decode(bad); err == nil {
		t.Error("Decode accepted out-of-range index")
	}
}

func TestSpaceSize(t *testing.T) {
	s := CIFARResNetSpace()
	want := int64(6 * 6 * 3 * 6 * 3 * 6 * 3)
	if got := s.Size(); got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
}

func TestUNetSpaceHeightControlsDepth(t *testing.T) {
	s := NucleiUNetSpace()
	c := s.Smallest() // height 1
	n1 := s.MustDecode(c)
	c[0] = 4 // height 5
	n5 := s.MustDecode(c)
	if n5.Depth() <= n1.Depth() {
		t.Errorf("height-5 depth %d should exceed height-1 depth %d", n5.Depth(), n1.Depth())
	}
	// Height-1 U-Net: enc convs x2 + out conv = 3 compute layers, no upconv.
	if got := n1.Depth(); got != 3 {
		t.Errorf("height-1 depth = %d, want 3", got)
	}
}

func TestUNetFilterOptionsFollowPaperScaling(t *testing.T) {
	s := NucleiUNetSpace()
	for i := 1; i <= 5; i++ {
		scale := 1 << (i - 1)
		want := []int{4 * scale, 8 * scale, 16 * scale}
		got := s.Decisions[i].Options
		if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Errorf("level %d options = %v, want %v", i, got, want)
		}
	}
}

// Property: every random choice vector decodes into a structurally valid
// network for all three spaces.
func TestSpaceRandomAlwaysDecodes(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, s := range []*Space{CIFARResNetSpace(), STLResNetSpace(), NucleiUNetSpace()} {
		s := s
		f := func(seed uint16) bool {
			_ = seed
			c := s.Random(rng)
			n, err := s.Decode(c)
			if err != nil {
				return false
			}
			for _, l := range n.Layers {
				if l.Validate() != nil {
					return false
				}
			}
			return n.TotalMACs() > 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestEncodingStrings(t *testing.T) {
	cfg := ResNetConfig{FN0: 32, Blocks: []ResBlock{{128, 2}, {256, 2}, {256, 2}}}
	if got, want := ResNetEncoding(cfg), "<32, 128, 2, 256, 2, 256, 2>"; got != want {
		t.Errorf("ResNetEncoding = %q, want %q", got, want)
	}
	u := UNetConfig{FN: []int{8, 16, 32}}
	if got, want := UNetEncoding(u), "<H=3, 8, 16, 32>"; got != want {
		t.Errorf("UNetEncoding = %q, want %q", got, want)
	}
}
