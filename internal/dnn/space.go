package dnn

import (
	"fmt"

	"nasaic/internal/stats"
)

// Decision is one categorical hyperparameter choice exposed to the
// controller: a name and the list of integer option values.
type Decision struct {
	Name    string
	Options []int
}

// Space is a neural-architecture search space: an ordered list of decisions
// plus a decoder that turns a choice vector (option indices, one per
// decision) into a concrete Network.
type Space struct {
	Name      string
	Task      Task
	Decisions []Decision
	// Decode builds the network for a choice vector. Implementations must be
	// deterministic. The returned error indicates an out-of-range vector.
	Decode func(choices []int) (*Network, error)
}

// NumChoices returns the number of decisions.
func (s *Space) NumChoices() int { return len(s.Decisions) }

// Size returns the total number of points in the space.
func (s *Space) Size() int64 {
	n := int64(1)
	for _, d := range s.Decisions {
		n *= int64(len(d.Options))
	}
	return n
}

// Validate checks a choice vector against the decision list.
func (s *Space) Validate(choices []int) error {
	if len(choices) != len(s.Decisions) {
		return fmt.Errorf("dnn: space %s: got %d choices, want %d", s.Name, len(choices), len(s.Decisions))
	}
	for i, c := range choices {
		if c < 0 || c >= len(s.Decisions[i].Options) {
			return fmt.Errorf("dnn: space %s: decision %s index %d out of range [0,%d)",
				s.Name, s.Decisions[i].Name, c, len(s.Decisions[i].Options))
		}
	}
	return nil
}

// Values maps a choice vector to the selected option values.
func (s *Space) Values(choices []int) []int {
	out := make([]int, len(choices))
	for i, c := range choices {
		out[i] = s.Decisions[i].Options[c]
	}
	return out
}

// ValuesString renders the selected option values in the paper's tuple
// notation, e.g. "<32, 128, 2, 256, 2, 256, 2>".
func (s *Space) ValuesString(choices []int) string {
	vals := s.Values(choices)
	out := "<"
	for i, v := range vals {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d", v)
	}
	return out + ">"
}

// Smallest returns the choice vector selecting the first (smallest) option of
// every decision; by construction of the spaces below this is the smallest
// architecture, used for the paper's accuracy lower bounds (Fig. 6).
func (s *Space) Smallest() []int { return make([]int, len(s.Decisions)) }

// Largest returns the choice vector selecting the last option of every
// decision.
func (s *Space) Largest() []int {
	out := make([]int, len(s.Decisions))
	for i, d := range s.Decisions {
		out[i] = len(d.Options) - 1
	}
	return out
}

// Random returns a uniformly random choice vector.
func (s *Space) Random(rng *stats.RNG) []int {
	out := make([]int, len(s.Decisions))
	for i, d := range s.Decisions {
		out[i] = rng.Intn(len(d.Options))
	}
	return out
}

// MustDecode decodes a vector that is known to be valid, panicking otherwise.
// Intended for tests and examples.
func (s *Space) MustDecode(choices []int) *Network {
	n, err := s.Decode(choices)
	if err != nil {
		panic(err)
	}
	return n
}

// CIFARResNetSpace returns the paper's CIFAR-10 classification space: a
// ResNet-9 backbone with 3 residual blocks, per-block filter counts and skip
// counts (Fig. 1, Table II). The filter option list covers the values
// observed in the paper's reported solutions (8–256).
func CIFARResNetSpace() *Space {
	fn := []int{8, 16, 32, 64, 128, 256}
	sk := []int{0, 1, 2}
	s := &Space{
		Name: "cifar10-resnet9",
		Task: Classification,
		Decisions: []Decision{
			{Name: "FN0", Options: fn},
			{Name: "FN1", Options: fn}, {Name: "SK1", Options: sk},
			{Name: "FN2", Options: fn}, {Name: "SK2", Options: sk},
			{Name: "FN3", Options: fn}, {Name: "SK3", Options: sk},
		},
	}
	s.Decode = func(choices []int) (*Network, error) {
		if err := s.Validate(choices); err != nil {
			return nil, err
		}
		v := s.Values(choices)
		return BuildResNet(ResNetConfig{
			Name: "resnet9-cifar10", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
			FN0: v[0],
			Blocks: []ResBlock{
				{FN: v[1], SK: v[2]},
				{FN: v[3], SK: v[4]},
				{FN: v[5], SK: v[6]},
			},
		})
	}
	return s
}

// STLResNetSpace returns the paper's STL-10 classification space: because
// STL-10 images are 96x96, the backbone is deepened to 5 residual blocks with
// up to 3 convolutions per block and up to 512 filters (§V-A).
func STLResNetSpace() *Space {
	fn := []int{32, 64, 128, 256, 512}
	sk := []int{0, 1, 2, 3}
	dec := []Decision{{Name: "FN0", Options: []int{16, 32, 64}}}
	for i := 1; i <= 5; i++ {
		dec = append(dec,
			Decision{Name: fmt.Sprintf("FN%d", i), Options: fn},
			Decision{Name: fmt.Sprintf("SK%d", i), Options: sk},
		)
	}
	s := &Space{Name: "stl10-resnet", Task: Classification, Decisions: dec}
	s.Decode = func(choices []int) (*Network, error) {
		if err := s.Validate(choices); err != nil {
			return nil, err
		}
		v := s.Values(choices)
		blocks := make([]ResBlock, 5)
		for i := 0; i < 5; i++ {
			blocks[i] = ResBlock{FN: v[1+2*i], SK: v[2+2*i]}
		}
		return BuildResNet(ResNetConfig{
			Name: "resnet-stl10", InputX: 96, InputY: 96, InputC: 3, Classes: 10,
			FN0: v[0], Blocks: blocks,
		})
	}
	return s
}

// NucleiUNetSpace returns the paper's nuclei-segmentation space: a U-Net with
// height 1–5 and per-level filter counts from {4,8,16}·2^(i-1) (§V-A, Fig. 3).
// Level decisions beyond the chosen height are ignored by the decoder.
func NucleiUNetSpace() *Space {
	dec := []Decision{{Name: "Height", Options: []int{1, 2, 3, 4, 5}}}
	for i := 1; i <= 5; i++ {
		scale := 1 << (i - 1)
		dec = append(dec, Decision{
			Name:    fmt.Sprintf("FN%d", i),
			Options: []int{4 * scale, 8 * scale, 16 * scale},
		})
	}
	s := &Space{Name: "nuclei-unet", Task: Segmentation, Decisions: dec}
	s.Decode = func(choices []int) (*Network, error) {
		if err := s.Validate(choices); err != nil {
			return nil, err
		}
		v := s.Values(choices)
		h := v[0]
		return BuildUNet(UNetConfig{
			Name: "unet-nuclei", InputX: 128, InputY: 128, InputC: 3, OutC: 1,
			FN: v[1 : 1+h],
		})
	}
	return s
}
