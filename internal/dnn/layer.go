// Package dnn models the neural-architecture side of NASAIC: network layers
// with full shape information, the ResNet-9 and U-Net backbone generators the
// paper searches over (§III-➊, §V-A), and the hyperparameter search spaces
// used by the controller.
//
// A dnn.Network is a plain dependency chain of layers. The accelerator side
// (internal/maestro, internal/sched) consumes the per-layer dimensions to
// produce latency/energy/area; the accuracy side (internal/predictor)
// consumes aggregate capacity statistics (parameters, MACs, depth).
package dnn

import "fmt"

// Op identifies the operation a layer performs.
type Op int

// Supported layer operations. Conv, UpConv and FC are "compute" layers that
// are mapped onto sub-accelerators; MaxPool and GlobalAvgPool are treated as
// (nearly) free data reorganizations, as in the paper's cost model usage.
const (
	Conv Op = iota
	UpConv
	FC
	MaxPool
	GlobalAvgPool
)

// String returns the canonical lower-case name of the op.
func (o Op) String() string {
	switch o {
	case Conv:
		return "conv"
	case UpConv:
		return "upconv"
	case FC:
		return "fc"
	case MaxPool:
		return "maxpool"
	case GlobalAvgPool:
		return "gap"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Compute reports whether the op performs MAC work that must be scheduled on
// a sub-accelerator.
func (o Op) Compute() bool { return o == Conv || o == UpConv || o == FC }

// Layer is one network layer with complete shape information.
//
// Dimension naming follows MAESTRO/Eyeriss convention:
//
//	K — output channels, C — input channels,
//	R×S — kernel height×width, X×Y — input width×height,
//	Stride — spatial stride (same in both dimensions).
//
// Convolutions use "same" padding, so the output map is X/Stride × Y/Stride
// (ceiling division). UpConv doubles the spatial resolution. FC layers are
// modeled as 1×1 convolutions over a 1×1 map.
type Layer struct {
	Name   string
	Op     Op
	K      int // output channels
	C      int // input channels
	R      int // kernel height
	S      int // kernel width
	X      int // input width
	Y      int // input height
	Stride int
}

// OutX returns the output map width.
func (l Layer) OutX() int { return outDim(l, l.X) }

// OutY returns the output map height.
func (l Layer) OutY() int { return outDim(l, l.Y) }

func outDim(l Layer, in int) int {
	switch l.Op {
	case UpConv:
		return in * 2
	case GlobalAvgPool:
		return 1
	case FC:
		return 1
	default:
		if l.Stride <= 0 {
			return in
		}
		return (in + l.Stride - 1) / l.Stride
	}
}

// MACs returns the multiply-accumulate count of the layer. Non-compute ops
// return 0.
func (l Layer) MACs() int64 {
	if !l.Op.Compute() {
		return 0
	}
	return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S) *
		int64(l.OutX()) * int64(l.OutY())
}

// Params returns the weight parameter count (bias included).
func (l Layer) Params() int64 {
	if !l.Op.Compute() {
		return 0
	}
	return int64(l.K)*int64(l.C)*int64(l.R)*int64(l.S) + int64(l.K)
}

// InputElems returns the number of input activation elements.
func (l Layer) InputElems() int64 {
	return int64(l.C) * int64(l.X) * int64(l.Y)
}

// OutputElems returns the number of output activation elements.
func (l Layer) OutputElems() int64 {
	return int64(l.K) * int64(l.OutX()) * int64(l.OutY())
}

// Validate checks the layer's dimensions for internal consistency.
func (l Layer) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("dnn: layer has no name")
	}
	if l.K <= 0 || l.C <= 0 {
		return fmt.Errorf("dnn: layer %s: non-positive channels K=%d C=%d", l.Name, l.K, l.C)
	}
	if l.R <= 0 || l.S <= 0 {
		return fmt.Errorf("dnn: layer %s: non-positive kernel %dx%d", l.Name, l.R, l.S)
	}
	if l.X <= 0 || l.Y <= 0 {
		return fmt.Errorf("dnn: layer %s: non-positive map %dx%d", l.Name, l.X, l.Y)
	}
	if l.Stride <= 0 {
		return fmt.Errorf("dnn: layer %s: non-positive stride %d", l.Name, l.Stride)
	}
	if l.Op == FC && (l.X != 1 || l.Y != 1) {
		return fmt.Errorf("dnn: layer %s: FC layer must have 1x1 map, got %dx%d", l.Name, l.X, l.Y)
	}
	return nil
}

// String renders the layer as "name op KxC RxS @XxY /stride".
func (l Layer) String() string {
	return fmt.Sprintf("%s %s K%d C%d %dx%d @%dx%d /%d",
		l.Name, l.Op, l.K, l.C, l.R, l.S, l.X, l.Y, l.Stride)
}
