package dnn

import (
	"strings"
	"testing"
)

func smallResNet(t *testing.T) *Network {
	t.Helper()
	n, err := BuildResNet(ResNetConfig{
		Name: "test", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0:    8,
		Blocks: []ResBlock{{FN: 16, SK: 1}, {FN: 32, SK: 0}, {FN: 64, SK: 2}},
	})
	if err != nil {
		t.Fatalf("BuildResNet: %v", err)
	}
	return n
}

func TestNetworkValidateChain(t *testing.T) {
	n := smallResNet(t)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Break the chain and expect failure.
	broken := *n
	broken.Layers = append([]Layer(nil), n.Layers...)
	broken.Layers[1].C = 999
	if err := broken.Validate(); err == nil {
		t.Error("expected chain validation failure after corrupting input channels")
	}
}

func TestNetworkAggregates(t *testing.T) {
	n := smallResNet(t)
	var wantMACs, wantParams int64
	depth := 0
	for _, l := range n.Layers {
		wantMACs += l.MACs()
		wantParams += l.Params()
		if l.Op.Compute() {
			depth++
		}
	}
	if n.TotalMACs() != wantMACs {
		t.Errorf("TotalMACs = %d, want %d", n.TotalMACs(), wantMACs)
	}
	if n.TotalParams() != wantParams {
		t.Errorf("TotalParams = %d, want %d", n.TotalParams(), wantParams)
	}
	if n.Depth() != depth {
		t.Errorf("Depth = %d, want %d", n.Depth(), depth)
	}
	if n.MaxWidth() != 64 {
		t.Errorf("MaxWidth = %d, want 64", n.MaxWidth())
	}
	// conv0 + (1 block conv+1 res) + (1) + (1+2 res) + fc = 1+2+1+3+1 = 8
	if got := len(n.ComputeLayers()); got != 8 {
		t.Errorf("ComputeLayers = %d, want 8", got)
	}
}

func TestNetworkSignatureStable(t *testing.T) {
	a := smallResNet(t)
	b := smallResNet(t)
	if a.Signature() != b.Signature() {
		t.Error("identical configs must produce identical signatures")
	}
	c, err := BuildResNet(ResNetConfig{
		Name: "test", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0:    8,
		Blocks: []ResBlock{{FN: 16, SK: 1}, {FN: 32, SK: 0}, {FN: 128, SK: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() == c.Signature() {
		t.Error("different configs must produce different signatures")
	}
}

func TestNetworkString(t *testing.T) {
	n := smallResNet(t)
	s := n.String()
	for _, want := range []string{"test", "conv0", "fc", "classification"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyNetworkInvalid(t *testing.T) {
	n := &Network{Name: "empty"}
	if err := n.Validate(); err == nil {
		t.Error("empty network must fail validation")
	}
}
