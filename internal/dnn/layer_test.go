package dnn

import (
	"testing"
	"testing/quick"
)

func TestLayerOutDims(t *testing.T) {
	tests := []struct {
		name   string
		l      Layer
		ox, oy int
	}{
		{"conv same", Layer{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 1}, 32, 32},
		{"conv stride2", Layer{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 2}, 16, 16},
		{"conv stride2 odd", Layer{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 33, Y: 33, Stride: 2}, 17, 17},
		{"pool", Layer{Name: "p", Op: MaxPool, K: 8, C: 8, R: 2, S: 2, X: 32, Y: 32, Stride: 2}, 16, 16},
		{"upconv", Layer{Name: "u", Op: UpConv, K: 8, C: 16, R: 2, S: 2, X: 16, Y: 16, Stride: 1}, 32, 32},
		{"gap", Layer{Name: "g", Op: GlobalAvgPool, K: 8, C: 8, R: 1, S: 1, X: 4, Y: 4, Stride: 1}, 1, 1},
		{"fc", Layer{Name: "f", Op: FC, K: 10, C: 64, R: 1, S: 1, X: 1, Y: 1, Stride: 1}, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.OutX(); got != tt.ox {
				t.Errorf("OutX = %d, want %d", got, tt.ox)
			}
			if got := tt.l.OutY(); got != tt.oy {
				t.Errorf("OutY = %d, want %d", got, tt.oy)
			}
		})
	}
}

func TestLayerMACsAndParams(t *testing.T) {
	l := Layer{Name: "c", Op: Conv, K: 64, C: 32, R: 3, S: 3, X: 16, Y: 16, Stride: 1}
	wantMACs := int64(64 * 32 * 3 * 3 * 16 * 16)
	if got := l.MACs(); got != wantMACs {
		t.Errorf("MACs = %d, want %d", got, wantMACs)
	}
	wantParams := int64(64*32*3*3 + 64)
	if got := l.Params(); got != wantParams {
		t.Errorf("Params = %d, want %d", got, wantParams)
	}
	p := Layer{Name: "p", Op: MaxPool, K: 8, C: 8, R: 2, S: 2, X: 16, Y: 16, Stride: 2}
	if p.MACs() != 0 || p.Params() != 0 {
		t.Errorf("pool should carry no MACs/params, got %d/%d", p.MACs(), p.Params())
	}
}

func TestLayerValidate(t *testing.T) {
	bad := []Layer{
		{Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 1},            // no name
		{Name: "c", Op: Conv, K: 0, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 1}, // K=0
		{Name: "c", Op: Conv, K: 8, C: 3, R: 0, S: 3, X: 32, Y: 32, Stride: 1}, // R=0
		{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 0, Y: 32, Stride: 1},  // X=0
		{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 0}, // stride
		{Name: "f", Op: FC, K: 10, C: 64, R: 1, S: 1, X: 4, Y: 4, Stride: 1},   // FC map
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, l)
		}
	}
	good := Layer{Name: "c", Op: Conv, K: 8, C: 3, R: 3, S: 3, X: 32, Y: 32, Stride: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestOpStringAndCompute(t *testing.T) {
	cases := map[Op]struct {
		name    string
		compute bool
	}{
		Conv:          {"conv", true},
		UpConv:        {"upconv", true},
		FC:            {"fc", true},
		MaxPool:       {"maxpool", false},
		GlobalAvgPool: {"gap", false},
	}
	for op, want := range cases {
		if op.String() != want.name {
			t.Errorf("%v String = %q, want %q", int(op), op.String(), want.name)
		}
		if op.Compute() != want.compute {
			t.Errorf("%v Compute = %v, want %v", op, op.Compute(), want.compute)
		}
	}
}

// Property: MACs scale linearly in K for any valid conv layer.
func TestLayerMACsLinearInK(t *testing.T) {
	f := func(k8, c8, xy8 uint8) bool {
		k := int(k8%32) + 1
		c := int(c8%32) + 1
		xy := int(xy8%32) + 1
		l := Layer{Name: "c", Op: Conv, K: k, C: c, R: 3, S: 3, X: xy, Y: xy, Stride: 1}
		l2 := l
		l2.K = 2 * k
		return l2.MACs() == 2*l.MACs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: output spatial dims never exceed input dims for conv/pool.
func TestOutDimsNeverGrowForConv(t *testing.T) {
	f := func(x8, y8, s8 uint8) bool {
		x := int(x8%64) + 1
		y := int(y8%64) + 1
		s := int(s8%3) + 1
		l := Layer{Name: "c", Op: Conv, K: 4, C: 4, R: 3, S: 3, X: x, Y: y, Stride: s}
		return l.OutX() <= x && l.OutY() <= y && l.OutX() >= 1 && l.OutY() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
