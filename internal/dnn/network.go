package dnn

import (
	"fmt"
	"strings"
)

// Task identifies the AI task a network solves. The metric differs per task
// (top-1 accuracy for classification, IoU for segmentation) but both are
// treated as a unitless quality in the reward.
type Task int

// Supported tasks.
const (
	Classification Task = iota
	Segmentation
)

// String returns the task name.
func (t Task) String() string {
	switch t {
	case Classification:
		return "classification"
	case Segmentation:
		return "segmentation"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Network is a DNN architecture: an ordered dependency chain of layers.
// Layer i consumes the output of layer i-1; this matches the paper's mapper,
// which schedules chains of layers onto sub-accelerators.
type Network struct {
	Name   string
	Task   Task
	Layers []Layer
}

// Validate checks every layer and the shape agreement between consecutive
// layers.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: network %s has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("dnn: network %s layer %d: %w", n.Name, i, err)
		}
		if i == 0 {
			continue
		}
		prev := n.Layers[i-1]
		if l.Op == FC && prev.Op == GlobalAvgPool {
			if l.C != prev.K {
				return fmt.Errorf("dnn: network %s: fc %s input %d != gap output %d",
					n.Name, l.Name, l.C, prev.K)
			}
			continue
		}
		if l.C != prev.K {
			return fmt.Errorf("dnn: network %s: layer %s input channels %d != previous output %d",
				n.Name, l.Name, l.C, prev.K)
		}
		if l.X != prev.OutX() || l.Y != prev.OutY() {
			return fmt.Errorf("dnn: network %s: layer %s input map %dx%d != previous output %dx%d",
				n.Name, l.Name, l.X, l.Y, prev.OutX(), prev.OutY())
		}
	}
	return nil
}

// ComputeLayers returns the layers that carry MAC work, in execution order.
// These are the units the mapper assigns to sub-accelerators.
func (n *Network) ComputeLayers() []Layer {
	out := make([]Layer, 0, len(n.Layers))
	for _, l := range n.Layers {
		if l.Op.Compute() {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs returns the total multiply-accumulate count of one inference.
func (n *Network) TotalMACs() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.MACs()
	}
	return sum
}

// TotalParams returns the total parameter count.
func (n *Network) TotalParams() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.Params()
	}
	return sum
}

// Depth returns the number of compute layers.
func (n *Network) Depth() int {
	d := 0
	for _, l := range n.Layers {
		if l.Op.Compute() {
			d++
		}
	}
	return d
}

// MaxWidth returns the largest output channel count of any compute layer.
func (n *Network) MaxWidth() int {
	w := 0
	for _, l := range n.Layers {
		if l.Op.Compute() && l.K > w {
			w = l.K
		}
	}
	return w
}

// Signature returns a stable, human-readable identity string for the
// architecture, used for memoization and for the predictor's deterministic
// perturbation.
func (n *Network) Signature() string {
	var b strings.Builder
	b.WriteString(n.Name)
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "|%s:%d:%d:%d:%d:%d:%d:%d", l.Op, l.K, l.C, l.R, l.S, l.X, l.Y, l.Stride)
	}
	return b.String()
}

// String renders a compact multi-line description.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %d layers, %.2fM params, %.1fM MACs)\n",
		n.Name, n.Task, len(n.Layers),
		float64(n.TotalParams())/1e6, float64(n.TotalMACs())/1e6)
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "  %s\n", l.String())
	}
	return b.String()
}
