package dnn

import "fmt"

// ResBlock configures one residual block of a ResNet-9-style backbone:
// FN output filters and SK additional (residual) convolution layers.
// SK=0 degenerates the block to a single downsampling convolution, matching
// the paper's hyperparameter SK_i ∈ ⟨0,1,2⟩.
type ResBlock struct {
	FN int // filter count of every conv in the block
	SK int // number of residual 3x3 convs after the downsampling conv
}

// ResNetConfig fully determines a ResNet-9-style architecture in the paper's
// search space (Fig. 1 and Table II use the encoding
// ⟨FN0, FN1, SK1, FN2, SK2, FN3, SK3⟩; block 0 is a standard convolution).
type ResNetConfig struct {
	Name    string
	InputX  int // input map width
	InputY  int // input map height
	InputC  int // input channels (3 for RGB)
	Classes int
	FN0     int        // filters of the stem convolution (block 0)
	Blocks  []ResBlock // residual blocks, each followed by a 2x2 max-pool
}

// BuildResNet constructs the layer chain for cfg. Each block is a 3x3
// convolution followed by a 2x2 max-pool and SK residual 3x3 convolutions;
// the network ends with global average pooling and a fully-connected
// classifier, following the ResNet-9 recipe referenced by the paper [20].
func BuildResNet(cfg ResNetConfig) (*Network, error) {
	if cfg.FN0 <= 0 {
		return nil, fmt.Errorf("dnn: resnet %s: FN0 must be positive, got %d", cfg.Name, cfg.FN0)
	}
	if len(cfg.Blocks) == 0 {
		return nil, fmt.Errorf("dnn: resnet %s: needs at least one block", cfg.Name)
	}
	x, y, c := cfg.InputX, cfg.InputY, cfg.InputC
	n := &Network{Name: cfg.Name, Task: Classification}
	add := func(l Layer) {
		n.Layers = append(n.Layers, l)
		x, y, c = l.OutX(), l.OutY(), l.K
	}

	add(Layer{Name: "conv0", Op: Conv, K: cfg.FN0, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
	for bi, b := range cfg.Blocks {
		if b.FN <= 0 {
			return nil, fmt.Errorf("dnn: resnet %s: block %d FN must be positive, got %d", cfg.Name, bi+1, b.FN)
		}
		if b.SK < 0 {
			return nil, fmt.Errorf("dnn: resnet %s: block %d SK must be non-negative, got %d", cfg.Name, bi+1, b.SK)
		}
		if x < 2 || y < 2 {
			return nil, fmt.Errorf("dnn: resnet %s: map %dx%d too small to pool at block %d", cfg.Name, x, y, bi+1)
		}
		add(Layer{Name: fmt.Sprintf("b%d_conv", bi+1), Op: Conv, K: b.FN, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
		add(Layer{Name: fmt.Sprintf("b%d_pool", bi+1), Op: MaxPool, K: c, C: c, R: 2, S: 2, X: x, Y: y, Stride: 2})
		for s := 0; s < b.SK; s++ {
			add(Layer{Name: fmt.Sprintf("b%d_res%d", bi+1, s+1), Op: Conv, K: b.FN, C: c, R: 3, S: 3, X: x, Y: y, Stride: 1})
		}
	}
	add(Layer{Name: "gap", Op: GlobalAvgPool, K: c, C: c, R: 1, S: 1, X: x, Y: y, Stride: 1})
	add(Layer{Name: "fc", Op: FC, K: cfg.Classes, C: c, R: 1, S: 1, X: 1, Y: 1, Stride: 1})

	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ResNetEncoding renders the Table-II style architecture tuple
// ⟨FN0, FN1, SK1, ..., FNb, SKb⟩.
func ResNetEncoding(cfg ResNetConfig) string {
	s := fmt.Sprintf("<%d", cfg.FN0)
	for _, b := range cfg.Blocks {
		s += fmt.Sprintf(", %d, %d", b.FN, b.SK)
	}
	return s + ">"
}
