package maestro

import (
	"sync"
	"testing"

	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
)

func memoLayer() dnn.Layer {
	return dnn.Layer{Name: "c1", Op: dnn.Conv, K: 64, C: 32, R: 3, S: 3, X: 16, Y: 16, Stride: 1}
}

func TestCostMemoServesBitIdenticalResults(t *testing.T) {
	cfg := DefaultConfig()
	cm := NewCostMemo(cfg)
	l := memoLayer()

	direct := cfg.LayerCost(l, dataflow.NVDLA, 512, 32)
	first, hit := cm.LayerCost(l, dataflow.NVDLA, 512, 32)
	if hit {
		t.Error("first query reported a hit")
	}
	second, hit := cm.LayerCost(l, dataflow.NVDLA, 512, 32)
	if !hit {
		t.Error("second query missed")
	}
	if first != direct || second != direct {
		t.Errorf("memoized cost diverged: direct %+v, first %+v, second %+v", direct, first, second)
	}
	if cm.Size() != 1 {
		t.Errorf("Size = %d, want 1", cm.Size())
	}
	// A renamed layer is the same computation (the key clears the name).
	renamed := l
	renamed.Name = "other"
	if _, hit := cm.LayerCost(renamed, dataflow.NVDLA, 512, 32); !hit {
		t.Error("renamed layer should hit the memo")
	}
	// Different resources are different entries.
	if _, hit := cm.LayerCost(l, dataflow.NVDLA, 1024, 32); hit {
		t.Error("different PE count must not hit")
	}
	if cm.Size() != 2 {
		t.Errorf("Size = %d, want 2", cm.Size())
	}
}

func TestSharedCostMemoKeyedByConfig(t *testing.T) {
	ResetSharedCostMemos()
	defer ResetSharedCostMemos()

	cfg := DefaultConfig()
	a := SharedCostMemo(cfg)
	b := SharedCostMemo(cfg)
	if a != b {
		t.Error("same configuration must share one memo")
	}
	other := cfg
	other.EnergyScale *= 2
	c := SharedCostMemo(other)
	if c == a {
		t.Error("different calibration constants must not share a memo")
	}
	// Entries written through one handle are visible through the other.
	l := memoLayer()
	if _, hit := a.LayerCost(l, dataflow.Shidiannao, 256, 16); hit {
		t.Error("cold shared memo reported a hit")
	}
	if _, hit := b.LayerCost(l, dataflow.Shidiannao, 256, 16); !hit {
		t.Error("warm shared memo missed")
	}
	if _, hit := c.LayerCost(l, dataflow.Shidiannao, 256, 16); hit {
		t.Error("differently calibrated memo must not be warmed by the other")
	}
}

func TestCostMemoConcurrentAccess(t *testing.T) {
	cm := NewCostMemo(DefaultConfig())
	l := memoLayer()
	want, _ := cm.LayerCost(l, dataflow.NVDLA, 512, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, _ := cm.LayerCost(l, dataflow.NVDLA, 512, 32)
				if got != want {
					t.Errorf("worker %d saw diverging cost", w)
					return
				}
				cm.LayerCost(l, dataflow.RowStationary, 128+i%4*128, 8)
			}
		}(w)
	}
	wg.Wait()
}
