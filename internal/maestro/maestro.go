// Package maestro is the analytic cost model of this repository — the
// stand-in for the MAESTRO tool [23] the paper uses. Given a layer bound to
// a dataflow template (internal/dataflow), it produces latency in cycles,
// energy in nJ, and the buffer demand; given a sub-accelerator's resources it
// produces silicon area in µm².
//
// Absolute constants are calibrated so magnitudes land in the ranges the
// paper reports (latencies of 1e5–1e6 cycles, energies of 1e9 nJ, areas of
// 1e9 µm²; see DESIGN.md §4). Relative access costs follow the standard
// memory-hierarchy ratios (register file ≈ MAC ≪ NoC < global buffer ≪
// DRAM) that make dataflow choice matter.
//
// Because LayerCost is a pure function of ⟨layer shape, dataflow, PEs, BW⟩
// given a Config, its results are memoized at two tiers: CostMemo (per
// evaluator or process-wide via SharedCostMemo) in memory, and — through
// CostMemo.SaveFile/LoadFile — a persistent on-disk warm tier keyed by the
// calibration's Fingerprint, so fresh processes skip recomputation without
// ever changing a result (see internal/cachefile for the snapshot format).
package maestro

import (
	"fmt"
	"math"

	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
)

// Config holds the cost-model calibration constants. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// ClockGHz converts NoC bandwidth (GB/s) into bytes/cycle.
	ClockGHz float64

	// Energy per access in pJ, before EnergyScale.
	EnergyMAC  float64 // one multiply-accumulate
	EnergyRF   float64 // PE register-file access
	EnergyNoC  float64 // one element over the NoC
	EnergyGB   float64 // global-buffer access
	EnergyDRAM float64 // off-chip access
	// EnergyScale is a global multiplier calibrating absolute magnitude to
	// the paper's reported nJ ranges.
	EnergyScale float64

	// Area constants in µm².
	AreaPE         float64 // one PE (MAC + register file)
	AreaBufPerByte float64 // global buffer SRAM
	AreaNoCPerGBs  float64 // NoC/NIC per GB/s of provisioned bandwidth
	AreaFixed      float64 // controller, DMA, misc. per sub-accelerator
}

// DefaultConfig returns the calibrated model used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		ClockGHz:    1.0,
		EnergyMAC:   1.0,
		EnergyRF:    1.0,
		EnergyNoC:   2.0,
		EnergyGB:    6.0,
		EnergyDRAM:  200.0,
		EnergyScale: 450.0,

		AreaPE:         1.0e6,
		AreaBufPerByte: 100.0,
		AreaNoCPerGBs:  2.0e6,
		AreaFixed:      5.0e7,
	}
}

// Validate checks the configuration for usable values.
func (c Config) Validate() error {
	if c.ClockGHz <= 0 {
		return fmt.Errorf("maestro: ClockGHz must be positive")
	}
	for _, v := range []struct {
		name string
		x    float64
	}{
		{"EnergyMAC", c.EnergyMAC}, {"EnergyRF", c.EnergyRF},
		{"EnergyNoC", c.EnergyNoC}, {"EnergyGB", c.EnergyGB},
		{"EnergyDRAM", c.EnergyDRAM}, {"EnergyScale", c.EnergyScale},
		{"AreaPE", c.AreaPE}, {"AreaBufPerByte", c.AreaBufPerByte},
		{"AreaNoCPerGBs", c.AreaNoCPerGBs},
	} {
		if v.x <= 0 {
			return fmt.Errorf("maestro: %s must be positive", v.name)
		}
	}
	if c.AreaFixed < 0 {
		return fmt.Errorf("maestro: AreaFixed must be non-negative")
	}
	return nil
}

// LayerCost is the cost of running one layer on one sub-accelerator.
type LayerCost struct {
	Cycles      int64
	EnergyNJ    float64
	BufferBytes int64
	Utilization float64
}

// LayerCost evaluates layer l on a sub-accelerator with the given dataflow
// style, PE count and NoC bandwidth share (GB/s). It panics on non-positive
// resources, mirroring dataflow.Map.
func (c Config) LayerCost(l dnn.Layer, style dataflow.Style, pes, bwGBs int) LayerCost {
	if bwGBs <= 0 {
		panic(fmt.Sprintf("maestro: non-positive bandwidth %d", bwGBs))
	}
	m := dataflow.Map(style, l, pes)

	bytesPerCycle := float64(bwGBs) / c.ClockGHz
	nocBytes := float64(m.NoCTraffic() * dataflow.BytesPerElem)
	commCycles := int64(math.Ceil(nocBytes / bytesPerCycle))
	cycles := m.Steps
	if commCycles > cycles {
		cycles = commCycles
	}
	// Pipeline fill/drain across the PE array.
	cycles += int64(2 * math.Sqrt(float64(pes)))

	pj := float64(m.MACs)*c.EnergyMAC +
		float64(m.LocalAccesses)*c.EnergyRF +
		float64(m.NoCTraffic())*c.EnergyNoC +
		float64(m.GBAccesses)*c.EnergyGB +
		float64(m.DRAMAccesses)*c.EnergyDRAM
	pj *= c.EnergyScale

	return LayerCost{
		Cycles:      cycles,
		EnergyNJ:    pj / 1000.0,
		BufferBytes: m.BufferBytes,
		Utilization: m.Utilization,
	}
}

// CostKey is the complete identity of one LayerCost computation: the layer's
// shape (name cleared — cost depends only on dimensions) plus the
// sub-accelerator configuration. Two calls with equal keys return equal
// costs, which is what makes LayerCost memoizable; the key is a comparable
// struct so it can index a map directly, with no string building on the hot
// path.
type CostKey struct {
	Layer dnn.Layer
	Style dataflow.Style
	PEs   int
	BW    int
}

// NewCostKey builds the memoization key for LayerCost(l, style, pes, bwGBs).
func NewCostKey(l dnn.Layer, style dataflow.Style, pes, bwGBs int) CostKey {
	l.Name = "" // cost is independent of the layer's name
	return CostKey{Layer: l, Style: style, PEs: pes, BW: bwGBs}
}

// EnergyBreakdown decomposes a layer's energy (nJ) by memory-hierarchy
// level. The components sum exactly to LayerCost().EnergyNJ; the DSE reports
// and the quickstart example use it to show where a dataflow's energy goes.
type EnergyBreakdown struct {
	MACNJ  float64 // arithmetic
	RFNJ   float64 // PE register files
	NoCNJ  float64 // network-on-chip transfers
	GBNJ   float64 // global buffer accesses
	DRAMNJ float64 // off-chip accesses
}

// Total returns the summed energy in nJ.
func (b EnergyBreakdown) Total() float64 {
	return b.MACNJ + b.RFNJ + b.NoCNJ + b.GBNJ + b.DRAMNJ
}

// EnergyBreakdown evaluates the per-level energy of layer l on the given
// sub-accelerator configuration.
func (c Config) EnergyBreakdown(l dnn.Layer, style dataflow.Style, pes, bwGBs int) EnergyBreakdown {
	if bwGBs <= 0 {
		panic(fmt.Sprintf("maestro: non-positive bandwidth %d", bwGBs))
	}
	m := dataflow.Map(style, l, pes)
	s := c.EnergyScale / 1000.0
	return EnergyBreakdown{
		MACNJ:  float64(m.MACs) * c.EnergyMAC * s,
		RFNJ:   float64(m.LocalAccesses) * c.EnergyRF * s,
		NoCNJ:  float64(m.NoCTraffic()) * c.EnergyNoC * s,
		GBNJ:   float64(m.GBAccesses) * c.EnergyGB * s,
		DRAMNJ: float64(m.DRAMAccesses) * c.EnergyDRAM * s,
	}
}

// NetworkCost sums LayerCost over every compute layer of n, as if the whole
// network ran serially on a single sub-accelerator. The returned buffer
// demand is the maximum over layers (buffers are reused layer-to-layer).
func (c Config) NetworkCost(n *dnn.Network, style dataflow.Style, pes, bwGBs int) LayerCost {
	var total LayerCost
	for _, l := range n.ComputeLayers() {
		lc := c.LayerCost(l, style, pes, bwGBs)
		total.Cycles += lc.Cycles
		total.EnergyNJ += lc.EnergyNJ
		if lc.BufferBytes > total.BufferBytes {
			total.BufferBytes = lc.BufferBytes
		}
	}
	return total
}

// SubAccelArea returns the silicon area (µm²) of one sub-accelerator with
// pes processing elements, bwGBs of provisioned NoC bandwidth, and a global
// buffer sized for maxBufferBytes (the largest demand over the layers mapped
// to it; the paper sizes memory "to support the full use of hardware",
// §III-➋). A sub-accelerator with zero PEs occupies no area — the design
// degenerates per §V-A.
func (c Config) SubAccelArea(pes, bwGBs int, maxBufferBytes int64) float64 {
	if pes <= 0 {
		return 0
	}
	return c.AreaPE*float64(pes) +
		c.AreaBufPerByte*float64(maxBufferBytes) +
		c.AreaNoCPerGBs*float64(bwGBs) +
		c.AreaFixed
}
