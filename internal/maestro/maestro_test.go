package maestro

import (
	"testing"
	"testing/quick"

	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
)

func testLayer() dnn.Layer {
	return dnn.Layer{Name: "c", Op: dnn.Conv, K: 64, C: 64, R: 3, S: 3, X: 32, Y: 32, Stride: 1}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.EnergyMAC = -1 },
		func(c *Config) { c.EnergyDRAM = 0 },
		func(c *Config) { c.EnergyScale = 0 },
		func(c *Config) { c.AreaPE = 0 },
		func(c *Config) { c.AreaFixed = -1 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestLayerCostPositive(t *testing.T) {
	cfg := DefaultConfig()
	for _, s := range dataflow.AllStyles {
		lc := cfg.LayerCost(testLayer(), s, 512, 32)
		if lc.Cycles <= 0 || lc.EnergyNJ <= 0 || lc.BufferBytes <= 0 {
			t.Errorf("%s: non-positive cost %+v", s, lc)
		}
		if lc.Utilization <= 0 || lc.Utilization > 1 {
			t.Errorf("%s: utilization %f out of range", s, lc.Utilization)
		}
	}
}

// Latency must be bandwidth-bound when the NoC is starved: shrinking
// bandwidth far enough must increase cycles.
func TestBandwidthBound(t *testing.T) {
	cfg := DefaultConfig()
	fast := cfg.LayerCost(testLayer(), dataflow.NVDLA, 1024, 64)
	slow := cfg.LayerCost(testLayer(), dataflow.NVDLA, 1024, 1)
	if slow.Cycles <= fast.Cycles {
		t.Errorf("1 GB/s (%d cycles) should be slower than 64 GB/s (%d cycles)",
			slow.Cycles, fast.Cycles)
	}
	// Energy is bandwidth-independent in this model (same data movement).
	if slow.EnergyNJ != fast.EnergyNJ {
		t.Errorf("energy should not depend on bandwidth: %f vs %f", slow.EnergyNJ, fast.EnergyNJ)
	}
}

// Property: more PEs never increase a layer's cycle count (at fixed bw),
// for compute-bound shapes.
func TestLayerCostMonotonicInPEs(t *testing.T) {
	cfg := DefaultConfig()
	f := func(pe16 uint16, styleIdx uint8) bool {
		pes := int(pe16%2000) + 16
		s := dataflow.AllStyles[int(styleIdx)%3]
		a := cfg.LayerCost(testLayer(), s, pes, 64)
		b := cfg.LayerCost(testLayer(), s, 2*pes, 64)
		// Allow the sqrt(PE) fill-time term a tiny slack.
		return b.Cycles <= a.Cycles+128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNetworkCostAggregates(t *testing.T) {
	cfg := DefaultConfig()
	n, err := dnn.BuildResNet(dnn.ResNetConfig{
		Name: "r", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0: 16, Blocks: []dnn.ResBlock{{FN: 32, SK: 1}, {FN: 64, SK: 1}, {FN: 64, SK: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	nc := cfg.NetworkCost(n, dataflow.NVDLA, 512, 32)
	var cycles int64
	var energy float64
	var maxBuf int64
	for _, l := range n.ComputeLayers() {
		lc := cfg.LayerCost(l, dataflow.NVDLA, 512, 32)
		cycles += lc.Cycles
		energy += lc.EnergyNJ
		if lc.BufferBytes > maxBuf {
			maxBuf = lc.BufferBytes
		}
	}
	if nc.Cycles != cycles {
		t.Errorf("Cycles = %d, want %d", nc.Cycles, cycles)
	}
	if nc.EnergyNJ != energy {
		t.Errorf("EnergyNJ = %f, want %f", nc.EnergyNJ, energy)
	}
	if nc.BufferBytes != maxBuf {
		t.Errorf("BufferBytes = %d, want %d (max over layers)", nc.BufferBytes, maxBuf)
	}
}

func TestSubAccelArea(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.SubAccelArea(0, 64, 1<<20); got != 0 {
		t.Errorf("zero-PE sub-accelerator should occupy no area, got %f", got)
	}
	a1 := cfg.SubAccelArea(1024, 32, 1<<16)
	a2 := cfg.SubAccelArea(2048, 32, 1<<16)
	if a2 <= a1 {
		t.Error("area must grow with PEs")
	}
	a3 := cfg.SubAccelArea(1024, 64, 1<<16)
	if a3 <= a1 {
		t.Error("area must grow with bandwidth")
	}
	a4 := cfg.SubAccelArea(1024, 32, 1<<20)
	if a4 <= a1 {
		t.Error("area must grow with buffer demand")
	}
}

// Magnitude sanity: a full 4096-PE design should land in the paper's area
// range (a few 1e9 µm²), and a mid-size ResNet layer's latency should be in
// the 1e3–1e6 cycle range.
func TestCalibratedMagnitudes(t *testing.T) {
	cfg := DefaultConfig()
	area := cfg.SubAccelArea(2048, 32, 512<<10) + cfg.SubAccelArea(2048, 32, 512<<10)
	if area < 1e9 || area > 1e10 {
		t.Errorf("4096-PE two-sub-accelerator area %.3g outside paper range [1e9,1e10] µm²", area)
	}
	lc := cfg.LayerCost(testLayer(), dataflow.NVDLA, 1024, 32)
	if lc.Cycles < 1e3 || lc.Cycles > 1e6 {
		t.Errorf("layer latency %d cycles outside plausible range", lc.Cycles)
	}
}

func TestLayerCostPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bw=0")
		}
	}()
	DefaultConfig().LayerCost(testLayer(), dataflow.NVDLA, 64, 0)
}

func TestEnergyBreakdownSumsToLayerCost(t *testing.T) {
	cfg := DefaultConfig()
	for _, s := range dataflow.AllStyles {
		for _, pes := range []int{64, 512, 2048} {
			lc := cfg.LayerCost(testLayer(), s, pes, 32)
			bd := cfg.EnergyBreakdown(testLayer(), s, pes, 32)
			if diff := bd.Total() - lc.EnergyNJ; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("%s pes=%d: breakdown total %f != layer energy %f", s, pes, bd.Total(), lc.EnergyNJ)
			}
			for name, v := range map[string]float64{
				"mac": bd.MACNJ, "rf": bd.RFNJ, "noc": bd.NoCNJ, "gb": bd.GBNJ, "dram": bd.DRAMNJ,
			} {
				if v <= 0 {
					t.Errorf("%s pes=%d: %s energy component non-positive", s, pes, name)
				}
			}
		}
	}
}

// The hierarchy ordering that makes dataflow choice matter: for a reuse-rich
// conv layer, DRAM energy dominates RF energy per access but not in total
// (reuse amortizes it), while removing reuse (tiny PEs, re-streaming) shifts
// energy toward the buffer levels.
func TestEnergyBreakdownReuseShift(t *testing.T) {
	cfg := DefaultConfig()
	l := testLayer()
	rich := cfg.EnergyBreakdown(l, dataflow.NVDLA, 2048, 32)
	poor := cfg.EnergyBreakdown(l, dataflow.NVDLA, 16, 32)
	richRatio := (rich.NoCNJ + rich.GBNJ) / rich.Total()
	poorRatio := (poor.NoCNJ + poor.GBNJ) / poor.Total()
	if poorRatio <= richRatio {
		t.Errorf("reuse-poor mapping should spend a larger energy fraction on NoC+GB: %.3f vs %.3f",
			poorRatio, richRatio)
	}
}

func TestCostKeyIdentity(t *testing.T) {
	l := testLayer()
	a := NewCostKey(l, dataflow.NVDLA, 512, 32)
	renamed := l
	renamed.Name = "other"
	if b := NewCostKey(renamed, dataflow.NVDLA, 512, 32); a != b {
		t.Error("cost key should ignore the layer name")
	}
	if c := NewCostKey(l, dataflow.Shidiannao, 512, 32); a == c {
		t.Error("cost key must distinguish dataflow styles")
	}
	reshaped := l
	reshaped.K++
	if d := NewCostKey(reshaped, dataflow.NVDLA, 512, 32); a == d {
		t.Error("cost key must distinguish layer shapes")
	}
	if e := NewCostKey(l, dataflow.NVDLA, 1024, 32); a == e {
		t.Error("cost key must distinguish PE counts")
	}
}
