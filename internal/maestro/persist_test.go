package maestro

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nasaic/internal/cachefile"
	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
)

// fillMemo runs a grid of layer-cost queries so the memo holds a known set.
func fillMemo(cm *CostMemo) []dnn.Layer {
	layers := []dnn.Layer{
		{Name: "c1", Op: dnn.Conv, K: 64, C: 32, R: 3, S: 3, X: 16, Y: 16, Stride: 1},
		{Name: "c2", Op: dnn.Conv, K: 128, C: 64, R: 3, S: 3, X: 8, Y: 8, Stride: 1},
		{Name: "fc", Op: dnn.FC, K: 10, C: 256, R: 1, S: 1, X: 1, Y: 1, Stride: 1},
	}
	for _, l := range layers {
		for _, pe := range []int{256, 512, 1024} {
			for _, bw := range []int{16, 32} {
				cm.LayerCost(l, dataflow.NVDLA, pe, bw)
				cm.LayerCost(l, dataflow.Shidiannao, pe, bw)
			}
		}
	}
	return layers
}

func TestMemoSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cm := NewCostMemo(cfg)
	layers := fillMemo(cm)
	dir := t.TempDir()
	path := cm.CacheFile(dir)

	if err := cm.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	warm := NewCostMemo(cfg)
	n, err := warm.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != cm.Size() {
		t.Fatalf("loaded %d entries, saved memo holds %d", n, cm.Size())
	}
	if warm.Size() != cm.Size() {
		t.Fatalf("warm Size = %d, want %d", warm.Size(), cm.Size())
	}
	// Every query the cold memo computed must now hit, bit-identically.
	for _, l := range layers {
		for _, pe := range []int{256, 512, 1024} {
			for _, bw := range []int{16, 32} {
				for _, df := range []dataflow.Style{dataflow.NVDLA, dataflow.Shidiannao} {
					want, _ := cm.LayerCost(l, df, pe, bw)
					got, hit := warm.LayerCost(l, df, pe, bw)
					if !hit {
						t.Fatalf("warm memo missed %s/%v/%d/%d", l.Name, df, pe, bw)
					}
					if got != want {
						t.Fatalf("reloaded cost diverged for %s/%v/%d/%d: %+v != %+v",
							l.Name, df, pe, bw, got, want)
					}
				}
			}
		}
	}

	// Save → load → save must round-trip to the same entry set (sync.Map
	// iteration order varies, so compare through a third load, not bytes).
	path2 := filepath.Join(dir, "again.cache")
	if err := warm.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	third := NewCostMemo(cfg)
	n2, err := third.LoadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || third.Size() != warm.Size() {
		t.Fatalf("second round trip: loaded %d (size %d), want %d (size %d)",
			n2, third.Size(), n, warm.Size())
	}
}

// A memo bound to a different calibration must refuse the file: a persisted
// cost is only valid under the exact Config that computed it.
func TestMemoLoadRejectsDifferentCalibration(t *testing.T) {
	cfg := DefaultConfig()
	cm := NewCostMemo(cfg)
	fillMemo(cm)
	dir := t.TempDir()
	path := cm.CacheFile(dir)
	if err := cm.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.EnergyScale *= 1.0000001 // any constant differing retires the file
	om := NewCostMemo(other)
	n, err := om.LoadFile(path)
	if !errors.Is(err, cachefile.ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
	if n != 0 || om.Size() != 0 {
		t.Fatalf("cold start violated: n=%d size=%d", n, om.Size())
	}
	// Differently calibrated memos must also name different files, so both
	// snapshots coexist in one cache directory.
	if cm.CacheFile(dir) == om.CacheFile(dir) {
		t.Fatal("different calibrations map to the same cache file")
	}
}

func TestMemoLoadDamagedFileIsCold(t *testing.T) {
	cfg := DefaultConfig()
	cm := NewCostMemo(cfg)
	fillMemo(cm)
	dir := t.TempDir()
	path := cm.CacheFile(dir)
	if err := cm.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		data   []byte
		target error
	}{
		{"truncated", good[:len(good)-7], cachefile.ErrCorrupt},
		{"flipped byte", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/3] ^= 0x01
			return b
		}(), nil},
		{"gob garbage", cachefile.Encode(MemoKind, cfg.Fingerprint(), []byte{0xff, 0x00, 0x13}), cachefile.ErrCorrupt},
		{"wrong kind", cachefile.Encode("hweval", cfg.Fingerprint(), nil), cachefile.ErrKind},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "bad-"+tc.name+".cache")
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			m := NewCostMemo(cfg)
			n, err := m.LoadFile(p)
			if err == nil {
				t.Fatal("damaged file loaded without error")
			}
			if tc.target != nil && !errors.Is(err, tc.target) {
				t.Fatalf("err = %v, want %v", err, tc.target)
			}
			if n != 0 || m.Size() != 0 {
				t.Fatalf("cold start violated: n=%d size=%d", n, m.Size())
			}
			// Still fully usable after the failed load.
			if _, hit := m.LayerCost(memoLayer(), dataflow.NVDLA, 512, 32); hit {
				t.Fatal("empty memo reported a hit")
			}
		})
	}
}

// The O(1) Size counter must match a full Range scan, including under
// concurrent fills racing on the same keys and a load into a warm memo.
func TestSizeCounterMatchesScan(t *testing.T) {
	cfg := DefaultConfig()
	cm := NewCostMemo(cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := memoLayer()
			for i := 0; i < 40; i++ {
				l.K = 16 + i%20 // deliberate key collisions across goroutines
				cm.LayerCost(l, dataflow.NVDLA, 256+64*(i%3), 16)
			}
		}(g)
	}
	wg.Wait()
	if got, want := cm.Size(), cm.sizeScan(); got != want {
		t.Fatalf("Size() = %d, scan = %d after concurrent fills", got, want)
	}

	dir := t.TempDir()
	path := cm.CacheFile(dir)
	if err := cm.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Loading a snapshot over a partially warm memo must not double-count.
	half := NewCostMemo(cfg)
	l := memoLayer()
	for i := 0; i < 10; i++ {
		l.K = 16 + i
		half.LayerCost(l, dataflow.NVDLA, 256, 16)
	}
	if _, err := half.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got, want := half.Size(), half.sizeScan(); got != want {
		t.Fatalf("Size() = %d, scan = %d after overlapping load", got, want)
	}
}
