package maestro

import (
	"sync"

	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/stats"
)

// CostMemo memoizes LayerCost for one cost-model configuration. LayerCost is
// a pure function of ⟨layer shape, dataflow, PEs, BW⟩ given the
// configuration, so memoized results are bit-identical to recomputation. A
// sync.Map fits the access pattern: the key space is small and write-once
// (bounded by the workload's layer shapes times the hardware option grid),
// so steady-state lookups are lock-free reads shared by all evaluation
// workers; duplicate computes during warm-up are harmless.
type CostMemo struct {
	cfg  Config
	m    sync.Map      // CostKey -> LayerCost
	size stats.Counter // resident entries; kept exact via LoadOrStore
}

// NewCostMemo returns an empty memo bound to cfg.
func NewCostMemo(cfg Config) *CostMemo {
	return &CostMemo{cfg: cfg}
}

// LayerCost returns the memoized cost of layer l on the given
// sub-accelerator configuration, computing and storing it on a miss. The
// second result reports whether the memo served the query without running
// the model.
func (cm *CostMemo) LayerCost(l dnn.Layer, style dataflow.Style, pes, bwGBs int) (LayerCost, bool) {
	key := NewCostKey(l, style, pes, bwGBs)
	if v, ok := cm.m.Load(key); ok {
		return v.(LayerCost), true
	}
	lc := cm.cfg.LayerCost(l, style, pes, bwGBs)
	cm.store(key, lc)
	return lc, false
}

// store inserts one entry, keeping the size counter exact when two callers
// race to fill the same key (LayerCost is pure, so whichever value lands is
// bit-identical to the other).
func (cm *CostMemo) store(key CostKey, lc LayerCost) {
	if _, loaded := cm.m.LoadOrStore(key, lc); !loaded {
		cm.size.Inc()
	}
}

// Size returns the number of memoized entries. It reads a running atomic
// counter — O(1), safe on per-episode stats paths — instead of Ranging the
// whole sync.Map.
func (cm *CostMemo) Size() int {
	return int(cm.size.Value())
}

// sizeScan counts entries by Ranging the map — the O(n) ground truth the
// Size counter is regression-tested against.
func (cm *CostMemo) sizeScan() int {
	n := 0
	cm.m.Range(func(any, any) bool { n++; return true })
	return n
}

// sharedMemos holds one process-wide CostMemo per cost-model configuration.
// Keying on the full Config (a comparable struct of calibration constants)
// makes sharing safe across evaluators that might be calibrated differently:
// two evaluators share entries only when every constant matches.
var sharedMemos sync.Map // Config -> *CostMemo

// SharedCostMemo returns the process-wide memo for cfg, creating it on first
// use. Evaluators opting into core.Config.ShareLayerMemo route their
// layer-cost queries here, so fresh evaluators — one per approach in the
// Table I/II baselines — start warm with every entry earlier searches in the
// same process already computed.
func SharedCostMemo(cfg Config) *CostMemo {
	if v, ok := sharedMemos.Load(cfg); ok {
		return v.(*CostMemo)
	}
	v, _ := sharedMemos.LoadOrStore(cfg, NewCostMemo(cfg))
	return v.(*CostMemo)
}

// ResetSharedCostMemos drops every process-wide memo. Intended for tests and
// benchmarks that need a cold start.
func ResetSharedCostMemos() {
	sharedMemos.Range(func(k, _ any) bool {
		sharedMemos.Delete(k)
		return true
	})
}
