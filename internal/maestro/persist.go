package maestro

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"

	"nasaic/internal/cachefile"
)

// MemoKind is the cachefile payload discriminator of persisted cost memos.
const MemoKind = "layercost"

// Fingerprint returns the canonical identity of the cost-model calibration:
// every constant, rendered with its field name. It is the cache-invalidation
// key of the persistent warm tier — a memo file written under one
// calibration is never loaded into a memo bound to another, and adding a
// Config field changes every fingerprint, retiring stale files wholesale.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("%#v", c)
}

// memoEntry is one persisted ⟨key, cost⟩ pair.
type memoEntry struct {
	Key  CostKey
	Cost LayerCost
}

// CacheFile returns the warm-tier file path of this memo's calibration under
// dir. The name embeds a hash of the calibration fingerprint so differently
// calibrated memos coexist in one cache directory; per-run and process-wide
// memos of the same calibration share one file, accumulating entries across
// saves (each save snapshots a memo that was warm-loaded from the same file).
func (cm *CostMemo) CacheFile(dir string) string {
	return filepath.Join(dir, cachefile.Name(MemoKind, cm.cfg.Fingerprint()))
}

// SaveFile atomically writes the memo's entries to path. Values are
// gob-encoded (float64s round-trip bit-exactly), the envelope is versioned
// and checksummed, and the stored calibration fingerprint guards loads.
func (cm *CostMemo) SaveFile(path string) error {
	var entries []memoEntry
	cm.m.Range(func(k, v any) bool {
		entries = append(entries, memoEntry{Key: k.(CostKey), Cost: v.(LayerCost)})
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return fmt.Errorf("maestro: encode memo snapshot: %w", err)
	}
	return cachefile.WriteFile(path, MemoKind, cm.cfg.Fingerprint(), buf.Bytes())
}

// LoadFile merges a snapshot written by SaveFile into the memo, returning
// the number of file entries processed. A missing, torn, corrupt,
// stale-versioned or differently-calibrated file returns an error and loads
// nothing — every failure means a cold start, never a crash or a stale cost.
// Entries already resident (e.g. in the process-wide shared memo) are kept;
// the stored value is bit-identical anyway since LayerCost is pure.
func (cm *CostMemo) LoadFile(path string) (int, error) {
	payload, err := cachefile.ReadFile(path, MemoKind, cm.cfg.Fingerprint())
	if err != nil {
		return 0, err
	}
	var entries []memoEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entries); err != nil {
		return 0, fmt.Errorf("%w: gob payload: %v", cachefile.ErrCorrupt, err)
	}
	for _, e := range entries {
		cm.store(e.Key, e.Cost)
	}
	return len(entries), nil
}
