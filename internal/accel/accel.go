// Package accel models the heterogeneous ASIC accelerator of §III-➋: a set
// of sub-accelerators connected through NICs on a global interconnect, each
// sub-accelerator described by a dataflow template, a PE allocation, and a
// NoC bandwidth share. The package owns the resource-constraint checks
// (Σpe ≤ NP, Σbw ≤ BW) and the hardware design space enumerated by the
// search (the paper's alloc(aic_k) function).
package accel

import (
	"fmt"
	"strconv"
	"strings"

	"nasaic/internal/dataflow"
	"nasaic/internal/maestro"
)

// Limits are the global hardware resource bounds. The paper's experiments
// use NP=4096 PEs and BW=64 GB/s, following HERALD [22].
type Limits struct {
	MaxPEs int // NP
	MaxBW  int // BW, GB/s
}

// DefaultLimits returns the paper's experimental configuration (§V-A).
func DefaultLimits() Limits { return Limits{MaxPEs: 4096, MaxBW: 64} }

// SubAccel is one sub-accelerator: a dataflow template instantiated with a
// PE count and a NoC bandwidth share. A SubAccel with zero PEs is a
// degenerate (absent) sub-accelerator, which the paper uses to let a
// two-sub-accelerator search space cover single-accelerator designs.
type SubAccel struct {
	DF  dataflow.Style
	PEs int
	BW  int // GB/s
}

// Active reports whether the sub-accelerator has any compute resources.
func (s SubAccel) Active() bool { return s.PEs > 0 }

// String renders the paper's ⟨df, pe, bw⟩ tuple notation.
func (s SubAccel) String() string {
	return fmt.Sprintf("<%s, %d, %d>", s.DF, s.PEs, s.BW)
}

// Design is a complete heterogeneous accelerator: an ordered set of
// sub-accelerators sharing the global PE and bandwidth budgets.
type Design struct {
	Subs []SubAccel
}

// NewDesign returns a design over the given sub-accelerators.
func NewDesign(subs ...SubAccel) Design { return Design{Subs: subs} }

// TotalPEs returns Σ pe_i.
func (d Design) TotalPEs() int {
	t := 0
	for _, s := range d.Subs {
		t += s.PEs
	}
	return t
}

// TotalBW returns Σ bw_i over active sub-accelerators.
func (d Design) TotalBW() int {
	t := 0
	for _, s := range d.Subs {
		if s.Active() {
			t += s.BW
		}
	}
	return t
}

// Active returns the sub-accelerators with non-zero resources, with their
// original indices.
func (d Design) Active() []int {
	var idx []int
	for i, s := range d.Subs {
		if s.Active() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Heterogeneous reports whether the design combines at least two different
// dataflow templates among its active sub-accelerators.
func (d Design) Heterogeneous() bool {
	seen := map[dataflow.Style]bool{}
	for _, s := range d.Subs {
		if s.Active() {
			seen[s.DF] = true
		}
	}
	return len(seen) > 1
}

// Validate checks the design against the resource limits.
func (d Design) Validate(lim Limits) error {
	if len(d.Subs) == 0 {
		return fmt.Errorf("accel: design has no sub-accelerators")
	}
	active := 0
	for i, s := range d.Subs {
		if s.PEs < 0 {
			return fmt.Errorf("accel: sub-accelerator %d has negative PEs %d", i, s.PEs)
		}
		if !s.Active() {
			continue
		}
		active++
		if s.BW <= 0 {
			return fmt.Errorf("accel: active sub-accelerator %d has no bandwidth", i)
		}
	}
	if active == 0 {
		return fmt.Errorf("accel: design has no active sub-accelerator")
	}
	if t := d.TotalPEs(); t > lim.MaxPEs {
		return fmt.Errorf("accel: total PEs %d exceed limit %d", t, lim.MaxPEs)
	}
	if t := d.TotalBW(); t > lim.MaxBW {
		return fmt.Errorf("accel: total bandwidth %d GB/s exceeds limit %d", t, lim.MaxBW)
	}
	return nil
}

// Area returns the accelerator's silicon area in µm² under cost model cfg.
// bufDemand[i] is the largest buffer requirement among layers mapped to
// sub-accelerator i (zero for unused sub-accelerators); the slice may be nil
// when no mapping exists yet, in which case a nominal working buffer is
// assumed so that area remains comparable across designs.
func (d Design) Area(cfg maestro.Config, bufDemand []int64) float64 {
	const nominalBuffer = 64 << 10
	total := 0.0
	for i, s := range d.Subs {
		if !s.Active() {
			continue
		}
		buf := int64(nominalBuffer)
		if bufDemand != nil && i < len(bufDemand) && bufDemand[i] > 0 {
			buf = bufDemand[i]
		}
		total += cfg.SubAccelArea(s.PEs, s.BW, buf)
	}
	return total
}

// Fingerprint returns a compact canonical identity string for the design,
// used as the hardware-evaluation cache key (internal/evalcache). Two designs
// fingerprint equally iff they are semantically identical to the evaluator:
// every sub-accelerator's ⟨dataflow, PEs, bandwidth⟩ tuple matches in order.
// Inactive sub-accelerators still contribute (their position affects the HAP
// buffer-demand layout), so the encoding is position-exact rather than
// active-set normalized.
func (d Design) Fingerprint() string {
	var b strings.Builder
	// 16 bytes per tuple is enough for "dla:4096:64;" with slack.
	b.Grow(16 * len(d.Subs))
	var buf [20]byte
	for i, s := range d.Subs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.DF.String())
		b.WriteByte(':')
		b.Write(strconv.AppendInt(buf[:0], int64(s.PEs), 10))
		b.WriteByte(':')
		b.Write(strconv.AppendInt(buf[:0], int64(s.BW), 10))
	}
	return b.String()
}

// String renders all sub-accelerator tuples.
func (d Design) String() string {
	parts := make([]string, len(d.Subs))
	for i, s := range d.Subs {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Space is the hardware design space the controller samples from: per
// sub-accelerator, the dataflow template choices and the quantized PE and
// bandwidth allocations (Fig. 5, right segments).
type Space struct {
	Limits    Limits
	NumSubs   int
	Styles    []dataflow.Style
	PEOptions []int // per-sub-accelerator PE allocation choices
	BWOptions []int // per-sub-accelerator bandwidth choices, GB/s
}

// DefaultSpace returns the paper's hardware search space: two
// sub-accelerators, the {shi, dla, rs} template set, PE allocations in steps
// of 32 (matching the granularity of the solutions reported in Tables I–II),
// and bandwidth shares in steps of 8 GB/s.
func DefaultSpace() Space {
	lim := DefaultLimits()
	var pes []int
	for p := 0; p <= lim.MaxPEs; p += 32 {
		pes = append(pes, p)
	}
	var bws []int
	for b := 8; b <= lim.MaxBW; b += 8 {
		bws = append(bws, b)
	}
	return Space{
		Limits:    lim,
		NumSubs:   2,
		Styles:    append([]dataflow.Style(nil), dataflow.AllStyles...),
		PEOptions: pes,
		BWOptions: bws,
	}
}

// Feasible reports whether the design satisfies this space's resource
// limits (a cheap pre-check before full validation).
func (s Space) Feasible(d Design) bool {
	return d.Validate(s.Limits) == nil
}
