package accel

import (
	"strings"
	"testing"

	"nasaic/internal/dataflow"
	"nasaic/internal/maestro"
)

func TestDesignTotalsAndValidate(t *testing.T) {
	lim := DefaultLimits()
	d := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 2112, BW: 48},
		SubAccel{DF: dataflow.Shidiannao, PEs: 1984, BW: 16},
	)
	if d.TotalPEs() != 4096 {
		t.Errorf("TotalPEs = %d, want 4096", d.TotalPEs())
	}
	if d.TotalBW() != 64 {
		t.Errorf("TotalBW = %d, want 64", d.TotalBW())
	}
	if err := d.Validate(lim); err != nil {
		t.Errorf("paper's NAS→ASIC W1 design should validate: %v", err)
	}
	if !d.Heterogeneous() {
		t.Error("dla+shi design should be heterogeneous")
	}
}

func TestValidateRejects(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name string
		d    Design
	}{
		{"empty", Design{}},
		{"over PEs", NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 4097, BW: 32})},
		{"over BW", NewDesign(
			SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 40},
			SubAccel{DF: dataflow.Shidiannao, PEs: 1024, BW: 40})},
		{"negative PEs", NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: -1, BW: 8})},
		{"active without bw", NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 64, BW: 0})},
		{"all inactive", NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 0, BW: 8})},
	}
	for _, c := range cases {
		if err := c.d.Validate(lim); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDegenerateDesigns(t *testing.T) {
	// One sub-accelerator with zero PEs degenerates to a single accelerator
	// (§V-A); it must not count toward bandwidth and must not be "active".
	d := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 3104, BW: 24},
		SubAccel{DF: dataflow.Shidiannao, PEs: 0, BW: 40},
	)
	if err := d.Validate(DefaultLimits()); err != nil {
		t.Fatalf("degenerate single design should validate: %v", err)
	}
	if got := d.Active(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Active = %v, want [0]", got)
	}
	if d.Heterogeneous() {
		t.Error("single active sub-accelerator is not heterogeneous")
	}
	if d.TotalBW() != 24 {
		t.Errorf("inactive sub-accelerator bandwidth must not count, got %d", d.TotalBW())
	}

	homo := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 1408, BW: 32},
		SubAccel{DF: dataflow.NVDLA, PEs: 1408, BW: 32},
	)
	if homo.Heterogeneous() {
		t.Error("two dla sub-accelerators are homogeneous")
	}
}

func TestArea(t *testing.T) {
	cfg := maestro.DefaultConfig()
	d := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32},
		SubAccel{DF: dataflow.Shidiannao, PEs: 0, BW: 8},
	)
	a := d.Area(cfg, nil)
	want := cfg.SubAccelArea(1024, 32, 64<<10)
	if a != want {
		t.Errorf("area = %f, want %f (inactive sub must be free)", a, want)
	}
	a2 := d.Area(cfg, []int64{1 << 20, 0})
	if a2 <= a {
		t.Error("larger buffer demand must increase area")
	}
}

func TestDefaultSpace(t *testing.T) {
	s := DefaultSpace()
	if s.NumSubs != 2 {
		t.Errorf("NumSubs = %d, want 2", s.NumSubs)
	}
	if len(s.Styles) != 3 {
		t.Errorf("want 3 dataflow styles, got %d", len(s.Styles))
	}
	// PE options include the values reported in the paper's tables.
	has := func(opts []int, v int) bool {
		for _, o := range opts {
			if o == v {
				return true
			}
		}
		return false
	}
	for _, v := range []int{0, 576, 1152, 1760, 1792, 2112, 3104, 4096} {
		if !has(s.PEOptions, v) {
			t.Errorf("PE options missing paper value %d", v)
		}
	}
	for _, v := range []int{8, 16, 24, 32, 40, 48, 56, 64} {
		if !has(s.BWOptions, v) {
			t.Errorf("BW options missing %d", v)
		}
	}
	ok := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 2112, BW: 40},
		SubAccel{DF: dataflow.Shidiannao, PEs: 1184, BW: 24})
	if !s.Feasible(ok) {
		t.Error("paper's NASAIC W2 design should be feasible")
	}
}

func TestStrings(t *testing.T) {
	s := SubAccel{DF: dataflow.NVDLA, PEs: 576, BW: 56}
	if got, want := s.String(), "<dla, 576, 56>"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	d := NewDesign(s, SubAccel{DF: dataflow.Shidiannao, PEs: 1792, BW: 8})
	if !strings.Contains(d.String(), "<shi, 1792, 8>") {
		t.Errorf("design string missing sub-accelerator: %q", d.String())
	}
}

func TestFingerprint(t *testing.T) {
	d := NewDesign(
		SubAccel{DF: dataflow.NVDLA, PEs: 576, BW: 56},
		SubAccel{DF: dataflow.Shidiannao, PEs: 0, BW: 8})
	if got, want := d.Fingerprint(), "dla:576:56;shi:0:8"; got != want {
		t.Errorf("Fingerprint = %q, want %q", got, want)
	}

	cases := []struct {
		name string
		a, b Design
		same bool
	}{
		{
			"identical designs",
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
			true,
		},
		{
			"different dataflow",
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
			NewDesign(SubAccel{DF: dataflow.RowStationary, PEs: 1024, BW: 32}),
			false,
		},
		{
			"different PEs",
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1056, BW: 32}),
			false,
		},
		{
			"sub-accelerator order matters",
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32},
				SubAccel{DF: dataflow.Shidiannao, PEs: 512, BW: 16}),
			NewDesign(SubAccel{DF: dataflow.Shidiannao, PEs: 512, BW: 16},
				SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
			false,
		},
		{
			// "dla:12;..." vs "dla:1;2..." style ambiguity must not collide.
			"field boundaries are unambiguous",
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 12, BW: 1}),
			NewDesign(SubAccel{DF: dataflow.NVDLA, PEs: 1, BW: 21}),
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fa, fb := tc.a.Fingerprint(), tc.b.Fingerprint()
			if (fa == fb) != tc.same {
				t.Errorf("Fingerprint equality = %v (%q vs %q), want %v", fa == fb, fa, fb, tc.same)
			}
		})
	}
}
