// Package tenant is nasaicd's multi-tenancy registry: named tenants
// authenticated by API keys, each carrying its own quota limits (pending
// jobs, concurrent jobs, event-ring size). The registry loads from a static
// JSON config file (cmd/nasaicd's -tenants flag) and authenticates
// Authorization: Bearer keys in constant time — presented keys are hashed
// and every registered digest is compared with crypto/subtle, so neither the
// number of matching prefix bytes nor which tenant matched leaks through
// timing.
//
// When auth is off (no -tenants file) every request maps to the Anonymous
// tenant: unlimited quotas and admin visibility, i.e. exactly the
// single-tenant behavior the service had before tenancy existed.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
)

// AnonymousName is the tenant every request maps to when auth is off, and
// the tenant pre-tenancy journal records (no tenant field) recover under.
const AnonymousName = "anonymous"

// Authentication failures. The HTTP layer maps ErrNoKey to 401 (the caller
// sent no usable credential) and ErrBadKey to 403 (a credential was sent,
// but it matches no tenant).
var (
	ErrNoKey  = errors.New("tenant: missing or malformed Authorization bearer key")
	ErrBadKey = errors.New("tenant: unknown API key")
)

// Limits are one tenant's quota bounds. Zero values mean unlimited (the
// manager-wide bounds still apply).
type Limits struct {
	// MaxPending bounds the tenant's jobs queued for a concurrency slot;
	// submissions beyond it are rejected (HTTP 429 with a Retry-After hint).
	MaxPending int `json:"max_pending,omitempty"`
	// MaxConcurrent bounds the tenant's jobs running at once; further jobs
	// wait in the tenant's queue for the fair-share dispatcher.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxEventRing caps the per-job replayable event ring (memory bound); it
	// can only lower the manager-wide default, never raise it.
	MaxEventRing int `json:"max_event_ring,omitempty"`
}

// Tenant is one authenticated principal. Tenants are immutable after the
// registry is built; all Registry methods are safe for concurrent use.
type Tenant struct {
	// Name identifies the tenant: it tags every job it submits, is journaled
	// with the submission, and scopes listings and cancels.
	Name string `json:"name"`
	// Admin grants cross-tenant visibility: listing, reading and cancelling
	// every tenant's jobs.
	Admin  bool   `json:"admin,omitempty"`
	Limits Limits `json:"limits"`

	keyHash [sha256.Size]byte
}

// CanSee reports whether the tenant may observe (get, list, stream, cancel)
// a job owned by the named tenant. A nil tenant is the manager's internal
// unscoped view and sees everything.
func (t *Tenant) CanSee(owner string) bool {
	return t == nil || t.Admin || t.Name == owner
}

// fileTenant is one entry of the -tenants config file.
type fileTenant struct {
	Name          string `json:"name"`
	Key           string `json:"key"`
	Admin         bool   `json:"admin,omitempty"`
	MaxPending    int    `json:"max_pending,omitempty"`
	MaxConcurrent int    `json:"max_concurrent,omitempty"`
	MaxEventRing  int    `json:"max_event_ring,omitempty"`
}

// file is the -tenants config file shape:
//
//	{
//	  "tenants": [
//	    {"name": "acme",  "key": "acme-secret-1",
//	     "max_pending": 16, "max_concurrent": 2, "max_event_ring": 1024},
//	    {"name": "ops",   "key": "ops-secret-9", "admin": true}
//	  ]
//	}
type file struct {
	Tenants []fileTenant `json:"tenants"`
}

// Registry is the authenticated tenant set. A nil *Registry means auth is
// off: Authenticate returns the Anonymous tenant for any key.
type Registry struct {
	tenants []*Tenant // registry order (file order); lookups scan all of them
	byName  map[string]*Tenant
	anon    *Tenant
}

// Anonymous is the default tenant used when auth is off: unlimited quotas
// and admin visibility (single-tenant mode, the pre-tenancy behavior).
func Anonymous() *Tenant {
	return &Tenant{Name: AnonymousName, Admin: true}
}

// New builds a registry from explicit (name, key) tenants; the test-side
// counterpart of Load. Keys must be non-empty and unique, names non-empty,
// unique and not the reserved anonymous name.
func New(entries []Tenant, keys []string) (*Registry, error) {
	if len(entries) != len(keys) {
		return nil, fmt.Errorf("tenant: %d tenants but %d keys", len(entries), len(keys))
	}
	fts := make([]fileTenant, len(entries))
	for i, e := range entries {
		fts[i] = fileTenant{
			Name:          e.Name,
			Key:           keys[i],
			Admin:         e.Admin,
			MaxPending:    e.Limits.MaxPending,
			MaxConcurrent: e.Limits.MaxConcurrent,
			MaxEventRing:  e.Limits.MaxEventRing,
		}
	}
	return build(fts)
}

// Load reads and validates a -tenants config file.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read %s: %w", path, err)
	}
	r, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Parse validates config-file bytes into a registry.
func Parse(data []byte) (*Registry, error) {
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, errors.New("no tenants defined")
	}
	return build(f.Tenants)
}

func build(fts []fileTenant) (*Registry, error) {
	r := &Registry{byName: make(map[string]*Tenant), anon: Anonymous()}
	seenKeys := make(map[[sha256.Size]byte]string)
	for i, ft := range fts {
		switch {
		case ft.Name == "":
			return nil, fmt.Errorf("tenant %d: empty name", i)
		case ft.Name == AnonymousName:
			return nil, fmt.Errorf("tenant %d: name %q is reserved", i, AnonymousName)
		case ft.Key == "":
			return nil, fmt.Errorf("tenant %q: empty key", ft.Name)
		case len(ft.Key) < 8:
			return nil, fmt.Errorf("tenant %q: key shorter than 8 characters", ft.Name)
		}
		if _, dup := r.byName[ft.Name]; dup {
			return nil, fmt.Errorf("tenant %q: duplicate name", ft.Name)
		}
		t := &Tenant{
			Name:  ft.Name,
			Admin: ft.Admin,
			Limits: Limits{
				MaxPending:    ft.MaxPending,
				MaxConcurrent: ft.MaxConcurrent,
				MaxEventRing:  ft.MaxEventRing,
			},
			keyHash: sha256.Sum256([]byte(ft.Key)),
		}
		if other, dup := seenKeys[t.keyHash]; dup {
			return nil, fmt.Errorf("tenant %q: key already used by %q", ft.Name, other)
		}
		seenKeys[t.keyHash] = ft.Name
		r.tenants = append(r.tenants, t)
		r.byName[ft.Name] = t
	}
	return r, nil
}

// Authenticate resolves an API key to its tenant. On a nil registry (auth
// off) every key — including none — maps to the Anonymous tenant. With auth
// on, an empty key fails with ErrNoKey and an unknown one with ErrBadKey.
// The scan hashes the presented key once and compares the digest against
// every registered tenant with crypto/subtle, never exiting early, so
// response timing is independent of both the key contents and which (if
// any) tenant matched.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	if r == nil {
		return Anonymous(), nil
	}
	if key == "" {
		return nil, ErrNoKey
	}
	digest := sha256.Sum256([]byte(key))
	var match *Tenant
	for _, t := range r.tenants {
		if subtle.ConstantTimeCompare(digest[:], t.keyHash[:]) == 1 && match == nil {
			match = t
		}
	}
	if match == nil {
		return nil, ErrBadKey
	}
	return match, nil
}

// BearerKey extracts the key from an Authorization header value. It returns
// "" when the header is absent or not a Bearer credential.
func BearerKey(header string) string {
	const prefix = "Bearer "
	if len(header) > len(prefix) && strings.EqualFold(header[:len(prefix)], prefix) {
		return strings.TrimSpace(header[len(prefix):])
	}
	return ""
}

// ByName resolves a tenant by name (nil when absent). Recovery uses it to
// re-attach journaled jobs to their tenants' current limits; a name that no
// longer exists in the config keeps its jobs (scoped under the old name)
// with unlimited per-tenant quotas.
func (r *Registry) ByName(name string) *Tenant {
	if r == nil {
		return nil
	}
	if name == AnonymousName {
		return r.anon
	}
	return r.byName[name]
}

// Names returns the registered tenant names, sorted (banner/debug output).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.tenants))
	for _, t := range r.tenants {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Required reports whether requests must present a key (auth on).
func (r *Registry) Required() bool { return r != nil }
