package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleConfig = `{
  "tenants": [
    {"name": "acme", "key": "acme-secret-1",
     "max_pending": 16, "max_concurrent": 2, "max_event_ring": 1024},
    {"name": "beta", "key": "beta-secret-2", "max_pending": 4},
    {"name": "ops",  "key": "ops-secret-99", "admin": true}
  ]
}`

func TestParseAndAuthenticate(t *testing.T) {
	r, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	acme, err := r.Authenticate("acme-secret-1")
	if err != nil {
		t.Fatal(err)
	}
	if acme.Name != "acme" || acme.Admin ||
		acme.Limits.MaxPending != 16 || acme.Limits.MaxConcurrent != 2 || acme.Limits.MaxEventRing != 1024 {
		t.Fatalf("acme = %+v", acme)
	}
	ops, err := r.Authenticate("ops-secret-99")
	if err != nil || !ops.Admin {
		t.Fatalf("ops = %+v, err %v", ops, err)
	}
	if _, err := r.Authenticate(""); !errors.Is(err, ErrNoKey) {
		t.Fatalf("empty key: %v, want ErrNoKey", err)
	}
	if _, err := r.Authenticate("acme-secret-"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("prefix of a real key: %v, want ErrBadKey", err)
	}
	if _, err := r.Authenticate("who-is-this"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("unknown key: %v, want ErrBadKey", err)
	}
	if got := r.Names(); strings.Join(got, ",") != "acme,beta,ops" {
		t.Fatalf("Names() = %v", got)
	}
	if !r.Required() {
		t.Fatal("registry with tenants must require auth")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(sampleConfig), 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tn := r.ByName("beta"); tn == nil || tn.Limits.MaxPending != 4 {
		t.Fatalf("ByName(beta) = %+v", tn)
	}
	if tn := r.ByName("nope"); tn != nil {
		t.Fatalf("ByName(nope) = %+v, want nil", tn)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestParseRejectsBadConfigs(t *testing.T) {
	for name, cfg := range map[string]string{
		"garbage":       `{{{`,
		"empty":         `{"tenants": []}`,
		"no name":       `{"tenants": [{"key": "long-enough-key"}]}`,
		"reserved name": `{"tenants": [{"name": "anonymous", "key": "long-enough-key"}]}`,
		"no key":        `{"tenants": [{"name": "a"}]}`,
		"short key":     `{"tenants": [{"name": "a", "key": "short"}]}`,
		"dup name":      `{"tenants": [{"name": "a", "key": "key-number-1"}, {"name": "a", "key": "key-number-2"}]}`,
		"dup key":       `{"tenants": [{"name": "a", "key": "key-number-1"}, {"name": "b", "key": "key-number-1"}]}`,
	} {
		if _, err := Parse([]byte(cfg)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNilRegistryIsAnonymous(t *testing.T) {
	var r *Registry
	tn, err := r.Authenticate("anything-at-all")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name != AnonymousName || !tn.Admin {
		t.Fatalf("anonymous = %+v", tn)
	}
	if tn.Limits != (Limits{}) {
		t.Fatalf("anonymous has limits: %+v", tn.Limits)
	}
	if r.Required() {
		t.Fatal("nil registry requires auth")
	}
	if r.ByName("x") != nil || r.Names() != nil {
		t.Fatal("nil registry resolved a tenant")
	}
}

func TestCanSee(t *testing.T) {
	r, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	acme, ops := r.ByName("acme"), r.ByName("ops")
	if !acme.CanSee("acme") || acme.CanSee("beta") {
		t.Fatal("non-admin scope wrong")
	}
	if !ops.CanSee("acme") || !ops.CanSee("beta") || !ops.CanSee(AnonymousName) {
		t.Fatal("admin must see all tenants")
	}
	var unscoped *Tenant
	if !unscoped.CanSee("acme") {
		t.Fatal("nil (internal) view must see all tenants")
	}
	if !Anonymous().CanSee("acme") {
		t.Fatal("anonymous (auth off) must see all jobs")
	}
}

func TestBearerKey(t *testing.T) {
	for header, want := range map[string]string{
		"Bearer acme-secret-1":  "acme-secret-1",
		"bearer acme-secret-1":  "acme-secret-1", // scheme is case-insensitive
		"Bearer  padded-key  ":  "padded-key",
		"":                      "",
		"Bearer":                "",
		"Basic dXNlcjpwYXNz":    "",
		"BearerNoSpaceKey12345": "",
	} {
		if got := BearerKey(header); got != want {
			t.Errorf("BearerKey(%q) = %q, want %q", header, got, want)
		}
	}
}

func TestNewMirrorsParse(t *testing.T) {
	r, err := New([]Tenant{
		{Name: "a", Limits: Limits{MaxPending: 3}},
		{Name: "b", Admin: true},
	}, []string{"key-for-a-1", "key-for-b-2"})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := r.Authenticate("key-for-a-1")
	if err != nil || tn.Name != "a" || tn.Limits.MaxPending != 3 {
		t.Fatalf("a = %+v, err %v", tn, err)
	}
	if _, err := New([]Tenant{{Name: "a"}}, nil); err == nil {
		t.Fatal("mismatched keys accepted")
	}
}
