package export

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestCSVRowMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, []string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Error("row/header mismatch accepted")
	}
}

func TestScatter(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "title", "x", "y", 40, 10, []Point{
		{X: 0, Y: 0, Series: "o"},
		{X: 1, Y: 1, Series: "*"},
		{X: 0.5, Y: 0.5, Series: "#"},
	})
	out := buf.String()
	for _, want := range []string{"title", "o", "*", "#", "min 0", "max 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	// All grid rows must have the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	gridWidth := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			if gridWidth == 0 {
				gridWidth = len(l)
			} else if len(l) != gridWidth {
				t.Errorf("ragged scatter row: %q", l)
			}
		}
	}
}

func TestScatterDegenerate(t *testing.T) {
	var buf bytes.Buffer
	// Single point and zero points must not panic or divide by zero.
	Scatter(&buf, "one", "x", "y", 20, 8, []Point{{X: 5, Y: 5}})
	Scatter(&buf, "none", "x", "y", 20, 8, nil)
	// Tiny dimensions are clamped.
	Scatter(&buf, "tiny", "x", "y", 1, 1, []Point{{X: 0, Y: 0}})
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"name", "v"}, [][]string{{"longer-name", "1"}, {"x", "22"}})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Errorf("unaligned table line %q", l)
		}
	}
}

func TestSci(t *testing.T) {
	cases := map[float64]string{
		945000:  "9.45e5",
		0:       "0",
		1.43e9:  "1.43e9",
		-2500:   "-2.50e3",
		0.00321: "3.21e-3",
	}
	for v, want := range cases {
		if got := Sci(v); got != want {
			t.Errorf("Sci(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestPctAndMark(t *testing.T) {
	if Pct(0.9417) != "94.17%" {
		t.Errorf("Pct = %q", Pct(0.9417))
	}
	if Mark(true) != "OK" || Mark(false) != "VIOLATED" {
		t.Error("Mark wrong")
	}
}
