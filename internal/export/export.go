// Package export renders experiment results: CSV series for plotting, ASCII
// scatter plots for terminal inspection of the Fig. 1 / Fig. 6 design-space
// views, and aligned text tables for the Table I / Table II comparisons.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// CSV writes a header and rows of float-compatible cells to w.
func CSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("export: row has %d cells, header has %d", len(r), len(header))
		}
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Point is a labeled point in the (latency, energy, area) metric space.
type Point struct {
	X, Y   float64
	Series string // single-rune marker, e.g. "o", "*", "#"
}

// Scatter renders an ASCII scatter plot of points with axis ranges padded to
// include the optional marks (e.g. the spec corner). Later points overwrite
// earlier ones on collisions, so draw emphasis series (specs, best) last.
func Scatter(w io.Writer, title, xlabel, ylabel string, width, height int, pts []Point) {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 || minX == maxX {
		maxX = minX + 1
	}
	if len(pts) == 0 || minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		xi := int(float64(width-1) * (p.X - minX) / (maxX - minX))
		yi := int(float64(height-1) * (p.Y - minY) / (maxY - minY))
		row := height - 1 - yi
		marker := 'o'
		if p.Series != "" {
			marker = []rune(p.Series)[0]
		}
		grid[row][xi] = marker
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%s (min %.3g, max %.3g) vs %s (min %.3g, max %.3g)\n",
		xlabel, minX, maxX, ylabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", width))
}

// Table renders an aligned text table.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

// Sci formats a float in the paper's compact scientific style (e.g. 9.45e5).
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	exp := int(math.Floor(math.Log10(math.Abs(v))))
	mant := v / math.Pow(10, float64(exp))
	return fmt.Sprintf("%.2fe%d", mant, exp)
}

// Pct formats a quality in [0,1] as a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Mark renders the paper's spec-satisfaction mark.
func Mark(ok bool) string {
	if ok {
		return "OK"
	}
	return "VIOLATED"
}
