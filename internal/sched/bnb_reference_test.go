package sched

// This file retains the pre-unification BranchAndBound verbatim (modulo the
// rename) as the reference semantics for the differential tests: its own
// bound bookkeeping, a full unbounded simulation per leaf, no suffix-bound
// sharing with Exhaustive and no parallel split. The unified solver in
// bnb.go must match it bit for bit on every search that completes within
// budget — same assignment, makespan, energy and completeness flag.

import (
	"fmt"
	"math"
	"sort"
)

func referenceBranchAndBound(p Problem, nodeBudget int) (Result, bool, error) {
	if err := p.Validate(); err != nil {
		return Result{}, false, err
	}
	if nodeBudget <= 0 {
		return Result{}, false, fmt.Errorf("sched: node budget must be positive")
	}

	type site struct {
		chain, layer int
		minCycles    int64
		minEnergy    float64
		spread       float64
	}
	var sites []site
	for ci, c := range p.Chains {
		for li, l := range c.Layers {
			s := site{chain: ci, layer: li,
				minCycles: l.Options[0].Cycles, minEnergy: l.Options[0].EnergyNJ}
			maxE := l.Options[0].EnergyNJ
			for _, o := range l.Options[1:] {
				if o.Cycles < s.minCycles {
					s.minCycles = o.Cycles
				}
				if o.EnergyNJ < s.minEnergy {
					s.minEnergy = o.EnergyNJ
				}
				if o.EnergyNJ > maxE {
					maxE = o.EnergyNJ
				}
			}
			s.spread = maxE - s.minEnergy
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].spread > sites[j].spread })

	// Suffix sums of the optimistic remainders, in branch order.
	n := len(sites)
	sufEnergy := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		sufEnergy[i] = sufEnergy[i+1] + sites[i].minEnergy
	}
	sufChainCycles := make([]map[int]int64, n+1)
	sufChainCycles[n] = map[int]int64{}
	for i := n - 1; i >= 0; i-- {
		m := make(map[int]int64, len(p.Chains))
		for k, v := range sufChainCycles[i+1] {
			m[k] = v
		}
		m[sites[i].chain] += sites[i].minCycles
		sufChainCycles[i] = m
	}

	a := make(Assignment, len(p.Chains))
	for ci, c := range p.Chains {
		a[ci] = make([]int, len(c.Layers))
	}

	var (
		best        Result
		haveBest    bool
		bestAnyMk   int64 = math.MaxInt64
		bestAny     Result
		haveAny     bool
		nodes       int
		complete    = true
		chainLoad   = make([]int64, len(p.Chains))
		accelLoad   = make([]int64, p.NumAccels)
		energySoFar float64
		ev          = newEvaluator(&p) // validated once above; leaves run unchecked
	)

	var dfs func(depth int)
	dfs = func(depth int) {
		if nodes >= nodeBudget {
			complete = false
			return
		}
		nodes++
		if depth == n {
			ev.run(a, nil)
			mk, en := ev.makespan, ev.energy
			if mk <= p.Deadline && (!haveBest || en < best.EnergyNJ) {
				best = ev.result(a)
				haveBest = true
			}
			if mk < bestAnyMk {
				bestAnyMk = mk
				bestAny = ev.result(a)
				haveAny = true
			}
			return
		}
		s := sites[depth]
		opts := p.Chains[s.chain].Layers[s.layer].Options
		for j := range opts {
			// Energy bound.
			e := energySoFar + opts[j].EnergyNJ + sufEnergy[depth+1]
			if haveBest && e >= best.EnergyNJ {
				continue
			}
			// Makespan bounds (sound for the list scheduler).
			cl := chainLoad[s.chain] + opts[j].Cycles + sufChainCycles[depth+1][s.chain]
			al := accelLoad[j] + opts[j].Cycles
			if haveBest && (cl > p.Deadline || al > p.Deadline) {
				continue
			}

			a[s.chain][s.layer] = j
			energySoFar += opts[j].EnergyNJ
			chainLoad[s.chain] += opts[j].Cycles
			accelLoad[j] += opts[j].Cycles
			dfs(depth + 1)
			accelLoad[j] -= opts[j].Cycles
			chainLoad[s.chain] -= opts[j].Cycles
			energySoFar -= opts[j].EnergyNJ
		}
	}
	dfs(0)

	if haveBest {
		return best, complete, nil
	}
	if haveAny {
		return bestAny, complete, nil
	}
	return Result{}, complete, fmt.Errorf("sched: branch and bound explored no leaf within budget %d", nodeBudget)
}
