package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Placement is one scheduled layer execution in a timeline.
type Placement struct {
	Chain int
	Layer int
	Name  string
	Accel int
	Start int64
	End   int64
}

// Timeline evaluates assignment a like Evaluate but additionally returns the
// per-layer placements (the concrete sch() schedule), in start order. Both
// come out of a single simulation of the event-driven policy.
func Timeline(p Problem, a Assignment) (Result, []Placement, error) {
	if err := p.Validate(); err != nil {
		return Result{}, nil, err
	}
	if err := p.checkAssignment(a); err != nil {
		return Result{}, nil, err
	}
	ev := newEvaluator(&p)
	placements := make([]Placement, 0, p.Size())
	ev.run(a, &placements)
	return ev.result(a), placements, nil
}

// ValidateTimeline checks the structural invariants of a placement list
// against its problem: chain order respected, no overlap on any
// sub-accelerator, and every layer placed exactly once. It is used by the
// property tests and available to external tooling.
func ValidateTimeline(p Problem, placements []Placement) error {
	seen := map[[2]int]Placement{}
	for _, pl := range placements {
		key := [2]int{pl.Chain, pl.Layer}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("sched: layer %d/%d placed twice", pl.Chain, pl.Layer)
		}
		seen[key] = pl
		if pl.End <= pl.Start {
			return fmt.Errorf("sched: placement %s has non-positive duration", pl.Name)
		}
	}
	if len(seen) != p.Size() {
		return fmt.Errorf("sched: %d placements for %d layers", len(seen), p.Size())
	}
	// Chain dependencies.
	for ci, c := range p.Chains {
		for li := 1; li < len(c.Layers); li++ {
			prev := seen[[2]int{ci, li - 1}]
			cur := seen[[2]int{ci, li}]
			if cur.Start < prev.End {
				return fmt.Errorf("sched: chain %d layer %d starts at %d before predecessor ends at %d",
					ci, li, cur.Start, prev.End)
			}
		}
	}
	// Per-accelerator exclusivity. Accelerators are visited in sorted order
	// so that when several have overlaps, which one the error names is
	// deterministic (map iteration order must never pick the result).
	byAccel := map[int][]Placement{}
	for _, pl := range placements {
		byAccel[pl.Accel] = append(byAccel[pl.Accel], pl)
	}
	accels := make([]int, 0, len(byAccel))
	for accel := range byAccel {
		accels = append(accels, accel)
	}
	sort.Ints(accels)
	for _, accel := range accels {
		pls := byAccel[accel]
		sort.Slice(pls, func(i, j int) bool { return pls[i].Start < pls[j].Start })
		for i := 1; i < len(pls); i++ {
			if pls[i].Start < pls[i-1].End {
				return fmt.Errorf("sched: overlap on accelerator %d between %s and %s",
					accel, pls[i-1].Name, pls[i].Name)
			}
		}
	}
	return nil
}

// RenderGantt writes an ASCII Gantt chart of the placements, one row per
// sub-accelerator, width columns wide.
func RenderGantt(w io.Writer, p Problem, placements []Placement, width int) {
	if width < 20 {
		width = 20
	}
	var makespan int64
	for _, pl := range placements {
		if pl.End > makespan {
			makespan = pl.End
		}
	}
	if makespan == 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	col := func(t int64) int {
		c := int(t * int64(width) / makespan)
		if c >= width {
			c = width - 1
		}
		return c
	}
	marks := "0123456789abcdefghijklmnopqrstuvwxyz"
	fmt.Fprintf(w, "schedule (makespan %d cycles, %d layers; digit = chain index)\n", makespan, len(placements))
	for accel := 0; accel < p.NumAccels; accel++ {
		row := []rune(strings.Repeat(".", width))
		for _, pl := range placements {
			if pl.Accel != accel {
				continue
			}
			m := rune(marks[pl.Chain%len(marks)])
			for c := col(pl.Start); c <= col(pl.End-1); c++ {
				row[c] = m
			}
		}
		fmt.Fprintf(w, "aic%d |%s|\n", accel+1, string(row))
	}
}
