package sched

import (
	"fmt"
	"testing"

	"nasaic/internal/stats"
)

// benchProblem builds a deterministic instance with a tight-but-feasible
// deadline (1.3x the minimum-latency makespan) so the ratio-greedy phase has
// real refinement work to do.
func benchProblem(seed uint64, chains, layers, accels int) Problem {
	rng := stats.NewRNG(int64(seed))
	p := Problem{NumAccels: accels}
	for c := 0; c < chains; c++ {
		ch := Chain{Name: fmt.Sprintf("c%d", c)}
		for l := 0; l < layers; l++ {
			layer := Layer{Name: fmt.Sprintf("c%d_l%d", c, l)}
			for j := 0; j < accels; j++ {
				layer.Options = append(layer.Options, Option{
					Cycles:      int64(50 + rng.Intn(500)),
					EnergyNJ:    (1 + 10*rng.Float64()) * 1e7,
					BufferBytes: int64(1024 + rng.Intn(65536)),
				})
			}
			ch.Layers = append(ch.Layers, layer)
		}
		p.Chains = append(p.Chains, ch)
	}
	p.Deadline = 1 << 62
	seedRes, err := Evaluate(p, minLatencyAssignment(p))
	if err != nil {
		panic(err)
	}
	p.Deadline = seedRes.Makespan * 13 / 10
	return p
}

// Instance sizes: small is exhaustible (2^8 assignments), medium is the
// Heuristic speedup target of the PR (sequential move scan), large crosses
// the parallel move-scan threshold.
func benchSmall() Problem  { return benchProblem(1, 2, 4, 2) }
func benchMedium() Problem { return benchProblem(2, 3, 12, 3) }
func benchLarge() Problem  { return benchProblem(3, 4, 24, 4) }

func benchEvaluate(b *testing.B, p Problem) {
	a := minLatencyAssignment(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(p, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateSmall(b *testing.B)  { benchEvaluate(b, benchSmall()) }
func BenchmarkEvaluateMedium(b *testing.B) { benchEvaluate(b, benchMedium()) }
func BenchmarkEvaluateLarge(b *testing.B)  { benchEvaluate(b, benchLarge()) }

// benchSolver times one solver entry point and reports the schedule energy,
// so paired new/Reference benchmarks can be checked for identical results.
func benchSolver(b *testing.B, p Problem, f func(Problem) (Result, error)) {
	b.ResetTimer()
	var energy float64
	for i := 0; i < b.N; i++ {
		res, err := f(p)
		if err != nil {
			b.Fatal(err)
		}
		energy = res.EnergyNJ
	}
	b.ReportMetric(energy, "energy_nj")
}

func BenchmarkHeuristicSmall(b *testing.B)  { benchSolver(b, benchSmall(), Heuristic) }
func BenchmarkHeuristicMedium(b *testing.B) { benchSolver(b, benchMedium(), Heuristic) }
func BenchmarkHeuristicLarge(b *testing.B)  { benchSolver(b, benchLarge(), Heuristic) }

// The NoCheckpoint benchmarks time the same solver with the checkpointed
// move-scan simulator disabled (every candidate move replays the whole
// schedule). The ns/op ratio against BenchmarkHeuristic* is the checkpointed
// path's speedup; CI's bench smoke records it and fails if the checkpointed
// path regresses more than 10% against the >=1.5x acceptance bar.
func benchNoCheckpoint(p Problem) Problem {
	p.Tuning.DisableCheckpoints = true
	return p
}

func BenchmarkHeuristicNoCheckpointMedium(b *testing.B) {
	benchSolver(b, benchNoCheckpoint(benchMedium()), Heuristic)
}
func BenchmarkHeuristicNoCheckpointLarge(b *testing.B) {
	benchSolver(b, benchNoCheckpoint(benchLarge()), Heuristic)
}

// The Reference benchmarks time the retained pre-rewrite solver on the same
// instances; the ns/op ratio against BenchmarkHeuristic* is the PR's
// speedup (the acceptance bar is >=5x at the medium size).
func BenchmarkHeuristicReferenceSmall(b *testing.B) {
	benchSolver(b, benchSmall(), referenceHeuristic)
}
func BenchmarkHeuristicReferenceMedium(b *testing.B) {
	benchSolver(b, benchMedium(), referenceHeuristic)
}
func BenchmarkHeuristicReferenceLarge(b *testing.B) {
	benchSolver(b, benchLarge(), referenceHeuristic)
}

func BenchmarkExhaustiveSmall(b *testing.B) { benchSolver(b, benchSmall(), Exhaustive) }

// BenchmarkExhaustiveLarge enumerates 2^14 assignments, crossing the
// parallel-enumeration threshold.
func BenchmarkExhaustiveLarge(b *testing.B) {
	benchSolver(b, benchProblem(4, 2, 7, 2), Exhaustive)
}

func BenchmarkExhaustiveReferenceSmall(b *testing.B) {
	benchSolver(b, benchSmall(), referenceExhaustive)
}

func BenchmarkExhaustiveReferenceLarge(b *testing.B) {
	benchSolver(b, benchProblem(4, 2, 7, 2), referenceExhaustive)
}

// benchBnBProblem is a nodeBudget-scale instance (3^24 assignments, beyond
// Exhaustive's guard) with a deadline loose enough that the search completes.
func benchBnBProblem() Problem {
	p := benchProblem(5, 2, 12, 3)
	p.Deadline = p.Deadline * 3
	return p
}

// BenchmarkBranchAndBound times the unified solver (exhaustPre suffix
// bounds, bounded leaf simulation, shared-bound parallel split) against the
// retained pre-unification reference on the same instance; both report the
// schedule energy so the smoke can check the results agree.
func BenchmarkBranchAndBound(b *testing.B) {
	p := benchBnBProblem()
	benchSolver(b, p, func(p Problem) (Result, error) {
		res, complete, err := BranchAndBound(p, 4<<20)
		if err == nil && !complete {
			b.Fatal("search did not complete within budget")
		}
		return res, err
	})
}

func BenchmarkBranchAndBoundReference(b *testing.B) {
	p := benchBnBProblem()
	benchSolver(b, p, func(p Problem) (Result, error) {
		res, complete, err := referenceBranchAndBound(p, 4<<20)
		if err == nil && !complete {
			b.Fatal("search did not complete within budget")
		}
		return res, err
	})
}

func benchHAP(b *testing.B, p Problem) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := HAP(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHAPSmall(b *testing.B)  { benchHAP(b, benchSmall()) }
func BenchmarkHAPMedium(b *testing.B) { benchHAP(b, benchMedium()) }
func BenchmarkHAPLarge(b *testing.B)  { benchHAP(b, benchLarge()) }
