package sched

import (
	"math"
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

// twoAccelProblem builds a small instance where accelerator 0 is fast but
// power-hungry and accelerator 1 is slow but efficient.
func twoAccelProblem(deadline int64) Problem {
	mk := func(name string, fast, slow int64, eFast, eSlow float64) Layer {
		return Layer{Name: name, Options: []Option{
			{Cycles: fast, EnergyNJ: eFast, BufferBytes: 100},
			{Cycles: slow, EnergyNJ: eSlow, BufferBytes: 80},
		}}
	}
	return Problem{
		NumAccels: 2,
		Deadline:  deadline,
		Chains: []Chain{
			{Name: "net0", Layers: []Layer{
				mk("a0", 10, 30, 9, 3),
				mk("a1", 20, 50, 10, 4),
				mk("a2", 10, 25, 8, 3),
			}},
			{Name: "net1", Layers: []Layer{
				mk("b0", 15, 40, 7, 2),
				mk("b1", 10, 30, 6, 2),
			}},
		},
	}
}

func TestValidate(t *testing.T) {
	p := twoAccelProblem(100)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := p
	bad.NumAccels = 0
	if err := bad.Validate(); err == nil {
		t.Error("NumAccels=0 accepted")
	}
	bad2 := twoAccelProblem(100)
	bad2.Chains[0].Layers[0].Options = bad2.Chains[0].Layers[0].Options[:1]
	if err := bad2.Validate(); err == nil {
		t.Error("option-count mismatch accepted")
	}
	bad3 := twoAccelProblem(100)
	bad3.Chains[0].Layers[0].Options[0].Cycles = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero-cycle option accepted")
	}
}

func TestEvaluateChainDependency(t *testing.T) {
	p := twoAccelProblem(1000)
	// Everything on accelerator 0: chains contend, so the makespan must be
	// at least the total work (single resource).
	a := Assignment{{0, 0, 0}, {0, 0}}
	res, err := Evaluate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 + 20 + 10 + 15 + 10)
	if res.Makespan != want {
		t.Errorf("single-accelerator makespan = %d, want %d", res.Makespan, want)
	}
	// Split by chain: chains run in parallel; makespan = longest chain.
	a2 := Assignment{{0, 0, 0}, {1, 1}}
	res2, err := Evaluate(p, a2)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0 takes 40 on accelerator 0; chain 1 takes 40+30=70 on
	// accelerator 1; they overlap, so the makespan is the longer chain.
	if want2 := int64(40 + 30); res2.Makespan != want2 {
		t.Errorf("parallel makespan = %d, want %d", res2.Makespan, want2)
	}
}

func TestEvaluateEnergyAndBuffers(t *testing.T) {
	p := twoAccelProblem(1000)
	a := Assignment{{0, 1, 0}, {1, 0}}
	res, err := Evaluate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	wantE := 9.0 + 4 + 8 + 2 + 6
	if math.Abs(res.EnergyNJ-wantE) > 1e-9 {
		t.Errorf("energy = %f, want %f", res.EnergyNJ, wantE)
	}
	if res.BufferDemand[0] != 100 || res.BufferDemand[1] != 80 {
		t.Errorf("buffer demand = %v, want [100 80]", res.BufferDemand)
	}
}

func TestEvaluateRejectsBadAssignments(t *testing.T) {
	p := twoAccelProblem(100)
	if _, err := Evaluate(p, Assignment{{0, 0, 0}}); err == nil {
		t.Error("chain-count mismatch accepted")
	}
	if _, err := Evaluate(p, Assignment{{0, 0}, {0, 0}}); err == nil {
		t.Error("layer-count mismatch accepted")
	}
	if _, err := Evaluate(p, Assignment{{0, 0, 5}, {0, 0}}); err == nil {
		t.Error("out-of-range accelerator accepted")
	}
}

func TestExhaustiveOptimalAndHeuristicFeasible(t *testing.T) {
	for _, deadline := range []int64{45, 60, 90, 200} {
		p := twoAccelProblem(deadline)
		opt, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Feasible != h.Feasible && opt.Feasible {
			t.Errorf("deadline %d: exact found a feasible schedule but heuristic did not", deadline)
		}
		if opt.Feasible && h.Feasible {
			if h.EnergyNJ < opt.EnergyNJ-1e-9 {
				t.Errorf("deadline %d: heuristic energy %f beats 'optimal' %f — exact solver broken",
					deadline, h.EnergyNJ, opt.EnergyNJ)
			}
			if h.EnergyNJ > opt.EnergyNJ*1.5+1e-9 {
				t.Errorf("deadline %d: heuristic energy %f more than 1.5x optimal %f",
					deadline, h.EnergyNJ, opt.EnergyNJ)
			}
		}
	}
}

// Looser deadline must never increase optimal energy (monotonicity).
func TestDeadlineMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for _, deadline := range []int64{45, 50, 60, 80, 120, 500} {
		p := twoAccelProblem(deadline)
		opt, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Feasible {
			continue
		}
		if opt.EnergyNJ > prev+1e-9 {
			t.Errorf("deadline %d: optimal energy %f worse than tighter deadline's %f",
				deadline, opt.EnergyNJ, prev)
		}
		prev = opt.EnergyNJ
	}
}

// The paper's Theorem: specs (LS, ES) are satisfiable iff HAP(LS) <= ES.
func TestTheoremHAPEquivalence(t *testing.T) {
	p := twoAccelProblem(80)
	re, res, err := HAP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected a feasible schedule at deadline 80")
	}
	// Any ES >= re is satisfiable by this schedule; any ES < re is not,
	// because re is the minimum energy among deadline-meeting schedules
	// (verified against the exhaustive optimum).
	opt, err := Exhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re-opt.EnergyNJ) > 1e-9 {
		t.Errorf("HAP energy %f != exhaustive optimum %f", re, opt.EnergyNJ)
	}

	// Impossible deadline: HAP must report +Inf.
	pInf := twoAccelProblem(1)
	reInf, resInf, err := HAP(pInf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(reInf, 1) || resInf.Feasible {
		t.Error("HAP should return +Inf for an unmeetable deadline")
	}
}

// Property: on random instances small enough for exhaustive search, the
// heuristic is feasible whenever the optimum is, and within 2x of its
// energy.
func TestHeuristicNearOptimalRandom(t *testing.T) {
	rng := stats.NewRNG(11)
	f := func(seed uint32) bool {
		_ = seed
		nChains := 1 + rng.Intn(2)
		p := Problem{NumAccels: 2}
		totalLayers := 0
		for c := 0; c < nChains; c++ {
			nl := 1 + rng.Intn(4)
			totalLayers += nl
			ch := Chain{Name: "c"}
			for l := 0; l < nl; l++ {
				ch.Layers = append(ch.Layers, Layer{Name: "l", Options: []Option{
					{Cycles: int64(1 + rng.Intn(50)), EnergyNJ: 1 + 10*rng.Float64(), BufferBytes: 1},
					{Cycles: int64(1 + rng.Intn(50)), EnergyNJ: 1 + 10*rng.Float64(), BufferBytes: 1},
				}})
			}
			p.Chains = append(p.Chains, ch)
		}
		p.Deadline = int64(20 + rng.Intn(100))
		opt, err := Exhaustive(p)
		if err != nil {
			return false
		}
		h, err := Heuristic(p)
		if err != nil {
			return false
		}
		if opt.Feasible && !h.Feasible {
			return false
		}
		if opt.Feasible && h.EnergyNJ > 2*opt.EnergyNJ+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveSizeGuard(t *testing.T) {
	p := Problem{NumAccels: 3, Deadline: 100}
	ch := Chain{Name: "big"}
	for i := 0; i < 20; i++ {
		ch.Layers = append(ch.Layers, Layer{Name: "l", Options: []Option{
			{Cycles: 1, EnergyNJ: 1}, {Cycles: 1, EnergyNJ: 1}, {Cycles: 1, EnergyNJ: 1},
		}})
	}
	p.Chains = []Chain{ch}
	if _, err := Exhaustive(p); err == nil {
		t.Error("exhaustive should refuse 3^20 assignments")
	}
}

// Regression: the heuristic's returned assignment must reproduce its own
// reported metrics when re-evaluated (an aliasing bug once made the Result
// carry a stale assignment).
func TestHeuristicAssignmentConsistent(t *testing.T) {
	rng := stats.NewRNG(41)
	for trial := 0; trial < 30; trial++ {
		p := Problem{NumAccels: 2, Deadline: int64(30 + rng.Intn(150))}
		for c := 0; c < 2; c++ {
			ch := Chain{Name: "c"}
			for l := 0; l < 2+rng.Intn(6); l++ {
				ch.Layers = append(ch.Layers, Layer{Name: "l", Options: []Option{
					{Cycles: int64(1 + rng.Intn(40)), EnergyNJ: 1 + 10*rng.Float64()},
					{Cycles: int64(1 + rng.Intn(40)), EnergyNJ: 1 + 10*rng.Float64()},
				}})
			}
			p.Chains = append(p.Chains, ch)
		}
		res, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Evaluate(p, res.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if re.Makespan != res.Makespan || math.Abs(re.EnergyNJ-res.EnergyNJ) > 1e-9 {
			t.Fatalf("trial %d: heuristic metrics (mk=%d, E=%f) not reproduced by its assignment (mk=%d, E=%f)",
				trial, res.Makespan, res.EnergyNJ, re.Makespan, re.EnergyNJ)
		}
	}
}
