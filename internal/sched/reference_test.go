package sched

// This file retains the pre-rewrite solver verbatim (modulo renames) as the
// reference semantics for the differential tests: a full re-validating
// Evaluate per candidate, an O(chains) ready-layer scan, no pruning, no
// incremental deltas. The incremental solver in sched.go/eval.go must match
// it bit for bit — same assignments, makespans and energies at float
// precision.

import (
	"fmt"
	"math"
)

func referenceEvaluate(p Problem, a Assignment) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.checkAssignment(a); err != nil {
		return Result{}, err
	}

	next := make([]int, len(p.Chains)) // next unscheduled layer per chain
	chainReady := make([]int64, len(p.Chains))
	accelFree := make([]int64, p.NumAccels)
	buf := make([]int64, p.NumAccels)
	var energy float64
	var makespan int64

	remaining := p.Size()
	for remaining > 0 {
		bestChain := -1
		var bestStart int64 = math.MaxInt64
		for ci := range p.Chains {
			li := next[ci]
			if li >= len(p.Chains[ci].Layers) {
				continue
			}
			j := a[ci][li]
			start := chainReady[ci]
			if accelFree[j] > start {
				start = accelFree[j]
			}
			if start < bestStart {
				bestStart = start
				bestChain = ci
			}
		}
		ci := bestChain
		li := next[ci]
		j := a[ci][li]
		opt := p.Chains[ci].Layers[li].Options[j]
		finish := bestStart + opt.Cycles
		chainReady[ci] = finish
		accelFree[j] = finish
		if finish > makespan {
			makespan = finish
		}
		energy += opt.EnergyNJ
		if opt.BufferBytes > buf[j] {
			buf[j] = opt.BufferBytes
		}
		next[ci]++
		remaining--
	}

	return Result{
		Assign:       a.clone(),
		Makespan:     makespan,
		EnergyNJ:     energy,
		BufferDemand: buf,
		Feasible:     makespan <= p.Deadline,
	}, nil
}

// referenceClone detaches a Result from the caller's scratch assignment (the
// original solver's clone2).
func referenceClone(r Result) Result {
	r.Assign = r.Assign.clone()
	r.BufferDemand = append([]int64(nil), r.BufferDemand...)
	return r
}

func referenceHeuristic(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	a := minLatencyAssignment(p)
	cur, err := referenceEvaluate(p, a)
	if err != nil {
		return Result{}, err
	}

	// Phase 1: if infeasible, try to shorten the makespan by moving layers
	// off the critical (busiest) accelerator.
	for !cur.Feasible {
		improved := false
		best := cur
		for ci, c := range p.Chains {
			for li := range c.Layers {
				orig := a[ci][li]
				for j := 0; j < p.NumAccels; j++ {
					if j == orig {
						continue
					}
					a[ci][li] = j
					cand, err := referenceEvaluate(p, a)
					if err != nil {
						return Result{}, err
					}
					if cand.Makespan < best.Makespan {
						best = referenceClone(cand)
						improved = true
					}
				}
				a[ci][li] = orig
			}
		}
		if !improved {
			break
		}
		a = best.Assign.clone()
		cur = best
	}
	if !cur.Feasible {
		return cur, nil
	}

	// Phase 2: ratio-greedy energy refinement under the deadline.
	for {
		type moveCand struct {
			ci, li, j int
			res       Result
			ratio     float64
		}
		var bestMove *moveCand
		for ci, c := range p.Chains {
			for li := range c.Layers {
				orig := a[ci][li]
				for j := 0; j < p.NumAccels; j++ {
					if j == orig {
						continue
					}
					a[ci][li] = j
					cand, err := referenceEvaluate(p, a)
					if err != nil {
						return Result{}, err
					}
					a[ci][li] = orig
					if !cand.Feasible {
						continue
					}
					dE := cur.EnergyNJ - cand.EnergyNJ
					if dE <= 1e-12 {
						continue
					}
					dT := float64(cand.Makespan - cur.Makespan)
					if dT < 1 {
						dT = 1
					}
					r := dE / dT
					if bestMove == nil || r > bestMove.ratio {
						m := moveCand{ci: ci, li: li, j: j, res: referenceClone(cand), ratio: r}
						bestMove = &m
					}
				}
			}
		}
		if bestMove == nil {
			return cur, nil
		}
		a[bestMove.ci][bestMove.li] = bestMove.j
		cur = bestMove.res
	}
}

func referenceExhaustive(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := p.Size()
	total := 1
	for i := 0; i < n; i++ {
		total *= p.NumAccels
		if total > MaxExhaustiveSize {
			return Result{}, fmt.Errorf("sched: instance too large")
		}
	}

	flat := make([]int, n)
	a := make(Assignment, len(p.Chains))
	{
		k := 0
		for ci, c := range p.Chains {
			a[ci] = flat[k : k+len(c.Layers)]
			k += len(c.Layers)
		}
	}

	var best Result
	haveFeasible := false
	have := false
	for idx := 0; idx < total; idx++ {
		v := idx
		for i := 0; i < n; i++ {
			flat[i] = v % p.NumAccels
			v /= p.NumAccels
		}
		res, err := referenceEvaluate(p, a)
		if err != nil {
			return Result{}, err
		}
		switch {
		case res.Feasible && (!haveFeasible || res.EnergyNJ < best.EnergyNJ):
			best = referenceClone(res)
			haveFeasible = true
		case !haveFeasible && (!have || res.Makespan < best.Makespan):
			best = referenceClone(res)
		}
		have = true
	}
	return best, nil
}
