package sched

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"nasaic/internal/stats"
)

// randomProblem generates a HAP instance. scale multiplies the energies so
// the float-margin arguments get exercised at paper-like magnitudes (~1e8 nJ
// per layer), not just at toy scale.
func randomProblem(rng *stats.RNG, maxChains, maxLayers, numAccels int, scale float64) Problem {
	p := Problem{NumAccels: numAccels}
	nChains := 1 + rng.Intn(maxChains)
	for c := 0; c < nChains; c++ {
		ch := Chain{Name: fmt.Sprintf("c%d", c)}
		nl := 1 + rng.Intn(maxLayers)
		for l := 0; l < nl; l++ {
			layer := Layer{Name: fmt.Sprintf("c%d_l%d", c, l)}
			for j := 0; j < numAccels; j++ {
				layer.Options = append(layer.Options, Option{
					Cycles:      int64(1 + rng.Intn(60)),
					EnergyNJ:    (1 + 10*rng.Float64()) * scale,
					BufferBytes: int64(rng.Intn(4096)),
				})
			}
			ch.Layers = append(ch.Layers, layer)
		}
		p.Chains = append(p.Chains, ch)
	}
	// Mix of unmeetable, tight and loose deadlines so both heuristic phases
	// and the exhaustive fallback path get exercised.
	p.Deadline = int64(5 + rng.Intn(60*p.Size()/2+1))
	return p
}

// mustEqualResults enforces the bit-identity contract: same assignment, same
// integer makespan, bit-identical float energy, same buffer demand and
// feasibility.
func mustEqualResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Assign, want.Assign) {
		t.Fatalf("%s: assignment diverged\n got %v\nwant %v", label, got.Assign, want.Assign)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %d != reference %d", label, got.Makespan, want.Makespan)
	}
	if math.Float64bits(got.EnergyNJ) != math.Float64bits(want.EnergyNJ) {
		t.Fatalf("%s: energy %v not bit-identical to reference %v (diff %g)",
			label, got.EnergyNJ, want.EnergyNJ, got.EnergyNJ-want.EnergyNJ)
	}
	if !reflect.DeepEqual(got.BufferDemand, want.BufferDemand) {
		t.Fatalf("%s: buffer demand %v != reference %v", label, got.BufferDemand, want.BufferDemand)
	}
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasible %v != reference %v", label, got.Feasible, want.Feasible)
	}
}

// TestDifferentialEvaluate drives the heap simulator against the original
// O(chains) scan on random instances and random assignments.
func TestDifferentialEvaluate(t *testing.T) {
	rng := stats.NewRNG(101)
	for trial := 0; trial < 400; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 4, 8, 1+rng.Intn(4), scale)
		a := make(Assignment, len(p.Chains))
		for ci, c := range p.Chains {
			a[ci] = make([]int, len(c.Layers))
			for li := range c.Layers {
				a[ci][li] = rng.Intn(p.NumAccels)
			}
		}
		got, err := Evaluate(p, a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceEvaluate(p, a)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialHeuristic drives the incremental solver (O(1) move screen,
// scratch reuse, parallel scan) against the original full-Evaluate-per-move
// refinement.
func TestDifferentialHeuristic(t *testing.T) {
	rng := stats.NewRNG(202)
	for trial := 0; trial < 120; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 3, 7, 1+rng.Intn(3), scale)
		got, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceHeuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialHeuristicParallel uses instances big enough to cross the
// parallel move-scan threshold, so the worker fan-out and its site-ordered
// reduction are exercised against the sequential reference.
func TestDifferentialHeuristicParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large instances")
	}
	// Force a multi-worker pool even on single-CPU machines so the fan-out
	// and its deterministic reduction are really exercised.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := stats.NewRNG(303)
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 4, 20, 4, 1e6)
		if p.Size()*(p.NumAccels-1) < parallelMoveMin {
			// Top the instance up so the parallel path definitely runs.
			for p.Size()*(p.NumAccels-1) < parallelMoveMin {
				ci := rng.Intn(len(p.Chains))
				l := p.Chains[ci].Layers[0]
				p.Chains[ci].Layers = append(p.Chains[ci].Layers, l)
			}
		}
		got, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceHeuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialExhaustive drives the pruned DFS enumeration against the
// original full enumeration.
func TestDifferentialExhaustive(t *testing.T) {
	rng := stats.NewRNG(404)
	for trial := 0; trial < 80; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 2, 4, 1+rng.Intn(3), scale)
		got, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialExhaustiveParallel crosses the parallel enumeration
// threshold (2^14 assignments) so the prefix split, the shared pruning bound
// and the prefix-ordered fold are exercised against the plain enumeration.
func TestDifferentialExhaustiveParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("2^14-leaf enumerations")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := stats.NewRNG(505)
	for trial := 0; trial < 3; trial++ {
		p := Problem{NumAccels: 2}
		for c := 0; c < 2; c++ {
			ch := Chain{Name: fmt.Sprintf("c%d", c)}
			for l := 0; l < 7; l++ {
				layer := Layer{Name: fmt.Sprintf("c%d_l%d", c, l)}
				for j := 0; j < 2; j++ {
					layer.Options = append(layer.Options, Option{
						Cycles:      int64(1 + rng.Intn(60)),
						EnergyNJ:    (1 + 10*rng.Float64()) * 1e7,
						BufferBytes: int64(rng.Intn(4096)),
					})
				}
				ch.Layers = append(ch.Layers, layer)
			}
			p.Chains = append(p.Chains, ch)
		}
		// One unmeetable, one tight, one loose deadline.
		p.Deadline = []int64{3, 250, 100000}[trial]
		if total := 1 << p.Size(); total < parallelExhaustMin {
			t.Fatalf("instance too small to cross the parallel threshold: %d", total)
		}
		got, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialCheckpointResume pins the checkpointed simulator against
// full simulation at the engine level: for every site of a random assignment
// and every alternative sub-accelerator, resuming from the site's snapshot
// must reproduce the full run bit for bit — makespan, float energy bits,
// buffer demand — and agree with runBounded on every early-abort decision.
func TestDifferentialCheckpointResume(t *testing.T) {
	rng := stats.NewRNG(707)
	for trial := 0; trial < 120; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		// maxChains 1 exercises the single-chain fast path's snapshots too.
		p := randomProblem(rng, 1+rng.Intn(4), 8, 2+rng.Intn(3), scale)
		a := make(Assignment, len(p.Chains))
		for ci, c := range p.Chains {
			a[ci] = make([]int, len(c.Layers))
			for li := range c.Layers {
				a[ci][li] = rng.Intn(p.NumAccels)
			}
		}
		ev := newEvaluator(&p)
		ck := newCkpts(&p)
		ev.runCheckpointed(a, ck)
		full := newEvaluator(&p)
		si := 0
		for ci := range p.Chains {
			for li := range p.Chains[ci].Layers {
				orig := a[ci][li]
				for j := 0; j < p.NumAccels; j++ {
					if j == orig {
						continue
					}
					a[ci][li] = j
					wantOK := full.runBounded(a, math.MaxInt64, math.Inf(1), nil)
					gotOK := ev.resumeBounded(a, si, ck, math.MaxInt64, math.Inf(1))
					if !wantOK || !gotOK {
						t.Fatalf("trial %d site %d: unbounded run aborted (%v %v)", trial, si, wantOK, gotOK)
					}
					if ev.makespan != full.makespan ||
						math.Float64bits(ev.energy) != math.Float64bits(full.energy) ||
						!reflect.DeepEqual(ev.buf, full.buf) {
						t.Fatalf("trial %d site %d accel %d: resume (%d %v %v) != full (%d %v %v)",
							trial, si, j, ev.makespan, ev.energy, ev.buf,
							full.makespan, full.energy, full.buf)
					}
					// Bounded agreement at an aggressive bound pair: the
					// abort decision must match the full bounded run.
					mkB := full.makespan // forces an abort in the replayed schedule
					eB := full.energy * (0.25 + rng.Float64())
					if got, want := ev.resumeBounded(a, si, ck, mkB, eB), full.runBounded(a, mkB, eB, nil); got != want {
						t.Fatalf("trial %d site %d accel %d: bounded resume %v != full %v", trial, si, j, got, want)
					}
					a[ci][li] = orig
				}
				si++
			}
		}
	}
}

// TestDifferentialCheckpointIncremental pins resumeCheckpointed (the arena
// update after an applied move) against a from-scratch checkpointed run:
// after a chain of random single-layer moves, every snapshot in the
// incrementally maintained arena must behave exactly like a fresh one.
func TestDifferentialCheckpointIncremental(t *testing.T) {
	rng := stats.NewRNG(808)
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 1+rng.Intn(3), 7, 2+rng.Intn(3), 1e8)
		a := make(Assignment, len(p.Chains))
		for ci, c := range p.Chains {
			a[ci] = make([]int, len(c.Layers))
			for li := range c.Layers {
				a[ci][li] = rng.Intn(p.NumAccels)
			}
		}
		ev := newEvaluator(&p)
		ck := newCkpts(&p)
		ev.runCheckpointed(a, ck)
		for step := 0; step < 5; step++ {
			// Apply one random move and update the arena incrementally.
			si := rng.Intn(p.Size())
			k, ci, li := si, 0, 0
			for ci = range p.Chains {
				if k < len(p.Chains[ci].Layers) {
					li = k
					break
				}
				k -= len(p.Chains[ci].Layers)
			}
			a[ci][li] = rng.Intn(p.NumAccels)
			ev.resumeCheckpointed(a, si, ck)

			fresh := newEvaluator(&p)
			fck := newCkpts(&p)
			fresh.runCheckpointed(a, fck)
			if ev.makespan != fresh.makespan ||
				math.Float64bits(ev.energy) != math.Float64bits(fresh.energy) ||
				!reflect.DeepEqual(ev.buf, fresh.buf) {
				t.Fatalf("trial %d step %d: incremental metrics (%d %v) != fresh (%d %v)",
					trial, step, ev.makespan, ev.energy, fresh.makespan, fresh.energy)
			}
			// Every site's snapshot must replay identically out of both
			// arenas (this compares the full arena contents behaviorally).
			probe := newEvaluator(&p)
			for s2 := 0; s2 < p.Size(); s2++ {
				if !ck.captured[s2] || !fck.captured[s2] {
					t.Fatalf("trial %d step %d: site %d missing a snapshot (%v %v)",
						trial, step, s2, ck.captured[s2], fck.captured[s2])
				}
				probe.resumeBounded(a, s2, fck, math.MaxInt64, math.Inf(1))
				wantMk, wantE := probe.makespan, probe.energy
				probe.resumeBounded(a, s2, ck, math.MaxInt64, math.Inf(1))
				if probe.makespan != wantMk || math.Float64bits(probe.energy) != math.Float64bits(wantE) {
					t.Fatalf("trial %d step %d site %d: incremental snapshot diverged", trial, step, s2)
				}
			}
		}
	}
}

// TestDifferentialHeuristicNoCheckpoint pins the DisableCheckpoints knob:
// the full-resimulation path must stay bit-identical to the reference (and
// hence to the default checkpointed path, which TestDifferentialHeuristic
// pins).
func TestDifferentialHeuristicNoCheckpoint(t *testing.T) {
	rng := stats.NewRNG(909)
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 3, 7, 1+rng.Intn(3), 1e8)
		p.Tuning.DisableCheckpoints = true
		got, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceHeuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialBranchAndBound drives the unified B&B (exhaustPre suffix
// bounds, bounded leaf simulation, shared best-energy bound) against the
// retained pre-unification solver on random instances. Every search
// completes within budget, so results must be bit-identical, fallback
// (infeasible) cases included.
func TestDifferentialBranchAndBound(t *testing.T) {
	rng := stats.NewRNG(1010)
	for trial := 0; trial < 120; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 2, 5, 1+rng.Intn(3), scale)
		if trial%5 == 0 {
			p.Deadline = 1 // unmeetable: pins the min-makespan fallback path
		}
		got, gotComplete, err := BranchAndBound(p, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		want, wantComplete, err := referenceBranchAndBound(p, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if gotComplete != wantComplete {
			t.Fatalf("trial %d: complete %v != reference %v", trial, gotComplete, wantComplete)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialBranchAndBoundParallel forces the shared-bound parallel
// split (threshold 2, four workers) and requires the fold to reproduce the
// reference solver exactly — the same straddle the exhaustive differential
// does for Exhaustive.
func TestDifferentialBranchAndBoundParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel enumerations")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := stats.NewRNG(1111)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 2, 6, 2+rng.Intn(2), 1e7)
		if trial%5 == 0 {
			p.Deadline = 1
		}
		p.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
		got, gotComplete, err := BranchAndBound(p, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		want, wantComplete, err := referenceBranchAndBound(p, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if !gotComplete || !wantComplete {
			t.Fatalf("trial %d: search did not complete (%v %v)", trial, gotComplete, wantComplete)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestHeuristicNeverBeatsExhaustive: on every exhaustible instance where both
// find a feasible schedule, the heuristic's energy must be >= the optimum —
// anything else means the exact solver is broken.
func TestHeuristicNeverBeatsExhaustive(t *testing.T) {
	rng := stats.NewRNG(606)
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 2, 4, 2, 1)
		opt, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Feasible && h.Feasible && h.EnergyNJ < opt.EnergyNJ-1e-9 {
			t.Fatalf("trial %d: heuristic energy %f beats exhaustive optimum %f",
				trial, h.EnergyNJ, opt.EnergyNJ)
		}
	}
}
