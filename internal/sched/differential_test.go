package sched

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"nasaic/internal/stats"
)

// randomProblem generates a HAP instance. scale multiplies the energies so
// the float-margin arguments get exercised at paper-like magnitudes (~1e8 nJ
// per layer), not just at toy scale.
func randomProblem(rng *stats.RNG, maxChains, maxLayers, numAccels int, scale float64) Problem {
	p := Problem{NumAccels: numAccels}
	nChains := 1 + rng.Intn(maxChains)
	for c := 0; c < nChains; c++ {
		ch := Chain{Name: fmt.Sprintf("c%d", c)}
		nl := 1 + rng.Intn(maxLayers)
		for l := 0; l < nl; l++ {
			layer := Layer{Name: fmt.Sprintf("c%d_l%d", c, l)}
			for j := 0; j < numAccels; j++ {
				layer.Options = append(layer.Options, Option{
					Cycles:      int64(1 + rng.Intn(60)),
					EnergyNJ:    (1 + 10*rng.Float64()) * scale,
					BufferBytes: int64(rng.Intn(4096)),
				})
			}
			ch.Layers = append(ch.Layers, layer)
		}
		p.Chains = append(p.Chains, ch)
	}
	// Mix of unmeetable, tight and loose deadlines so both heuristic phases
	// and the exhaustive fallback path get exercised.
	p.Deadline = int64(5 + rng.Intn(60*p.Size()/2+1))
	return p
}

// mustEqualResults enforces the bit-identity contract: same assignment, same
// integer makespan, bit-identical float energy, same buffer demand and
// feasibility.
func mustEqualResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Assign, want.Assign) {
		t.Fatalf("%s: assignment diverged\n got %v\nwant %v", label, got.Assign, want.Assign)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %d != reference %d", label, got.Makespan, want.Makespan)
	}
	if math.Float64bits(got.EnergyNJ) != math.Float64bits(want.EnergyNJ) {
		t.Fatalf("%s: energy %v not bit-identical to reference %v (diff %g)",
			label, got.EnergyNJ, want.EnergyNJ, got.EnergyNJ-want.EnergyNJ)
	}
	if !reflect.DeepEqual(got.BufferDemand, want.BufferDemand) {
		t.Fatalf("%s: buffer demand %v != reference %v", label, got.BufferDemand, want.BufferDemand)
	}
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasible %v != reference %v", label, got.Feasible, want.Feasible)
	}
}

// TestDifferentialEvaluate drives the heap simulator against the original
// O(chains) scan on random instances and random assignments.
func TestDifferentialEvaluate(t *testing.T) {
	rng := stats.NewRNG(101)
	for trial := 0; trial < 400; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 4, 8, 1+rng.Intn(4), scale)
		a := make(Assignment, len(p.Chains))
		for ci, c := range p.Chains {
			a[ci] = make([]int, len(c.Layers))
			for li := range c.Layers {
				a[ci][li] = rng.Intn(p.NumAccels)
			}
		}
		got, err := Evaluate(p, a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceEvaluate(p, a)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialHeuristic drives the incremental solver (O(1) move screen,
// scratch reuse, parallel scan) against the original full-Evaluate-per-move
// refinement.
func TestDifferentialHeuristic(t *testing.T) {
	rng := stats.NewRNG(202)
	for trial := 0; trial < 120; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 3, 7, 1+rng.Intn(3), scale)
		got, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceHeuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialHeuristicParallel uses instances big enough to cross the
// parallel move-scan threshold, so the worker fan-out and its site-ordered
// reduction are exercised against the sequential reference.
func TestDifferentialHeuristicParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large instances")
	}
	// Force a multi-worker pool even on single-CPU machines so the fan-out
	// and its deterministic reduction are really exercised.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := stats.NewRNG(303)
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 4, 20, 4, 1e6)
		if p.Size()*(p.NumAccels-1) < parallelMoveMin {
			// Top the instance up so the parallel path definitely runs.
			for p.Size()*(p.NumAccels-1) < parallelMoveMin {
				ci := rng.Intn(len(p.Chains))
				l := p.Chains[ci].Layers[0]
				p.Chains[ci].Layers = append(p.Chains[ci].Layers, l)
			}
		}
		got, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceHeuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialExhaustive drives the pruned DFS enumeration against the
// original full enumeration.
func TestDifferentialExhaustive(t *testing.T) {
	rng := stats.NewRNG(404)
	for trial := 0; trial < 80; trial++ {
		scale := 1.0
		if trial%3 == 0 {
			scale = 1e8
		}
		p := randomProblem(rng, 2, 4, 1+rng.Intn(3), scale)
		got, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDifferentialExhaustiveParallel crosses the parallel enumeration
// threshold (2^14 assignments) so the prefix split, the shared pruning bound
// and the prefix-ordered fold are exercised against the plain enumeration.
func TestDifferentialExhaustiveParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("2^14-leaf enumerations")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := stats.NewRNG(505)
	for trial := 0; trial < 3; trial++ {
		p := Problem{NumAccels: 2}
		for c := 0; c < 2; c++ {
			ch := Chain{Name: fmt.Sprintf("c%d", c)}
			for l := 0; l < 7; l++ {
				layer := Layer{Name: fmt.Sprintf("c%d_l%d", c, l)}
				for j := 0; j < 2; j++ {
					layer.Options = append(layer.Options, Option{
						Cycles:      int64(1 + rng.Intn(60)),
						EnergyNJ:    (1 + 10*rng.Float64()) * 1e7,
						BufferBytes: int64(rng.Intn(4096)),
					})
				}
				ch.Layers = append(ch.Layers, layer)
			}
			p.Chains = append(p.Chains, ch)
		}
		// One unmeetable, one tight, one loose deadline.
		p.Deadline = []int64{3, 250, 100000}[trial]
		if total := 1 << p.Size(); total < parallelExhaustMin {
			t.Fatalf("instance too small to cross the parallel threshold: %d", total)
		}
		got, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestHeuristicNeverBeatsExhaustive: on every exhaustible instance where both
// find a feasible schedule, the heuristic's energy must be >= the optimum —
// anything else means the exact solver is broken.
func TestHeuristicNeverBeatsExhaustive(t *testing.T) {
	rng := stats.NewRNG(606)
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 2, 4, 2, 1)
		opt, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Heuristic(p)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Feasible && h.Feasible && h.EnergyNJ < opt.EnergyNJ-1e-9 {
			t.Fatalf("trial %d: heuristic energy %f beats exhaustive optimum %f",
				trial, h.EnergyNJ, opt.EnergyNJ)
		}
	}
}
