// Package sched implements the mapper and scheduler of §IV-③: network layers
// (dependency chains, one per DNN) are assigned to sub-accelerators and
// ordered so that the workload's energy is minimized subject to a latency
// deadline. This is the heterogeneous assignment problem (HAP) of [28,29];
// the paper's Theorem reduces spec checking to HAP:
//
//	specs (LS, ES) are satisfiable  ⇔  HAP(D, AIC, LS) ≤ ES.
//
// The package provides the heuristic solver the paper uses (a Shao-style
// ratio-greedy refinement [29]) and an exhaustive solver for small instances
// that serves as the ILP-optimal reference in tests and ablations.
package sched

import (
	"fmt"
	"math"
)

// Option is the cost of running one layer on one particular sub-accelerator.
type Option struct {
	Cycles      int64
	EnergyNJ    float64
	BufferBytes int64
}

// Layer is one schedulable unit with per-sub-accelerator costs; Options has
// one entry per active sub-accelerator, in design order.
type Layer struct {
	Name    string
	Options []Option
}

// Chain is a dependency chain of layers (one DNN); layer i must finish
// before layer i+1 starts.
type Chain struct {
	Name   string
	Layers []Layer
}

// Problem is a complete HAP instance.
type Problem struct {
	Chains    []Chain
	NumAccels int
	// Deadline is the latency spec LS in cycles.
	Deadline int64
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if p.NumAccels <= 0 {
		return fmt.Errorf("sched: need at least one sub-accelerator")
	}
	if len(p.Chains) == 0 {
		return fmt.Errorf("sched: no chains")
	}
	for _, c := range p.Chains {
		if len(c.Layers) == 0 {
			return fmt.Errorf("sched: chain %s is empty", c.Name)
		}
		for _, l := range c.Layers {
			if len(l.Options) != p.NumAccels {
				return fmt.Errorf("sched: layer %s has %d options, want %d",
					l.Name, len(l.Options), p.NumAccels)
			}
			for j, o := range l.Options {
				if o.Cycles <= 0 || o.EnergyNJ < 0 {
					return fmt.Errorf("sched: layer %s option %d has invalid cost %+v", l.Name, j, o)
				}
			}
		}
	}
	return nil
}

// Size returns the total number of layers.
func (p Problem) Size() int {
	n := 0
	for _, c := range p.Chains {
		n += len(c.Layers)
	}
	return n
}

// Assignment maps [chain][layer] to a sub-accelerator index.
type Assignment [][]int

// clone deep-copies the assignment.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for i, row := range a {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// Result is an evaluated schedule.
type Result struct {
	Assign   Assignment
	Makespan int64
	EnergyNJ float64
	// BufferDemand[j] is the largest buffer requirement among the layers
	// assigned to sub-accelerator j (0 if none) — it sizes that
	// sub-accelerator's global buffer for the area model.
	BufferDemand []int64
	// Feasible reports Makespan <= Deadline.
	Feasible bool
}

// Evaluate computes makespan, energy and buffer demand of assignment a under
// the paper's sch() policy: an event-driven list schedule that always starts
// the ready layer with the earliest possible start time (ties resolve to the
// lower chain index). Energy is order-independent; makespan is not.
func Evaluate(p Problem, a Assignment) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if len(a) != len(p.Chains) {
		return Result{}, fmt.Errorf("sched: assignment has %d chains, want %d", len(a), len(p.Chains))
	}
	for i, row := range a {
		if len(row) != len(p.Chains[i].Layers) {
			return Result{}, fmt.Errorf("sched: chain %d assignment has %d layers, want %d",
				i, len(row), len(p.Chains[i].Layers))
		}
		for li, j := range row {
			if j < 0 || j >= p.NumAccels {
				return Result{}, fmt.Errorf("sched: chain %d layer %d assigned to invalid accelerator %d", i, li, j)
			}
		}
	}

	next := make([]int, len(p.Chains)) // next unscheduled layer per chain
	chainReady := make([]int64, len(p.Chains))
	accelFree := make([]int64, p.NumAccels)
	buf := make([]int64, p.NumAccels)
	var energy float64
	var makespan int64

	remaining := p.Size()
	for remaining > 0 {
		bestChain := -1
		var bestStart int64 = math.MaxInt64
		for ci := range p.Chains {
			li := next[ci]
			if li >= len(p.Chains[ci].Layers) {
				continue
			}
			j := a[ci][li]
			start := chainReady[ci]
			if accelFree[j] > start {
				start = accelFree[j]
			}
			if start < bestStart {
				bestStart = start
				bestChain = ci
			}
		}
		ci := bestChain
		li := next[ci]
		j := a[ci][li]
		opt := p.Chains[ci].Layers[li].Options[j]
		finish := bestStart + opt.Cycles
		chainReady[ci] = finish
		accelFree[j] = finish
		if finish > makespan {
			makespan = finish
		}
		energy += opt.EnergyNJ
		if opt.BufferBytes > buf[j] {
			buf[j] = opt.BufferBytes
		}
		next[ci]++
		remaining--
	}

	// The returned Assign is detached from the caller's (possibly scratch)
	// slice so Result snapshots stay valid after further mutation.
	return Result{
		Assign:       a.clone(),
		Makespan:     makespan,
		EnergyNJ:     energy,
		BufferDemand: buf,
		Feasible:     makespan <= p.Deadline,
	}, nil
}

// minLatencyAssignment assigns every layer to its fastest sub-accelerator.
func minLatencyAssignment(p Problem) Assignment {
	a := make(Assignment, len(p.Chains))
	for ci, c := range p.Chains {
		a[ci] = make([]int, len(c.Layers))
		for li, l := range c.Layers {
			best, bc := 0, l.Options[0].Cycles
			for j := 1; j < len(l.Options); j++ {
				if l.Options[j].Cycles < bc {
					best, bc = j, l.Options[j].Cycles
				}
			}
			a[ci][li] = best
		}
	}
	return a
}

// Heuristic solves the HAP instance with the paper's accelerated approach
// [29]: seed with the minimum-latency assignment, then greedily apply the
// single-layer move with the best energy-saving-per-latency-cost ratio while
// the deadline still holds. If even the seed misses the deadline, it
// performs makespan-reducing moves first (load balancing) before optimizing
// energy. The returned Result reports Feasible=false when no deadline-
// meeting schedule was found.
func Heuristic(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	a := minLatencyAssignment(p)
	cur, err := Evaluate(p, a)
	if err != nil {
		return Result{}, err
	}

	// Phase 1: if infeasible, try to shorten the makespan by moving layers
	// off the critical (busiest) accelerator.
	for !cur.Feasible {
		improved := false
		best := cur
		for ci, c := range p.Chains {
			for li := range c.Layers {
				orig := a[ci][li]
				for j := 0; j < p.NumAccels; j++ {
					if j == orig {
						continue
					}
					a[ci][li] = j
					cand, err := Evaluate(p, a)
					if err != nil {
						return Result{}, err
					}
					if cand.Makespan < best.Makespan {
						best = cand.clone2()
						improved = true
					}
				}
				a[ci][li] = orig
			}
		}
		if !improved {
			break
		}
		a = best.Assign.clone()
		cur = best
	}
	if !cur.Feasible {
		return cur, nil
	}

	// Phase 2: ratio-greedy energy refinement under the deadline.
	for {
		type move struct {
			ci, li, j int
			res       Result
			ratio     float64
		}
		var bestMove *move
		for ci, c := range p.Chains {
			for li := range c.Layers {
				orig := a[ci][li]
				for j := 0; j < p.NumAccels; j++ {
					if j == orig {
						continue
					}
					a[ci][li] = j
					cand, err := Evaluate(p, a)
					if err != nil {
						return Result{}, err
					}
					a[ci][li] = orig
					if !cand.Feasible {
						continue
					}
					dE := cur.EnergyNJ - cand.EnergyNJ
					if dE <= 1e-12 {
						continue
					}
					dT := float64(cand.Makespan - cur.Makespan)
					if dT < 1 {
						dT = 1
					}
					r := dE / dT
					if bestMove == nil || r > bestMove.ratio {
						m := move{ci: ci, li: li, j: j, res: cand.clone2(), ratio: r}
						bestMove = &m
					}
				}
			}
		}
		if bestMove == nil {
			return cur, nil
		}
		a[bestMove.ci][bestMove.li] = bestMove.j
		cur = bestMove.res
	}
}

// clone2 returns a Result whose Assign is detached from the caller's
// scratch assignment.
func (r Result) clone2() Result {
	r.Assign = r.Assign.clone()
	r.BufferDemand = append([]int64(nil), r.BufferDemand...)
	return r
}

// MaxExhaustiveSize bounds the instance size Exhaustive accepts
// (NumAccels^Size assignments are enumerated).
const MaxExhaustiveSize = 1 << 20

// Exhaustive enumerates every assignment and returns the minimum-energy
// schedule meeting the deadline, or — when none is feasible — the schedule
// with the smallest makespan. It is the optimal reference standing in for
// the paper's ILP formulation; it returns an error when the instance is too
// large (NumAccels^layers > MaxExhaustiveSize).
func Exhaustive(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := p.Size()
	total := 1
	for i := 0; i < n; i++ {
		total *= p.NumAccels
		if total > MaxExhaustiveSize {
			return Result{}, fmt.Errorf("sched: instance too large for exhaustive search (%d layers, %d accelerators)", n, p.NumAccels)
		}
	}

	flat := make([]int, n)
	a := make(Assignment, len(p.Chains))
	{
		k := 0
		for ci, c := range p.Chains {
			a[ci] = flat[k : k+len(c.Layers)]
			k += len(c.Layers)
		}
	}

	var best Result
	haveFeasible := false
	have := false
	for idx := 0; idx < total; idx++ {
		v := idx
		for i := 0; i < n; i++ {
			flat[i] = v % p.NumAccels
			v /= p.NumAccels
		}
		res, err := Evaluate(p, a)
		if err != nil {
			return Result{}, err
		}
		switch {
		case res.Feasible && (!haveFeasible || res.EnergyNJ < best.EnergyNJ):
			best = res.clone2()
			haveFeasible = true
		case !haveFeasible && (!have || res.Makespan < best.Makespan):
			best = res.clone2()
		}
		have = true
	}
	return best, nil
}

// HAP is the paper's solver function re = HAP(D, AIC, LS): it returns the
// minimum energy achievable under deadline p.Deadline, +Inf when no feasible
// schedule exists. It dispatches to Exhaustive for small instances and the
// heuristic otherwise.
func HAP(p Problem) (float64, Result, error) {
	var (
		res Result
		err error
	)
	if canExhaust(p) {
		res, err = Exhaustive(p)
	} else {
		res, err = Heuristic(p)
	}
	if err != nil {
		return 0, Result{}, err
	}
	if !res.Feasible {
		return math.Inf(1), res, nil
	}
	return res.EnergyNJ, res, nil
}

func canExhaust(p Problem) bool {
	total := 1
	for i := 0; i < p.Size(); i++ {
		total *= p.NumAccels
		if total > 4096 { // keep the exact path fast inside the search loop
			return false
		}
	}
	return true
}
