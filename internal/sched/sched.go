// Package sched implements the mapper and scheduler of §IV-③: network layers
// (dependency chains, one per DNN) are assigned to sub-accelerators and
// ordered so that the workload's energy is minimized subject to a latency
// deadline. This is the heterogeneous assignment problem (HAP) of [28,29];
// the paper's Theorem reduces spec checking to HAP:
//
//	specs (LS, ES) are satisfiable  ⇔  HAP(D, AIC, LS) ≤ ES.
//
// The package provides the heuristic solver the paper uses (a Shao-style
// ratio-greedy refinement [29]) and an exhaustive solver for small instances
// that serves as the ILP-optimal reference in tests and ablations.
//
// The solvers are incremental: the problem is validated once per solve, every
// candidate assignment is simulated by the allocation-free min-heap engine in
// eval.go, energy-losing moves are screened out by an O(1) per-move option
// delta before any simulation runs, the exhaustive enumeration prunes with
// admissible energy/makespan bounds, and large scans fan out across a bounded
// worker pool with a deterministic reduction order. Results are bit-identical
// to the pre-rewrite solver (see differential_test.go).
//
// # Checkpointed move scans
//
// The heuristic's move scan additionally runs on a checkpointed simulator
// (eval.go). The lifecycle of one refinement round:
//
//  1. The round's baseline simulation of the current assignment records one
//     snapshot of the full simulator state (ready heap, per-chain/-accel
//     clocks, buffer maxima, running energy/makespan) per layer site, taken
//     just before that layer's event is popped for the first time — at that
//     point nothing simulated so far has read the layer's own assignment.
//  2. Each candidate move of layer L restores L's snapshot and replays only
//     the schedule's suffix under the scan's early-abort bounds; the shared
//     prefix is reused across the entire scan. Parallel scan workers carry
//     their own arena, rebuilt (incrementally) from their own baseline run.
//  3. Applying the round's winning move updates the arena in place:
//     snapshots captured before the moved layer's first pop stay valid, the
//     rest are re-captured by resuming from the moved layer's snapshot.
//
// The resumed replay performs the exact floating-point operations of a full
// simulation in the same order, so results — and the whole refinement
// trajectory — stay bit-identical (pinned by differential_test.go);
// Tuning.DisableCheckpoints selects full per-move re-simulation.
//
// BranchAndBound shares the exhaustive enumeration's machinery (suffix
// min-energy/min-cycle bounds, bounded leaf simulation, shared best-energy
// bound, parallel prefix split) over its energy-spread branch order, with a
// node budget shared across workers.
package sched

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Option is the cost of running one layer on one particular sub-accelerator.
type Option struct {
	Cycles      int64
	EnergyNJ    float64
	BufferBytes int64
}

// Layer is one schedulable unit with per-sub-accelerator costs; Options has
// one entry per active sub-accelerator, in design order.
type Layer struct {
	Name    string
	Options []Option
}

// Chain is a dependency chain of layers (one DNN); layer i must finish
// before layer i+1 starts.
type Chain struct {
	Name   string
	Layers []Layer
}

// Problem is a complete HAP instance.
type Problem struct {
	Chains    []Chain
	NumAccels int
	// Deadline is the latency spec LS in cycles.
	Deadline int64
	// Tuning overrides the solver parallelism thresholds; the zero value
	// selects the package defaults. Tuning never changes results, only which
	// scans fan out across workers.
	Tuning Tuning
}

// Tuning exposes the solver's parallel-scan thresholds and the move-scan
// simulation strategy. Each field's zero value selects the package default;
// results are bit-identical for any setting because every parallel scan
// reduces in a deterministic order and the checkpointed simulator replays
// the exact floating-point operations of a full simulation.
type Tuning struct {
	// ParallelMoveMin is the minimum number of candidate moves per
	// refinement round before Heuristic parallelizes the move scan.
	ParallelMoveMin int
	// ParallelExhaustMin is the minimum enumeration size before Exhaustive
	// (and BranchAndBound) split the assignment space across workers.
	ParallelExhaustMin int
	// MaxWorkers bounds the worker pool of one solve.
	MaxWorkers int
	// DisableCheckpoints turns off the checkpointed move-scan simulator, so
	// every candidate move replays the whole schedule instead of resuming
	// from the moved layer's snapshot. The checkpointed path is bit-identical
	// (enforced by differential_test.go) and ~2x faster per round; this knob
	// exists for benchmarks, regression triage and the CI before/after gate.
	DisableCheckpoints bool
}

func (t Tuning) moveMin() int {
	if t.ParallelMoveMin > 0 {
		return t.ParallelMoveMin
	}
	return parallelMoveMin
}

func (t Tuning) exhaustMin() int {
	if t.ParallelExhaustMin > 0 {
		return t.ParallelExhaustMin
	}
	return parallelExhaustMin
}

func (t Tuning) maxWorkers() int {
	if t.MaxWorkers > 0 {
		return t.MaxWorkers
	}
	return maxSolverWorkers
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if p.NumAccels <= 0 {
		return fmt.Errorf("sched: need at least one sub-accelerator")
	}
	if len(p.Chains) == 0 {
		return fmt.Errorf("sched: no chains")
	}
	for _, c := range p.Chains {
		if len(c.Layers) == 0 {
			return fmt.Errorf("sched: chain %s is empty", c.Name)
		}
		for _, l := range c.Layers {
			if len(l.Options) != p.NumAccels {
				return fmt.Errorf("sched: layer %s has %d options, want %d",
					l.Name, len(l.Options), p.NumAccels)
			}
			for j, o := range l.Options {
				if o.Cycles <= 0 || o.EnergyNJ < 0 {
					return fmt.Errorf("sched: layer %s option %d has invalid cost %+v", l.Name, j, o)
				}
			}
		}
	}
	return nil
}

// Size returns the total number of layers.
func (p Problem) Size() int {
	n := 0
	for _, c := range p.Chains {
		n += len(c.Layers)
	}
	return n
}

// Assignment maps [chain][layer] to a sub-accelerator index.
type Assignment [][]int

// clone deep-copies the assignment.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for i, row := range a {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// copyFrom copies src's values into a (rows must match in shape).
func (a Assignment) copyFrom(src Assignment) {
	for i, row := range src {
		copy(a[i], row)
	}
}

// Result is an evaluated schedule.
type Result struct {
	Assign   Assignment
	Makespan int64
	EnergyNJ float64
	// BufferDemand[j] is the largest buffer requirement among the layers
	// assigned to sub-accelerator j (0 if none) — it sizes that
	// sub-accelerator's global buffer for the area model.
	BufferDemand []int64
	// Feasible reports Makespan <= Deadline.
	Feasible bool
}

// Evaluate computes makespan, energy and buffer demand of assignment a under
// the paper's sch() policy: an event-driven list schedule that always starts
// the ready layer with the earliest possible start time (ties resolve to the
// lower chain index). Energy is order-independent; makespan is not.
func Evaluate(p Problem, a Assignment) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.checkAssignment(a); err != nil {
		return Result{}, err
	}
	ev := newEvaluator(&p)
	ev.run(a, nil)
	// The returned Assign is detached from the caller's (possibly scratch)
	// slice so Result snapshots stay valid after further mutation.
	return ev.result(a), nil
}

// minLatencyAssignment assigns every layer to its fastest sub-accelerator.
func minLatencyAssignment(p Problem) Assignment {
	a := make(Assignment, len(p.Chains))
	for ci, c := range p.Chains {
		a[ci] = make([]int, len(c.Layers))
		for li, l := range c.Layers {
			best, bc := 0, l.Options[0].Cycles
			for j := 1; j < len(l.Options); j++ {
				if l.Options[j].Cycles < bc {
					best, bc = j, l.Options[j].Cycles
				}
			}
			a[ci][li] = best
		}
	}
	return a
}

// Default solver parallelism bounds (overridable per Problem via Tuning).
// Small instances (the ones inside the RL search loop, which already fans
// episodes out across core's worker pool) stay sequential; only scans big
// enough to amortize goroutine startup fan out.
const (
	// parallelMoveMin is the default minimum number of candidate moves per
	// refinement round before Heuristic parallelizes the move scan. Retuned
	// from the original single-core value of 128: with the checkpointed
	// simulator a candidate move costs roughly half a simulation, while a
	// parallel round costs each worker one goroutine spawn plus one
	// checkpointed baseline run (~one full simulation). The break-even on the
	// bench instances is ~3 full simulations of margin per worker, which a
	// 48-move round clears with the default 4-8 worker pool — so the medium
	// benchmark instance (72 moves/round) now fans out on multi-core hosts
	// instead of staying sequential.
	parallelMoveMin = 48
	// parallelExhaustMin is the default minimum enumeration size before
	// Exhaustive splits the assignment space across workers.
	parallelExhaustMin = 1 << 14
	// maxSolverWorkers is the default bound on the worker pool of one solve.
	maxSolverWorkers = 8
)

// solverWorkers picks the worker count for a scan of `units` independent
// work items under the given pool bound.
func solverWorkers(units, max int) int {
	w := runtime.GOMAXPROCS(0)
	if w > max {
		w = max
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ctxCheckNodes is how many enumeration nodes the exhaustive solver visits
// between context-cancellation checks.
const ctxCheckNodes = 1 << 10

// energySlack bounds the float64 discrepancy between the O(1) option-energy
// delta of a single-layer move and the full-sum delta the solver's decision
// arithmetic is defined on (two schedule-order sums differing in one term).
// The true discrepancy is at most a few n·ulp(ΣEnergy) ≈ 1e-13·ΣEnergy; the
// 1e-9 relative slack dominates it by orders of magnitude while remaining
// far below any physically meaningful energy difference, so screening with
// this margin never changes a decision the exact arithmetic would make.
func energySlack(e float64) float64 { return 1e-9 * (1 + math.Abs(e)) }

// site is one movable layer position.
type site struct{ ci, li int }

// move is one candidate single-layer reassignment, scored for the phase the
// scan ran in (makespan for phase 1, energy/latency ratio for phase 2).
type move struct {
	ok        bool
	ci, li, j int
	mk        int64
	ratio     float64
}

// moveScratch is one scan worker's private state: a scratch assignment, an
// evaluator, and (when checkpointing is on) the worker's own checkpoint
// arena, rebuilt from the round's baseline at the start of its chunk.
type moveScratch struct {
	a   Assignment
	ev  *evaluator
	ck  *ckpts
	gen int // move generation the arena reflects (-1: never built)
}

// hsolver carries the scratch state of one Heuristic solve.
type hsolver struct {
	p     *Problem
	ctx   context.Context
	a     Assignment
	ev    *evaluator
	ck    *ckpts // non-nil when the checkpointed move scan is enabled
	sites []site
	curMk int64
	curE  float64
	// bufDemand caches the last refresh's buffer demand, so result() can
	// snapshot without re-simulating (scans leave the evaluator holding the
	// last candidate's state, not the current assignment's).
	bufDemand []int64

	// gen counts applied moves and lastMove is the flat site index of the
	// latest one (-1 before any): together they let refresh and the scan
	// workers update their checkpoint arenas incrementally instead of
	// re-simulating the whole assignment each round.
	gen      int
	lastMove int

	// aborted latches a mid-scan context cancellation; every scan worker
	// polls it (and ctx) per site, so a cancelled solve unwinds promptly
	// with the partial best instead of finishing the round.
	aborted atomic.Bool

	workers []*moveScratch // lazily built for parallel scans
	chunks  []move
}

// refresh re-simulates the current assignment and caches its metrics; with
// checkpointing on, the same single simulation also records the per-site
// snapshots the round's sequential move scan resumes from, and after the
// first round it resumes from the applied move's own snapshot instead of
// replaying the whole schedule.
func (s *hsolver) refresh() {
	if s.ck != nil {
		s.ev.resumeCheckpointed(s.a, s.lastMove, s.ck)
	} else {
		s.ev.run(s.a, nil)
	}
	s.curMk = s.ev.makespan
	s.curE = s.ev.energy
	s.bufDemand = append(s.bufDemand[:0], s.ev.buf...)
}

// result snapshots the current assignment from the metrics the last refresh
// cached; scans since then only touched candidate state.
func (s *hsolver) result() Result {
	return Result{
		Assign:       s.a.clone(),
		Makespan:     s.curMk,
		EnergyNJ:     s.curE,
		BufferDemand: append([]int64(nil), s.bufDemand...),
		Feasible:     s.curMk <= s.p.Deadline,
	}
}

// scanRange evaluates every single-layer move whose site index lies in
// [lo, hi) against the current schedule, using the given scratch assignment
// (a copy of s.a that is mutated and restored in place), evaluator and
// checkpoint arena (nil for full re-simulation). It returns the range's best
// move under the phase's decision rule, with ties resolved to the first move
// in (chain, layer, accelerator) scan order — exactly the original solver's
// scan semantics. The scan polls ctx once per site; on cancellation it
// latches s.aborted and returns the partial best of its range.
func (s *hsolver) scanRange(phase1 bool, lo, hi int, a Assignment, ev *evaluator, ck *ckpts) move {
	p := s.p
	best := move{mk: s.curMk} // phase 1: only strictly smaller makespans qualify
	// O(1) screen threshold: moves whose order-independent option delta
	// cannot reach the acceptance threshold even after the worst-case
	// full-sum discrepancy are skipped without simulating.
	screen := 1e-12 - energySlack(s.curE)
	// Phase 2 candidates must meet the deadline and strictly lower the
	// energy; simulations abort as soon as either is impossible. Both
	// bounds are exact rejections, not approximations (see runBounded).
	deadlineBound := incClamp(p.Deadline)
	for si := lo; si < hi; si++ {
		if s.aborted.Load() {
			return best
		}
		if s.ctx.Err() != nil {
			s.aborted.Store(true)
			return best
		}
		ci, li := s.sites[si].ci, s.sites[si].li
		row := a[ci]
		orig := row[li]
		opts := ev.opts[ci][li]
		for j := 0; j < p.NumAccels; j++ {
			if j == orig {
				continue
			}
			if phase1 {
				row[li] = j
				var ok bool
				if ck != nil {
					ok = ev.resumeBounded(a, si, ck, best.mk, math.Inf(1))
				} else {
					ok = ev.runBounded(a, best.mk, math.Inf(1), nil)
				}
				row[li] = orig
				if ok && ev.makespan < best.mk {
					best = move{ok: true, ci: ci, li: li, j: j, mk: ev.makespan}
				}
				continue
			}
			if opts[orig].EnergyNJ-opts[j].EnergyNJ <= screen {
				continue
			}
			row[li] = j
			var ok bool
			if ck != nil {
				ok = ev.resumeBounded(a, si, ck, deadlineBound, s.curE)
			} else {
				ok = ev.runBounded(a, deadlineBound, s.curE, nil)
			}
			row[li] = orig
			if !ok || ev.makespan > p.Deadline {
				continue
			}
			// Exact decision arithmetic: the candidate's energy is the full
			// schedule-order sum, so dE and the ratio are bit-identical to
			// the pre-rewrite solver's.
			dE := s.curE - ev.energy
			if dE <= 1e-12 {
				continue
			}
			dT := float64(ev.makespan - s.curMk)
			if dT < 1 {
				dT = 1
			}
			if r := dE / dT; !best.ok || r > best.ratio {
				best = move{ok: true, ci: ci, li: li, j: j, mk: ev.makespan, ratio: r}
			}
		}
	}
	return best
}

// incClamp returns x+1 without overflowing.
func incClamp(x int64) int64 {
	if x == math.MaxInt64 {
		return x
	}
	return x + 1
}

// scan finds the best move of one refinement round, fanning out across
// workers when the scan is large enough. The chunk reduction folds in site
// order, so the selected move is identical for any worker count. With
// checkpointing on, each worker re-derives the round's checkpoint arena from
// its own baseline simulation of the current assignment — one full run per
// worker per round, amortized across its chunk of resumed moves.
func (s *hsolver) scan(phase1 bool) move {
	nSites := len(s.sites)
	nw := solverWorkers(nSites, s.p.Tuning.maxWorkers())
	if nSites*(s.p.NumAccels-1) < s.p.Tuning.moveMin() || nw < 2 {
		return s.scanRange(phase1, 0, nSites, s.a, s.ev, s.ck)
	}
	if s.workers == nil {
		s.workers = make([]*moveScratch, nw)
		for w := range s.workers {
			ws := &moveScratch{a: s.a.clone(), ev: newEvaluator(s.p), gen: -1}
			if s.ck != nil {
				ws.ck = newCkpts(s.p)
			}
			s.workers[w] = ws
		}
		s.chunks = make([]move, nw)
	}
	per := (nSites + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * per
		hi := lo + per
		if hi > nSites {
			hi = nSites
		}
		if lo >= hi {
			s.chunks[w] = move{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ws := s.workers[w]
			ws.a.copyFrom(s.a)
			if ws.ck != nil {
				switch {
				case ws.gen == s.gen:
					// Arena already reflects s.a (round without a move).
				case ws.gen == s.gen-1 && s.lastMove >= 0:
					// Exactly one move behind: reuse the shared prefix.
					ws.ev.resumeCheckpointed(ws.a, s.lastMove, ws.ck)
				default:
					ws.ev.runCheckpointed(ws.a, ws.ck)
				}
				ws.gen = s.gen
			}
			s.chunks[w] = s.scanRange(phase1, lo, hi, ws.a, ws.ev, ws.ck)
		}(w, lo, hi)
	}
	wg.Wait()
	best := move{}
	for _, m := range s.chunks {
		if !m.ok {
			continue
		}
		if !best.ok || (phase1 && m.mk < best.mk) || (!phase1 && m.ratio > best.ratio) {
			best = m
		}
	}
	return best
}

// Heuristic solves the HAP instance with the paper's accelerated approach
// [29]: seed with the minimum-latency assignment, then greedily apply the
// single-layer move with the best energy-saving-per-latency-cost ratio while
// the deadline still holds. If even the seed misses the deadline, it
// performs makespan-reducing moves first (load balancing) before optimizing
// energy. The returned Result reports Feasible=false when no deadline-
// meeting schedule was found.
func Heuristic(p Problem) (Result, error) {
	return HeuristicCtx(context.Background(), p) //lint:allow ctxplumb compat shim: non-ctx public API delegates to the ctx variant
}

// HeuristicCtx is Heuristic with cooperative cancellation: the solver polls
// ctx between refinement rounds and once per site inside every move scan
// (parallel scan workers included). Once ctx is done it stops promptly and
// returns the best assignment refined so far — a valid, fully evaluated
// partial result — together with ctx's error; a cancellation before any
// refinement started returns the zero Result. Each call builds its own
// solver state and checkpoint arenas, so an aborted solve can never leak
// stale checkpoints into a later call. Uncancelled solves are bit-identical
// to Heuristic.
func HeuristicCtx(ctx context.Context, p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	s := &hsolver{p: &p, ctx: ctx, ev: newEvaluator(&p), a: minLatencyAssignment(p), lastMove: -1}
	if !p.Tuning.DisableCheckpoints {
		s.ck = newCkpts(&p)
	}
	for ci, c := range p.Chains {
		for li := range c.Layers {
			s.sites = append(s.sites, site{ci, li})
		}
	}
	s.refresh()
	apply := func(m move) {
		s.a[m.ci][m.li] = m.j
		s.lastMove = s.ev.siteBase[m.ci] + m.li
		s.gen++
		s.refresh()
	}

	// Phase 1: if infeasible, try to shorten the makespan by moving layers
	// off the critical (busiest) accelerator.
	for s.curMk > p.Deadline {
		if err := ctx.Err(); err != nil {
			return s.result(), err
		}
		m := s.scan(true)
		if s.aborted.Load() {
			return s.result(), ctx.Err()
		}
		if !m.ok {
			break
		}
		apply(m)
	}
	if s.curMk > p.Deadline {
		return s.result(), nil
	}

	// Phase 2: ratio-greedy energy refinement under the deadline.
	for {
		if err := ctx.Err(); err != nil {
			return s.result(), err
		}
		m := s.scan(false)
		if s.aborted.Load() {
			return s.result(), ctx.Err()
		}
		if !m.ok {
			break
		}
		apply(m)
	}
	return s.result(), nil
}

// MaxExhaustiveSize bounds the instance size Exhaustive accepts
// (NumAccels^Size assignments are enumerated).
const MaxExhaustiveSize = 1 << 20

// exhaustPre holds the per-position precomputation shared by every
// enumeration worker: the (chain, layer) of each branch position and the
// admissible remainder bounds (minimum energy / per-chain minimum cycles
// over all positions below k). Positions are branched from n-1 down, so
// position order determines both the enumeration order of the leaves and
// which layers the suffix bounds cover; Exhaustive uses the chain-major flat
// order, BranchAndBound its spread-sorted branch order.
type exhaustPre struct {
	n       int
	chainOf []int
	layerOf []int
	// sufMinE[k] is the summed minimum option energy of positions < k.
	sufMinE []float64
	// chainRem[k][ci] is the summed minimum option cycles of chain ci's
	// positions < k.
	chainRem [][]int64
}

func newExhaustPre(p *Problem) *exhaustPre {
	n := p.Size()
	chainOf := make([]int, n)
	layerOf := make([]int, n)
	k := 0
	for ci, c := range p.Chains {
		for li := range c.Layers {
			chainOf[k] = ci
			layerOf[k] = li
			k++
		}
	}
	return newExhaustPreFrom(p, chainOf, layerOf)
}

// newExhaustPreFrom builds the suffix bounds for an arbitrary position
// permutation (chainOf[k], layerOf[k] is the layer branched at position k).
func newExhaustPreFrom(p *Problem, chainOf, layerOf []int) *exhaustPre {
	n := len(chainOf)
	pre := &exhaustPre{
		n:       n,
		chainOf: chainOf,
		layerOf: layerOf,
		sufMinE: make([]float64, n+1),
		chainRem: func() [][]int64 {
			m := make([][]int64, n+1)
			flat := make([]int64, (n+1)*len(p.Chains))
			for k := range m {
				m[k] = flat[k*len(p.Chains) : (k+1)*len(p.Chains)]
			}
			return m
		}(),
	}
	for k := 0; k < n; k++ {
		opts := p.Chains[pre.chainOf[k]].Layers[pre.layerOf[k]].Options
		minE := opts[0].EnergyNJ
		minC := opts[0].Cycles
		for _, o := range opts[1:] {
			if o.EnergyNJ < minE {
				minE = o.EnergyNJ
			}
			if o.Cycles < minC {
				minC = o.Cycles
			}
		}
		pre.sufMinE[k+1] = pre.sufMinE[k] + minE
		copy(pre.chainRem[k+1], pre.chainRem[k])
		pre.chainRem[k+1][pre.chainOf[k]] += minC
	}
	return pre
}

// nodeBudget is the shared node allowance of one budgeted (BranchAndBound)
// search. Workers claim allowance in chunks, so the total nodes explored
// never exceed the budget for any worker count; hit latches the first failed
// claim — the search wanted more nodes than the budget allowed.
type nodeBudget struct {
	remaining atomic.Int64
	hit       atomic.Bool
}

func newNodeBudget(n int64) *nodeBudget {
	b := &nodeBudget{}
	b.remaining.Store(n)
	return b
}

func (b *nodeBudget) claim(n int64) int64 {
	for {
		r := b.remaining.Load()
		if r <= 0 {
			b.hit.Store(true)
			return 0
		}
		if n > r {
			n = r
		}
		if b.remaining.CompareAndSwap(r, r-n) {
			return n
		}
	}
}

// exhaustShared is the cross-worker pruning state: whether any feasible leaf
// exists yet and the best feasible energy published so far. Reading a stale
// value only weakens pruning; the admissible bounds plus the energySlack
// margin guarantee no would-be winner is ever pruned, so the final fold is
// deterministic for any worker count.
type exhaustShared struct {
	feasible atomic.Bool
	bestBits atomic.Uint64 // math.Float64bits of the best feasible energy
}

func newExhaustShared() *exhaustShared {
	s := &exhaustShared{}
	s.bestBits.Store(math.Float64bits(math.Inf(1)))
	return s
}

func (s *exhaustShared) publish(e float64) {
	for {
		old := s.bestBits.Load()
		if math.Float64frombits(old) <= e {
			break
		}
		if s.bestBits.CompareAndSwap(old, math.Float64bits(e)) {
			break
		}
	}
	s.feasible.Store(true)
}

func (s *exhaustShared) snapshot() (bool, float64) {
	if !s.feasible.Load() {
		return false, 0
	}
	return true, math.Float64frombits(s.bestBits.Load())
}

// exhaustState is one worker's depth-first enumeration state.
type exhaustState struct {
	ctx       context.Context
	p         *Problem
	pre       *exhaustPre
	ev        *evaluator
	flat      []int
	a         Assignment
	chainLoad []int64
	accelLoad []int64

	best         Result
	haveFeasible bool
	have         bool
	shared       *exhaustShared

	// nodes counts dfs entries; every ctxCheckNodes of them the ctx is
	// polled and aborted is latched, unwinding the recursion promptly.
	nodes   int
	aborted bool

	// budget, when non-nil, bounds the dfs entries across every worker of
	// the search (BranchAndBound); quota is this worker's locally claimed
	// allowance and budgetHit latches exhaustion, unwinding the recursion.
	budget     *nodeBudget
	quota      int64
	claimChunk int64
	budgetHit  bool
}

func newExhaustState(ctx context.Context, p *Problem, pre *exhaustPre, shared *exhaustShared) *exhaustState {
	st := &exhaustState{
		ctx:       ctx,
		p:         p,
		pre:       pre,
		ev:        newEvaluator(p),
		flat:      make([]int, pre.n),
		a:         make(Assignment, len(p.Chains)),
		chainLoad: make([]int64, len(p.Chains)),
		accelLoad: make([]int64, p.NumAccels),
		shared:    shared,
	}
	k := 0
	for ci, c := range p.Chains {
		st.a[ci] = st.flat[k : k+len(c.Layers)]
		k += len(c.Layers)
	}
	return st
}

func (s *exhaustState) reset() {
	for i := range s.chainLoad {
		s.chainLoad[i] = 0
	}
	for i := range s.accelLoad {
		s.accelLoad[i] = 0
	}
	s.best = Result{}
	s.haveFeasible = false
	s.have = false
}

// leaf evaluates the completed assignment with the original running-minimum
// selection rule: first-enumerated minimum-energy feasible schedule, else
// first-enumerated minimum-makespan schedule. The simulation aborts early
// once the leaf provably cannot be selected — past the deadline with a
// feasible best in hand (or past both the deadline and the fallback
// makespan before one), or at the best feasible energy — which rejects the
// leaf exactly as the full comparison would.
func (s *exhaustState) leaf() {
	mkBound := int64(math.MaxInt64)
	eBound := math.Inf(1)
	if s.haveFeasible {
		mkBound = incClamp(s.p.Deadline)
		eBound = s.best.EnergyNJ
	} else if s.have {
		mkBound = incClamp(s.p.Deadline)
		if s.best.Makespan > mkBound {
			mkBound = s.best.Makespan
		}
	}
	if !s.ev.runBounded(s.a, mkBound, eBound, nil) {
		s.have = true
		return
	}
	mk, en := s.ev.makespan, s.ev.energy
	switch {
	case mk <= s.p.Deadline && (!s.haveFeasible || en < s.best.EnergyNJ):
		s.best = s.ev.result(s.a)
		s.haveFeasible = true
		s.shared.publish(en)
	case !s.haveFeasible && (!s.have || mk < s.best.Makespan):
		s.best = s.ev.result(s.a)
	}
	s.have = true
}

// dfs enumerates positions pos..0 (most-significant digit first, so leaves
// appear in exactly the original flat-index enumeration order) and prunes
// subtrees that provably cannot change the outcome:
//
//   - once any feasible leaf exists, subtrees whose integer makespan lower
//     bound exceeds the deadline (all leaves infeasible) or whose energy
//     lower bound cannot beat the best feasible energy (with the energySlack
//     float margin, so a true winner is never cut);
//   - before one exists, subtrees that are provably infeasible and cannot
//     improve the running minimum-makespan fallback (integer-exact).
func (s *exhaustState) dfs(pos int, eSoFar float64) {
	if s.aborted || s.budgetHit {
		return
	}
	if s.budget != nil && !s.takeNode() {
		return
	}
	s.nodes++
	if s.nodes%ctxCheckNodes == 0 && s.ctx.Err() != nil {
		s.aborted = true
		return
	}
	if pos < 0 {
		s.leaf()
		return
	}
	pre := s.pre
	ci := pre.chainOf[pos]
	li := pre.layerOf[pos]
	opts := s.ev.opts[ci][li]
	rem := pre.chainRem[pos]
	for j := range opts {
		o := &opts[j]
		lb := s.chainLoad[ci] + o.Cycles + rem[ci]
		if al := s.accelLoad[j] + o.Cycles; al > lb {
			lb = al
		}
		if feasible, bestE := s.shared.snapshot(); feasible {
			if lb > s.p.Deadline {
				continue
			}
			if eSoFar+o.EnergyNJ+pre.sufMinE[pos] >= bestE+energySlack(bestE) {
				continue
			}
		} else if lb > s.p.Deadline && s.have && lb >= s.best.Makespan {
			continue
		}
		s.a[ci][li] = j
		s.chainLoad[ci] += o.Cycles
		s.accelLoad[j] += o.Cycles
		s.dfs(pos-1, eSoFar+o.EnergyNJ)
		s.accelLoad[j] -= o.Cycles
		s.chainLoad[ci] -= o.Cycles
	}
}

// takeNode consumes one node of the shared budget, claiming allowance in
// chunks to keep the shared counter off the hot path; false latches
// budgetHit.
func (s *exhaustState) takeNode() bool {
	if s.quota == 0 {
		s.quota = s.budget.claim(s.claimChunk)
		if s.quota == 0 {
			s.budgetHit = true
			return false
		}
	}
	s.quota--
	return true
}

// Exhaustive enumerates every assignment and returns the minimum-energy
// schedule meeting the deadline, or — when none is feasible — the schedule
// with the smallest makespan. It is the optimal reference standing in for
// the paper's ILP formulation; it returns an error when the instance is too
// large (NumAccels^layers > MaxExhaustiveSize). Enumeration prunes with
// admissible bounds and fans out across workers on large instances; both are
// outcome-preserving, so the result is identical to the plain enumeration.
func Exhaustive(p Problem) (Result, error) {
	return ExhaustiveCtx(context.Background(), p) //lint:allow ctxplumb compat shim: non-ctx public API delegates to the ctx variant
}

// ExhaustiveCtx is Exhaustive with cooperative cancellation: workers poll ctx
// every ctxCheckNodes dfs entries (and before claiming each enumeration
// prefix) and the call returns ctx's error once it is done. Uncancelled
// solves are bit-identical to Exhaustive.
func ExhaustiveCtx(ctx context.Context, p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	n := p.Size()
	total := 1
	for i := 0; i < n; i++ {
		total *= p.NumAccels
		if total > MaxExhaustiveSize {
			return Result{}, fmt.Errorf("sched: instance too large for exhaustive search (%d layers, %d accelerators)", n, p.NumAccels)
		}
	}
	pre := newExhaustPre(&p)
	if nw := solverWorkers(total, p.Tuning.maxWorkers()); total >= p.Tuning.exhaustMin() && nw >= 2 {
		res, _, err := exhaustParallel(ctx, &p, pre, nw, nil)
		if err != nil {
			return Result{}, err
		}
		return res, nil
	}
	st := newExhaustState(ctx, &p, pre, newExhaustShared())
	st.dfs(n-1, 0)
	if st.aborted {
		return Result{}, ctx.Err()
	}
	return st.best, nil
}

// exhaustParallel splits the enumeration over the top assignment digits and
// folds the per-prefix results in prefix (= enumeration) order, reproducing
// the sequential running-minimum selection exactly. A non-nil budget bounds
// the dfs nodes across all workers (BranchAndBound); once it is exhausted the
// workers record whatever their prefixes found so far and unwind. On
// cancellation every worker stops claiming prefixes, unwinds, and the call
// returns ctx's error with no goroutines left behind. The second return
// reports whether any leaf was evaluated.
func exhaustParallel(ctx context.Context, p *Problem, pre *exhaustPre, nw int, budget *nodeBudget) (Result, bool, error) {
	k := p.NumAccels
	pd, prefixes := 0, 1
	for prefixes < 4*nw && pd < pre.n {
		pd++
		prefixes *= k
	}
	type summary struct {
		best         Result
		haveFeasible bool
		have         bool
	}
	sums := make([]summary, prefixes)
	shared := newExhaustShared()
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newExhaustState(ctx, p, pre, shared)
			st.budget = budget
			st.claimChunk = parallelBudgetChunk
			for {
				pi := int(next.Add(1) - 1)
				if pi >= prefixes {
					return
				}
				if ctx.Err() != nil {
					aborted.Store(true)
					return
				}
				if st.budgetHit {
					return
				}
				st.reset()
				eSoFar := 0.0
				for t, v := 0, pi; t < pd; t, v = t+1, v/k {
					pos := pre.n - pd + t
					j := v % k
					o := &st.ev.opts[pre.chainOf[pos]][pre.layerOf[pos]][j]
					st.a[pre.chainOf[pos]][pre.layerOf[pos]] = j
					st.chainLoad[pre.chainOf[pos]] += o.Cycles
					st.accelLoad[j] += o.Cycles
					eSoFar += o.EnergyNJ
				}
				st.dfs(pre.n-pd-1, eSoFar)
				if st.aborted {
					aborted.Store(true)
					return
				}
				// Recorded even when the budget ran out mid-prefix: the
				// truncated search still returns its best leaf found.
				sums[pi] = summary{best: st.best, haveFeasible: st.haveFeasible, have: st.have}
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return Result{}, false, ctx.Err()
	}

	var best Result
	haveFeasible, have := false, false
	for _, s := range sums {
		if !s.have {
			continue
		}
		switch {
		case s.haveFeasible && (!haveFeasible || s.best.EnergyNJ < best.EnergyNJ):
			best = s.best
			haveFeasible = true
		case !s.haveFeasible && !haveFeasible && (!have || s.best.Makespan < best.Makespan):
			best = s.best
		}
		have = true
	}
	return best, have, nil
}

// parallelBudgetChunk is the node allowance a budgeted parallel worker claims
// from the shared budget at a time: large enough to keep the shared atomic
// off the per-node path, small enough that the budget still bounds the total
// within a fraction of a percent of typical nodeBudget values.
const parallelBudgetChunk = 1 << 10

// HAP is the paper's solver function re = HAP(D, AIC, LS): it returns the
// minimum energy achievable under deadline p.Deadline, +Inf when no feasible
// schedule exists. It dispatches to Exhaustive for small instances and the
// heuristic otherwise.
func HAP(p Problem) (float64, Result, error) {
	return HAPCtx(context.Background(), p) //lint:allow ctxplumb compat shim: non-ctx public API delegates to the ctx variant
}

// HAPCtx is HAP with cooperative cancellation (see HeuristicCtx and
// ExhaustiveCtx); it returns ctx's error once ctx is done. Uncancelled
// solves are bit-identical to HAP.
func HAPCtx(ctx context.Context, p Problem) (float64, Result, error) {
	var (
		res Result
		err error
	)
	if canExhaust(p) {
		res, err = ExhaustiveCtx(ctx, p)
	} else {
		res, err = HeuristicCtx(ctx, p)
	}
	if err != nil {
		return 0, Result{}, err
	}
	if !res.Feasible {
		return math.Inf(1), res, nil
	}
	return res.EnergyNJ, res, nil
}

func canExhaust(p Problem) bool {
	total := 1
	for i := 0; i < p.Size(); i++ {
		total *= p.NumAccels
		if total > 4096 { // keep the exact path fast inside the search loop
			return false
		}
	}
	return true
}
