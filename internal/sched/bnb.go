package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// BranchAndBound solves the HAP instance exactly for instances beyond
// Exhaustive's reach: depth-first search over layer assignments, branched in
// decreasing energy-spread order (which tightens the bounds early), pruned
// with the same admissible suffix bounds as Exhaustive —
//
//   - energy: assigned energy + Σ per-layer minimum energies of the rest,
//     cut against the best feasible energy published so far (with the
//     energySlack float margin, so a true winner is never pruned);
//   - makespan: the larger of (a) any chain's assigned cycles plus its
//     remaining per-layer minimum cycles and (b) any sub-accelerator's
//     already-assigned load — both integer-exact lower bounds on the
//     list-scheduled makespan;
//   - before any feasible leaf exists, subtrees that are provably infeasible
//     and cannot improve the running minimum-makespan fallback.
//
// The search reuses the exhaustPre/exhaustState machinery (suffix-bound
// precompute, bounded leaf simulation, shared best-energy bound) over the
// spread-sorted branch order, and — like Exhaustive — fans out across a
// worker pool on large instances, with the per-prefix results folded in
// enumeration order so a completed search is deterministic for any worker
// count.
//
// nodeBudget bounds the explored search-tree nodes (shared across workers);
// the second return value reports whether the search completed within it
// (true ⇒ the result is optimal in the same sense as Exhaustive). A
// budget-truncated parallel search still returns the best leaf found, but
// which leaves were explored then depends on worker scheduling.
func BranchAndBound(p Problem, nodeBudget int) (Result, bool, error) {
	return BranchAndBoundCtx(context.Background(), p, nodeBudget) //lint:allow ctxplumb compat shim: non-ctx public API delegates to the ctx variant
}

// BranchAndBoundCtx is BranchAndBound with cooperative cancellation: workers
// poll ctx every ctxCheckNodes dfs entries (and before claiming each
// enumeration prefix) and the call returns ctx's error once it is done.
// Uncancelled solves are bit-identical to BranchAndBound.
func BranchAndBoundCtx(ctx context.Context, p Problem, nodeBudget int) (Result, bool, error) {
	if err := p.Validate(); err != nil {
		return Result{}, false, err
	}
	if nodeBudget <= 0 {
		return Result{}, false, fmt.Errorf("sched: node budget must be positive")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, false, err
	}

	// Branch order: decreasing energy spread. Site construction order and
	// sort are kept identical to the pre-unification solver, so the
	// enumeration order — and with it the first-enumerated tie-breaks — are
	// unchanged (pinned by the differential tests).
	type bsite struct {
		chain, layer int
		spread       float64
	}
	var sites []bsite
	for ci, c := range p.Chains {
		for li, l := range c.Layers {
			minE, maxE := l.Options[0].EnergyNJ, l.Options[0].EnergyNJ
			for _, o := range l.Options[1:] {
				if o.EnergyNJ < minE {
					minE = o.EnergyNJ
				}
				if o.EnergyNJ > maxE {
					maxE = o.EnergyNJ
				}
			}
			sites = append(sites, bsite{chain: ci, layer: li, spread: maxE - minE})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].spread > sites[j].spread })

	// dfs branches position n-1 first; depth d of the sorted order maps to
	// position n-1-d, so leaves appear in exactly the old branch order.
	n := len(sites)
	chainOf := make([]int, n)
	layerOf := make([]int, n)
	for k := 0; k < n; k++ {
		chainOf[k] = sites[n-1-k].chain
		layerOf[k] = sites[n-1-k].layer
	}
	pre := newExhaustPreFrom(&p, chainOf, layerOf)
	budget := newNodeBudget(int64(nodeBudget))

	// Parallel split: worth it only when both the enumeration space and the
	// node budget are large enough to amortize the worker pool.
	capped := 1
	for i := 0; i < n && capped < math.MaxInt/p.NumAccels; i++ {
		capped *= p.NumAccels
	}
	eff := capped
	if nodeBudget < eff {
		eff = nodeBudget
	}
	if nw := solverWorkers(eff, p.Tuning.maxWorkers()); eff >= p.Tuning.exhaustMin() && nw >= 2 {
		best, have, err := exhaustParallel(ctx, &p, pre, nw, budget)
		if err != nil {
			return Result{}, false, err
		}
		complete := !budget.hit.Load()
		if !have {
			return Result{}, complete, fmt.Errorf("sched: branch and bound explored no leaf within budget %d", nodeBudget)
		}
		return best, complete, nil
	}

	st := newExhaustState(ctx, &p, pre, newExhaustShared())
	st.budget = budget
	st.claimChunk = int64(nodeBudget) // sequential: one exact claim
	st.dfs(n-1, 0)
	if st.aborted {
		return Result{}, false, ctx.Err()
	}
	complete := !budget.hit.Load()
	if !st.have {
		return Result{}, complete, fmt.Errorf("sched: branch and bound explored no leaf within budget %d", nodeBudget)
	}
	return st.best, complete, nil
}
