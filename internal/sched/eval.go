package sched

import (
	"fmt"
	"math"
)

// This file is the incremental evaluation engine under the HAP solvers: a
// reusable, allocation-free schedule simulator driven by a min-heap of ready
// layers. The solvers validate the problem once, then run this unchecked
// core for every candidate they consider; the exported Evaluate/Timeline
// wrappers keep validating for external callers.
//
// Bit-identity contract: the simulator reproduces the original O(chains)
// ready-layer scan exactly — same scheduling decisions (earliest start, ties
// to the lower chain index), same integer makespans, and energy accumulated
// in the same schedule order so the float64 sums are identical to the last
// bit. The differential tests in differential_test.go enforce this against
// a verbatim copy of the pre-rewrite solver.

// event is one pending ready layer in the simulator's priority queue: chain
// `chain`'s head layer can start no earlier than `start`. Keys can go stale
// low (a sub-accelerator got busier after insertion); the simulator
// re-checks on pop and reinserts with the true key, which is sound because
// chainReady/accelFree only ever increase.
type event struct {
	start int64
	chain int32
}

func (e event) less(o event) bool {
	return e.start < o.start || (e.start == o.start && e.chain < o.chain)
}

// eventHeap is a hand-rolled binary min-heap ordered by (start, chain). The
// (start, chain) order reproduces the original scan's tie-break: among
// equally early ready layers the lowest chain index runs first.
type eventHeap []event

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].less(s[l]) {
			m = r
		}
		if !s[m].less(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// evaluator holds the reusable scratch state for repeated simulations of one
// Problem. A single evaluator is not safe for concurrent use; parallel scans
// give each worker its own.
type evaluator struct {
	p    *Problem
	opts [][][]Option // opts[ci][li] aliases Chains[ci].Layers[li].Options

	next       []int
	chainReady []int64
	accelFree  []int64
	buf        []int64
	heap       eventHeap

	makespan int64
	energy   float64
}

func newEvaluator(p *Problem) *evaluator {
	e := &evaluator{
		p:          p,
		opts:       make([][][]Option, len(p.Chains)),
		next:       make([]int, len(p.Chains)),
		chainReady: make([]int64, len(p.Chains)),
		accelFree:  make([]int64, p.NumAccels),
		buf:        make([]int64, p.NumAccels),
		heap:       make(eventHeap, 0, len(p.Chains)),
	}
	for ci := range p.Chains {
		rows := make([][]Option, len(p.Chains[ci].Layers))
		for li := range p.Chains[ci].Layers {
			rows[li] = p.Chains[ci].Layers[li].Options
		}
		e.opts[ci] = rows
	}
	return e
}

// run simulates the paper's sch() event-driven list schedule of assignment a
// and leaves makespan/energy/buf in the evaluator's fields. When placements
// is non-nil the concrete schedule is appended to it in start order. The
// assignment must be well-shaped for the problem (the solvers only produce
// such assignments; external input goes through Evaluate/Timeline).
func (e *evaluator) run(a Assignment, placements *[]Placement) {
	e.runBounded(a, math.MaxInt64, math.Inf(1), placements)
}

// runBounded is run with sound early aborts for candidate screening: it
// returns false as soon as any layer's finish time reaches mkBound or the
// energy accumulated so far reaches eBound. Because finish times never
// exceed the final makespan and energy partial sums of non-negative terms
// are monotonically non-decreasing in float64, an abort proves the completed
// metrics would have reached the bound too — so callers can reject the
// candidate exactly as if they had compared the full simulation's result.
// On abort the evaluator's makespan/energy/buf are unspecified.
func (e *evaluator) runBounded(a Assignment, mkBound int64, eBound float64, placements *[]Placement) bool {
	if len(e.opts) == 1 {
		return e.runSingleChain(a[0], mkBound, eBound, placements)
	}
	for ci := range e.next {
		e.next[ci] = 0
		e.chainReady[ci] = 0
	}
	for j := range e.accelFree {
		e.accelFree[j] = 0
		e.buf[j] = 0
	}
	h := e.heap[:0]
	for ci := range e.opts {
		// Ascending chain index with equal keys: already heap-ordered.
		h = append(h, event{start: 0, chain: int32(ci)})
	}

	var energy float64
	var makespan int64
	for len(h) > 0 {
		ev := h.pop()
		ci := int(ev.chain)
		li := e.next[ci]
		j := a[ci][li]
		start := e.chainReady[ci]
		if f := e.accelFree[j]; f > start {
			start = f
		}
		if start > ev.start && len(h) > 0 && h[0].less(event{start: start, chain: ev.chain}) {
			// Stale key: the sub-accelerator got busier since this entry was
			// inserted, and another chain is now ahead of it. Reinsert with
			// the true key; keys only increase, so the next up-to-date pop
			// is the schedule's true argmin. (When the updated key still
			// precedes the heap top the layer runs immediately instead.)
			h.push(event{start: start, chain: ev.chain})
			continue
		}
		opt := &e.opts[ci][li][j]
		finish := start + opt.Cycles
		if finish >= mkBound {
			e.heap = h
			return false
		}
		if placements != nil {
			*placements = append(*placements, Placement{
				Chain: ci, Layer: li, Name: e.p.Chains[ci].Layers[li].Name,
				Accel: j, Start: start, End: finish,
			})
		}
		e.chainReady[ci] = finish
		e.accelFree[j] = finish
		if finish > makespan {
			makespan = finish
		}
		energy += opt.EnergyNJ
		if energy >= eBound {
			e.heap = h
			return false
		}
		if opt.BufferBytes > e.buf[j] {
			e.buf[j] = opt.BufferBytes
		}
		if li+1 < len(e.opts[ci]) {
			e.next[ci] = li + 1
			h.push(event{start: finish, chain: ev.chain})
		}
	}
	e.heap = h
	e.makespan = makespan
	e.energy = energy
	return true
}

// runSingleChain is the degenerate single-DNN case: with one chain there is
// never contention, every layer starts exactly when its predecessor
// finishes, and the heap would hold one element — so the simulation is a
// straight accumulation over the chain.
func (e *evaluator) runSingleChain(row []int, mkBound int64, eBound float64, placements *[]Placement) bool {
	for j := range e.buf {
		e.buf[j] = 0
	}
	opts := e.opts[0]
	var t int64
	var energy float64
	for li, j := range row {
		opt := &opts[li][j]
		finish := t + opt.Cycles
		if finish >= mkBound {
			return false
		}
		if placements != nil {
			*placements = append(*placements, Placement{
				Chain: 0, Layer: li, Name: e.p.Chains[0].Layers[li].Name,
				Accel: j, Start: t, End: finish,
			})
		}
		t = finish
		energy += opt.EnergyNJ
		if energy >= eBound {
			return false
		}
		if opt.BufferBytes > e.buf[j] {
			e.buf[j] = opt.BufferBytes
		}
	}
	e.makespan = t
	e.energy = energy
	return true
}

// result snapshots the last run into a detached Result: the assignment is
// cloned exactly once and the buffer demand copied out of scratch.
func (e *evaluator) result(a Assignment) Result {
	return Result{
		Assign:       a.clone(),
		Makespan:     e.makespan,
		EnergyNJ:     e.energy,
		BufferDemand: append([]int64(nil), e.buf...),
		Feasible:     e.makespan <= e.p.Deadline,
	}
}

// checkAssignment verifies that a is well-shaped for the problem.
func (p Problem) checkAssignment(a Assignment) error {
	if len(a) != len(p.Chains) {
		return fmt.Errorf("sched: assignment has %d chains, want %d", len(a), len(p.Chains))
	}
	for i, row := range a {
		if len(row) != len(p.Chains[i].Layers) {
			return fmt.Errorf("sched: chain %d assignment has %d layers, want %d",
				i, len(row), len(p.Chains[i].Layers))
		}
		for li, j := range row {
			if j < 0 || j >= p.NumAccels {
				return fmt.Errorf("sched: chain %d layer %d assigned to invalid accelerator %d", i, li, j)
			}
		}
	}
	return nil
}
