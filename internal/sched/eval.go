package sched

import (
	"fmt"
	"math"
)

// This file is the incremental evaluation engine under the HAP solvers: a
// reusable, allocation-free schedule simulator driven by a min-heap of ready
// layers. The solvers validate the problem once, then run this unchecked
// core for every candidate they consider; the exported Evaluate/Timeline
// wrappers keep validating for external callers.
//
// Bit-identity contract: the simulator reproduces the original O(chains)
// ready-layer scan exactly — same scheduling decisions (earliest start, ties
// to the lower chain index), same integer makespans, and energy accumulated
// in the same schedule order so the float64 sums are identical to the last
// bit. The differential tests in differential_test.go enforce this against
// a verbatim copy of the pre-rewrite solver.

// event is one pending ready layer in the simulator's priority queue: chain
// `chain`'s head layer can start no earlier than `start`. Keys can go stale
// low (a sub-accelerator got busier after insertion); the simulator
// re-checks on pop and reinserts with the true key, which is sound because
// chainReady/accelFree only ever increase.
type event struct {
	start int64
	chain int32
}

func (e event) less(o event) bool {
	return e.start < o.start || (e.start == o.start && e.chain < o.chain)
}

// eventHeap is a hand-rolled binary min-heap ordered by (start, chain). The
// (start, chain) order reproduces the original scan's tie-break: among
// equally early ready layers the lowest chain index runs first.
type eventHeap []event

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].less(s[l]) {
			m = r
		}
		if !s[m].less(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// evaluator holds the reusable scratch state for repeated simulations of one
// Problem. A single evaluator is not safe for concurrent use; parallel scans
// give each worker its own.
type evaluator struct {
	p    *Problem
	opts [][][]Option // opts[ci][li] aliases Chains[ci].Layers[li].Options

	// siteBase[ci] is the flat chain-major index of (ci, 0): site (ci, li)
	// has flat index siteBase[ci]+li, matching the move scan's site order.
	siteBase []int

	next       []int
	chainReady []int64
	accelFree  []int64
	buf        []int64
	heap       eventHeap

	makespan int64
	energy   float64
}

func newEvaluator(p *Problem) *evaluator {
	e := &evaluator{
		p:          p,
		opts:       make([][][]Option, len(p.Chains)),
		siteBase:   make([]int, len(p.Chains)),
		next:       make([]int, len(p.Chains)),
		chainReady: make([]int64, len(p.Chains)),
		accelFree:  make([]int64, p.NumAccels),
		buf:        make([]int64, p.NumAccels),
		heap:       make(eventHeap, 0, len(p.Chains)),
	}
	base := 0
	for ci := range p.Chains {
		rows := make([][]Option, len(p.Chains[ci].Layers))
		for li := range p.Chains[ci].Layers {
			rows[li] = p.Chains[ci].Layers[li].Options
		}
		e.opts[ci] = rows
		e.siteBase[ci] = base
		base += len(rows)
	}
	return e
}

// ckpts is a checkpoint arena: one snapshot of the simulator's full state per
// layer site, taken by runCheckpointed just before that layer's event is
// popped for the first time. Everything simulated before that pop is
// independent of the layer's own assignment, so a single-layer move can
// resume from the snapshot and replay only the schedule's suffix — the shared
// prefix is reused across the whole move scan of one refinement round. All
// per-site storage is flat and reused across rounds; one arena belongs to one
// evaluator's baseline run at a time.
type ckpts struct {
	nc, na   int
	captured []bool
	next     []int   // nc per site
	ready    []int64 // nc per site (single-chain: slot 0 holds t)
	free     []int64 // na per site
	buf      []int64 // na per site
	heap     []event // nc per site
	heapLen  []int
	energy   []float64
	makespan []int64
	// order[si] is the capture sequence number: ascending order equals
	// ascending first-pop time in the arena's simulation. It lets
	// resumeCheckpointed invalidate exactly the snapshots taken at or after
	// a moved layer's first pop — everything captured earlier stays valid,
	// because nothing simulated before that pop read the moved assignment.
	order []int
	clock int
}

func newCkpts(p *Problem) *ckpts {
	n, nc, na := p.Size(), len(p.Chains), p.NumAccels
	return &ckpts{
		nc: nc, na: na,
		captured: make([]bool, n),
		next:     make([]int, n*nc),
		ready:    make([]int64, n*nc),
		free:     make([]int64, n*na),
		buf:      make([]int64, n*na),
		heap:     make([]event, n*nc),
		heapLen:  make([]int, n),
		energy:   make([]float64, n),
		makespan: make([]int64, n),
		order:    make([]int, n),
	}
}

func (c *ckpts) reset() {
	for i := range c.captured {
		c.captured[i] = false
	}
	c.clock = 0
}

// invalidateFrom drops every snapshot captured at or after site si's — the
// ones a reassignment of site si can change.
func (c *ckpts) invalidateFrom(si int) {
	ord := c.order[si]
	for i, cap := range c.captured {
		if cap && c.order[i] >= ord {
			c.captured[i] = false
		}
	}
}

// capture snapshots the evaluator's live state (plus the running energy and
// makespan, which the loop keeps in locals) into site si's slot.
func (c *ckpts) capture(si int, e *evaluator, h eventHeap, energy float64, makespan int64) {
	copy(c.next[si*c.nc:], e.next)
	copy(c.ready[si*c.nc:], e.chainReady)
	copy(c.free[si*c.na:], e.accelFree)
	copy(c.buf[si*c.na:], e.buf)
	copy(c.heap[si*c.nc:], h)
	c.heapLen[si] = len(h)
	c.energy[si] = energy
	c.makespan[si] = makespan
	c.captured[si] = true
	c.order[si] = c.clock
	c.clock++
}

// restore loads site si's snapshot back into the evaluator and returns the
// heap, energy and makespan to resume the loop with.
func (c *ckpts) restore(si int, e *evaluator) (eventHeap, float64, int64) {
	copy(e.next, c.next[si*c.nc:(si+1)*c.nc])
	copy(e.chainReady, c.ready[si*c.nc:(si+1)*c.nc])
	copy(e.accelFree, c.free[si*c.na:(si+1)*c.na])
	copy(e.buf, c.buf[si*c.na:(si+1)*c.na])
	h := append(e.heap[:0], c.heap[si*c.nc:si*c.nc+c.heapLen[si]]...)
	return h, c.energy[si], c.makespan[si]
}

// run simulates the paper's sch() event-driven list schedule of assignment a
// and leaves makespan/energy/buf in the evaluator's fields. When placements
// is non-nil the concrete schedule is appended to it in start order. The
// assignment must be well-shaped for the problem (the solvers only produce
// such assignments; external input goes through Evaluate/Timeline).
func (e *evaluator) run(a Assignment, placements *[]Placement) {
	e.runBounded(a, math.MaxInt64, math.Inf(1), placements)
}

// runBounded is run with sound early aborts for candidate screening: it
// returns false as soon as any layer's finish time reaches mkBound or the
// energy accumulated so far reaches eBound. Because finish times never
// exceed the final makespan and energy partial sums of non-negative terms
// are monotonically non-decreasing in float64, an abort proves the completed
// metrics would have reached the bound too — so callers can reject the
// candidate exactly as if they had compared the full simulation's result.
// On abort the evaluator's makespan/energy/buf are unspecified.
func (e *evaluator) runBounded(a Assignment, mkBound int64, eBound float64, placements *[]Placement) bool {
	if len(e.opts) == 1 {
		return e.runSingleChain(a[0], 0, 0, 0, mkBound, eBound, placements, nil)
	}
	h := e.initState()
	return e.loopBounded(a, h, 0, 0, mkBound, eBound, placements, nil)
}

// runCheckpointed is a full (unbounded) run that additionally records one
// checkpoint per layer site into ck. After it returns, resumeBounded can
// replay any single-layer move from that layer's snapshot.
func (e *evaluator) runCheckpointed(a Assignment, ck *ckpts) {
	ck.reset()
	if len(e.opts) == 1 {
		e.runSingleChain(a[0], 0, 0, 0, math.MaxInt64, math.Inf(1), nil, ck)
		return
	}
	h := e.initState()
	e.loopBounded(a, h, 0, 0, math.MaxInt64, math.Inf(1), nil, ck)
}

// resumeCheckpointed brings an arena captured for a's previous value up to
// date after the single-layer move at site si was applied to a: snapshots
// taken before si's first pop are still exact (the prefix never read the
// moved assignment), so only si's own and every later snapshot are dropped
// and re-captured by resuming the simulation from si's snapshot. The final
// makespan/energy/buf left in the evaluator — and every snapshot in the
// arena — are bit-identical to a fresh runCheckpointed(a, ck). si < 0 (or an
// empty arena) falls back to the full checkpointed run.
func (e *evaluator) resumeCheckpointed(a Assignment, si int, ck *ckpts) {
	if si < 0 || !ck.captured[si] {
		e.runCheckpointed(a, ck)
		return
	}
	ck.invalidateFrom(si)
	if len(e.opts) == 1 {
		for j := range e.buf {
			e.buf[j] = ck.buf[si*ck.na+j]
		}
		e.runSingleChain(a[0], si, ck.makespan[si], ck.energy[si], math.MaxInt64, math.Inf(1), nil, ck)
		return
	}
	h, energy, makespan := ck.restore(si, e)
	e.loopBounded(a, h, energy, makespan, math.MaxInt64, math.Inf(1), nil, ck)
}

// resumeBounded replays assignment a from the checkpoint of site si (flat
// chain-major index), with the same early-abort bounds as runBounded. It is
// exact for any a that agrees with the checkpointed baseline on every
// decision taken before site si's first pop — in particular for the move
// scan's single-layer reassignments of site si itself: the restored state is
// bit-identical to what a full simulation of a would have reached, and the
// suffix replays the same code over the same state, so makespan, energy and
// buffer demand come out bit-identical to runBounded(a, ...).
func (e *evaluator) resumeBounded(a Assignment, si int, ck *ckpts, mkBound int64, eBound float64) bool {
	if !ck.captured[si] {
		// Defensive: a full run captures every site; never reached.
		return e.runBounded(a, mkBound, eBound, nil)
	}
	// The prefix is shared with the baseline, but the bounds still apply to
	// it: a full bounded run would have aborted at the first prefix finish
	// time >= mkBound (the checkpointed running makespan is their maximum)
	// or the first prefix partial energy >= eBound (partial sums of
	// non-negative terms are non-decreasing, so the checkpointed running
	// energy is their maximum). Rejecting here is exactly the full run's
	// abort.
	if ck.makespan[si] >= mkBound || ck.energy[si] >= eBound {
		return false
	}
	if len(e.opts) == 1 {
		for j := range e.buf {
			e.buf[j] = ck.buf[si*ck.na+j]
		}
		return e.runSingleChain(a[0], si, ck.makespan[si], ck.energy[si], mkBound, eBound, nil, nil)
	}
	h, energy, makespan := ck.restore(si, e)
	return e.loopBounded(a, h, energy, makespan, mkBound, eBound, nil, nil)
}

// initState resets the per-run scratch and seeds the ready heap with every
// chain's head layer.
func (e *evaluator) initState() eventHeap {
	for ci := range e.next {
		e.next[ci] = 0
		e.chainReady[ci] = 0
	}
	for j := range e.accelFree {
		e.accelFree[j] = 0
		e.buf[j] = 0
	}
	h := e.heap[:0]
	for ci := range e.opts {
		// Ascending chain index with equal keys: already heap-ordered.
		h = append(h, event{start: 0, chain: int32(ci)})
	}
	return h
}

// loopBounded drains the ready heap from the evaluator's current state,
// carrying the running energy/makespan (zero for a fresh run, the snapshot
// values for a resume). With ck non-nil it captures a checkpoint before each
// layer's first pop — before, because with a different assignment for that
// layer even the pop's stale-key decision can change.
func (e *evaluator) loopBounded(a Assignment, h eventHeap, energy float64, makespan int64, mkBound int64, eBound float64, placements *[]Placement, ck *ckpts) bool {
	for len(h) > 0 {
		if ck != nil {
			ci := int(h[0].chain)
			if si := e.siteBase[ci] + e.next[ci]; !ck.captured[si] {
				ck.capture(si, e, h, energy, makespan)
			}
		}
		ev := h.pop()
		ci := int(ev.chain)
		li := e.next[ci]
		j := a[ci][li]
		start := e.chainReady[ci]
		if f := e.accelFree[j]; f > start {
			start = f
		}
		if start > ev.start && len(h) > 0 && h[0].less(event{start: start, chain: ev.chain}) {
			// Stale key: the sub-accelerator got busier since this entry was
			// inserted, and another chain is now ahead of it. Reinsert with
			// the true key; keys only increase, so the next up-to-date pop
			// is the schedule's true argmin. (When the updated key still
			// precedes the heap top the layer runs immediately instead.)
			h.push(event{start: start, chain: ev.chain})
			continue
		}
		opt := &e.opts[ci][li][j]
		finish := start + opt.Cycles
		if finish >= mkBound {
			e.heap = h
			return false
		}
		if placements != nil {
			*placements = append(*placements, Placement{
				Chain: ci, Layer: li, Name: e.p.Chains[ci].Layers[li].Name,
				Accel: j, Start: start, End: finish,
			})
		}
		e.chainReady[ci] = finish
		e.accelFree[j] = finish
		if finish > makespan {
			makespan = finish
		}
		energy += opt.EnergyNJ
		if energy >= eBound {
			e.heap = h
			return false
		}
		if opt.BufferBytes > e.buf[j] {
			e.buf[j] = opt.BufferBytes
		}
		if li+1 < len(e.opts[ci]) {
			e.next[ci] = li + 1
			h.push(event{start: finish, chain: ev.chain})
		}
	}
	e.heap = h
	e.makespan = makespan
	e.energy = energy
	return true
}

// runSingleChain is the degenerate single-DNN case: with one chain there is
// never contention, every layer starts exactly when its predecessor
// finishes, and the heap would hold one element — so the simulation is a
// straight accumulation over the chain, starting at layer startLi with the
// running finish time t and energy sum carried in (both zero for a fresh
// run; the snapshot values for a resume, with e.buf restored by the caller).
// A non-nil ck records the per-layer snapshots of a checkpointed full run.
func (e *evaluator) runSingleChain(row []int, startLi int, t int64, energy float64, mkBound int64, eBound float64, placements *[]Placement, ck *ckpts) bool {
	if startLi == 0 {
		for j := range e.buf {
			e.buf[j] = 0
		}
	}
	opts := e.opts[0]
	for li := startLi; li < len(row); li++ {
		j := row[li]
		if ck != nil && !ck.captured[li] {
			// Single-chain snapshot: the running totals plus the buffer
			// maxima; flat site index == layer index == pop order.
			copy(ck.buf[li*ck.na:], e.buf)
			ck.energy[li] = energy
			ck.makespan[li] = t
			ck.captured[li] = true
			ck.order[li] = ck.clock
			ck.clock++
		}
		opt := &opts[li][j]
		finish := t + opt.Cycles
		if finish >= mkBound {
			return false
		}
		if placements != nil {
			*placements = append(*placements, Placement{
				Chain: 0, Layer: li, Name: e.p.Chains[0].Layers[li].Name,
				Accel: j, Start: t, End: finish,
			})
		}
		t = finish
		energy += opt.EnergyNJ
		if energy >= eBound {
			return false
		}
		if opt.BufferBytes > e.buf[j] {
			e.buf[j] = opt.BufferBytes
		}
	}
	e.makespan = t
	e.energy = energy
	return true
}

// result snapshots the last run into a detached Result: the assignment is
// cloned exactly once and the buffer demand copied out of scratch.
func (e *evaluator) result(a Assignment) Result {
	return Result{
		Assign:       a.clone(),
		Makespan:     e.makespan,
		EnergyNJ:     e.energy,
		BufferDemand: append([]int64(nil), e.buf...),
		Feasible:     e.makespan <= e.p.Deadline,
	}
}

// checkAssignment verifies that a is well-shaped for the problem.
func (p Problem) checkAssignment(a Assignment) error {
	if len(a) != len(p.Chains) {
		return fmt.Errorf("sched: assignment has %d chains, want %d", len(a), len(p.Chains))
	}
	for i, row := range a {
		if len(row) != len(p.Chains[i].Layers) {
			return fmt.Errorf("sched: chain %d assignment has %d layers, want %d",
				i, len(row), len(p.Chains[i].Layers))
		}
		for li, j := range row {
			if j < 0 || j >= p.NumAccels {
				return fmt.Errorf("sched: chain %d layer %d assigned to invalid accelerator %d", i, li, j)
			}
		}
	}
	return nil
}
