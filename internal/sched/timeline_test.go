package sched

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

func TestTimelineMatchesEvaluate(t *testing.T) {
	p := twoAccelProblem(1000)
	a := Assignment{{0, 1, 0}, {1, 0}}
	res, placements, err := Timeline(p, a)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Evaluate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan || res.EnergyNJ != res2.EnergyNJ {
		t.Errorf("Timeline result %+v differs from Evaluate %+v", res, res2)
	}
	if err := ValidateTimeline(p, placements); err != nil {
		t.Errorf("invalid timeline: %v", err)
	}
	var maxEnd int64
	for _, pl := range placements {
		if pl.End > maxEnd {
			maxEnd = pl.End
		}
	}
	if maxEnd != res.Makespan {
		t.Errorf("timeline end %d != makespan %d", maxEnd, res.Makespan)
	}
}

// Property: every random assignment produces a structurally valid timeline
// whose end equals the evaluated makespan.
func TestTimelineAlwaysValid(t *testing.T) {
	rng := stats.NewRNG(17)
	f := func(seed uint32) bool {
		_ = seed
		nChains := 1 + rng.Intn(3)
		p := Problem{NumAccels: 1 + rng.Intn(3), Deadline: 1000}
		a := make(Assignment, nChains)
		for c := 0; c < nChains; c++ {
			nl := 1 + rng.Intn(5)
			ch := Chain{Name: "c"}
			row := make([]int, nl)
			for l := 0; l < nl; l++ {
				opts := make([]Option, p.NumAccels)
				for j := range opts {
					opts[j] = Option{Cycles: int64(1 + rng.Intn(40)), EnergyNJ: rng.Float64()}
				}
				ch.Layers = append(ch.Layers, Layer{Name: "l", Options: opts})
				row[l] = rng.Intn(p.NumAccels)
			}
			p.Chains = append(p.Chains, ch)
			a[c] = row
		}
		res, placements, err := Timeline(p, a)
		if err != nil {
			return false
		}
		if ValidateTimeline(p, placements) != nil {
			return false
		}
		var maxEnd int64
		for _, pl := range placements {
			if pl.End > maxEnd {
				maxEnd = pl.End
			}
		}
		return maxEnd == res.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateTimelineCatchesCorruption(t *testing.T) {
	p := twoAccelProblem(1000)
	a := Assignment{{0, 1, 0}, {1, 0}}
	_, placements, err := Timeline(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Overlap corruption: force two placements on accel 0 to collide.
	bad := append([]Placement(nil), placements...)
	moved := false
	for i := range bad {
		if bad[i].Accel == 0 && bad[i].Start > 0 {
			bad[i].Start = 0
			bad[i].End = bad[i].End / 2
			if bad[i].End <= 0 {
				bad[i].End = 1
			}
			moved = true
			break
		}
	}
	if moved {
		if err := ValidateTimeline(p, bad); err == nil {
			t.Error("corrupted timeline accepted")
		}
	}
	// Missing placement.
	if err := ValidateTimeline(p, placements[:len(placements)-1]); err == nil {
		t.Error("incomplete timeline accepted")
	}
	// Duplicate placement.
	if err := ValidateTimeline(p, append(append([]Placement(nil), placements...), placements[0])); err == nil {
		t.Error("duplicated placement accepted")
	}
}

func TestRenderGantt(t *testing.T) {
	p := twoAccelProblem(1000)
	a := Assignment{{0, 0, 0}, {1, 1}}
	_, placements, err := Timeline(p, a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderGantt(&buf, p, placements, 40)
	out := buf.String()
	if !strings.Contains(out, "aic1") || !strings.Contains(out, "aic2") {
		t.Errorf("gantt missing accelerator rows:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("gantt missing chain marks:\n%s", out)
	}
	buf.Reset()
	RenderGantt(&buf, p, nil, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty schedule not handled")
	}
}
