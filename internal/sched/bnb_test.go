package sched

import (
	"math"
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

func TestBnBMatchesExhaustiveSmall(t *testing.T) {
	for _, deadline := range []int64{45, 60, 90, 200} {
		p := twoAccelProblem(deadline)
		opt, err := Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		bnb, complete, err := BranchAndBound(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !complete {
			t.Fatalf("deadline %d: budget exhausted on a tiny instance", deadline)
		}
		if opt.Feasible != bnb.Feasible {
			t.Errorf("deadline %d: feasibility mismatch exhaustive=%v bnb=%v",
				deadline, opt.Feasible, bnb.Feasible)
		}
		if opt.Feasible && math.Abs(opt.EnergyNJ-bnb.EnergyNJ) > 1e-9 {
			t.Errorf("deadline %d: energy mismatch exhaustive=%f bnb=%f",
				deadline, opt.EnergyNJ, bnb.EnergyNJ)
		}
	}
}

// Property: on random small instances BnB equals the exhaustive optimum.
func TestBnBOptimalRandom(t *testing.T) {
	rng := stats.NewRNG(23)
	f := func(seed uint32) bool {
		_ = seed
		p := Problem{NumAccels: 2, Deadline: int64(20 + rng.Intn(120))}
		nChains := 1 + rng.Intn(2)
		for c := 0; c < nChains; c++ {
			nl := 1 + rng.Intn(4)
			ch := Chain{Name: "c"}
			for l := 0; l < nl; l++ {
				ch.Layers = append(ch.Layers, Layer{Name: "l", Options: []Option{
					{Cycles: int64(1 + rng.Intn(50)), EnergyNJ: 1 + 10*rng.Float64()},
					{Cycles: int64(1 + rng.Intn(50)), EnergyNJ: 1 + 10*rng.Float64()},
				}})
			}
			p.Chains = append(p.Chains, ch)
		}
		opt, err := Exhaustive(p)
		if err != nil {
			return false
		}
		bnb, complete, err := BranchAndBound(p, 1<<20)
		if err != nil || !complete {
			return false
		}
		if opt.Feasible != bnb.Feasible {
			return false
		}
		return !opt.Feasible || math.Abs(opt.EnergyNJ-bnb.EnergyNJ) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// BnB must handle instances beyond Exhaustive's size guard.
func TestBnBMediumInstance(t *testing.T) {
	rng := stats.NewRNG(31)
	p := Problem{NumAccels: 3, Deadline: 600}
	for c := 0; c < 2; c++ {
		ch := Chain{Name: "net"}
		for l := 0; l < 14; l++ { // 3^28 assignments: far beyond Exhaustive
			opts := make([]Option, 3)
			for j := range opts {
				opts[j] = Option{Cycles: int64(5 + rng.Intn(60)), EnergyNJ: 1 + 20*rng.Float64()}
			}
			ch.Layers = append(ch.Layers, Layer{Name: "l", Options: opts})
		}
		p.Chains = append(p.Chains, ch)
	}
	if _, err := Exhaustive(p); err == nil {
		t.Fatal("instance unexpectedly small enough for exhaustive search")
	}
	res, complete, err := BranchAndBound(p, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected a feasible schedule at a loose deadline")
	}
	// The heuristic cannot beat an exact result when the search completed.
	h, err := Heuristic(p)
	if err != nil {
		t.Fatal(err)
	}
	if complete && h.Feasible && h.EnergyNJ < res.EnergyNJ-1e-9 {
		t.Errorf("heuristic energy %f beats 'exact' BnB %f", h.EnergyNJ, res.EnergyNJ)
	}
}

func TestBnBBudgetExhaustion(t *testing.T) {
	p := twoAccelProblem(200)
	_, complete, err := BranchAndBound(p, 3)
	if err != nil && complete {
		t.Error("incomplete search must not be reported complete")
	}
	// With a tiny budget the search is incomplete (or errored); both are
	// acceptable, but complete=true with err=nil must mean optimality.
	res, complete, err2 := BranchAndBound(p, 1<<20)
	if err2 != nil || !complete || !res.Feasible {
		t.Errorf("full-budget run should complete feasibly: %v %v", complete, err2)
	}
	_ = err
}

func TestBnBRejectsBadInput(t *testing.T) {
	if _, _, err := BranchAndBound(Problem{}, 100); err == nil {
		t.Error("invalid problem accepted")
	}
	if _, _, err := BranchAndBound(twoAccelProblem(100), 0); err == nil {
		t.Error("zero budget accepted")
	}
}
