package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// cancelProblem builds an instance big enough that a solve takes visible
// time, so cancellation has something to abort.
func cancelProblem(layers, accels int) Problem {
	p := Problem{NumAccels: accels, Deadline: 1 << 40}
	ch := Chain{Name: "c"}
	for i := 0; i < layers; i++ {
		l := Layer{Name: "l"}
		for j := 0; j < accels; j++ {
			l.Options = append(l.Options, Option{
				Cycles:   int64(100 + (i*7+j*13)%97),
				EnergyNJ: float64(50 + (i*11+j*3)%89),
			})
		}
		ch.Layers = append(ch.Layers, l)
	}
	p.Chains = []Chain{ch}
	return p
}

func TestHeuristicCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := HeuristicCtx(ctx, cancelProblem(40, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("HeuristicCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 10 layers x 4 accels = ~1M leaves: far more than one ctxCheckLeaves
	// window, so the poll must fire.
	_, err := ExhaustiveCtx(ctx, cancelProblem(10, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExhaustiveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // an expired deadline must surface as DeadlineExceeded
	start := time.Now()
	_, err := ExhaustiveCtx(ctx, cancelProblem(10, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExhaustiveCtx past deadline: err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("ExhaustiveCtx took %v after an expired deadline", el)
	}
}

// TestExhaustiveCtxParallelCancelled drives the parallel enumeration split
// with a cancelled context (forced via Tuning thresholds).
func TestExhaustiveCtxParallelCancelled(t *testing.T) {
	p := cancelProblem(10, 4)
	p.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExhaustiveCtx(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel ExhaustiveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestHAPCtxUncancelledMatchesHAP(t *testing.T) {
	p := cancelProblem(8, 3)
	e1, r1, err := HAP(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, r2, err := HAPCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || r1.Makespan != r2.Makespan || r1.EnergyNJ != r2.EnergyNJ {
		t.Fatalf("HAPCtx(Background) diverged from HAP: (%v %v) vs (%v %v)", e1, r1, e2, r2)
	}
}

// TestTuningOverridesMatchDefaults verifies the exposed thresholds are
// outcome-preserving: forcing the parallel paths on instances the defaults
// keep sequential must not change the result.
func TestTuningOverridesMatchDefaults(t *testing.T) {
	p := cancelProblem(30, 3)
	base, err := Heuristic(p)
	if err != nil {
		t.Fatal(err)
	}
	forced := p
	forced.Tuning = Tuning{ParallelMoveMin: 1, MaxWorkers: 4}
	got, err := Heuristic(forced)
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != got.Makespan || base.EnergyNJ != got.EnergyNJ {
		t.Fatalf("forced-parallel Heuristic diverged: (%d %v) vs (%d %v)",
			base.Makespan, base.EnergyNJ, got.Makespan, got.EnergyNJ)
	}

	pe := cancelProblem(8, 3) // 3^8 = 6561 leaves
	baseE, err := Exhaustive(pe)
	if err != nil {
		t.Fatal(err)
	}
	forcedE := pe
	forcedE.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
	gotE, err := Exhaustive(forcedE)
	if err != nil {
		t.Fatal(err)
	}
	if baseE.Makespan != gotE.Makespan || baseE.EnergyNJ != gotE.EnergyNJ {
		t.Fatalf("forced-parallel Exhaustive diverged: (%d %v) vs (%d %v)",
			baseE.Makespan, baseE.EnergyNJ, gotE.Makespan, gotE.EnergyNJ)
	}
}
