package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// cancelProblem builds an instance big enough that a solve takes visible
// time, so cancellation has something to abort.
func cancelProblem(layers, accels int) Problem {
	p := Problem{NumAccels: accels, Deadline: 1 << 40}
	ch := Chain{Name: "c"}
	for i := 0; i < layers; i++ {
		l := Layer{Name: "l"}
		for j := 0; j < accels; j++ {
			l.Options = append(l.Options, Option{
				Cycles:   int64(100 + (i*7+j*13)%97),
				EnergyNJ: float64(50 + (i*11+j*3)%89),
			})
		}
		ch.Layers = append(ch.Layers, l)
	}
	p.Chains = []Chain{ch}
	return p
}

func TestHeuristicCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := HeuristicCtx(ctx, cancelProblem(40, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("HeuristicCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 10 layers x 4 accels = ~1M leaves: far more than one ctxCheckLeaves
	// window, so the poll must fire.
	_, err := ExhaustiveCtx(ctx, cancelProblem(10, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExhaustiveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // an expired deadline must surface as DeadlineExceeded
	start := time.Now()
	_, err := ExhaustiveCtx(ctx, cancelProblem(10, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExhaustiveCtx past deadline: err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("ExhaustiveCtx took %v after an expired deadline", el)
	}
}

// TestExhaustiveCtxParallelCancelled drives the parallel enumeration split
// with a cancelled context (forced via Tuning thresholds).
func TestExhaustiveCtxParallelCancelled(t *testing.T) {
	p := cancelProblem(10, 4)
	p.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExhaustiveCtx(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel ExhaustiveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// errAfterCtx reports no error for the first n Err() polls, then a cancel:
// it lands the cancellation at a deterministic point inside the solver's
// move scan, where a timer could not.
type errAfterCtx struct {
	context.Context
	left atomic.Int64
}

func newErrAfterCtx(n int64) *errAfterCtx {
	c := &errAfterCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *errAfterCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestHeuristicCtxCancelMidScanPartialBest cancels HeuristicCtx in the
// middle of a move scan and requires (a) the partial best returned alongside
// the error to be a real, self-consistent schedule of the instance, (b) no
// scan-worker goroutines left behind, and (c) a following solve on the same
// instance to be untouched by the aborted one — no stale checkpoint reuse
// across calls.
func TestHeuristicCtxCancelMidScanPartialBest(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p := cancelProblem(40, 4)
	p.Deadline = 170 * 40 / 2 // tight enough that refinement has real work
	before := runtime.NumGoroutine()
	// Any complete solve polls ctx at least 42 times (entry + round check +
	// one poll per site of the first 40-site scan), so every count below
	// that is guaranteed to cancel mid-solve — most of them mid-scan.
	for _, polls := range []int64{1, 3, 10, 25, 39} {
		for _, tuning := range []Tuning{
			{},                                  // sequential checkpointed scan
			{DisableCheckpoints: true},          // sequential full-sim scan
			{ParallelMoveMin: 1, MaxWorkers: 4}, // parallel scan, per-worker arenas
		} {
			pc := p
			pc.Tuning = tuning
			ctx := newErrAfterCtx(polls)
			res, err := HeuristicCtx(ctx, pc)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("polls=%d tuning=%+v: err = %v, want context.Canceled", polls, tuning, err)
			}
			if res.Assign == nil {
				t.Fatalf("polls=%d tuning=%+v: cancelled solve lost the partial best", polls, tuning)
			}
			// The partial best must be exactly what a fresh evaluation of
			// its assignment reports — not a half-updated scan artifact.
			check, err := Evaluate(pc, res.Assign)
			if err != nil {
				t.Fatal(err)
			}
			if check.Makespan != res.Makespan || check.EnergyNJ != res.EnergyNJ || check.Feasible != res.Feasible {
				t.Fatalf("polls=%d tuning=%+v: partial best (%d %v %v) inconsistent with its assignment (%d %v %v)",
					polls, tuning, res.Makespan, res.EnergyNJ, res.Feasible,
					check.Makespan, check.EnergyNJ, check.Feasible)
			}

			// A subsequent uncancelled solve must be pristine.
			want, err := Heuristic(pc)
			if err != nil {
				t.Fatal(err)
			}
			again, err := HeuristicCtx(context.Background(), pc)
			if err != nil {
				t.Fatal(err)
			}
			if want.Makespan != again.Makespan || want.EnergyNJ != again.EnergyNJ {
				t.Fatalf("polls=%d tuning=%+v: solve after a cancelled one diverged: (%d %v) vs (%d %v)",
					polls, tuning, want.Makespan, want.EnergyNJ, again.Makespan, again.EnergyNJ)
			}
		}
	}
	// Scan workers must all have unwound; allow the runtime a moment to
	// retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after cancelled scans", before, g)
	}
}

// TestBranchAndBoundCtxCancelled covers the unified B&B's cancellation on
// both the sequential and the parallel path.
func TestBranchAndBoundCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BranchAndBoundCtx(ctx, cancelProblem(10, 4), 1<<30); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential BranchAndBoundCtx: err = %v, want context.Canceled", err)
	}
	p := cancelProblem(10, 4)
	p.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
	if _, _, err := BranchAndBoundCtx(ctx, p, 1<<30); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel BranchAndBoundCtx: err = %v, want context.Canceled", err)
	}
}

func TestHAPCtxUncancelledMatchesHAP(t *testing.T) {
	p := cancelProblem(8, 3)
	e1, r1, err := HAP(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, r2, err := HAPCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || r1.Makespan != r2.Makespan || r1.EnergyNJ != r2.EnergyNJ {
		t.Fatalf("HAPCtx(Background) diverged from HAP: (%v %v) vs (%v %v)", e1, r1, e2, r2)
	}
}

// TestTuningOverridesMatchDefaults verifies the exposed thresholds are
// outcome-preserving: forcing the parallel paths on instances the defaults
// keep sequential must not change the result.
func TestTuningOverridesMatchDefaults(t *testing.T) {
	p := cancelProblem(30, 3)
	base, err := Heuristic(p)
	if err != nil {
		t.Fatal(err)
	}
	forced := p
	forced.Tuning = Tuning{ParallelMoveMin: 1, MaxWorkers: 4}
	got, err := Heuristic(forced)
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != got.Makespan || base.EnergyNJ != got.EnergyNJ {
		t.Fatalf("forced-parallel Heuristic diverged: (%d %v) vs (%d %v)",
			base.Makespan, base.EnergyNJ, got.Makespan, got.EnergyNJ)
	}

	pe := cancelProblem(8, 3) // 3^8 = 6561 leaves
	baseE, err := Exhaustive(pe)
	if err != nil {
		t.Fatal(err)
	}
	forcedE := pe
	forcedE.Tuning = Tuning{ParallelExhaustMin: 2, MaxWorkers: 4}
	gotE, err := Exhaustive(forcedE)
	if err != nil {
		t.Fatal(err)
	}
	if baseE.Makespan != gotE.Makespan || baseE.EnergyNJ != gotE.EnergyNJ {
		t.Fatalf("forced-parallel Exhaustive diverged: (%d %v) vs (%d %v)",
			baseE.Makespan, baseE.EnergyNJ, gotE.Makespan, gotE.EnergyNJ)
	}
}
