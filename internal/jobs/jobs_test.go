package jobs

import (
	"context"
	"sync"
	"testing"
	"time"

	"nasaic/pkg/nasaic"
)

func intp(v int) *int { return &v }

// quickSpec is a small deterministic job.
func quickSpec(episodes int) Spec {
	return Spec{Workload: "W3", Episodes: episodes, Seed: 1, Workers: 2}
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s not terminal after %v (status %s)", j.ID, timeout, j.Snapshot().Status)
	}
	return j.Snapshot()
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	if _, err := m.Submit(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := m.Submit(Spec{Workload: "W3", Episodes: -1}); err == nil {
		t.Fatal("negative episodes accepted")
	}
	if _, err := m.Get("job-404"); err != ErrNotFound {
		t.Fatalf("Get unknown: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("job-404"); err != ErrNotFound {
		t.Fatalf("Cancel unknown: err = %v, want ErrNotFound", err)
	}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	j, err := m.Submit(quickSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j, 2*time.Minute)
	if snap.Status != StatusSucceeded {
		t.Fatalf("status %s (err %q), want succeeded", snap.Status, snap.Error)
	}
	if snap.Result == nil || snap.Result.Episodes != 10 {
		t.Fatalf("result missing or wrong episode count: %+v", snap.Result)
	}
	if snap.Episodes != 10 {
		t.Fatalf("snapshot counts %d episodes, want 10", snap.Episodes)
	}
	evs, seq, _ := j.Events(0)
	if seq != 0 || len(evs) != 10 {
		t.Fatalf("events replay: seq=%d len=%d, want 0/10", seq, len(evs))
	}
	for i, e := range evs {
		if e.Episode != i {
			t.Fatalf("event %d carries episode %d", i, e.Episode)
		}
	}
}

func TestJobCancellation(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	j, err := m.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first event, then cancel.
	deadline := time.Now().Add(time.Minute)
	for {
		evs, _, ch := j.Events(0)
		if len(evs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no events after a minute")
		}
		select {
		case <-ch:
		case <-time.After(time.Second):
		}
	}
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j, time.Minute)
	if snap.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", snap.Status)
	}
	if snap.Result == nil {
		t.Fatal("cancelled job lost its partial result")
	}
	if snap.Result.Episodes <= 0 || snap.Result.Episodes >= 100000 {
		t.Fatalf("partial result episodes = %d", snap.Result.Episodes)
	}
}

func TestPendingJobCancelledWhileQueued(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	long, err := m.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(quickSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, queued, time.Minute)
	if snap.Status != StatusCancelled {
		t.Fatalf("queued job status %s, want cancelled", snap.Status)
	}
	if snap.Result != nil {
		t.Fatalf("never-started job has a result")
	}
	if _, err := m.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, long, time.Minute)
}

// TestConcurrentSubmitStreamCancel is the -race exercise: many goroutines
// submit, stream, snapshot and cancel against one manager at once.
func TestConcurrentSubmitStreamCancel(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 2, ShareMemos: true})
	defer m.Close()

	const jobs = 6
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			episodes := 8
			if i%3 == 0 {
				episodes = 100000 // long job: will be cancelled below
			}
			sp := quickSpec(episodes)
			sp.Seed = int64(1 + i%2)
			j, err := m.Submit(sp)
			if err != nil {
				t.Error(err)
				return
			}

			// Stream events concurrently with the run.
			done := make(chan struct{})
			go func() {
				defer close(done)
				from := 0
				for {
					evs, seq, ch := j.Events(from)
					for k, e := range evs {
						if e.Episode != seq+k {
							t.Errorf("job %s: event seq %d carries episode %d", j.ID, seq+k, e.Episode)
							return
						}
					}
					from = seq + len(evs)
					if j.Done() {
						return
					}
					select {
					case <-ch:
					case <-time.After(5 * time.Second):
					}
				}
			}()

			if episodes > 1000 {
				// Cancel the long jobs once they show progress (or straight
				// away if still pending).
				time.Sleep(50 * time.Millisecond)
				if _, err := m.Cancel(j.ID); err != nil {
					t.Error(err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if err := j.Wait(ctx); err != nil {
				t.Errorf("job %s did not finish: %v", j.ID, err)
			}
			<-done
			snap := j.Snapshot()
			if episodes > 1000 && snap.Status != StatusCancelled {
				t.Errorf("long job %s status %s, want cancelled", j.ID, snap.Status)
			}
			if episodes <= 1000 && snap.Status != StatusSucceeded {
				t.Errorf("job %s status %s (err %q), want succeeded", j.ID, snap.Status, snap.Error)
			}
		}(i)
	}
	wg.Wait()

	if got := len(m.List()); got != jobs {
		t.Fatalf("List reports %d jobs, want %d", got, jobs)
	}
}

// TestSharedMemosBitIdentical: two identical jobs through the shared bundle
// return bit-identical best solutions, the second warm-started.
func TestSharedMemosBitIdentical(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, ShareMemos: true})
	defer m.Close()
	run := func() *nasaic.Result {
		j, err := m.Submit(quickSpec(12))
		if err != nil {
			t.Fatal(err)
		}
		snap := waitTerminal(t, j, 2*time.Minute)
		if snap.Status != StatusSucceeded {
			t.Fatalf("status %s: %s", snap.Status, snap.Error)
		}
		return snap.Result
	}
	a, b := run(), run()
	if a.Best == nil || b.Best == nil {
		t.Fatal("no best solution")
	}
	if a.Best.WeightedAccuracy != b.Best.WeightedAccuracy ||
		a.Best.Design.String() != b.Best.Design.String() ||
		a.Best.LatencyCycles != b.Best.LatencyCycles ||
		a.Best.EnergyNJ != b.Best.EnergyNJ {
		t.Fatalf("repeat job diverged:\n%+v\nvs\n%+v", a.Best, b.Best)
	}
	if b.Stats.Trainings != 0 {
		t.Fatalf("second job retrained %d architectures", b.Stats.Trainings)
	}
}

func TestManagerClose(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	j, err := m.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if !j.Done() {
		t.Fatal("Close returned with a live job")
	}
	if _, err := m.Submit(quickSpec(5)); err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestHistoryEviction(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxHistory: 2})
	defer m.Close()
	var last *Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Spec{Workload: "W3", Episodes: 2, Seed: 1, Workers: 1, HWSteps: intp(2)})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j, time.Minute)
		last = j
	}
	if got := len(m.List()); got > 3 {
		t.Fatalf("history holds %d jobs, want <= 3", got)
	}
	if _, err := m.Get(last.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}
