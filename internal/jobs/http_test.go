package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nasaic/pkg/nasaic"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	id    string
	data  []byte
}

// readSSE parses frames until the stream ends or maxFrames arrive.
func readSSE(t *testing.T, r *bufio.Reader, maxFrames int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{}
	for len(frames) < maxFrames {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if len(cur.data) > 0 || cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		}
	}
	return frames
}

func postJob(t *testing.T, url string, spec Spec) Snapshot {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func getJob(t *testing.T, url, id string) Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestHTTPEndToEnd is the acceptance smoke: submit a QuickBudget-sized job,
// stream its episode events over SSE to completion, and require the final
// solution to be bit-identical to the same exploration run directly through
// the public API (the exact code path behind cmd/nasaic).
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickBudget e2e skipped in -short mode")
	}
	episodes := nasaic.QuickBudget().Episodes // 150: the QuickBudget β

	m := NewManager(Options{MaxConcurrent: 2, ShareMemos: true})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Health endpoint.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr)
	}
	hr.Body.Close()

	snap := postJob(t, srv.URL, Spec{Workload: "W3", Episodes: episodes, Seed: 1})

	// Stream the full SSE feed.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	frames := readSSE(t, bufio.NewReader(resp.Body), episodes+2)

	if len(frames) != episodes+1 {
		t.Fatalf("got %d SSE frames, want %d episodes + done", len(frames), episodes)
	}
	for i, f := range frames[:episodes] {
		if f.event != "episode" {
			t.Fatalf("frame %d is %q, want episode", i, f.event)
		}
		ev, err := DecodeEvent(f.data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ev.Episode != i || f.id != fmt.Sprint(i) {
			t.Fatalf("frame %d carries episode %d (id %s)", i, ev.Episode, f.id)
		}
	}
	doneFrame := frames[episodes]
	if doneFrame.event != "done" {
		t.Fatalf("last frame is %q, want done", doneFrame.event)
	}
	// The done id is the stable episode count: a client that stores it and
	// reconnects must get the same done frame under the same id, not a
	// second done under the next live sequence number.
	if doneFrame.id != fmt.Sprint(episodes) {
		t.Fatalf("done id %s, want stable %d", doneFrame.id, episodes)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", doneFrame.id)
	reconn, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	redone := readSSE(t, bufio.NewReader(reconn.Body), 2)
	reconn.Body.Close()
	if len(redone) != 1 || redone[0].event != "done" || redone[0].id != doneFrame.id {
		t.Fatalf("reconnect after done saw %+v, want one done with id %s", redone, doneFrame.id)
	}
	var final Snapshot
	if err := json.Unmarshal(doneFrame.data, &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusSucceeded {
		t.Fatalf("final status %s (%s)", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.Best == nil {
		t.Fatal("final snapshot missing result")
	}

	// The same exploration through the public API (cmd/nasaic's code path)
	// must be bit-identical.
	want, err := nasaic.Run(context.Background(),
		nasaic.WithWorkload("W3"),
		nasaic.WithEpisodes(episodes),
		nasaic.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := final.Result.Best
	if got.Design.String() != want.Best.Design.String() ||
		got.WeightedAccuracy != want.Best.WeightedAccuracy ||
		got.LatencyCycles != want.Best.LatencyCycles ||
		got.EnergyNJ != want.Best.EnergyNJ ||
		got.AreaUM2 != want.Best.AreaUM2 {
		t.Fatalf("server job diverged from direct run:\n%+v\nvs\n%+v", got, want.Best)
	}
	if len(final.Result.Explored) != len(want.Explored) {
		t.Fatalf("explored count %d vs %d", len(final.Result.Explored), len(want.Explored))
	}

	// GET view agrees with the done frame.
	viaGet := getJob(t, srv.URL, snap.ID)
	if viaGet.Status != StatusSucceeded || viaGet.Result.Best.WeightedAccuracy != got.WeightedAccuracy {
		t.Fatalf("GET snapshot diverged: %+v", viaGet)
	}
}

// TestHTTPReplayGapReset pins the event-ring eviction contract: a stream
// whose resume point predates the bounded ring's start must begin with an
// explicit `reset` frame naming the first retained sequence number (and how
// many events were lost) instead of silently snapping forward, and the
// terminal done frame must carry the stable episode-count id on every
// reconnect.
func TestHTTPReplayGapReset(t *testing.T) {
	const episodes, ring = 9, 4
	m := NewManager(Options{MaxConcurrent: 1, EventBuffer: ring})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	snap := postJob(t, srv.URL, Spec{Workload: "W3", Episodes: episodes, Seed: 1, Workers: 1})
	j, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A fresh connect (no Last-Event-ID, resume point 0) after the ring
	// evicted episodes 0..4: reset frame first, then the retained tail, then
	// the stable done frame.
	stream := func(lastEventID string, maxFrames int) []sseFrame {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+snap.ID+"/events", nil)
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return readSSE(t, bufio.NewReader(resp.Body), maxFrames)
	}

	frames := stream("", ring+3)
	if len(frames) != ring+2 {
		t.Fatalf("got %d frames, want reset + %d episodes + done", len(frames), ring)
	}
	first := episodes - ring
	if frames[0].event != "reset" {
		t.Fatalf("first frame is %q, want reset", frames[0].event)
	}
	var rf struct {
		FirstSeq int `json:"first_seq"`
		Missed   int `json:"missed"`
	}
	if err := json.Unmarshal(frames[0].data, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.FirstSeq != first || rf.Missed != first {
		t.Fatalf("reset frame %+v, want first_seq=%d missed=%d", rf, first, first)
	}
	if frames[0].id != fmt.Sprint(first-1) {
		t.Fatalf("reset id %s, want %d (a reconnect from it resumes at first_seq)", frames[0].id, first-1)
	}
	for i, f := range frames[1 : 1+ring] {
		ev, err := DecodeEvent(f.data)
		if err != nil {
			t.Fatal(err)
		}
		if f.event != "episode" || ev.Episode != first+i || f.id != fmt.Sprint(first+i) {
			t.Fatalf("frame %d: %s episode %d id %s, want episode %d", i, f.event, ev.Episode, f.id, first+i)
		}
	}
	done := frames[1+ring]
	if done.event != "done" || done.id != fmt.Sprint(episodes) {
		t.Fatalf("done frame %q id %s, want done id %d", done.event, done.id, episodes)
	}

	// A reconnect whose Last-Event-ID is still retained must NOT see a
	// reset, and the done id must be unchanged.
	frames = stream(fmt.Sprint(episodes-2), 3)
	if len(frames) != 2 || frames[0].event != "episode" || frames[0].id != fmt.Sprint(episodes-1) ||
		frames[1].event != "done" || frames[1].id != fmt.Sprint(episodes) {
		t.Fatalf("in-ring reconnect saw %+v, want episode %d + done %d", frames, episodes-1, episodes)
	}

	// A client that stored the done id and reconnects gets the same done
	// frame under the same id — not a second one under a shifted id.
	frames = stream(fmt.Sprint(episodes), 2)
	if len(frames) != 1 || frames[0].event != "done" || frames[0].id != fmt.Sprint(episodes) {
		t.Fatalf("post-done reconnect saw %+v, want a single done with id %d", frames, episodes)
	}

	// An evicted reconnect (Last-Event-ID inside the lost range) sees the
	// reset with the right missed count.
	frames = stream("1", ring+3)
	if len(frames) != ring+2 || frames[0].event != "reset" {
		t.Fatalf("evicted reconnect: %d frames, first %q; want reset + %d episodes + done",
			len(frames), frames[0].event, ring)
	}
	if err := json.Unmarshal(frames[0].data, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.FirstSeq != first || rf.Missed != first-2 {
		t.Fatalf("evicted reconnect reset %+v, want first_seq=%d missed=%d", rf, first, first-2)
	}
}

// TestHTTPCancelMidRun submits a long job, streams a few events, cancels via
// DELETE, and expects the SSE stream to end with a cancelled done frame
// carrying the partial result.
func TestHTTPCancelMidRun(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	snap := postJob(t, srv.URL, Spec{Workload: "W3", Episodes: 100000, Seed: 1})

	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// Read three episode frames to prove the run is streaming, then cancel.
	first := readSSE(t, br, 3)
	if len(first) != 3 {
		t.Fatalf("got %d initial frames", len(first))
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+snap.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d", dr.StatusCode)
	}

	// Drain to the done frame; the stream must terminate.
	deadline := time.Now().Add(time.Minute)
	var done *sseFrame
	for done == nil {
		if time.Now().After(deadline) {
			t.Fatal("stream did not terminate after cancel")
		}
		frames := readSSE(t, br, 64)
		if len(frames) == 0 {
			break
		}
		for i := range frames {
			if frames[i].event == "done" {
				done = &frames[i]
				break
			}
		}
	}
	if done == nil {
		t.Fatal("no done frame after cancel")
	}
	var final Snapshot
	if err := json.Unmarshal(done.data, &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("final status %s, want cancelled", final.Status)
	}
	if final.Result == nil || final.Result.Episodes <= 0 {
		t.Fatalf("cancelled job lost its partial result: %+v", final.Result)
	}
}

// TestHTTPErrors covers the JSON error envelope.
func TestHTTPErrors(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"W3","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing workload: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/job-404")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || apiErr.Error == "" {
		t.Fatalf("unknown job: status %d body %+v", resp.StatusCode, apiErr)
	}
}

// TestHTTPList covers the listing endpoint.
func TestHTTPList(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	a := postJob(t, srv.URL, Spec{Workload: "W3", Episodes: 2, Seed: 1, Workers: 1})
	b := postJob(t, srv.URL, Spec{Workload: "W3", Episodes: 2, Seed: 2, Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v", list)
	}
}
