package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nasaic/internal/faultfs"
	"nasaic/internal/journal"
	"nasaic/pkg/nasaic"
)

// encodeEvents collapses a job's full ring into canonical JSON lines for
// bit-identical comparison across restarts and re-executions.
func encodeEvents(t *testing.T, j *Job) []string {
	t.Helper()
	evs, seq, _ := j.Events(0)
	out := make([]string, 0, len(evs))
	for i, ev := range evs {
		raw, err := nasaic.EncodeEvent(ev)
		if err != nil {
			t.Fatalf("encode event %d: %v", seq+i, err)
		}
		out = append(out, fmt.Sprintf("%d %s", seq+i, raw))
	}
	return out
}

func sameBest(a, b *nasaic.Solution) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Design.String() == b.Design.String() &&
		a.WeightedAccuracy == b.WeightedAccuracy &&
		a.LatencyCycles == b.LatencyCycles &&
		a.EnergyNJ == b.EnergyNJ &&
		a.AreaUM2 == b.AreaUM2
}

// TestRecoveryRestoresTerminalJobs is the restart round trip: a manager over
// a datadir finishes one job and cancels another, a second manager over the
// same datadir must restore both — statuses, results, full event rings (so
// SSE Last-Event-ID replay spans the restart) — and continue the job ID
// sequence instead of reissuing used IDs.
func TestRecoveryRestoresTerminalJobs(t *testing.T) {
	dir := t.TempDir()

	m1 := NewManager(Options{MaxConcurrent: 2, DataDir: dir, Logf: t.Logf})
	done, err := m1.Submit(quickSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	snapDone := waitTerminal(t, done, 2*time.Minute)
	if snapDone.Status != StatusSucceeded {
		t.Fatalf("job 1: status %s (%s)", snapDone.Status, snapDone.Error)
	}
	wantEvents := encodeEvents(t, done)

	victim, err := m1.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, victim, time.Minute)
	if _, err := m1.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	snapVictim := waitTerminal(t, victim, time.Minute)
	if snapVictim.Status != StatusCancelled {
		t.Fatalf("job 2: status %s, want cancelled", snapVictim.Status)
	}
	m1.Close()

	m2 := NewManager(Options{MaxConcurrent: 2, DataDir: dir, Logf: t.Logf})
	defer m2.Close()

	r1, err := m2.Get(done.ID)
	if err != nil {
		t.Fatalf("restored job %s missing: %v", done.ID, err)
	}
	rs := r1.Snapshot()
	if rs.Status != StatusSucceeded || rs.Episodes != 10 {
		t.Fatalf("restored snapshot: %+v", rs)
	}
	if rs.Result == nil || !sameBest(rs.Result.Best, snapDone.Result.Best) {
		t.Fatalf("restored result diverged:\n%+v\nvs\n%+v", rs.Result, snapDone.Result)
	}
	gotEvents := encodeEvents(t, r1)
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("restored %d events, want %d", len(gotEvents), len(wantEvents))
	}
	for i := range wantEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("restored event %d diverged:\n%s\nvs\n%s", i, gotEvents[i], wantEvents[i])
		}
	}

	r2, err := m2.Get(victim.ID)
	if err != nil {
		t.Fatalf("restored job %s missing: %v", victim.ID, err)
	}
	if st := r2.Snapshot().Status; st != StatusCancelled {
		t.Fatalf("restored cancelled job has status %s", st)
	}

	// SSE Last-Event-ID replay across the restart: resuming from id 4 must
	// replay exactly episodes 5..9 and the stable done frame.
	srv := httptest.NewServer(NewHandler(m2))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+done.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, bufio.NewReader(resp.Body), 7)
	resp.Body.Close()
	if len(frames) != 6 {
		t.Fatalf("replay after restart: %d frames, want 5 episodes + done", len(frames))
	}
	for i, f := range frames[:5] {
		if f.event != "episode" || f.id != fmt.Sprint(5+i) {
			t.Fatalf("replay frame %d: event %q id %s, want episode %d", i, f.event, f.id, 5+i)
		}
	}
	if frames[5].event != "done" || frames[5].id != "10" {
		t.Fatalf("replay terminal frame: %+v", frames[5])
	}

	// New submissions continue the journaled ID sequence.
	next, err := m2.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "job-3" {
		t.Fatalf("post-restart submission got %s, want job-3", next.ID)
	}
	waitTerminal(t, next, time.Minute)
}

// TestRecoveryReExecutesInterrupted crashes the filesystem right after a
// submission is journaled and verifies the next manager re-executes the job
// from its spec to the bit-identical result (events included), and that a
// third manager then restores the re-executed run as directly terminal —
// the duplicate records the re-run journaled must reduce idempotently.
func TestRecoveryReExecutesInterrupted(t *testing.T) {
	const episodes = 8

	// Reference: the same spec straight through the manager, memory-only.
	m0 := NewManager(Options{})
	ref, err := m0.Submit(quickSpec(episodes))
	if err != nil {
		t.Fatal(err)
	}
	refSnap := waitTerminal(t, ref, 2*time.Minute)
	if refSnap.Status != StatusSucceeded {
		t.Fatalf("reference run: %s (%s)", refSnap.Status, refSnap.Error)
	}
	refEvents := encodeEvents(t, ref)
	m0.Close()

	mem := faultfs.NewMem(faultfs.Faults{})
	m1 := NewManager(Options{DataDir: "/data", FS: mem})
	j1, err := m1.Submit(quickSpec(episodes))
	if err != nil {
		t.Fatal(err)
	}
	// The submitted record is fsynced before Submit returns; power fails now.
	mem.Crash()
	m1.Close() // post-crash journal writes fail silently; state is on disk only

	mem.Reboot()
	m2 := NewManager(Options{DataDir: "/data", FS: mem, Logf: t.Logf})
	rec, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatalf("interrupted job %s not recovered: %v", j1.ID, err)
	}
	snap := waitTerminal(t, rec, 2*time.Minute)
	if snap.Status != StatusSucceeded {
		t.Fatalf("re-executed job: %s (%s)", snap.Status, snap.Error)
	}
	if !sameBest(snap.Result.Best, refSnap.Result.Best) {
		t.Fatalf("re-execution diverged from reference:\n%+v\nvs\n%+v",
			snap.Result.Best, refSnap.Result.Best)
	}
	gotEvents := encodeEvents(t, rec)
	if len(gotEvents) != len(refEvents) {
		t.Fatalf("re-execution emitted %d events, want %d", len(gotEvents), len(refEvents))
	}
	for i := range refEvents {
		if gotEvents[i] != refEvents[i] {
			t.Fatalf("re-executed event %d diverged:\n%s\nvs\n%s", i, gotEvents[i], refEvents[i])
		}
	}
	m2.Close()

	// Third incarnation: the re-run journaled submitted/running/events again
	// under the same IDs and sequence numbers; the reduction must be the
	// terminal job, not a second execution.
	m3 := NewManager(Options{DataDir: "/data", FS: mem, Logf: t.Logf})
	defer m3.Close()
	r3, err := m3.Get(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	s3 := r3.Snapshot()
	if s3.Status != StatusSucceeded || !sameBest(s3.Result.Best, refSnap.Result.Best) {
		t.Fatalf("third incarnation diverged: %+v", s3)
	}
	if got := encodeEvents(t, r3); len(got) != len(refEvents) {
		t.Fatalf("third incarnation restored %d events, want %d", len(got), len(refEvents))
	}
}

// TestRecoveryCancelledMidRunSettles covers the journal shape where a cancel
// request landed but the process died before the terminal record: recovery
// must settle the job as cancelled (keeping its events) instead of
// re-executing it to completion, and must journal the settlement so the next
// recovery restores it directly.
func TestRecoveryCancelledMidRunSettles(t *testing.T) {
	mem := faultfs.NewMem(faultfs.Faults{})
	jn, err := journal.Open("/data/journal", journal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(quickSpec(100000))
	ev0, _ := nasaic.EncodeEvent(nasaic.Event{Episode: 0, Reward: 0.5})
	ev1, _ := nasaic.EncodeEvent(nasaic.Event{Episode: 1, Reward: 0.75, Feasible: true})
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-1", Time: time.Now(), Spec: spec},
		{Type: journal.TypeRunning, Job: "job-1", Time: time.Now()},
		{Type: journal.TypeEvent, Job: "job-1", Seq: 0, Event: ev0},
		{Type: journal.TypeEvent, Job: "job-1", Seq: 1, Event: ev1},
		{Type: journal.TypeCancel, Job: "job-1"},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	m1 := NewManager(Options{DataDir: "/data", FS: mem, Logf: t.Logf})
	j, err := m1.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if snap.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled (not re-executed)", snap.Status)
	}
	if snap.Error == "" {
		t.Fatal("settled cancellation lost its error")
	}
	evs, seq, _ := j.Events(0)
	if seq != 0 || len(evs) != 2 || evs[1].Reward != 0.75 || !evs[1].Feasible {
		t.Fatalf("settled job lost events: seq %d, %+v", seq, evs)
	}
	m1.Close()

	// The settlement was journaled: the next recovery sees a terminal job.
	m2 := NewManager(Options{DataDir: "/data", FS: mem, Logf: t.Logf})
	defer m2.Close()
	j2, err := m2.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Snapshot().Status; st != StatusCancelled {
		t.Fatalf("second recovery: status %s, want cancelled", st)
	}
	if evs, _, _ := j2.Events(0); len(evs) != 2 {
		t.Fatalf("second recovery lost events: %d", len(evs))
	}
}

// TestRecoveryDropsUndecodableSpec pins degradation over refusal: a journal
// whose job spec does not decode must not wedge the manager — the job is
// dropped with a warning and everything else recovers.
func TestRecoveryDropsUndecodableSpec(t *testing.T) {
	mem := faultfs.NewMem(faultfs.Faults{})
	jn, err := journal.Open("/data/journal", journal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(quickSpec(2))
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-1", Spec: json.RawMessage(`{"workload":42}`)},
		{Type: journal.TypeSubmitted, Job: "job-2", Spec: good},
		{Type: journal.TypeFinished, Job: "job-2", Status: "failed", Error: "boom"},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jn.Close()

	var warned bool
	m := NewManager(Options{DataDir: "/data", FS: mem, Logf: func(format string, args ...any) {
		warned = true
		t.Logf(format, args...)
	}})
	defer m.Close()
	if _, err := m.Get("job-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("undecodable job resurrected: err = %v", err)
	}
	if !warned {
		t.Fatal("dropping a job must warn through Logf")
	}
	j2, err := m.Get("job-2")
	if err != nil {
		t.Fatal(err)
	}
	snap := j2.Snapshot()
	if snap.Status != StatusFailed || snap.Error != "boom" {
		t.Fatalf("job-2: %+v", snap)
	}
}

// TestSubmitCloseHammer races submissions against Close under the race
// detector: every Submit must either complete fully (a journaled, terminal
// job) or fail with the clean ErrClosed sentinel — never a panic, a wedged
// waitgroup or a half-registered job.
func TestSubmitCloseHammer(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 2, DataDir: t.TempDir(), Logf: t.Logf})

	const workers = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted []*Job
	)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				j, err := m.Submit(quickSpec(1))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Submit after close: %v, want ErrClosed", err)
					}
					return
				}
				mu.Lock()
				submitted = append(submitted, j)
				mu.Unlock()
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	m.Close()
	wg.Wait()

	// Submissions accepted before Close must all be terminal now (Close
	// drains), and Submit must keep returning the sentinel afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, j := range submitted {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s not terminal after Close: %v", j.ID, err)
		}
	}
	if _, err := m.Submit(quickSpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	t.Logf("hammer: %d submissions accepted before close", len(submitted))
}

// TestHTTPSubmitAfterClose pins the HTTP mapping of the sentinel: a closed
// manager answers POST /v1/jobs with 503, not a hang or a 500.
func TestHTTPSubmitAfterClose(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	m.Close()

	body, _ := json.Marshal(quickSpec(1))
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after Close: status %d, want 503", resp.StatusCode)
	}
}
