package jobs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitRunning blocks until the job holds a concurrency slot (so it no
// longer counts against MaxPending).
func waitRunning(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j.Snapshot().Status == StatusRunning {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not running after %v (status %s)", j.ID, timeout, j.Snapshot().Status)
}

func TestMaxPendingBoundsQueue(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxPending: 1})
	defer m.Close()

	long, err := m.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, long, time.Minute) // holds the only slot; queue empty

	queued, err := m.Submit(quickSpec(10))
	if err != nil {
		t.Fatalf("first queued submission rejected: %v", err)
	}
	if _, err := m.Submit(quickSpec(10)); !errors.Is(err, ErrTooManyPending) {
		t.Fatalf("over-bound submission: err = %v, want ErrTooManyPending", err)
	}

	// Cancelling the queued job frees its pending slot.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, queued, time.Minute)
	if _, err := m.Submit(quickSpec(10)); err != nil {
		t.Fatalf("submission after queue drained: %v", err)
	}

	if _, err := m.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPSubmitTooManyPending(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxPending: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	snap := postJob(t, srv.URL, quickSpec(100000))
	long, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, long, time.Minute)
	postJob(t, srv.URL, quickSpec(10)) // fills the pending queue

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"W3","episodes":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound POST: status %d, want 429", resp.StatusCode)
	}
}

// A submit body must be exactly one JSON document: trailing data after the
// spec is a 400, while trailing whitespace stays valid.
func TestHTTPSubmitRejectsTrailingData(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	for _, body := range []string{
		`{"workload":"W3","episodes":1} {"workload":"W1"}`,
		`{"workload":"W3","episodes":1}[]`,
		`{"workload":"W3","episodes":1}null`,
		`{"workload":"W3","episodes":1}garbage`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// No job may have been registered by the rejected bodies.
	if n := len(m.List()); n != 0 {
		t.Fatalf("%d jobs registered by rejected submissions", n)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader("{\"workload\":\"W3\",\"episodes\":2}\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trailing whitespace: status %d, want 202", resp.StatusCode)
	}
}

// A manager with a cache directory persists the shared bundle on Close, and
// a successor manager starts warm from those files.
func TestManagerWarmTierAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MaxConcurrent: 1, ShareMemos: true, CacheDir: dir}

	m1 := NewManager(opts)
	j, err := m1.Submit(quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, j, 2*time.Minute)
	if first.Status != StatusSucceeded {
		t.Fatalf("first job: status %s (err %q)", first.Status, first.Error)
	}
	m1.Close() // flushes the warm tier

	files, err := filepath.Glob(filepath.Join(dir, "*.cache"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no warm-tier snapshots after Close (err=%v)", err)
	}

	m2 := NewManager(opts) // loads the warm tier at construction
	defer m2.Close()
	j2, err := m2.Submit(quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	second := waitTerminal(t, j2, 2*time.Minute)
	if second.Status != StatusSucceeded {
		t.Fatalf("second job: status %s (err %q)", second.Status, second.Error)
	}
	// Bit-identity across the restart: same spec, same outcome.
	if first.Result == nil || second.Result == nil ||
		first.Result.Best == nil || second.Result.Best == nil {
		t.Fatal("missing results")
	}
	if first.Result.Best.WeightedAccuracy != second.Result.Best.WeightedAccuracy ||
		first.Result.Best.LatencyCycles != second.Result.Best.LatencyCycles {
		t.Fatalf("restarted run diverged: %+v != %+v", second.Result.Best, first.Result.Best)
	}
	// The warm start shows up as strictly fewer fresh hardware evaluations.
	if second.Result.Stats.HWEvals >= first.Result.Stats.HWEvals {
		t.Errorf("warm job computed %d hardware evaluations, cold did %d — no warm start",
			second.Result.Stats.HWEvals, first.Result.Stats.HWEvals)
	}
}
