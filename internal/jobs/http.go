package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"nasaic/internal/tenant"
	"nasaic/pkg/nasaic"
)

// NewHandler exposes the manager as cmd/nasaicd's HTTP/JSON API:
//
//	POST   /v1/jobs            submit a Spec, returns 202 + the job snapshot
//	GET    /v1/jobs            list retained jobs
//	GET    /v1/jobs/{id}       one job's snapshot (result once terminal)
//	GET    /v1/jobs/{id}/events  SSE stream of per-episode events
//	DELETE /v1/jobs/{id}       cancel, returns the snapshot at call time
//	GET    /healthz            liveness probe
//
// The events stream replays the job's buffered events (from Last-Event-ID,
// when the client reconnects) and then follows live ones; it ends with a
// terminal `done` event carrying the final snapshot. When the requested
// resume point has already been evicted from the job's bounded event ring, a
// `reset` frame announcing the first retained sequence number precedes the
// replay, so slow clients see the gap instead of a silent snap-forward. The
// done frame's id is the job's total episode count — stable across
// reconnects, unlike a live sequence number.
//
// Streams are defended in both directions: an idle stream (a pending job, a
// quiet phase) carries SSE comment heartbeats so proxies and clients can
// tell a live connection from a dead one, and every write runs under a
// deadline so a stalled reader (full TCP buffers, a wedged client) tears the
// stream down instead of pinning the handler goroutine forever.
// Every route except /healthz runs behind the tenant auth middleware; with a
// nil registry (NewHandler, or -tenants unset) authentication is off and
// every request acts as the anonymous admin tenant.
func NewHandler(m *Manager) http.Handler {
	return NewAuthHandler(m, nil)
}

// NewAuthHandler is NewHandler with API-key authentication: every /v1 request
// must carry `Authorization: Bearer <key>` matching a tenant in the registry.
// A missing or malformed credential is 401 (with a WWW-Authenticate
// challenge); a well-formed key that matches no tenant is 403. Authenticated
// requests are scoped to the tenant: it sees, streams and cancels only its
// own jobs (admin tenants see all), and its submissions count against its
// quotas. Key comparison is constant-time over the whole registry.
func NewAuthHandler(m *Manager, reg *tenant.Registry) http.Handler {
	return newServer(m, reg, handlerConfig{}).handler()
}

// handlerConfig tunes the SSE defenses; zero values select production
// defaults (tests shrink them to force timeouts quickly).
type handlerConfig struct {
	// heartbeat is the idle interval between SSE comment frames. <=0
	// selects 15s.
	heartbeat time.Duration
	// writeTimeout is the per-write deadline on the stream; a reader that
	// cannot drain a write within it is disconnected. <=0 selects 30s.
	writeTimeout time.Duration
	// hbPad pads heartbeat comments to this many bytes (test-only: filling
	// kernel socket buffers with tiny comments would take far too long).
	hbPad int
}

func (c handlerConfig) heartbeatInterval() time.Duration {
	if c.heartbeat > 0 {
		return c.heartbeat
	}
	return 15 * time.Second
}

func (c handlerConfig) writeDeadline() time.Duration {
	if c.writeTimeout > 0 {
		return c.writeTimeout
	}
	return 30 * time.Second
}

func newServer(m *Manager, reg *tenant.Registry, cfg handlerConfig) *server {
	return &server{m: m, reg: reg, cfg: cfg}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.auth(s.submit))
	mux.HandleFunc("GET /v1/jobs", s.auth(s.list))
	mux.HandleFunc("GET /v1/jobs/{id}", s.auth(s.get))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.auth(s.events))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.auth(s.cancel))
	// The liveness probe stays unauthenticated: orchestrators must be able
	// to health-check the daemon without holding a tenant key.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type server struct {
	m   *Manager
	reg *tenant.Registry // nil: auth off, everyone is the anonymous admin
	cfg handlerConfig
	// streams counts the live SSE handlers — the observable that proves a
	// stalled reader was actually torn down rather than leaked.
	streams atomic.Int64
}

// tenantKey carries the authenticated tenant through the request context.
type tenantKey struct{}

// auth authenticates the request's bearer key against the registry and
// stashes the resolved tenant in the context. Missing or malformed
// credentials are 401 with a WWW-Authenticate challenge; a syntactically
// fine key that matches no tenant is 403. With a nil registry every request
// resolves to the anonymous tenant and nothing is rejected.
func (s *server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tn, err := s.reg.Authenticate(tenant.BearerKey(r.Header.Get("Authorization")))
		if err != nil {
			if errors.Is(err, tenant.ErrNoKey) {
				w.Header().Set("WWW-Authenticate", `Bearer realm="nasaicd"`)
				writeErr(w, http.StatusUnauthorized, err)
				return
			}
			writeErr(w, http.StatusForbidden, err)
			return
		}
		next(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	}
}

// caller returns the request's authenticated tenant (nil only when a route
// bypassed the auth middleware, which no /v1 route does).
func caller(r *http.Request) *tenant.Tenant {
	tn, _ := r.Context().Value(tenantKey{}).(*tenant.Tenant)
	return tn
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid job spec: %w", err))
		return
	}
	// The body must be exactly one JSON spec: trailing data (a second
	// document, stray tokens) is a malformed request, not something to
	// silently ignore.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid job spec: trailing data after JSON body"))
		return
	}
	j, err := s.m.SubmitAs(caller(r), spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrTooManyPending):
			code = http.StatusTooManyRequests
			var qe *QuotaError
			if errors.As(err, &qe) && qe.RetryAfter > 0 {
				secs := int(qe.RetryAfter.Round(time.Second) / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
		}
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.ListFor(caller(r))
	out := make([]Snapshot, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.m.GetFor(caller(r), r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.CancelFor(caller(r), r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// events streams the job's episode events as Server-Sent Events.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)
	// Every write on the stream runs under its own deadline: a reader that
	// stops draining (wedged client, full socket buffers) fails the write
	// instead of blocking this goroutine for the job's lifetime. Deadline
	// support depends on the server; SetWriteDeadline errors are ignored and
	// leave the seed behavior (no deadline).
	rc := http.NewResponseController(w)
	armWrite := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.cfg.writeDeadline())) }
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	armWrite()
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	from := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		// A bogus negative id must not push the resume point below 0: the
		// gap arithmetic would count phantom events in the reset frame.
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			from = n + 1
		}
	}

	ctx := r.Context()
	// emit writes one batch of replayed/live events, prefixing a `reset`
	// frame whenever the ring start moved past the resume point (seq > from):
	// the events [from, seq) were evicted, and a client must learn it lost
	// them rather than silently snap forward. The reset frame's id is seq-1,
	// so a client that reconnects with it resumes exactly at the announced
	// first retained event.
	emit := func(evs []nasaic.Event, seq int) bool {
		armWrite()
		if seq > from {
			if err := writeSSE(w, "reset", seq-1, resetFrame{FirstSeq: seq, Missed: seq - from}); err != nil {
				return false
			}
		}
		for i, ev := range evs {
			if err := writeSSE(w, "episode", seq+i, ev); err != nil {
				return false
			}
		}
		if seq+len(evs) > from {
			flusher.Flush()
			from = seq + len(evs)
		}
		return true
	}
	// Idle heartbeats: SSE comment frames that cross the wire but never
	// reach the client's event handlers. They keep intermediaries from
	// reaping a quiet stream as dead, and — combined with the write deadline
	// — actively probe for readers that went away without closing.
	heartbeat := time.NewTicker(s.cfg.heartbeatInterval())
	defer heartbeat.Stop()
	pad := ""
	if s.cfg.hbPad > 0 {
		pad = strings.Repeat("x", s.cfg.hbPad)
	}
	for {
		evs, seq, changed := j.Events(from)
		if !emit(evs, seq) {
			return
		}
		if j.Done() {
			// Re-read in case events landed between the batch and the
			// status check, then finish with the terminal snapshot. The
			// done id is the total episode count, which no longer changes —
			// a reconnect that stored it replays nothing and receives the
			// same done frame under the same id.
			snap := j.Snapshot()
			if evs, seq, _ := j.Events(from); len(evs) > 0 {
				if !emit(evs, seq) {
					return
				}
				snap = j.Snapshot()
			}
			armWrite()
			_ = writeSSE(w, "done", snap.Episodes, snap)
			flusher.Flush()
			return
		}
		select {
		case <-changed:
		case <-heartbeat.C:
			armWrite()
			if _, err := fmt.Fprintf(w, ": hb%s\n\n", pad); err != nil {
				return
			}
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// resetFrame is the payload of a `reset` SSE frame: the stream could not
// resume where the client asked because the job's bounded event ring already
// evicted that range. FirstSeq is the sequence number of the next event on
// the stream; Missed counts the evicted events the client will never see.
type resetFrame struct {
	FirstSeq int `json:"first_seq"`
	Missed   int `json:"missed"`
}

// writeSSE emits one SSE frame with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, id int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
	return err
}

// DecodeEvent parses one SSE `data:` payload back into an Event (client
// helper shared by tests and examples). It is nasaic.DecodeEvent — the SSE
// payload is the same canonical encoding the durable journal stores.
func DecodeEvent(data []byte) (nasaic.Event, error) {
	return nasaic.DecodeEvent(data)
}
