package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nasaic/internal/faultfs"
	"nasaic/internal/journal"
	"nasaic/internal/tenant"
	"nasaic/pkg/nasaic"
)

// testRegistry builds a registry for the multi-tenant tests: two regular
// tenants with equal quotas and one admin.
func testRegistry(t *testing.T, limits tenant.Limits) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New([]tenant.Tenant{
		{Name: "alpha", Limits: limits},
		{Name: "beta", Limits: limits},
		{Name: "ops", Admin: true},
	}, []string{"alpha-key-1", "beta-key-22", "ops-key-333"})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestFairShareDispatchOrder pins the scheduler's determinism: with one
// global slot, a tenant that floods the queue gets exactly one grant per
// ring pass, so another tenant's lone job runs second — not after the whole
// flood. The fake runner records the exact grant order.
func TestFairShareDispatchOrder(t *testing.T) {
	reg := testRegistry(t, tenant.Limits{})
	m := NewManager(Options{MaxConcurrent: 1, Tenants: reg})
	defer m.Close()

	var (
		mu    sync.Mutex
		order []string
	)
	step := make(chan struct{})
	m.testRun = func(ctx context.Context, j *Job) (*nasaic.Result, error) {
		mu.Lock()
		order = append(order, j.ID+"/"+j.Tenant)
		mu.Unlock()
		select {
		case <-step:
		case <-ctx.Done():
		}
		return &nasaic.Result{}, nil
	}

	alpha, beta := reg.ByName("alpha"), reg.ByName("beta")
	// alpha floods first and grabs the only slot; beta's jobs queue behind.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.SubmitAs(alpha, quickSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 2; i++ {
		j, err := m.SubmitAs(beta, quickSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Release the running job one grant at a time; each send unblocks
	// exactly the job currently holding the slot.
	for i := 0; i < len(jobs); i++ {
		step <- struct{}{}
	}
	for _, j := range jobs {
		waitTerminal(t, j, time.Minute)
	}

	mu.Lock()
	defer mu.Unlock()
	// job-1..4 are alpha's, job-5..6 beta's. alpha's first job is granted on
	// submission; after it the ring alternates until beta's queue drains.
	want := []string{
		"job-1/alpha", "job-5/beta", "job-2/alpha", "job-6/beta",
		"job-3/alpha", "job-4/alpha",
	}
	if got := strings.Join(order, " "); got != strings.Join(want, " ") {
		t.Fatalf("grant order:\n got %s\nwant %s", got, strings.Join(want, " "))
	}
}

// TestTenantConcurrencyQuota pins the per-tenant MaxConcurrent bound: a
// tenant capped at one running job cannot occupy a second free global slot,
// which stays available for other tenants.
func TestTenantConcurrencyQuota(t *testing.T) {
	reg := testRegistry(t, tenant.Limits{MaxConcurrent: 1})
	m := NewManager(Options{MaxConcurrent: 2, Tenants: reg})
	defer m.Close()

	step := make(chan struct{})
	m.testRun = func(ctx context.Context, j *Job) (*nasaic.Result, error) {
		select {
		case <-step:
		case <-ctx.Done():
		}
		return &nasaic.Result{}, nil
	}

	alpha, beta := reg.ByName("alpha"), reg.ByName("beta")
	a1, err := m.SubmitAs(alpha, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.SubmitAs(alpha, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, a1, time.Minute)
	// a2 must stay pending: alpha is at its quota even though a global slot
	// is free. beta can take that slot immediately.
	b1, err := m.SubmitAs(beta, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, b1, time.Minute)
	if st := a2.Snapshot().Status; st != StatusPending {
		t.Fatalf("a2 status %s, want pending while alpha is at MaxConcurrent", st)
	}
	close(step)
	for _, j := range []*Job{a1, a2, b1} {
		waitTerminal(t, j, time.Minute)
	}
}

// TestTenantPendingQuota pins the per-tenant MaxPending bound and the
// QuotaError shape: the rejection matches ErrTooManyPending, names the
// tenant, and carries a Retry-After hint — and does not affect the other
// tenant's admission.
func TestTenantPendingQuota(t *testing.T) {
	reg := testRegistry(t, tenant.Limits{MaxPending: 1})
	m := NewManager(Options{MaxConcurrent: 1, Tenants: reg})
	defer m.Close()

	step := make(chan struct{})
	defer close(step)
	m.testRun = func(ctx context.Context, j *Job) (*nasaic.Result, error) {
		select {
		case <-step:
		case <-ctx.Done():
		}
		return &nasaic.Result{}, nil
	}

	alpha, beta := reg.ByName("alpha"), reg.ByName("beta")
	a1, err := m.SubmitAs(alpha, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, a1, time.Minute) // holds the slot; queue decisions are quota's
	if _, err := m.SubmitAs(alpha, quickSpec(1)); err != nil {
		t.Fatalf("first queued submission rejected: %v", err)
	}
	_, err = m.SubmitAs(alpha, quickSpec(1))
	if !errors.Is(err, ErrTooManyPending) {
		t.Fatalf("over-quota submission: err = %v, want ErrTooManyPending", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "alpha" || qe.Limit != 1 || qe.RetryAfter <= 0 {
		t.Fatalf("quota error = %+v", qe)
	}
	// beta's identical quota is untouched by alpha's rejection.
	if _, err := m.SubmitAs(beta, quickSpec(1)); err != nil {
		t.Fatalf("beta submission rejected by alpha's quota: %v", err)
	}
}

// TestHTTPAuth pins the wire contract: no credential is 401 with a
// WWW-Authenticate challenge, a wrong key is 403, /healthz needs no key,
// and authenticated requests are scoped — a tenant sees only its own jobs
// (foreign IDs read as 404, never 403), the admin sees everything.
func TestHTTPAuth(t *testing.T) {
	reg := testRegistry(t, tenant.Limits{})
	m := NewManager(Options{MaxConcurrent: 2, Tenants: reg})
	defer m.Close()
	srv := httptest.NewServer(NewAuthHandler(m, reg))
	defer srv.Close()

	do := func(method, path, key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// 401 for missing credentials, with a challenge; 403 for unknown keys.
	resp := do("GET", "/v1/jobs", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate challenge")
	}
	resp = do("GET", "/v1/jobs", "not-a-real-key")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bad key: status %d, want 403", resp.StatusCode)
	}
	resp = do("GET", "/healthz", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz without key: status %d, want 200", resp.StatusCode)
	}

	// Submissions carry the authenticated tenant into the snapshot.
	post := func(key string) Snapshot {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/jobs",
			strings.NewReader(`{"workload":"W3","episodes":2}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST: status %d, want 202", resp.StatusCode)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	aJob := post("alpha-key-1")
	bJob := post("beta-key-22")
	if aJob.Tenant != "alpha" || bJob.Tenant != "beta" {
		t.Fatalf("tenants: %q, %q", aJob.Tenant, bJob.Tenant)
	}

	// Scoping: alpha cannot read, stream or cancel beta's job.
	for _, path := range []string{
		"/v1/jobs/" + bJob.ID,
		"/v1/jobs/" + bJob.ID + "/events",
	} {
		resp = do("GET", path, "alpha-key-1")
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s as alpha: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp = do("DELETE", "/v1/jobs/"+bJob.ID, "alpha-key-1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE foreign job: status %d, want 404", resp.StatusCode)
	}

	// Listings: each tenant its own, the admin all.
	list := func(key string) []Snapshot {
		t.Helper()
		resp := do("GET", "/v1/jobs", key)
		defer resp.Body.Close()
		var out []Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if l := list("alpha-key-1"); len(l) != 1 || l[0].ID != aJob.ID {
		t.Fatalf("alpha list = %+v", l)
	}
	if l := list("ops-key-333"); len(l) != 2 {
		t.Fatalf("admin list has %d jobs, want 2", len(l))
	}
	// The admin can read and cancel anyone's job.
	resp = do("DELETE", "/v1/jobs/"+aJob.ID, "ops-key-333")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admin cancel: status %d, want 202", resp.StatusCode)
	}
}

// TestHTTPQuotaRetryAfter pins the 429 surface: an over-quota submission
// carries a Retry-After hint alongside the JSON error envelope.
func TestHTTPQuotaRetryAfter(t *testing.T) {
	reg := testRegistry(t, tenant.Limits{MaxPending: 1})
	m := NewManager(Options{MaxConcurrent: 1, Tenants: reg})
	defer m.Close()

	step := make(chan struct{})
	defer close(step)
	m.testRun = func(ctx context.Context, j *Job) (*nasaic.Result, error) {
		select {
		case <-step:
		case <-ctx.Done():
		}
		return &nasaic.Result{}, nil
	}
	srv := httptest.NewServer(NewAuthHandler(m, reg))
	defer srv.Close()

	post := func() *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/jobs",
			strings.NewReader(`{"workload":"W3","episodes":2}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer alpha-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := post() // granted the slot
	first.Body.Close()
	j, err := m.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j, time.Minute)
	second := post() // fills alpha's pending quota
	second.Body.Close()

	third := post()
	defer third.Body.Close()
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota POST: status %d, want 429", third.StatusCode)
	}
	if ra := third.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After hint")
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(third.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(apiErr.Error, "alpha") {
		t.Fatalf("429 body does not name the tenant: %q", apiErr.Error)
	}
}

// TestRecoveryReattachesTenants pins tenancy durability: journaled tenant
// IDs survive a restart for terminal jobs, and an interrupted job re-executes
// under its original tenant (scoped listings stay correct after recovery).
func TestRecoveryReattachesTenants(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t, tenant.Limits{})

	m1 := NewManager(Options{MaxConcurrent: 2, DataDir: dir, Logf: t.Logf, Tenants: reg})
	done, err := m1.SubmitAs(reg.ByName("alpha"), quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, done, 2*time.Minute); got.Status != StatusSucceeded {
		t.Fatalf("job status %s (err %q)", got.Status, got.Error)
	}
	m1.Close()

	// Simulate an interrupted submission from beta: a journal with the
	// submitted record but no terminal one, exactly what a crash mid-run
	// leaves behind.
	jn, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(quickSpec(6))
	if err := jn.Append(journal.Record{
		Type: journal.TypeSubmitted, Job: "job-2", Tenant: "beta",
		Time: time.Now(), Spec: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(Options{MaxConcurrent: 2, DataDir: dir, Logf: t.Logf, Tenants: reg})
	defer m2.Close()
	restored, err := m2.Get(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tenant != "alpha" {
		t.Fatalf("restored terminal job tenant %q, want alpha", restored.Tenant)
	}
	reexec, err := m2.Get("job-2")
	if err != nil {
		t.Fatal(err)
	}
	if reexec.Tenant != "beta" {
		t.Fatalf("re-executed job tenant %q, want beta", reexec.Tenant)
	}
	if got := waitTerminal(t, reexec, 2*time.Minute); got.Status != StatusSucceeded {
		t.Fatalf("re-executed job status %s (err %q)", got.Status, got.Error)
	}
	// Scoped views hold after recovery.
	if l := m2.ListFor(reg.ByName("alpha")); len(l) != 1 || l[0].ID != done.ID {
		t.Fatalf("alpha's recovered list = %d jobs", len(l))
	}
	if l := m2.ListFor(reg.ByName("beta")); len(l) != 1 || l[0].ID != "job-2" {
		t.Fatalf("beta's recovered list = %d jobs", len(l))
	}
}

// TestRecoveryClampsTimestamps pins the orNow/orAfter fix: a journaled
// terminal job whose running record was lost (zero Started) must not restore
// finished < started — recovery enforces created <= started <= finished.
func TestRecoveryClampsTimestamps(t *testing.T) {
	dir := t.TempDir()
	created := time.Now().Add(-time.Hour).Round(0)
	finished := created.Add(time.Minute)

	jn, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(quickSpec(2))
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-1", Time: created, Spec: spec},
		// No running record (lost to a crash): st.Started stays zero while
		// Finished is an hour in the past. orNow alone would restore
		// started=now > finished.
		{Type: journal.TypeFinished, Job: "job-1", Time: finished, Status: "succeeded"},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	m := NewManager(Options{DataDir: dir, Logf: t.Logf})
	defer m.Close()
	j, err := m.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if snap.StartedAt == nil || snap.FinishedAt == nil {
		t.Fatalf("restored snapshot missing timestamps: %+v", snap)
	}
	if snap.StartedAt.Before(snap.CreatedAt) {
		t.Fatalf("started %v before created %v", snap.StartedAt, snap.CreatedAt)
	}
	if snap.FinishedAt.Before(*snap.StartedAt) {
		t.Fatalf("finished %v before started %v", snap.FinishedAt, snap.StartedAt)
	}
}

// TestSubmitJournalsOutsideLock is the slow-disk regression test for the
// Submit bugfix: with the journal's fsync stalled (a hung disk), an
// in-flight submission must not wedge concurrent reads — the old code
// journaled while holding the manager lock, so Get/List would block behind
// the stalled fsync.
func TestSubmitJournalsOutsideLock(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	m := NewManager(Options{MaxConcurrent: 1, DataDir: "data", FS: fs, Logf: t.Logf})
	defer m.Close()

	first, err := m.Submit(quickSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, first, 2*time.Minute); got.Status != StatusSucceeded {
		t.Fatalf("first job: status %s (err %q)", got.Status, got.Error)
	}

	// Stall every subsequent fsync, then submit: the call must block in the
	// journal append (durability before observability) — without the
	// manager lock.
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release() // keep Close from hanging if an assertion fails first
	fs.SetFaults(faultfs.Faults{SyncGate: gate})

	type submitResult struct {
		j   *Job
		err error
	}
	submitted := make(chan submitResult, 1)
	go func() {
		j, err := m.Submit(quickSpec(4))
		submitted <- submitResult{j, err}
	}()

	// Concurrent reads must return promptly while the submission is wedged
	// in the fsync. Run each under its own deadline.
	readDone := make(chan string, 2)
	go func() {
		if _, err := m.Get(first.ID); err != nil {
			readDone <- fmt.Sprintf("Get: %v", err)
			return
		}
		readDone <- ""
	}()
	go func() {
		if l := m.List(); len(l) != 1 {
			// The stalled job must not be observable before its record is
			// durable.
			readDone <- fmt.Sprintf("List: %d jobs, want 1", len(l))
			return
		}
		readDone <- ""
	}()
	for i := 0; i < 2; i++ {
		select {
		case msg := <-readDone:
			if msg != "" {
				t.Fatal(msg)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("read blocked behind a stalled journal fsync")
		}
	}
	// The submission itself is still wedged.
	select {
	case r := <-submitted:
		t.Fatalf("Submit returned while fsync was stalled (err %v)", r.err)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	select {
	case r := <-submitted:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if got := waitTerminal(t, r.j, 2*time.Minute); got.Status != StatusSucceeded {
			t.Fatalf("unwedged job: status %s (err %q)", got.Status, got.Error)
		}
	case <-time.After(time.Minute):
		t.Fatal("Submit still blocked after the fsync gate opened")
	}
}

// TestSubmitMarshalFailureIsLogged pins the silent-skip bugfix: a spec that
// fails to encode still runs, but the lost durability is reported instead of
// silently skipping the journal record.
func TestSubmitMarshalFailureIsLogged(t *testing.T) {
	orig := jsonMarshal
	jsonMarshal = func(any) ([]byte, error) { return nil, errors.New("boom") }
	defer func() { jsonMarshal = orig }()

	var (
		mu   sync.Mutex
		logs []string
	)
	fs := faultfs.NewMem(faultfs.Faults{})
	m := NewManager(Options{MaxConcurrent: 1, DataDir: "data", FS: fs,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	defer m.Close()

	j, err := m.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j, 2*time.Minute); got.Status != StatusSucceeded {
		t.Fatalf("job status %s (err %q) — encode failure must not fail the run", got.Status, got.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, l := range logs {
		if strings.Contains(l, "encode spec") && strings.Contains(l, j.ID) {
			return
		}
	}
	t.Fatalf("marshal failure not logged; logs: %q", logs)
}

// TestCancelAfterTerminalStaysTerminal pins the cancel/finish race fix end
// to end: cancelling an already-finished job journals nothing that could
// flip it, and a restart over that journal restores the job terminal — not
// cancelled.
func TestCancelAfterTerminalStaysTerminal(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(Options{MaxConcurrent: 1, DataDir: dir, Logf: t.Logf})
	j, err := m1.Submit(quickSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, j, 2*time.Minute)
	if first.Status != StatusSucceeded {
		t.Fatalf("job status %s (err %q)", first.Status, first.Error)
	}
	// Cancel after the terminal record: must be a no-op in memory and on
	// disk.
	if _, err := m1.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if got := j.Snapshot().Status; got != StatusSucceeded {
		t.Fatalf("terminal-then-cancel flipped status to %s", got)
	}
	m1.Close()

	m2 := NewManager(Options{MaxConcurrent: 1, DataDir: dir, Logf: t.Logf})
	defer m2.Close()
	restored, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Snapshot()
	if got.Status != StatusSucceeded {
		t.Fatalf("restored status %s, want succeeded (err %q)", got.Status, got.Error)
	}
	if !sameBest(first.Result.Best, got.Result.Best) {
		t.Fatalf("restored result diverged: %+v != %+v", got.Result.Best, first.Result.Best)
	}
}
