// Package jobs turns pkg/nasaic's context-first Run API into a managed job
// service: submitted co-explorations run as bounded concurrent jobs that
// share one evaluation cache and memo bundle, stream per-episode events into
// a replayable ring buffer, and can be cancelled at any time. The HTTP layer
// in http.go exposes the manager as cmd/nasaicd's /v1/jobs API.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nasaic/pkg/nasaic"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Spec is one job request. The zero value of every optional field selects
// the engine default, so `{"workload":"W3"}` is a complete submission.
type Spec struct {
	// Workload is W1, W2 or W3 (required).
	Workload string `json:"workload"`
	// Episodes is β; 0 selects the default (500).
	Episodes int `json:"episodes,omitempty"`
	// HWSteps is φ; nil selects the default (10).
	HWSteps *int `json:"hw_steps,omitempty"`
	// Seed drives the deterministic search; 0 selects the default (1).
	Seed int64 `json:"seed,omitempty"`
	// Optimizer is "rl" (default) or "ea".
	Optimizer string `json:"optimizer,omitempty"`
	// Refine toggles the exploit phase; nil selects the default (on).
	Refine *bool `json:"refine,omitempty"`
	// Workers bounds the hardware-evaluation goroutines; 0 selects NumCPU.
	Workers int `json:"workers,omitempty"`
}

// options translates the spec into facade options (shared memos and event
// plumbing are added by the manager).
func (sp Spec) options() ([]nasaic.Option, error) {
	if sp.Workload == "" {
		return nil, fmt.Errorf("jobs: workload is required")
	}
	opts := []nasaic.Option{nasaic.WithWorkload(sp.Workload)}
	if sp.Episodes < 0 {
		return nil, fmt.Errorf("jobs: episodes must be non-negative")
	}
	if sp.Episodes > 0 {
		opts = append(opts, nasaic.WithEpisodes(sp.Episodes))
	}
	if sp.HWSteps != nil {
		opts = append(opts, nasaic.WithHWSteps(*sp.HWSteps))
	}
	if sp.Seed != 0 {
		opts = append(opts, nasaic.WithSeed(sp.Seed))
	}
	if sp.Optimizer != "" {
		opts = append(opts, nasaic.WithOptimizer(nasaic.Optimizer(sp.Optimizer)))
	}
	if sp.Refine != nil {
		opts = append(opts, nasaic.WithRefine(*sp.Refine))
	}
	if sp.Workers != 0 {
		opts = append(opts, nasaic.WithWorkers(sp.Workers))
	}
	return opts, nil
}

// Options configures a Manager.
type Options struct {
	// MaxConcurrent bounds the jobs exploring at once; further submissions
	// queue as pending. <=0 selects 2.
	MaxConcurrent int
	// MaxHistory bounds the finished jobs retained for inspection; the
	// oldest terminal jobs are evicted first. <=0 selects 64.
	MaxHistory int
	// EventBuffer bounds each job's replayable event ring; once exceeded,
	// the oldest events are dropped (subscribers that far behind see a
	// gap). <=0 selects 4096.
	EventBuffer int
	// ShareMemos routes every job through one shared evaluation-cache and
	// memo bundle (bit-identical; jobs warm-start each other). The zero
	// value is off; cmd/nasaicd turns it on by default (-sharedmemo=false
	// opts out).
	ShareMemos bool
	// MaxPending bounds the jobs queued for a concurrency slot; once
	// reached, Submit rejects further specs with ErrTooManyPending (the
	// HTTP layer maps it to 429) instead of queueing without bound. <=0
	// (the zero value) keeps the seed behavior of an unbounded queue.
	MaxPending int
	// CacheDir backs every job's memo tiers with the persistent on-disk
	// warm tier under this directory (see nasaic.WithCacheDir), so a
	// restarted daemon starts warm. The shared bundle is additionally
	// snapshotted by FlushCaches (periodic, via cmd/nasaicd) and on Close.
	// Empty keeps the warm tier off.
	CacheDir string
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return 2
}

func (o Options) maxHistory() int {
	if o.MaxHistory > 0 {
		return o.MaxHistory
	}
	return 64
}

func (o Options) eventBuffer() int {
	if o.EventBuffer > 0 {
		return o.EventBuffer
	}
	return 4096
}

// ErrClosed is returned by Submit after the manager shut down.
var ErrClosed = errors.New("jobs: manager closed")

// ErrTooManyPending is returned by Submit when Options.MaxPending jobs are
// already waiting for a concurrency slot.
var ErrTooManyPending = errors.New("jobs: too many pending jobs")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: job not found")

// Manager owns the job set: submission, bounded execution, streaming and
// cancellation. All methods are safe for concurrent use.
type Manager struct {
	opts   Options
	shared *nasaic.SharedMemos
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	seq     int
	pending int // jobs waiting for a concurrency slot (MaxPending bound)
	jobs    map[string]*Job
	order   []string // submission order, for listing and history eviction
}

// NewManager builds a manager; Close releases it.
func NewManager(opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, opts.maxConcurrent()),
		jobs:   make(map[string]*Job),
	}
	if opts.ShareMemos {
		m.shared = nasaic.NewSharedMemos()
		if opts.CacheDir != "" {
			// Warm the bundle from the persistent tier at startup, so even
			// the first job benefits from a previous daemon's work.
			m.shared.LoadDir(opts.CacheDir)
		}
	}
	return m
}

// Submit validates the spec, registers a pending job and starts it as soon
// as a concurrency slot frees up. It returns the job immediately. When
// Options.MaxPending jobs are already waiting for a slot, it rejects the
// spec with ErrTooManyPending instead of queueing without bound.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if _, err := spec.options(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.opts.MaxPending > 0 && m.pending >= m.opts.MaxPending {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (max %d)", ErrTooManyPending, m.opts.MaxPending)
	}
	m.pending++
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:      id,
		Spec:    spec,
		created: time.Now(),
		status:  StatusPending,
		maxEv:   m.opts.eventBuffer(),
		changed: make(chan struct{}),
		cancel:  jcancel,
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(j, jctx)
	return j, nil
}

// run executes one job end to end on its own goroutine.
func (m *Manager) run(j *Job, ctx context.Context) {
	defer m.wg.Done()
	defer j.cancel()

	// Wait for a concurrency slot, unless cancelled while pending. Either
	// way the job stops counting against the MaxPending bound here.
	select {
	case m.sem <- struct{}{}:
		m.pendingDone()
	case <-ctx.Done():
		m.pendingDone()
		j.finish(nil, ctx.Err())
		return
	}
	defer func() { <-m.sem }()
	if ctx.Err() != nil {
		j.finish(nil, ctx.Err())
		return
	}

	opts, err := j.Spec.options()
	if err != nil { // unreachable: validated at submit
		j.finish(nil, err)
		return
	}
	if m.shared != nil {
		opts = append(opts, nasaic.WithSharedMemos(m.shared))
	}
	if m.opts.CacheDir != "" {
		opts = append(opts, nasaic.WithCacheDir(m.opts.CacheDir))
	}
	opts = append(opts, nasaic.WithEventHandler(j.appendEvent))
	j.setRunning()
	res, err := nasaic.Run(ctx, opts...)
	j.finish(res, err)
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of the job with the given ID. Cancelling a
// terminal job is a no-op; the returned job reflects the state at call time.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.cancel()
	return j, nil
}

// List returns every retained job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Close cancels every job, waits for them to drain, flushes the warm tier
// and rejects further submissions.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	_ = m.FlushCaches()
}

// FlushCaches snapshots the shared memo bundle into Options.CacheDir so a
// restarted daemon starts warm; a no-op (nil) without both ShareMemos and
// CacheDir. cmd/nasaicd calls it periodically and Close calls it at
// shutdown; each flush atomically replaces the previous snapshot. (Without
// ShareMemos each job persists its own caches when its run finishes.)
func (m *Manager) FlushCaches() error {
	if m.shared == nil || m.opts.CacheDir == "" {
		return nil
	}
	return m.shared.SaveDir(m.opts.CacheDir)
}

// pendingDone marks one job as no longer waiting for a concurrency slot.
func (m *Manager) pendingDone() {
	m.mu.Lock()
	m.pending--
	m.mu.Unlock()
}

// evictLocked drops the oldest terminal jobs beyond the history bound.
// Non-terminal jobs are never evicted.
func (m *Manager) evictLocked() {
	excess := len(m.order) - m.opts.maxHistory()
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if excess > 0 && m.jobs[id].Snapshot().Status.Terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Job is one managed co-exploration. Fields are immutable after creation;
// mutable state is read through Snapshot, Events and Wait.
type Job struct {
	ID   string
	Spec Spec

	cancel  context.CancelFunc
	created time.Time
	maxEv   int

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	events   []nasaic.Event
	firstSeq int // sequence number of events[0] (ring drops the oldest)
	result   *nasaic.Result
	err      error
	changed  chan struct{} // closed and replaced on every state change
}

// Snapshot is a point-in-time copy of a job's mutable state.
type Snapshot struct {
	ID         string     `json:"id"`
	Spec       Spec       `json:"spec"`
	Status     Status     `json:"status"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Episodes is the number of events recorded so far (completed episodes).
	Episodes int    `json:"episodes"`
	Error    string `json:"error,omitempty"`
	// Result is the run's outcome: complete on success, partial (best-so-
	// far) when cancelled mid-run, nil while pending/running.
	Result *nasaic.Result `json:"result,omitempty"`
}

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Spec:      j.Spec,
		Status:    j.status,
		CreatedAt: j.created,
		Episodes:  j.firstSeq + len(j.events),
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Err returns the job's terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's result (nil until terminal; partial after
// cancellation).
func (j *Job) Result() *nasaic.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Events returns the buffered events with sequence numbers >= from, the
// sequence number of the first returned event, and a channel that is closed
// on the next state change (new event or status transition). A from older
// than the ring start snaps forward to the oldest retained event; callers
// detect the gap by the returned start exceeding from (the HTTP layer turns
// it into an explicit `reset` frame for SSE clients).
func (j *Job) Events(from int) ([]nasaic.Event, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := from - j.firstSeq
	if start < 0 {
		start = 0
	}
	var out []nasaic.Event
	if start < len(j.events) {
		out = append(out, j.events[start:]...)
	}
	return out, j.firstSeq + start, j.changed
}

// Done reports whether the job reached a terminal status.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	for {
		j.mu.Lock()
		terminal := j.status.Terminal()
		ch := j.changed
		j.mu.Unlock()
		if terminal {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// appendEvent records one episode event, dropping the oldest past the ring
// bound, and wakes subscribers.
func (j *Job) appendEvent(e nasaic.Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.notifyLocked()
	j.mu.Unlock()
}

// finish records the terminal state. A context error maps to
// StatusCancelled (keeping the partial result); any other error to
// StatusFailed. The result's engine handle is dropped — retained history
// must not pin every job's evaluator, caches and controller in memory.
func (j *Job) finish(res *nasaic.Result, err error) {
	if res != nil {
		res.DetachEngine()
	}
	j.mu.Lock()
	j.result = res
	j.err = err
	switch {
	case err == nil:
		j.status = StatusSucceeded
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCancelled
	default:
		j.status = StatusFailed
	}
	j.finished = time.Now()
	j.notifyLocked()
	j.mu.Unlock()
}

// notifyLocked wakes every Events/Wait subscriber; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}
