// Package jobs turns pkg/nasaic's context-first Run API into a managed job
// service: submitted co-explorations run as bounded concurrent jobs that
// share one evaluation cache and memo bundle, stream per-episode events into
// a replayable ring buffer, and can be cancelled at any time. The HTTP layer
// in http.go exposes the manager as cmd/nasaicd's /v1/jobs API.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nasaic/internal/faultfs"
	"nasaic/internal/journal"
	"nasaic/internal/tenant"
	"nasaic/pkg/nasaic"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Spec is one job request. The zero value of every optional field selects
// the engine default, so `{"workload":"W3"}` is a complete submission.
type Spec struct {
	// Workload is W1, W2 or W3 (required).
	Workload string `json:"workload"`
	// Episodes is β; 0 selects the default (500).
	Episodes int `json:"episodes,omitempty"`
	// HWSteps is φ; nil selects the default (10).
	HWSteps *int `json:"hw_steps,omitempty"`
	// Seed drives the deterministic search; 0 selects the default (1).
	Seed int64 `json:"seed,omitempty"`
	// Optimizer is "rl" (default) or "ea".
	Optimizer string `json:"optimizer,omitempty"`
	// Refine toggles the exploit phase; nil selects the default (on).
	Refine *bool `json:"refine,omitempty"`
	// Workers bounds the hardware-evaluation goroutines; 0 selects NumCPU.
	Workers int `json:"workers,omitempty"`
}

// options translates the spec into facade options (shared memos and event
// plumbing are added by the manager).
func (sp Spec) options() ([]nasaic.Option, error) {
	if sp.Workload == "" {
		return nil, fmt.Errorf("jobs: workload is required")
	}
	opts := []nasaic.Option{nasaic.WithWorkload(sp.Workload)}
	if sp.Episodes < 0 {
		return nil, fmt.Errorf("jobs: episodes must be non-negative")
	}
	if sp.Episodes > 0 {
		opts = append(opts, nasaic.WithEpisodes(sp.Episodes))
	}
	if sp.HWSteps != nil {
		opts = append(opts, nasaic.WithHWSteps(*sp.HWSteps))
	}
	if sp.Seed != 0 {
		opts = append(opts, nasaic.WithSeed(sp.Seed))
	}
	if sp.Optimizer != "" {
		opts = append(opts, nasaic.WithOptimizer(nasaic.Optimizer(sp.Optimizer)))
	}
	if sp.Refine != nil {
		opts = append(opts, nasaic.WithRefine(*sp.Refine))
	}
	if sp.Workers != 0 {
		opts = append(opts, nasaic.WithWorkers(sp.Workers))
	}
	return opts, nil
}

// Executor runs one granted job to completion. The default (nil) executor
// runs the exploration in-process through pkg/nasaic; internal/cluster's
// coordinator implements the same interface by dispatching the job to a
// worker replica over HTTP and proxying its SSE event stream back. The
// contract: Execute is called once the fair-share dispatcher grants the job a
// slot (after setRunning), delivers episode events through j.EmitEvent (or an
// event handler of its own), honours ctx cancellation, and returns the
// terminal result — a ctx error maps to StatusCancelled, any other error to
// StatusFailed, exactly like a local run.
type Executor interface {
	Execute(ctx context.Context, j *Job) (*nasaic.Result, error)
}

// DrainEstimator is optionally implemented by an Executor that knows about
// queue capacity beyond this manager (a cluster coordinator aggregating its
// workers). When present, quota rejections compute their Retry-After hint
// from the cluster-wide backlog and slot count instead of the single-node
// formula.
type DrainEstimator interface {
	// DrainEstimate returns the jobs queued beyond this manager and the
	// total execution slots draining them; ok is false when no estimate is
	// available (no healthy workers yet) and the caller falls back to the
	// single-node formula.
	DrainEstimate() (queued, slots int, ok bool)
}

// Options configures a Manager.
type Options struct {
	// MaxConcurrent bounds the jobs exploring at once; further submissions
	// queue as pending. <=0 selects 2.
	MaxConcurrent int
	// MaxHistory bounds the finished jobs retained for inspection; the
	// oldest terminal jobs are evicted first. <=0 selects 64.
	MaxHistory int
	// EventBuffer bounds each job's replayable event ring; once exceeded,
	// the oldest events are dropped (subscribers that far behind see a
	// gap). <=0 selects 4096.
	EventBuffer int
	// ShareMemos routes every job through one shared evaluation-cache and
	// memo bundle (bit-identical; jobs warm-start each other). The zero
	// value is off; cmd/nasaicd turns it on by default (-sharedmemo=false
	// opts out).
	ShareMemos bool
	// MaxPending bounds the jobs queued for a concurrency slot; once
	// reached, Submit rejects further specs with ErrTooManyPending (the
	// HTTP layer maps it to 429) instead of queueing without bound. <=0
	// (the zero value) keeps the seed behavior of an unbounded queue.
	MaxPending int
	// CacheDir backs every job's memo tiers with the persistent on-disk
	// warm tier under this directory (see nasaic.WithCacheDir), so a
	// restarted daemon starts warm. The shared bundle is additionally
	// snapshotted by FlushCaches (periodic, via cmd/nasaicd) and on Close.
	// Empty keeps the warm tier off.
	CacheDir string
	// DataDir enables the durable job journal under DataDir/journal: every
	// submission, state transition and episode event is fsynced to a
	// write-ahead log before it becomes observable over HTTP, and a new
	// manager over the same directory restores terminal jobs (full event
	// rings included, so SSE Last-Event-ID replay spans restarts) and
	// re-executes the jobs that were pending or running when the process
	// died — the seeded determinism suite guarantees the re-run converges to
	// the bit-identical result, re-emitting events under their journaled
	// sequence numbers. Empty keeps the manager memory-only (the seed
	// behavior). Journal damage (torn tails, bit flips, version skew) is
	// truncated away at startup, never a refusal to start; if the journal
	// cannot be opened at all the manager degrades to memory-only and says
	// so through Logf.
	DataDir string
	// FS overrides the filesystem the journal writes through (fault
	// injection in tests). Nil selects the real one.
	FS faultfs.FS
	// Logf receives durability degradation warnings (journal append
	// failures, recovery repairs). Nil discards them.
	Logf func(format string, args ...any)
	// Tenants is the API-key registry (cmd/nasaicd's -tenants file). The
	// manager uses it to re-attach recovered jobs to their tenants' current
	// limits; authentication itself happens in the HTTP layer. Nil means
	// auth is off and every job belongs to the anonymous tenant.
	Tenants *tenant.Registry
	// Executor replaces the local in-process runner: granted jobs are handed
	// to it instead of pkg/nasaic (cluster coordinators dispatch them to
	// worker replicas). Nil selects the local runner — the standalone and
	// worker behavior.
	Executor Executor
	// RunJob is a test seam: when set it replaces the engine for every job
	// (and takes precedence over Executor), so scheduling-focused harnesses
	// — fairness, soak, cluster soak — can substitute controllable fake work
	// without paying for real explorations.
	RunJob func(ctx context.Context, j *Job) (*nasaic.Result, error)
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return 2
}

func (o Options) maxHistory() int {
	if o.MaxHistory > 0 {
		return o.MaxHistory
	}
	return 64
}

func (o Options) eventBuffer() int {
	if o.EventBuffer > 0 {
		return o.EventBuffer
	}
	return 4096
}

func (o Options) logf() func(string, ...any) {
	if o.Logf != nil {
		return o.Logf
	}
	return func(string, ...any) {}
}

// ErrClosed is returned by Submit after the manager shut down.
var ErrClosed = errors.New("jobs: manager closed")

// ErrTooManyPending is returned by Submit when Options.MaxPending jobs are
// already waiting for a concurrency slot.
var ErrTooManyPending = errors.New("jobs: too many pending jobs")

// ErrNotFound is returned for unknown job IDs (including IDs the calling
// tenant is not allowed to see — existence of other tenants' jobs is not
// leaked).
var ErrNotFound = errors.New("jobs: job not found")

// QuotaError is the Submit rejection when a pending-jobs bound is hit —
// either the caller's per-tenant quota or the manager-wide MaxPending. It
// matches ErrTooManyPending under errors.Is (the HTTP layer maps both to
// 429) and carries a Retry-After drain hint.
type QuotaError struct {
	// Tenant is the quota owner ("" for the manager-wide bound).
	Tenant string
	// Limit is the bound that was hit; Pending the jobs already queued
	// against it.
	Limit   int
	Pending int
	// RetryAfter is a coarse hint for when a slot may free up (HTTP
	// Retry-After); it is an estimate, not a promise.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("%v (max %d)", ErrTooManyPending, e.Limit)
	}
	return fmt.Sprintf("jobs: tenant %q pending quota exhausted (%d/%d)", e.Tenant, e.Pending, e.Limit)
}

func (e *QuotaError) Is(target error) bool { return target == ErrTooManyPending }

// tenantState is one tenant's slice of the fair-share dispatcher: its FIFO
// queue of runnable jobs and its pending/running accounting. Guarded by
// Manager.mu.
type tenantState struct {
	tn      *tenant.Tenant // resolved limits; nil means unlimited
	queue   []*Job         // submission-ordered jobs waiting for a slot
	pending int            // queued jobs, incl. submissions being journaled
	running int            // jobs holding a concurrency slot
}

func (ts *tenantState) maxConcurrent() int {
	if ts.tn != nil {
		return ts.tn.Limits.MaxConcurrent
	}
	return 0
}

// Manager owns the job set: submission, fair-share scheduling across
// tenants, streaming and cancellation. All methods are safe for concurrent
// use.
type Manager struct {
	opts   Options
	shared *nasaic.SharedMemos
	jn     *journal.Journal
	logf   func(string, ...any)
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// testRun, when set (in-package tests only), replaces nasaic.Run for
	// every job: fairness and soak tests substitute controllable fake work.
	testRun func(ctx context.Context, j *Job) (*nasaic.Result, error)

	// mu guards the job table and dispatcher state. It is hot — every
	// Submit/Get/List/SSE wakeup takes it — so nothing slow may run under
	// it: PR 8 fixed a group-commit fsync performed while holding it, and
	// the //lint:guard annotation makes that class of bug a build error
	// (nasaiclint journallock/lockio).
	mu      sync.Mutex //lint:guard journal,io
	closed  bool
	seq     int
	pending int // jobs waiting for a concurrency slot (MaxPending bound)
	jobs    map[string]*Job
	order   []string // submission order, for listing and history eviction

	// Fair-share dispatcher state: per-tenant queues, a deterministic
	// round-robin ring over tenant names (sorted, with a rotating cursor)
	// and the global running count. One greedy tenant fills only its own
	// queue; grants cycle across every tenant with runnable work.
	sched     map[string]*tenantState
	ring      []string // sorted tenant names
	lastGrant string   // tenant granted most recently; the next scan starts after it
	running   int      // jobs holding slots, all tenants
	grantSeq  int64    // monotone grant counter (fairness observability)
}

// NewManager builds a manager; Close releases it. With Options.DataDir set
// it opens (or recovers) the durable journal first: terminal jobs reappear
// in the history with their event rings, and interrupted jobs are
// re-executed from their journaled specs. Recovery never fails construction
// — journal damage truncates away, and an unopenable journal degrades to a
// memory-only manager (reported through Options.Logf).
func NewManager(opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxplumb manager lifecycle root: jobs outlive any caller; Close cancels it
	m := &Manager{
		opts:    opts,
		logf:    opts.logf(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
		sched:   make(map[string]*tenantState),
		testRun: opts.RunJob,
	}
	if opts.ShareMemos {
		m.shared = nasaic.NewSharedMemos()
		if opts.CacheDir != "" {
			// Warm the bundle from the persistent tier at startup, so even
			// the first job benefits from a previous daemon's work.
			m.shared.LoadDir(opts.CacheDir)
		}
	}
	if opts.DataDir != "" {
		jn, err := journal.Open(filepath.Join(opts.DataDir, "journal"), journal.Options{
			FS:       opts.FS,
			EventCap: opts.eventBuffer(),
		})
		if err != nil {
			m.logf("jobs: journal disabled, jobs will not survive restarts: %v", err)
		} else {
			m.jn = jn
			if rec := jn.Recovery(); rec.TruncatedBytes > 0 || rec.SkippedSegments > 0 {
				m.logf("jobs: journal recovery repaired damage: truncated %d bytes, skipped %d segments (%d records kept)",
					rec.TruncatedBytes, rec.SkippedSegments, rec.Records)
			}
			m.recover(jn.States())
		}
	}
	return m
}

// recover rebuilds the job set from the journal's reduced states:
// terminal jobs go straight into history, jobs with a journaled cancel
// request but no terminal record settle as cancelled, and everything else
// re-executes from its spec (determinism makes the re-run bit-identical,
// re-emitting its events under the already-journaled sequence numbers).
// Every job re-attaches to its journaled tenant — quota accounting and API
// scoping survive the restart — with pre-tenancy records (no tenant field)
// mapping to the anonymous tenant. Re-executed jobs bypass the pending
// quota: they were admitted before the crash and must not be dropped by it.
func (m *Manager) recover(states []*journal.JobState) {
	// Settlement records and drop warnings are collected under the lock and
	// journaled/logged after it: the journal group-commits an fsync, and
	// nothing slow may run under m.mu (enforced by nasaiclint). A crash
	// before a deferred settlement record lands is harmless — the next
	// recovery re-derives the same settlement from the CancelRequested
	// marker, and the HTTP surface is not serving yet during NewManager.
	type settlement struct {
		j   *Job
		rec journal.Record
	}
	var settles []settlement
	var dropped []string
	m.mu.Lock()
	for _, st := range states {
		var n int
		if _, err := fmt.Sscanf(st.ID, "job-%d", &n); err == nil && n > m.seq {
			m.seq = n // later submissions continue the journaled ID sequence
		}
		var spec Spec
		if err := json.Unmarshal(st.Spec, &spec); err != nil {
			dropped = append(dropped, fmt.Sprintf("jobs: recovery: dropping job %s (undecodable spec: %v)", st.ID, err))
			continue
		}
		name := st.Tenant
		if name == "" {
			name = tenant.AnonymousName
		}
		tn := m.opts.Tenants.ByName(name)
		j := &Job{
			ID:      st.ID,
			Spec:    spec,
			Tenant:  name,
			created: orNow(st.Created),
			maxEv:   m.eventRingCap(tn),
			changed: make(chan struct{}),
			jn:      m.jn,
			logf:    m.logf,
		}
		switch {
		case st.Terminal():
			j.restoreTerminal(st, Status(st.Status))
		case st.CancelRequested:
			// Cancelled mid-run, killed before the terminal record landed:
			// honour the cancel rather than re-executing to completion, and
			// journal the settlement so the next recovery is direct.
			j.restoreTerminal(st, StatusCancelled)
			settles = append(settles, settlement{j, journal.Record{
				Type:   journal.TypeFinished,
				Job:    j.ID,
				Time:   j.finished,
				Status: string(StatusCancelled),
				Error:  j.err.Error(),
			}})
		default:
			// Pending or running at crash time: re-execute from the spec
			// through the fair dispatcher, under the job's own tenant. With a
			// journaled cluster binding the run is still live on a worker
			// replica, so keep the replayed event ring (SSE Last-Event-ID
			// replay spans the restart) and let the cluster executor resume
			// the worker's stream right after it; an unbound job starts with
			// an empty ring and re-emits deterministically from seq 0.
			jctx, jcancel := context.WithCancel(m.ctx)
			j.status = StatusPending
			j.cancel = jcancel
			j.slot = make(chan struct{})
			if st.Worker != "" && st.RemoteID != "" {
				j.worker, j.remoteID = st.Worker, st.RemoteID
				j.restoreEvents(st)
			}
			m.enqueueLocked(j, tn)
			m.wg.Add(1)
			go m.run(j, jctx)
		}
		m.jobs[st.ID] = j
		m.order = append(m.order, st.ID)
	}
	forgotten := m.evictLocked()
	m.dispatchLocked()
	m.mu.Unlock()
	// Settlements precede the Forget records, exactly as when the jobs
	// finished live, so journal reduction never sees a finish after a
	// forget resurrect a ghost state.
	for _, s := range settles {
		s.j.journal(s.rec)
	}
	m.journalForgets(forgotten)
	for _, msg := range dropped {
		m.logf("%s", msg)
	}
}

// orNow guards restored timestamps against zero values from older records.
func orNow(t time.Time) time.Time {
	if t.IsZero() {
		return time.Now()
	}
	return t
}

// orAfter restores a timestamp like orNow and additionally clamps it to
// floor: old records can carry a zero started/finished alongside a set
// sibling, and naively restoring each in isolation can order finished
// before started (or started before created). Recovery enforces
// created <= started <= finished.
func orAfter(t, floor time.Time) time.Time {
	if restored := orNow(t); restored.After(floor) {
		return restored
	}
	return floor
}

// eventRingCap is the per-job event ring bound: the manager-wide default,
// lowered (never raised) by the tenant's MaxEventRing memory limit.
func (m *Manager) eventRingCap(tn *tenant.Tenant) int {
	cap := m.opts.eventBuffer()
	if tn != nil && tn.Limits.MaxEventRing > 0 && tn.Limits.MaxEventRing < cap {
		cap = tn.Limits.MaxEventRing
	}
	return cap
}

// Submit registers a job for the anonymous tenant: the single-tenant entry
// point used when auth is off (and by pre-tenancy callers).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	return m.SubmitAs(m.opts.Tenants.ByName(tenant.AnonymousName), spec)
}

// SubmitAs validates the spec, registers a pending job owned by the tenant
// and starts it as soon as the fair-share dispatcher grants it a slot. It
// returns the job immediately. Submissions beyond Options.MaxPending or the
// tenant's MaxPending quota are rejected with a QuotaError (ErrTooManyPending
// under errors.Is; HTTP 429 with a Retry-After hint). A nil tenant is the
// anonymous tenant.
func (m *Manager) SubmitAs(tn *tenant.Tenant, spec Spec) (*Job, error) {
	if _, err := spec.options(); err != nil {
		return nil, err
	}
	if tn == nil {
		tn = tenant.Anonymous()
	}

	// Phase 1 (under mu): admission. Check quotas, reserve the pending
	// accounting and the job ID.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	ts := m.tenantStateLocked(tn.Name, tn)
	if m.opts.MaxPending > 0 && m.pending >= m.opts.MaxPending {
		qe := &QuotaError{Limit: m.opts.MaxPending, Pending: m.pending, RetryAfter: m.retryAfterLocked(ts)}
		m.mu.Unlock()
		return nil, qe
	}
	if lim := tn.Limits.MaxPending; lim > 0 && ts.pending >= lim {
		qe := &QuotaError{Tenant: tn.Name, Limit: lim, Pending: ts.pending, RetryAfter: m.retryAfterLocked(ts)}
		m.mu.Unlock()
		return nil, qe
	}
	ts.pending++
	m.pending++
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:      id,
		Spec:    spec,
		Tenant:  tn.Name,
		created: time.Now(),
		status:  StatusPending,
		maxEv:   m.eventRingCap(tn),
		changed: make(chan struct{}),
		cancel:  jcancel,
		slot:    make(chan struct{}),
		jn:      m.jn,
		logf:    m.logf,
	}
	// Close must wait for this submission even if it lands between the two
	// critical sections: Add now (ordered before Close's Wait by mu) so an
	// accepted job always drains to a terminal state.
	m.wg.Add(1)
	m.mu.Unlock()

	// Phase 2 (no locks): durability. The submission is journaled (and
	// fsynced) before the job becomes observable — once a client holds the
	// job ID, a crash cannot forget it. The fsync deliberately happens
	// outside m.mu: a slow disk stalls this submission, never concurrent
	// Get/List/Cancel traffic.
	if m.jn != nil {
		if specJSON, err := jsonMarshal(spec); err != nil {
			// The job still runs, but a restart would forget it: surface the
			// durability degradation instead of skipping the journal silently.
			m.logf("jobs: journal submit %s: encode spec: %v (job will not survive a restart)", id, err)
		} else {
			j.journal(journal.Record{
				Type:   journal.TypeSubmitted,
				Job:    id,
				Tenant: tn.Name,
				Time:   j.created,
				Spec:   specJSON,
			})
		}
	}

	// Phase 3 (under mu): publication. Register the job, enter it into its
	// tenant's queue and let the dispatcher hand out any free slots.
	m.mu.Lock()
	ts.pending-- // enqueueLocked re-reserves; the phase-1 hold ends here
	m.pending--
	m.jobs[id] = j
	m.order = append(m.order, id)
	forgotten := m.evictLocked()
	m.enqueueLocked(j, tn)
	m.dispatchLocked()
	m.mu.Unlock()

	m.journalForgets(forgotten)
	go m.run(j, jctx)
	return j, nil
}

// jsonMarshal is json.Marshal, indirected so tests can fault the encoding
// of a submitted spec (every field of Spec marshals cleanly in practice).
var jsonMarshal = json.Marshal

// tenantStateLocked returns (creating on demand) the tenant's dispatcher
// state and keeps the round-robin ring sorted; callers hold m.mu. The
// resolved tenant limits refresh on every submission, so a reloaded registry
// (a future -tenants reload) would take effect for new work.
func (m *Manager) tenantStateLocked(name string, tn *tenant.Tenant) *tenantState {
	ts, ok := m.sched[name]
	if !ok {
		ts = &tenantState{}
		m.sched[name] = ts
		i := sort.SearchStrings(m.ring, name)
		m.ring = append(m.ring, "")
		copy(m.ring[i+1:], m.ring[i:])
		m.ring[i] = name
	}
	if tn != nil {
		ts.tn = tn
	}
	return ts
}

// enqueueLocked appends the job to its tenant's runnable queue; callers
// hold m.mu and call dispatchLocked afterwards.
func (m *Manager) enqueueLocked(j *Job, tn *tenant.Tenant) {
	ts := m.tenantStateLocked(j.Tenant, tn)
	ts.queue = append(ts.queue, j)
	ts.pending++
	m.pending++
	j.queued = true
}

// ringStartLocked is the ring index the next grant scan starts from: the
// first tenant sorted after the last-granted name. Anchoring the cursor to a
// name rather than an index keeps the rotation fair when tenants register
// mid-stream — a newcomer slots into the cycle exactly where its name sorts,
// instead of inheriting whatever position the old cursor happened to hold.
func (m *Manager) ringStartLocked() int {
	if len(m.ring) == 0 || m.lastGrant == "" {
		return 0
	}
	i := sort.SearchStrings(m.ring, m.lastGrant)
	if i < len(m.ring) && m.ring[i] == m.lastGrant {
		i++
	}
	return i % len(m.ring)
}

// dispatchLocked is the fair-share scheduler: while global concurrency
// slots are free, it scans the tenant ring round-robin — sorted tenant
// names, starting after the last grant's tenant — and grants one job to the
// first tenant that has runnable work and headroom under its own
// MaxConcurrent quota. Tenant order is deterministic so fairness is
// testable; a tenant with a deep queue gets exactly one grant per ring
// pass, which bounds any other tenant's wait to one pass.
func (m *Manager) dispatchLocked() {
	for m.running < m.opts.maxConcurrent() {
		granted := false
		start := m.ringStartLocked()
		for i := 0; i < len(m.ring); i++ {
			name := m.ring[(start+i)%len(m.ring)]
			ts := m.sched[name]
			if len(ts.queue) == 0 {
				continue
			}
			if lim := ts.maxConcurrent(); lim > 0 && ts.running >= lim {
				continue
			}
			j := ts.queue[0]
			ts.queue = ts.queue[1:]
			j.queued = false
			j.granted = true
			ts.pending--
			m.pending--
			ts.running++
			m.running++
			m.grantSeq++
			j.grant = m.grantSeq
			m.lastGrant = name
			close(j.slot)
			granted = true
			break
		}
		if !granted {
			return
		}
	}
}

// dequeue removes a job that is abandoning its wait for a slot (cancelled
// while pending). It reports false when the grant already happened — the
// caller then owns a running slot and must release it via release.
func (m *Manager) dequeue(j *Job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.granted {
		return false
	}
	ts := m.sched[j.Tenant]
	for i, q := range ts.queue {
		if q == j {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			break
		}
	}
	j.queued = false
	ts.pending--
	m.pending--
	return true
}

// release returns a finished job's concurrency slot and lets the dispatcher
// hand it to the next tenant in the ring.
func (m *Manager) release(j *Job) {
	m.mu.Lock()
	m.sched[j.Tenant].running--
	m.running--
	m.dispatchLocked()
	m.mu.Unlock()
}

// retryAfterLocked estimates when the tenant's next slot could free up: a
// coarse one-second-per-queued-job-per-slot drain hint for the HTTP
// Retry-After header. Callers hold m.mu. In cluster mode the executor knows
// the real drain capacity — the 429 races happen when every worker is
// saturated, so the estimate aggregates the workers' queue depths and slot
// counts instead of reusing the single-node formula.
func (m *Manager) retryAfterLocked(ts *tenantState) time.Duration {
	slots := m.opts.maxConcurrent()
	queued := ts.pending
	if de, ok := m.opts.Executor.(DrainEstimator); ok {
		if q, s, ok := de.DrainEstimate(); ok && s > 0 {
			queued += q
			slots = s
		}
	}
	if lim := ts.maxConcurrent(); lim > 0 && lim < slots {
		slots = lim
	}
	if slots < 1 {
		slots = 1
	}
	return time.Duration(1+queued/slots) * time.Second
}

// run executes one job end to end on its own goroutine.
func (m *Manager) run(j *Job, ctx context.Context) {
	defer m.wg.Done()
	defer j.cancel()

	// Wait for the dispatcher's grant, unless cancelled while pending.
	select {
	case <-j.slot:
	case <-ctx.Done():
		if m.dequeue(j) {
			j.finish(nil, ctx.Err())
			return
		}
		// The grant raced the cancel: the job holds a slot after all. Fall
		// through to the running path, which sees ctx.Err() and releases it.
	}
	defer m.release(j)
	if ctx.Err() != nil {
		j.finish(nil, ctx.Err())
		return
	}

	if m.testRun != nil {
		j.setRunning()
		res, err := m.testRun(ctx, j)
		j.finish(res, err)
		return
	}

	j.setRunning()
	res, err := m.executor().Execute(ctx, j)
	j.finish(res, err)
}

// executor resolves the job runner: the configured one (cluster dispatch) or
// the in-process engine.
func (m *Manager) executor() Executor {
	if m.opts.Executor != nil {
		return m.opts.Executor
	}
	return localExecutor{m}
}

// localExecutor is the default Executor: the exploration runs in this
// process through pkg/nasaic, sharing the manager's memo bundle and warm
// tier, with episode events appended straight onto the job's ring.
type localExecutor struct{ m *Manager }

func (e localExecutor) Execute(ctx context.Context, j *Job) (*nasaic.Result, error) {
	opts, err := j.Spec.options()
	if err != nil { // unreachable: validated at submit
		return nil, err
	}
	if e.m.shared != nil {
		opts = append(opts, nasaic.WithSharedMemos(e.m.shared))
	}
	if e.m.opts.CacheDir != "" {
		opts = append(opts, nasaic.WithCacheDir(e.m.opts.CacheDir))
	}
	opts = append(opts, nasaic.WithEventHandler(j.appendEvent))
	return nasaic.Run(ctx, opts...)
}

// Load reports the manager's current queue depth, running count and
// concurrency slots — the worker-side numbers a cluster coordinator's
// health probes aggregate for placement and Retry-After estimates.
func (m *Manager) Load() (pending, running, slots int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pending, m.running, m.opts.maxConcurrent()
}

// Get returns the job with the given ID (the manager's unscoped view).
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// GetFor returns the job with the given ID as seen by the tenant: a job
// owned by another tenant is ErrNotFound (not 403 — existence is not
// leaked) unless the caller is an admin. A nil tenant sees everything.
func (m *Manager) GetFor(tn *tenant.Tenant, id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	if !tn.CanSee(j.Tenant) {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of the job with the given ID. Cancelling a
// terminal job is a no-op; the returned job reflects the state at call time.
// The request is journaled before it takes effect, so a crash between the
// cancel and the terminal record still settles the job as cancelled on
// recovery instead of re-executing it to completion.
func (m *Manager) Cancel(id string) (*Job, error) {
	return m.CancelFor(nil, id)
}

// CancelFor is Cancel scoped to the tenant's view (see GetFor).
func (m *Manager) CancelFor(tn *tenant.Tenant, id string) (*Job, error) {
	j, err := m.GetFor(tn, id)
	if err != nil {
		return nil, err
	}
	j.requestCancel()
	j.cancel()
	return j, nil
}

// List returns every retained job in submission order (the manager's
// unscoped view).
func (m *Manager) List() []*Job {
	return m.ListFor(nil)
}

// ListFor returns the retained jobs the tenant may see, in submission
// order: its own for a regular tenant, everything for an admin or a nil
// (internal) view.
func (m *Manager) ListFor(tn *tenant.Tenant) []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; tn.CanSee(j.Tenant) {
			out = append(out, j)
		}
	}
	return out
}

// Close cancels every job, waits for them to drain, flushes the warm tier,
// seals the journal and rejects further submissions. Submissions racing
// Close either complete fully (their job reaches a terminal, journaled
// state before Close returns) or fail with ErrClosed — never anything in
// between.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	_ = m.FlushCaches()
	if m.jn != nil {
		if err := m.jn.Close(); err != nil {
			m.logf("jobs: journal close: %v", err)
		}
	}
}

// FlushCaches snapshots the shared memo bundle into Options.CacheDir so a
// restarted daemon starts warm; a no-op (nil) without both ShareMemos and
// CacheDir. cmd/nasaicd calls it periodically and Close calls it at
// shutdown; each flush atomically replaces the previous snapshot. (Without
// ShareMemos each job persists its own caches when its run finishes.)
func (m *Manager) FlushCaches() error {
	if m.shared == nil || m.opts.CacheDir == "" {
		return nil
	}
	return m.shared.SaveDir(m.opts.CacheDir)
}

// evictLocked drops the oldest terminal jobs beyond the history bound and
// returns their IDs for journaling (via journalForgets, outside m.mu).
// Non-terminal jobs are never evicted. Evictions are journaled so the
// journal's state (and the next recovery) stays in step with the history —
// and so compaction can drop the evicted jobs' records entirely.
func (m *Manager) evictLocked() []string {
	excess := len(m.order) - m.opts.maxHistory()
	if excess <= 0 {
		return nil
	}
	var forgotten []string
	kept := m.order[:0]
	for _, id := range m.order {
		if excess > 0 && m.jobs[id].Snapshot().Status.Terminal() {
			delete(m.jobs, id)
			forgotten = append(forgotten, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
	return forgotten
}

// journalForgets appends Forget records for evicted jobs — outside m.mu,
// for the same slow-disk reason Submit journals outside it. A crash between
// the in-memory eviction and this fsync resurrects the evicted jobs on
// recovery, which is harmless: they are terminal and evict again at once.
func (m *Manager) journalForgets(ids []string) {
	if m.jn == nil {
		return
	}
	for _, id := range ids {
		if err := m.jn.Append(journal.Record{Type: journal.TypeForget, Job: id}); err != nil && !errors.Is(err, journal.ErrClosed) {
			m.logf("jobs: journal append (%s %s): %v", journal.TypeForget, id, err)
		}
	}
}

// Job is one managed co-exploration. Fields are immutable after creation;
// mutable state is read through Snapshot, Events and Wait.
type Job struct {
	ID   string
	Spec Spec
	// Tenant is the owning tenant's name; journaled with the submission so
	// quota accounting and API scoping survive restarts.
	Tenant string

	cancel  context.CancelFunc
	created time.Time
	maxEv   int
	slot    chan struct{}        // closed by the dispatcher when the job may run
	jn      *journal.Journal     // nil when the manager is memory-only
	logf    func(string, ...any) // durability warnings (never nil when jn set)

	// Dispatcher bookkeeping, guarded by the Manager's mu (not j.mu).
	queued  bool  // sitting in its tenant's runnable queue
	granted bool  // slot granted (slot closed)
	grant   int64 // grant sequence number; fairness assertions in tests

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	events   []nasaic.Event
	firstSeq int // sequence number of events[0] (ring drops the oldest)
	result   *nasaic.Result
	err      error
	changed  chan struct{} // closed and replaced on every state change
	// worker/remoteID are the cluster binding: which worker replica runs the
	// job and under which remote job ID. Journaled (TypeAssigned) so a
	// restarted coordinator re-attaches instead of re-dispatching.
	worker   string
	remoteID string
}

// Snapshot is a point-in-time copy of a job's mutable state.
type Snapshot struct {
	ID string `json:"id"`
	// Tenant is the owning tenant; omitted for pre-tenancy (anonymous) jobs'
	// wire compatibility only when empty, which cannot happen for new jobs.
	Tenant     string     `json:"tenant,omitempty"`
	Spec       Spec       `json:"spec"`
	Status     Status     `json:"status"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Episodes is the number of events recorded so far (completed episodes).
	Episodes int    `json:"episodes"`
	Error    string `json:"error,omitempty"`
	// Result is the run's outcome: complete on success, partial (best-so-
	// far) when cancelled mid-run, nil while pending/running.
	Result *nasaic.Result `json:"result,omitempty"`
}

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Tenant:    j.Tenant,
		Spec:      j.Spec,
		Status:    j.status,
		CreatedAt: j.created,
		Episodes:  j.firstSeq + len(j.events),
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Err returns the job's terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's result (nil until terminal; partial after
// cancellation).
func (j *Job) Result() *nasaic.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Events returns the buffered events with sequence numbers >= from, the
// sequence number of the first returned event, and a channel that is closed
// on the next state change (new event or status transition). A from older
// than the ring start snaps forward to the oldest retained event; callers
// detect the gap by the returned start exceeding from (the HTTP layer turns
// it into an explicit `reset` frame for SSE clients).
func (j *Job) Events(from int) ([]nasaic.Event, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := from - j.firstSeq
	if start < 0 {
		start = 0
	}
	var out []nasaic.Event
	if start < len(j.events) {
		out = append(out, j.events[start:]...)
	}
	return out, j.firstSeq + start, j.changed
}

// requestCancel journals the cancel request, atomically with the terminal
// check: finish journals the terminal record under the same j.mu, so the
// old unlocked check-then-append race — job finishes between Done() and the
// cancel append, journaling a cancel after the terminal record — cannot
// happen. On a terminal job this is a no-op (and the journal reduction
// additionally ignores cancels on terminal states, as defense in depth).
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.journal(journal.Record{Type: journal.TypeCancel, Job: j.ID})
}

// Done reports whether the job reached a terminal status.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	for {
		j.mu.Lock()
		terminal := j.status.Terminal()
		ch := j.changed
		j.mu.Unlock()
		if terminal {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// NextSeq returns the sequence number the next episode event will carry —
// the resume point (Last-Event-ID + 1) a cluster coordinator streams a
// worker replica from.
func (j *Job) NextSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstSeq + len(j.events)
}

// Assignment returns the job's cluster binding: the worker replica's base
// URL and the remote job ID, or empty strings for an unbound (local) job.
func (j *Job) Assignment() (worker, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.worker, j.remoteID
}

// SetAssignment records the job→worker binding, journaling it before it
// takes effect so a coordinator restart re-attaches to the in-flight remote
// run. Empty strings clear the binding (the worker died; the job is being
// re-dispatched and re-execution is safe because runs are deterministic).
func (j *Job) SetAssignment(worker, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.journal(journal.Record{Type: journal.TypeAssigned, Job: j.ID, Worker: worker, Remote: remoteID})
	j.worker, j.remoteID = worker, remoteID
}

// EmitEvent records one remotely-produced episode event under its origin
// sequence number. Duplicates below the ring head are dropped (a re-attached
// or re-dispatched worker replays its deterministic prefix; the coordinator
// already holds those events); a sequence jump means the worker evicted the
// range before the coordinator could attach, so the local ring skips forward
// — subscribers behind the gap see an explicit reset frame, exactly as for
// local ring eviction. Events journal (canonical encoding, shared with the
// SSE wire) before any subscriber can observe them.
func (j *Job) EmitEvent(seq int, e nasaic.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	next := j.firstSeq + len(j.events)
	if seq < next {
		return
	}
	if seq > next {
		j.skipToLocked(seq)
	}
	if j.jn != nil {
		if raw, err := nasaic.EncodeEvent(e); err == nil {
			j.journal(journal.Record{Type: journal.TypeEvent, Job: j.ID, Seq: seq, Event: raw})
		}
	}
	j.events = append(j.events, e)
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	j.notifyLocked()
}

// SkipTo acknowledges a gap announced by a worker's reset frame: events
// [NextSeq, seq) are unrecoverable (evicted from the worker's bounded ring
// while the coordinator was detached), so the local ring skips forward and
// subscribers see the same reset. A seq at or behind NextSeq is a no-op.
func (j *Job) SkipTo(seq int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.firstSeq+len(j.events) {
		j.skipToLocked(seq)
		j.notifyLocked()
	}
}

// skipToLocked drops the buffered prefix so the ring restarts (contiguous)
// at seq; callers hold j.mu and have checked seq is ahead of the ring.
func (j *Job) skipToLocked(seq int) {
	j.events = j.events[:0]
	j.firstSeq = seq
}

// journal appends one record to the durable journal (fsynced before
// return), so the mutation it describes is on disk before it becomes
// observable. Append failures degrade durability, never the job: they are
// reported through logf and the in-memory state proceeds regardless.
func (j *Job) journal(rec journal.Record) {
	if j.jn == nil {
		return
	}
	if err := j.jn.Append(rec); err != nil && !errors.Is(err, journal.ErrClosed) {
		j.logf("jobs: journal append (%s %s): %v", rec.Type, rec.Job, err)
	}
}

// restoreTerminal rebuilds a terminal job from its journaled state: event
// ring (so SSE Last-Event-ID replay spans restarts), timestamps, error and
// result. Undecodable events truncate the ring at the first bad entry rather
// than leaving a hole mid-stream.
func (j *Job) restoreTerminal(st *journal.JobState, status Status) {
	j.status = status
	j.cancel = func() {} // nothing to cancel; Close/Cancel stay safe to call
	j.started = orAfter(st.Started, j.created)
	j.finished = orAfter(st.Finished, j.started)
	j.restoreEvents(st)
	switch {
	case status == StatusCancelled:
		j.err = context.Canceled
	case st.Error != "":
		j.err = errors.New(st.Error)
	}
	if len(st.Result) > 0 {
		var res nasaic.Result
		if err := json.Unmarshal(st.Result, &res); err != nil {
			j.logf("jobs: recovery: job %s: dropping undecodable result: %v", j.ID, err)
		} else {
			j.result = &res
		}
	}
}

// restoreEvents rebuilds the event ring from a journaled state. Undecodable
// events truncate the ring at the first bad entry rather than leaving a hole
// mid-stream.
func (j *Job) restoreEvents(st *journal.JobState) {
	j.firstSeq = st.FirstSeq
	for _, raw := range st.Events {
		ev, err := nasaic.DecodeEvent(raw)
		if err != nil {
			j.logf("jobs: recovery: job %s: truncating event ring at seq %d (undecodable event: %v)",
				j.ID, j.firstSeq+len(j.events), err)
			break
		}
		j.events = append(j.events, ev)
	}
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
}

// appendEvent records one episode event, dropping the oldest past the ring
// bound, and wakes subscribers. The event journals (canonical encoding,
// shared with the SSE wire format) before any subscriber can observe it.
func (j *Job) appendEvent(e nasaic.Event) {
	j.mu.Lock()
	seq := j.firstSeq + len(j.events)
	if j.jn != nil {
		if raw, err := nasaic.EncodeEvent(e); err == nil {
			j.journal(journal.Record{
				Type:  journal.TypeEvent,
				Job:   j.ID,
				Seq:   seq,
				Event: raw,
			})
		}
	}
	j.events = append(j.events, e)
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.journal(journal.Record{Type: journal.TypeRunning, Job: j.ID, Time: j.started})
	j.notifyLocked()
	j.mu.Unlock()
}

// finish records the terminal state. A context error maps to
// StatusCancelled (keeping the partial result); any other error to
// StatusFailed. The result's engine handle is dropped — retained history
// must not pin every job's evaluator, caches and controller in memory.
// The terminal record (status, error, result) journals before the status
// flips, so a crash after any client saw the job terminal replays it
// terminal.
func (j *Job) finish(res *nasaic.Result, err error) {
	if res != nil {
		res.DetachEngine()
	}
	status := StatusSucceeded
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		status = StatusCancelled
	default:
		status = StatusFailed
	}
	j.mu.Lock()
	j.finished = time.Now()
	rec := journal.Record{
		Type:   journal.TypeFinished,
		Job:    j.ID,
		Time:   j.finished,
		Status: string(status),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if j.jn != nil && res != nil {
		if raw, mErr := json.Marshal(res); mErr == nil {
			rec.Result = raw
		}
	}
	j.journal(rec)
	j.result = res
	j.err = err
	j.status = status
	j.notifyLocked()
	j.mu.Unlock()
}

// notifyLocked wakes every Events/Wait subscriber; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}
