// Package jobs turns pkg/nasaic's context-first Run API into a managed job
// service: submitted co-explorations run as bounded concurrent jobs that
// share one evaluation cache and memo bundle, stream per-episode events into
// a replayable ring buffer, and can be cancelled at any time. The HTTP layer
// in http.go exposes the manager as cmd/nasaicd's /v1/jobs API.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"nasaic/internal/faultfs"
	"nasaic/internal/journal"
	"nasaic/pkg/nasaic"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Spec is one job request. The zero value of every optional field selects
// the engine default, so `{"workload":"W3"}` is a complete submission.
type Spec struct {
	// Workload is W1, W2 or W3 (required).
	Workload string `json:"workload"`
	// Episodes is β; 0 selects the default (500).
	Episodes int `json:"episodes,omitempty"`
	// HWSteps is φ; nil selects the default (10).
	HWSteps *int `json:"hw_steps,omitempty"`
	// Seed drives the deterministic search; 0 selects the default (1).
	Seed int64 `json:"seed,omitempty"`
	// Optimizer is "rl" (default) or "ea".
	Optimizer string `json:"optimizer,omitempty"`
	// Refine toggles the exploit phase; nil selects the default (on).
	Refine *bool `json:"refine,omitempty"`
	// Workers bounds the hardware-evaluation goroutines; 0 selects NumCPU.
	Workers int `json:"workers,omitempty"`
}

// options translates the spec into facade options (shared memos and event
// plumbing are added by the manager).
func (sp Spec) options() ([]nasaic.Option, error) {
	if sp.Workload == "" {
		return nil, fmt.Errorf("jobs: workload is required")
	}
	opts := []nasaic.Option{nasaic.WithWorkload(sp.Workload)}
	if sp.Episodes < 0 {
		return nil, fmt.Errorf("jobs: episodes must be non-negative")
	}
	if sp.Episodes > 0 {
		opts = append(opts, nasaic.WithEpisodes(sp.Episodes))
	}
	if sp.HWSteps != nil {
		opts = append(opts, nasaic.WithHWSteps(*sp.HWSteps))
	}
	if sp.Seed != 0 {
		opts = append(opts, nasaic.WithSeed(sp.Seed))
	}
	if sp.Optimizer != "" {
		opts = append(opts, nasaic.WithOptimizer(nasaic.Optimizer(sp.Optimizer)))
	}
	if sp.Refine != nil {
		opts = append(opts, nasaic.WithRefine(*sp.Refine))
	}
	if sp.Workers != 0 {
		opts = append(opts, nasaic.WithWorkers(sp.Workers))
	}
	return opts, nil
}

// Options configures a Manager.
type Options struct {
	// MaxConcurrent bounds the jobs exploring at once; further submissions
	// queue as pending. <=0 selects 2.
	MaxConcurrent int
	// MaxHistory bounds the finished jobs retained for inspection; the
	// oldest terminal jobs are evicted first. <=0 selects 64.
	MaxHistory int
	// EventBuffer bounds each job's replayable event ring; once exceeded,
	// the oldest events are dropped (subscribers that far behind see a
	// gap). <=0 selects 4096.
	EventBuffer int
	// ShareMemos routes every job through one shared evaluation-cache and
	// memo bundle (bit-identical; jobs warm-start each other). The zero
	// value is off; cmd/nasaicd turns it on by default (-sharedmemo=false
	// opts out).
	ShareMemos bool
	// MaxPending bounds the jobs queued for a concurrency slot; once
	// reached, Submit rejects further specs with ErrTooManyPending (the
	// HTTP layer maps it to 429) instead of queueing without bound. <=0
	// (the zero value) keeps the seed behavior of an unbounded queue.
	MaxPending int
	// CacheDir backs every job's memo tiers with the persistent on-disk
	// warm tier under this directory (see nasaic.WithCacheDir), so a
	// restarted daemon starts warm. The shared bundle is additionally
	// snapshotted by FlushCaches (periodic, via cmd/nasaicd) and on Close.
	// Empty keeps the warm tier off.
	CacheDir string
	// DataDir enables the durable job journal under DataDir/journal: every
	// submission, state transition and episode event is fsynced to a
	// write-ahead log before it becomes observable over HTTP, and a new
	// manager over the same directory restores terminal jobs (full event
	// rings included, so SSE Last-Event-ID replay spans restarts) and
	// re-executes the jobs that were pending or running when the process
	// died — the seeded determinism suite guarantees the re-run converges to
	// the bit-identical result, re-emitting events under their journaled
	// sequence numbers. Empty keeps the manager memory-only (the seed
	// behavior). Journal damage (torn tails, bit flips, version skew) is
	// truncated away at startup, never a refusal to start; if the journal
	// cannot be opened at all the manager degrades to memory-only and says
	// so through Logf.
	DataDir string
	// FS overrides the filesystem the journal writes through (fault
	// injection in tests). Nil selects the real one.
	FS faultfs.FS
	// Logf receives durability degradation warnings (journal append
	// failures, recovery repairs). Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return 2
}

func (o Options) maxHistory() int {
	if o.MaxHistory > 0 {
		return o.MaxHistory
	}
	return 64
}

func (o Options) eventBuffer() int {
	if o.EventBuffer > 0 {
		return o.EventBuffer
	}
	return 4096
}

func (o Options) logf() func(string, ...any) {
	if o.Logf != nil {
		return o.Logf
	}
	return func(string, ...any) {}
}

// ErrClosed is returned by Submit after the manager shut down.
var ErrClosed = errors.New("jobs: manager closed")

// ErrTooManyPending is returned by Submit when Options.MaxPending jobs are
// already waiting for a concurrency slot.
var ErrTooManyPending = errors.New("jobs: too many pending jobs")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: job not found")

// Manager owns the job set: submission, bounded execution, streaming and
// cancellation. All methods are safe for concurrent use.
type Manager struct {
	opts   Options
	shared *nasaic.SharedMemos
	jn     *journal.Journal
	logf   func(string, ...any)
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	seq     int
	pending int // jobs waiting for a concurrency slot (MaxPending bound)
	jobs    map[string]*Job
	order   []string // submission order, for listing and history eviction
}

// NewManager builds a manager; Close releases it. With Options.DataDir set
// it opens (or recovers) the durable journal first: terminal jobs reappear
// in the history with their event rings, and interrupted jobs are
// re-executed from their journaled specs. Recovery never fails construction
// — journal damage truncates away, and an unopenable journal degrades to a
// memory-only manager (reported through Options.Logf).
func NewManager(opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:   opts,
		logf:   opts.logf(),
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, opts.maxConcurrent()),
		jobs:   make(map[string]*Job),
	}
	if opts.ShareMemos {
		m.shared = nasaic.NewSharedMemos()
		if opts.CacheDir != "" {
			// Warm the bundle from the persistent tier at startup, so even
			// the first job benefits from a previous daemon's work.
			m.shared.LoadDir(opts.CacheDir)
		}
	}
	if opts.DataDir != "" {
		jn, err := journal.Open(filepath.Join(opts.DataDir, "journal"), journal.Options{
			FS:       opts.FS,
			EventCap: opts.eventBuffer(),
		})
		if err != nil {
			m.logf("jobs: journal disabled, jobs will not survive restarts: %v", err)
		} else {
			m.jn = jn
			if rec := jn.Recovery(); rec.TruncatedBytes > 0 || rec.SkippedSegments > 0 {
				m.logf("jobs: journal recovery repaired damage: truncated %d bytes, skipped %d segments (%d records kept)",
					rec.TruncatedBytes, rec.SkippedSegments, rec.Records)
			}
			m.recover(jn.States())
		}
	}
	return m
}

// recover rebuilds the job set from the journal's reduced states:
// terminal jobs go straight into history, jobs with a journaled cancel
// request but no terminal record settle as cancelled, and everything else
// re-executes from its spec (determinism makes the re-run bit-identical,
// re-emitting its events under the already-journaled sequence numbers).
func (m *Manager) recover(states []*journal.JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range states {
		var n int
		if _, err := fmt.Sscanf(st.ID, "job-%d", &n); err == nil && n > m.seq {
			m.seq = n // later submissions continue the journaled ID sequence
		}
		var spec Spec
		if err := json.Unmarshal(st.Spec, &spec); err != nil {
			m.logf("jobs: recovery: dropping job %s (undecodable spec: %v)", st.ID, err)
			continue
		}
		j := &Job{
			ID:      st.ID,
			Spec:    spec,
			created: orNow(st.Created),
			maxEv:   m.opts.eventBuffer(),
			changed: make(chan struct{}),
			jn:      m.jn,
			logf:    m.logf,
		}
		switch {
		case st.Terminal():
			j.restoreTerminal(st, Status(st.Status))
		case st.CancelRequested:
			// Cancelled mid-run, killed before the terminal record landed:
			// honour the cancel rather than re-executing to completion, and
			// journal the settlement so the next recovery is direct.
			j.restoreTerminal(st, StatusCancelled)
			j.journal(journal.Record{
				Type:   journal.TypeFinished,
				Job:    j.ID,
				Time:   j.finished,
				Status: string(StatusCancelled),
				Error:  j.err.Error(),
			})
		default:
			// Pending or running at crash time: re-execute from the spec.
			jctx, jcancel := context.WithCancel(m.ctx)
			j.status = StatusPending
			j.cancel = jcancel
			m.pending++
			m.wg.Add(1)
			go m.run(j, jctx)
		}
		m.jobs[st.ID] = j
		m.order = append(m.order, st.ID)
	}
	m.evictLocked()
}

// orNow guards restored timestamps against zero values from older records.
func orNow(t time.Time) time.Time {
	if t.IsZero() {
		return time.Now()
	}
	return t
}

// Submit validates the spec, registers a pending job and starts it as soon
// as a concurrency slot frees up. It returns the job immediately. When
// Options.MaxPending jobs are already waiting for a slot, it rejects the
// spec with ErrTooManyPending instead of queueing without bound.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if _, err := spec.options(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.opts.MaxPending > 0 && m.pending >= m.opts.MaxPending {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (max %d)", ErrTooManyPending, m.opts.MaxPending)
	}
	m.pending++
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:      id,
		Spec:    spec,
		created: time.Now(),
		status:  StatusPending,
		maxEv:   m.opts.eventBuffer(),
		changed: make(chan struct{}),
		cancel:  jcancel,
		jn:      m.jn,
		logf:    m.logf,
	}
	// The submission is journaled (and fsynced) before the job becomes
	// observable: once a client holds the job ID, a crash cannot forget it.
	if m.jn != nil {
		if specJSON, err := json.Marshal(spec); err == nil {
			j.journal(journal.Record{
				Type: journal.TypeSubmitted,
				Job:  id,
				Time: j.created,
				Spec: specJSON,
			})
		}
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(j, jctx)
	return j, nil
}

// run executes one job end to end on its own goroutine.
func (m *Manager) run(j *Job, ctx context.Context) {
	defer m.wg.Done()
	defer j.cancel()

	// Wait for a concurrency slot, unless cancelled while pending. Either
	// way the job stops counting against the MaxPending bound here.
	select {
	case m.sem <- struct{}{}:
		m.pendingDone()
	case <-ctx.Done():
		m.pendingDone()
		j.finish(nil, ctx.Err())
		return
	}
	defer func() { <-m.sem }()
	if ctx.Err() != nil {
		j.finish(nil, ctx.Err())
		return
	}

	opts, err := j.Spec.options()
	if err != nil { // unreachable: validated at submit
		j.finish(nil, err)
		return
	}
	if m.shared != nil {
		opts = append(opts, nasaic.WithSharedMemos(m.shared))
	}
	if m.opts.CacheDir != "" {
		opts = append(opts, nasaic.WithCacheDir(m.opts.CacheDir))
	}
	opts = append(opts, nasaic.WithEventHandler(j.appendEvent))
	j.setRunning()
	res, err := nasaic.Run(ctx, opts...)
	j.finish(res, err)
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of the job with the given ID. Cancelling a
// terminal job is a no-op; the returned job reflects the state at call time.
// The request is journaled before it takes effect, so a crash between the
// cancel and the terminal record still settles the job as cancelled on
// recovery instead of re-executing it to completion.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	if !j.Done() {
		j.journal(journal.Record{Type: journal.TypeCancel, Job: j.ID})
	}
	j.cancel()
	return j, nil
}

// List returns every retained job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Close cancels every job, waits for them to drain, flushes the warm tier,
// seals the journal and rejects further submissions. Submissions racing
// Close either complete fully (their job reaches a terminal, journaled
// state before Close returns) or fail with ErrClosed — never anything in
// between.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	_ = m.FlushCaches()
	if m.jn != nil {
		if err := m.jn.Close(); err != nil {
			m.logf("jobs: journal close: %v", err)
		}
	}
}

// FlushCaches snapshots the shared memo bundle into Options.CacheDir so a
// restarted daemon starts warm; a no-op (nil) without both ShareMemos and
// CacheDir. cmd/nasaicd calls it periodically and Close calls it at
// shutdown; each flush atomically replaces the previous snapshot. (Without
// ShareMemos each job persists its own caches when its run finishes.)
func (m *Manager) FlushCaches() error {
	if m.shared == nil || m.opts.CacheDir == "" {
		return nil
	}
	return m.shared.SaveDir(m.opts.CacheDir)
}

// pendingDone marks one job as no longer waiting for a concurrency slot.
func (m *Manager) pendingDone() {
	m.mu.Lock()
	m.pending--
	m.mu.Unlock()
}

// evictLocked drops the oldest terminal jobs beyond the history bound.
// Non-terminal jobs are never evicted. Evictions are journaled so the
// journal's state (and the next recovery) stays in step with the history —
// and so compaction can drop the evicted jobs' records entirely.
func (m *Manager) evictLocked() {
	excess := len(m.order) - m.opts.maxHistory()
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if excess > 0 && m.jobs[id].Snapshot().Status.Terminal() {
			m.jobs[id].journal(journal.Record{Type: journal.TypeForget, Job: id})
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Job is one managed co-exploration. Fields are immutable after creation;
// mutable state is read through Snapshot, Events and Wait.
type Job struct {
	ID   string
	Spec Spec

	cancel  context.CancelFunc
	created time.Time
	maxEv   int
	jn      *journal.Journal     // nil when the manager is memory-only
	logf    func(string, ...any) // durability warnings (never nil when jn set)

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	events   []nasaic.Event
	firstSeq int // sequence number of events[0] (ring drops the oldest)
	result   *nasaic.Result
	err      error
	changed  chan struct{} // closed and replaced on every state change
}

// Snapshot is a point-in-time copy of a job's mutable state.
type Snapshot struct {
	ID         string     `json:"id"`
	Spec       Spec       `json:"spec"`
	Status     Status     `json:"status"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Episodes is the number of events recorded so far (completed episodes).
	Episodes int    `json:"episodes"`
	Error    string `json:"error,omitempty"`
	// Result is the run's outcome: complete on success, partial (best-so-
	// far) when cancelled mid-run, nil while pending/running.
	Result *nasaic.Result `json:"result,omitempty"`
}

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Spec:      j.Spec,
		Status:    j.status,
		CreatedAt: j.created,
		Episodes:  j.firstSeq + len(j.events),
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Err returns the job's terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's result (nil until terminal; partial after
// cancellation).
func (j *Job) Result() *nasaic.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Events returns the buffered events with sequence numbers >= from, the
// sequence number of the first returned event, and a channel that is closed
// on the next state change (new event or status transition). A from older
// than the ring start snaps forward to the oldest retained event; callers
// detect the gap by the returned start exceeding from (the HTTP layer turns
// it into an explicit `reset` frame for SSE clients).
func (j *Job) Events(from int) ([]nasaic.Event, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := from - j.firstSeq
	if start < 0 {
		start = 0
	}
	var out []nasaic.Event
	if start < len(j.events) {
		out = append(out, j.events[start:]...)
	}
	return out, j.firstSeq + start, j.changed
}

// Done reports whether the job reached a terminal status.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	for {
		j.mu.Lock()
		terminal := j.status.Terminal()
		ch := j.changed
		j.mu.Unlock()
		if terminal {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// journal appends one record to the durable journal (fsynced before
// return), so the mutation it describes is on disk before it becomes
// observable. Append failures degrade durability, never the job: they are
// reported through logf and the in-memory state proceeds regardless.
func (j *Job) journal(rec journal.Record) {
	if j.jn == nil {
		return
	}
	if err := j.jn.Append(rec); err != nil && !errors.Is(err, journal.ErrClosed) {
		j.logf("jobs: journal append (%s %s): %v", rec.Type, rec.Job, err)
	}
}

// restoreTerminal rebuilds a terminal job from its journaled state: event
// ring (so SSE Last-Event-ID replay spans restarts), timestamps, error and
// result. Undecodable events truncate the ring at the first bad entry rather
// than leaving a hole mid-stream.
func (j *Job) restoreTerminal(st *journal.JobState, status Status) {
	j.status = status
	j.cancel = func() {} // nothing to cancel; Close/Cancel stay safe to call
	j.started = orNow(st.Started)
	j.finished = orNow(st.Finished)
	j.firstSeq = st.FirstSeq
	for _, raw := range st.Events {
		ev, err := nasaic.DecodeEvent(raw)
		if err != nil {
			j.logf("jobs: recovery: job %s: truncating event ring at seq %d (undecodable event: %v)",
				j.ID, j.firstSeq+len(j.events), err)
			break
		}
		j.events = append(j.events, ev)
	}
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	switch {
	case status == StatusCancelled:
		j.err = context.Canceled
	case st.Error != "":
		j.err = errors.New(st.Error)
	}
	if len(st.Result) > 0 {
		var res nasaic.Result
		if err := json.Unmarshal(st.Result, &res); err != nil {
			j.logf("jobs: recovery: job %s: dropping undecodable result: %v", j.ID, err)
		} else {
			j.result = &res
		}
	}
}

// appendEvent records one episode event, dropping the oldest past the ring
// bound, and wakes subscribers. The event journals (canonical encoding,
// shared with the SSE wire format) before any subscriber can observe it.
func (j *Job) appendEvent(e nasaic.Event) {
	j.mu.Lock()
	seq := j.firstSeq + len(j.events)
	if j.jn != nil {
		if raw, err := nasaic.EncodeEvent(e); err == nil {
			j.journal(journal.Record{
				Type:  journal.TypeEvent,
				Job:   j.ID,
				Seq:   seq,
				Event: raw,
			})
		}
	}
	j.events = append(j.events, e)
	if len(j.events) > j.maxEv {
		drop := len(j.events) - j.maxEv
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.journal(journal.Record{Type: journal.TypeRunning, Job: j.ID, Time: j.started})
	j.notifyLocked()
	j.mu.Unlock()
}

// finish records the terminal state. A context error maps to
// StatusCancelled (keeping the partial result); any other error to
// StatusFailed. The result's engine handle is dropped — retained history
// must not pin every job's evaluator, caches and controller in memory.
// The terminal record (status, error, result) journals before the status
// flips, so a crash after any client saw the job terminal replays it
// terminal.
func (j *Job) finish(res *nasaic.Result, err error) {
	if res != nil {
		res.DetachEngine()
	}
	status := StatusSucceeded
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		status = StatusCancelled
	default:
		status = StatusFailed
	}
	j.mu.Lock()
	j.finished = time.Now()
	rec := journal.Record{
		Type:   journal.TypeFinished,
		Job:    j.ID,
		Time:   j.finished,
		Status: string(status),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if j.jn != nil && res != nil {
		if raw, mErr := json.Marshal(res); mErr == nil {
			rec.Result = raw
		}
	}
	j.journal(rec)
	j.result = res
	j.err = err
	j.status = status
	j.notifyLocked()
	j.mu.Unlock()
}

// notifyLocked wakes every Events/Wait subscriber; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}
