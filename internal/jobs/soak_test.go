package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nasaic/internal/tenant"
	"nasaic/pkg/nasaic"
)

// TestMultiTenantSoak is the load-generator harness for the fair-share
// dispatcher: hundreds of concurrent clients submit, stream and cancel jobs
// across two tenants with equal quotas, with the heavy tenant submitting an
// order of magnitude more work than the light one. It asserts the
// multi-tenant contract under contention (CI runs it under -race):
//
//   - no starvation: every accepted light job reaches running, and the
//     light tenant's p99 time-to-running stays bounded even while the heavy
//     tenant's queue is always full;
//   - quota enforcement: the heavy tenant's burst draws 429s, each with a
//     Retry-After hint, and every accepted job still settles terminally;
//   - auth: bad and missing keys are rejected (403/401) throughout the run,
//     and scoped listings never leak another tenant's jobs.
func TestMultiTenantSoak(t *testing.T) {
	heavyJobs, lightJobs, submitters := 200, 20, 20
	streamers, cancels := 40, 20
	if testing.Short() {
		heavyJobs, lightJobs, submitters = 60, 6, 12
		streamers, cancels = 12, 6
	}
	// Equal for heavy and light; small enough that the heavy submitter pool
	// (which always outnumbers it) reliably overdrives the quota.
	quota := tenant.Limits{MaxPending: 4}
	reg, err := tenant.New([]tenant.Tenant{
		{Name: "heavy", Limits: quota},
		{Name: "light", Limits: quota},
		{Name: "ops", Admin: true},
	}, []string{"heavy-key-1", "light-key-2", "ops-key-3"})
	if err != nil {
		t.Fatal(err)
	}

	// History must hold the whole run: the fairness measurement reads every
	// light job's snapshot after the drain.
	m := NewManager(Options{MaxConcurrent: 4, MaxHistory: heavyJobs + lightJobs + 16, Tenants: reg})
	defer m.Close()
	// Fake work: a millisecond of "exploration" that honours cancellation,
	// so the soak exercises scheduling, not the engine.
	m.testRun = func(ctx context.Context, j *Job) (*nasaic.Result, error) {
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &nasaic.Result{Episodes: j.Spec.Episodes}, nil
	}
	srv := httptest.NewServer(NewAuthHandler(m, reg))
	defer srv.Close()
	client := srv.Client()

	request := func(method, path, key string, body []byte) (*http.Response, error) {
		req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		return client.Do(req)
	}

	var (
		mu       sync.Mutex
		ids      = map[string][]string{} // tenant -> accepted job IDs
		rejected atomic.Int64            // 429s observed
		failures = make(chan string, 64)
	)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}
	// submit pushes one job through the API, retrying over quota rejections
	// until accepted; every 429 must carry a Retry-After hint.
	submit := func(key string) (string, bool) {
		body := []byte(`{"workload":"W3","episodes":3}`)
		for attempt := 0; attempt < 500; attempt++ {
			resp, err := request("POST", "/v1/jobs", key, body)
			if err != nil {
				fail("submit: %v", err)
				return "", false
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					fail("429 without Retry-After")
				}
				resp.Body.Close()
				rejected.Add(1)
				time.Sleep(time.Duration(1+rand.Intn(3)) * time.Millisecond)
				continue
			}
			var snap Snapshot
			decErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || decErr != nil {
				fail("submit: status %d (decode %v)", resp.StatusCode, decErr)
				return "", false
			}
			return snap.ID, true
		}
		fail("submit: starved out after 500 quota retries")
		return "", false
	}

	var wg sync.WaitGroup
	jobsPerWorker := heavyJobs / submitters
	heavyJobs = jobsPerWorker * submitters // exact, whatever the split
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPerWorker; i++ {
				if id, ok := submit("heavy-key-1"); ok {
					mu.Lock()
					ids["heavy"] = append(ids["heavy"], id)
					mu.Unlock()
				}
			}
		}()
	}
	for w := 0; w < lightJobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if id, ok := submit("light-key-2"); ok {
				mu.Lock()
				ids["light"] = append(ids["light"], id)
				mu.Unlock()
			}
		}()
	}
	// Streamers follow whatever jobs exist until the terminal done frame.
	for w := 0; w < streamers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			pool := append([]string(nil), ids["heavy"]...)
			mu.Unlock()
			if len(pool) == 0 {
				return
			}
			id := pool[rand.Intn(len(pool))]
			resp, err := request("GET", "/v1/jobs/"+id+"/events", "heavy-key-1", nil)
			if err != nil {
				fail("stream: %v", err)
				return
			}
			defer resp.Body.Close()
			frames := readSSE(t, bufio.NewReader(resp.Body), 100)
			if len(frames) == 0 || frames[len(frames)-1].event != "done" {
				fail("stream of %s ended without a done frame", id)
			}
		}()
	}
	// Cancellers tear down a slice of the heavy burst mid-flight.
	for w := 0; w < cancels; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			pool := append([]string(nil), ids["heavy"]...)
			mu.Unlock()
			if len(pool) == 0 {
				return
			}
			resp, err := request("DELETE", "/v1/jobs/"+pool[rand.Intn(len(pool))], "heavy-key-1", nil)
			if err != nil {
				fail("cancel: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusNotFound {
				// 404 is legal: the job may already be evicted from history.
				fail("cancel: status %d", resp.StatusCode)
			}
		}()
	}
	// Auth probes hammer the middleware while everything else is running.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := request("GET", "/v1/jobs", "", nil)
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusUnauthorized {
						fail("missing key: status %d, want 401", resp.StatusCode)
					}
				}
				resp, err = request("GET", "/v1/jobs", "intruder-key-0", nil)
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusForbidden {
						fail("bad key: status %d, want 403", resp.StatusCode)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(failures)
	for msg := range failures {
		t.Error(msg)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Drain: every accepted job settles terminally.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, tn := range []string{"heavy", "light"} {
		for _, id := range ids[tn] {
			j, err := m.Get(id)
			if err != nil {
				continue // evicted from the bounded history after finishing
			}
			if err := j.Wait(drainCtx); err != nil {
				t.Fatalf("%s job %s never settled: %v", tn, id, err)
			}
		}
	}

	if got := len(ids["heavy"]) + len(ids["light"]); got != heavyJobs+lightJobs {
		t.Fatalf("accepted %d jobs, want %d", got, heavyJobs+lightJobs)
	}
	if rejected.Load() == 0 {
		t.Error("heavy burst never drew a 429 — quota not enforced")
	}

	// No starvation: every light job ran, and the light tenant's p99
	// time-to-running stays bounded even though the heavy tenant kept its
	// quota-bounded queue full for the whole run. The bound is generous (CI
	// machines under -race are slow) — the regression it guards against is
	// FIFO behavior, where light jobs wait behind the entire heavy backlog.
	var waits []time.Duration
	for _, id := range ids["light"] {
		j, err := m.Get(id)
		if err != nil {
			continue
		}
		snap := j.Snapshot()
		if snap.StartedAt == nil {
			t.Fatalf("light job %s never started (status %s)", id, snap.Status)
		}
		waits = append(waits, snap.StartedAt.Sub(snap.CreatedAt))
	}
	if len(waits) == 0 {
		t.Fatal("no light jobs measured")
	}
	sort.Slice(waits, func(i, k int) bool { return waits[i] < waits[k] })
	p99 := waits[len(waits)*99/100]
	if p99 > 10*time.Second {
		t.Fatalf("light tenant p99 time-to-running %v — starved behind the heavy burst", p99)
	}
	t.Logf("soak: %d heavy + %d light jobs, %d quota rejections, light p99 time-to-running %v",
		len(ids["heavy"]), len(ids["light"]), rejected.Load(), p99)

	// Scoping held under load: the light tenant's listing shows only its
	// own jobs.
	resp, err := request("GET", "/v1/jobs", "light-key-2", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listed []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	for _, snap := range listed {
		if snap.Tenant != "light" {
			t.Fatalf("light listing leaked %s's job %s", snap.Tenant, snap.ID)
		}
	}
}
