package jobs

import (
	"context"
	"testing"
	"time"

	"nasaic/pkg/nasaic"
)

// fakeExecutor is a controllable Executor: Execute emits scripted events and
// blocks until released (or ctx is done), and the DrainEstimate is whatever
// the test says the "cluster" looks like.
type fakeExecutor struct {
	release chan struct{}
	result  *nasaic.Result

	queued, slots int
	ok            bool
}

func (f *fakeExecutor) Execute(ctx context.Context, j *Job) (*nasaic.Result, error) {
	select {
	case <-f.release:
		return f.result, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *fakeExecutor) DrainEstimate() (int, int, bool) { return f.queued, f.slots, f.ok }

// TestExecutorSeam pins the dispatch seam: with Options.Executor set, granted
// jobs run through it instead of the in-process engine, and its return value
// becomes the job's terminal result.
func TestExecutorSeam(t *testing.T) {
	fake := &fakeExecutor{release: make(chan struct{}), result: &nasaic.Result{Episodes: 7}}
	m := NewManager(Options{MaxConcurrent: 1, Executor: fake})
	defer m.Close()

	j, err := m.Submit(Spec{Workload: "W3", Episodes: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The executor holds the job in running until released.
	deadline := time.Now().Add(5 * time.Second)
	for j.Snapshot().Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s before reaching the executor", j.Snapshot().Status)
		}
		time.Sleep(time.Millisecond)
	}
	close(fake.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if snap.Status != StatusSucceeded || snap.Result == nil || snap.Result.Episodes != 7 {
		t.Fatalf("executor result not adopted: %+v", snap)
	}
}

// TestEmitEventDedupAndGap pins the remote-event semantics the cluster
// coordinator depends on: duplicates below the ring head are dropped (a
// re-dispatched worker replays its deterministic prefix), a sequence jump
// skips the ring forward so subscribers see a reset instead of a silent
// hole, and SkipTo records a worker-announced gap even with no event after
// it yet.
func TestEmitEventDedupAndGap(t *testing.T) {
	fake := &fakeExecutor{release: make(chan struct{})}
	m := NewManager(Options{MaxConcurrent: 1, Executor: fake})
	defer m.Close()
	defer close(fake.release)

	j, err := m.Submit(Spec{Workload: "W3"})
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		j.EmitEvent(seq, nasaic.Event{Episode: seq})
	}
	j.EmitEvent(1, nasaic.Event{Episode: 999}) // duplicate: must be dropped
	evs, start, _ := j.Events(0)
	if start != 0 || len(evs) != 3 || evs[1].Episode != 1 {
		t.Fatalf("after dup: start %d, %d events, evs[1]=%+v", start, len(evs), evs[1])
	}

	// Worker-announced gap with no trailing event yet.
	j.SkipTo(5)
	if got := j.NextSeq(); got != 5 {
		t.Fatalf("NextSeq after SkipTo(5) = %d", got)
	}
	j.SkipTo(4) // behind the head: no-op
	if got := j.NextSeq(); got != 5 {
		t.Fatalf("NextSeq after backwards SkipTo = %d", got)
	}

	// Gap implied by an event far ahead: ring restarts there, contiguous.
	j.EmitEvent(10, nasaic.Event{Episode: 10})
	j.EmitEvent(11, nasaic.Event{Episode: 11})
	evs, start, _ = j.Events(0)
	if start != 10 || len(evs) != 2 {
		t.Fatalf("after gap: start %d, %d events", start, len(evs))
	}
	if j.NextSeq() != 12 {
		t.Fatalf("NextSeq = %d, want 12", j.NextSeq())
	}
}

// TestRetryAfterAggregatesClusterDrain pins the coordinator's 429 hint: when
// the executor reports cluster-wide queue depth and slots, the Retry-After
// estimate uses them instead of the single-node formula.
func TestRetryAfterAggregatesClusterDrain(t *testing.T) {
	fake := &fakeExecutor{release: make(chan struct{})}
	m := NewManager(Options{MaxConcurrent: 1, MaxPending: 1, Executor: fake})
	defer m.Close()
	defer close(fake.release)

	if _, err := m.Submit(Spec{Workload: "W3"}); err != nil { // occupies the slot
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Workload: "W3"}); err != nil { // fills the queue
		t.Fatal(err)
	}

	reject := func(want time.Duration) {
		t.Helper()
		_, err := m.Submit(Spec{Workload: "W3"})
		qe, ok := err.(*QuotaError)
		if !ok {
			t.Fatalf("submit error %v, want QuotaError", err)
		}
		if qe.RetryAfter != want {
			t.Fatalf("RetryAfter = %v, want %v", qe.RetryAfter, want)
		}
	}

	// No estimate: single-node formula over the local queue (1 queued, 1 slot).
	reject(2 * time.Second)

	// Cluster estimate: 10 queued across workers draining through 4 slots —
	// (1 local + 10 remote) / 4 → 3s, not the single-node 2s.
	fake.queued, fake.slots, fake.ok = 10, 4, true
	reject(3 * time.Second)
}
