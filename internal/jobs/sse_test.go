package jobs

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// idleStreamFixture builds a manager whose second job is parked pending
// (the first holds the only concurrency slot), so its event stream carries
// no episode traffic — only heartbeats.
func idleStreamFixture(t *testing.T, cfg handlerConfig) (*server, *httptest.Server, *Job) {
	t.Helper()
	m := NewManager(Options{MaxConcurrent: 1})
	t.Cleanup(m.Close)
	long, err := m.Submit(quickSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, long, time.Minute)
	idle, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(m, nil, cfg)
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)
	return s, srv, idle
}

// TestSSEHeartbeatOnIdleStream pins the liveness signal: a stream with no
// events must still emit comment frames at the heartbeat interval, so
// clients and proxies can distinguish a quiet stream from a dead socket.
func TestSSEHeartbeatOnIdleStream(t *testing.T) {
	_, srv, idle := idleStreamFixture(t, handlerConfig{heartbeat: 10 * time.Millisecond})

	resp, err := http.Get(srv.URL + "/v1/jobs/" + idle.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended before a heartbeat: %v", err)
		}
		if strings.HasPrefix(line, ":") {
			return // comment frame observed — the stream is provably alive
		}
	}
	t.Fatal("no heartbeat comment within 10s on an idle stream")
}

// TestSSEStalledReaderDisconnects pins the other direction: a client that
// connects and then never reads must not pin the handler goroutine forever.
// The padded heartbeats fill the kernel socket buffers, the per-write
// deadline fires, and the handler exits — observable as the active-stream
// count returning to zero while the client socket is still open.
func TestSSEStalledReaderDisconnects(t *testing.T) {
	s, srv, idle := idleStreamFixture(t, handlerConfig{
		heartbeat:    5 * time.Millisecond,
		writeTimeout: 150 * time.Millisecond,
		hbPad:        1 << 20, // 1 MiB per heartbeat: buffers fill in a few ticks
	})

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/jobs/%s/events HTTP/1.1\r\nHost: stalled\r\n\r\n", idle.ID)
	// From here on the client reads nothing, ever.

	waitStreams := func(want int64, timeout time.Duration, what string) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if s.streams.Load() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%s: active streams = %d, want %d", what, s.streams.Load(), want)
	}
	waitStreams(1, 5*time.Second, "stream never started")
	waitStreams(0, 20*time.Second, "stalled reader not torn down")
}
