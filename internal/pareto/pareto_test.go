package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

func TestDominates(t *testing.T) {
	a := Point{Values: []float64{1, 2}}
	b := Point{Values: []float64{2, 3}}
	c := Point{Values: []float64{1, 2}}
	d := Point{Values: []float64{0, 5}}
	if !Dominates(a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(b, a) {
		t.Error("b should not dominate a")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("equal points must not dominate each other")
	}
	if Dominates(a, d) || Dominates(d, a) {
		t.Error("incomparable points must not dominate each other")
	}
	if Dominates(a, Point{Values: []float64{1}}) {
		t.Error("dimension mismatch must not dominate")
	}
}

func TestFrontSimple(t *testing.T) {
	pts := []Point{
		{Values: []float64{1, 5}, Tag: 0},
		{Values: []float64{2, 2}, Tag: 1},
		{Values: []float64{5, 1}, Tag: 2},
		{Values: []float64{4, 4}, Tag: 3}, // dominated by (2,2)
		{Values: []float64{2, 6}, Tag: 4}, // dominated by (1,5)
	}
	f := Front(pts)
	if len(f) != 3 {
		t.Fatalf("front size %d, want 3", len(f))
	}
	tags := map[int]bool{}
	for _, p := range f {
		tags[p.Tag] = true
	}
	for _, want := range []int{0, 1, 2} {
		if !tags[want] {
			t.Errorf("tag %d missing from front", want)
		}
	}
}

// Front2D must agree with the general Front on two objectives.
func TestFront2DAgreesWithFront(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(n8 uint8) bool {
		n := int(n8%40) + 1
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Values: []float64{float64(rng.Intn(20)), float64(rng.Intn(20))}, Tag: i}
		}
		general := Front(pts)
		fast := Front2D(pts)
		// Compare as sets of value pairs (duplicates can differ: Front keeps
		// all copies, Front2D keeps one; compare unique sets).
		set := func(ps []Point) map[[2]float64]bool {
			m := map[[2]float64]bool{}
			for _, p := range ps {
				m[[2]float64{p.Values[0], p.Values[1]}] = true
			}
			return m
		}
		ga, fa := set(general), set(fast)
		if len(ga) != len(fa) {
			return false
		}
		for k := range ga {
			if !fa[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: no point in the front is dominated by any input point.
func TestFrontNonDominated(t *testing.T) {
	rng := stats.NewRNG(7)
	f := func(n8 uint8, dim8 uint8) bool {
		n := int(n8%30) + 1
		dim := int(dim8%3) + 2
		pts := make([]Point, n)
		for i := range pts {
			v := make([]float64, dim)
			for d := range v {
				v[d] = rng.Float64() * 10
			}
			pts[i] = Point{Values: v, Tag: i}
		}
		for _, p := range Front(pts) {
			for _, q := range pts {
				if q.Tag != p.Tag && Dominates(q, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (1,1) in box [0,3]x[0,3]: dominated area = (3-1)*(3-1)=4.
	hv := Hypervolume2D([]Point{{Values: []float64{1, 1}}}, 3, 3)
	if math.Abs(hv-4) > 1e-12 {
		t.Errorf("hypervolume = %f, want 4", hv)
	}
	// Adding a dominated point must not change the volume.
	hv2 := Hypervolume2D([]Point{
		{Values: []float64{1, 1}},
		{Values: []float64{2, 2}},
	}, 3, 3)
	if math.Abs(hv2-4) > 1e-12 {
		t.Errorf("hypervolume with dominated point = %f, want 4", hv2)
	}
	// A better front has larger volume.
	hv3 := Hypervolume2D([]Point{
		{Values: []float64{1, 1}},
		{Values: []float64{0.5, 2}},
	}, 3, 3)
	if hv3 <= hv {
		t.Errorf("extended front volume %f should exceed %f", hv3, hv)
	}
	if Hypervolume2D(nil, 3, 3) != 0 {
		t.Error("empty front must have zero volume")
	}
	// Points outside the reference box contribute nothing.
	if Hypervolume2D([]Point{{Values: []float64{5, 5}}}, 3, 3) != 0 {
		t.Error("out-of-box point must contribute nothing")
	}
}
