// Package pareto provides multi-objective dominance utilities for analyzing
// design-space exploration results: the Fig. 1 / Fig. 6 solution clouds live
// in the (latency, energy, area, −accuracy) space, and the interesting
// solutions are the non-dominated ones.
package pareto

import "sort"

// Point is a vector of objectives, all to be minimized (negate objectives
// that should be maximized).
type Point struct {
	Values []float64
	// Tag carries caller context (e.g. an index into the solution list).
	Tag int
}

// Dominates reports whether a dominates b: a is no worse in every objective
// and strictly better in at least one. Points of unequal dimension never
// dominate each other.
func Dominates(a, b Point) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	strictly := false
	for i := range a.Values {
		if a.Values[i] > b.Values[i] {
			return false
		}
		if a.Values[i] < b.Values[i] {
			strictly = true
		}
	}
	return strictly
}

// Front returns the non-dominated subset of pts, preserving input order.
// Duplicate points all survive (none strictly dominates its copy).
func Front(pts []Point) []Point {
	var out []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// Front2D returns the non-dominated subset for the common two-objective
// case in O(n log n) via a sort-and-sweep, preserving no particular order
// (result is sorted by the first objective).
func Front2D(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	s := append([]Point(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Values[0] != s[j].Values[0] {
			return s[i].Values[0] < s[j].Values[0]
		}
		return s[i].Values[1] < s[j].Values[1]
	})
	var out []Point
	bestY := s[0].Values[1]
	out = append(out, s[0])
	for _, p := range s[1:] {
		if p.Values[1] < bestY {
			out = append(out, p)
			bestY = p.Values[1]
		}
	}
	return out
}

// Hypervolume2D computes the area dominated by the 2-D front within the
// reference box [0,ref0]×[0,ref1] (objectives minimized; points outside the
// box are clipped). It is a scalar quality-of-front measure used by the DSE
// reports.
func Hypervolume2D(front []Point, ref0, ref1 float64) float64 {
	f := Front2D(front)
	if len(f) == 0 {
		return 0
	}
	var hv float64
	prevX := ref0
	// Sweep from the largest first objective down.
	for i := len(f) - 1; i >= 0; i-- {
		x := f[i].Values[0]
		y := f[i].Values[1]
		if x > ref0 || y > ref1 {
			continue
		}
		hv += (prevX - x) * (ref1 - y)
		prevX = x
	}
	return hv
}
