package dataflow

import (
	"testing"
	"testing/quick"

	"nasaic/internal/dnn"
)

func TestSystolicStringAndParse(t *testing.T) {
	if Systolic.String() != "sys" {
		t.Errorf("String = %q", Systolic.String())
	}
	for _, name := range []string{"sys", "systolic", "tpu"} {
		got, err := ParseStyle(name)
		if err != nil || got != Systolic {
			t.Errorf("ParseStyle(%q) = %v, %v", name, got, err)
		}
	}
	// The paper's template set must stay untouched.
	if len(AllStyles) != 3 {
		t.Fatalf("AllStyles grew to %d — the paper's set is exactly 3 templates", len(AllStyles))
	}
	if len(ExtendedStyles) != 4 || ExtendedStyles[3] != Systolic {
		t.Error("ExtendedStyles must be AllStyles plus Systolic")
	}
}

func TestSystolicWorkConservation(t *testing.T) {
	f := func(k8, c8, x8, y8 uint8, pe16 uint16) bool {
		l := dnn.Layer{
			Name: "p", Op: dnn.Conv,
			K: int(k8%128) + 1, C: int(c8%128) + 1,
			R: 3, S: 3,
			X: int(x8%64) + 1, Y: int(y8%64) + 1, Stride: 1,
		}
		pes := int(pe16%4096) + 1
		m := Map(Systolic, l, pes)
		return m.Steps*int64(pes) >= m.MACs && m.Utilization > 0 && m.Utilization <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The systolic array's signature trade-off: on NVDLA's home turf (deep,
// narrow layers) it needs no more NoC traffic than NVDLA (in-array input
// propagation) while paying extra fill/drain steps.
func TestSystolicTradeoff(t *testing.T) {
	l := deepNarrow()
	const pes = 1024
	sys := Map(Systolic, l, pes)
	dla := Map(NVDLA, l, pes)
	if sys.NoCTraffic() > dla.NoCTraffic() {
		t.Errorf("systolic NoC traffic %d should not exceed dla %d",
			sys.NoCTraffic(), dla.NoCTraffic())
	}
	if sys.Steps < dla.Steps {
		t.Errorf("systolic steps %d should pay fill/drain vs dla %d", sys.Steps, dla.Steps)
	}
	// Still within the same order of magnitude on compute.
	if sys.Steps > 4*dla.Steps {
		t.Errorf("systolic steps %d unreasonably worse than dla %d", sys.Steps, dla.Steps)
	}
}

func TestSystolicTrafficLowerBounds(t *testing.T) {
	for _, l := range []dnn.Layer{wideShallow(), deepNarrow()} {
		w := int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		m := Map(Systolic, l, 512)
		if m.WeightTraffic < w || m.InputTraffic < l.InputElems() || m.OutputTraffic < l.OutputElems() {
			t.Errorf("%s: systolic traffic below compulsory minimum", l.Name)
		}
	}
}

func TestMorePEsNeverSlowerSystolic(t *testing.T) {
	f := func(k8, c8, xy8 uint8, pe16 uint16) bool {
		l := dnn.Layer{
			Name: "p", Op: dnn.Conv,
			K: int(k8) + 1, C: int(c8) + 1,
			R: 3, S: 3,
			X: int(xy8%64) + 1, Y: int(xy8%64) + 1, Stride: 1,
		}
		pes := int(pe16%2048) + 1
		a := Map(Systolic, l, pes)
		b := Map(Systolic, l, 4*pes)
		// Fill/drain grows with the array diagonal, so quadrupling the PEs
		// may not strictly help tiny layers; it must never double the steps.
		return b.Steps <= 2*a.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
