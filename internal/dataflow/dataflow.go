// Package dataflow implements the ASIC accelerator template set at the heart
// of NASAIC (§II Challenge 1, Fig. 2): each template is a dataflow style —
// Shidiannao [18], NVDLA [19], or row-stationary/Eyeriss [15] — and, given a
// PE budget, fully determines how a network layer's loop nest is spatially
// unrolled, which tensors are reused where, and how much data crosses each
// level of the memory hierarchy.
//
// The package produces a Mapping per (layer, style, PE count); the
// internal/maestro package converts Mappings into latency, energy and area
// using calibrated per-access costs.
package dataflow

import (
	"fmt"

	"nasaic/internal/dnn"
)

// Style identifies a dataflow template.
type Style int

// The template set used in the paper's experiments (§V-A).
const (
	Shidiannao    Style = iota // "shi": output-pixel parallel, input shifting
	NVDLA                      // "dla": channel parallel, adder-tree reduction
	RowStationary              // "rs": filter-row / output-row parallel (Eyeriss)
)

// AllStyles lists every supported template in canonical order.
var AllStyles = []Style{Shidiannao, NVDLA, RowStationary}

// String returns the paper's abbreviation for the style.
func (s Style) String() string {
	switch s {
	case Shidiannao:
		return "shi"
	case NVDLA:
		return "dla"
	case RowStationary:
		return "rs"
	case Systolic:
		return "sys"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// ParseStyle converts an abbreviation ("shi", "dla", "rs") to a Style.
func ParseStyle(name string) (Style, error) {
	switch name {
	case "shi", "shidiannao":
		return Shidiannao, nil
	case "dla", "nvdla":
		return NVDLA, nil
	case "rs", "row-stationary", "rowstationary", "eyeriss":
		return RowStationary, nil
	case "sys", "systolic", "tpu":
		return Systolic, nil
	default:
		return 0, fmt.Errorf("dataflow: unknown style %q", name)
	}
}

// BytesPerElem is the storage size of one tensor element. Edge ASIC
// accelerators of the class modeled here run 8-bit quantized inference.
const BytesPerElem = 1

// Mapping is the result of binding one layer to one dataflow template with a
// given PE count: temporal step count, average spatial utilization, data
// movement per memory level (in elements), and on-chip buffer demand.
type Mapping struct {
	Style Style
	PEs   int

	// Steps is the number of temporal iterations; with a 1-MAC/PE/cycle
	// array this is the compute-bound cycle count.
	Steps int64
	// Utilization is the average fraction of PEs doing useful work.
	Utilization float64

	// NoC traffic between global buffer and PE array, in elements.
	WeightTraffic int64
	InputTraffic  int64
	OutputTraffic int64

	// GBAccesses counts global-buffer reads+writes (elements); DRAMAccesses
	// counts off-chip transfers (elements, compulsory misses only — the
	// paper sizes buffers to support full reuse, §III-➋).
	GBAccesses   int64
	DRAMAccesses int64

	// LocalAccesses counts PE register-file accesses (elements).
	LocalAccesses int64

	// BufferBytes is the on-chip buffer capacity the mapping needs.
	BufferBytes int64

	// MACs is the layer's total multiply-accumulate work.
	MACs int64
}

// NoCTraffic returns total elements crossing the NoC.
func (m Mapping) NoCTraffic() int64 {
	return m.WeightTraffic + m.InputTraffic + m.OutputTraffic
}

// tensor sizes in elements.
func tensorSizes(l dnn.Layer) (w, in, out int64) {
	w = int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
	in = l.InputElems()
	out = l.OutputElems()
	return
}

// Map binds layer l to the given style with pes processing elements.
// It panics if pes <= 0 or the layer carries no MAC work; callers filter
// non-compute layers first.
func Map(style Style, l dnn.Layer, pes int) Mapping {
	if pes <= 0 {
		panic(fmt.Sprintf("dataflow: non-positive PE count %d", pes))
	}
	if !l.Op.Compute() {
		panic(fmt.Sprintf("dataflow: layer %s (%s) carries no MAC work", l.Name, l.Op))
	}
	switch style {
	case Shidiannao:
		return mapShidiannao(l, pes)
	case NVDLA:
		return mapNVDLA(l, pes)
	case RowStationary:
		return mapRowStationary(l, pes)
	case Systolic:
		return mapSystolic(l, pes)
	default:
		panic(fmt.Sprintf("dataflow: unknown style %d", int(style)))
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("dataflow: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

func finish(m *Mapping, l dnn.Layer) Mapping {
	w, in, out := tensorSizes(l)
	m.MACs = l.MACs()
	// Each MAC reads a weight and an input from the register file and
	// read-modify-writes a partial sum: ~4 RF accesses per MAC.
	m.LocalAccesses = 4 * m.MACs
	// The global buffer serves every NoC transfer once.
	m.GBAccesses = m.NoCTraffic()
	// Compulsory DRAM traffic: each tensor moves on/off chip once.
	m.DRAMAccesses = w + in + out
	if m.Steps < 1 {
		m.Steps = 1
	}
	util := float64(m.MACs) / (float64(m.Steps) * float64(m.PEs))
	if util > 1 {
		util = 1
	}
	m.Utilization = util
	return *m
}

// mapShidiannao implements the Shidiannao-style template (DF1 in Fig. 2):
// the PE array spatially unrolls output pixels (X'×Y'); inputs propagate
// between neighboring PEs; one weight is broadcast per cycle; partial sums
// stay put (output stationary). It excels on large spatial maps with few
// channels — the U-Net regime — and wastes the array on late ResNet layers.
func mapShidiannao(l dnn.Layer, pes int) Mapping {
	w, in, out := tensorSizes(l)
	ox, oy := int64(l.OutX()), int64(l.OutY())
	spatial := ox * oy
	ntSp := ceilDiv(spatial, int64(pes))

	m := Mapping{Style: Shidiannao, PEs: pes}
	m.Steps = ntSp * int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)

	// Weights are re-broadcast once per spatial tile (a broadcast counts as
	// one NoC transaction). Inputs are fetched per tile with a kernel halo;
	// inter-PE shifting removes intra-tile re-reads. Outputs leave once.
	m.WeightTraffic = w * ntSp
	halo := 1.0
	if ntSp > 1 {
		halo = 1.2
	}
	m.InputTraffic = int64(float64(in) * halo)
	m.OutputTraffic = out

	// Buffer: the full weight set cycles per tile so it stays resident; one
	// tile of inputs (with halo) and the live output tile accompany it.
	inTile := ceilDiv(in, ntSp)
	m.BufferBytes = BytesPerElem * (w + int64(float64(inTile)*1.3) + int64(pes))
	return finish(&m, l)
}

// mapNVDLA implements the NVDLA-style template (DF2 in Fig. 2): the array
// spatially unrolls (K, C); weights stay resident (weight stationary) while
// activations stream; an adder tree reduces across the C lanes. It excels on
// many-channel, low-resolution layers — the ResNet regime — and starves on
// shallow high-resolution layers.
func mapNVDLA(l dnn.Layer, pes int) Mapping {
	w, in, out := tensorSizes(l)
	ox, oy := int64(l.OutX()), int64(l.OutY())

	tc := int64(l.C)
	if tc > int64(pes) {
		tc = int64(pes)
	}
	tk := int64(pes) / tc
	if tk < 1 {
		tk = 1
	}
	if tk > int64(l.K) {
		tk = int64(l.K)
	}
	ntC := ceilDiv(int64(l.C), tc)
	ntK := ceilDiv(int64(l.K), tk)

	m := Mapping{Style: NVDLA, PEs: pes}
	m.Steps = ntK * ntC * int64(l.R) * int64(l.S) * ox * oy

	// Weight stationary: every weight enters the array exactly once.
	// Inputs are re-streamed once per K-tile (broadcast across the K lanes
	// of a tile is one transaction). Partial sums spill to the buffer across
	// C-tiles: ntC writes and ntC-1 read-backs per output element.
	m.WeightTraffic = w
	m.InputTraffic = in * ntK
	m.OutputTraffic = out * (2*ntC - 1)

	wTile := tk * tc * int64(l.R) * int64(l.S)
	inSlice := ceilDiv(in, ntC)
	m.BufferBytes = BytesPerElem * (wTile + inSlice + out)
	return finish(&m, l)
}

// mapRowStationary implements the Eyeriss row-stationary template (DF3):
// the array spatially unrolls (filter-row R × output-row Y') pairs and
// replicates across (K, C) when the array is underfilled, balancing
// convolutional, filter, and partial-sum reuse.
func mapRowStationary(l dnn.Layer, pes int) Mapping {
	w, in, out := tensorSizes(l)
	ox, oy := int64(l.OutX()), int64(l.OutY())

	base := int64(l.R) * oy
	ntSp := ceilDiv(base, int64(pes))
	repl := int64(1)
	if ntSp == 1 {
		repl = int64(pes) / base
		if repl < 1 {
			repl = 1
		}
		if max := int64(l.K) * int64(l.C); repl > max {
			repl = max
		}
	}
	// Replication covers K first (independent psums), then C.
	replK := repl
	if replK > int64(l.K) {
		replK = int64(l.K)
	}
	replC := repl / replK
	if replC < 1 {
		replC = 1
	}
	ntK := ceilDiv(int64(l.K), replK)
	ntC := ceilDiv(int64(l.C), replC)

	m := Mapping{Style: RowStationary, PEs: pes}
	m.Steps = ntSp * ntK * ntC * int64(l.S) * ox

	// Filter rows are multicast once per spatial tile and stay resident
	// across the X' sweep; inputs are re-fetched once per K-tile with a row
	// halo; psums spill across C-tiles.
	m.WeightTraffic = w * ntSp
	m.InputTraffic = int64(float64(in*ntK) * 1.1)
	m.OutputTraffic = out * (2*ntC - 1)

	wTile := replK * replC * int64(l.R) * int64(l.S)
	inRows := ceilDiv(in, oy) * int64(l.R+1)
	m.BufferBytes = BytesPerElem * (wTile + inRows + ceilDiv(out, ntK))
	return finish(&m, l)
}
