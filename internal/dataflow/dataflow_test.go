package dataflow

import (
	"testing"
	"testing/quick"

	"nasaic/internal/dnn"
)

// wideShallow is a U-Net-style layer: huge spatial map, few channels.
func wideShallow() dnn.Layer {
	return dnn.Layer{Name: "enc1", Op: dnn.Conv, K: 16, C: 16, R: 3, S: 3, X: 128, Y: 128, Stride: 1}
}

// deepNarrow is a late-ResNet-style layer: many channels, tiny map.
func deepNarrow() dnn.Layer {
	return dnn.Layer{Name: "b3_res", Op: dnn.Conv, K: 256, C: 256, R: 3, S: 3, X: 8, Y: 8, Stride: 1}
}

func TestStyleStringAndParse(t *testing.T) {
	for _, s := range AllStyles {
		got, err := ParseStyle(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStyle(%q) = %v, %v", s.String(), got, err)
		}
	}
	for name, want := range map[string]Style{
		"shidiannao": Shidiannao, "nvdla": NVDLA, "eyeriss": RowStationary,
		"row-stationary": RowStationary,
	} {
		got, err := ParseStyle(name)
		if err != nil || got != want {
			t.Errorf("ParseStyle(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStyle("gpu"); err == nil {
		t.Error("ParseStyle should reject unknown styles")
	}
}

// The paper's central affinity claim (§II Challenge 2): NVDLA favors
// many-channel low-resolution layers; Shidiannao favors the opposite.
func TestDataflowAffinity(t *testing.T) {
	const pes = 1024
	shiWide := Map(Shidiannao, wideShallow(), pes)
	dlaWide := Map(NVDLA, wideShallow(), pes)
	if shiWide.Steps >= dlaWide.Steps {
		t.Errorf("wide shallow layer: shi steps %d should beat dla steps %d",
			shiWide.Steps, dlaWide.Steps)
	}
	shiDeep := Map(Shidiannao, deepNarrow(), pes)
	dlaDeep := Map(NVDLA, deepNarrow(), pes)
	if dlaDeep.Steps >= shiDeep.Steps {
		t.Errorf("deep narrow layer: dla steps %d should beat shi steps %d",
			dlaDeep.Steps, shiDeep.Steps)
	}
}

// Row-stationary should sit between the two extremes on both regimes
// (it is the balanced compromise, never catastrophically bad).
func TestRowStationaryBalanced(t *testing.T) {
	const pes = 1024
	for _, l := range []dnn.Layer{wideShallow(), deepNarrow()} {
		rs := Map(RowStationary, l, pes)
		shi := Map(Shidiannao, l, pes)
		dla := Map(NVDLA, l, pes)
		worst := shi.Steps
		if dla.Steps > worst {
			worst = dla.Steps
		}
		if rs.Steps > worst {
			t.Errorf("layer %s: rs steps %d worse than the worst specialist %d",
				l.Name, rs.Steps, worst)
		}
	}
}

func TestStepsNeverBeatIdeal(t *testing.T) {
	layers := []dnn.Layer{
		wideShallow(), deepNarrow(),
		{Name: "fc", Op: dnn.FC, K: 10, C: 256, R: 1, S: 1, X: 1, Y: 1, Stride: 1},
		{Name: "up", Op: dnn.UpConv, K: 64, C: 128, R: 2, S: 2, X: 16, Y: 16, Stride: 1},
	}
	for _, l := range layers {
		for _, s := range AllStyles {
			for _, pes := range []int{8, 64, 333, 1024, 4096} {
				m := Map(s, l, pes)
				ideal := (l.MACs() + int64(pes) - 1) / int64(pes)
				if m.Steps < ideal {
					t.Errorf("%s/%s pes=%d: steps %d < ideal %d", l.Name, s, pes, m.Steps, ideal)
				}
				if m.Utilization <= 0 || m.Utilization > 1 {
					t.Errorf("%s/%s pes=%d: utilization %f out of (0,1]", l.Name, s, pes, m.Utilization)
				}
			}
		}
	}
}

func TestTrafficLowerBounds(t *testing.T) {
	for _, l := range []dnn.Layer{wideShallow(), deepNarrow()} {
		w := int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		in, out := l.InputElems(), l.OutputElems()
		for _, s := range AllStyles {
			m := Map(s, l, 512)
			if m.WeightTraffic < w {
				t.Errorf("%s/%s: weight traffic %d < unique weights %d", l.Name, s, m.WeightTraffic, w)
			}
			if m.InputTraffic < in {
				t.Errorf("%s/%s: input traffic %d < unique inputs %d", l.Name, s, m.InputTraffic, in)
			}
			if m.OutputTraffic < out {
				t.Errorf("%s/%s: output traffic %d < unique outputs %d", l.Name, s, m.OutputTraffic, out)
			}
			if m.DRAMAccesses != w+in+out {
				t.Errorf("%s/%s: DRAM %d != compulsory %d", l.Name, s, m.DRAMAccesses, w+in+out)
			}
			if m.GBAccesses != m.NoCTraffic() {
				t.Errorf("%s/%s: GB accesses %d != NoC traffic %d", l.Name, s, m.GBAccesses, m.NoCTraffic())
			}
			if m.BufferBytes <= 0 {
				t.Errorf("%s/%s: non-positive buffer demand", l.Name, s)
			}
		}
	}
}

// Property: doubling the PE budget never increases the step count.
func TestMorePEsNeverSlower(t *testing.T) {
	f := func(k8, c8, xy8, pe16 uint16, styleIdx uint8) bool {
		l := dnn.Layer{
			Name: "p", Op: dnn.Conv,
			K: int(k8%256) + 1, C: int(c8%256) + 1,
			R: 3, S: 3,
			X: int(xy8%64) + 1, Y: int(xy8%64) + 1, Stride: 1,
		}
		pes := int(pe16%2048) + 1
		s := AllStyles[int(styleIdx)%len(AllStyles)]
		a := Map(s, l, pes)
		b := Map(s, l, 2*pes)
		return b.Steps <= a.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: steps * PEs >= MACs (no over-unity compute) for random layers.
func TestWorkConservation(t *testing.T) {
	f := func(k8, c8, x8, y8 uint8, pe16 uint16, styleIdx uint8) bool {
		l := dnn.Layer{
			Name: "p", Op: dnn.Conv,
			K: int(k8%128) + 1, C: int(c8%128) + 1,
			R: 3, S: 3,
			X: int(x8%96) + 1, Y: int(y8%96) + 1, Stride: 1,
		}
		pes := int(pe16%4096) + 1
		s := AllStyles[int(styleIdx)%len(AllStyles)]
		m := Map(s, l, pes)
		return m.Steps*int64(pes) >= m.MACs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMapPanicsOnBadInput(t *testing.T) {
	l := wideShallow()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for pes=0")
			}
		}()
		Map(Shidiannao, l, 0)
	}()
	pool := dnn.Layer{Name: "p", Op: dnn.MaxPool, K: 4, C: 4, R: 2, S: 2, X: 8, Y: 8, Stride: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-compute layer")
			}
		}()
		Map(Shidiannao, pool, 64)
	}()
}
