package dataflow

import "nasaic/internal/dnn"

// Systolic is an extension template beyond the paper's three: a TPU-style
// two-dimensional weight-stationary systolic array. Like NVDLA it unrolls
// (K, C), but inputs flow through the array diagonally (reused across the K
// rows without re-broadcast) and partial sums accumulate inside the array,
// trading extra fill/drain latency per tile for lower NoC traffic.
//
// It is deliberately NOT part of AllStyles: the paper's experiments use
// exactly {shi, dla, rs}, and the calibrated results depend on that set.
// ExtendedStyles adds it for the template-set ablation (does widening the
// template library improve NASAIC's solutions?).
const Systolic Style = 3

// ExtendedStyles is the template set including the systolic extension.
var ExtendedStyles = []Style{Shidiannao, NVDLA, RowStationary, Systolic}

func mapSystolic(l dnn.Layer, pes int) Mapping {
	w, in, out := tensorSizes(l)
	ox, oy := int64(l.OutX()), int64(l.OutY())

	// Square-ish array factorization over (K, C).
	tc := int64(1)
	for tc*tc < int64(pes) {
		tc++
	}
	if tc > int64(l.C) {
		tc = int64(l.C)
	}
	tk := int64(pes) / tc
	if tk < 1 {
		tk = 1
	}
	if tk > int64(l.K) {
		tk = int64(l.K)
	}
	ntC := ceilDiv(int64(l.C), tc)
	ntK := ceilDiv(int64(l.K), tk)

	m := Mapping{Style: Systolic, PEs: pes}
	// Each tile sweeps the full output map; fill/drain adds the array
	// diagonal per tile.
	tiles := ntK * ntC
	m.Steps = tiles*int64(l.R)*int64(l.S)*ox*oy + tiles*(tk+tc)

	// Weight stationary: weights enter once. Inputs propagate through the
	// array, so a K-tile re-stream is shared by half the rows on average.
	// Partial sums accumulate in-array across the C dimension of a tile and
	// spill only across C-tiles.
	m.WeightTraffic = w
	m.InputTraffic = in * maxI64(1, (ntK+1)/2)
	m.OutputTraffic = out * (2*ntC - 1)

	wTile := tk * tc * int64(l.R) * int64(l.S)
	inSlice := ceilDiv(in, ntC)
	m.BufferBytes = BytesPerElem * (wTile + inSlice + out)
	return finish(&m, l)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
