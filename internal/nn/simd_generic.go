//go:build !amd64

package nn

// Non-amd64 builds use the pure-Go register-blocked kernels; the stubs exist
// so the kernel drivers compile unconditionally and are unreachable while
// simdEnabled is false.

var simdEnabled = false

func dotBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64) {
	panic("nn: SIMD kernel called without support")
}

func dotBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64) {
	panic("nn: SIMD kernel called without support")
}

func accumBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64) {
	panic("nn: SIMD kernel called without support")
}

func accumBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64) {
	panic("nn: SIMD kernel called without support")
}
