package nn

import (
	"fmt"
	"testing"

	"nasaic/internal/stats"
)

// Micro-benchmarks of the controller's two execution paths at the
// experiment's scale: hidden width 48 (core.DefaultConfig), a rollout of
// T=27 decisions (W1's decision sequence), 8-way logit heads, and batch
// widths matching the 1+φ episodes of one exploration step. The batched
// numbers include everything the policy-gradient loop pays for — cache
// extraction on the forward, the episode-major gradient replay on the
// backward — so seq vs batched ns/op is the real speedup, not a kernel-only
// figure. CI runs these as part of the bench smoke.

const (
	benchHidden = 48
	benchT      = 27
	benchOpts   = 8
)

type benchNet struct {
	lstm  *LSTM
	heads []*Linear
}

func newBenchNet(seed int64) *benchNet {
	rng := stats.NewRNG(seed)
	init := func(p *Param) { p.InitXavier(rng) }
	n := &benchNet{lstm: NewLSTM(benchHidden, benchHidden, init)}
	for t := 0; t < benchT; t++ {
		n.heads = append(n.heads, NewLinear(fmt.Sprintf("h%d", t), benchHidden, benchOpts, init))
	}
	return n
}

func benchInputs(seed int64, b int) []*Mat {
	rng := stats.NewRNG(seed)
	xs := make([]*Mat, benchT)
	for t := range xs {
		xs[t] = randMat(rng, benchHidden, b)
	}
	return xs
}

// forwardSeq rolls out b sequences one at a time (the pre-batching path).
func (n *benchNet) forwardSeq(xs []*Mat, b int) ([][]*LSTMCache, [][][]float64) {
	caches := make([][]*LSTMCache, b)
	hs := make([][][]float64, b)
	for e := 0; e < b; e++ {
		caches[e] = make([]*LSTMCache, benchT)
		hs[e] = make([][]float64, benchT)
		st := n.lstm.ZeroState()
		for t := 0; t < benchT; t++ {
			st, caches[e][t] = n.lstm.Forward(xs[t].Col(e), st)
			hs[e][t] = st.H
			_ = n.heads[t].Forward(st.H)
		}
	}
	return caches, hs
}

// forwardBatch rolls out b sequences in lockstep, including the
// per-sequence cache extraction the sampler needs.
func (n *benchNet) forwardBatch(xs []*Mat, b int) [][]*LSTMCache {
	caches := make([][]*LSTMCache, benchT)
	st := n.lstm.ZeroBatchState(b)
	for t := 0; t < benchT; t++ {
		var bc *LSTMBatchCache
		st, bc = n.lstm.ForwardBatch(xs[t], st)
		caches[t] = bc.SeqCaches()
		_ = n.heads[t].ForwardBatch(st.H)
	}
	return caches
}

// bpttSeq backpropagates b sequences one at a time.
func (n *benchNet) bpttSeq(dys []*Mat, caches [][]*LSTMCache, hs [][][]float64, b int) {
	for e := 0; e < b; e++ {
		dh := make([]float64, benchHidden)
		var dc []float64
		for t := benchT - 1; t >= 0; t-- {
			step := n.heads[t].Backward(dys[t].Col(e), hs[e][t])
			AccumVec(step, dh)
			var dPrev LSTMState
			_, dPrev = n.lstm.Backward(step, dc, caches[e][t])
			dh, dc = dPrev.H, dPrev.C
		}
	}
}

// bpttBatch backpropagates b sequences in lockstep: batched flows plus the
// episode-major parameter-gradient replay (the bit-identity contract).
func (n *benchNet) bpttBatch(dys []*Mat, caches [][]*LSTMCache, b int) {
	dH := NewMat(benchHidden, b)
	var dC *Mat
	dzs := make([]*Mat, benchT)
	for t := benchT - 1; t >= 0; t-- {
		dh := n.heads[t].BackwardBatchFlows(dys[t])
		dh.Add(dH)
		var dPrev LSTMBatchState
		dzs[t], _, dPrev = n.lstm.BackwardBatch(dh, dC, caches[t])
		dH, dC = dPrev.H, dPrev.C
	}
	xs := make([][]float64, b*benchT)
	hps := make([][]float64, b*benchT)
	k := 0
	for e := 0; e < b; e++ {
		for t := benchT - 1; t >= 0; t-- {
			xs[k] = caches[t][e].X
			hps[k] = caches[t][e].HPrev
			k++
		}
	}
	n.lstm.AccumBPTTGrads(dzs, xs, hps)
	for e := 0; e < b; e++ {
		for t := benchT - 1; t >= 0; t-- {
			n.heads[t].AccumStepGrads(dys[t].Col(e), caches[t][e].H)
		}
	}
}

func zeroGrads(n *benchNet) {
	n.lstm.Wx.ZeroGrad()
	n.lstm.Wh.ZeroGrad()
	n.lstm.B.ZeroGrad()
	for _, h := range n.heads {
		h.W.ZeroGrad()
		h.B.ZeroGrad()
	}
}

func benchForward(b *testing.B, batch int, batched bool) {
	n := newBenchNet(1)
	xs := benchInputs(2, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			n.forwardBatch(xs, batch)
		} else {
			n.forwardSeq(xs, batch)
		}
	}
}

func benchForwardBPTT(b *testing.B, batch int, batched bool) {
	n := newBenchNet(1)
	xs := benchInputs(2, batch)
	dys := make([]*Mat, benchT)
	rng := stats.NewRNG(3)
	for t := range dys {
		dys[t] = randMat(rng, benchOpts, batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			caches := n.forwardBatch(xs, batch)
			n.bpttBatch(dys, caches, batch)
		} else {
			caches, hs := n.forwardSeq(xs, batch)
			n.bpttSeq(dys, caches, hs, batch)
		}
		zeroGrads(n)
	}
}

// Kernel-level benchmarks: one controller-sized matrix against eight
// columns, batched kernel vs eight matrix-vector calls.

func BenchmarkKernelMulVecX8(b *testing.B) {
	rng := stats.NewRNG(1)
	m := randMat(rng, 4*benchHidden, benchHidden)
	x := randMat(rng, benchHidden, 8)
	dst := make([]float64, 4*benchHidden)
	col := make([]float64, benchHidden)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for e := 0; e < 8; e++ {
			x.ColInto(col, e)
			m.MulVecInto(dst, col)
		}
	}
}

func BenchmarkKernelMulMatB8(b *testing.B) {
	rng := stats.NewRNG(1)
	m := randMat(rng, 4*benchHidden, benchHidden)
	x := randMat(rng, benchHidden, 8)
	dst := NewMat(4*benchHidden, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulMatInto(dst, x)
	}
}

func BenchmarkKernelMulTVecX8(b *testing.B) {
	rng := stats.NewRNG(1)
	m := randMat(rng, 4*benchHidden, benchHidden)
	y := randMat(rng, 4*benchHidden, 8)
	dst := make([]float64, benchHidden)
	col := make([]float64, 4*benchHidden)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for e := 0; e < 8; e++ {
			y.ColInto(col, e)
			m.MulTVecInto(dst, col)
		}
	}
}

func BenchmarkKernelMulTMatB8(b *testing.B) {
	rng := stats.NewRNG(1)
	m := randMat(rng, 4*benchHidden, benchHidden)
	y := randMat(rng, 4*benchHidden, 8)
	dst := NewMat(benchHidden, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulTMatInto(dst, y)
	}
}

func BenchmarkForwardSeqB8(b *testing.B)   { benchForward(b, 8, false) }
func BenchmarkForwardBatchB8(b *testing.B) { benchForward(b, 8, true) }

func BenchmarkForwardSeqB16(b *testing.B)   { benchForward(b, 16, false) }
func BenchmarkForwardBatchB16(b *testing.B) { benchForward(b, 16, true) }

func BenchmarkForwardBPTTSeqB8(b *testing.B)   { benchForwardBPTT(b, 8, false) }
func BenchmarkForwardBPTTBatchB8(b *testing.B) { benchForwardBPTT(b, 8, true) }

func BenchmarkForwardBPTTSeqB16(b *testing.B)   { benchForwardBPTT(b, 16, false) }
func BenchmarkForwardBPTTBatchB16(b *testing.B) { benchForwardBPTT(b, 16, true) }
