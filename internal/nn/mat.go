// Package nn is a minimal, dependency-free neural-network library built for
// the NASAIC controller (§IV-①): dense matrices, an LSTM cell with full
// backpropagation-through-time support, linear output heads, softmax
// sampling, and an RMSProp optimizer matching the paper's training setup.
//
// The package has two execution paths. The matrix-vector path (Forward,
// Backward) steps one sequence at a time. The batched path (ForwardBatch,
// BackwardBatch, see batch.go) steps B sequences in lockstep through blocked
// matrix-matrix kernels, one column per sequence, and is the hot path of the
// policy-gradient training loop: a controller batch of episodes runs as one
// column block instead of B separate matrix-vector sweeps.
//
// Every batched kernel is bit-identical per column to its matrix-vector
// counterpart — same accumulation order, same per-element operations — so
// batched and sequential training produce identical parameters down to the
// last bit (enforced by differential tests here and in internal/rl).
// Gradients are accumulated across a batch of episodes before each optimizer
// step, as in Eq. (1).
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	W    []float64
}

// NewMat returns a zero R×C matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, W: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.W {
		m.W[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.W, m.W)
	return out
}

// MulVec computes y = M·x, allocating y.
func (m *Mat) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.R), x)
}

// MulVecInto computes dst = M·x into the caller's buffer (no allocation) and
// returns dst.
func (m *Mat) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.C {
		panic(fmt.Sprintf("nn: MulVec shape mismatch %dx%d · %d", m.R, m.C, len(x)))
	}
	if len(dst) != m.R {
		panic(fmt.Sprintf("nn: MulVec destination length %d, want %d", len(dst), m.R))
	}
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulTVec computes x = Mᵀ·y, allocating x.
func (m *Mat) MulTVec(y []float64) []float64 {
	return m.MulTVecInto(make([]float64, m.C), y)
}

// MulTVecInto computes dst = Mᵀ·y into the caller's buffer (no allocation)
// and returns dst.
func (m *Mat) MulTVecInto(dst, y []float64) []float64 {
	if len(y) != m.R {
		panic(fmt.Sprintf("nn: MulTVec shape mismatch %dx%d ᵀ· %d", m.R, m.C, len(y)))
	}
	if len(dst) != m.C {
		panic(fmt.Sprintf("nn: MulTVec destination length %d, want %d", len(dst), m.C))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.R; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j, v := range row {
			dst[j] += v * yi
		}
	}
	return dst
}

// MulMatInto computes dst = M·X, where X is C×B and dst is R×B: B
// matrix-vector products run as one register-blocked kernel. Columns are
// processed in blocks of eight whose accumulators live in registers across
// the whole reduction, so the loop runs eight independent fused
// multiply-add chains per M element load instead of MulVec's single
// latency-bound chain. Column b of dst is bit-identical to M.MulVec(column
// b of X): every output element accumulates over j in ascending order into
// a single sum, exactly as MulVec does. dst must not alias m or x.
func (m *Mat) MulMatInto(dst, x *Mat) *Mat {
	if x.R != m.C {
		panic(fmt.Sprintf("nn: MulMat shape mismatch %dx%d · %dx%d", m.R, m.C, x.R, x.C))
	}
	if dst.R != m.R || dst.C != x.C {
		panic(fmt.Sprintf("nn: MulMat destination %dx%d, want %dx%d", dst.R, dst.C, m.R, x.C))
	}
	b := x.C
	xw := x.W
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		out := dst.W[i*b : (i+1)*b]
		e := 0
		if simdEnabled {
			for ; e+8 <= b; e += 8 {
				dotBlock8(&row[0], 1, &xw[e], b, m.C, &out[e])
			}
			for ; e+4 <= b; e += 4 {
				dotBlock4(&row[0], 1, &xw[e], b, m.C, &out[e])
			}
		}
		for ; e+8 <= b; e += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for j, v := range row {
				xr := xw[j*b+e : j*b+e+8 : j*b+e+8]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
				s4 += v * xr[4]
				s5 += v * xr[5]
				s6 += v * xr[6]
				s7 += v * xr[7]
			}
			o := out[e : e+8 : e+8]
			o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7] = s0, s1, s2, s3, s4, s5, s6, s7
		}
		for ; e+4 <= b; e += 4 {
			var s0, s1, s2, s3 float64
			for j, v := range row {
				xr := xw[j*b+e : j*b+e+4 : j*b+e+4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
			o := out[e : e+4 : e+4]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		}
		for ; e < b; e++ {
			var s float64
			for j, v := range row {
				s += v * xw[j*b+e]
			}
			out[e] = s
		}
	}
	return dst
}

// MulTMatInto computes dst = Mᵀ·Y, where Y is R×B and dst is C×B, with the
// same register-blocked column scheme as MulMatInto (j outer so the
// accumulators stay in registers over the i reduction). Column b of dst is
// bit-identical to M.MulTVec(column b of Y): contributions to each output
// element accumulate over i in ascending order into a single sum. MulTVec
// additionally skips zero y rows — an optimization, not a semantic: with
// finite inputs (all this package ever produces; CheckFinite guards the
// parameters) adding the skipped ±0 products to an accumulator that starts
// at +0 cannot change a single bit, which the kernel fuzz targets verify.
// dst must not alias m or y.
func (m *Mat) MulTMatInto(dst, y *Mat) *Mat {
	if y.R != m.R {
		panic(fmt.Sprintf("nn: MulTMat shape mismatch %dx%d ᵀ· %dx%d", m.R, m.C, y.R, y.C))
	}
	if dst.R != m.C || dst.C != y.C {
		panic(fmt.Sprintf("nn: MulTMat destination %dx%d, want %dx%d", dst.R, dst.C, m.C, y.C))
	}
	b := y.C
	c := m.C
	yw := y.W
	mw := m.W
	for j := 0; j < c; j++ {
		out := dst.W[j*b : (j+1)*b]
		e := 0
		if simdEnabled {
			for ; e+8 <= b; e += 8 {
				dotBlock8(&mw[j], c, &yw[e], b, m.R, &out[e])
			}
			for ; e+4 <= b; e += 4 {
				dotBlock4(&mw[j], c, &yw[e], b, m.R, &out[e])
			}
		}
		for ; e+8 <= b; e += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for i := 0; i < m.R; i++ {
				v := mw[i*c+j]
				yr := yw[i*b+e : i*b+e+8 : i*b+e+8]
				s0 += v * yr[0]
				s1 += v * yr[1]
				s2 += v * yr[2]
				s3 += v * yr[3]
				s4 += v * yr[4]
				s5 += v * yr[5]
				s6 += v * yr[6]
				s7 += v * yr[7]
			}
			o := out[e : e+8 : e+8]
			o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7] = s0, s1, s2, s3, s4, s5, s6, s7
		}
		for ; e+4 <= b; e += 4 {
			var s0, s1, s2, s3 float64
			for i := 0; i < m.R; i++ {
				v := mw[i*c+j]
				yr := yw[i*b+e : i*b+e+4 : i*b+e+4]
				s0 += v * yr[0]
				s1 += v * yr[1]
				s2 += v * yr[2]
				s3 += v * yr[3]
			}
			o := out[e : e+4 : e+4]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		}
		for ; e < b; e++ {
			var s float64
			for i := 0; i < m.R; i++ {
				s += mw[i*c+j] * yw[i*b+e]
			}
			out[e] = s
		}
	}
	return dst
}

// Transpose returns a new C×R matrix with Mᵀ's elements.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.W[j*m.R+i] = m.W[i*m.C+j]
		}
	}
	return out
}

// Add accumulates M += other elementwise.
func (m *Mat) Add(other *Mat) {
	if m.R != other.R || m.C != other.C {
		panic(fmt.Sprintf("nn: Add shape mismatch %dx%d += %dx%d", m.R, m.C, other.R, other.C))
	}
	for i, v := range other.W {
		m.W[i] += v
	}
}

// AddOuter accumulates M += y·xᵀ.
func (m *Mat) AddOuter(y, x []float64) {
	if len(y) != m.R || len(x) != m.C {
		panic(fmt.Sprintf("nn: AddOuter shape mismatch %dx%d += %d⊗%d", m.R, m.C, len(y), len(x)))
	}
	for i := 0; i < m.R; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j := range row {
			row[j] += yi * x[j]
		}
	}
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	return m.ColInto(make([]float64, m.R), j)
}

// ColInto copies column j into the caller's buffer and returns it.
func (m *Mat) ColInto(dst []float64, j int) []float64 {
	if j < 0 || j >= m.C {
		panic(fmt.Sprintf("nn: column %d out of range [0,%d)", j, m.C))
	}
	if len(dst) != m.R {
		panic(fmt.Sprintf("nn: column destination length %d, want %d", len(dst), m.R))
	}
	for i := 0; i < m.R; i++ {
		dst[i] = m.W[i*m.C+j]
	}
	return dst
}

// SetCol assigns column j = v.
func (m *Mat) SetCol(j int, v []float64) {
	if len(v) != m.R {
		panic("nn: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.W[i*m.C+j] = v[i]
	}
}

// CopyColFrom assigns column dstCol = column srcCol of src.
func (m *Mat) CopyColFrom(dstCol int, src *Mat, srcCol int) {
	if src.R != m.R {
		panic(fmt.Sprintf("nn: CopyColFrom row mismatch %d vs %d", m.R, src.R))
	}
	if dstCol < 0 || dstCol >= m.C || srcCol < 0 || srcCol >= src.C {
		panic("nn: CopyColFrom column out of range")
	}
	for i := 0; i < m.R; i++ {
		m.W[i*m.C+dstCol] = src.W[i*src.C+srcCol]
	}
}

// AddCol accumulates column j += v.
func (m *Mat) AddCol(j int, v []float64) {
	if len(v) != m.R {
		panic("nn: AddCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.W[i*m.C+j] += v[i]
	}
}

// Vector helpers (allocate-free where a destination is passed).

// AddVec computes a + b, allocating.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("nn: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AccumVec accumulates dst += src.
func AccumVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: AccumVec length mismatch")
	}
	for i := range src {
		dst[i] += src[i]
	}
}

// ScaleVec computes s·a, allocating.
func ScaleVec(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}
