// Package nn is a minimal, dependency-free neural-network library built for
// the NASAIC controller (§IV-①): dense matrices, an LSTM cell with full
// backpropagation-through-time support, linear output heads, softmax
// sampling, and an RMSProp optimizer matching the paper's training setup.
// Batch size is one sequence at a time (the controller predicts one sample
// per episode), so all operations are matrix-vector; gradients are
// accumulated across a batch of episodes before each optimizer step, as in
// Eq. (1).
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	W    []float64
}

// NewMat returns a zero R×C matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, W: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.W {
		m.W[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.W, m.W)
	return out
}

// MulVec computes y = M·x, allocating y.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic(fmt.Sprintf("nn: MulVec shape mismatch %dx%d · %d", m.R, m.C, len(x)))
	}
	y := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulTVec computes x = Mᵀ·y, allocating x.
func (m *Mat) MulTVec(y []float64) []float64 {
	if len(y) != m.R {
		panic(fmt.Sprintf("nn: MulTVec shape mismatch %dx%d ᵀ· %d", m.R, m.C, len(y)))
	}
	x := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j, v := range row {
			x[j] += v * yi
		}
	}
	return x
}

// AddOuter accumulates M += y·xᵀ.
func (m *Mat) AddOuter(y, x []float64) {
	if len(y) != m.R || len(x) != m.C {
		panic(fmt.Sprintf("nn: AddOuter shape mismatch %dx%d += %d⊗%d", m.R, m.C, len(y), len(x)))
	}
	for i := 0; i < m.R; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j := range row {
			row[j] += yi * x[j]
		}
	}
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	if j < 0 || j >= m.C {
		panic(fmt.Sprintf("nn: column %d out of range [0,%d)", j, m.C))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// AddCol accumulates column j += v.
func (m *Mat) AddCol(j int, v []float64) {
	if len(v) != m.R {
		panic("nn: AddCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.W[i*m.C+j] += v[i]
	}
}

// Vector helpers (allocate-free where a destination is passed).

// AddVec computes a + b, allocating.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("nn: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AccumVec accumulates dst += src.
func AccumVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: AccumVec length mismatch")
	}
	for i := range src {
		dst[i] += src[i]
	}
}

// ScaleVec computes s·a, allocating.
func ScaleVec(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}
