package nn

import (
	"math"
	"testing"

	"nasaic/internal/stats"
)

// refRMSProp is the pre-arena optimizer retained verbatim as the reference
// for the fused Step: per-parameter squared-gradient slices in a map, same
// arithmetic in the same order.
type refRMSProp struct {
	LR           float64
	Decay        float64
	Eps          float64
	ClipNorm     float64
	LRDecay      float64
	LRDecaySteps int

	steps int
	cache map[*Param][]float64
}

func newRefRMSProp() *refRMSProp {
	return &refRMSProp{
		LR:           0.99,
		Decay:        0.9,
		Eps:          1e-8,
		ClipNorm:     5.0,
		LRDecay:      0.5,
		LRDecaySteps: 50,
		cache:        map[*Param][]float64{},
	}
}

func (o *refRMSProp) Step(params []*Param) {
	for _, p := range params {
		sq, ok := o.cache[p]
		if !ok {
			sq = make([]float64, len(p.Val.W))
			o.cache[p] = sq
		}
		scale := 1.0
		if o.ClipNorm > 0 {
			if n := p.GradNorm(); n > o.ClipNorm {
				scale = o.ClipNorm / n
			}
		}
		for i, g := range p.Grad.W {
			g *= scale
			sq[i] = o.Decay*sq[i] + (1-o.Decay)*g*g
			p.Val.W[i] -= o.LR * g / (math.Sqrt(sq[i]) + o.Eps)
		}
	}
	o.steps++
	if o.LRDecaySteps > 0 && o.steps%o.LRDecaySteps == 0 {
		o.LR *= o.LRDecay
	}
}

// makeParams builds a random parameter set with gradients filled in.
func makeParams(rng *stats.RNG, shapes [][2]int) []*Param {
	params := make([]*Param, len(shapes))
	for i, sh := range shapes {
		p := NewParam("p", sh[0], sh[1])
		p.InitXavier(rng)
		for k := range p.Grad.W {
			p.Grad.W[k] = 3 * (2*rng.Float64() - 1) // big enough to trip clipping
		}
		params[i] = p
	}
	return params
}

func cloneParams(params []*Param) []*Param {
	out := make([]*Param, len(params))
	for i, p := range params {
		c := NewParam(p.Name, p.Val.R, p.Val.C)
		copy(c.Val.W, p.Val.W)
		copy(c.Grad.W, p.Grad.W)
		out[i] = c
	}
	return out
}

// TestRMSPropFusedMatchesReference drives the fused arena Step and the
// retained reference across many steps (spanning an LR-decay boundary) with
// fresh gradients per step and a mid-stream parameter-set extension, and
// requires every value, second-moment decision, and learning rate to stay
// bit-identical.
func TestRMSPropFusedMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := stats.NewRNG(seed)
		shapes := [][2]int{{9, 7}, {1, 13}, {24, 24}, {5, 1}}
		a := makeParams(rng, shapes)
		b := cloneParams(a)

		fused := NewRMSProp()
		fused.LRDecaySteps = 10
		ref := newRefRMSProp()
		ref.LRDecaySteps = 10

		grad := func(params []*Param, gr *stats.RNG) {
			for _, p := range params {
				for k := range p.Grad.W {
					p.Grad.W[k] = 3 * (2*gr.Float64() - 1)
				}
			}
		}
		gra := stats.NewRNG(seed ^ 0x9e)
		grb := stats.NewRNG(seed ^ 0x9e)
		for step := 0; step < 25; step++ {
			if step == 12 {
				// Extend the parameter set mid-stream: the arena must grow
				// without disturbing existing state.
				extra := makeParams(rng, [][2]int{{3, 8}})
				a = append(a, extra[0])
				b = append(b, cloneParams(extra)[0])
			}
			grad(a, gra)
			grad(b, grb)
			fused.Step(a)
			ref.Step(b)
			for pi := range a {
				for k, v := range a[pi].Val.W {
					if v != b[pi].Val.W[k] {
						t.Fatalf("seed %d step %d: param %d[%d] diverged: fused %v ref %v",
							seed, step, pi, k, v, b[pi].Val.W[k])
					}
				}
			}
			if fused.LR != ref.LR {
				t.Fatalf("seed %d step %d: LR diverged: fused %v ref %v", seed, step, fused.LR, ref.LR)
			}
		}
		if fused.Steps() != 25 {
			t.Fatalf("step count %d, want 25", fused.Steps())
		}
	}
}

// TestRMSPropReorderedParams exercises the slow path: a permuted parameter
// list must reuse the same arena segments (state follows the parameter, not
// the position).
func TestRMSPropReorderedParams(t *testing.T) {
	rng := stats.NewRNG(3)
	a := makeParams(rng, [][2]int{{4, 4}, {2, 6}, {8, 3}})
	b := cloneParams(a)

	fused := NewRMSProp()
	ref := newRefRMSProp()
	fused.Step(a)
	ref.Step(b)

	// Permute and step again with fresh gradients.
	perm := []int{2, 0, 1}
	ap := []*Param{a[2], a[0], a[1]}
	gr := stats.NewRNG(11)
	for _, p := range ap {
		for k := range p.Grad.W {
			p.Grad.W[k] = 2*gr.Float64() - 1
		}
	}
	gr2 := stats.NewRNG(11)
	bp := []*Param{b[2], b[0], b[1]}
	for _, p := range bp {
		for k := range p.Grad.W {
			p.Grad.W[k] = 2*gr2.Float64() - 1
		}
	}
	fused.Step(ap)
	ref.Step(bp)
	for i, pi := range perm {
		_ = pi
		for k, v := range ap[i].Val.W {
			if v != bp[i].Val.W[k] {
				t.Fatalf("permuted param %d[%d] diverged: fused %v ref %v", i, k, v, bp[i].Val.W[k])
			}
		}
	}
}

// BenchmarkRMSPropStep times the fused arena update at the controller's
// parameter scale (compare with BenchmarkRMSPropStepReference).
func BenchmarkRMSPropStep(b *testing.B) {
	rng := stats.NewRNG(1)
	params := makeParams(rng, [][2]int{{192, 96}, {192, 1}, {48, 24}, {24, 1}, {48, 48}})
	opt := NewRMSProp()
	opt.LRDecaySteps = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params)
	}
}

// BenchmarkRMSPropStepReference times the retained pre-arena optimizer on
// the same parameter set.
func BenchmarkRMSPropStepReference(b *testing.B) {
	rng := stats.NewRNG(1)
	params := makeParams(rng, [][2]int{{192, 96}, {192, 1}, {48, 24}, {24, 1}, {48, 48}})
	opt := newRefRMSProp()
	opt.LRDecaySteps = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params)
	}
}
