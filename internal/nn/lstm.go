package nn

import "math"

// LSTM is a single-layer LSTM cell. Gate layout within the stacked 4H
// dimension is [input; forget; cell candidate; output].
//
// Forward and ForwardBatch reuse internal scratch buffers, so concurrent
// forward passes on the same cell are racy; clone the parameters into a
// separate cell per goroutine if concurrent rollouts are ever needed.
type LSTM struct {
	InputSize, HiddenSize int
	Wx                    *Param // 4H × I
	Wh                    *Param // 4H × H
	B                     *Param // 4H × 1

	zx, zh   []float64 // sequential pre-activation scratch (4H)
	bzx, bzh *Mat      // batched pre-activation scratch (4H × B)
}

// NewLSTM returns an LSTM with Xavier-initialized weights and a forget-gate
// bias of 1 (the standard trick to keep memory open early in training).
func NewLSTM(inputSize, hiddenSize int, init func(*Param)) *LSTM {
	l := &LSTM{
		InputSize:  inputSize,
		HiddenSize: hiddenSize,
		Wx:         NewParam("lstm.Wx", 4*hiddenSize, inputSize),
		Wh:         NewParam("lstm.Wh", 4*hiddenSize, hiddenSize),
		B:          NewParam("lstm.B", 4*hiddenSize, 1),
	}
	init(l.Wx)
	init(l.Wh)
	for i := hiddenSize; i < 2*hiddenSize; i++ {
		l.B.Val.W[i] = 1
	}
	return l
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// LSTMState is the recurrent state (h, c).
type LSTMState struct {
	H, C []float64
}

// ZeroState returns an all-zero initial state.
func (l *LSTM) ZeroState() LSTMState {
	return LSTMState{H: make([]float64, l.HiddenSize), C: make([]float64, l.HiddenSize)}
}

// LSTMCache stores the intermediates of one forward step for backprop.
type LSTMCache struct {
	X          []float64
	HPrev      []float64
	CPrev      []float64
	I, F, G, O []float64 // post-activation gates
	C, H       []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs one time step: (x, prev) → (next state, cache).
func (l *LSTM) Forward(x []float64, prev LSTMState) (LSTMState, *LSTMCache) {
	H := l.HiddenSize
	if l.zx == nil {
		l.zx = make([]float64, 4*H)
		l.zh = make([]float64, 4*H)
	}
	z := l.Wx.Val.MulVecInto(l.zx, x)
	AccumVec(z, l.Wh.Val.MulVecInto(l.zh, prev.H))
	for i := range z {
		z[i] += l.B.Val.W[i]
	}

	cache := &LSTMCache{
		X:     append([]float64(nil), x...),
		HPrev: append([]float64(nil), prev.H...),
		CPrev: append([]float64(nil), prev.C...),
		I:     make([]float64, H), F: make([]float64, H),
		G: make([]float64, H), O: make([]float64, H),
		C: make([]float64, H), H: make([]float64, H),
	}
	for i := 0; i < H; i++ {
		cache.I[i] = sigmoid(z[i])
		cache.F[i] = sigmoid(z[H+i])
		cache.G[i] = math.Tanh(z[2*H+i])
		cache.O[i] = sigmoid(z[3*H+i])
		cache.C[i] = cache.F[i]*prev.C[i] + cache.I[i]*cache.G[i]
		cache.H[i] = cache.O[i] * math.Tanh(cache.C[i])
	}
	return LSTMState{H: cache.H, C: cache.C}, cache
}

// Backward backpropagates one time step. dH and dC are the gradients flowing
// into this step's output state (dC may be nil). It accumulates parameter
// gradients and returns (dX, gradient w.r.t. the previous state).
func (l *LSTM) Backward(dH, dC []float64, cache *LSTMCache) (dX []float64, dPrev LSTMState) {
	H := l.HiddenSize
	dz := make([]float64, 4*H)
	dCPrev := make([]float64, H)

	for i := 0; i < H; i++ {
		tc := math.Tanh(cache.C[i])
		dOut := dH[i]
		dCt := dOut * cache.O[i] * (1 - tc*tc)
		if dC != nil {
			dCt += dC[i]
		}
		dI := dCt * cache.G[i]
		dF := dCt * cache.CPrev[i]
		dG := dCt * cache.I[i]
		dO := dOut * tc
		dCPrev[i] = dCt * cache.F[i]

		dz[i] = dI * cache.I[i] * (1 - cache.I[i])
		dz[H+i] = dF * cache.F[i] * (1 - cache.F[i])
		dz[2*H+i] = dG * (1 - cache.G[i]*cache.G[i])
		dz[3*H+i] = dO * cache.O[i] * (1 - cache.O[i])
	}

	l.AccumStepGrads(dz, cache.X, cache.HPrev)

	dX = l.Wx.Val.MulTVec(dz)
	dHPrev := l.Wh.Val.MulTVec(dz)
	return dX, LSTMState{H: dHPrev, C: dCPrev}
}

// AccumStepGrads adds one (sequence, step) contribution to the parameter
// gradients: Wx += dz·xᵀ, Wh += dz·hPrevᵀ, B += dz, in that order. Backward
// applies it inline; the batched path replays it per sequence in the
// sequential order so batched gradient accumulation stays bit-identical.
func (l *LSTM) AccumStepGrads(dz, x, hPrev []float64) {
	l.Wx.Grad.AddOuter(dz, x)
	l.Wh.Grad.AddOuter(dz, hPrev)
	for i := range dz {
		l.B.Grad.W[i] += dz[i]
	}
}

// Linear is a fully-connected layer y = W·x + b.
type Linear struct {
	W *Param // out × in
	B *Param // out × 1
}

// NewLinear returns an initialized linear layer.
func NewLinear(name string, in, out int, init func(*Param)) *Linear {
	l := &Linear{
		W: NewParam(name+".W", out, in),
		B: NewParam(name+".B", out, 1),
	}
	init(l.W)
	return l
}

// Params returns the trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes y = W·x + b, allocating y.
func (l *Linear) Forward(x []float64) []float64 {
	return l.ForwardInto(make([]float64, l.W.Val.R), x)
}

// ForwardInto computes dst = W·x + b into the caller's buffer (no
// allocation) and returns dst.
func (l *Linear) ForwardInto(dst, x []float64) []float64 {
	l.W.Val.MulVecInto(dst, x)
	for i := range dst {
		dst[i] += l.B.Val.W[i]
	}
	return dst
}

// Backward accumulates parameter gradients for dY at input x and returns dX.
func (l *Linear) Backward(dY, x []float64) []float64 {
	l.AccumStepGrads(dY, x)
	return l.W.Val.MulTVec(dY)
}

// AccumStepGrads adds one (sequence, step) contribution to the parameter
// gradients: W += dY·xᵀ then B += dY — the accumulation half of Backward,
// replayed per sequence by the batched path.
func (l *Linear) AccumStepGrads(dY, x []float64) {
	l.W.Grad.AddOuter(dY, x)
	for i := range dY {
		l.B.Grad.W[i] += dY[i]
	}
}

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogPGrad returns d(-log p[action])/d(logits) = softmax(logits) - onehot,
// the REINFORCE per-step logit gradient (before the advantage scaling).
func LogPGrad(logits []float64, action int) []float64 {
	g := Softmax(logits)
	g[action] -= 1
	return g
}

// Entropy returns the Shannon entropy of a probability vector in nats.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
