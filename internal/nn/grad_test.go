package nn

import (
	"fmt"
	"math"
	"testing"

	"nasaic/internal/stats"
)

// Finite-difference gradient checks across random shapes and seeds. The
// analytic gradients of LSTM.Backward, Linear.Backward and LogPGrad must
// match central differences to a relative error below 1e-6 — tight enough
// that any dropped term or transposition shows up immediately, loose enough
// for float64 cancellation noise at eps=1e-5.

const (
	fdEps = 1e-5
	fdTol = 1e-6
)

// relErr is the symmetric relative error with an absolute floor, so tiny
// gradients are compared absolutely (central differences bottom out around
// 1e-10 of the loss scale).
func relErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1.0)
	return math.Abs(a-b) / den
}

func randVec(rng *stats.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// checkParamGrads central-differences every parameter weight against the
// accumulated analytic gradient.
func checkParamGrads(t *testing.T, params []*Param, loss func() float64) {
	t.Helper()
	for _, p := range params {
		for i := range p.Val.W {
			orig := p.Val.W[i]
			p.Val.W[i] = orig + fdEps
			up := loss()
			p.Val.W[i] = orig - fdEps
			down := loss()
			p.Val.W[i] = orig
			num := (up - down) / (2 * fdEps)
			if e := relErr(num, p.Grad.W[i]); e > fdTol {
				t.Fatalf("%s[%d]: analytic %.12g vs numeric %.12g (rel err %.3g)",
					p.Name, i, p.Grad.W[i], num, e)
			}
		}
	}
}

// TestLSTMBackwardGradCheckShapes runs a three-step unroll through random
// (input, hidden) shapes and seeds, checking every parameter and the input
// gradients, including the cell-state path across steps.
func TestLSTMBackwardGradCheckShapes(t *testing.T) {
	shapes := []struct{ in, hidden int }{{2, 3}, {5, 4}, {3, 8}, {7, 6}}
	for si, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("in=%d,h=%d,seed=%d", sh.in, sh.hidden, seed), func(t *testing.T) {
				rng := stats.NewRNG(seed*100 + int64(si))
				init := func(p *Param) { p.InitXavier(rng) }
				l := NewLSTM(sh.in, sh.hidden, init)
				const T = 3
				xs := make([][]float64, T)
				for i := range xs {
					xs[i] = randVec(rng, sh.in)
				}
				lossW := randVec(rng, sh.hidden)

				loss := func() float64 {
					st := l.ZeroState()
					var s float64
					for i := 0; i < T; i++ {
						st, _ = l.Forward(xs[i], st)
						// Every step contributes, so gradients flow through
						// both the hidden and the cell paths at every depth.
						for j := range st.H {
							s += lossW[j] * st.H[j] * float64(i+1)
						}
					}
					return s
				}

				// Analytic pass.
				states := make([]LSTMState, T+1)
				caches := make([]*LSTMCache, T)
				states[0] = l.ZeroState()
				for i := 0; i < T; i++ {
					states[i+1], caches[i] = l.Forward(xs[i], states[i])
				}
				dXs := make([][]float64, T)
				var dH, dC []float64
				for i := T - 1; i >= 0; i-- {
					step := make([]float64, sh.hidden)
					for j := range step {
						step[j] = lossW[j] * float64(i+1)
					}
					if dH != nil {
						AccumVec(step, dH)
					}
					var dPrev LSTMState
					dXs[i], dPrev = l.Backward(step, dC, caches[i])
					dH, dC = dPrev.H, dPrev.C
				}

				checkParamGrads(t, l.Params(), loss)
				for i := 0; i < T; i++ {
					for j := range xs[i] {
						orig := xs[i][j]
						xs[i][j] = orig + fdEps
						up := loss()
						xs[i][j] = orig - fdEps
						down := loss()
						xs[i][j] = orig
						num := (up - down) / (2 * fdEps)
						if e := relErr(num, dXs[i][j]); e > fdTol {
							t.Fatalf("dX[%d][%d]: analytic %.12g vs numeric %.12g (rel err %.3g)",
								i, j, dXs[i][j], num, e)
						}
					}
				}
			})
		}
	}
}

// TestLinearBackwardGradCheckShapes checks Linear.Backward across random
// shapes and seeds, parameters and inputs both.
func TestLinearBackwardGradCheckShapes(t *testing.T) {
	shapes := []struct{ in, out int }{{1, 1}, {4, 3}, {6, 9}, {8, 2}}
	for si, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("in=%d,out=%d,seed=%d", sh.in, sh.out, seed), func(t *testing.T) {
				rng := stats.NewRNG(seed*37 + int64(si))
				init := func(p *Param) { p.InitXavier(rng) }
				lin := NewLinear("l", sh.in, sh.out, init)
				x := randVec(rng, sh.in)
				lossW := randVec(rng, sh.out)

				loss := func() float64 {
					y := lin.Forward(x)
					var s float64
					for i := range y {
						s += lossW[i] * y[i]
					}
					return s
				}
				dX := lin.Backward(lossW, x)
				checkParamGrads(t, lin.Params(), loss)
				for j := range x {
					orig := x[j]
					x[j] = orig + fdEps
					up := loss()
					x[j] = orig - fdEps
					down := loss()
					x[j] = orig
					num := (up - down) / (2 * fdEps)
					if e := relErr(num, dX[j]); e > fdTol {
						t.Fatalf("dX[%d]: analytic %.12g vs numeric %.12g (rel err %.3g)", j, dX[j], num, e)
					}
				}
			})
		}
	}
}

// TestLogPGradGradCheck verifies LogPGrad = d(-log softmax[a])/d(logits)
// against central differences across random shapes, seeds and actions.
func TestLogPGradGradCheck(t *testing.T) {
	for _, n := range []int{2, 3, 7, 12} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("n=%d,seed=%d", n, seed), func(t *testing.T) {
				rng := stats.NewRNG(seed*11 + int64(n))
				logits := randVec(rng, n)
				for i := range logits {
					logits[i] *= 2
				}
				a := rng.Intn(n)
				loss := func() float64 { return -math.Log(Softmax(logits)[a]) }
				g := LogPGrad(logits, a)
				for i := range logits {
					orig := logits[i]
					logits[i] = orig + fdEps
					up := loss()
					logits[i] = orig - fdEps
					down := loss()
					logits[i] = orig
					num := (up - down) / (2 * fdEps)
					if e := relErr(num, g[i]); e > fdTol {
						t.Fatalf("logit[%d] (action %d): analytic %.12g vs numeric %.12g (rel err %.3g)",
							i, a, g[i], num, e)
					}
				}
			})
		}
	}
}

// TestSoftmaxEdgeCases pins the numerically delicate inputs: huge and tiny
// logits, uniform, one-hot-like gaps, and single elements.
func TestSoftmaxEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		logits []float64
		want   func(t *testing.T, p []float64)
	}{
		{"large positive", []float64{1e4, 1e4 + 1, 1e4 - 1}, func(t *testing.T, p []float64) {
			if !(p[1] > p[0] && p[0] > p[2]) {
				t.Errorf("ordering lost under large logits: %v", p)
			}
		}},
		{"large negative", []float64{-1e4, -1e4 - 2}, func(t *testing.T, p []float64) {
			if !(p[0] > p[1]) || p[1] <= 0 {
				t.Errorf("large negative logits collapsed: %v", p)
			}
		}},
		{"huge magnitude", []float64{1e308, -1e308}, func(t *testing.T, p []float64) {
			if p[0] != 1 || p[1] != 0 {
				t.Errorf("extreme gap should saturate to one-hot: %v", p)
			}
		}},
		{"uniform", []float64{3, 3, 3, 3}, func(t *testing.T, p []float64) {
			for _, v := range p {
				if math.Abs(v-0.25) > 1e-15 {
					t.Errorf("uniform logits should give uniform probs: %v", p)
				}
			}
		}},
		{"one-hot gap", []float64{0, 800, 0}, func(t *testing.T, p []float64) {
			if p[1] < 1-1e-12 {
				t.Errorf("dominant logit should take all mass: %v", p)
			}
		}},
		{"single", []float64{-42}, func(t *testing.T, p []float64) {
			if p[0] != 1 {
				t.Errorf("single logit must give probability 1: %v", p)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Softmax(tc.logits)
			var sum float64
			for _, v := range p {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("invalid probability in %v", p)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("probabilities sum to %.17g", sum)
			}
			tc.want(t, p)
		})
	}
}

// TestEntropyEdgeCases pins Entropy on the distribution shapes the
// controller actually visits: uniform (max), one-hot (zero), near-one-hot,
// and distributions containing exact zeros.
func TestEntropyEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		p    []float64
		want float64
		tol  float64
	}{
		{"uniform 2", []float64{0.5, 0.5}, math.Log(2), 1e-15},
		{"uniform 8", []float64{.125, .125, .125, .125, .125, .125, .125, .125}, math.Log(8), 1e-12},
		{"one-hot", []float64{0, 1, 0, 0}, 0, 0},
		{"with zeros", []float64{0.5, 0, 0.5, 0}, math.Log(2), 1e-15},
		{"near one-hot", []float64{1 - 1e-12, 1e-12}, 1e-12 * (math.Log(1e12) + 1), 1e-13},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Entropy(tc.p)
			if math.Abs(got-tc.want) > tc.tol || math.IsNaN(got) {
				t.Errorf("Entropy(%v) = %.17g, want %.17g ± %g", tc.p, got, tc.want, tc.tol)
			}
		})
	}
	// Softmax of huge uniform logits must still yield the maximum entropy.
	if h := Entropy(Softmax([]float64{1e6, 1e6, 1e6})); math.Abs(h-math.Log(3)) > 1e-12 {
		t.Errorf("entropy of uniform softmax = %.17g, want ln 3", h)
	}
}
