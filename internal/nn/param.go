package nn

import (
	"fmt"
	"math"

	"nasaic/internal/stats"
)

// Param is a trainable tensor paired with its gradient accumulator.
type Param struct {
	Name string
	Val  *Mat
	Grad *Mat
}

// NewParam returns a zero-initialized parameter.
func NewParam(name string, r, c int) *Param {
	return &Param{Name: name, Val: NewMat(r, c), Grad: NewMat(r, c)}
}

// InitXavier fills the parameter with Xavier/Glorot-uniform values.
func (p *Param) InitXavier(rng *stats.RNG) {
	limit := math.Sqrt(6.0 / float64(p.Val.R+p.Val.C))
	for i := range p.Val.W {
		p.Val.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// GradNorm returns the L2 norm of the gradient.
func (p *Param) GradNorm() float64 {
	var s float64
	for _, g := range p.Grad.W {
		s += g * g
	}
	return math.Sqrt(s)
}

// RMSProp implements the optimizer the paper trains the controller with
// (§V-A: RMSProp, initial learning rate 0.99, exponential decay 0.5 every 50
// steps).
type RMSProp struct {
	LR           float64 // current learning rate
	Decay        float64 // squared-gradient averaging factor
	Eps          float64
	ClipNorm     float64 // per-parameter gradient clipping (0 disables)
	LRDecay      float64 // multiplicative decay applied every LRDecaySteps
	LRDecaySteps int

	steps int
	cache map[*Param][]float64
}

// NewRMSProp returns an optimizer with the paper's hyperparameters.
func NewRMSProp() *RMSProp {
	return &RMSProp{
		LR:           0.99,
		Decay:        0.9,
		Eps:          1e-8,
		ClipNorm:     5.0,
		LRDecay:      0.5,
		LRDecaySteps: 50,
		cache:        map[*Param][]float64{},
	}
}

// Step applies one RMSProp update to every parameter and advances the
// learning-rate schedule.
func (o *RMSProp) Step(params []*Param) {
	for _, p := range params {
		sq, ok := o.cache[p]
		if !ok {
			sq = make([]float64, len(p.Val.W))
			o.cache[p] = sq
		}
		scale := 1.0
		if o.ClipNorm > 0 {
			if n := p.GradNorm(); n > o.ClipNorm {
				scale = o.ClipNorm / n
			}
		}
		for i, g := range p.Grad.W {
			g *= scale
			sq[i] = o.Decay*sq[i] + (1-o.Decay)*g*g
			p.Val.W[i] -= o.LR * g / (math.Sqrt(sq[i]) + o.Eps)
		}
	}
	o.steps++
	if o.LRDecaySteps > 0 && o.steps%o.LRDecaySteps == 0 {
		o.LR *= o.LRDecay
	}
}

// Steps returns the number of optimizer steps taken.
func (o *RMSProp) Steps() int { return o.steps }

// checkFinite panics when a parameter contains NaN/Inf — a guard against
// silent training divergence.
func checkFinite(p *Param) {
	for _, v := range p.Val.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("nn: parameter %s diverged", p.Name))
		}
	}
}

// CheckFinite validates all parameters.
func CheckFinite(params []*Param) {
	for _, p := range params {
		checkFinite(p)
	}
}
