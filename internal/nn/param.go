package nn

import (
	"fmt"
	"math"

	"nasaic/internal/stats"
)

// Param is a trainable tensor paired with its gradient accumulator.
type Param struct {
	Name string
	Val  *Mat
	Grad *Mat
}

// NewParam returns a zero-initialized parameter.
func NewParam(name string, r, c int) *Param {
	return &Param{Name: name, Val: NewMat(r, c), Grad: NewMat(r, c)}
}

// InitXavier fills the parameter with Xavier/Glorot-uniform values.
func (p *Param) InitXavier(rng *stats.RNG) {
	limit := math.Sqrt(6.0 / float64(p.Val.R+p.Val.C))
	for i := range p.Val.W {
		p.Val.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// GradNorm returns the L2 norm of the gradient.
func (p *Param) GradNorm() float64 {
	var s float64
	for _, g := range p.Grad.W {
		s += g * g
	}
	return math.Sqrt(s)
}

// RMSProp implements the optimizer the paper trains the controller with
// (§V-A: RMSProp, initial learning rate 0.99, exponential decay 0.5 every 50
// steps).
//
// The squared-gradient state lives in one flattened arena spanning every
// parameter (ROADMAP hot spot: the per-parameter serial walk over a map of
// slices), so Step is a single fused pass over contiguous memory with the
// per-parameter offsets resolved once and cached for the common case of an
// unchanged parameter list. The arithmetic — including its operation order —
// is unchanged, so updates are bit-identical to the pre-arena optimizer
// (enforced by the differential test in param_test.go).
type RMSProp struct {
	LR           float64 // current learning rate
	Decay        float64 // squared-gradient averaging factor
	Eps          float64
	ClipNorm     float64 // per-parameter gradient clipping (0 disables)
	LRDecay      float64 // multiplicative decay applied every LRDecaySteps
	LRDecaySteps int

	steps int
	// arena holds every parameter's squared-gradient average back to back;
	// offsets maps a parameter to its segment start. last/lastOffs cache
	// the offsets of the previous Step's parameter list, skipping the map
	// entirely while the caller keeps passing the same list.
	arena    []float64
	offsets  map[*Param]int
	last     []*Param
	lastOffs []int
}

// NewRMSProp returns an optimizer with the paper's hyperparameters.
func NewRMSProp() *RMSProp {
	return &RMSProp{
		LR:           0.99,
		Decay:        0.9,
		Eps:          1e-8,
		ClipNorm:     5.0,
		LRDecay:      0.5,
		LRDecaySteps: 50,
		offsets:      map[*Param]int{},
	}
}

// sameParams reports whether params is element-wise identical to the cached
// list of the previous Step.
func (o *RMSProp) sameParams(params []*Param) bool {
	if len(params) != len(o.last) {
		return false
	}
	for i, p := range params {
		if o.last[i] != p {
			return false
		}
	}
	return true
}

// resolveOffsets returns each parameter's arena offset, extending the arena
// for parameters seen for the first time.
func (o *RMSProp) resolveOffsets(params []*Param) []int {
	if o.sameParams(params) {
		return o.lastOffs
	}
	offs := make([]int, len(params))
	for i, p := range params {
		off, ok := o.offsets[p]
		if !ok {
			off = len(o.arena)
			o.arena = append(o.arena, make([]float64, len(p.Val.W))...)
			o.offsets[p] = off
		}
		offs[i] = off
	}
	o.last = append([]*Param(nil), params...)
	o.lastOffs = offs
	return offs
}

// Step applies one RMSProp update to every parameter and advances the
// learning-rate schedule: one fused pass per parameter segment of the
// flattened arena (clip-norm scan over the gradient, then the element-wise
// second-moment and value update in the original operation order).
func (o *RMSProp) Step(params []*Param) {
	offs := o.resolveOffsets(params)
	for pi, p := range params {
		sq := o.arena[offs[pi] : offs[pi]+len(p.Val.W)]
		scale := 1.0
		if o.ClipNorm > 0 {
			if n := p.GradNorm(); n > o.ClipNorm {
				scale = o.ClipNorm / n
			}
		}
		val, grad := p.Val.W, p.Grad.W
		for i, g := range grad {
			g *= scale
			sq[i] = o.Decay*sq[i] + (1-o.Decay)*g*g
			val[i] -= o.LR * g / (math.Sqrt(sq[i]) + o.Eps)
		}
	}
	o.steps++
	if o.LRDecaySteps > 0 && o.steps%o.LRDecaySteps == 0 {
		o.LR *= o.LRDecay
	}
}

// Steps returns the number of optimizer steps taken.
func (o *RMSProp) Steps() int { return o.steps }

// checkFinite panics when a parameter contains NaN/Inf — a guard against
// silent training divergence.
func checkFinite(p *Param) {
	for _, v := range p.Val.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("nn: parameter %s diverged", p.Name))
		}
	}
}

// CheckFinite validates all parameters.
func CheckFinite(params []*Param) {
	for _, p := range params {
		checkFinite(p)
	}
}
