// AVX column-block kernels for the batched matrix path. Each 256-bit lane
// runs one output column's accumulation chain: VMULPD then VADDPD round
// exactly like the scalar mul-then-add in the pure-Go kernels (no FMA
// contraction), so the asm path is bit-identical per element — the property
// the batched controller's differential tests pin down.

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64)
//
// dst[0:8] = Σ_{k<n} a[k*astride] · x[k*xstride : k*xstride+8]
//
// Strides are in elements. Every lane is an independent single-accumulator
// chain over k ascending, mirroring the scalar kernels.
TEXT ·dotBlock8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ astride+8(FP), R8
	MOVQ x+16(FP), DI
	MOVQ xstride+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ dst+40(FP), DX
	SHLQ $3, R8
	SHLQ $3, R9
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	TESTQ CX, CX
	JZ   dot8done

dot8loop:
	VBROADCASTSD (SI), Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VMULPD  Y3, Y2, Y3
	VMULPD  Y4, Y2, Y4
	VADDPD  Y3, Y0, Y0
	VADDPD  Y4, Y1, Y1
	ADDQ R8, SI
	ADDQ R9, DI
	DECQ CX
	JNZ  dot8loop

dot8done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET

// func dotBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64)
//
// dst[0:4] = Σ_{k<n} a[k*astride] · x[k*xstride : k*xstride+4]
TEXT ·dotBlock4(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ astride+8(FP), R8
	MOVQ x+16(FP), DI
	MOVQ xstride+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ dst+40(FP), DX
	SHLQ $3, R8
	SHLQ $3, R9
	VXORPD Y0, Y0, Y0
	TESTQ CX, CX
	JZ   dot4done

dot4loop:
	VBROADCASTSD (SI), Y2
	VMOVUPD (DI), Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  Y3, Y0, Y0
	ADDQ R8, SI
	ADDQ R9, DI
	DECQ CX
	JNZ  dot4loop

dot4done:
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func accumBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64)
//
// dst[0:8] += Σ_{k<n} a[k*astride] · x[k*xstride : k*xstride+8], with the
// existing dst values as the heads of the accumulation chains (the replayed
// gradient-add order).
TEXT ·accumBlock8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ astride+8(FP), R8
	MOVQ x+16(FP), DI
	MOVQ xstride+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ dst+40(FP), DX
	SHLQ $3, R8
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	TESTQ CX, CX
	JZ   acc8done

acc8loop:
	VBROADCASTSD (SI), Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VMULPD  Y3, Y2, Y3
	VMULPD  Y4, Y2, Y4
	VADDPD  Y3, Y0, Y0
	VADDPD  Y4, Y1, Y1
	ADDQ R8, SI
	ADDQ R9, DI
	DECQ CX
	JNZ  acc8loop

acc8done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET

// func accumBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64)
//
// dst[0:4] += Σ_{k<n} a[k*astride] · x[k*xstride : k*xstride+4]
TEXT ·accumBlock4(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ astride+8(FP), R8
	MOVQ x+16(FP), DI
	MOVQ xstride+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ dst+40(FP), DX
	SHLQ $3, R8
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	TESTQ CX, CX
	JZ   acc4done

acc4loop:
	VBROADCASTSD (SI), Y2
	VMOVUPD (DI), Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  Y3, Y0, Y0
	ADDQ R8, SI
	ADDQ R9, DI
	DECQ CX
	JNZ  acc4loop

acc4done:
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET
