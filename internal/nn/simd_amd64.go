//go:build amd64

package nn

// AVX fast path for the batched column-block kernels (simd_amd64.s). The
// vector lanes compute independent per-column accumulation chains with
// separate multiply and add (no FMA contraction), so results are
// bit-identical to the pure-Go kernels — verified by the fallback
// differential tests and the kernel fuzz targets. Detection follows the
// standard protocol: OSXSAVE + AVX in CPUID.1:ECX, YMM state enabled in
// XCR0.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func dotBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64)

//go:noescape
func dotBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64)

//go:noescape
func accumBlock8(a *float64, astride int, x *float64, xstride int, n int, dst *float64)

//go:noescape
func accumBlock4(a *float64, astride int, x *float64, xstride int, n int, dst *float64)

var simdEnabled = detectAVX()

func detectAVX() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	// The OS must have enabled XMM and YMM state saving (XCR0 bits 1 and 2).
	eax, _ := xgetbv0()
	return eax&0x6 == 0x6
}
