package nn

import "math"

// This file is the batched (matrix-matrix) execution path: B sequences step
// in lockstep, one column per sequence. Column b of every batched operation
// is bit-identical to the corresponding matrix-vector operation on column b
// — same accumulation order, same per-element expressions — which is what
// lets internal/rl swap B sequential rollouts for one lockstep batch without
// changing a single bit of the training trajectory.

// LSTMBatchState is the recurrent state of B lockstep sequences; H and C are
// HiddenSize×B matrices, one column per sequence.
type LSTMBatchState struct {
	H, C *Mat
}

// ZeroBatchState returns an all-zero initial state for b sequences.
func (l *LSTM) ZeroBatchState(b int) LSTMBatchState {
	return LSTMBatchState{H: NewMat(l.HiddenSize, b), C: NewMat(l.HiddenSize, b)}
}

// LSTMBatchCache stores the intermediates of one lockstep forward step. X,
// HPrev and CPrev reference the caller's matrices (valid until the caller
// reuses those buffers); the gate and state matrices are owned by the cache.
type LSTMBatchCache struct {
	X            *Mat // I × B (reference)
	HPrev, CPrev *Mat // H × B (references)
	I, F, G, O   *Mat // H × B post-activation gates
	C, H         *Mat // H × B
}

// SeqCaches splits the batch cache into per-sequence LSTMCaches, copying
// each column out into one shared arena (a single allocation for all B
// caches). The resulting caches are self-contained — exactly what a
// sequential Forward would have produced for that sequence — so episodes
// sampled in a batch can later be backpropagated individually.
func (bc *LSTMBatchCache) SeqCaches() []*LSTMCache {
	b := bc.H.C
	in := bc.X.R
	h := bc.H.R
	per := in + 8*h
	arena := make([]float64, b*per)
	out := make([]*LSTMCache, b)
	for e := 0; e < b; e++ {
		buf := arena[e*per : (e+1)*per]
		take := func(n int) []float64 {
			s := buf[:n:n]
			buf = buf[n:]
			return s
		}
		c := &LSTMCache{
			X:     bc.X.ColInto(take(in), e),
			HPrev: bc.HPrev.ColInto(take(h), e),
			CPrev: bc.CPrev.ColInto(take(h), e),
			I:     bc.I.ColInto(take(h), e),
			F:     bc.F.ColInto(take(h), e),
			G:     bc.G.ColInto(take(h), e),
			O:     bc.O.ColInto(take(h), e),
			C:     bc.C.ColInto(take(h), e),
			H:     bc.H.ColInto(take(h), e),
		}
		out[e] = c
	}
	return out
}

// batchScratch returns the two 4H×B pre-activation scratch matrices, resized
// when the batch width changes.
func (l *LSTM) batchScratch(b int) (zx, zh *Mat) {
	if l.bzx == nil || l.bzx.C != b {
		l.bzx = NewMat(4*l.HiddenSize, b)
		l.bzh = NewMat(4*l.HiddenSize, b)
	}
	return l.bzx, l.bzh
}

// ForwardBatch runs one lockstep time step for B sequences: (x I×B, prev) →
// (next state, cache). Column b of every output is bit-identical to a
// sequential Forward of column b.
func (l *LSTM) ForwardBatch(x *Mat, prev LSTMBatchState) (LSTMBatchState, *LSTMBatchCache) {
	H := l.HiddenSize
	b := x.C
	if x.R != l.InputSize {
		panic("nn: ForwardBatch input rows mismatch")
	}
	if prev.H.R != H || prev.H.C != b || prev.C.R != H || prev.C.C != b {
		panic("nn: ForwardBatch state shape mismatch")
	}
	zx, zh := l.batchScratch(b)
	l.Wx.Val.MulMatInto(zx, x)
	l.Wh.Val.MulMatInto(zh, prev.H)

	cache := &LSTMBatchCache{
		X: x, HPrev: prev.H, CPrev: prev.C,
		I: NewMat(H, b), F: NewMat(H, b),
		G: NewMat(H, b), O: NewMat(H, b),
		C: NewMat(H, b), H: NewMat(H, b),
	}
	bias := l.B.Val.W
	for i := 0; i < H; i++ {
		bi, bf, bg, bo := bias[i], bias[H+i], bias[2*H+i], bias[3*H+i]
		zxi, zhi := zx.W[i*b:(i+1)*b], zh.W[i*b:(i+1)*b]
		zxf, zhf := zx.W[(H+i)*b:(H+i+1)*b], zh.W[(H+i)*b:(H+i+1)*b]
		zxg, zhg := zx.W[(2*H+i)*b:(2*H+i+1)*b], zh.W[(2*H+i)*b:(2*H+i+1)*b]
		zxo, zho := zx.W[(3*H+i)*b:(3*H+i+1)*b], zh.W[(3*H+i)*b:(3*H+i+1)*b]
		cp := prev.C.W[i*b : (i+1)*b]
		oi := cache.I.W[i*b : (i+1)*b]
		of := cache.F.W[i*b : (i+1)*b]
		og := cache.G.W[i*b : (i+1)*b]
		oo := cache.O.W[i*b : (i+1)*b]
		oc := cache.C.W[i*b : (i+1)*b]
		oh := cache.H.W[i*b : (i+1)*b]
		for e := 0; e < b; e++ {
			// Mirrors the sequential step exactly: z = (Wx·x + Wh·h) + b,
			// then the gate nonlinearities and state update in Forward's
			// expression order.
			vi := sigmoid(zxi[e] + zhi[e] + bi)
			vf := sigmoid(zxf[e] + zhf[e] + bf)
			vg := math.Tanh(zxg[e] + zhg[e] + bg)
			vo := sigmoid(zxo[e] + zho[e] + bo)
			vc := vf*cp[e] + vi*vg
			oi[e], of[e], og[e], oo[e] = vi, vf, vg, vo
			oc[e] = vc
			oh[e] = vo * math.Tanh(vc)
		}
	}
	return LSTMBatchState{H: cache.H, C: cache.C}, cache
}

// BackwardBatch backpropagates one lockstep time step for B sequences. dH
// (H×B) is the gradient flowing into this step's output state; dC may be nil
// on the first backward step, mirroring the sequential API. caches holds the
// per-sequence forward caches of this step (column order). It returns the
// pre-activation gate gradients dz (4H×B), the input gradient dx (I×B), and
// the gradient w.r.t. the previous state.
//
// Parameter gradients are NOT accumulated here: callers replay
// (*LSTM).AccumStepGrads per (sequence, step) in the sequential order, so
// the floating-point accumulation into the gradient buffers is bit-identical
// to B sequential Backward calls.
func (l *LSTM) BackwardBatch(dH, dC *Mat, caches []*LSTMCache) (dz, dx *Mat, dPrev LSTMBatchState) {
	H := l.HiddenSize
	b := dH.C
	if dH.R != H || len(caches) != b {
		panic("nn: BackwardBatch shape mismatch")
	}
	if dC != nil && (dC.R != H || dC.C != b) {
		panic("nn: BackwardBatch dC shape mismatch")
	}
	dz = NewMat(4*H, b)
	dCPrev := NewMat(H, b)
	for e := 0; e < b; e++ {
		cache := caches[e]
		for i := 0; i < H; i++ {
			tc := math.Tanh(cache.C[i])
			dOut := dH.W[i*b+e]
			dCt := dOut * cache.O[i] * (1 - tc*tc)
			if dC != nil {
				dCt += dC.W[i*b+e]
			}
			dI := dCt * cache.G[i]
			dF := dCt * cache.CPrev[i]
			dG := dCt * cache.I[i]
			dO := dOut * tc
			dCPrev.W[i*b+e] = dCt * cache.F[i]

			dz.W[i*b+e] = dI * cache.I[i] * (1 - cache.I[i])
			dz.W[(H+i)*b+e] = dF * cache.F[i] * (1 - cache.F[i])
			dz.W[(2*H+i)*b+e] = dG * (1 - cache.G[i]*cache.G[i])
			dz.W[(3*H+i)*b+e] = dO * cache.O[i] * (1 - cache.O[i])
		}
	}
	dx = NewMat(l.InputSize, b)
	l.Wx.Val.MulTMatInto(dx, dz)
	dhPrev := NewMat(H, b)
	l.Wh.Val.MulTMatInto(dhPrev, dz)
	return dz, dx, LSTMBatchState{H: dhPrev, C: dCPrev}
}

// AccumBPTTGrads adds a whole batch's LSTM parameter-gradient contributions
// at once: dzs[t] is the 4H×B gate pre-activation gradient of step t, and
// xs[k], hps[k] are the cached X and HPrev vectors indexed by
// k = e·T + (T−1−t) — sequence-major with t descending, the order in which
// B sequential Accumulate passes would apply their AddOuter calls.
//
// Each gradient element's additions happen in exactly that k order into a
// register accumulator, so the result is bit-identical to the sequential
// AddOuter sequence — but every gradient matrix is walked once instead of
// B·T times, with eight independent column accumulators per pass.
func (l *LSTM) AccumBPTTGrads(dzs []*Mat, xs, hps [][]float64) {
	T := len(dzs)
	if T == 0 {
		return
	}
	b := dzs[0].C
	n := b * T
	if len(xs) != n || len(hps) != n {
		panic("nn: AccumBPTTGrads cache count mismatch")
	}
	in, hidden := l.InputSize, l.HiddenSize
	// Flatten the cached vectors into contiguous k-major buffers: the inner
	// loops then stream both operands linearly (and the SIMD kernels can
	// stride through them directly).
	xflat := make([]float64, n*in)
	hflat := make([]float64, n*hidden)
	for k := 0; k < n; k++ {
		copy(xflat[k*in:(k+1)*in], xs[k])
		copy(hflat[k*hidden:(k+1)*hidden], hps[k])
	}
	dzrow := make([]float64, n)
	for i := 0; i < 4*hidden; i++ {
		// Gather row i of every step's dz in k order once; it is then
		// streamed contiguously by both outer-product passes and the bias.
		idx := 0
		for e := 0; e < b; e++ {
			for t := T - 1; t >= 0; t-- {
				dzrow[idx] = dzs[t].W[i*b+e]
				idx++
			}
		}
		accumRowOuter(l.Wx.Grad.W[i*in:(i+1)*in], dzrow, xflat, in)
		accumRowOuter(l.Wh.Grad.W[i*hidden:(i+1)*hidden], dzrow, hflat, hidden)
		g := l.B.Grad.W[i]
		for _, v := range dzrow {
			g += v
		}
		l.B.Grad.W[i] = g
	}
}

// accumRowOuter adds Σ_k dzrow[k]·xflat[k*cols+j] into one gradient row,
// eight columns per register block. Each column's terms add in ascending k
// order through a single accumulator seeded with the existing gradient
// value — the same chain of floating-point additions the per-step AddOuter
// calls would produce.
func accumRowOuter(grow, dzrow, xflat []float64, cols int) {
	n := len(dzrow)
	j := 0
	if simdEnabled && n > 0 {
		for ; j+8 <= cols; j += 8 {
			accumBlock8(&dzrow[0], 1, &xflat[j], cols, n, &grow[j])
		}
		for ; j+4 <= cols; j += 4 {
			accumBlock4(&dzrow[0], 1, &xflat[j], cols, n, &grow[j])
		}
	}
	for ; j+8 <= cols; j += 8 {
		g0, g1, g2, g3 := grow[j], grow[j+1], grow[j+2], grow[j+3]
		g4, g5, g6, g7 := grow[j+4], grow[j+5], grow[j+6], grow[j+7]
		for k, v := range dzrow {
			x := xflat[k*cols+j : k*cols+j+8 : k*cols+j+8]
			g0 += v * x[0]
			g1 += v * x[1]
			g2 += v * x[2]
			g3 += v * x[3]
			g4 += v * x[4]
			g5 += v * x[5]
			g6 += v * x[6]
			g7 += v * x[7]
		}
		o := grow[j : j+8 : j+8]
		o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7] = g0, g1, g2, g3, g4, g5, g6, g7
	}
	for ; j < cols; j++ {
		g := grow[j]
		for k, v := range dzrow {
			g += v * xflat[k*cols+j]
		}
		grow[j] = g
	}
}

// ForwardBatch computes Y = W·X + b over a column batch (X in×B), allocating
// Y. Column b is bit-identical to Forward of column b.
func (l *Linear) ForwardBatch(x *Mat) *Mat {
	y := NewMat(l.W.Val.R, x.C)
	l.W.Val.MulMatInto(y, x)
	for i := 0; i < y.R; i++ {
		bi := l.B.Val.W[i]
		row := y.W[i*y.C : (i+1)*y.C]
		for e := range row {
			row[e] += bi
		}
	}
	return y
}

// BackwardBatchFlows computes dX = Wᵀ·dY over a column batch, without
// touching the parameter gradients (callers replay AccumStepGrads per
// sequence, as with the LSTM).
func (l *Linear) BackwardBatchFlows(dY *Mat) *Mat {
	dx := NewMat(l.W.Val.C, dY.C)
	l.W.Val.MulTMatInto(dx, dY)
	return dx
}
