package nn

import (
	"fmt"
	"testing"

	"nasaic/internal/stats"
)

func randMat(rng *stats.RNG, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	return m
}

// Every batched kernel must agree bit-for-bit, column by column, with its
// matrix-vector counterpart — that identity is what makes the lockstep
// controller path safe to enable unconditionally.

func TestMulMatColumnsMatchMulVec(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, sh := range []struct{ r, c, b int }{{1, 1, 1}, {4, 3, 5}, {7, 9, 2}, {16, 16, 8}} {
		m := randMat(rng, sh.r, sh.c)
		x := randMat(rng, sh.c, sh.b)
		y := NewMat(sh.r, sh.b)
		m.MulMatInto(y, x)
		for e := 0; e < sh.b; e++ {
			want := m.MulVec(x.Col(e))
			got := y.Col(e)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%dx%d·%dx%d col %d row %d: %.17g vs %.17g",
						sh.r, sh.c, sh.c, sh.b, e, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulTMatColumnsMatchMulTVec(t *testing.T) {
	rng := stats.NewRNG(5)
	for _, sh := range []struct{ r, c, b int }{{1, 1, 1}, {4, 3, 5}, {9, 7, 3}, {16, 16, 8}} {
		m := randMat(rng, sh.r, sh.c)
		y := randMat(rng, sh.r, sh.b)
		// Sprinkle exact zeros to exercise the skip path.
		for i := 0; i < len(y.W); i += 3 {
			y.W[i] = 0
		}
		x := NewMat(sh.c, sh.b)
		m.MulTMatInto(x, y)
		for e := 0; e < sh.b; e++ {
			want := m.MulTVec(y.Col(e))
			got := x.Col(e)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("col %d elem %d: %.17g vs %.17g", e, j, got[j], want[j])
				}
			}
		}
	}
}

func TestLSTMForwardBatchColumnsMatchForward(t *testing.T) {
	rng := stats.NewRNG(7)
	init := func(p *Param) { p.InitXavier(rng) }
	l := NewLSTM(5, 6, init)
	const B, T = 4, 3

	// Sequential reference: B independent rollouts of the same cell.
	seqStates := make([]LSTMState, B)
	for e := range seqStates {
		seqStates[e] = l.ZeroState()
	}
	xs := make([]*Mat, T)
	for i := range xs {
		xs[i] = randMat(rng, 5, B)
	}

	batState := l.ZeroBatchState(B)
	for step := 0; step < T; step++ {
		var batCache *LSTMBatchCache
		batState, batCache = l.ForwardBatch(xs[step], batState)
		caches := batCache.SeqCaches()
		for e := 0; e < B; e++ {
			var seqCache *LSTMCache
			seqStates[e], seqCache = l.Forward(xs[step].Col(e), seqStates[e])
			for i := range seqStates[e].H {
				if h := batState.H.At(i, e); h != seqStates[e].H[i] {
					t.Fatalf("step %d col %d H[%d]: %.17g vs %.17g", step, e, i, h, seqStates[e].H[i])
				}
				if c := batState.C.At(i, e); c != seqStates[e].C[i] {
					t.Fatalf("step %d col %d C[%d]: %.17g vs %.17g", step, e, i, c, seqStates[e].C[i])
				}
			}
			// The extracted per-sequence cache must equal the sequential one
			// field by field (it later feeds sequential Backward).
			pairs := [][2][]float64{
				{caches[e].X, seqCache.X}, {caches[e].HPrev, seqCache.HPrev},
				{caches[e].CPrev, seqCache.CPrev}, {caches[e].I, seqCache.I},
				{caches[e].F, seqCache.F}, {caches[e].G, seqCache.G},
				{caches[e].O, seqCache.O}, {caches[e].C, seqCache.C},
				{caches[e].H, seqCache.H},
			}
			for fi, pr := range pairs {
				for i := range pr[0] {
					if pr[0][i] != pr[1][i] {
						t.Fatalf("step %d col %d cache field %d elem %d mismatch", step, e, fi, i)
					}
				}
			}
		}
	}
}

// TestLSTMBackwardBatchMatchesSequential drives a full two-step BPTT through
// both paths — batched flows plus the episode-major AccumStepGrads replay —
// and requires bit-identical parameter gradients and input gradients.
func TestLSTMBackwardBatchMatchesSequential(t *testing.T) {
	build := func() (*LSTM, []*Linear) {
		rng := stats.NewRNG(11)
		init := func(p *Param) { p.InitXavier(rng) }
		l := NewLSTM(4, 6, init)
		heads := []*Linear{NewLinear("h0", 6, 3, init), NewLinear("h1", 6, 3, init)}
		return l, heads
	}
	lSeq, headsSeq := build()
	lBat, headsBat := build()

	const B, T = 5, 2
	rng := stats.NewRNG(13)
	xs := make([]*Mat, T)
	for i := range xs {
		xs[i] = randMat(rng, 4, B)
	}
	dys := make([]*Mat, T)
	for i := range dys {
		dys[i] = randMat(rng, 3, B)
	}

	// Sequential: per sequence, forward T steps then BPTT.
	seqCaches := make([][]*LSTMCache, B)
	seqHs := make([][][]float64, B)
	for e := 0; e < B; e++ {
		st := lSeq.ZeroState()
		seqCaches[e] = make([]*LSTMCache, T)
		seqHs[e] = make([][]float64, T)
		for i := 0; i < T; i++ {
			st, seqCaches[e][i] = lSeq.Forward(xs[i].Col(e), st)
			seqHs[e][i] = st.H
		}
	}
	seqDX := make([][][]float64, B)
	for e := 0; e < B; e++ {
		dh := make([]float64, 6)
		var dc []float64
		seqDX[e] = make([][]float64, T)
		for i := T - 1; i >= 0; i-- {
			step := headsSeq[i].Backward(dys[i].Col(e), seqHs[e][i])
			AccumVec(step, dh)
			var dPrev LSTMState
			seqDX[e][i], dPrev = lSeq.Backward(step, dc, seqCaches[e][i])
			dh, dc = dPrev.H, dPrev.C
		}
	}

	// Batched: lockstep forward, lockstep flows, episode-major grad replay.
	batCaches := make([][]*LSTMCache, T)
	hsMat := make([]*Mat, T)
	st := lBat.ZeroBatchState(B)
	for i := 0; i < T; i++ {
		var bc *LSTMBatchCache
		st, bc = lBat.ForwardBatch(xs[i], st)
		batCaches[i] = bc.SeqCaches()
		hsMat[i] = st.H
	}
	dH := NewMat(6, B)
	var dC *Mat
	dzs := make([]*Mat, T)
	dxs := make([]*Mat, T)
	for i := T - 1; i >= 0; i-- {
		dh := headsBat[i].BackwardBatchFlows(dys[i])
		dh.Add(dH)
		var dPrev LSTMBatchState
		dzs[i], dxs[i], dPrev = lBat.BackwardBatch(dh, dC, batCaches[i])
		dH, dC = dPrev.H, dPrev.C
	}
	dzcol := make([]float64, 4*6)
	for e := 0; e < B; e++ {
		for i := T - 1; i >= 0; i-- {
			headsBat[i].AccumStepGrads(dys[i].Col(e), batCaches[i][e].H)
			dzs[i].ColInto(dzcol, e)
			lBat.AccumStepGrads(dzcol, batCaches[i][e].X, batCaches[i][e].HPrev)
		}
	}

	// Input gradients, column by column.
	for e := 0; e < B; e++ {
		for i := 0; i < T; i++ {
			got := dxs[i].Col(e)
			for j := range got {
				if got[j] != seqDX[e][i][j] {
					t.Fatalf("dX step %d col %d elem %d: %.17g vs %.17g",
						i, e, j, got[j], seqDX[e][i][j])
				}
			}
		}
	}
	// Parameter gradients, buffer by buffer.
	check := func(name string, a, b *Param) {
		t.Helper()
		for i := range a.Grad.W {
			if a.Grad.W[i] != b.Grad.W[i] {
				t.Fatalf("%s grad[%d]: %.17g (seq) vs %.17g (batched)", name, i, a.Grad.W[i], b.Grad.W[i])
			}
		}
	}
	check("Wx", lSeq.Wx, lBat.Wx)
	check("Wh", lSeq.Wh, lBat.Wh)
	check("B", lSeq.B, lBat.B)
	for i := range headsSeq {
		check(fmt.Sprintf("head%d.W", i), headsSeq[i].W, headsBat[i].W)
		check(fmt.Sprintf("head%d.B", i), headsSeq[i].B, headsBat[i].B)
	}
}

func TestLinearForwardBatchMatchesForward(t *testing.T) {
	rng := stats.NewRNG(17)
	init := func(p *Param) { p.InitXavier(rng) }
	lin := NewLinear("l", 6, 4, init)
	x := randMat(rng, 6, 5)
	y := lin.ForwardBatch(x)
	for e := 0; e < 5; e++ {
		want := lin.Forward(x.Col(e))
		got := y.Col(e)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("col %d elem %d: %.17g vs %.17g", e, i, got[i], want[i])
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := stats.NewRNG(19)
	m := randMat(rng, 5, 9)
	tt := m.Transpose()
	if tt.R != 9 || tt.C != 5 {
		t.Fatalf("transpose shape %dx%d", tt.R, tt.C)
	}
	back := tt.Transpose()
	for i := range m.W {
		if back.W[i] != m.W[i] {
			t.Fatalf("round trip changed element %d", i)
		}
	}
	if tt.At(3, 2) != m.At(2, 3) {
		t.Fatal("transpose element mismatch")
	}
}

// TestKernelsPureGoFallback re-runs the kernel and BPTT differential suites
// with the SIMD fast path disabled, so the pure-Go register-blocked kernels
// stay verified on machines where AVX would otherwise mask them.
func TestKernelsPureGoFallback(t *testing.T) {
	if !simdEnabled {
		t.Skip("SIMD already disabled; the main tests cover the pure-Go path")
	}
	simdEnabled = false
	defer func() { simdEnabled = true }()
	t.Run("MulMat", TestMulMatColumnsMatchMulVec)
	t.Run("MulTMat", TestMulTMatColumnsMatchMulTVec)
	t.Run("ForwardBatch", TestLSTMForwardBatchColumnsMatchForward)
	t.Run("BackwardBatch", TestLSTMBackwardBatchMatchesSequential)
}

// TestSIMDMatchesPureGo compares the two kernel implementations against each
// other directly, bit for bit, on shapes that exercise the 8/4/scalar block
// split (only meaningful where the SIMD path exists).
func TestSIMDMatchesPureGo(t *testing.T) {
	if !simdEnabled {
		t.Skip("no SIMD support on this machine")
	}
	rng := stats.NewRNG(29)
	for _, sh := range []struct{ r, c, b int }{{5, 7, 8}, {9, 4, 11}, {16, 16, 13}, {3, 3, 23}} {
		m := randMat(rng, sh.r, sh.c)
		x := randMat(rng, sh.c, sh.b)
		y := randMat(rng, sh.r, sh.b)
		simdMul, simdTMul := NewMat(sh.r, sh.b), NewMat(sh.c, sh.b)
		m.MulMatInto(simdMul, x)
		m.MulTMatInto(simdTMul, y)
		simdEnabled = false
		goMul, goTMul := NewMat(sh.r, sh.b), NewMat(sh.c, sh.b)
		m.MulMatInto(goMul, x)
		m.MulTMatInto(goTMul, y)
		simdEnabled = true
		for i := range simdMul.W {
			if simdMul.W[i] != goMul.W[i] {
				t.Fatalf("MulMat %dx%dx%d elem %d: simd %.17g vs go %.17g",
					sh.r, sh.c, sh.b, i, simdMul.W[i], goMul.W[i])
			}
		}
		for i := range simdTMul.W {
			if simdTMul.W[i] != goTMul.W[i] {
				t.Fatalf("MulTMat %dx%dx%d elem %d: simd %.17g vs go %.17g",
					sh.r, sh.c, sh.b, i, simdTMul.W[i], goTMul.W[i])
			}
		}
	}
}

func TestBatchShapePanics(t *testing.T) {
	rng := stats.NewRNG(23)
	init := func(p *Param) { p.InitXavier(rng) }
	l := NewLSTM(3, 4, init)
	m := NewMat(2, 3)
	for name, f := range map[string]func(){
		"mulmat shape":    func() { m.MulMatInto(NewMat(2, 2), NewMat(4, 2)) },
		"mulmat dst":      func() { m.MulMatInto(NewMat(3, 2), NewMat(3, 2)) },
		"multmat shape":   func() { m.MulTMatInto(NewMat(3, 2), NewMat(4, 2)) },
		"multmat dst":     func() { m.MulTMatInto(NewMat(2, 2), NewMat(2, 2)) },
		"mulvec dst":      func() { m.MulVecInto(make([]float64, 1), []float64{1, 2, 3}) },
		"multvec dst":     func() { m.MulTVecInto(make([]float64, 1), []float64{1, 2}) },
		"setcol":          func() { m.SetCol(0, []float64{1}) },
		"colinto":         func() { m.ColInto(make([]float64, 1), 0) },
		"copycol rows":    func() { m.CopyColFrom(0, NewMat(3, 1), 0) },
		"copycol range":   func() { m.CopyColFrom(5, NewMat(2, 1), 0) },
		"add shape":       func() { m.Add(NewMat(3, 3)) },
		"fwdbatch input":  func() { l.ForwardBatch(NewMat(2, 2), l.ZeroBatchState(2)) },
		"fwdbatch state":  func() { l.ForwardBatch(NewMat(3, 2), l.ZeroBatchState(3)) },
		"bwdbatch shapes": func() { l.BackwardBatch(NewMat(4, 2), nil, make([]*LSTMCache, 3)) },
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
