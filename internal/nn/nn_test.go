package nn

import (
	"math"
	"testing"
	"testing/quick"

	"nasaic/internal/stats"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	y := m.MulVec([]float64{1, 2, 3})
	if y[0] != 7 || y[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", y)
	}
	x := m.MulTVec([]float64{1, 1})
	if x[0] != 1 || x[1] != 3 || x[2] != 2 {
		t.Errorf("MulTVec = %v, want [1 3 2]", x)
	}
	m2 := NewMat(2, 3)
	m2.AddOuter([]float64{1, 2}, []float64{3, 4, 5})
	if m2.At(1, 2) != 10 || m2.At(0, 0) != 3 {
		t.Errorf("AddOuter wrong: %+v", m2)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone must not alias")
	}
	col := m2.Col(1)
	if col[0] != 4 || col[1] != 8 {
		t.Errorf("Col = %v", col)
	}
	m2.AddCol(1, []float64{1, 1})
	if m2.At(0, 1) != 5 {
		t.Error("AddCol wrong")
	}
}

func TestMatPanics(t *testing.T) {
	m := NewMat(2, 3)
	for name, f := range map[string]func(){
		"shape":    func() { NewMat(0, 3) },
		"mulvec":   func() { m.MulVec([]float64{1}) },
		"multvec":  func() { m.MulTVec([]float64{1}) },
		"addouter": func() { m.AddOuter([]float64{1}, []float64{1, 2, 3}) },
		"col":      func() { m.Col(9) },
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %f", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax ordering wrong: %v", p)
	}
	// Stability under large logits.
	p2 := Softmax([]float64{1000, 1001})
	if math.IsNaN(p2[0]) || math.Abs(p2[0]+p2[1]-1) > 1e-12 {
		t.Errorf("softmax unstable: %v", p2)
	}
}

// Property: softmax is shift-invariant and always a distribution.
func TestSoftmaxProperties(t *testing.T) {
	f := func(a, b, c float64, shift float64) bool {
		for _, v := range []float64{a, b, c, shift} {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				return true
			}
		}
		p := Softmax([]float64{a, b, c})
		q := Softmax([]float64{a + shift, b + shift, c + shift})
		for i := range p {
			if p[i] < 0 || p[i] > 1 || math.Abs(p[i]-q[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if math.Abs(Entropy(uniform)-math.Log(4)) > 1e-12 {
		t.Error("uniform entropy should be ln 4")
	}
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Error("deterministic entropy should be 0")
	}
}

// Finite-difference gradient check for the Linear layer.
func TestLinearGradCheck(t *testing.T) {
	rng := stats.NewRNG(1)
	init := func(p *Param) { p.InitXavier(rng) }
	lin := NewLinear("l", 4, 3, init)
	x := []float64{0.3, -0.2, 0.8, 0.1}

	// Scalar loss: L = Σ w_i · y_i with fixed weights.
	lossW := []float64{0.7, -1.2, 0.4}
	loss := func() float64 {
		y := lin.Forward(x)
		var s float64
		for i := range y {
			s += lossW[i] * y[i]
		}
		return s
	}
	lin.Backward(lossW, x)
	const eps = 1e-6
	for _, p := range lin.Params() {
		for i := range p.Val.W {
			orig := p.Val.W[i]
			p.Val.W[i] = orig + eps
			up := loss()
			p.Val.W[i] = orig - eps
			down := loss()
			p.Val.W[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.Grad.W[i]) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, p.Grad.W[i], num)
			}
		}
	}
}

// Finite-difference gradient check for a two-step LSTM unroll, covering
// backpropagation through time including the cell path.
func TestLSTMGradCheck(t *testing.T) {
	rng := stats.NewRNG(2)
	init := func(p *Param) { p.InitXavier(rng) }
	l := NewLSTM(3, 4, init)
	x1 := []float64{0.5, -0.3, 0.2}
	x2 := []float64{-0.1, 0.7, 0.4}
	lossW := []float64{0.3, -0.8, 0.5, 1.1}

	forwardLoss := func() float64 {
		s1, _ := l.Forward(x1, l.ZeroState())
		s2, _ := l.Forward(x2, s1)
		var s float64
		for i := range s2.H {
			s += lossW[i] * s2.H[i]
		}
		return s
	}

	// Analytic gradients.
	s1, c1 := l.Forward(x1, l.ZeroState())
	_, c2 := l.Forward(x2, s1)
	dX2, dPrev := l.Backward(lossW, nil, c2)
	dX1, _ := l.Backward(dPrev.H, dPrev.C, c1)

	const eps, tol = 1e-6, 2e-5
	for _, p := range l.Params() {
		for i := 0; i < len(p.Val.W); i += 7 { // sample every 7th weight
			orig := p.Val.W[i]
			p.Val.W[i] = orig + eps
			up := forwardLoss()
			p.Val.W[i] = orig - eps
			down := forwardLoss()
			p.Val.W[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.Grad.W[i]) > tol {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, p.Grad.W[i], num)
			}
		}
	}

	// Input gradient check for x1 (flows through both steps).
	for i := range x1 {
		orig := x1[i]
		x1[i] = orig + eps
		up := forwardLoss()
		x1[i] = orig - eps
		down := forwardLoss()
		x1[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dX1[i]) > tol {
			t.Fatalf("dX1[%d]: analytic %g vs numeric %g", i, dX1[i], num)
		}
	}
	_ = dX2
}

// LogPGrad must equal softmax - onehot.
func TestLogPGrad(t *testing.T) {
	logits := []float64{0.5, -1, 2}
	g := LogPGrad(logits, 2)
	p := Softmax(logits)
	if math.Abs(g[2]-(p[2]-1)) > 1e-12 || math.Abs(g[0]-p[0]) > 1e-12 {
		t.Errorf("LogPGrad = %v, softmax = %v", g, p)
	}
	var sum float64
	for _, v := range g {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("LogPGrad should sum to 0, got %g", sum)
	}
}

// A tiny REINFORCE sanity loop: a single linear policy over 3 arms with
// deterministic rewards must concentrate on the best arm.
func TestPolicyGradientLearnsBandit(t *testing.T) {
	rng := stats.NewRNG(4)
	init := func(p *Param) { p.InitXavier(rng) }
	lin := NewLinear("policy", 1, 3, init)
	opt := NewRMSProp()
	opt.LR = 0.05
	opt.LRDecaySteps = 0
	rewards := []float64{0.2, 1.0, 0.5}
	baseline := stats.NewEMA(0.2)
	x := []float64{1}

	for ep := 0; ep < 400; ep++ {
		logits := lin.Forward(x)
		p := Softmax(logits)
		a := rng.Categorical(p)
		r := rewards[a]
		adv := r - baseline.Value()
		baseline.Update(r)
		g := LogPGrad(logits, a)
		lin.Backward(ScaleVec(g, adv), x)
		opt.Step(lin.Params())
		for _, pp := range lin.Params() {
			pp.ZeroGrad()
		}
	}
	final := Softmax(lin.Forward(x))
	if final[1] < 0.8 {
		t.Errorf("policy failed to concentrate on best arm: %v", final)
	}
}

func TestRMSPropLRSchedule(t *testing.T) {
	o := NewRMSProp()
	if o.LR != 0.99 {
		t.Errorf("initial LR = %f, want 0.99 (paper §V-A)", o.LR)
	}
	p := NewParam("p", 1, 1)
	p.Grad.W[0] = 1
	for i := 0; i < 50; i++ {
		o.Step([]*Param{p})
	}
	if math.Abs(o.LR-0.495) > 1e-12 {
		t.Errorf("LR after 50 steps = %f, want 0.495", o.LR)
	}
}

func TestGradientClipping(t *testing.T) {
	o := NewRMSProp()
	o.ClipNorm = 1.0
	p := NewParam("p", 1, 2)
	p.Grad.W[0] = 30
	p.Grad.W[1] = 40 // norm 50 → scaled by 1/50
	before := append([]float64(nil), p.Val.W...)
	o.Step([]*Param{p})
	// With RMSProp normalization both updates have magnitude ≈ LR/sqrt(decayed g²)...
	// just check finiteness and that an update happened.
	if p.Val.W[0] == before[0] || math.IsNaN(p.Val.W[0]) {
		t.Error("clipped update should still move parameters finitely")
	}
	CheckFinite([]*Param{p})
}

func TestCheckFinitePanics(t *testing.T) {
	p := NewParam("bad", 1, 1)
	p.Val.W[0] = math.NaN()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NaN parameter")
		}
	}()
	CheckFinite([]*Param{p})
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if s := AddVec(a, b); s[0] != 4 || s[1] != 6 {
		t.Error("AddVec wrong")
	}
	AccumVec(a, b)
	if a[0] != 4 || a[1] != 6 {
		t.Error("AccumVec wrong")
	}
	if s := ScaleVec(b, 2); s[0] != 6 || s[1] != 8 {
		t.Error("ScaleVec wrong")
	}
}
