package nn

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz targets for the nn.Mat kernels. The invariants under fuzz are the
// bit-identity contracts the batched controller path is built on:
//
//   - MulMatInto / MulTMatInto agree bit-for-bit with MulVec / MulTVec on
//     every column, whatever the shapes and values;
//   - Transpose is a bit-exact involution, and MulTVec equals
//     Transpose().MulVec for finite inputs.
//
// CI runs each target briefly (see the fuzz smoke step); the f.Add seed
// corpus doubles as a regression table under plain `go test`.

// fuzzFloats decodes the fuzz byte string into n finite float64s, cycling
// and clamping so every input produces a usable matrix.
func fuzzFloats(data []byte, n int) []float64 {
	out := make([]float64, n)
	if len(data) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		off := (i * 8) % len(data)
		var buf [8]byte
		for j := 0; j < 8; j++ {
			buf[j] = data[(off+j)%len(data)]
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(i%7) - 3
		}
		// Clamp magnitudes so products stay finite (overflow to +Inf would
		// make the comparisons vacuous, not wrong).
		if v > 1e150 || v < -1e150 {
			v = math.Mod(v, 1e6)
		}
		out[i] = v
	}
	return out
}

func fuzzDims(r, c, b uint8) (int, int, int) {
	return int(r%24) + 1, int(c%24) + 1, int(b%17) + 1
}

func FuzzMulMatColumnsMatchMulVec(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(16), uint8(16), uint8(8), []byte{0xff, 0x00, 0x80, 0x7f, 0x3f})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0})
	f.Fuzz(func(t *testing.T, rr, cc, bb uint8, data []byte) {
		r, c, b := fuzzDims(rr, cc, bb)
		vals := fuzzFloats(data, r*c+c*b+r*b)
		m := &Mat{R: r, C: c, W: vals[:r*c]}
		x := &Mat{R: c, C: b, W: vals[r*c : r*c+c*b]}
		y := &Mat{R: r, C: b, W: vals[r*c+c*b:]} // dirty destination: must be fully overwritten
		m.MulMatInto(y, x)
		for e := 0; e < b; e++ {
			want := m.MulVec(x.Col(e))
			got := y.Col(e)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("MulMat col %d row %d: %x vs MulVec %x (shapes %dx%d·%dx%d)",
						e, i, math.Float64bits(got[i]), math.Float64bits(want[i]), r, c, c, b)
				}
			}
		}
	})
}

func FuzzMulTMatColumnsMatchMulTVec(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(5), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint8(12), uint8(7), uint8(3), []byte{0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, rr, cc, bb uint8, data []byte) {
		r, c, b := fuzzDims(rr, cc, bb)
		vals := fuzzFloats(data, r*c+r*b+c*b)
		m := &Mat{R: r, C: c, W: vals[:r*c]}
		y := &Mat{R: r, C: b, W: vals[r*c : r*c+r*b]}
		// Zero out a stride of y to exercise the skip path.
		for i := 0; i < len(y.W); i += 4 {
			y.W[i] = 0
		}
		x := &Mat{R: c, C: b, W: vals[r*c+r*b:]} // dirty destination
		m.MulTMatInto(x, y)
		for e := 0; e < b; e++ {
			want := m.MulTVec(y.Col(e))
			got := x.Col(e)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("MulTMat col %d elem %d: %x vs MulTVec %x (shapes %dx%dᵀ·%dx%d)",
						e, j, math.Float64bits(got[j]), math.Float64bits(want[j]), r, c, r, b)
				}
			}
		}
	})
}

func FuzzTransposeRoundTripAndMulTVec(f *testing.F) {
	f.Add(uint8(4), uint8(6), []byte{1, 2, 3})
	f.Add(uint8(1), uint8(9), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, rr, cc uint8, data []byte) {
		r, c, _ := fuzzDims(rr, cc, 1)
		vals := fuzzFloats(data, r*c+r)
		m := &Mat{R: r, C: c, W: vals[:r*c]}
		back := m.Transpose().Transpose()
		for i := range m.W {
			if math.Float64bits(back.W[i]) != math.Float64bits(m.W[i]) {
				t.Fatalf("transpose round trip changed element %d: %x vs %x",
					i, math.Float64bits(back.W[i]), math.Float64bits(m.W[i]))
			}
		}
		// Mᵀ·y via MulTVec must match Transpose().MulVec(y): same i-ascending
		// accumulation order. Compared with ==, not bit patterns: MulTVec
		// skips zero y rows, so the two can legitimately disagree on the
		// sign of a zero result.
		y := vals[r*c:]
		a := m.MulTVec(y)
		b := m.Transpose().MulVec(y)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("MulTVec[%d] %.17g vs transpose MulVec %.17g", j, a[j], b[j])
			}
		}
	})
}
