package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nasaic/internal/faultfs"
)

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func raw(s string) json.RawMessage { return json.RawMessage(s) }

// lifecycle returns a deterministic little workload: two jobs, one run to
// completion, one cancelled mid-run.
func lifecycle() []Record {
	recs := []Record{
		{Type: TypeSubmitted, Job: "job-1", Time: t0, Spec: raw(`{"workload":"W3","episodes":4}`)},
		{Type: TypeRunning, Job: "job-1", Time: t0.Add(time.Second)},
	}
	for i := 0; i < 4; i++ {
		recs = append(recs, Record{Type: TypeEvent, Job: "job-1", Seq: i,
			Event: raw(fmt.Sprintf(`{"episode":%d,"reward":%d.5}`, i, i))})
	}
	recs = append(recs,
		Record{Type: TypeFinished, Job: "job-1", Time: t0.Add(time.Minute), Status: "succeeded",
			Result: raw(`{"workload":"W3","episodes":4}`)},
		Record{Type: TypeSubmitted, Job: "job-2", Time: t0.Add(2 * time.Minute), Spec: raw(`{"workload":"W1"}`)},
		Record{Type: TypeRunning, Job: "job-2", Time: t0.Add(3 * time.Minute)},
		Record{Type: TypeEvent, Job: "job-2", Seq: 0, Event: raw(`{"episode":0}`)},
		Record{Type: TypeCancel, Job: "job-2"},
	)
	return recs
}

func statesJSON(t *testing.T, j *Journal) string {
	t.Helper()
	b, err := json.Marshal(j.States())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestEmptyDirOpens(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(j.States()); n != 0 {
		t.Fatalf("empty journal recovered %d states", n)
	}
	if err := j.Append(lifecycle()[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeRunning, Job: "job-1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range lifecycle() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	want := statesJSON(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := statesJSON(t, j2); got != want {
		t.Fatalf("replayed states diverge:\n got %s\nwant %s", got, want)
	}
	states := j2.States()
	if len(states) != 2 {
		t.Fatalf("recovered %d states, want 2", len(states))
	}
	s1 := states[0]
	if s1.ID != "job-1" || s1.Status != "succeeded" || !s1.Terminal() {
		t.Fatalf("job-1 state: %+v", s1)
	}
	if len(s1.Events) != 4 || s1.FirstSeq != 0 {
		t.Fatalf("job-1 events: first=%d n=%d", s1.FirstSeq, len(s1.Events))
	}
	s2 := states[1]
	if s2.ID != "job-2" || s2.Terminal() || !s2.CancelRequested {
		t.Fatalf("job-2 state: %+v (want non-terminal with a pending cancel)", s2)
	}
}

// corruptTail opens the single segment file and mangles its tail with mutate.
func corruptTail(t *testing.T, fs *faultfs.Mem, dir string, mutate func([]byte) []byte) string {
	t.Helper()
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasSuffix(n, ".wal") {
			segs = append(segs, n)
		}
	}
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, found %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = mutate(append([]byte(nil), data...))
	if err := fs.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	return path
}

func writeWorkload(t *testing.T, fs *faultfs.Mem, dir string, recs []Record) (perAppend []string) {
	t.Helper()
	j, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		perAppend = append(perAppend, statesJSON(t, j))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return perAppend
}

func TestTruncatedFinalRecordRecovers(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	per := writeWorkload(t, fs, "dj", lifecycle())

	// Cut into the final record: recovery must land exactly one append back.
	corruptTail(t, fs, "dj", func(b []byte) []byte { return b[:len(b)-5] })
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if got, want := statesJSON(t, j), per[len(per)-2]; got != want {
		t.Fatalf("states after torn tail:\n got %s\nwant %s", got, want)
	}
	if rec := j.Recovery(); rec.TruncatedBytes == 0 {
		t.Fatalf("recovery reported no truncation: %+v", rec)
	}
	// The log must keep appending cleanly after the repair.
	if err := j.Append(Record{Type: TypeFinished, Job: "job-2", Status: "cancelled"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	states := j2.States()
	if states[1].Status != "cancelled" {
		t.Fatalf("post-repair append lost: %+v", states[1])
	}
	if rec := j2.Recovery(); rec.TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", rec)
	}
}

func TestBitFlippedCRCRecovers(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	per := writeWorkload(t, fs, "dj", lifecycle())

	// Flip one bit inside the last record's payload.
	corruptTail(t, fs, "dj", func(b []byte) []byte {
		b[len(b)-10] ^= 0x40
		return b
	})
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatalf("open over flipped bit: %v", err)
	}
	defer j.Close()
	if got, want := statesJSON(t, j), per[len(per)-2]; got != want {
		t.Fatalf("states after bit flip:\n got %s\nwant %s", got, want)
	}
}

func TestAlienVersionSegmentResets(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	writeWorkload(t, fs, "dj", lifecycle())
	// Rewrite the version field: the whole segment becomes unreadable and
	// the journal must start over rather than refuse.
	corruptTail(t, fs, "dj", func(b []byte) []byte {
		b[len(segMagic)+3] = 99
		return b
	})
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatalf("open over alien version: %v", err)
	}
	defer j.Close()
	if n := len(j.States()); n != 0 {
		t.Fatalf("alien segment yielded %d states", n)
	}
	if err := j.Append(lifecycle()[0]); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
}

func TestDuplicateReplayIdempotent(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recs := lifecycle()[:6] // submit, running, 4 events
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want := statesJSON(t, j)
	// A recovered deterministic run re-journals the same transitions and
	// events with the same sequence numbers; the reduction must not change.
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := statesJSON(t, j); got != want {
		t.Fatalf("duplicate replay changed the reduction:\n got %s\nwant %s", got, want)
	}
	st := j.States()[0]
	if len(st.Events) != 4 {
		t.Fatalf("%d events after duplicate replay, want 4", len(st.Events))
	}
	j.Close()
}

func TestEventRingCapAndForget(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", Options{FS: fs, EventCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_ = j.Append(Record{Type: TypeSubmitted, Job: "job-1", Spec: raw(`{}`)})
	for i := 0; i < 10; i++ {
		_ = j.Append(Record{Type: TypeEvent, Job: "job-1", Seq: i, Event: raw(fmt.Sprintf(`{"episode":%d}`, i))})
	}
	st := j.States()[0]
	if st.FirstSeq != 7 || len(st.Events) != 3 {
		t.Fatalf("ring: first=%d n=%d, want 7/3", st.FirstSeq, len(st.Events))
	}
	_ = j.Append(Record{Type: TypeForget, Job: "job-1"})
	if n := len(j.States()); n != 0 {
		t.Fatalf("forgotten job still reduces (%d states)", n)
	}
}

func TestRotationAndCompactionBoundSegments(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", Options{FS: fs, SegmentBytes: 512, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Append a long history of terminal jobs; rotation + compaction must keep
	// the directory bounded while preserving the reduction.
	for i := 1; i <= 40; i++ {
		id := fmt.Sprintf("job-%d", i)
		_ = j.Append(Record{Type: TypeSubmitted, Job: id, Time: t0, Spec: raw(`{"workload":"W3"}`)})
		_ = j.Append(Record{Type: TypeRunning, Job: id, Time: t0})
		_ = j.Append(Record{Type: TypeEvent, Job: id, Seq: 0, Event: raw(`{"episode":0}`)})
		_ = j.Append(Record{Type: TypeFinished, Job: id, Time: t0, Status: "succeeded", Result: raw(`{"episodes":1}`)})
	}
	want := statesJSON(t, j)
	if n := j.SegmentCount(); n > 4 {
		t.Fatalf("compaction let %d segments accumulate", n)
	}
	names, _ := fs.ReadDir("dj")
	if len(names) > 4 {
		t.Fatalf("directory holds %d files: %v", len(names), names)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open("dj", Options{FS: fs, SegmentBytes: 512, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := statesJSON(t, j2); got != want {
		t.Fatalf("states after compaction + reopen diverge:\n got %s\nwant %s", got, want)
	}
	if len(j2.States()) != 40 {
		t.Fatalf("recovered %d jobs, want 40", len(j2.States()))
	}
}

func TestFailedWriteKeepsLogAppendable(t *testing.T) {
	for name, faults := range map[string]faultfs.Faults{
		"fail":  {FailWriteAt: 3}, // header is write #1
		"short": {ShortWriteAt: 3},
	} {
		t.Run(name, func(t *testing.T) {
			fs := faultfs.NewMem(faults)
			j, err := Open("dj", Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			recs := lifecycle()
			if err := j.Append(recs[0]); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			if err := j.Append(recs[1]); err == nil {
				t.Fatal("injected write fault not surfaced")
			}
			// The reduction must not have advanced past the failed record,
			// and the log keeps accepting appends.
			if err := j.Append(recs[1]); err != nil {
				t.Fatalf("append after injected fault: %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, err := Open("dj", Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			st := j2.States()
			if len(st) != 1 || st[0].Status != "running" {
				t.Fatalf("recovered states: %+v", st)
			}
			if rec := j2.Recovery(); rec.TruncatedBytes != 0 {
				t.Fatalf("failed write left a torn tail: %+v", rec)
			}
		})
	}
}

func TestFsyncErrorSurfacesAndRecovers(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{FailSyncAt: 1})
	j, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(lifecycle()[0]); !errors.Is(err, faultfs.ErrInjectedSync) {
		t.Fatalf("append over failed fsync: err = %v, want ErrInjectedSync", err)
	}
	// The next batch syncs cleanly (and makes the earlier bytes durable too).
	if err := j.Append(lifecycle()[1]); err != nil {
		t.Fatalf("append after fsync recovery: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open("dj", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.States(); len(st) != 1 || st[0].Status != "running" {
		t.Fatalf("recovered states: %+v", st)
	}
}

// TestCrashPointMatrix is the acceptance matrix: simulate a kill -9 at every
// single write the journal issues while running the lifecycle workload —
// with the in-flight write fully lost, torn after 1 byte, and torn after 7
// bytes — and require recovery to open cleanly with a state equal to the
// reduction of some prefix of the acknowledged appends.
func TestCrashPointMatrix(t *testing.T) {
	recs := lifecycle()

	// Reference run: per-append reductions + total write count.
	cleanFS := faultfs.NewMem(faultfs.Faults{})
	perAppend := writeWorkload(t, cleanFS, "dj", recs)
	valid := map[string]bool{"[]": true}
	for _, s := range perAppend {
		valid[s] = true
	}
	writes := cleanFS.WriteOps()
	if writes < len(recs) {
		t.Fatalf("reference run issued %d writes for %d records", writes, len(recs))
	}

	for _, keep := range []int{0, 1, 7} {
		for k := 1; k <= writes; k++ {
			fs := faultfs.NewMem(faultfs.Faults{CrashAtWrite: k, CrashKeepBytes: keep})
			j, err := Open("dj", Options{FS: fs})
			if err != nil {
				// The crash can hit the very first header write, before Open
				// returns; that run's recovery is exercised below.
				if !fs.Crashed() {
					t.Fatalf("crash@%d keep=%d: open failed without a crash: %v", k, keep, err)
				}
			} else {
				acked := 0
				for _, rec := range recs {
					if err := j.Append(rec); err != nil {
						break
					}
					acked++
				}
				_ = j.Close()
				if !fs.Crashed() {
					t.Fatalf("crash@%d keep=%d: workload finished without crashing (%d writes)", k, keep, acked)
				}
			}

			fs.Reboot()
			fs.SetFaults(faultfs.Faults{})
			j2, err := Open("dj", Options{FS: fs})
			if err != nil {
				t.Fatalf("crash@%d keep=%d: recovery refused to start: %v\n%s", k, keep, err, fs.Dump())
			}
			got := statesJSON(t, j2)
			if !valid[got] {
				t.Fatalf("crash@%d keep=%d: recovered state is not a prefix reduction:\n%s", k, keep, got)
			}
			// The recovered log must accept appends at the journaled sequence.
			if err := j2.Append(Record{Type: TypeSubmitted, Job: "job-9", Spec: raw(`{}`)}); err != nil {
				t.Fatalf("crash@%d keep=%d: post-recovery append: %v", k, keep, err)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("crash@%d keep=%d: close: %v", k, keep, err)
			}
		}
	}
}

// TestCrashPointMatrixWithRotation sweeps crash points across a workload that
// rotates and compacts, where the interesting failure points are the segment
// header writes, the snapshot segment write and the post-compaction removes.
func TestCrashPointMatrixWithRotation(t *testing.T) {
	opts := func(fs *faultfs.Mem) Options {
		return Options{FS: fs, SegmentBytes: 384, CompactSegments: 3}
	}
	var recs []Record
	for i := 1; i <= 12; i++ {
		id := fmt.Sprintf("job-%d", i)
		recs = append(recs,
			Record{Type: TypeSubmitted, Job: id, Spec: raw(`{"workload":"W3"}`)},
			Record{Type: TypeEvent, Job: id, Seq: 0, Event: raw(`{"episode":0}`)},
			Record{Type: TypeFinished, Job: id, Status: "succeeded"},
		)
	}

	cleanFS := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", opts(cleanFS))
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"[]": true}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		valid[statesJSON(t, j)] = true
	}
	_ = j.Close()
	writes := cleanFS.WriteOps()

	for k := 1; k <= writes; k++ {
		fs := faultfs.NewMem(faultfs.Faults{CrashAtWrite: k, CrashKeepBytes: 3})
		if j, err := Open("dj", opts(fs)); err == nil {
			for _, rec := range recs {
				if err := j.Append(rec); err != nil {
					break
				}
			}
			_ = j.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crash@%d never fired", k)
		}
		fs.Reboot()
		fs.SetFaults(faultfs.Faults{})
		j2, err := Open("dj", opts(fs))
		if err != nil {
			t.Fatalf("crash@%d: recovery refused to start: %v\n%s", k, err, fs.Dump())
		}
		if got := statesJSON(t, j2); !valid[got] {
			t.Fatalf("crash@%d: recovered state is not a prefix reduction:\n%s", k, got)
		}
		_ = j2.Close()
	}
}

// TestConcurrentAppendersGroupCommit exercises the fsync batching path under
// the race detector: many goroutines append at once; afterwards every
// acknowledged record must be recoverable.
func TestConcurrentAppendersGroupCommit(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("dj", Options{FS: fs, SegmentBytes: 2048, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%d", w+1)
			if err := j.Append(Record{Type: TypeSubmitted, Job: id, Spec: raw(`{}`)}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := j.Append(Record{Type: TypeEvent, Job: id, Seq: i,
					Event: raw(fmt.Sprintf(`{"episode":%d}`, i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open("dj", Options{FS: fs, SegmentBytes: 2048, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	states := j2.States()
	if len(states) != workers {
		t.Fatalf("recovered %d jobs, want %d", len(states), workers)
	}
	for _, st := range states {
		if len(st.Events) != per || st.FirstSeq != 0 {
			t.Fatalf("job %s recovered %d events (first %d), want %d", st.ID, len(st.Events), st.FirstSeq, per)
		}
	}
}
