// Package journal is nasaicd's write-ahead log: an append-only, segmented
// record of every job lifecycle transition (submitted spec, running,
// per-episode events, terminal result, cancellation), durable enough that a
// kill -9 loses at most the record being written when the power went out.
//
// Layout. The journal is a directory of numbered segment files
// (seg-00000001.wal, …). Each segment starts with a 12-byte header (magic +
// format version) followed by records framed with internal/cachefile's
// shared CRC64 framing (length + JSON payload + checksum). Appends go to the
// highest-numbered segment; once it exceeds Options.SegmentBytes the segment
// is sealed and a new one opened, and once enough sealed segments pile up
// the whole history is compacted into a single snapshot segment holding one
// snapshot record per live job (terminal jobs collapse from
// submitted+running+N events+finished down to one record).
//
// Durability. Append returns only after the record is fsynced. Concurrent
// appenders share fsyncs through a group commit: a background syncer flushes
// the active segment once per batch and wakes every appender the flush
// covered, so the fsync cost amortizes across however many records landed in
// the window.
//
// Recovery. Open replays every segment in order, reducing records into
// per-job states (Reduce semantics are idempotent, so a deterministic re-run
// appending duplicate event records converges to the same state). A torn
// tail, a bit-flipped record, a short write or an alien format version
// degrades to truncate-at-last-valid-record — recovery never refuses to
// start, it just surfaces what it dropped in Recovery(). After a failed or
// short append the journal truncates the segment back to its last good
// offset before continuing, so a transient write error cannot poison the
// records appended after it.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nasaic/internal/cachefile"
	"nasaic/internal/faultfs"
)

// Version is the segment format generation; alien versions are skipped (or
// truncated away, for the active segment) at recovery.
const Version = 1

var segMagic = [8]byte{'N', 'S', 'A', 'I', 'C', 'W', 'A', 'L'}

const headerSize = len(segMagic) + 4

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Type discriminates journal records.
type Type string

const (
	// TypeSubmitted records a job's spec entering the system.
	TypeSubmitted Type = "submitted"
	// TypeRunning records the transition onto a concurrency slot.
	TypeRunning Type = "running"
	// TypeEvent records one per-episode event (Seq is its ring sequence).
	TypeEvent Type = "event"
	// TypeCancel records a cancellation request (the terminal record may
	// never arrive if the process dies first; recovery then settles the job
	// as cancelled instead of re-executing it).
	TypeCancel Type = "cancel"
	// TypeAssigned records a job→worker binding: in cluster mode the
	// coordinator journals which worker replica runs the job (and under which
	// remote job ID) before it starts proxying events, so a restarted
	// coordinator re-attaches to the in-flight remote run instead of
	// re-dispatching it. An empty Worker clears the binding (the worker died
	// and the job is about to be re-dispatched).
	TypeAssigned Type = "assigned"
	// TypeFinished records the terminal status, error and result.
	TypeFinished Type = "finished"
	// TypeForget drops a job from the journal's state (history eviction).
	TypeForget Type = "forget"
	// TypeSnapshot replaces a job's entire state (compaction output).
	TypeSnapshot Type = "snapshot"
)

// Record is one journal entry. Only the fields meaningful for its Type are
// set; payloads (spec, event, result) are opaque JSON owned by the caller.
type Record struct {
	Type Type   `json:"t"`
	Job  string `json:"job,omitempty"`
	// Tenant names the submitting tenant (TypeSubmitted only); recovery
	// re-attaches the job to it for quota accounting and API scoping.
	Tenant string `json:"tenant,omitempty"`
	// Worker and Remote record a job→worker binding (TypeAssigned only): the
	// worker replica's base URL and the job ID that replica assigned.
	Worker string          `json:"worker,omitempty"`
	Remote string          `json:"remote,omitempty"`
	Time   time.Time       `json:"time,omitzero"`
	Seq    int             `json:"seq,omitempty"`
	Status string          `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Event  json.RawMessage `json:"event,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Snap   *JobState       `json:"snap,omitempty"`
}

// JobState is the reduction of one job's records: everything recovery needs
// to restore a terminal job (full event ring included) or re-execute an
// interrupted one from its spec.
type JobState struct {
	ID string `json:"id"`
	// Tenant is the owning tenant's name; empty on records journaled before
	// tenancy existed (recovery maps those to the anonymous tenant).
	Tenant          string          `json:"tenant,omitempty"`
	Spec            json.RawMessage `json:"spec"`
	Status          string          `json:"status"`
	Error           string          `json:"error,omitempty"`
	Created         time.Time       `json:"created,omitzero"`
	Started         time.Time       `json:"started,omitzero"`
	Finished        time.Time       `json:"finished,omitzero"`
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	// Worker/RemoteID are the job's cluster binding: the worker replica the
	// coordinator dispatched it to and the job ID that replica assigned.
	// Empty for locally-executed jobs (standalone and worker mode).
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote,omitempty"`
	// FirstSeq is the sequence number of Events[0]; events below it were
	// evicted from the bounded ring.
	FirstSeq int               `json:"first_seq,omitempty"`
	Events   []json.RawMessage `json:"events,omitempty"`
	Result   json.RawMessage   `json:"result,omitempty"`
}

// Terminal reports whether the state's status is final.
func (s *JobState) Terminal() bool {
	switch s.Status {
	case "succeeded", "failed", "cancelled":
		return true
	}
	return false
}

// clone deep-copies the state (payload slices are shared; they are never
// mutated in place).
func (s *JobState) clone() *JobState {
	c := *s
	c.Events = append([]json.RawMessage(nil), s.Events...)
	return &c
}

// Options configures a journal.
type Options struct {
	// FS is the filesystem the journal writes through; nil selects the real
	// one (tests inject faultfs.Mem).
	FS faultfs.FS
	// SegmentBytes is the rotation threshold for the active segment. <=0
	// selects 1 MiB.
	SegmentBytes int64
	// CompactSegments is how many segments may exist before the journal
	// compacts them into one snapshot segment. <=0 selects 4.
	CompactSegments int
	// EventCap bounds the per-job event ring the journal reduces into (the
	// on-disk records are unbounded until compaction; the cap matches the
	// job manager's replay ring so recovery restores exactly what a live
	// subscriber could have seen). <=0 selects 4096.
	EventCap int
}

func (o Options) fs() faultfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return faultfs.OS
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 1 << 20
}

func (o Options) compactSegments() int {
	if o.CompactSegments > 0 {
		return o.CompactSegments
	}
	return 4
}

func (o Options) eventCap() int {
	if o.EventCap > 0 {
		return o.EventCap
	}
	return 4096
}

// Recovery summarizes what Open found and repaired.
type Recovery struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes counts bytes dropped from segment tails (torn writes,
	// bit flips, short writes).
	TruncatedBytes int64
	// SkippedSegments counts sealed segments that were unreadable as a whole
	// (bad header or alien version) and contributed no records.
	SkippedSegments int
}

// Journal is an open log. All methods are safe for concurrent use.
type Journal struct {
	opts Options
	fs   faultfs.FS
	dir  string

	mu          sync.Mutex
	dirty       *sync.Cond // wakes the syncer: unsynced records exist
	synced      *sync.Cond // wakes appenders: syncedEpoch advanced
	active      faultfs.File
	activeIdx   int
	activePath  string
	activeSize  int64
	sealed      []int // sealed segment indexes, ascending
	writeEpoch  int64
	syncedEpoch int64
	syncErr     error
	syncErrUpTo int64 // epochs <= this that observed syncErr
	closed      bool
	broken      error // set when the log can no longer accept appends
	syncerDone  chan struct{}

	states   map[string]*JobState
	order    []string
	recovery Recovery
}

// Open replays the journal under dir (created on demand) and readies it for
// appends. Corruption degrades to truncation; only real I/O failures (an
// unwritable directory) return an error.
func Open(dir string, opts Options) (*Journal, error) {
	j := &Journal{
		opts:   opts,
		fs:     opts.fs(),
		dir:    dir,
		states: make(map[string]*JobState),
	}
	j.dirty = sync.NewCond(&j.mu)
	j.synced = sync.NewCond(&j.mu)
	if err := j.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	if err := j.recover(); err != nil {
		return nil, err
	}
	// Compact an accumulated history right away so startup cost does not
	// grow with the lifetime of the directory.
	j.mu.Lock()
	if len(j.sealed)+1 > j.opts.compactSegments() {
		j.compactLocked()
	}
	j.mu.Unlock()
	j.syncerDone = make(chan struct{})
	go j.syncLoop()
	return j, nil
}

// segName renders a segment file name; parseSeg inverts it.
func segName(idx int) string { return fmt.Sprintf("seg-%08d.wal", idx) }

func parseSeg(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "seg-%d.wal", &idx); err != nil || idx <= 0 {
		return 0, false
	}
	return idx, true
}

// header renders a segment header.
func header() []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, segMagic[:]...)
	return binary.BigEndian.AppendUint32(h, Version)
}

// checkHeader validates a segment prefix.
func checkHeader(data []byte) error {
	if len(data) < headerSize {
		return io.ErrUnexpectedEOF
	}
	if [8]byte(data[:8]) != segMagic {
		return fmt.Errorf("bad segment magic")
	}
	if v := binary.BigEndian.Uint32(data[8:headerSize]); v != Version {
		return fmt.Errorf("segment version %d, supported %d", v, Version)
	}
	return nil
}

// scanSegment walks one segment body (header already stripped), returning
// the decoded records and the byte length of the valid prefix. It never
// panics on arbitrary input (fuzzed).
func scanSegment(body []byte) (recs []Record, valid int64) {
	for len(body) > 0 {
		payload, rest, err := cachefile.SplitFrame(body)
		if err != nil {
			return recs, valid
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A frame that checksums but does not parse is a record from an
			// incompatible generation; stop here like any other corruption.
			return recs, valid
		}
		recs = append(recs, rec)
		valid += int64(cachefile.FrameOverhead + len(payload))
		body = rest
	}
	return recs, valid
}

// recover replays the directory into j.states and opens the active segment.
func (j *Journal) recover() error {
	names, err := j.fs.ReadDir(j.dir)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: list %s: %w", j.dir, err)
	}
	var idxs []int
	for _, n := range names {
		if idx, ok := parseSeg(n); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)

	last := 0
	for i, idx := range idxs {
		isLast := i == len(idxs)-1
		path := filepath.Join(j.dir, segName(idx))
		data, err := j.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: read %s: %w", path, err)
		}
		j.recovery.Segments++
		if err := checkHeader(data); err != nil {
			// Unreadable as a whole. A sealed segment is skipped; the active
			// one is reset so appends land in a well-formed file.
			if isLast {
				j.recovery.TruncatedBytes += int64(len(data))
				if err := j.fs.Truncate(path, 0); err != nil {
					return fmt.Errorf("journal: reset %s: %w", path, err)
				}
			} else {
				j.recovery.SkippedSegments++
			}
			last = idx
			continue
		}
		recs, valid := scanSegment(data[headerSize:])
		if torn := int64(len(data)) - int64(headerSize) - valid; torn > 0 {
			j.recovery.TruncatedBytes += torn
			// Physically truncate only the segment that will take appends;
			// sealed segments just stop contributing records at the damage.
			if isLast {
				if err := j.fs.Truncate(path, int64(headerSize)+valid); err != nil {
					return fmt.Errorf("journal: truncate %s: %w", path, err)
				}
			}
		}
		for _, rec := range recs {
			j.applyLocked(rec)
		}
		j.recovery.Records += len(recs)
		last = idx
	}

	if last == 0 {
		last = 1
	}
	for _, idx := range idxs {
		if idx != last {
			j.sealed = append(j.sealed, idx)
		}
	}
	return j.openActive(last)
}

// openActive opens segment idx for appending, writing a header when the
// file is empty/new.
func (j *Journal) openActive(idx int) error {
	path := filepath.Join(j.dir, segName(idx))
	size := int64(0)
	if data, err := j.fs.ReadFile(path); err == nil {
		size = int64(len(data))
	}
	f, err := j.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("journal: open %s: %w", path, err)
	}
	if size == 0 {
		if _, err := f.Write(header()); err != nil {
			f.Close()
			return fmt.Errorf("journal: write header %s: %w", path, err)
		}
		size = int64(headerSize)
	}
	j.active, j.activeIdx, j.activePath, j.activeSize = f, idx, path, size
	return nil
}

// States returns the recovered (and since appended) job states in
// submission order; the slices are deep copies the caller may keep.
func (j *Journal) States() []*JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*JobState, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.states[id].clone())
	}
	return out
}

// Recovery reports what Open scanned and repaired.
func (j *Journal) Recovery() Recovery {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovery
}

// SegmentCount reports the live segment files (sealed + active).
func (j *Journal) SegmentCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sealed) + 1
}

// Append journals one record. It returns after the record is written and
// fsynced (batched with concurrent appenders), or with the write/sync error
// if durability could not be established — the in-memory reduction is only
// advanced for records that were written.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	frame := cachefile.AppendFrame(nil, payload)

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.broken != nil {
		err := j.broken
		j.mu.Unlock()
		return err
	}
	j.maybeRotateLocked()
	n, werr := j.active.Write(frame)
	if werr != nil || n < len(frame) {
		// The tail may now hold a torn frame; cut back to the last good
		// offset so the next append stays recoverable. If even that fails
		// the log is broken and says so on every subsequent append.
		if terr := j.fs.Truncate(j.activePath, j.activeSize); terr != nil {
			j.broken = fmt.Errorf("journal: unrecoverable tail after failed write (%v; truncate: %w)", werr, terr)
		}
		if werr == nil {
			werr = io.ErrShortWrite
		}
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", werr)
	}
	j.activeSize += int64(len(frame))
	j.applyLocked(rec)
	j.writeEpoch++
	epoch := j.writeEpoch
	j.dirty.Signal()
	for j.syncedEpoch < epoch {
		j.synced.Wait()
	}
	if epoch <= j.syncErrUpTo {
		err := j.syncErr
		j.mu.Unlock()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.mu.Unlock()
	return nil
}

// syncLoop is the group-commit fsyncer: it flushes the active segment once
// per batch of appended records and wakes every appender the flush covered.
func (j *Journal) syncLoop() {
	defer close(j.syncerDone)
	j.mu.Lock()
	for {
		for !j.closed && j.writeEpoch == j.syncedEpoch {
			j.dirty.Wait()
		}
		if j.closed {
			j.mu.Unlock()
			return
		}
		f, target := j.active, j.writeEpoch
		j.mu.Unlock()
		err := f.Sync()
		j.mu.Lock()
		if target > j.syncedEpoch {
			j.syncedEpoch = target
			if err != nil {
				j.syncErr = err
				j.syncErrUpTo = target
			}
		}
		j.synced.Broadcast()
	}
}

// maybeRotateLocked seals the active segment once it exceeds the rotation
// threshold and compacts once enough segments accumulate. Rotation failures
// leave the current segment in place (the log keeps appending to it).
func (j *Journal) maybeRotateLocked() {
	if j.activeSize < j.opts.segmentBytes() {
		return
	}
	// Seal: everything in the old segment becomes durable before it stops
	// being the sync target.
	if err := j.active.Sync(); err != nil {
		return
	}
	if j.writeEpoch > j.syncedEpoch {
		j.syncedEpoch = j.writeEpoch
		j.synced.Broadcast()
	}
	old, oldIdx := j.active, j.activeIdx
	if err := j.openActive(oldIdx + 1); err != nil {
		// Could not open a successor; keep appending to the old segment.
		j.active, j.activeIdx = old, oldIdx
		j.activePath = filepath.Join(j.dir, segName(oldIdx))
		return
	}
	old.Close()
	j.sealed = append(j.sealed, oldIdx)
	if len(j.sealed)+1 > j.opts.compactSegments() {
		j.compactLocked()
	}
}

// compactLocked rewrites the whole history as one snapshot segment: a
// snapshot record per live job, then deletes the superseded segments. A
// crash at any point is safe — the snapshot segment sorts after the old
// ones, and snapshot records replace state wholesale on replay, so a
// half-deleted history reduces to the same states.
func (j *Journal) compactLocked() {
	idx := j.activeIdx + 1
	path := filepath.Join(j.dir, segName(idx))
	buf := header()
	for _, id := range j.order {
		payload, err := json.Marshal(Record{Type: TypeSnapshot, Job: id, Snap: j.states[id]})
		if err != nil {
			return
		}
		buf = cachefile.AppendFrame(buf, payload)
	}
	f, err := j.fs.OpenAppend(path)
	if err != nil {
		return
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		// A torn snapshot segment truncates away on the next recovery, but
		// remove it now so it cannot shadow the intact history.
		_ = j.fs.Remove(path)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = j.fs.Remove(path)
		return
	}
	// The snapshot is durable; retire everything it supersedes.
	oldActive, oldIdx := j.active, j.activeIdx
	if j.writeEpoch > j.syncedEpoch {
		// Records in the old active segment are captured by the snapshot;
		// their appenders are satisfied by the snapshot's fsync.
		j.syncedEpoch = j.writeEpoch
		j.synced.Broadcast()
	}
	j.active, j.activeIdx, j.activePath, j.activeSize = f, idx, path, int64(len(buf))
	oldActive.Close()
	for _, s := range j.sealed {
		_ = j.fs.Remove(filepath.Join(j.dir, segName(s)))
	}
	_ = j.fs.Remove(filepath.Join(j.dir, segName(oldIdx)))
	j.sealed = nil
}

// Compact forces a compaction now (tests and operational tooling; the
// journal normally compacts itself on rotation).
func (j *Journal) Compact() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed && j.broken == nil {
		j.compactLocked()
	}
}

// Close flushes and closes the journal; further Appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	f, target := j.active, j.writeEpoch
	j.dirty.Broadcast()
	j.mu.Unlock()
	<-j.syncerDone

	err := f.Sync()
	j.mu.Lock()
	if target > j.syncedEpoch {
		j.syncedEpoch = target
		if err != nil {
			j.syncErr = err
			j.syncErrUpTo = target
		}
	}
	j.synced.Broadcast()
	j.mu.Unlock()
	cerr := f.Close()
	if err != nil {
		return err
	}
	return cerr
}

// applyLocked reduces one record into the state map. The reduction is
// idempotent: replaying a prefix twice (or re-journaling events a recovered
// deterministic run re-emits) converges to the same state.
func (j *Journal) applyLocked(rec Record) {
	st := j.states[rec.Job]
	switch rec.Type {
	case TypeSubmitted:
		if rec.Job == "" {
			return
		}
		if st == nil {
			st = &JobState{ID: rec.Job, Status: "pending"}
			j.states[rec.Job] = st
			j.order = append(j.order, rec.Job)
		}
		st.Spec = rec.Spec
		st.Created = rec.Time
		st.Tenant = rec.Tenant
	case TypeRunning:
		if st == nil {
			return
		}
		if !st.Terminal() {
			st.Status = "running"
		}
		st.Started = rec.Time
	case TypeEvent:
		if st == nil {
			return
		}
		switch {
		case rec.Seq < st.FirstSeq:
			// Below the ring: already evicted, drop.
		case rec.Seq < st.FirstSeq+len(st.Events):
			// Duplicate from a recovered re-run; deterministic re-execution
			// makes it byte-identical, but replace unconditionally so the
			// journal is a pure last-writer-wins reduction.
			st.Events[rec.Seq-st.FirstSeq] = rec.Event
		case rec.Seq == st.FirstSeq+len(st.Events):
			st.Events = append(st.Events, rec.Event)
			if cap := j.opts.eventCap(); len(st.Events) > cap {
				drop := len(st.Events) - cap
				st.Events = append(st.Events[:0:0], st.Events[drop:]...)
				st.FirstSeq += drop
			}
		default:
			// A gap can only follow lost records (mid-history corruption);
			// restart the ring at the new sequence so replay stays coherent.
			st.Events = []json.RawMessage{rec.Event}
			st.FirstSeq = rec.Seq
		}
	case TypeCancel:
		// A cancel landing after the terminal record is a no-op: the job is
		// already settled, and recovery must keep it terminal rather than
		// resurrect it as cancel-requested.
		if st == nil || st.Terminal() {
			return
		}
		st.CancelRequested = true
	case TypeAssigned:
		// Re-assignments overwrite (last writer wins: the newest binding is
		// the live one); a binding on a terminal job is meaningless and kept
		// out so recovery never tries to re-attach a settled job.
		if st == nil || st.Terminal() {
			return
		}
		st.Worker, st.RemoteID = rec.Worker, rec.Remote
	case TypeFinished:
		if st == nil {
			return
		}
		st.Status = rec.Status
		st.Error = rec.Error
		st.Result = rec.Result
		st.Finished = rec.Time
	case TypeForget:
		if st == nil {
			return
		}
		delete(j.states, rec.Job)
		for i, id := range j.order {
			if id == rec.Job {
				j.order = append(j.order[:i], j.order[i+1:]...)
				break
			}
		}
	case TypeSnapshot:
		if rec.Snap == nil || rec.Snap.ID == "" {
			return
		}
		if _, ok := j.states[rec.Snap.ID]; !ok {
			j.order = append(j.order, rec.Snap.ID)
		}
		j.states[rec.Snap.ID] = rec.Snap.clone()
	}
}
