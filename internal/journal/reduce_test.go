package journal

import (
	"testing"
	"time"

	"nasaic/internal/faultfs"
)

// TestReduceTerminalThenCancelStaysTerminal pins the cancel/finish race fix:
// a cancel record that lands after the terminal record (the job finished
// between the manager's done-check and the journal append, before that
// sequence was made atomic) must reduce to the terminal state — not flip the
// job to cancel-requested, which would make recovery settle a succeeded job
// as cancelled.
func TestReduceTerminalThenCancelStaysTerminal(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		{Type: TypeSubmitted, Job: "job-1", Time: t0, Spec: raw(`{"workload":"W3","episodes":2}`)},
		{Type: TypeRunning, Job: "job-1", Time: t0.Add(time.Second)},
		{Type: TypeFinished, Job: "job-1", Time: t0.Add(time.Minute), Status: "succeeded",
			Result: raw(`{"workload":"W3","episodes":2}`)},
		{Type: TypeCancel, Job: "job-1"}, // spurious: raced the finish
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	check := func(j *Journal, when string) {
		t.Helper()
		states := j.States()
		if len(states) != 1 {
			t.Fatalf("%s: %d states", when, len(states))
		}
		st := states[0]
		if st.Status != "succeeded" || !st.Terminal() {
			t.Fatalf("%s: status %q, want succeeded", when, st.Status)
		}
		if st.CancelRequested {
			t.Fatalf("%s: terminal-then-cancel left CancelRequested set", when)
		}
	}
	check(j, "live reduction")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The same sequence replayed from disk reduces identically.
	j2, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	check(j2, "replay")

	// And it survives compaction: the snapshot record must carry the
	// terminal state, not a cancel-requested one.
	j2.Compact()
	check(j2, "post-compaction")
	j2.Close()
	j3, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	check(j3, "replay of compacted snapshot")
}

// TestReduceCancelBeforeTerminalStillSettles is the control: cancel before
// the process died (no terminal record) must still mark the state so
// recovery settles the job as cancelled instead of re-executing it.
func TestReduceCancelBeforeTerminalStillSettles(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, rec := range []Record{
		{Type: TypeSubmitted, Job: "job-1", Time: t0, Spec: raw(`{"workload":"W3"}`)},
		{Type: TypeRunning, Job: "job-1", Time: t0.Add(time.Second)},
		{Type: TypeCancel, Job: "job-1"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := j.States()[0]
	if !st.CancelRequested || st.Terminal() {
		t.Fatalf("state = %+v, want cancel-requested and non-terminal", st)
	}
}

// TestReduceAssignedBinding pins the cluster assignment record: the newest
// job→worker binding wins, an empty-worker record clears it, bindings on
// terminal jobs are ignored, and a live binding survives replay and
// compaction (that is what lets a restarted coordinator re-attach).
func TestReduceAssignedBinding(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		{Type: TypeSubmitted, Job: "job-1", Time: t0, Spec: raw(`{"workload":"W3"}`)},
		{Type: TypeAssigned, Job: "job-1", Worker: "http://w1:8080", Remote: "job-7"},
		{Type: TypeAssigned, Job: "job-1", Worker: "", Remote: ""}, // w1 died: binding cleared
		{Type: TypeAssigned, Job: "job-1", Worker: "http://w2:8080", Remote: "job-3"},
		{Type: TypeSubmitted, Job: "job-2", Time: t0, Spec: raw(`{"workload":"W1"}`)},
		{Type: TypeFinished, Job: "job-2", Time: t0.Add(time.Minute), Status: "succeeded"},
		{Type: TypeAssigned, Job: "job-2", Worker: "http://w1:8080", Remote: "job-9"}, // raced the finish
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	check := func(j *Journal, when string) {
		t.Helper()
		states := j.States()
		if len(states) != 2 {
			t.Fatalf("%s: %d states", when, len(states))
		}
		if states[0].Worker != "http://w2:8080" || states[0].RemoteID != "job-3" {
			t.Fatalf("%s: job-1 binding %q/%q, want the re-dispatch to w2",
				when, states[0].Worker, states[0].RemoteID)
		}
		if states[1].Worker != "" || states[1].RemoteID != "" {
			t.Fatalf("%s: terminal job-2 grew binding %q/%q", when, states[1].Worker, states[1].RemoteID)
		}
	}
	check(j, "live")
	j.Compact()
	check(j, "post-compaction")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	check(j2, "replay")
}

// TestTenantFieldRoundTrips pins the tenancy plumbing through the journal:
// the submitted record's tenant survives reduction, replay and compaction.
func TestTenantFieldRoundTrips(t *testing.T) {
	fs := faultfs.NewMem(faultfs.Faults{})
	j, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		{Type: TypeSubmitted, Job: "job-1", Tenant: "acme", Time: t0, Spec: raw(`{"workload":"W3"}`)},
		{Type: TypeSubmitted, Job: "job-2", Time: t0, Spec: raw(`{"workload":"W1"}`)}, // pre-tenancy shape
		{Type: TypeFinished, Job: "job-1", Time: t0.Add(time.Minute), Status: "succeeded"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	check := func(j *Journal, when string) {
		t.Helper()
		states := j.States()
		if len(states) != 2 {
			t.Fatalf("%s: %d states", when, len(states))
		}
		if states[0].Tenant != "acme" {
			t.Fatalf("%s: job-1 tenant %q, want acme", when, states[0].Tenant)
		}
		if states[1].Tenant != "" {
			t.Fatalf("%s: pre-tenancy job-2 grew tenant %q", when, states[1].Tenant)
		}
	}
	check(j, "live")
	j.Compact()
	check(j, "post-compaction")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open("data/journal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	check(j2, "replay")
}
