package journal

import (
	"bytes"
	"encoding/json"
	"testing"

	"nasaic/internal/cachefile"
)

// FuzzScanSegment throws arbitrary bytes at the record decoder: it must
// never panic, must report a valid prefix no longer than the input, and for
// a stream of well-formed frames followed by the fuzzed bytes it must still
// recover exactly the well-formed prefix.
func FuzzScanSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a frame"))
	seed, _ := json.Marshal(Record{Type: TypeSubmitted, Job: "job-1", Spec: json.RawMessage(`{"workload":"W3"}`)})
	f.Add(cachefile.AppendFrame(nil, seed))
	f.Add(cachefile.AppendFrame(nil, []byte("not json")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})

	prefixRecs := []Record{
		{Type: TypeSubmitted, Job: "job-1", Spec: json.RawMessage(`{"workload":"W3"}`)},
		{Type: TypeEvent, Job: "job-1", Seq: 0, Event: json.RawMessage(`{"episode":0}`)},
		{Type: TypeFinished, Job: "job-1", Status: "succeeded"},
	}
	var prefix []byte
	for _, r := range prefixRecs {
		p, _ := json.Marshal(r)
		prefix = cachefile.AppendFrame(prefix, p)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := scanSegment(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		// The valid prefix must rescan to the same records.
		again, validAgain := scanSegment(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("rescan of valid prefix diverged: %d/%d records, %d/%d bytes",
				len(again), len(recs), validAgain, valid)
		}

		// Well-formed frames ahead of the fuzz input always survive.
		recs2, valid2 := scanSegment(append(append([]byte(nil), prefix...), data...))
		if valid2 < int64(len(prefix)) || len(recs2) < len(prefixRecs) {
			t.Fatalf("intact prefix lost: %d records, %d valid bytes (prefix %d)",
				len(recs2), valid2, len(prefix))
		}
		for i := range prefixRecs {
			if recs2[i].Type != prefixRecs[i].Type || recs2[i].Job != prefixRecs[i].Job {
				t.Fatalf("prefix record %d mutated: %+v", i, recs2[i])
			}
		}
		if !bytes.Equal(data[:valid], data[:valid]) {
			t.Fatal("unreachable")
		}
	})
}
