// Package workload defines the paper's multi-task application workloads
// (§III-➊, §V-A): sets of AI tasks, each pairing a dataset with a
// neural-architecture search space and an accuracy weight α_i, plus the
// unified hardware design specs ⟨LS, ES, AS⟩ every workload must meet.
package workload

import (
	"fmt"

	"nasaic/internal/dnn"
	"nasaic/internal/predictor"
)

// TaskSpec is one AI task in a workload.
type TaskSpec struct {
	Name    string
	Dataset predictor.Dataset
	Space   *dnn.Space
	// Weight is α_i in Eq. (2); the paper uses equal weights.
	Weight float64
}

// Specs are the unified hardware design specifications: latency in cycles,
// energy in nJ, area in µm².
type Specs struct {
	LatencyCycles int64
	EnergyNJ      float64
	AreaUM2       float64
}

// String renders the paper's ⟨LS, ES, AS⟩ notation.
func (s Specs) String() string {
	return fmt.Sprintf("<%.3g cycles, %.3g nJ, %.3g um2>",
		float64(s.LatencyCycles), s.EnergyNJ, s.AreaUM2)
}

// Workload is a multi-task application with its design specs.
type Workload struct {
	Name  string
	Tasks []TaskSpec
	Specs Specs
}

// Validate checks the workload structure and that weights form a convex
// combination.
func (w Workload) Validate() error {
	if len(w.Tasks) == 0 {
		return fmt.Errorf("workload %s: no tasks", w.Name)
	}
	var sum float64
	for i, t := range w.Tasks {
		if t.Space == nil {
			return fmt.Errorf("workload %s task %d: nil search space", w.Name, i)
		}
		if t.Weight < 0 || t.Weight > 1 {
			return fmt.Errorf("workload %s task %d: weight %f out of [0,1]", w.Name, i, t.Weight)
		}
		sum += t.Weight
	}
	if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("workload %s: weights sum to %f, want 1", w.Name, sum)
	}
	if w.Specs.LatencyCycles <= 0 || w.Specs.EnergyNJ <= 0 || w.Specs.AreaUM2 <= 0 {
		return fmt.Errorf("workload %s: non-positive specs %v", w.Name, w.Specs)
	}
	return nil
}

// Weighted computes the weighted accuracy of Eq. (2) for per-task
// qualities accs (same order as Tasks).
func (w Workload) Weighted(accs []float64) float64 {
	if len(accs) != len(w.Tasks) {
		panic(fmt.Sprintf("workload %s: %d accuracies for %d tasks", w.Name, len(accs), len(w.Tasks)))
	}
	var sum float64
	for i, t := range w.Tasks {
		sum += t.Weight * accs[i]
	}
	return sum
}

// W1 is the mixed workload: CIFAR-10 classification + Nuclei segmentation,
// with design specs ⟨8e5 cycles, 2e9 nJ, 4e9 µm²⟩ (§V-A).
func W1() Workload {
	return Workload{
		Name: "W1",
		Tasks: []TaskSpec{
			{Name: "classification", Dataset: predictor.CIFAR10, Space: dnn.CIFARResNetSpace(), Weight: 0.5},
			{Name: "segmentation", Dataset: predictor.Nuclei, Space: dnn.NucleiUNetSpace(), Weight: 0.5},
		},
		Specs: Specs{LatencyCycles: 8e5, EnergyNJ: 2e9, AreaUM2: 4e9},
	}
}

// W2 is the two-classification workload: CIFAR-10 + STL-10, with specs
// ⟨1e6 cycles, 3.5e9 nJ, 4e9 µm²⟩.
func W2() Workload {
	return Workload{
		Name: "W2",
		Tasks: []TaskSpec{
			{Name: "cifar", Dataset: predictor.CIFAR10, Space: dnn.CIFARResNetSpace(), Weight: 0.5},
			{Name: "stl", Dataset: predictor.STL10, Space: dnn.STLResNetSpace(), Weight: 0.5},
		},
		Specs: Specs{LatencyCycles: 1e6, EnergyNJ: 3.5e9, AreaUM2: 4e9},
	}
}

// W3 is the homogeneous workload: two instances of CIFAR-10 classification,
// with specs ⟨4e5 cycles, 1e9 nJ, 4e9 µm²⟩ (used for the single vs.
// homogeneous vs. heterogeneous study of Table II).
func W3() Workload {
	return Workload{
		Name: "W3",
		Tasks: []TaskSpec{
			{Name: "cifar-a", Dataset: predictor.CIFAR10, Space: dnn.CIFARResNetSpace(), Weight: 0.5},
			{Name: "cifar-b", Dataset: predictor.CIFAR10, Space: dnn.CIFARResNetSpace(), Weight: 0.5},
		},
		Specs: Specs{LatencyCycles: 4e5, EnergyNJ: 1e9, AreaUM2: 4e9},
	}
}

// ByName returns the named workload (W1, W2 or W3).
func ByName(name string) (Workload, error) {
	switch name {
	case "W1", "w1":
		return W1(), nil
	case "W2", "w2":
		return W2(), nil
	case "W3", "w3":
		return W3(), nil
	default:
		return Workload{}, fmt.Errorf("workload: unknown workload %q (want W1, W2 or W3)", name)
	}
}
