package workload

import (
	"math"
	"testing"

	"nasaic/internal/predictor"
)

func TestPaperWorkloads(t *testing.T) {
	cases := []struct {
		w        Workload
		names    []string
		datasets []predictor.Dataset
		specs    Specs
	}{
		{W1(), []string{"classification", "segmentation"},
			[]predictor.Dataset{predictor.CIFAR10, predictor.Nuclei},
			Specs{8e5, 2e9, 4e9}},
		{W2(), []string{"cifar", "stl"},
			[]predictor.Dataset{predictor.CIFAR10, predictor.STL10},
			Specs{1e6, 3.5e9, 4e9}},
		{W3(), []string{"cifar-a", "cifar-b"},
			[]predictor.Dataset{predictor.CIFAR10, predictor.CIFAR10},
			Specs{4e5, 1e9, 4e9}},
	}
	for _, c := range cases {
		if err := c.w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.w.Name, err)
		}
		if len(c.w.Tasks) != 2 {
			t.Errorf("%s: want 2 tasks", c.w.Name)
		}
		for i, task := range c.w.Tasks {
			if task.Name != c.names[i] || task.Dataset != c.datasets[i] {
				t.Errorf("%s task %d: got %s/%v", c.w.Name, i, task.Name, task.Dataset)
			}
			if task.Weight != 0.5 {
				t.Errorf("%s task %d: weight %f, want 0.5 (paper α1=α2=0.5)", c.w.Name, i, task.Weight)
			}
		}
		if c.w.Specs != c.specs {
			t.Errorf("%s specs %+v, want %+v", c.w.Name, c.w.Specs, c.specs)
		}
	}
}

func TestWeighted(t *testing.T) {
	w := W1()
	got := w.Weighted([]float64{0.9, 0.8})
	if math.Abs(got-0.85) > 1e-12 {
		t.Errorf("Weighted = %f, want 0.85", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on accuracy-count mismatch")
		}
	}()
	w.Weighted([]float64{0.9})
}

func TestValidateRejects(t *testing.T) {
	w := W1()
	w.Tasks[0].Weight = 0.9 // weights now sum to 1.4
	if err := w.Validate(); err == nil {
		t.Error("unnormalized weights accepted")
	}
	w2 := W1()
	w2.Specs.EnergyNJ = 0
	if err := w2.Validate(); err == nil {
		t.Error("zero energy spec accepted")
	}
	w3 := W1()
	w3.Tasks = nil
	if err := w3.Validate(); err == nil {
		t.Error("empty task list accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"W1", "w2", "W3"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("W9"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSpecsString(t *testing.T) {
	s := W1().Specs.String()
	if s == "" {
		t.Error("empty specs string")
	}
}
