package cluster

import (
	"encoding/json"
	"net/http"

	"nasaic/internal/jobs"
	"nasaic/internal/tenant"
)

// NewCoordinatorHandler exposes the coordinator over HTTP: the public
// /v1/jobs API unchanged (tenant auth, quotas, SSE — clients cannot tell a
// coordinator from a standalone daemon) with one deliberate difference on
// GET /healthz: instead of the bare-200 body, the coordinator reports its
// role and every worker's health and load as JSON, so operators see replica
// state from the front door. Workers and standalone daemons keep the bare
// contract.
func NewCoordinatorHandler(m *jobs.Manager, reg *tenant.Registry, c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		workers := c.Status()
		status := "degraded" // live, but no healthy worker to place on
		for _, ws := range workers {
			if ws.Healthy {
				status = "ok"
				break
			}
		}
		writeJSON(w, http.StatusOK, coordinatorHealth{
			Status:  status,
			Role:    "coordinator",
			Workers: workers,
		})
	})
	mux.Handle("/", jobs.NewAuthHandler(m, reg))
	return mux
}

// coordinatorHealth is the coordinator's /healthz payload.
type coordinatorHealth struct {
	Status  string         `json:"status"`
	Role    string         `json:"role"`
	Workers []WorkerStatus `json:"workers"`
}

// apiError mirrors the jobs package's JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
