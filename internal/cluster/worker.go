package cluster

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"

	"nasaic/internal/jobs"
	"nasaic/internal/tenant"
)

// NewWorkerHandler wraps a worker replica's job manager for cluster duty:
// the full /v1/jobs API (the same wire protocol standalone clients speak —
// the coordinator is just another client) plus the internal
// /v1/cluster/health load probe, all behind shared-key auth. The key is the
// cluster credential (distinct from tenant API keys, which authenticate at
// the coordinator and never reach workers); an empty key disables the gate
// for trusted-network deployments. GET /healthz stays open and bare — the
// standalone liveness contract — so orchestrators can probe workers without
// holding the cluster key.
func NewWorkerHandler(m *jobs.Manager, key string) http.Handler {
	guard := clusterAuth(key)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /v1/cluster/health", guard(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pending, running, slots := m.Load()
		writeJSON(w, http.StatusOK, workerHealth{
			Status:  "ok",
			Pending: pending,
			Running: running,
			Slots:   slots,
		})
	})))
	mux.Handle("/v1/", guard(jobs.NewHandler(m)))
	return mux
}

// clusterAuth gates a handler behind the cluster shared key, mirroring the
// tenant middleware's contract: missing or malformed credentials are 401
// with a WWW-Authenticate challenge, a well-formed key that does not match
// is 403, and the comparison is constant-time over SHA-256 digests. An
// empty configured key turns the gate off.
func clusterAuth(key string) func(http.Handler) http.Handler {
	if key == "" {
		return func(next http.Handler) http.Handler { return next }
	}
	want := sha256.Sum256([]byte(key))
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			got := tenant.BearerKey(r.Header.Get("Authorization"))
			if got == "" {
				w.Header().Set("WWW-Authenticate", `Bearer realm="nasaicd-cluster"`)
				writeJSON(w, http.StatusUnauthorized, apiError{Error: "cluster: missing or malformed Authorization bearer key"})
				return
			}
			digest := sha256.Sum256([]byte(got))
			if subtle.ConstantTimeCompare(digest[:], want[:]) != 1 {
				writeJSON(w, http.StatusForbidden, apiError{Error: "cluster: unknown cluster key"})
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
