package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nasaic/internal/jobs"
	"nasaic/internal/tenant"
)

// percentile picks the p-th percentile of the sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)*p/100]
}

// clusterSoak drives many concurrent submissions from two tenants through a
// 2-worker cluster and returns every job's time-to-running, sorted. It is
// the cluster variant of the jobs package's TestMultiTenantSoak: tenant
// fairness and quotas are enforced at the coordinator, placement spreads the
// load across replicas, and the cross-replica scheduling latency comes back
// as p50/p99 (ROADMAP item 1's latency percentiles).
func clusterSoak(tb testing.TB, heavyJobs, lightJobs, submitters int) []time.Duration {
	tb.Helper()
	reg, err := tenant.New([]tenant.Tenant{
		{Name: "heavy", Limits: tenant.Limits{MaxPending: 4}},
		{Name: "light", Limits: tenant.Limits{MaxPending: 4}},
	}, []string{"heavy-key-1", "light-key-2"})
	if err != nil {
		tb.Fatal(err)
	}

	w1 := startWorker(tb, jobs.Options{MaxConcurrent: 2, RunJob: fakeRun(time.Millisecond)})
	w2 := startWorker(tb, jobs.Options{MaxConcurrent: 2, RunJob: fakeRun(time.Millisecond)})
	urls := []string{w1.srv.URL, w2.srv.URL}
	coord, err := New(Config{
		Workers:       urls,
		Key:           testKey,
		ProbeInterval: 20 * time.Millisecond,
		RetryDelay:    10 * time.Millisecond,
		Logf:          tb.Logf,
	})
	if err != nil {
		tb.Fatal(err)
	}
	m := jobs.NewManager(jobs.Options{
		MaxConcurrent: 4,
		MaxHistory:    heavyJobs + lightJobs + 16,
		Tenants:       reg,
		Executor:      coord,
	})
	srv := httptest.NewServer(NewCoordinatorHandler(m, reg, coord))
	tb.Cleanup(func() { srv.Close(); m.Close(); coord.Close() })
	waitHealthy(tb, coord, 2)

	var (
		mu       sync.Mutex
		accepted []string
		rejected atomic.Int64
		failures = make(chan string, 64)
	)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}
	submit := func(key string) {
		body := []byte(`{"workload":"W3","episodes":3}`)
		for attempt := 0; attempt < 500; attempt++ {
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
			req.Header.Set("Authorization", "Bearer "+key)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				fail("submit: %v", err)
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					fail("429 without Retry-After")
				}
				resp.Body.Close()
				rejected.Add(1)
				time.Sleep(time.Duration(1+rand.Intn(3)) * time.Millisecond)
				continue
			}
			var snap jobs.Snapshot
			decErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || decErr != nil {
				fail("submit: status %d (decode %v)", resp.StatusCode, decErr)
				return
			}
			mu.Lock()
			accepted = append(accepted, snap.ID)
			mu.Unlock()
			return
		}
		fail("submit: starved out after 500 quota retries")
	}

	var wg sync.WaitGroup
	perWorker := heavyJobs / submitters
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				submit("heavy-key-1")
			}
		}()
	}
	for s := 0; s < lightJobs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			submit("light-key-2")
		}()
	}
	wg.Wait()
	close(failures)
	for msg := range failures {
		tb.Error(msg)
	}
	if tb.Failed() {
		tb.Fatalf("soak aborted")
	}

	// Drain and measure: every accepted job settles, and its wait from
	// submission to running is the cross-replica scheduling latency.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var waits []time.Duration
	for _, id := range accepted {
		j, err := m.Get(id)
		if err != nil {
			continue // evicted after finishing
		}
		if err := j.Wait(ctx); err != nil {
			tb.Fatalf("job %s never settled: %v", id, err)
		}
		snap := j.Snapshot()
		if snap.Status != jobs.StatusSucceeded {
			tb.Fatalf("job %s settled %s (%s)", id, snap.Status, snap.Error)
		}
		if snap.StartedAt != nil {
			waits = append(waits, snap.StartedAt.Sub(snap.CreatedAt))
		}
	}
	if n1, n2 := len(w1.m.List()), len(w2.m.List()); n1 == 0 || n2 == 0 {
		tb.Fatalf("placement did not spread under load: %d vs %d jobs", n1, n2)
	}
	if rejected.Load() == 0 {
		tb.Error("heavy burst never drew a 429 — coordinator quota not enforced")
	}
	sort.Slice(waits, func(i, k int) bool { return waits[i] < waits[k] })
	return waits
}

// TestClusterSoak is the cluster scheduling soak (CI runs it under -race):
// two tenants overdrive a 2-worker cluster through the coordinator, every
// accepted job must settle successfully across the replicas, quota
// rejections keep their Retry-After hints, and the cross-replica
// time-to-running p50/p99 land in the log as the sharding latency metrics.
func TestClusterSoak(t *testing.T) {
	heavyJobs, lightJobs, submitters := 48, 12, 12
	if testing.Short() {
		heavyJobs, lightJobs, submitters = 24, 6, 6
	}
	waits := clusterSoak(t, heavyJobs, lightJobs, submitters)
	if len(waits) == 0 {
		t.Fatal("no scheduling latencies measured")
	}
	p50, p99 := percentile(waits, 50), percentile(waits, 99)
	if p99 > 15*time.Second {
		t.Fatalf("cross-replica p99 time-to-running %v — dispatch starved", p99)
	}
	t.Logf("cluster soak: %d jobs, time-to-running p50 %v p99 %v", len(waits), p50, p99)
}

// BenchmarkClusterTimeToRunning reports the cross-replica scheduling
// latency percentiles as benchmark metrics (ttr_p50_ms / ttr_p99_ms), so CI
// can track dispatch latency across changes the way it tracks throughput.
func BenchmarkClusterTimeToRunning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		waits := clusterSoak(b, 24, 6, 6)
		p50 := percentile(waits, 50)
		p99 := percentile(waits, 99)
		b.ReportMetric(float64(p50.Microseconds())/1000, "ttr_p50_ms")
		b.ReportMetric(float64(p99.Microseconds())/1000, "ttr_p99_ms")
	}
}
