package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nasaic/internal/jobs"
)

// errRemoteGone marks a 404 from a worker: the remote job no longer exists
// there (the worker restarted without its journal, or evicted the job). The
// coordinator responds by clearing the binding and re-dispatching — the
// deterministic re-run converges to the same result.
var errRemoteGone = errors.New("cluster: remote job gone")

// remoteError is a non-2xx worker response that is not a 404.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string {
	if e.msg == "" {
		return fmt.Sprintf("cluster: worker returned %d", e.status)
	}
	return fmt.Sprintf("cluster: worker returned %d: %s", e.status, e.msg)
}

// client speaks a worker replica's HTTP API: the public /v1/jobs surface
// (submit/get/cancel/stream — the same wire protocol standalone clients use)
// plus the internal /v1/cluster/health load probe. Every request carries the
// cluster shared key as a bearer credential.
type client struct {
	base          string // worker base URL, no trailing slash
	key           string // cluster shared key ("" = auth off)
	http          *http.Client
	streamTimeout time.Duration // silence bound on the SSE stream
}

func (cl *client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, cl.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if cl.key != "" {
		req.Header.Set("Authorization", "Bearer "+cl.key)
	}
	return cl.http.Do(req)
}

// decode consumes the response, mapping 404 to errRemoteGone and any other
// unexpected status to a remoteError, then unmarshals the body into v (nil v
// discards it).
func decode(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		if resp.StatusCode == http.StatusNotFound {
			return errRemoteGone
		}
		var ae struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &ae)
		return &remoteError{status: resp.StatusCode, msg: ae.Error}
	}
	if v == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// submit posts the spec to the worker and returns the accepted snapshot
// (carrying the worker-local job ID the binding records).
func (cl *client) submit(ctx context.Context, spec jobs.Spec) (jobs.Snapshot, error) {
	var snap jobs.Snapshot
	body, err := json.Marshal(spec)
	if err != nil {
		return snap, err
	}
	resp, err := cl.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return snap, err
	}
	return snap, decode(resp, http.StatusAccepted, &snap)
}

// get fetches the remote job's snapshot.
func (cl *client) get(ctx context.Context, id string) (jobs.Snapshot, error) {
	var snap jobs.Snapshot
	resp, err := cl.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return snap, err
	}
	return snap, decode(resp, http.StatusOK, &snap)
}

// cancel requests cancellation of the remote job.
func (cl *client) cancel(ctx context.Context, id string) error {
	resp, err := cl.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return decode(resp, http.StatusAccepted, nil)
}

// workerHealth is the /v1/cluster/health payload: the worker's current load,
// aggregated by the coordinator for placement and Retry-After estimates.
type workerHealth struct {
	Status  string `json:"status"`
	Pending int    `json:"pending"`
	Running int    `json:"running"`
	Slots   int    `json:"slots"`
}

// health probes the worker's internal load endpoint.
func (cl *client) health(ctx context.Context) (workerHealth, error) {
	var h workerHealth
	resp, err := cl.do(ctx, http.MethodGet, "/v1/cluster/health", nil)
	if err != nil {
		return h, err
	}
	return h, decode(resp, http.StatusOK, &h)
}

// sseFrame is one parsed Server-Sent Event from a worker stream.
type sseFrame struct {
	event string
	id    int
	data  []byte
}

// errStreamDone is returned by a stream callback to end the stream cleanly
// (the terminal done frame arrived).
var errStreamDone = errors.New("cluster: stream complete")

// stream follows the remote job's SSE event stream, invoking onFrame for
// every complete frame. lastID < 0 streams from the beginning; otherwise the
// worker replays from lastID+1 (standard Last-Event-ID semantics, identical
// to what a reconnecting client sends). A watchdog bounds the silence
// between frames: the worker heartbeats idle streams every 15s, so a stream
// quiet for streamTimeout is presumed dead and torn down — this is what
// detects a worker that vanished without closing the TCP connection (power
// loss, partition). Comment frames (heartbeats) feed the watchdog but are
// not delivered. Returns nil when onFrame ends the stream with
// errStreamDone.
func (cl *client) stream(ctx context.Context, id string, lastID int, onFrame func(sseFrame) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if cl.key != "" {
		req.Header.Set("Authorization", "Bearer "+cl.key)
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := cl.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decode(resp, http.StatusOK, nil) // maps 404 / non-200
	}
	defer resp.Body.Close()

	// The watchdog closes the body when the stream goes silent; the blocked
	// read then fails with a read-on-closed error rather than hanging forever.
	watchdog := time.AfterFunc(cl.streamTimeout, func() { resp.Body.Close() })
	defer watchdog.Stop()

	// Lines are unbounded: a done frame's data line carries the job's full
	// terminal snapshot, explored solutions and all, which on long runs is
	// well past any fixed scanner cap.
	r := bufio.NewReaderSize(resp.Body, 64<<10)
	var f sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if errors.Is(err, io.EOF) && line == "" {
				return fmt.Errorf("cluster: stream from %s ended without a done frame", cl.base)
			}
			return fmt.Errorf("cluster: stream read: %w", err)
		}
		watchdog.Reset(cl.streamTimeout)
		line = strings.TrimSuffix(line, "\n")
		switch {
		case line == "": // frame boundary
			if f.event != "" {
				if err := onFrame(f); err != nil {
					if errors.Is(err, errStreamDone) {
						return nil
					}
					return err
				}
			}
			f = sseFrame{}
		case strings.HasPrefix(line, ":"): // heartbeat comment: watchdog food only
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			f.id, _ = strconv.Atoi(line[len("id: "):])
		case strings.HasPrefix(line, "data: "):
			f.data = append([]byte(nil), line[len("data: "):]...)
		}
	}
}
