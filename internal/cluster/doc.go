// Package cluster is nasaicd's horizontal execution sharding: a coordinator
// replica that accepts the existing public /v1/jobs API unchanged and
// dispatches each granted job to one of several worker replicas over the
// same HTTP/JSON + SSE wire protocol the daemon already speaks.
//
// The split of responsibilities:
//
//   - The coordinator owns admission, tenant auth and fairness: requests
//     authenticate against the tenant registry at the coordinator's edge and
//     queue through internal/jobs' per-tenant fair-share ring exactly as in
//     standalone mode. Only once the dispatcher grants a job a slot does the
//     cluster layer see it — Coordinator implements jobs.Executor, so
//     placement is strictly downstream of fairness.
//   - Placement picks the least-loaded healthy worker (fewest
//     coordinator-tracked in-flight jobs, config order breaking ties) and
//     submits the job's spec there. The job→worker binding is journaled
//     (journal.TypeAssigned) before the stream starts, so a restarted
//     coordinator re-attaches to in-flight remote runs instead of
//     re-dispatching them.
//   - A worker is just today's nasaicd plus an internal /v1/cluster/*
//     surface: a load-reporting health endpoint and a shared-key gate
//     (distinct from tenant keys) in front of its /v1 API. Workers never see
//     tenant credentials.
//   - Event streams proxy end to end: the coordinator follows the worker's
//     SSE stream (resuming via Last-Event-ID after any interruption) and
//     replays each frame into the job's local ring under the worker's
//     sequence numbers, so client-facing SSE — replay, reset frames,
//     heartbeats, per-write deadlines — is byte-compatible with standalone.
//
// Failure handling leans on the engine's determinism: specs are journaled
// and runs are bit-identical given the same spec, so when a worker dies the
// coordinator clears the binding and re-dispatches the job to another
// worker. The replacement replays its deterministic prefix; the coordinator
// drops already-held sequence numbers and the client's stream continues
// without duplicates. Workers are health-checked with bounded exponential
// backoff; an unreachable worker stops receiving placements until a probe
// succeeds again.
package cluster
