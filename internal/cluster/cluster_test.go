package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nasaic/internal/jobs"
	"nasaic/pkg/nasaic"
)

const testKey = "cluster-test-key"

// testWorker is one worker replica under test: a real jobs.Manager behind
// the worker handler on an httptest listener.
type testWorker struct {
	m   *jobs.Manager
	srv *httptest.Server
}

// kill simulates abrupt worker death: live connections (the coordinator's
// SSE streams included) are severed mid-frame and the listener stops
// accepting, with no graceful cancel — from the coordinator's side this is
// indistinguishable from a crashed process. The manager keeps running so
// cleanup stays orderly.
func (w *testWorker) kill() {
	w.srv.Listener.Close()
	w.srv.CloseClientConnections()
}

// startWorker boots a worker replica. opts.RunJob, when set, substitutes
// deterministic fake work for the real engine (scheduling-focused tests);
// leaving it nil runs real explorations.
func startWorker(t testing.TB, opts jobs.Options) *testWorker {
	t.Helper()
	m := jobs.NewManager(opts)
	srv := httptest.NewServer(NewWorkerHandler(m, testKey))
	w := &testWorker{m: m, srv: srv}
	t.Cleanup(func() { m.Close() })
	return w
}

// fakeRun is the deterministic stand-in engine for scheduling and failover
// tests: it emits one synthetic (seed-derived, bit-reproducible) event per
// episode at the given pace, honours cancellation, and finishes with a
// result carrying the episode count. Re-running the same spec anywhere
// reproduces the identical event and result bytes — the same property the
// real engine's determinism suite pins.
func fakeRun(pace time.Duration) func(ctx context.Context, j *jobs.Job) (*nasaic.Result, error) {
	return func(ctx context.Context, j *jobs.Job) (*nasaic.Result, error) {
		for i := 0; i < j.Spec.Episodes; i++ {
			select {
			case <-time.After(pace):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			j.EmitEvent(i, fakeEvent(j.Spec.Seed, i))
		}
		return &nasaic.Result{Workload: j.Spec.Workload, Episodes: j.Spec.Episodes}, nil
	}
}

func fakeEvent(seed int64, i int) nasaic.Event {
	return nasaic.Event{
		Episode:  i,
		Reward:   float64(seed*1000+int64(i)) / 7,
		Feasible: i%2 == 0,
		HWEvals:  i + 1,
	}
}

// testCoordinator wires a coordinator + manager + public handler over the
// given workers, with intervals shrunk so failovers happen in milliseconds.
func testCoordinator(t testing.TB, workers []*testWorker, mopts jobs.Options) (*Coordinator, *jobs.Manager, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	coord, err := New(Config{
		Workers:       urls,
		Key:           testKey,
		ProbeInterval: 20 * time.Millisecond,
		StreamTimeout: 5 * time.Second,
		RetryDelay:    10 * time.Millisecond,
		StreamRetries: 3,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mopts.Executor = coord
	m := jobs.NewManager(mopts)
	srv := httptest.NewServer(NewCoordinatorHandler(m, nil, coord))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
		coord.Close()
	})
	return coord, m, srv
}

func postJob(t testing.TB, url string, spec jobs.Spec) jobs.Snapshot {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// readFrames parses SSE frames off r until the reader errors (stream end)
// or maxFrames arrive. Heartbeat comments are skipped.
func readFrames(r *bufio.Reader, maxFrames int) []sseFrame {
	var frames []sseFrame
	cur := sseFrame{}
	for len(frames) < maxFrames {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line[len("id: "):], "%d", &cur.id)
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		}
	}
	return frames
}

// waitHealthy blocks until every worker reports healthy at the coordinator.
func waitHealthy(t testing.TB, coord *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for _, ws := range coord.Status() {
			if ws.Healthy {
				healthy++
			}
		}
		if healthy >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers healthy", healthy, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterDeterminism is the cross-replica acceptance check: a 2-worker
// cluster running the QuickBudget spec through real engines must be
// bit-identical to a standalone run — the terminal result field for field,
// and every SSE `data:` payload byte-for-byte equal to the canonical
// EncodeEvent wire bytes of the direct run's events (the encoding shared by
// the journal). A second job keeps both replicas busy and proves placement
// spreads load.
func TestClusterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickBudget cluster e2e skipped in -short mode")
	}
	episodes := nasaic.QuickBudget().Episodes

	w1 := startWorker(t, jobs.Options{MaxConcurrent: 2, ShareMemos: true})
	w2 := startWorker(t, jobs.Options{MaxConcurrent: 2, ShareMemos: true})
	coord, _, srv := testCoordinator(t, []*testWorker{w1, w2}, jobs.Options{MaxConcurrent: 4})
	waitHealthy(t, coord, 2)

	// Two jobs so the least-loaded placement exercises both replicas.
	snap1 := postJob(t, srv.URL, jobs.Spec{Workload: "W3", Episodes: episodes, Seed: 1})
	snap2 := postJob(t, srv.URL, jobs.Spec{Workload: "W3", Episodes: episodes, Seed: 2})

	// Stream job 1's full feed through the coordinator.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap1.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(bufio.NewReader(resp.Body), episodes+2)
	if len(frames) != episodes+1 {
		t.Fatalf("got %d SSE frames, want %d episodes + done", len(frames), episodes)
	}

	// The standalone reference: same spec, direct through the public API,
	// collecting the canonical event stream.
	var wantEvents []nasaic.Event
	want, err := nasaic.Run(context.Background(),
		nasaic.WithWorkload("W3"),
		nasaic.WithEpisodes(episodes),
		nasaic.WithSeed(1),
		nasaic.WithEventHandler(func(e nasaic.Event) { wantEvents = append(wantEvents, e) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEvents) != episodes {
		t.Fatalf("reference run produced %d events, want %d", len(wantEvents), episodes)
	}
	for i, f := range frames[:episodes] {
		if f.event != "episode" || f.id != i {
			t.Fatalf("frame %d: event %q id %d", i, f.event, f.id)
		}
		wire, err := nasaic.EncodeEvent(wantEvents[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.data, wire) {
			t.Fatalf("frame %d diverged from standalone wire bytes:\n got %s\nwant %s", i, f.data, wire)
		}
	}

	done := frames[episodes]
	if done.event != "done" || done.id != episodes {
		t.Fatalf("last frame: event %q id %d, want done %d", done.event, done.id, episodes)
	}
	var final jobs.Snapshot
	if err := json.Unmarshal(done.data, &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("final status %s (%s)", final.Status, final.Error)
	}
	got := final.Result.Best
	if got.Design.String() != want.Best.Design.String() ||
		got.WeightedAccuracy != want.Best.WeightedAccuracy ||
		got.LatencyCycles != want.Best.LatencyCycles ||
		got.EnergyNJ != want.Best.EnergyNJ ||
		got.AreaUM2 != want.Best.AreaUM2 {
		t.Fatalf("cluster job diverged from standalone run:\n%+v\nvs\n%+v", got, want.Best)
	}
	if len(final.Result.Explored) != len(want.Explored) {
		t.Fatalf("explored count %d vs %d", len(final.Result.Explored), len(want.Explored))
	}

	// Job 2 settles too, and placement used both replicas.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, w := range []*testWorker{w1, w2} {
		for _, j := range w.m.List() {
			if err := j.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n1, n2 := len(w1.m.List()), len(w2.m.List()); n1 == 0 || n2 == 0 {
		t.Fatalf("placement did not spread: worker1 ran %d jobs, worker2 %d", n1, n2)
	}
	_ = snap2
}

// TestWorkerHandlerAuth pins the worker's internal surface: /healthz stays
// open with the bare standalone body, /v1 is gated by the cluster shared key
// (401 challenge without a credential, 403 with the wrong one), and the
// load probe reports the manager's live numbers.
func TestWorkerHandlerAuth(t *testing.T) {
	w := startWorker(t, jobs.Options{MaxConcurrent: 3, RunJob: fakeRun(time.Millisecond)})

	resp, err := http.Get(w.srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("open healthz: %v %v", err, resp)
	}
	var bare map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&bare); err != nil || bare["status"] != "ok" {
		t.Fatalf("healthz body %v (%v), want bare standalone contract", bare, err)
	}
	resp.Body.Close()

	get := func(path, key string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, w.srv.URL+path, nil)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := get("/v1/jobs", ""); resp.StatusCode != http.StatusUnauthorized ||
		resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatalf("missing key: status %d, WWW-Authenticate %q", resp.StatusCode, resp.Header.Get("WWW-Authenticate"))
	} else {
		resp.Body.Close()
	}
	if resp := get("/v1/cluster/health", "wrong-key"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong key: status %d, want 403", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp = get("/v1/cluster/health", testKey)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health with key: status %d", resp.StatusCode)
	}
	var h workerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Slots != 3 {
		t.Fatalf("health payload %+v, want ok with 3 slots", h)
	}
}

// TestWorkerHandlerNoKey pins the trusted-network mode: an empty cluster key
// turns the gate off entirely.
func TestWorkerHandlerNoKey(t *testing.T) {
	m := jobs.NewManager(jobs.Options{RunJob: fakeRun(time.Millisecond)})
	defer m.Close()
	srv := httptest.NewServer(NewWorkerHandler(m, ""))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ungated /v1/jobs: status %d", resp.StatusCode)
	}
}

// TestCoordinatorHealthz pins the coordinator's /healthz upgrade: a JSON
// report naming every worker with health and load, replacing the bare-200
// body only on the coordinator.
func TestCoordinatorHealthz(t *testing.T) {
	w1 := startWorker(t, jobs.Options{MaxConcurrent: 2, RunJob: fakeRun(time.Millisecond)})
	w2 := startWorker(t, jobs.Options{MaxConcurrent: 2, RunJob: fakeRun(time.Millisecond)})
	coord, _, srv := testCoordinator(t, []*testWorker{w1, w2}, jobs.Options{MaxConcurrent: 4})
	waitHealthy(t, coord, 2)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h coordinatorHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "coordinator" || len(h.Workers) != 2 {
		t.Fatalf("healthz payload %+v", h)
	}
	for i, ws := range h.Workers {
		if !ws.Healthy || ws.Slots != 2 {
			t.Fatalf("worker %d not reported healthy with 2 slots: %+v", i, ws)
		}
	}
}

// TestPoolPlacement pins the placement rule: fewest in-flight jobs wins,
// config order breaks ties, unhealthy workers are skipped, and pick blocks
// until a worker recovers.
func TestPoolPlacement(t *testing.T) {
	a := &worker{name: "a", healthy: true, inflight: 2}
	b := &worker{name: "b", healthy: true, inflight: 1}
	c := &worker{name: "c", healthy: false}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &pool{ctx: ctx, cancel: cancel, workers: []*worker{a, b, c}, changed: make(chan struct{})}

	if w, err := p.pick(context.Background()); err != nil || w != b {
		t.Fatalf("pick = %v (%v), want b (least loaded)", w, err)
	}
	// b now ties a at 2: config order prefers a.
	if w, err := p.pick(context.Background()); err != nil || w != a {
		t.Fatalf("pick = %v (%v), want a (config-order tie-break)", w, err)
	}

	// No healthy worker: pick blocks, then resumes when one recovers.
	a.healthy, b.healthy = false, false
	got := make(chan *worker, 1)
	go func() {
		w, _ := p.pick(context.Background())
		got <- w
	}()
	select {
	case w := <-got:
		t.Fatalf("pick returned %v with no healthy worker", w.name)
	case <-time.After(20 * time.Millisecond):
	}
	p.mu.Lock()
	c.healthy = true
	p.broadcastLocked()
	p.mu.Unlock()
	select {
	case w := <-got:
		if w != c {
			t.Fatalf("pick = %v, want the recovered c", w.name)
		}
	case <-time.After(time.Second):
		t.Fatal("pick never woke after recovery")
	}

	// Cancellation unblocks a starved pick.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	a.healthy, b.healthy, c.healthy = false, false, false
	if _, err := p.pick(cctx); err == nil {
		t.Fatal("pick ignored cancelled context")
	}
}

// TestPoolBackoff pins the probe backoff: doubling per consecutive failure,
// bounded at 16× the interval.
func TestPoolBackoff(t *testing.T) {
	p := &pool{interval: 100 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 800, 1600, 1600, 1600}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}
