package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"nasaic/internal/jobs"
	"nasaic/pkg/nasaic"
)

// runningOn finds which worker replica is executing a remote job, by asking
// each worker's manager directly.
func runningOn(t *testing.T, workers []*testWorker) (*testWorker, *testWorker) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i, w := range workers {
			for _, j := range w.m.List() {
				if j.Snapshot().Status == jobs.StatusRunning {
					return w, workers[1-i]
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no worker ever ran the job")
	return nil, nil
}

// TestFailoverRedispatch is the worker-death acceptance test: a worker is
// killed mid-job (connections severed, listener closed — no graceful
// cancel), the coordinator re-dispatches to the surviving replica, and the
// deterministic re-run converges to the same terminal result. A client that
// disconnected early and resumes via Last-Event-ID after the failover sees
// the standard contract: an explicit `reset` frame where the bounded ring
// moved past its resume point, then a contiguous tail and the stable done
// frame — never an error, never a duplicate, never a silent gap.
func TestFailoverRedispatch(t *testing.T) {
	const episodes, ring = 60, 16
	pace := 5 * time.Millisecond

	w1 := startWorker(t, jobs.Options{MaxConcurrent: 1, RunJob: fakeRun(pace)})
	w2 := startWorker(t, jobs.Options{MaxConcurrent: 1, RunJob: fakeRun(pace)})
	workers := []*testWorker{w1, w2}
	coord, cm, srv := testCoordinator(t, workers, jobs.Options{MaxConcurrent: 2, EventBuffer: ring})
	waitHealthy(t, coord, 2)

	snap := postJob(t, srv.URL, jobs.Spec{Workload: "W3", Episodes: episodes, Seed: 7})

	// A client follows the stream briefly, then drops (network blip). It
	// remembers the last id it saw for the resume.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	early := readFrames(bufio.NewReader(resp.Body), 5)
	resp.Body.Close()
	if len(early) != 5 || early[4].event != "episode" {
		t.Fatalf("early frames: %+v", early)
	}
	lastSeen := early[4].id

	// Kill whichever replica is executing the job, mid-run.
	victim, survivor := runningOn(t, workers)
	victim.kill()

	// The coordinator re-dispatches; the job must converge on the survivor.
	j, err := cm.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job never settled after failover: %v", err)
	}
	final := j.Snapshot()
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("status %s (%s), want succeeded", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.Episodes != episodes {
		t.Fatalf("result %+v, want the deterministic %d-episode outcome", final.Result, episodes)
	}
	if name, _ := j.Assignment(); name != survivor.srv.URL {
		t.Fatalf("final binding %q, want the survivor %q", name, survivor.srv.URL)
	}

	// The client resumes where it left off. Its resume point (seq 5) has been
	// evicted from the coordinator's 16-event ring, so the stream must open
	// with an explicit reset naming the first retained sequence number, then
	// a contiguous tail whose payloads are the deterministic event bytes, then
	// the stable done frame.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.Itoa(lastSeen))
	resumed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Body.Close()
	frames := readFrames(bufio.NewReader(resumed.Body), ring+3)

	firstRetained := episodes - ring
	if frames[0].event != "reset" {
		t.Fatalf("resumed stream opened with %q, want reset", frames[0].event)
	}
	var rf struct {
		FirstSeq int `json:"first_seq"`
		Missed   int `json:"missed"`
	}
	if err := json.Unmarshal(frames[0].data, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.FirstSeq != firstRetained || rf.Missed != firstRetained-(lastSeen+1) {
		t.Fatalf("reset frame %+v, want first_seq %d missed %d", rf, firstRetained, firstRetained-(lastSeen+1))
	}
	if len(frames) != 1+ring+1 {
		t.Fatalf("resumed stream carried %d frames, want reset + %d episodes + done", len(frames), ring)
	}
	for i, f := range frames[1 : 1+ring] {
		seq := firstRetained + i
		if f.event != "episode" || f.id != seq {
			t.Fatalf("resumed frame %d: event %q id %d, want episode %d", i, f.event, f.id, seq)
		}
		want, err := nasaic.EncodeEvent(fakeEvent(7, seq))
		if err != nil {
			t.Fatal(err)
		}
		if string(f.data) != string(want) {
			t.Fatalf("resumed frame %d diverged after failover:\n got %s\nwant %s", seq, f.data, want)
		}
	}
	done := frames[len(frames)-1]
	if done.event != "done" || done.id != episodes {
		t.Fatalf("last resumed frame: %q id %d, want done %d", done.event, done.id, episodes)
	}
}

// TestCoordinatorReattach is the coordinator-restart acceptance test: a
// second coordinator recovering from a snapshot of the first one's journal
// (taken mid-run, torn tail and all — exactly what a crash leaves behind)
// finds the journaled job→worker binding, re-attaches to the still-running
// remote job instead of re-dispatching it, resumes the worker's stream at
// its ring's next sequence number, and converges to the identical terminal
// result with a gap-free event ring.
func TestCoordinatorReattach(t *testing.T) {
	const episodes = 150
	pace := 5 * time.Millisecond

	w := startWorker(t, jobs.Options{MaxConcurrent: 1, RunJob: fakeRun(pace)})
	dir1 := t.TempDir()
	coord1, m1, srv1 := testCoordinator(t, []*testWorker{w}, jobs.Options{MaxConcurrent: 1, DataDir: dir1})
	waitHealthy(t, coord1, 1)

	snap := postJob(t, srv1.URL, jobs.Spec{Workload: "W3", Episodes: episodes, Seed: 3})
	j1, err := m1.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Let the run get well underway, then snapshot the journal directory —
	// a file-level copy while the journal is hot, as a crash-plus-restore
	// would see it (recovery truncates any torn tail by design).
	deadline := time.Now().Add(10 * time.Second)
	for j1.NextSeq() < 30 {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at seq %d", j1.NextSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}
	dir2 := t.TempDir()
	if err := os.CopyFS(dir2, os.DirFS(dir1)); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second coordinator over the snapshot, same worker fleet.
	coord2, err := New(Config{
		Workers:       []string{w.srv.URL},
		Key:           testKey,
		ProbeInterval: 20 * time.Millisecond,
		RetryDelay:    10 * time.Millisecond,
		StreamRetries: 3,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	m2 := jobs.NewManager(jobs.Options{MaxConcurrent: 1, DataDir: dir2, Executor: coord2, Logf: t.Logf})
	defer m2.Close()

	j2, err := m2.Get(snap.ID)
	if err != nil {
		t.Fatalf("restarted coordinator forgot the journaled job: %v", err)
	}
	if name, remote := j2.Assignment(); name != w.srv.URL || remote == "" {
		t.Fatalf("recovered binding %q/%q, want the journaled worker", name, remote)
	}
	// Re-attachment, not re-dispatch: the worker must only ever have seen
	// one submission for this spec.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j2.Wait(ctx); err != nil {
		t.Fatalf("re-attached job never settled: %v", err)
	}
	if n := len(w.m.List()); n != 1 {
		t.Fatalf("worker saw %d jobs, want 1 (re-attach must not re-dispatch)", n)
	}

	final := j2.Snapshot()
	if final.Status != jobs.StatusSucceeded || final.Result == nil || final.Result.Episodes != episodes {
		t.Fatalf("re-attached outcome %s %+v, want the %d-episode success", final.Status, final.Result, episodes)
	}
	// The ring is continuous across the restart: journaled prefix + streamed
	// tail, every payload the deterministic bytes.
	evs, start, _ := j2.Events(0)
	if start != 0 || len(evs) != episodes {
		t.Fatalf("recovered ring starts at %d with %d events, want a gap-free 0..%d", start, len(evs), episodes)
	}
	for i, ev := range evs {
		if ev != fakeEvent(3, i) {
			t.Fatalf("ring event %d diverged across the restart: %+v vs %+v", i, ev, fakeEvent(3, i))
		}
	}

	// The original coordinator also settles identically (both were streaming
	// the same remote run).
	if err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if s1 := j1.Snapshot(); s1.Status != jobs.StatusSucceeded || s1.Result.Episodes != episodes {
		t.Fatalf("original coordinator diverged: %s %+v", s1.Status, s1.Result)
	}
}
