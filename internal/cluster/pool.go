package cluster

import (
	"context"
	"errors"
	"sync"
	"time"
)

// worker is one replica in the pool. The client is immutable; everything
// else is guarded by the pool's mu.
type worker struct {
	name   string // base URL, the identity journaled in assignment records
	client *client

	healthy  bool
	failures int // consecutive probe failures, drives the backoff
	inflight int // coordinator-tracked jobs currently bound to this worker
	// Last successful probe's load numbers, for Retry-After aggregation and
	// the coordinator /healthz report.
	pending, running, slots int
}

// errPoolClosed is returned by pick when the coordinator shut down.
var errPoolClosed = errors.New("cluster: worker pool closed")

// pool owns the worker set: health monitoring, placement and load
// aggregation. Each worker gets its own monitor goroutine probing
// /v1/cluster/health at the configured interval, backing off exponentially
// (bounded at 16× the interval) while the worker stays unreachable so a dead
// replica is not hammered, yet recovers within one interval once a probe
// lands.
type pool struct {
	interval time.Duration
	logf     func(string, ...any)
	ctx      context.Context // cancelled by close; bounds in-flight probes
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	// mu guards placement state; every dispatch decision takes it, so no
	// logging or network IO may run under it (enforced by nasaiclint).
	mu      sync.Mutex //lint:guard io
	workers []*worker
	changed chan struct{} // closed and replaced whenever placement state improves
}

func newPool(workers []*worker, interval time.Duration, logf func(string, ...any)) *pool {
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxplumb pool lifecycle root: health probes outlive any caller; close cancels it
	p := &pool{
		interval: interval,
		logf:     logf,
		ctx:      ctx,
		cancel:   cancel,
		workers:  workers,
		changed:  make(chan struct{}),
	}
	for _, w := range workers {
		p.wg.Add(1)
		go p.monitor(w)
	}
	return p
}

func (p *pool) close() {
	p.cancel()
	p.wg.Wait()
}

// broadcastLocked wakes every pick waiting for placement state to improve;
// callers hold p.mu.
func (p *pool) broadcastLocked() {
	close(p.changed)
	p.changed = make(chan struct{})
}

// monitor is one worker's health loop. A successful probe marks the worker
// healthy, refreshes its load numbers and wakes waiting placements; a
// failure marks it unhealthy immediately (placement stops at once) and
// stretches the next probe exponentially up to the 16×interval bound.
func (p *pool) monitor(w *worker) {
	defer p.wg.Done()
	delay := time.Duration(0) // first probe fires immediately
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-time.After(delay):
		}
		probeCtx, cancel := context.WithTimeout(p.ctx, p.probeTimeout())
		h, err := w.client.health(probeCtx)
		cancel()
		if p.ctx.Err() != nil {
			return
		}
		p.mu.Lock()
		if err != nil {
			wasHealthy := w.healthy
			w.healthy = false
			w.failures++
			delay = p.backoff(w.failures)
			p.mu.Unlock()
			if wasHealthy {
				p.logf("cluster: worker %s unhealthy: %v", w.name, err)
			}
			continue
		}
		recovered := !w.healthy && w.failures > 0
		w.healthy = true
		w.failures = 0
		w.pending, w.running, w.slots = h.Pending, h.Running, h.Slots
		p.broadcastLocked()
		p.mu.Unlock()
		if recovered {
			p.logf("cluster: worker %s healthy again", w.name)
		}
		delay = p.interval
	}
}

func (p *pool) probeTimeout() time.Duration {
	if t := 2 * p.interval; t > time.Second {
		return t
	}
	return time.Second
}

// backoff is the probe delay after n consecutive failures: interval ×
// 2^(n-1), bounded at 16× the interval.
func (p *pool) backoff(n int) time.Duration {
	d := p.interval
	for i := 1; i < n && d < 16*p.interval; i++ {
		d *= 2
	}
	if d > 16*p.interval {
		d = 16 * p.interval
	}
	return d
}

// pick reserves the least-loaded healthy worker (fewest coordinator-tracked
// in-flight jobs, config order breaking ties), blocking until one is
// available or ctx is done. The caller must pair it with release.
func (p *pool) pick(ctx context.Context) (*worker, error) {
	for {
		p.mu.Lock()
		var best *worker
		for _, w := range p.workers {
			if w.healthy && (best == nil || w.inflight < best.inflight) {
				best = w
			}
		}
		if best != nil {
			best.inflight++
			p.mu.Unlock()
			return best, nil
		}
		ch := p.changed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.ctx.Done():
			return nil, errPoolClosed
		}
	}
}

// bind reserves the named worker regardless of its probed health — a
// restarted coordinator re-attaches to journaled bindings before the first
// probe round completes, and the follow loop's own retries sort out a
// genuinely dead worker. Returns nil when the name is no longer configured
// (the caller clears the binding and places afresh). Pair with release.
func (p *pool) bind(name string) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.name == name {
			w.inflight++
			return w
		}
	}
	return nil
}

// release returns a reservation taken by pick or bind and wakes placements
// waiting for capacity.
func (p *pool) release(w *worker) {
	p.mu.Lock()
	w.inflight--
	p.broadcastLocked()
	p.mu.Unlock()
}

// fail marks the worker unhealthy immediately (ahead of its next probe), so
// a placement decision never follows a stream that just broke. The monitor
// flips it back once a probe succeeds.
func (p *pool) fail(w *worker) {
	p.mu.Lock()
	if w.healthy {
		w.healthy = false
		w.failures++
	}
	p.mu.Unlock()
}

// drainEstimate aggregates the healthy workers' last-probed queue depths and
// slot counts — the cluster-wide numbers jobs.DrainEstimator feeds into
// Retry-After hints. ok is false when no worker is healthy (the caller falls
// back to the single-node formula).
func (p *pool) drainEstimate() (queued, slots int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if !w.healthy {
			continue
		}
		queued += w.pending
		slots += w.slots
		ok = true
	}
	return queued, slots, ok
}

// WorkerStatus is one worker's row in the coordinator's /healthz report.
type WorkerStatus struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	InFlight int    `json:"in_flight"`
	Pending  int    `json:"pending"`
	Running  int    `json:"running"`
	Slots    int    `json:"slots"`
}

// status reports every worker in config order.
func (p *pool) status() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStatus, 0, len(p.workers))
	for _, w := range p.workers {
		out = append(out, WorkerStatus{
			Name:     w.name,
			Healthy:  w.healthy,
			InFlight: w.inflight,
			Pending:  w.pending,
			Running:  w.running,
			Slots:    w.slots,
		})
	}
	return out
}
