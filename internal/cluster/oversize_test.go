package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"nasaic/internal/jobs"
	"nasaic/pkg/nasaic"
)

// TestOversizedDoneFrame pins the stream parser against the one SSE line
// that genuinely grows without bound: the done frame's data payload carries
// the job's full terminal snapshot, and a long run's explored-solutions
// array easily passes any fixed line cap (a 1MB scanner limit made every
// follow attempt fail with "token too long" and re-dispatch forever). The
// coordinator must proxy a multi-megabyte done frame intact.
func TestOversizedDoneFrame(t *testing.T) {
	big := strings.Repeat("x", 3<<20)
	run := func(ctx context.Context, j *jobs.Job) (*nasaic.Result, error) {
		j.EmitEvent(0, fakeEvent(j.Spec.Seed, 0))
		return &nasaic.Result{
			Workload: j.Spec.Workload,
			Episodes: j.Spec.Episodes,
			Explored: []*nasaic.Solution{{Tasks: []nasaic.TaskResult{{Architecture: big}}}},
		}, nil
	}
	w := startWorker(t, jobs.Options{MaxConcurrent: 1, RunJob: run})
	coord, cm, srv := testCoordinator(t, []*testWorker{w}, jobs.Options{MaxConcurrent: 1})
	waitHealthy(t, coord, 1)

	snap := postJob(t, srv.URL, jobs.Spec{Workload: "W3", Episodes: 1, Seed: 5})
	j, err := cm.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job with oversized done frame never settled: %v", err)
	}
	final := j.Snapshot()
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("status %s (%s), want succeeded", final.Status, final.Error)
	}
	if final.Result == nil || len(final.Result.Explored) != 1 ||
		final.Result.Explored[0].Tasks[0].Architecture != big {
		t.Fatal("oversized result did not round-trip through the stream intact")
	}
	// Exactly one remote submission: the big frame must not have looked like
	// a lost worker.
	if n := len(w.m.List()); n != 1 {
		t.Fatalf("worker saw %d submissions, want 1 (no spurious re-dispatch)", n)
	}
}
