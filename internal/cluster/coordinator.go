package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"nasaic/internal/jobs"
	"nasaic/pkg/nasaic"
)

// Config configures a Coordinator. Zero durations select production
// defaults; tests shrink them to force failovers quickly.
type Config struct {
	// Workers are the replica base URLs (http://host:port). At least one is
	// required.
	Workers []string
	// Key is the cluster shared key every worker request carries as a bearer
	// credential — distinct from tenant API keys, which never leave the
	// coordinator. Empty disables cluster auth (trusted-network deployments).
	Key string
	// ProbeInterval is the worker health-check period. <=0 selects 2s.
	ProbeInterval time.Duration
	// StreamTimeout bounds the silence on a worker SSE stream before it is
	// presumed dead. Workers heartbeat idle streams every 15s, so this must
	// comfortably exceed that. <=0 selects 60s.
	StreamTimeout time.Duration
	// RetryDelay is the base backoff between stream retries against the same
	// worker (doubled per attempt, bounded at 8×). <=0 selects 500ms.
	RetryDelay time.Duration
	// StreamRetries is how many consecutive stream failures against one
	// worker the coordinator tolerates before declaring it lost and
	// re-dispatching the job elsewhere. <=0 selects 4.
	StreamRetries int
	// HTTPClient overrides the worker-facing HTTP client (tests inject
	// httptest transports). Nil selects a fresh default client.
	HTTPClient *http.Client
	// Logf receives dispatch and failover diagnostics. Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 2 * time.Second
}

func (c Config) streamTimeout() time.Duration {
	if c.StreamTimeout > 0 {
		return c.StreamTimeout
	}
	return 60 * time.Second
}

func (c Config) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return 500 * time.Millisecond
}

func (c Config) streamRetries() int {
	if c.StreamRetries > 0 {
		return c.StreamRetries
	}
	return 4
}

func (c Config) logf() func(string, ...any) {
	if c.Logf != nil {
		return c.Logf
	}
	return func(string, ...any) {}
}

// Coordinator dispatches granted jobs to worker replicas. It implements
// jobs.Executor (plugged into the manager via jobs.Options.Executor) and
// jobs.DrainEstimator (cluster-wide Retry-After hints). Construct with New,
// wire into a Manager, and Close after the manager drains.
type Coordinator struct {
	cfg  Config
	pool *pool
	logf func(string, ...any)
}

// New validates the config and starts the worker health monitors. The
// coordinator is usable immediately; placement blocks until the first
// successful probe marks a worker healthy, while journaled re-attachments
// proceed without waiting.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: at least one worker URL is required")
	}
	httpClient := cfg.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	seen := make(map[string]bool)
	workers := make([]*worker, 0, len(cfg.Workers))
	for _, raw := range cfg.Workers {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		if name == "" {
			return nil, fmt.Errorf("cluster: empty worker URL in %q", cfg.Workers)
		}
		if !strings.Contains(name, "://") {
			name = "http://" + name
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate worker %s", name)
		}
		seen[name] = true
		workers = append(workers, &worker{
			name: name,
			client: &client{
				base:          name,
				key:           cfg.Key,
				http:          httpClient,
				streamTimeout: cfg.streamTimeout(),
			},
		})
	}
	logf := cfg.logf()
	return &Coordinator{
		cfg:  cfg,
		pool: newPool(workers, cfg.probeInterval(), logf),
		logf: logf,
	}, nil
}

// Close stops the health monitors. Call it after the job manager has
// drained (manager first, coordinator second): in-flight Execute calls are
// cancelled through their job contexts, not by Close.
func (c *Coordinator) Close() {
	c.pool.close()
}

// Status reports every worker's health and load in config order (the
// coordinator /healthz payload).
func (c *Coordinator) Status() []WorkerStatus {
	return c.pool.status()
}

// DrainEstimate implements jobs.DrainEstimator: cluster-wide queue depth and
// slot count for Retry-After hints on quota rejections.
func (c *Coordinator) DrainEstimate() (queued, slots int, ok bool) {
	return c.pool.drainEstimate()
}

// Execute implements jobs.Executor: it runs the granted job on a worker
// replica and proxies its event stream into the job's local ring. The loop
// survives every worker-side failure — transient stream drops retry against
// the same worker with bounded backoff, and a lost worker (retries
// exhausted, or a 404 proving the remote job is gone) clears the journaled
// binding and re-dispatches to another replica, where the deterministic
// re-run converges to the identical result. Only ctx cancellation (client
// DELETE or manager shutdown) or a terminal remote outcome ends the loop.
func (c *Coordinator) Execute(ctx context.Context, j *jobs.Job) (*nasaic.Result, error) {
	for {
		w, remoteID, err := c.place(ctx, j)
		if err != nil {
			return nil, err
		}
		out := c.followWithRetry(ctx, j, w, remoteID)
		switch {
		case out.done:
			c.pool.release(w)
			return out.res, out.err
		case ctx.Err() != nil:
			res := c.abandon(j, w, remoteID)
			c.pool.release(w)
			return res, ctx.Err()
		default:
			c.logf("cluster: job %s: worker %s lost (%v); re-dispatching", j.ID, w.name, out.err)
			c.pool.fail(w)
			c.pool.release(w)
			// If the worker is in fact alive (the stream failed for some other
			// reason), the orphaned remote job would keep holding one of its
			// slots; cancel it in the background before the binding is
			// forgotten. A genuinely dead worker just makes this a no-op.
			go func(cl *client, remoteID string) {
				cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second) //lint:allow ctxplumb deliberately detached: orphan cleanup must outlive the failed dispatch
				defer cancel()
				_ = cl.cancel(cctx, remoteID)
			}(w.client, remoteID)
			j.SetAssignment("", "")
		}
	}
}

// place resolves the job to a (worker, remote job ID) pair: an existing
// journaled binding re-attaches directly (even before the first health probe
// — the follow loop handles a dead worker), otherwise the least-loaded
// healthy worker gets the spec and the new binding journals before any event
// flows. Worker-side quota rejections (429) pause briefly and re-place
// rather than marking the replica unhealthy; any other 4xx means the worker
// rejected the spec itself, which fails the job rather than looping forever.
func (c *Coordinator) place(ctx context.Context, j *jobs.Job) (*worker, string, error) {
	if name, remoteID := j.Assignment(); name != "" && remoteID != "" {
		if w := c.pool.bind(name); w != nil {
			c.logf("cluster: job %s: re-attaching to %s (remote %s)", j.ID, name, remoteID)
			return w, remoteID, nil
		}
		c.logf("cluster: job %s: bound worker %s no longer configured; re-dispatching", j.ID, name)
		j.SetAssignment("", "")
	}
	for {
		w, err := c.pool.pick(ctx)
		if err != nil {
			return nil, "", err
		}
		snap, err := w.client.submit(ctx, j.Spec)
		if err == nil {
			j.SetAssignment(w.name, snap.ID)
			c.logf("cluster: job %s: dispatched to %s (remote %s)", j.ID, w.name, snap.ID)
			return w, snap.ID, nil
		}
		c.pool.release(w)
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		var re *remoteError
		if errors.As(err, &re) {
			switch {
			case re.status == http.StatusTooManyRequests:
				// Saturated, not dead: give its queue a moment, place again.
				if serr := sleepCtx(ctx, c.cfg.retryDelay()); serr != nil {
					return nil, "", serr
				}
				continue
			case re.status >= 400 && re.status < 500:
				return nil, "", fmt.Errorf("cluster: worker %s rejected job %s: %w", w.name, j.ID, err)
			}
		}
		c.logf("cluster: job %s: submit to %s failed: %v", j.ID, w.name, err)
		c.pool.fail(w)
	}
}

// outcome is a follow attempt's verdict: done carries the remote terminal
// result (err mapping exactly as a local run's — nil, context.Canceled, or
// the failure), !done means the worker is lost and err says why.
type outcome struct {
	done bool
	res  *nasaic.Result
	err  error
}

// followWithRetry streams the remote job, retrying transient stream drops
// against the same worker with doubling, bounded backoff. It gives up — so
// Execute re-dispatches — after StreamRetries consecutive failures, or
// immediately on errRemoteGone (the remote job provably no longer exists).
func (c *Coordinator) followWithRetry(ctx context.Context, j *jobs.Job, w *worker, remoteID string) outcome {
	delay := c.cfg.retryDelay()
	for attempt := 1; ; attempt++ {
		out, err := c.follow(ctx, j, w, remoteID)
		if out != nil {
			return *out
		}
		if ctx.Err() != nil {
			return outcome{err: ctx.Err()}
		}
		if errors.Is(err, errRemoteGone) || attempt >= c.cfg.streamRetries() {
			return outcome{err: err}
		}
		c.logf("cluster: job %s: stream from %s failed (%v); retry %d in %v",
			j.ID, w.name, err, attempt, delay)
		if sleepCtx(ctx, delay) != nil {
			return outcome{err: ctx.Err()}
		}
		if delay *= 2; delay > 8*c.cfg.retryDelay() {
			delay = 8 * c.cfg.retryDelay()
		}
	}
}

// follow runs one SSE pass over the remote job, resuming at the local
// ring's next sequence number (duplicates a re-attached worker replays are
// dropped by EmitEvent; a worker-side reset maps to SkipTo so subscribers
// see the same gap). A done frame ends the pass with the remote terminal
// outcome translated to the Executor contract.
func (c *Coordinator) follow(ctx context.Context, j *jobs.Job, w *worker, remoteID string) (*outcome, error) {
	var out *outcome
	err := w.client.stream(ctx, remoteID, j.NextSeq()-1, func(f sseFrame) error {
		switch f.event {
		case "episode":
			ev, err := nasaic.DecodeEvent(f.data)
			if err != nil {
				return fmt.Errorf("cluster: undecodable episode frame from %s: %w", w.name, err)
			}
			j.EmitEvent(f.id, ev)
		case "reset":
			var rf struct {
				FirstSeq int `json:"first_seq"`
			}
			if err := json.Unmarshal(f.data, &rf); err != nil {
				return fmt.Errorf("cluster: undecodable reset frame from %s: %w", w.name, err)
			}
			j.SkipTo(rf.FirstSeq)
		case "done":
			var snap jobs.Snapshot
			if err := json.Unmarshal(f.data, &snap); err != nil {
				return fmt.Errorf("cluster: undecodable done frame from %s: %w", w.name, err)
			}
			out = &outcome{done: true, res: snap.Result}
			switch snap.Status {
			case jobs.StatusSucceeded:
			case jobs.StatusCancelled:
				out.err = context.Canceled
			default:
				if snap.Error != "" {
					out.err = errors.New(snap.Error)
				} else {
					out.err = fmt.Errorf("cluster: remote job %s on %s failed", remoteID, w.name)
				}
			}
			return errStreamDone
		}
		return nil
	})
	if out != nil {
		return out, nil
	}
	return nil, err
}

// abandon cleans up after ctx cancellation: cancel the remote job (under a
// fresh bounded context — the job's own is already done) and briefly poll
// for its terminal snapshot so the client's cancelled job still carries the
// best-so-far partial result, as in standalone mode. Best effort: a nil
// result just means the worker could not be reached in time.
func (c *Coordinator) abandon(j *jobs.Job, w *worker, remoteID string) *nasaic.Result {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second) //lint:allow ctxplumb deliberately detached: abandon runs while the job ctx is already dead
	defer cancel()
	if err := w.client.cancel(ctx, remoteID); err != nil {
		c.logf("cluster: job %s: cancel on %s failed: %v", j.ID, w.name, err)
		return nil
	}
	for {
		snap, err := w.client.get(ctx, remoteID)
		if err != nil {
			c.logf("cluster: job %s: no terminal snapshot from %s after cancel: %v", j.ID, w.name, err)
			return nil
		}
		if snap.Status.Terminal() {
			return snap.Result
		}
		if sleepCtx(ctx, 50*time.Millisecond) != nil {
			return nil
		}
	}
}

// sleepCtx sleeps d or until ctx is done, returning ctx's error in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
