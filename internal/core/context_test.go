package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"nasaic/internal/evalcache"
	"nasaic/internal/workload"
)

func newSharedCacheForTest() *evalcache.Cache[HWMetrics] {
	return evalcache.New[HWMetrics](evalcache.Options{})
}

func ctxTestConfig(episodes int) Config {
	cfg := DefaultConfig()
	cfg.Episodes = episodes
	cfg.Workers = 4
	return cfg
}

// waitGoroutines polls until the goroutine count drops back to within slack
// of base (worker goroutines park asynchronously after wg.Wait returns).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextPreCancelled: an already-cancelled context returns
// immediately with the context error, an empty partial result, and no
// goroutines left behind.
func TestRunContextPreCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	x, err := New(workload.W3(), ctxTestConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := x.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("pre-cancelled RunContext took %v", el)
	}
	if res == nil {
		t.Fatal("RunContext returned nil partial result")
	}
	if len(res.History) != 0 {
		t.Fatalf("pre-cancelled run completed %d episodes, want 0", len(res.History))
	}
	waitGoroutines(t, base)
}

// TestRunContextCancelMidRun cancels from an episode callback and expects a
// prompt partial return with the completed episode prefix intact and no
// goroutine leaks.
func TestRunContextCancelMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	x, err := New(workload.W3(), ctxTestConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 5
	x.OnEpisode = func(ev EpisodeEvent) {
		if ev.Stats.Episode == stopAfter {
			cancel()
		}
	}
	start := time.Now()
	res, err := x.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("cancelled RunContext took %v", el)
	}
	if got := len(res.History); got != stopAfter+1 {
		t.Fatalf("completed %d episodes, want %d", got, stopAfter+1)
	}
	waitGoroutines(t, base)
}

// TestRunContextDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	x, err := New(workload.W3(), ctxTestConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err = x.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextMatchesRun: an uncancelled RunContext is bit-identical to
// Run for the same seed.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := ctxTestConfig(30)
	runA := func() *Result {
		x, err := New(workload.W3(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := x.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runB := func() *Result {
		x, err := New(workload.W3(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return x.Run()
	}
	a, b := runA(), runB()
	if fa, fb := outcomeFingerprint(a), outcomeFingerprint(b); fa != fb {
		t.Fatalf("RunContext diverged from Run:\n%s\nvs\n%s", fa, fb)
	}
}

// TestRunEvolutionContextCancelled covers the EA path's cancellation.
func TestRunEvolutionContextCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	x, err := New(workload.W3(), ctxTestConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	ec := DefaultEvolutionConfig()
	ec.Generations = 500
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gen := 0
	x.OnEpisode = func(EpisodeEvent) {
		gen++
		if gen == 2 {
			cancel()
		}
	}
	_, err = x.RunEvolutionContext(ctx, ec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)

	// A pre-cancelled context must abort during the initial population, not
	// after evaluating all of it.
	x2, err := New(workload.W3(), ctxTestConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	start := time.Now()
	res, err := x2.RunEvolutionContext(ctx2, ec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled EA: err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("pre-cancelled EA took %v", el)
	}
	if res == nil || len(res.History) != 0 {
		t.Fatalf("pre-cancelled EA completed generations: %+v", res)
	}
}

// TestOnEpisodeEvents verifies the streaming hook: one event per episode, in
// order, with the best-so-far solution monotonically improving.
func TestOnEpisodeEvents(t *testing.T) {
	x, err := New(workload.W3(), ctxTestConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	var events []EpisodeEvent
	x.OnEpisode = func(ev EpisodeEvent) { events = append(events, ev) }
	res, err := x.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 25 {
		t.Fatalf("got %d events, want 25", len(events))
	}
	lastBest := 0.0
	for i, ev := range events {
		if ev.Stats.Episode != i {
			t.Fatalf("event %d has episode %d", i, ev.Stats.Episode)
		}
		if ev.Best != nil {
			if ev.Best.Weighted < lastBest {
				t.Fatalf("best-so-far regressed at episode %d: %v < %v", i, ev.Best.Weighted, lastBest)
			}
			lastBest = ev.Best.Weighted
		}
	}
	if res.Best != nil && len(events) > 0 {
		last := events[len(events)-1]
		if last.Best == nil {
			t.Fatal("final event missing best-so-far despite feasible result")
		}
	}
}

// TestSharedHWCacheAcrossExplorers: two explorers sharing one cache must
// produce bit-identical results to private caches, with the second run
// served largely from the first run's entries.
func TestSharedHWCacheAcrossExplorers(t *testing.T) {
	cfg := ctxTestConfig(15)
	run := func(cfg Config) *Result {
		x, err := New(workload.W3(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return x.Run()
	}
	private := run(cfg)

	shared := cfg
	shared.SharedHWCache = newSharedCacheForTest()
	first := run(shared)
	second := run(shared)
	if fa, fb := outcomeFingerprint(private), outcomeFingerprint(first); fa != fb {
		t.Fatalf("shared-cache first run diverged from private-cache run")
	}
	if fa, fb := outcomeFingerprint(first), outcomeFingerprint(second); fa != fb {
		t.Fatalf("second shared-cache run diverged")
	}
	if second.HWCacheHits <= first.HWCacheHits {
		t.Fatalf("second run not warm-started: hits %d vs %d", second.HWCacheHits, first.HWCacheHits)
	}
}
