package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"nasaic/internal/accel"
	"nasaic/internal/dnn"
	"nasaic/internal/nn"
	"nasaic/internal/rl"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Solution is one fully evaluated (architectures, accelerator) pair.
type Solution struct {
	Episode int

	ArchChoices [][]int // per task, option indices into the task space
	Networks    []*dnn.Network
	Design      accel.Design

	Accuracies []float64
	Weighted   float64

	Latency  int64
	EnergyNJ float64
	AreaUM2  float64

	Penalty  float64
	Reward   float64
	Feasible bool

	// actions is the controller action vector that produced the solution
	// (kept for the refinement phase).
	actions []int
}

// String renders a compact report line.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ep%d %s", s.Episode, s.Design)
	for i, a := range s.Accuracies {
		fmt.Fprintf(&b, " acc%d=%.4f", i, a)
	}
	fmt.Fprintf(&b, " L=%.3g E=%.3g A=%.3g feasible=%v",
		float64(s.Latency), s.EnergyNJ, s.AreaUM2, s.Feasible)
	return b.String()
}

// EpisodeStats records per-episode search telemetry.
type EpisodeStats struct {
	Episode     int
	Reward      float64
	BestPenalty float64
	Pruned      bool // early pruning fired: no feasible hardware, training skipped
	Feasible    bool
	// HWEvals and HWCacheHits are the episode's deltas of the evaluator's
	// computation and cache-hit counters; HWDeduped counts candidates the
	// batch-level dedup collapsed before fan-out. They describe evaluation
	// cost only — search results are identical whatever their values.
	HWEvals     int
	HWCacheHits int
	HWDeduped   int
}

// Result is the outcome of one NASAIC exploration.
type Result struct {
	Workload workload.Workload
	Best     *Solution   // highest weighted accuracy among feasible solutions
	Explored []*Solution // every feasible solution found (Fig. 6 green diamonds)
	History  []EpisodeStats
	// Trainings and HWEvals count evaluator work; Pruned counts episodes the
	// early-pruning path skipped training for.
	Trainings int
	HWEvals   int
	Pruned    int
	// HWRequests counts hardware evaluation requests; HWCacheHits the
	// requests the evalcache layer served without recomputation; HWDeduped
	// the identical in-batch candidates collapsed before worker fan-out.
	// HWEvals above is the computations actually performed.
	HWRequests  int
	HWCacheHits int
	HWDeduped   int
	// LayerCostRequests counts cost-model queries seen by the evaluator's
	// per-layer memo; LayerCostHits the queries it served without running
	// the MAESTRO model (see Config.LayerCostMemo).
	LayerCostRequests int
	LayerCostHits     int
}

// HWCacheHitPct returns the percentage of hardware requests served from the
// evaluation cache.
func (r *Result) HWCacheHitPct() float64 {
	return stats.Pct(int64(r.HWCacheHits), int64(r.HWRequests))
}

// LayerCostHitPct returns the percentage of cost-model queries served by the
// per-layer memo.
func (r *Result) LayerCostHitPct() float64 {
	return stats.Pct(int64(r.LayerCostHits), int64(r.LayerCostRequests))
}

// EpisodeEvent is the streaming progress notification delivered to
// Explorer.OnEpisode after every episode (RL mode) or generation (EA mode).
type EpisodeEvent struct {
	// Stats is the finished episode's telemetry.
	Stats EpisodeStats
	// Best is the best-so-far solution (nil before the first feasible one).
	// It is shared with the eventual Result and must not be mutated.
	Best *Solution
	// Explored is the running count of feasible solutions found.
	Explored int
}

// Explorer runs the NASAIC search for one workload.
type Explorer struct {
	W   workload.Workload
	Cfg Config

	// OnEpisode, when non-nil, is invoked synchronously on the exploration
	// goroutine after every episode. It must not call back into the
	// explorer; a slow handler slows the search down but never changes its
	// results.
	OnEpisode func(EpisodeEvent)

	eval       *Evaluator
	ctrl       *rl.Controller
	archLen    int   // total architecture decisions (all task segments)
	taskOffset []int // decision offset of each task segment
	hwOffset   int   // decision offset of the hardware segments
	hwDeduped  int   // in-batch duplicate candidates collapsed before fan-out
}

// New builds an explorer; the controller's decision sequence is the
// concatenation of every task's hyperparameter segment followed by every
// sub-accelerator's ⟨dataflow, #PEs, NoC BW⟩ segment (Fig. 5).
func New(w workload.Workload, cfg Config) (*Explorer, error) {
	eval, err := NewEvaluator(w, cfg)
	if err != nil {
		return nil, err
	}
	var specs []rl.DecisionSpec
	var taskOffset []int
	for ti, t := range w.Tasks {
		taskOffset = append(taskOffset, len(specs))
		for _, d := range t.Space.Decisions {
			specs = append(specs, rl.DecisionSpec{
				Name:       fmt.Sprintf("t%d.%s", ti, d.Name),
				NumOptions: len(d.Options),
			})
		}
	}
	archLen := len(specs)
	hw := cfg.HW
	for si := 0; si < hw.NumSubs; si++ {
		specs = append(specs,
			rl.DecisionSpec{Name: fmt.Sprintf("aic%d.df", si+1), NumOptions: len(hw.Styles)},
			rl.DecisionSpec{Name: fmt.Sprintf("aic%d.pe", si+1), NumOptions: len(hw.PEOptions)},
			rl.DecisionSpec{Name: fmt.Sprintf("aic%d.bw", si+1), NumOptions: len(hw.BWOptions)},
		)
	}
	ctrl := rl.NewController(specs, cfg.Hidden, stats.NewRNG(cfg.Seed))
	return &Explorer{
		W: w, Cfg: cfg,
		eval: eval, ctrl: ctrl,
		archLen: archLen, taskOffset: taskOffset, hwOffset: archLen,
	}, nil
}

// Evaluator exposes the underlying evaluator (bounds, penalty, HAP access)
// for harnesses and baselines.
func (x *Explorer) Evaluator() *Evaluator { return x.eval }

// decodeArch splits a rollout's architecture actions per task and builds the
// networks.
func (x *Explorer) decodeArch(actions []int) ([][]int, []*dnn.Network, error) {
	choices := make([][]int, len(x.W.Tasks))
	nets := make([]*dnn.Network, len(x.W.Tasks))
	for ti, t := range x.W.Tasks {
		off := x.taskOffset[ti]
		n := t.Space.NumChoices()
		choices[ti] = append([]int(nil), actions[off:off+n]...)
		net, err := t.Space.Decode(choices[ti])
		if err != nil {
			return nil, nil, err
		}
		nets[ti] = net
	}
	return choices, nets, nil
}

// decodeDesign builds the accelerator design from a rollout's hardware
// actions.
func (x *Explorer) decodeDesign(actions []int) accel.Design {
	hw := x.Cfg.HW
	subs := make([]accel.SubAccel, hw.NumSubs)
	for si := 0; si < hw.NumSubs; si++ {
		off := x.hwOffset + 3*si
		subs[si] = accel.SubAccel{
			DF:  hw.Styles[actions[off]],
			PEs: hw.PEOptions[actions[off+1]],
			BW:  hw.BWOptions[actions[off+2]],
		}
	}
	return accel.NewDesign(subs...)
}

// hwMask marks the hardware segment steps (SA=0, SH=1 credit mask).
func (x *Explorer) hwMask() []bool {
	mask := make([]bool, x.ctrl.NumDecisions())
	for i := x.hwOffset; i < len(mask); i++ {
		mask[i] = true
	}
	return mask
}

// Run executes the full co-exploration and returns the result. It is
// deterministic in Config.Seed.
func (x *Explorer) Run() *Result {
	res, _ := x.RunContext(context.Background()) //lint:allow ctxplumb compat shim: non-ctx public API delegates to RunContext
	return res
}

// RunContext is Run with cooperative cancellation: the context is checked
// every episode and threaded through the hardware-evaluation worker pool into
// the HAP solver, so cancellation or a deadline aborts the search promptly
// and leaves no goroutines behind. On cancellation it returns the partial
// result accumulated so far (completed episodes, best-so-far solution,
// evaluator counters) together with ctx's error; the refinement phase is
// skipped. Uncancelled runs are bit-identical to Run for the same seed.
func (x *Explorer) RunContext(ctx context.Context) (*Result, error) {
	res := &Result{Workload: x.W}
	var runErr error
	trMain := rl.NewTrainer()
	trHW := rl.NewTrainer()
	newOpt := func() *nn.RMSProp {
		o := nn.NewRMSProp()
		o.LR = x.Cfg.LR
		o.LRDecay = x.Cfg.LRDecay
		o.LRDecaySteps = x.Cfg.LRDecaySteps
		return o
	}
	opt := newOpt()
	mask := x.hwMask()
	x.ctrl.EntropyCoef = x.Cfg.EntropyCoef
	pending := 0
	var bestEpisode *rl.Episode
	var bestReward float64

	for ep := 0; ep < x.Cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		// ① SA=SH=1: one combined architecture+hardware step.
		combined := x.ctrl.Sample()
		archActs := combined.Actions[:x.archLen]
		choices, nets, err := x.decodeArch(archActs)
		if err != nil {
			panic(fmt.Sprintf("core: controller produced undecodable architecture: %v", err))
		}

		// ② SA=0, SH=1 for φ steps: explore hardware for this architecture.
		// All 1+φ hardware evaluations run in parallel (the paper's
		// non-blocking scheme). The φ forced rollouts share one lockstep
		// batch through the controller's matrix-matrix fast path; the
		// batched sampler consumes the RNG stream and computes every logit
		// bit-identically to φ sequential SampleForced calls.
		hwEps := make([]*rl.Episode, 0, 1+x.Cfg.HWSteps)
		hwEps = append(hwEps, combined)
		if x.Cfg.HWSteps > 0 {
			if x.Cfg.BatchedController {
				hwEps = append(hwEps, x.ctrl.SampleForcedBatch(archActs, x.Cfg.HWSteps)...)
			} else {
				for i := 0; i < x.Cfg.HWSteps; i++ {
					hwEps = append(hwEps, x.ctrl.SampleForced(archActs))
				}
			}
		}
		preEval := x.eval.EvalStats()
		preDedup := x.hwDeduped
		metrics, err := x.parallelHWEval(ctx, nets, hwEps)
		if err != nil {
			runErr = err
			break
		}
		postEval := x.eval.EvalStats()

		// Pick the best hardware among the explored candidates: feasible
		// first, then lowest penalty, then lowest energy.
		bestIdx := 0
		bestPen := x.eval.Penalty(metrics[0])
		for i := 1; i < len(metrics); i++ {
			p := x.eval.Penalty(metrics[i])
			better := p < bestPen-1e-12 ||
				(p < bestPen+1e-12 && metrics[i].EnergyNJ < metrics[bestIdx].EnergyNJ)
			if better {
				bestIdx, bestPen = i, p
			}
		}

		st := EpisodeStats{
			Episode:     ep,
			BestPenalty: bestPen,
			HWEvals:     postEval.HWEvals - preEval.HWEvals,
			HWCacheHits: postEval.HWCacheHits - preEval.HWCacheHits,
			HWDeduped:   x.hwDeduped - preDedup,
		}

		// ③ Early pruning: when no explored hardware is feasible, skip the
		// (expensive) training path entirely.
		var weighted float64
		var accs []float64
		if bestPen == 0 {
			accs = x.eval.Accuracies(nets)
			weighted = x.W.Weighted(accs)
			st.Feasible = true
		} else {
			st.Pruned = true
			res.Pruned++
		}

		// Reward and controller updates. The combined step uses Eq. (4)
		// with its own hardware sample; hardware-only steps use the
		// accuracy-free reward (−ρ·P), masked to the hardware segment.
		batchScale := 1.0 / float64(x.Cfg.Batch)
		combinedPen := x.eval.Penalty(metrics[0])
		combinedReward := x.eval.Reward(weighted, combinedPen)
		x.ctrl.Accumulate(combined, trMain.Advantage(combinedReward), x.Cfg.Gamma, batchScale)

		hwScale := batchScale / float64(len(hwEps))
		hwAdvs := make([]float64, len(hwEps))
		for i := range hwEps {
			r := -x.Cfg.Rho * x.eval.Penalty(metrics[i])
			hwAdvs[i] = trHW.Advantage(r)
		}
		if x.Cfg.BatchedController {
			// One lockstep BPTT over the whole hardware batch; the gradient
			// adds replay in episode order, bit-identical to the loop below.
			x.ctrl.AccumulateMaskedBatch(hwEps, hwAdvs, x.Cfg.Gamma, hwScale, mask)
		} else {
			for i, he := range hwEps {
				x.ctrl.AccumulateMasked(he, hwAdvs[i], x.Cfg.Gamma, hwScale, mask)
			}
		}
		// Self-imitation replay: reinforce the best complete sample so far.
		// The best candidate's hardware actions may come from a hardware-
		// only step; replay the episode that contains them.
		if solReward := x.eval.Reward(weighted, bestPen); st.Feasible &&
			(bestEpisode == nil || solReward > bestReward) {
			bestEpisode, bestReward = hwEps[bestIdx], solReward
		}
		if x.Cfg.ReplayCoef > 0 && bestEpisode != nil {
			adv := bestReward - trMain.Baseline()
			if adv > 0 {
				x.ctrl.Accumulate(bestEpisode, x.Cfg.ReplayCoef*adv, x.Cfg.Gamma, batchScale)
			}
		}

		pending++
		if pending >= x.Cfg.Batch || ep == x.Cfg.Episodes-1 {
			x.ctrl.Update(opt)
			pending = 0
		}

		st.Reward = combinedReward
		res.History = append(res.History, st)

		// Record the episode's best candidate as an explored solution.
		if bestPen == 0 {
			m := metrics[bestIdx]
			sol := &Solution{
				Episode:     ep,
				ArchChoices: choices,
				Networks:    nets,
				Design:      x.decodeDesign(hwEps[bestIdx].Actions),
				Accuracies:  accs,
				Weighted:    weighted,
				Latency:     m.Latency,
				EnergyNJ:    m.EnergyNJ,
				AreaUM2:     m.AreaUM2,
				Penalty:     0,
				Reward:      x.eval.Reward(weighted, 0),
				Feasible:    true,
				actions:     append([]int(nil), hwEps[bestIdx].Actions...),
			}
			res.Explored = append(res.Explored, sol)
			if res.Best == nil || sol.Weighted > res.Best.Weighted {
				res.Best = sol
			}
		}

		if x.OnEpisode != nil {
			x.OnEpisode(EpisodeEvent{Stats: st, Best: res.Best, Explored: len(res.Explored)})
		}
	}

	// Exploit phase: multi-start coordinate-descent refinement of the top
	// explored solutions. Skipped on cancellation — the partial result keeps
	// the raw exploration outcome.
	if runErr == nil && x.Cfg.Refine && res.Best != nil {
		sort.Slice(res.Explored, func(i, j int) bool {
			return res.Explored[i].Weighted > res.Explored[j].Weighted
		})
		const starts = 3
		specs := x.ctrl.Specs()
		hopRNG := stats.NewRNG(x.Cfg.Seed ^ 0x40b)
		top := len(res.Explored)
		for i := 0; i < starts && i < top; i++ {
			if err := ctx.Err(); err != nil {
				runErr = err
				break
			}
			refined := x.refineFrom(res.Explored[i], specs, hopRNG)
			if refined.Weighted > res.Best.Weighted {
				res.Best = refined
				res.Explored = append(res.Explored, refined)
			}
		}
	}

	x.fillEvalStats(res)
	sort.Slice(res.Explored, func(i, j int) bool {
		return res.Explored[i].Weighted > res.Explored[j].Weighted
	})
	return res, runErr
}

// fillEvalStats copies the evaluator's work counters into the result.
func (x *Explorer) fillEvalStats(res *Result) {
	s := x.eval.EvalStats()
	res.Trainings = s.Trainings
	res.HWEvals = s.HWEvals
	res.HWRequests = s.HWRequests
	res.HWCacheHits = s.HWCacheHits
	res.HWDeduped = x.hwDeduped
	res.LayerCostRequests = s.LayerCostRequests
	res.LayerCostHits = s.LayerCostHits
}

// parallelHWEval evaluates the designs of the given episodes concurrently,
// preserving order. Identical designs within the batch — common once the
// controller's hardware policy starts converging — are collapsed to a single
// evaluation before fan-out, so a batch of N duplicates costs one HAP solve
// even with the evaluation cache disabled. The networks are fixed across the
// batch, so the design fingerprint alone identifies duplicates. A done
// context stops the fan-out, lets every worker drain and exit, and returns
// ctx's error; the partially filled metrics are discarded.
func (x *Explorer) parallelHWEval(ctx context.Context, nets []*dnn.Network, eps []*rl.Episode) ([]HWMetrics, error) {
	out := make([]HWMetrics, len(eps))
	designs := make([]accel.Design, len(eps))
	rep := make([]int, len(eps)) // index of each candidate's representative
	uniq := make(map[string]int, len(eps))
	var uniqIdx []int
	for i := range eps {
		designs[i] = x.decodeDesign(eps[i].Actions)
		fp := designs[i].Fingerprint()
		if j, ok := uniq[fp]; ok {
			rep[i] = j
			x.hwDeduped++
			continue
		}
		uniq[fp] = i
		rep[i] = i
		uniqIdx = append(uniqIdx, i)
	}

	workers := x.Cfg.workers()
	if workers > len(uniqIdx) {
		workers = len(uniqIdx)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A cancelled context makes HWEvalCtx return immediately,
				// so the drain after the send loop breaks is prompt. The
				// zero metrics left behind never escape: the caller
				// discards the batch on error.
				m, err := x.eval.HWEvalCtx(ctx, nets, designs[i])
				if err != nil {
					continue
				}
				out[i] = m
			}
		}()
	}
send:
	for _, i := range uniqIdx {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break send
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range eps {
		out[i] = out[rep[i]]
	}
	return out, nil
}
