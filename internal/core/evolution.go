package core

import (
	"context"
	"fmt"
	"sort"

	"nasaic/internal/stats"
)

// EvolutionConfig parameterizes the evolutionary co-search. The paper notes
// (§IV) that "based on the formulated reward function, other optimization
// approaches, such as evolution algorithms, can also be applied"; this is
// that alternative optimizer, sharing the controller's decision encoding,
// the evaluator, and the Eq. (4) reward, so the two search strategies are
// directly comparable (see the RL-vs-EA ablation benchmark).
type EvolutionConfig struct {
	// Population is the number of individuals per generation.
	Population int
	// Generations bounds the evolutionary loop; total evaluations are
	// roughly Population × Generations, comparable to β×(1+φ) in RL mode.
	Generations int
	// Elite individuals survive unchanged into the next generation.
	Elite int
	// TournamentK is the tournament-selection size.
	TournamentK int
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// CrossoverRate is the probability a child is produced by uniform
	// crossover (otherwise it is a mutated copy of one parent).
	CrossoverRate float64
}

// DefaultEvolutionConfig mirrors the RL mode's evaluation budget at the
// paper's settings.
func DefaultEvolutionConfig() EvolutionConfig {
	return EvolutionConfig{
		Population:    50,
		Generations:   40,
		Elite:         4,
		TournamentK:   3,
		MutationRate:  0.08,
		CrossoverRate: 0.8,
	}
}

// Validate checks the configuration.
func (ec EvolutionConfig) Validate() error {
	if ec.Population < 2 {
		return fmt.Errorf("core: evolution population must be at least 2")
	}
	if ec.Generations <= 0 {
		return fmt.Errorf("core: evolution generations must be positive")
	}
	if ec.Elite < 0 || ec.Elite >= ec.Population {
		return fmt.Errorf("core: elite count %d out of range [0,%d)", ec.Elite, ec.Population)
	}
	if ec.TournamentK < 1 || ec.TournamentK > ec.Population {
		return fmt.Errorf("core: tournament size %d out of range", ec.TournamentK)
	}
	if ec.MutationRate < 0 || ec.MutationRate > 1 {
		return fmt.Errorf("core: mutation rate %f out of [0,1]", ec.MutationRate)
	}
	if ec.CrossoverRate < 0 || ec.CrossoverRate > 1 {
		return fmt.Errorf("core: crossover rate %f out of [0,1]", ec.CrossoverRate)
	}
	return nil
}

type individual struct {
	genome  []int
	reward  float64
	sol     *Solution // nil when infeasible
	penalty float64
}

// RunEvolution explores the same co-design space as Run with a generational
// evolutionary algorithm instead of the RNN controller. It is deterministic
// in Config.Seed and honours Config.Refine for the final exploit phase.
func (x *Explorer) RunEvolution(ec EvolutionConfig) *Result {
	res, _ := x.RunEvolutionContext(context.Background(), ec) //lint:allow ctxplumb compat shim: non-ctx public API delegates to the ctx variant
	return res
}

// RunEvolutionContext is RunEvolution with cooperative cancellation: the
// context is checked per individual evaluation, so cancellation or a deadline
// aborts the search promptly. On cancellation it returns the partial result
// (completed generations) together with ctx's error; the refinement phase is
// skipped. Uncancelled runs are bit-identical to RunEvolution.
func (x *Explorer) RunEvolutionContext(ctx context.Context, ec EvolutionConfig) (*Result, error) {
	if err := ec.Validate(); err != nil {
		panic(err)
	}
	var runErr error
	rng := stats.NewRNG(x.Cfg.Seed ^ 0xea)
	specs := x.ctrl.Specs()
	res := &Result{Workload: x.W}

	randGenome := func() []int {
		g := make([]int, len(specs))
		for i, s := range specs {
			g[i] = rng.Intn(s.NumOptions)
		}
		return g
	}

	// evaluate scores one genome; a done context aborts the underlying HAP
	// solve promptly and returns ctx's error (the individual is discarded).
	evaluate := func(g []int) (individual, error) {
		ind := individual{genome: append([]int(nil), g...)}
		choices, nets, err := x.decodeArch(g[:x.archLen])
		if err != nil {
			ind.reward = -1e9
			return ind, nil
		}
		d := x.decodeDesign(g)
		m, err := x.eval.HWEvalCtx(ctx, nets, d)
		if err != nil {
			return individual{}, err
		}
		pen := x.eval.Penalty(m)
		ind.penalty = pen
		if pen > 0 {
			// Early pruning, EA flavor: infeasible individuals are ranked by
			// penalty alone and never trained.
			ind.reward = x.eval.Reward(0, pen)
			return ind, nil
		}
		accs := x.eval.Accuracies(nets)
		weighted := x.W.Weighted(accs)
		ind.reward = x.eval.Reward(weighted, 0)
		ind.sol = &Solution{
			ArchChoices: choices,
			Networks:    nets,
			Design:      d,
			Accuracies:  accs,
			Weighted:    weighted,
			Latency:     m.Latency,
			EnergyNJ:    m.EnergyNJ,
			AreaUM2:     m.AreaUM2,
			Reward:      ind.reward,
			Feasible:    true,
			actions:     append([]int(nil), g...),
		}
		return ind, nil
	}

	pop := make([]individual, 0, ec.Population)
	for i := 0; i < ec.Population; i++ {
		ind, err := evaluate(randGenome())
		if err != nil {
			x.fillEvalStats(res)
			return res, err
		}
		pop = append(pop, ind)
	}

	record := func(gen int, ind individual) {
		if ind.sol == nil {
			return
		}
		s := *ind.sol
		s.Episode = gen
		res.Explored = append(res.Explored, &s)
		if res.Best == nil || s.Weighted > res.Best.Weighted {
			res.Best = &s
		}
	}
	for _, ind := range pop {
		record(0, ind)
	}

	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < ec.TournamentK; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.reward > best.reward {
				best = c
			}
		}
		return best
	}

genLoop:
	for gen := 1; gen <= ec.Generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].reward > pop[j].reward })
		next := make([]individual, 0, ec.Population)
		for i := 0; i < ec.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < ec.Population {
			if err := ctx.Err(); err != nil {
				runErr = err
				break genLoop
			}
			a := tournament()
			child := append([]int(nil), a.genome...)
			if rng.Float64() < ec.CrossoverRate {
				b := tournament()
				for i := range child {
					if rng.Float64() < 0.5 {
						child[i] = b.genome[i]
					}
				}
			}
			for i, s := range specs {
				if rng.Float64() < ec.MutationRate {
					child[i] = rng.Intn(s.NumOptions)
				}
			}
			ind, err := evaluate(child)
			if err != nil {
				runErr = err
				break genLoop
			}
			record(gen, ind)
			next = append(next, ind)
		}
		pop = next

		bestPen := pop[0].penalty
		feasible := false
		var bestReward float64
		for _, ind := range pop {
			if ind.penalty < bestPen {
				bestPen = ind.penalty
			}
			if ind.reward > bestReward || !feasible {
				bestReward = ind.reward
			}
			if ind.sol != nil {
				feasible = true
			}
		}
		st := EpisodeStats{
			Episode:     gen,
			Reward:      bestReward,
			BestPenalty: bestPen,
			Feasible:    feasible,
			Pruned:      !feasible,
		}
		res.History = append(res.History, st)
		if x.OnEpisode != nil {
			x.OnEpisode(EpisodeEvent{Stats: st, Best: res.Best, Explored: len(res.Explored)})
		}
	}

	if runErr == nil && x.Cfg.Refine && res.Best != nil {
		sort.Slice(res.Explored, func(i, j int) bool {
			return res.Explored[i].Weighted > res.Explored[j].Weighted
		})
		hopRNG := stats.NewRNG(x.Cfg.Seed ^ 0xea40b)
		top := len(res.Explored)
		for i := 0; i < 3 && i < top; i++ {
			refined := x.refineFrom(res.Explored[i], specs, hopRNG)
			if refined.Weighted > res.Best.Weighted {
				res.Best = refined
				res.Explored = append(res.Explored, refined)
			}
		}
	}

	x.fillEvalStats(res)
	sort.Slice(res.Explored, func(i, j int) bool {
		return res.Explored[i].Weighted > res.Explored[j].Weighted
	})
	return res, runErr
}
