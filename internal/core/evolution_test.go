package core

import (
	"testing"

	"nasaic/internal/workload"
)

func TestEvolutionConfigValidate(t *testing.T) {
	if err := DefaultEvolutionConfig().Validate(); err != nil {
		t.Fatalf("default evolution config invalid: %v", err)
	}
	muts := []func(*EvolutionConfig){
		func(c *EvolutionConfig) { c.Population = 1 },
		func(c *EvolutionConfig) { c.Generations = 0 },
		func(c *EvolutionConfig) { c.Elite = c.Population },
		func(c *EvolutionConfig) { c.TournamentK = 0 },
		func(c *EvolutionConfig) { c.MutationRate = 1.5 },
		func(c *EvolutionConfig) { c.CrossoverRate = -0.1 },
	}
	for i, m := range muts {
		c := DefaultEvolutionConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestEvolutionFindsFeasibleW3(t *testing.T) {
	cfg := fastConfig(5)
	x, err := New(workload.W3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ec := DefaultEvolutionConfig()
	ec.Population = 24
	ec.Generations = 10
	res := x.RunEvolution(ec)
	if res.Best == nil {
		t.Fatal("evolution found no feasible W3 solution")
	}
	sp := workload.W3().Specs
	for _, s := range res.Explored {
		if s.Latency > sp.LatencyCycles || s.EnergyNJ > sp.EnergyNJ || s.AreaUM2 > sp.AreaUM2 {
			t.Errorf("explored solution violates specs: %s", s)
			break
		}
	}
	if len(res.History) != 10 {
		t.Errorf("history length %d, want 10 generations", len(res.History))
	}
	// Reasonable quality: must beat the smallest-network floor.
	if res.Best.Weighted < 0.80 {
		t.Errorf("evolution best weighted %.4f suspiciously low", res.Best.Weighted)
	}
}

func TestEvolutionDeterministic(t *testing.T) {
	run := func() *Result {
		x, err := New(workload.W3(), fastConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		ec := DefaultEvolutionConfig()
		ec.Population = 16
		ec.Generations = 6
		return x.RunEvolution(ec)
	}
	a, b := run(), run()
	if (a.Best == nil) != (b.Best == nil) {
		t.Fatal("evolution determinism broken")
	}
	if a.Best != nil && (a.Best.Weighted != b.Best.Weighted || a.Best.Design.String() != b.Best.Design.String()) {
		t.Errorf("same seed produced different evolution bests:\n%s\n%s", a.Best, b.Best)
	}
}

func TestEvolutionEarlyPruning(t *testing.T) {
	w := workload.W1()
	w.Specs.LatencyCycles = 10
	w.Specs.EnergyNJ = 10
	w.Specs.AreaUM2 = 10
	cfg := fastConfig(2)
	x, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ec := DefaultEvolutionConfig()
	ec.Population = 10
	ec.Generations = 3
	res := x.RunEvolution(ec)
	if res.Best != nil {
		t.Error("impossible specs must yield no feasible individual")
	}
	if res.Trainings != 0 {
		t.Errorf("infeasible individuals must never be trained, got %d trainings", res.Trainings)
	}
}
