package core

import (
	"fmt"
	"sync"

	"nasaic/internal/accel"
	"nasaic/internal/dnn"
	"nasaic/internal/predictor"
	"nasaic/internal/sched"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Bounds are the penalty normalizers bl, be, ba of Eq. (3): upper bounds on
// latency, energy and area obtained by exploring the hardware space with the
// largest architectures (the circles in Fig. 1).
type Bounds struct {
	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
}

// HWMetrics are the hardware-side evaluation results for one
// (architectures, design) pair.
type HWMetrics struct {
	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
	// ResourceOK reports the Σpe ≤ NP, Σbw ≤ BW constraints.
	ResourceOK bool
	// Feasible reports that every design spec is met.
	Feasible bool
	// BufDemand sizes each sub-accelerator's buffer (design order).
	BufDemand []int64
	// Assign is the HAP layer assignment ([chain][layer] → active-sub index).
	Assign sched.Assignment
}

// Evaluator implements component ③: the mapping-and-scheduling path via the
// cost model and HAP solver, and the training-and-validating path via the
// accuracy predictor with memoization (a trained network is never retrained,
// matching the paper's non-blocking trainer).
type Evaluator struct {
	W      workload.Workload
	Cfg    Config
	Bounds Bounds

	mu        sync.Mutex
	accCache  map[string]float64
	trainings int
	hwEvals   int
}

// NewEvaluator builds an evaluator and computes the penalty bounds.
func NewEvaluator(w workload.Workload, cfg Config) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{W: w, Cfg: cfg, accCache: map[string]float64{}}
	e.Bounds = e.computeBounds()
	return e, nil
}

// computeBounds explores the hardware space with the largest architecture of
// every task — the networks spec-blind NAS converges to — and takes, per
// metric, the best value any sampled design achieves. These are the Fig. 1
// circles the paper defines bl/be/ba from: the envelope that successive
// NAS→ASIC optimization cannot improve past. Each bound is floored at
// 1.25× its spec so the Eq. (3) denominators stay positive and the penalty
// keeps a useful gradient scale.
func (e *Evaluator) computeBounds() Bounds {
	rng := stats.NewRNG(e.Cfg.Seed ^ 0x5eed)
	nets := make([]*dnn.Network, len(e.W.Tasks))
	for i, t := range e.W.Tasks {
		nets[i] = t.Space.MustDecode(t.Space.Largest())
	}
	var b Bounds
	first := true
	const samples = 60
	for s := 0; s < samples; s++ {
		d := e.randomDesign(rng)
		m := e.hwEval(nets, d, false)
		if !m.ResourceOK {
			continue
		}
		if first {
			b = Bounds{Latency: m.Latency, EnergyNJ: m.EnergyNJ, AreaUM2: m.AreaUM2}
			first = false
			continue
		}
		if m.Latency < b.Latency {
			b.Latency = m.Latency
		}
		if m.EnergyNJ < b.EnergyNJ {
			b.EnergyNJ = m.EnergyNJ
		}
		if m.AreaUM2 < b.AreaUM2 {
			b.AreaUM2 = m.AreaUM2
		}
	}
	sp := e.W.Specs
	if min := int64(float64(sp.LatencyCycles) * 1.25); b.Latency < min {
		b.Latency = min
	}
	if min := sp.EnergyNJ * 1.25; b.EnergyNJ < min {
		b.EnergyNJ = min
	}
	if min := sp.AreaUM2 * 1.25; b.AreaUM2 < min {
		b.AreaUM2 = min
	}
	return b
}

// randomDesign samples a resource-feasible design uniformly (rejection).
func (e *Evaluator) randomDesign(rng *stats.RNG) accel.Design {
	hw := e.Cfg.HW
	for {
		subs := make([]accel.SubAccel, hw.NumSubs)
		for i := range subs {
			subs[i] = accel.SubAccel{
				DF:  hw.Styles[rng.Intn(len(hw.Styles))],
				PEs: hw.PEOptions[rng.Intn(len(hw.PEOptions))],
				BW:  hw.BWOptions[rng.Intn(len(hw.BWOptions))],
			}
		}
		d := accel.NewDesign(subs...)
		if d.Validate(hw.Limits) == nil {
			return d
		}
	}
}

// HWEval evaluates the hardware metrics of running the given networks on
// design d (mapping and scheduling via HAP under the latency spec).
func (e *Evaluator) HWEval(nets []*dnn.Network, d accel.Design) HWMetrics {
	return e.hwEval(nets, d, true)
}

func (e *Evaluator) hwEval(nets []*dnn.Network, d accel.Design, count bool) HWMetrics {
	if count {
		e.mu.Lock()
		e.hwEvals++
		e.mu.Unlock()
	}
	if d.Validate(e.Cfg.HW.Limits) != nil {
		// Resource-violating sample: report the bound metrics so the
		// penalty saturates; the reward then steers the controller back
		// into the feasible region.
		return HWMetrics{
			Latency:  maxI64(e.Bounds.Latency, 2*e.W.Specs.LatencyCycles),
			EnergyNJ: maxF(e.Bounds.EnergyNJ, 2*e.W.Specs.EnergyNJ),
			AreaUM2:  maxF(e.Bounds.AreaUM2, 2*e.W.Specs.AreaUM2),
		}
	}

	active := d.Active()
	problem := e.buildProblem(nets, d, active)

	_, res, err := sched.HAP(problem)
	if err != nil {
		panic(fmt.Sprintf("core: HAP failed: %v", err))
	}

	buf := make([]int64, len(d.Subs))
	for ai, di := range active {
		if ai < len(res.BufferDemand) {
			buf[di] = res.BufferDemand[ai]
		}
	}
	area := d.Area(e.Cfg.Cost, buf)
	sp := e.W.Specs
	return HWMetrics{
		Latency:    res.Makespan,
		EnergyNJ:   res.EnergyNJ,
		AreaUM2:    area,
		ResourceOK: true,
		Feasible:   res.Makespan <= sp.LatencyCycles && res.EnergyNJ <= sp.EnergyNJ && area <= sp.AreaUM2,
		BufDemand:  buf,
		Assign:     res.Assign,
	}
}

// buildProblem assembles the HAP cost table for the given networks on the
// design's active sub-accelerators.
func (e *Evaluator) buildProblem(nets []*dnn.Network, d accel.Design, active []int) sched.Problem {
	problem := sched.Problem{
		NumAccels: len(active),
		Deadline:  e.W.Specs.LatencyCycles,
	}
	for ni, n := range nets {
		ch := sched.Chain{Name: fmt.Sprintf("net%d", ni)}
		for _, l := range n.ComputeLayers() {
			sl := sched.Layer{Name: l.Name, Options: make([]sched.Option, len(active))}
			for ai, di := range active {
				sub := d.Subs[di]
				lc := e.Cfg.Cost.LayerCost(l, sub.DF, sub.PEs, sub.BW)
				sl.Options[ai] = sched.Option{
					Cycles:      lc.Cycles,
					EnergyNJ:    lc.EnergyNJ,
					BufferBytes: lc.BufferBytes,
				}
			}
			ch.Layers = append(ch.Layers, sl)
		}
		problem.Chains = append(problem.Chains, ch)
	}
	return problem
}

// Schedule returns the concrete HAP schedule (problem, result, per-layer
// placements) of the networks on design d — the map() and sch() functions of
// §III-➌ made inspectable. It errors when the design violates resource
// limits.
func (e *Evaluator) Schedule(nets []*dnn.Network, d accel.Design) (sched.Problem, sched.Result, []sched.Placement, error) {
	if err := d.Validate(e.Cfg.HW.Limits); err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	problem := e.buildProblem(nets, d, d.Active())
	_, res, err := sched.HAP(problem)
	if err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	res2, placements, err := sched.Timeline(problem, res.Assign)
	if err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	return problem, res2, placements, nil
}

// Penalty computes Eq. (3) for the given metrics.
func (e *Evaluator) Penalty(m HWMetrics) float64 {
	sp, b := e.W.Specs, e.Bounds
	p := relExcess(float64(m.Latency), float64(sp.LatencyCycles), float64(b.Latency)) +
		relExcess(m.EnergyNJ, sp.EnergyNJ, b.EnergyNJ) +
		relExcess(m.AreaUM2, sp.AreaUM2, b.AreaUM2)
	if !m.ResourceOK {
		p += 1
	}
	return p
}

func relExcess(r, spec, bound float64) float64 {
	if r <= spec {
		return 0
	}
	den := bound - spec
	if den <= 0 {
		den = spec
	}
	return (r - spec) / den
}

// Accuracies runs the training-and-validating path for every task network,
// memoized by architecture signature.
func (e *Evaluator) Accuracies(nets []*dnn.Network) []float64 {
	if len(nets) != len(e.W.Tasks) {
		panic("core: network count mismatch")
	}
	accs := make([]float64, len(nets))
	for i, n := range nets {
		key := e.W.Tasks[i].Dataset.String() + "|" + n.Signature()
		e.mu.Lock()
		q, ok := e.accCache[key]
		e.mu.Unlock()
		if !ok {
			q = predictor.Accuracy(e.W.Tasks[i].Dataset, n)
			e.mu.Lock()
			e.accCache[key] = q
			e.trainings++
			e.mu.Unlock()
		}
		accs[i] = q
	}
	return accs
}

// Reward computes Eq. (4): R = weighted(D) − ρ·P.
func (e *Evaluator) Reward(weighted, penalty float64) float64 {
	return weighted - e.Cfg.Rho*penalty
}

// Stats returns (trainings performed, hardware evaluations performed).
func (e *Evaluator) Stats() (trainings, hwEvals int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trainings, e.hwEvals
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
