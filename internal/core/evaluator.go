package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"nasaic/internal/accel"
	"nasaic/internal/dnn"
	"nasaic/internal/evalcache"
	"nasaic/internal/maestro"
	"nasaic/internal/predictor"
	"nasaic/internal/sched"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Bounds are the penalty normalizers bl, be, ba of Eq. (3): upper bounds on
// latency, energy and area obtained by exploring the hardware space with the
// largest architectures (the circles in Fig. 1).
type Bounds struct {
	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
}

// HWMetrics are the hardware-side evaluation results for one
// (architectures, design) pair.
type HWMetrics struct {
	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
	// ResourceOK reports the Σpe ≤ NP, Σbw ≤ BW constraints.
	ResourceOK bool
	// Feasible reports that every design spec is met.
	Feasible bool
	// BufDemand sizes each sub-accelerator's buffer (design order).
	BufDemand []int64
	// Assign is the HAP layer assignment ([chain][layer] → active-sub index).
	Assign sched.Assignment
}

// Evaluator implements component ③: the mapping-and-scheduling path via the
// cost model and HAP solver, and the training-and-validating path via the
// accuracy predictor with memoization (a trained network is never retrained,
// matching the paper's non-blocking trainer). With Config.HWCache set, the
// mapping-and-scheduling path is memoized the same way through a sharded
// LRU keyed by ⟨network signatures, design fingerprint⟩.
type Evaluator struct {
	W      workload.Workload
	Cfg    Config
	Bounds Bounds

	mu        sync.Mutex
	trainings int

	// accMemo memoizes the training-and-validating path per ⟨dataset,
	// architecture signature⟩. It is either this evaluator's private memo
	// or, via Config.AccMemo, a memo shared across the evaluators of one
	// experiment so repeat architectures are never "retrained" anywhere in
	// the process.
	accMemo *AccuracyMemo

	// hwCache memoizes the expensive valid-design evaluations; nil when
	// Config.HWCache is off. Cached HWMetrics are shared between callers
	// and must be treated as immutable.
	hwCache *evalcache.Cache[HWMetrics]

	hwRequests stats.Counter // HWEval calls observed (counted requests only)
	hwComputes stats.Counter // cost-model + HAP computations actually run
	hwHits     stats.Counter // requests served from cache or in-flight dedup

	// layerMemo memoizes the MAESTRO cost model per maestro.CostKey: this
	// evaluator's private memo with Cfg.LayerCostMemo, the process-wide
	// maestro.SharedCostMemo with Cfg.ShareLayerMemo (warm-starting fresh
	// evaluators), nil when both are off. The counters are per-evaluator
	// either way, so a shared memo shows up as a near-100% hit rate on
	// evaluators built after the first.
	layerReqs stats.Counter // requests observed by the layer-cost memo
	layerHits stats.Counter // requests served from the memo
	layerMemo *maestro.CostMemo
}

// AccuracyMemo is a concurrency-safe accuracy-predictor memo, shareable
// between evaluators via Config.AccMemo. The predictor is a pure function of
// ⟨dataset, architecture⟩, so a shared memo changes which evaluator pays for
// a computation but never its result.
type AccuracyMemo struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewAccuracyMemo returns an empty memo.
func NewAccuracyMemo() *AccuracyMemo {
	return &AccuracyMemo{m: map[string]float64{}}
}

// Size returns the number of memoized architectures.
func (am *AccuracyMemo) Size() int {
	am.mu.Lock()
	defer am.mu.Unlock()
	return len(am.m)
}

func (am *AccuracyMemo) lookup(key string) (float64, bool) {
	am.mu.Lock()
	defer am.mu.Unlock()
	q, ok := am.m[key]
	return q, ok
}

func (am *AccuracyMemo) store(key string, q float64) {
	am.mu.Lock()
	defer am.mu.Unlock()
	am.m[key] = q
}

// EvalStats is a snapshot of the evaluator's work counters.
type EvalStats struct {
	// Trainings counts accuracy-predictor trainings (memoized networks are
	// never retrained).
	Trainings int
	// HWRequests counts hardware evaluation requests.
	HWRequests int
	// HWEvals counts the cost-model + HAP computations actually performed;
	// with the cache enabled this is HWRequests minus HWCacheHits minus the
	// cheap resource-violation short-circuits.
	HWEvals int
	// HWCacheHits counts requests served without recomputation.
	HWCacheHits int
	// LayerCostRequests counts cost-model queries seen by the per-layer
	// memo under buildProblem; LayerCostHits counts the queries it served
	// without running the MAESTRO model. Zero when Config.LayerCostMemo is
	// off (uncounted queries go straight to the model).
	LayerCostRequests int
	LayerCostHits     int
}

// HitPct returns the percentage of hardware requests served from cache.
func (s EvalStats) HitPct() float64 {
	return stats.Pct(int64(s.HWCacheHits), int64(s.HWRequests))
}

// LayerHitPct returns the percentage of cost-model queries served by the
// per-layer memo.
func (s EvalStats) LayerHitPct() float64 {
	return stats.Pct(int64(s.LayerCostHits), int64(s.LayerCostRequests))
}

// NewEvaluator builds an evaluator and computes the penalty bounds.
func NewEvaluator(w workload.Workload, cfg Config) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{W: w, Cfg: cfg, accMemo: cfg.AccMemo}
	if e.accMemo == nil {
		e.accMemo = NewAccuracyMemo()
	}
	switch {
	case cfg.ShareLayerMemo:
		e.layerMemo = maestro.SharedCostMemo(cfg.Cost)
	case cfg.LayerCostMemo:
		e.layerMemo = maestro.NewCostMemo(cfg.Cost)
	}
	switch {
	case cfg.SharedHWCache != nil:
		e.hwCache = cfg.SharedHWCache
	case cfg.HWCache:
		e.hwCache = evalcache.New[HWMetrics](evalcache.Options{
			Capacity: cfg.HWCacheCapacity,
			Shards:   cfg.HWCacheShards,
		})
	}
	// Warm-load before computing bounds: the bound sampling already runs
	// through both memo tiers, so a warm start skips its evaluations too.
	e.loadCaches()
	e.Bounds = e.computeBounds()
	return e, nil
}

// hwKey builds the canonical cache key of one hardware evaluation: the
// design fingerprint plus every network's memoization signature (the same
// identity the accuracy path keys on).
func hwKey(nets []*dnn.Network, d accel.Design) string {
	var b strings.Builder
	b.WriteString(d.Fingerprint())
	for _, n := range nets {
		b.WriteByte('|')
		b.WriteString(n.Signature())
	}
	return b.String()
}

// computeBounds explores the hardware space with the largest architecture of
// every task — the networks spec-blind NAS converges to — and takes, per
// metric, the best value any sampled design achieves. These are the Fig. 1
// circles the paper defines bl/be/ba from: the envelope that successive
// NAS→ASIC optimization cannot improve past. Each bound is floored at
// 1.25× its spec so the Eq. (3) denominators stay positive and the penalty
// keeps a useful gradient scale.
func (e *Evaluator) computeBounds() Bounds {
	rng := stats.NewRNG(e.Cfg.Seed ^ 0x5eed)
	nets := make([]*dnn.Network, len(e.W.Tasks))
	for i, t := range e.W.Tasks {
		nets[i] = t.Space.MustDecode(t.Space.Largest())
	}
	var b Bounds
	first := true
	const samples = 60
	for s := 0; s < samples; s++ {
		d := e.randomDesign(rng)
		m, _ := e.hwEval(context.Background(), nets, d, false) //lint:allow ctxplumb bounds sampling is small fixed work on the non-ctx construction path
		if !m.ResourceOK {
			continue
		}
		if first {
			b = Bounds{Latency: m.Latency, EnergyNJ: m.EnergyNJ, AreaUM2: m.AreaUM2}
			first = false
			continue
		}
		if m.Latency < b.Latency {
			b.Latency = m.Latency
		}
		if m.EnergyNJ < b.EnergyNJ {
			b.EnergyNJ = m.EnergyNJ
		}
		if m.AreaUM2 < b.AreaUM2 {
			b.AreaUM2 = m.AreaUM2
		}
	}
	sp := e.W.Specs
	if min := int64(float64(sp.LatencyCycles) * 1.25); b.Latency < min {
		b.Latency = min
	}
	if min := sp.EnergyNJ * 1.25; b.EnergyNJ < min {
		b.EnergyNJ = min
	}
	if min := sp.AreaUM2 * 1.25; b.AreaUM2 < min {
		b.AreaUM2 = min
	}
	return b
}

// randomDesign samples a resource-feasible design uniformly (rejection).
func (e *Evaluator) randomDesign(rng *stats.RNG) accel.Design {
	hw := e.Cfg.HW
	for {
		subs := make([]accel.SubAccel, hw.NumSubs)
		for i := range subs {
			subs[i] = accel.SubAccel{
				DF:  hw.Styles[rng.Intn(len(hw.Styles))],
				PEs: hw.PEOptions[rng.Intn(len(hw.PEOptions))],
				BW:  hw.BWOptions[rng.Intn(len(hw.BWOptions))],
			}
		}
		d := accel.NewDesign(subs...)
		if d.Validate(hw.Limits) == nil {
			return d
		}
	}
}

// HWEval evaluates the hardware metrics of running the given networks on
// design d (mapping and scheduling via HAP under the latency spec).
func (e *Evaluator) HWEval(nets []*dnn.Network, d accel.Design) HWMetrics {
	m, _ := e.hwEval(context.Background(), nets, d, true) //lint:allow ctxplumb compat shim: non-ctx public API delegates to HWEvalCtx
	return m
}

// HWEvalCtx is HWEval with cooperative cancellation: the context is checked
// on entry and threaded into the HAP solver's worker pools, so a cancelled or
// expired context aborts the evaluation promptly with ctx's error. Aborted
// computations are never cached; uncancelled evaluations are bit-identical to
// HWEval.
func (e *Evaluator) HWEvalCtx(ctx context.Context, nets []*dnn.Network, d accel.Design) (HWMetrics, error) {
	return e.hwEval(ctx, nets, d, true)
}

func (e *Evaluator) hwEval(ctx context.Context, nets []*dnn.Network, d accel.Design, count bool) (HWMetrics, error) {
	if err := ctx.Err(); err != nil {
		return HWMetrics{}, err
	}
	if count {
		e.hwRequests.Inc()
	}
	if d.Validate(e.Cfg.HW.Limits) != nil {
		// Resource-violating sample: report the bound metrics so the
		// penalty saturates; the reward then steers the controller back
		// into the feasible region. This path skips the cost model and HAP
		// entirely, so it is neither cached nor counted as an evaluation.
		return HWMetrics{
			Latency:  maxI64(e.Bounds.Latency, 2*e.W.Specs.LatencyCycles),
			EnergyNJ: maxF(e.Bounds.EnergyNJ, 2*e.W.Specs.EnergyNJ),
			AreaUM2:  maxF(e.Bounds.AreaUM2, 2*e.W.Specs.AreaUM2),
		}, nil
	}
	if e.hwCache == nil {
		if count {
			e.hwComputes.Inc()
		}
		return e.hwCompute(ctx, nets, d)
	}
	m, avoided, err := e.hwCache.GetOrComputeErr(hwKey(nets, d), func() (HWMetrics, error) {
		if count {
			e.hwComputes.Inc()
		}
		return e.hwCompute(ctx, nets, d)
	})
	if err != nil {
		return HWMetrics{}, err
	}
	if avoided && count {
		e.hwHits.Inc()
	}
	return m, nil
}

// hwCompute runs the uncached mapping-and-scheduling path: build the HAP
// cost table, solve the assignment, and size buffers and area. It is a pure
// function of (nets, d) given the evaluator's fixed workload and config,
// which is what makes the result cacheable and the search bit-deterministic
// across cache modes and worker counts. A done context aborts the solve and
// returns ctx's error; nothing partial escapes.
func (e *Evaluator) hwCompute(ctx context.Context, nets []*dnn.Network, d accel.Design) (HWMetrics, error) {
	active := d.Active()
	problem := e.buildProblem(nets, d, active)

	_, res, err := sched.HAPCtx(ctx, problem)
	if err != nil {
		if ctx.Err() != nil {
			return HWMetrics{}, ctx.Err()
		}
		panic(fmt.Sprintf("core: HAP failed: %v", err))
	}

	buf := make([]int64, len(d.Subs))
	for ai, di := range active {
		if ai < len(res.BufferDemand) {
			buf[di] = res.BufferDemand[ai]
		}
	}
	area := d.Area(e.Cfg.Cost, buf)
	sp := e.W.Specs
	return HWMetrics{
		Latency:    res.Makespan,
		EnergyNJ:   res.EnergyNJ,
		AreaUM2:    area,
		ResourceOK: true,
		Feasible:   res.Makespan <= sp.LatencyCycles && res.EnergyNJ <= sp.EnergyNJ && area <= sp.AreaUM2,
		BufDemand:  buf,
		Assign:     res.Assign,
	}, nil
}

// layerCost evaluates the cost model for one (layer, sub-accelerator) pair
// through the per-layer memo: repeated sub-accelerator configurations across
// designs skip the MAESTRO model entirely. LayerCost is pure, so memoized
// results are bit-identical to recomputation.
func (e *Evaluator) layerCost(l dnn.Layer, sub accel.SubAccel) maestro.LayerCost {
	if e.layerMemo == nil {
		return e.Cfg.Cost.LayerCost(l, sub.DF, sub.PEs, sub.BW)
	}
	e.layerReqs.Inc()
	lc, hit := e.layerMemo.LayerCost(l, sub.DF, sub.PEs, sub.BW)
	if hit {
		e.layerHits.Inc()
	}
	return lc
}

// LayerMemoEntries reports the resident size of the evaluator's layer-cost
// memo (the process-wide memo's size under Config.ShareLayerMemo; zero when
// memoization is off).
func (e *Evaluator) LayerMemoEntries() int {
	if e.layerMemo == nil {
		return 0
	}
	return e.layerMemo.Size()
}

// buildProblem assembles the HAP cost table for the given networks on the
// design's active sub-accelerators.
func (e *Evaluator) buildProblem(nets []*dnn.Network, d accel.Design, active []int) sched.Problem {
	problem := sched.Problem{
		NumAccels: len(active),
		Deadline:  e.W.Specs.LatencyCycles,
		Tuning: sched.Tuning{
			ParallelMoveMin:    e.Cfg.SolverMoveScanMin,
			ParallelExhaustMin: e.Cfg.SolverExhaustSplitMin,
			MaxWorkers:         e.Cfg.SolverMaxWorkers,
			DisableCheckpoints: e.Cfg.SolverNoCheckpoint,
		},
	}
	for ni, n := range nets {
		ch := sched.Chain{Name: fmt.Sprintf("net%d", ni)}
		for _, l := range n.ComputeLayers() {
			sl := sched.Layer{Name: l.Name, Options: make([]sched.Option, len(active))}
			for ai, di := range active {
				lc := e.layerCost(l, d.Subs[di])
				sl.Options[ai] = sched.Option{
					Cycles:      lc.Cycles,
					EnergyNJ:    lc.EnergyNJ,
					BufferBytes: lc.BufferBytes,
				}
			}
			ch.Layers = append(ch.Layers, sl)
		}
		problem.Chains = append(problem.Chains, ch)
	}
	return problem
}

// Schedule returns the concrete HAP schedule (problem, result, per-layer
// placements) of the networks on design d — the map() and sch() functions of
// §III-➌ made inspectable. It errors when the design violates resource
// limits.
func (e *Evaluator) Schedule(nets []*dnn.Network, d accel.Design) (sched.Problem, sched.Result, []sched.Placement, error) {
	if err := d.Validate(e.Cfg.HW.Limits); err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	problem := e.buildProblem(nets, d, d.Active())
	_, res, err := sched.HAP(problem)
	if err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	res2, placements, err := sched.Timeline(problem, res.Assign)
	if err != nil {
		return sched.Problem{}, sched.Result{}, nil, err
	}
	return problem, res2, placements, nil
}

// Penalty computes Eq. (3) for the given metrics.
func (e *Evaluator) Penalty(m HWMetrics) float64 {
	sp, b := e.W.Specs, e.Bounds
	p := relExcess(float64(m.Latency), float64(sp.LatencyCycles), float64(b.Latency)) +
		relExcess(m.EnergyNJ, sp.EnergyNJ, b.EnergyNJ) +
		relExcess(m.AreaUM2, sp.AreaUM2, b.AreaUM2)
	if !m.ResourceOK {
		p += 1
	}
	return p
}

func relExcess(r, spec, bound float64) float64 {
	if r <= spec {
		return 0
	}
	den := bound - spec
	if den <= 0 {
		den = spec
	}
	return (r - spec) / den
}

// Accuracies runs the training-and-validating path for every task network,
// memoized by architecture signature.
func (e *Evaluator) Accuracies(nets []*dnn.Network) []float64 {
	if len(nets) != len(e.W.Tasks) {
		panic("core: network count mismatch")
	}
	accs := make([]float64, len(nets))
	for i, n := range nets {
		key := e.W.Tasks[i].Dataset.String() + "|" + n.Signature()
		q, ok := e.accMemo.lookup(key)
		if !ok {
			q = predictor.Accuracy(e.W.Tasks[i].Dataset, n)
			e.accMemo.store(key, q)
			e.mu.Lock()
			e.trainings++
			e.mu.Unlock()
		}
		accs[i] = q
	}
	return accs
}

// Reward computes Eq. (4): R = weighted(D) − ρ·P.
func (e *Evaluator) Reward(weighted, penalty float64) float64 {
	return weighted - e.Cfg.Rho*penalty
}

// Stats returns (trainings performed, hardware evaluations performed).
// Deprecated-style shim kept for existing callers; EvalStats carries the
// full counter set including cache effectiveness.
func (e *Evaluator) Stats() (trainings, hwEvals int) {
	s := e.EvalStats()
	return s.Trainings, s.HWEvals
}

// EvalStats snapshots the evaluator's work counters.
func (e *Evaluator) EvalStats() EvalStats {
	e.mu.Lock()
	tr := e.trainings
	e.mu.Unlock()
	return EvalStats{
		Trainings:         tr,
		HWRequests:        int(e.hwRequests.Value()),
		HWEvals:           int(e.hwComputes.Value()),
		HWCacheHits:       int(e.hwHits.Value()),
		LayerCostRequests: int(e.layerReqs.Value()),
		LayerCostHits:     int(e.layerHits.Value()),
	}
}

// CacheStats snapshots the hardware-evaluation cache counters (zero when the
// cache is disabled). Unlike EvalStats, these include the uncounted
// bound-computation traffic and in-flight dedups.
func (e *Evaluator) CacheStats() evalcache.Stats {
	if e.hwCache == nil {
		return evalcache.Stats{}
	}
	return e.hwCache.Stats()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
