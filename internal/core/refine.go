package core

import (
	"nasaic/internal/rl"
	"nasaic/internal/stats"
)

// Exploit-phase tuning knobs.
const (
	refinePasses = 3  // coordinate-descent passes per descent
	refineWindow = 10 // option window for very wide decisions (PE counts)
	wideLimit    = 24 // option count beyond which the window applies
	hopRounds    = 12 // basin-hopping perturbation rounds
)

// refineFrom polishes one incumbent with feasibility-preserving coordinate
// descent over the full decision vector (architecture hyperparameters and
// hardware allocations together), followed by basin hopping: random 2–3
// decision perturbations with re-descent, which enables the paired moves —
// shrink one task's network while growing another's — that single-coordinate
// descent cannot discover.
//
// The exploit phase is an extension over the paper's plain REINFORCE search:
// it converts the controller's good co-design region into that region's
// local optimum, which the successive baselines cannot reach because they
// freeze one side of the space. Its contribution is measured by the
// refinement ablation benchmark.
func (x *Explorer) refineFrom(sol *Solution, specs []rl.DecisionSpec, rng *stats.RNG) *Solution {
	best := x.descend(sol, specs, refinePasses)
	for r := 0; r < hopRounds; r++ {
		a := append([]int(nil), best.actions...)
		k := 2 + rng.Intn(2)
		for i := 0; i < k; i++ {
			t := rng.Intn(len(specs))
			a[t] = rng.Intn(specs[t].NumOptions)
		}
		cand := x.evalActions(a, best.Episode)
		if cand == nil {
			continue
		}
		cand = x.descend(cand, specs, 2)
		if cand.Weighted > best.Weighted+1e-9 {
			best = cand
		}
	}
	return best
}

// descend runs coordinate descent from sol, sweeping each decision over its
// options (windowed to ±refineWindow around the current index for very wide
// option lists) and keeping the feasible change that most improves weighted
// accuracy.
func (x *Explorer) descend(sol *Solution, specs []rl.DecisionSpec, maxPasses int) *Solution {
	best := sol
	cur := append([]int(nil), sol.actions...)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for t := range specs {
			orig := cur[t]
			bestOpt := orig
			lo, hi := 0, specs[t].NumOptions
			if specs[t].NumOptions > wideLimit {
				lo, hi = orig-refineWindow, orig+refineWindow+1
				if lo < 0 {
					lo = 0
				}
				if hi > specs[t].NumOptions {
					hi = specs[t].NumOptions
				}
			}
			for opt := lo; opt < hi; opt++ {
				if opt == orig {
					continue
				}
				cur[t] = opt
				if cand := x.evalActions(cur, sol.Episode); cand != nil && cand.Weighted > best.Weighted+1e-9 {
					best = cand
					bestOpt = opt
				}
			}
			cur[t] = bestOpt
			if bestOpt != orig {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// evalActions evaluates a full action vector, returning nil when the decoded
// pair is infeasible.
func (x *Explorer) evalActions(a []int, episode int) *Solution {
	choices, nets, err := x.decodeArch(a[:x.archLen])
	if err != nil {
		return nil
	}
	d := x.decodeDesign(a)
	m := x.eval.HWEval(nets, d)
	if !m.Feasible {
		return nil
	}
	accs := x.eval.Accuracies(nets)
	weighted := x.W.Weighted(accs)
	return &Solution{
		Episode:     episode,
		ArchChoices: choices,
		Networks:    nets,
		Design:      d,
		Accuracies:  accs,
		Weighted:    weighted,
		Latency:     m.Latency,
		EnergyNJ:    m.EnergyNJ,
		AreaUM2:     m.AreaUM2,
		Reward:      x.eval.Reward(weighted, 0),
		Feasible:    true,
		actions:     append([]int(nil), a...),
	}
}
