package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nasaic/internal/maestro"
	"nasaic/internal/workload"
)

// outcomeFingerprint renders every search-outcome field of a Result at full
// float precision. Evaluation-cost telemetry (HWEvals, cache hits, dedups)
// is deliberately excluded: it legitimately differs across cache modes while
// the search outcome must not.
func outcomeFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trainings=%d pruned=%d\n", res.Trainings, res.Pruned)
	for _, h := range res.History {
		fmt.Fprintf(&b, "ep%d r=%.17g p=%.17g pruned=%v feasible=%v\n",
			h.Episode, h.Reward, h.BestPenalty, h.Pruned, h.Feasible)
	}
	for _, s := range res.Explored {
		fmt.Fprintf(&b, "sol ep%d %s w=%.17g L=%d E=%.17g A=%.17g\n",
			s.Episode, s.Design, s.Weighted, s.Latency, s.EnergyNJ, s.AreaUM2)
	}
	if res.Best != nil {
		fmt.Fprintf(&b, "best %s w=%.17g\n", res.Best.Design, res.Best.Weighted)
	}
	return b.String()
}

func runExplorer(t *testing.T, w workload.Workload, workers int, cache bool, episodes int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Episodes = episodes
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.HWCache = cache
	x, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x.Run()
}

// Same-seed runs must be bit-identical whatever the worker count and cache
// mode: hardware evaluation is a pure function of its inputs, results are
// written back by candidate index, and the RNG is only ever advanced from
// the single episode-loop goroutine. Run under -race this also exercises
// the worker pool + sharded cache for data races.
func TestRunDeterministicAcrossWorkersAndCache(t *testing.T) {
	episodes := 20
	if testing.Short() {
		episodes = 8
	}
	ref := outcomeFingerprint(runExplorer(t, workload.W3(), 1, true, episodes))
	if ref == "" {
		t.Fatal("empty reference fingerprint")
	}
	cases := []struct {
		name    string
		workers int
		cache   bool
	}{
		{"workers=4 cache=on", 4, true},
		{"workers=8 cache=on", 8, true},
		{"workers=1 cache=off", 1, false},
		{"workers=4 cache=off", 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := outcomeFingerprint(runExplorer(t, workload.W3(), tc.workers, tc.cache, episodes))
			if got != ref {
				t.Errorf("result diverged from workers=1 cache=on reference:\n--- ref ---\n%s--- got ---\n%s", ref, got)
			}
		})
	}
}

// The cache must measurably cut evaluation work without changing anything
// the search reports: same outcome, strictly fewer HAP computations, and a
// non-trivial hit rate once the controller starts resampling known points.
// W1 is the evaluation-heavy workload (the U-Net cost tables dominate), so
// the logged wall-clock delta is the cache's real win; the assertions stay
// on the evaluation counters, which are stable whatever the machine load.
func TestHWCacheReducesWork(t *testing.T) {
	episodes := 30
	if testing.Short() {
		episodes = 12
	}
	w := workload.W1()
	t0 := time.Now()
	off := runExplorer(t, w, 4, false, episodes)
	dOff := time.Since(t0)
	t0 = time.Now()
	on := runExplorer(t, w, 4, true, episodes)
	dOn := time.Since(t0)

	if a, b := outcomeFingerprint(on), outcomeFingerprint(off); a != b {
		t.Errorf("cache changed the search outcome:\n--- on ---\n%s--- off ---\n%s", a, b)
	}
	if off.HWCacheHits != 0 {
		t.Errorf("cache-off run reported %d cache hits", off.HWCacheHits)
	}
	if on.HWCacheHits == 0 {
		t.Error("cache-on run never hit the cache")
	}
	if on.HWEvals >= off.HWEvals {
		t.Errorf("cache did not reduce computations: on=%d off=%d", on.HWEvals, off.HWEvals)
	}
	if on.HWRequests != off.HWRequests {
		t.Errorf("request counts diverged: on=%d off=%d (caching must not change what is asked)",
			on.HWRequests, off.HWRequests)
	}
	t.Logf("episodes=%d: hw evals %d -> %d (%.1f%% cache hits, %d in-batch dedups), wall %v -> %v",
		episodes, off.HWEvals, on.HWEvals, on.HWCacheHitPct(), on.HWDeduped, dOff, dOn)
}

// The batched controller fast path must not change a single bit of the
// search outcome: the lockstep sampler consumes the RNG stream in the
// sequential order and the batched BPTT replays its gradient adds in the
// sequential order, so an entire exploration — episode rewards, explored
// set, best solution — is bit-identical with batching on or off.
func TestRunDeterministicAcrossControllerBatching(t *testing.T) {
	episodes := 16
	if testing.Short() {
		episodes = 6
	}
	run := func(batched bool) string {
		cfg := DefaultConfig()
		cfg.Episodes = episodes
		cfg.Seed = 11
		cfg.BatchedController = batched
		x, err := New(workload.W3(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return outcomeFingerprint(x.Run())
	}
	seq := run(false)
	bat := run(true)
	if seq == "" {
		t.Fatal("empty sequential fingerprint")
	}
	if bat != seq {
		t.Errorf("batched controller changed the search outcome:\n--- sequential ---\n%s--- batched ---\n%s", seq, bat)
	}
}

// Sharing the layer-cost memo process-wide and the accuracy memo across
// evaluators must leave outcomes bit-identical — both memoize pure
// functions — while the warm evaluator reports a (near-)perfect hit rate.
func TestSharedMemosWarmStartWithoutChangingResults(t *testing.T) {
	maestro.ResetSharedCostMemos()
	episodes := 10
	if testing.Short() {
		episodes = 5
	}
	acc := NewAccuracyMemo()
	run := func(shared bool) *Result {
		cfg := DefaultConfig()
		cfg.Episodes = episodes
		cfg.Seed = 13
		if shared {
			cfg.ShareLayerMemo = true
			cfg.AccMemo = acc
		}
		x, err := New(workload.W3(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return x.Run()
	}
	// Trainings is evaluation-cost telemetry: with a shared accuracy memo
	// the warm run legitimately performs zero predictor computations, so
	// the comparison drops the counter line and keeps every search-outcome
	// field.
	searchOutcome := func(res *Result) string {
		fp := outcomeFingerprint(res)
		return fp[strings.Index(fp, "\n")+1:]
	}
	refRes := run(false)
	ref := searchOutcome(refRes)
	cold := run(true)
	if got := searchOutcome(cold); got != ref {
		t.Errorf("shared memos changed the outcome (cold):\n--- ref ---\n%s--- got ---\n%s", ref, got)
	}
	warm := run(true)
	if got := searchOutcome(warm); got != ref {
		t.Errorf("shared memos changed the outcome (warm):\n--- ref ---\n%s--- got ---\n%s", ref, got)
	}
	if cold.Pruned != refRes.Pruned || warm.Pruned != refRes.Pruned {
		t.Errorf("pruning diverged: ref %d, cold %d, warm %d", refRes.Pruned, cold.Pruned, warm.Pruned)
	}
	if cold.LayerCostRequests == 0 || warm.LayerCostRequests == 0 {
		t.Fatal("layer-cost memo saw no traffic")
	}
	coldPct := cold.LayerCostHitPct()
	warmPct := warm.LayerCostHitPct()
	if warmPct <= coldPct {
		t.Errorf("warm run hit rate %.1f%% not above cold run %.1f%%", warmPct, coldPct)
	}
	if warmPct < 99.9 {
		t.Errorf("warm run should serve ~all queries from the shared memo, got %.1f%%", warmPct)
	}
	if warm.Trainings != 0 {
		t.Errorf("warm run retrained %d architectures despite the shared accuracy memo", warm.Trainings)
	}
	maestro.ResetSharedCostMemos()
}

// The in-batch dedup must collapse identical pending candidates even with
// the cache disabled: force a degenerate one-option hardware space so every
// sample in a batch is the same design.
func TestBatchDedupCollapsesIdenticalCandidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 3
	cfg.HWSteps = 6
	cfg.Seed = 3
	cfg.Refine = false
	cfg.HWCache = false
	cfg.HW.Styles = cfg.HW.Styles[:1]
	cfg.HW.PEOptions = []int{512}
	cfg.HW.BWOptions = []int{16}
	x, err := New(workload.W3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	// Every episode samples 1+HWSteps candidates of the single possible
	// design: all but the first per batch must be deduped.
	wantDedup := cfg.Episodes * cfg.HWSteps
	if res.HWDeduped != wantDedup {
		t.Errorf("HWDeduped = %d, want %d", res.HWDeduped, wantDedup)
	}
	for _, h := range res.History {
		if h.HWDeduped != cfg.HWSteps {
			t.Errorf("episode %d deduped %d, want %d", h.Episode, h.HWDeduped, cfg.HWSteps)
		}
	}
	if res.HWEvals != cfg.Episodes {
		t.Errorf("HWEvals = %d, want %d (one per episode after dedup)", res.HWEvals, cfg.Episodes)
	}
}
