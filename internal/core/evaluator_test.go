package core

import (
	"testing"

	"nasaic/internal/accel"
	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/sched"
	"nasaic/internal/workload"
)

func testEvaluator(t *testing.T, w workload.Workload) *Evaluator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 3
	e, err := NewEvaluator(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func midNetworks(t *testing.T, w workload.Workload) []*dnn.Network {
	t.Helper()
	nets := make([]*dnn.Network, len(w.Tasks))
	for i, task := range w.Tasks {
		c := task.Space.Smallest()
		// Bump every decision one notch toward the middle where possible.
		for j := range c {
			if len(task.Space.Decisions[j].Options) > 2 {
				c[j] = 2
			}
		}
		nets[i] = task.Space.MustDecode(c)
	}
	return nets
}

func TestBoundsAboveSpecs(t *testing.T) {
	for _, w := range []workload.Workload{workload.W1(), workload.W2(), workload.W3()} {
		e := testEvaluator(t, w)
		b := e.Bounds
		if b.Latency <= w.Specs.LatencyCycles {
			t.Errorf("%s: latency bound %d not above spec %d", w.Name, b.Latency, w.Specs.LatencyCycles)
		}
		if b.EnergyNJ <= w.Specs.EnergyNJ {
			t.Errorf("%s: energy bound %g not above spec %g", w.Name, b.EnergyNJ, w.Specs.EnergyNJ)
		}
		if b.AreaUM2 <= w.Specs.AreaUM2 {
			t.Errorf("%s: area bound %g not above spec %g", w.Name, b.AreaUM2, w.Specs.AreaUM2)
		}
	}
}

func TestPenaltyZeroIffSpecsMet(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	within := HWMetrics{
		Latency:    w.Specs.LatencyCycles,
		EnergyNJ:   w.Specs.EnergyNJ,
		AreaUM2:    w.Specs.AreaUM2,
		ResourceOK: true,
	}
	if p := e.Penalty(within); p != 0 {
		t.Errorf("penalty at exactly-spec metrics = %f, want 0", p)
	}
	over := within
	over.Latency++
	if p := e.Penalty(over); p <= 0 {
		t.Error("latency violation must be penalized")
	}
	over = within
	over.EnergyNJ *= 1.01
	if p := e.Penalty(over); p <= 0 {
		t.Error("energy violation must be penalized")
	}
	over = within
	over.AreaUM2 *= 1.01
	if p := e.Penalty(over); p <= 0 {
		t.Error("area violation must be penalized")
	}
	bad := within
	bad.ResourceOK = false
	if p := e.Penalty(bad); p < 1 {
		t.Error("resource violation must add at least 1 to the penalty")
	}
}

func TestPenaltyMonotoneInViolation(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	prev := -1.0
	for mult := 1.0; mult < 3.0; mult += 0.25 {
		m := HWMetrics{
			Latency:    int64(float64(w.Specs.LatencyCycles) * mult),
			EnergyNJ:   w.Specs.EnergyNJ * mult,
			AreaUM2:    w.Specs.AreaUM2 * mult,
			ResourceOK: true,
		}
		p := e.Penalty(m)
		if p < prev {
			t.Errorf("penalty not monotone: %f after %f at mult %f", p, prev, mult)
		}
		prev = p
	}
}

func TestHWEvalFeasibilityConsistent(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	nets := midNetworks(t, w)
	d := accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 2048, BW: 32},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 1024, BW: 32},
	)
	m := e.HWEval(nets, d)
	if !m.ResourceOK {
		t.Fatal("valid design flagged as resource-violating")
	}
	wantFeasible := m.Latency <= w.Specs.LatencyCycles &&
		m.EnergyNJ <= w.Specs.EnergyNJ && m.AreaUM2 <= w.Specs.AreaUM2
	if m.Feasible != wantFeasible {
		t.Errorf("Feasible=%v inconsistent with metrics %+v vs specs %v", m.Feasible, m, w.Specs)
	}
	if m.Feasible && e.Penalty(m) != 0 {
		t.Error("feasible metrics must have zero penalty")
	}
	if len(m.BufDemand) != 2 {
		t.Errorf("buffer demand per sub-accelerator missing: %v", m.BufDemand)
	}
}

func TestHWEvalResourceViolation(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	nets := midNetworks(t, w)
	d := accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 4096, BW: 64},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 4096, BW: 64},
	)
	m := e.HWEval(nets, d)
	if m.ResourceOK || m.Feasible {
		t.Error("over-budget design must be resource-violating and infeasible")
	}
	if p := e.Penalty(m); p < 1 {
		t.Errorf("over-budget penalty %f too small", p)
	}
}

func TestAccuraciesMemoized(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	nets := midNetworks(t, w)
	a1 := e.Accuracies(nets)
	tr1, _ := e.Stats()
	a2 := e.Accuracies(nets)
	tr2, _ := e.Stats()
	if tr2 != tr1 {
		t.Errorf("repeated evaluation retrained: %d -> %d trainings", tr1, tr2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Error("memoized accuracy changed")
		}
	}
	if tr1 != len(nets) {
		t.Errorf("trainings = %d, want %d", tr1, len(nets))
	}
}

func TestRewardEquation(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	// Eq. (4): R = weighted − ρ·P with ρ = 10.
	if got := e.Reward(0.9, 0.05); got != 0.9-10*0.05 {
		t.Errorf("Reward = %f, want %f", got, 0.9-10*0.05)
	}
	if got := e.Reward(0.9, 0); got != 0.9 {
		t.Errorf("zero-penalty reward = %f, want 0.9", got)
	}
}

func TestNewEvaluatorRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewEvaluator(workload.Workload{Name: "empty"}, cfg); err == nil {
		t.Error("empty workload accepted")
	}
	bad := cfg
	bad.Episodes = 0
	if _, err := NewEvaluator(workload.W1(), bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestScheduleInspectable(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	nets := midNetworks(t, w)
	d := accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 2048, BW: 32},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 1024, BW: 32},
	)
	problem, res, placements, err := e.Schedule(nets, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateTimeline(problem, placements); err != nil {
		t.Fatalf("invalid schedule timeline: %v", err)
	}
	// The schedule's makespan must agree with HWEval's latency.
	m := e.HWEval(nets, d)
	if res.Makespan != m.Latency {
		t.Errorf("Schedule makespan %d != HWEval latency %d", res.Makespan, m.Latency)
	}
	// One chain per network, every compute layer placed.
	wantLayers := 0
	for _, n := range nets {
		wantLayers += len(n.ComputeLayers())
	}
	if len(placements) != wantLayers {
		t.Errorf("placed %d layers, want %d", len(placements), wantLayers)
	}
	// Invalid designs are rejected, not scheduled.
	bad := accel.NewDesign(accel.SubAccel{DF: dataflow.NVDLA, PEs: 9999, BW: 64})
	if _, _, _, err := e.Schedule(nets, bad); err == nil {
		t.Error("resource-violating design scheduled")
	}
}

// The heterogeneity claim at mapper granularity: on a mixed workload with a
// heterogeneous design, the HAP schedule actually uses both sub-accelerators.
func TestScheduleUsesHeterogeneousSubAccelerators(t *testing.T) {
	w := workload.W1()
	e := testEvaluator(t, w)
	nets := []*dnn.Network{
		w.Tasks[0].Space.MustDecode([]int{2, 4, 2, 5, 2, 5, 2}), // big ResNet
		w.Tasks[1].Space.MustDecode([]int{4, 2, 2, 2, 2, 2}),    // big U-Net
	}
	d := accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 2112, BW: 48},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 1984, BW: 16},
	)
	_, _, placements, err := e.Schedule(nets, d)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, pl := range placements {
		used[pl.Accel] = true
	}
	if len(used) != 2 {
		t.Errorf("heterogeneous design uses %d sub-accelerators, want 2", len(used))
	}
}

// TestLayerCostMemoBitIdentical: the per-layer cost memo must not change any
// hardware metric — it memoizes a pure function — and its hit counters must
// reflect the reuse across designs that share sub-accelerator configs.
func TestLayerCostMemoBitIdentical(t *testing.T) {
	w := workload.W1()
	nets := midNetworks(t, w)

	cfgOn := DefaultConfig()
	cfgOn.Seed = 3
	cfgOff := cfgOn
	cfgOff.LayerCostMemo = false
	on, err := NewEvaluator(w, cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewEvaluator(w, cfgOff)
	if err != nil {
		t.Fatal(err)
	}

	designs := []accel.Design{
		accel.NewDesign(
			accel.SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32},
			accel.SubAccel{DF: dataflow.Shidiannao, PEs: 512, BW: 16}),
		// Same sub-accelerator configs in a different pairing: every
		// cost-model query is a repeat for the memo.
		accel.NewDesign(
			accel.SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32},
			accel.SubAccel{DF: dataflow.NVDLA, PEs: 1024, BW: 32}),
		accel.NewDesign(
			accel.SubAccel{DF: dataflow.Shidiannao, PEs: 512, BW: 16},
			accel.SubAccel{DF: dataflow.RowStationary, PEs: 256, BW: 8}),
	}
	for i, d := range designs {
		a := on.HWEval(nets, d)
		b := off.HWEval(nets, d)
		if a.Latency != b.Latency || a.EnergyNJ != b.EnergyNJ || a.AreaUM2 != b.AreaUM2 {
			t.Fatalf("design %d: memoized metrics (%d, %g, %g) != unmemoized (%d, %g, %g)",
				i, a.Latency, a.EnergyNJ, a.AreaUM2, b.Latency, b.EnergyNJ, b.AreaUM2)
		}
	}

	sOn, sOff := on.EvalStats(), off.EvalStats()
	if sOn.LayerCostRequests == 0 || sOn.LayerCostHits == 0 {
		t.Errorf("memo saw no traffic: %+v", sOn)
	}
	if sOn.LayerCostHits >= sOn.LayerCostRequests {
		t.Errorf("memo hits %d should be below requests %d", sOn.LayerCostHits, sOn.LayerCostRequests)
	}
	if sOff.LayerCostRequests != 0 || sOff.LayerCostHits != 0 {
		t.Errorf("disabled memo must not count traffic: %+v", sOff)
	}
	if sOn.LayerHitPct() <= 0 {
		t.Errorf("LayerHitPct = %f, want > 0", sOn.LayerHitPct())
	}
}
