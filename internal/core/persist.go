package core

import (
	"errors"
	"fmt"
	"path/filepath"

	"nasaic/internal/cachefile"
	"nasaic/internal/evalcache"
)

// HWCacheConfigKey is the invalidation identity of a persisted
// hardware-evaluation cache: everything that parameterizes hwCompute beyond
// the per-entry ⟨design fingerprint, network signatures⟩ key — the cost-model
// calibration and the hardware space — plus a caller scope. Per-evaluator
// caches scope to their workload (specs drive the HAP deadline and the
// Feasible flag); a cross-workload shared bundle uses a fixed scope,
// mirroring the in-process sharing semantics of Config.SharedHWCache where
// the task-signature tuple distinguishes workloads.
func HWCacheConfigKey(cfg Config, scope string) string {
	return fmt.Sprintf("%s|%s|%#v", scope, cfg.Cost.Fingerprint(), cfg.HW)
}

// hwCacheKey scopes the evaluator's private cache file to its workload.
func (e *Evaluator) hwCacheKey() string {
	return HWCacheConfigKey(e.Cfg, fmt.Sprintf("%s|%#v", e.W.Name, e.W.Specs))
}

func (e *Evaluator) hwCacheFile() string {
	return filepath.Join(e.Cfg.CacheDir, cachefile.Name("hweval", e.hwCacheKey()))
}

// loadCaches warms the layer-cost memo and the private hardware-evaluation
// cache from Config.CacheDir. Every load failure is deliberately swallowed:
// a missing, torn, corrupt, stale or differently-calibrated file means a
// cold start, which is always correct — both tiers memoize pure functions,
// so the only thing a failed load costs is recomputation.
func (e *Evaluator) loadCaches() {
	dir := e.Cfg.CacheDir
	if dir == "" {
		return
	}
	if e.layerMemo != nil {
		_, _ = e.layerMemo.LoadFile(e.layerMemo.CacheFile(dir))
	}
	if e.hwCache != nil && e.Cfg.SharedHWCache == nil {
		_, _ = evalcache.LoadFile(e.hwCache, e.hwCacheFile(), e.hwCacheKey())
	}
}

// SaveCaches snapshots the evaluator's memo tiers into Config.CacheDir so a
// later process starts warm; a no-op when no cache directory is configured.
// Snapshots are written atomically (temp file + rename), so a crash mid-save
// leaves the previous snapshot intact. A Config.SharedHWCache is skipped —
// the bundle's owner persists it once rather than every borrowing evaluator.
func (e *Evaluator) SaveCaches() error {
	dir := e.Cfg.CacheDir
	if dir == "" {
		return nil
	}
	var errs []error
	if e.layerMemo != nil {
		errs = append(errs, e.layerMemo.SaveFile(e.layerMemo.CacheFile(dir)))
	}
	if e.hwCache != nil && e.Cfg.SharedHWCache == nil {
		errs = append(errs, evalcache.SaveFile(e.hwCache, e.hwCacheFile(), e.hwCacheKey()))
	}
	return errors.Join(errs...)
}

// SaveCaches persists the explorer's evaluator caches (see
// Evaluator.SaveCaches); experiment harnesses call it after each search so
// consecutive runs — and future processes — start warm.
func (x *Explorer) SaveCaches() error {
	return x.eval.SaveCaches()
}
