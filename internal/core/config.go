// Package core is NASAIC itself (§IV): the co-exploration framework that
// couples the multi-task RNN controller (①), the optimizer selector with its
// SA/SH switches and early pruning (②), and the evaluator (③) that turns a
// sampled (architectures, accelerator) pair into the reward of Eq. (4).
package core

import (
	"fmt"
	"runtime"

	"nasaic/internal/accel"
	"nasaic/internal/evalcache"
	"nasaic/internal/maestro"
)

// Config holds the exploration hyperparameters. Field names follow the
// paper's symbols where they exist.
type Config struct {
	// Episodes is β: the number of exploration episodes (paper: 500).
	Episodes int
	// HWSteps is φ: hardware-only exploration steps per episode (paper: 10).
	HWSteps int
	// Rho is the penalty scaling ρ in Eq. (4) (paper: 10).
	Rho float64
	// Gamma is the per-step reward discount of Eq. (1).
	Gamma float64
	// Hidden is the controller LSTM width.
	Hidden int
	// Seed makes the whole exploration deterministic.
	Seed int64
	// Workers bounds the goroutines used for parallel hardware evaluation
	// (the paper's non-blocking scheme, §IV-②). <=0 selects NumCPU.
	Workers int
	// TrainEpochs is the simulated training length used when reporting
	// learning curves; the reward uses the converged accuracy either way.
	TrainEpochs int
	// LR is the controller learning rate. The paper quotes RMSProp with an
	// initial rate of 0.99 decayed 0.5× every 50 steps; with a normalized-
	// gradient optimizer that magnitude is unstable, so the framework
	// defaults to a proportionally scaled schedule that converges within
	// the same β=500 episode budget.
	LR float64
	// LRDecay and LRDecaySteps implement the exponential decay schedule.
	LRDecay      float64
	LRDecaySteps int
	// Batch is the number of combined episodes accumulated per controller
	// update (m in Eq. 1).
	Batch int
	// EntropyCoef regularizes the controller against premature collapse.
	EntropyCoef float64
	// ReplayCoef adds a self-imitation term: every update also reinforces
	// the best episode found so far, scaled by this coefficient. This is an
	// extension over the paper's plain REINFORCE that substantially reduces
	// seed variance (ablated in bench_test.go); 0 disables it.
	ReplayCoef float64
	// Refine enables the feasibility-preserving coordinate-descent exploit
	// phase after the RL loop (see refine.go); ablated in bench_test.go.
	Refine bool
	// HWCache routes hardware evaluations (cost model + HAP scheduling)
	// through the sharded internal/evalcache LRU, extending the paper's
	// "never re-evaluate what you already know" insight from the accuracy
	// path to the much hotter mapping-and-scheduling path. Results are
	// bit-identical with the cache on or off (the evaluation is a pure
	// function of its inputs); only wall clock and evaluation counts change.
	HWCache bool
	// HWCacheCapacity bounds the total resident cache entries (rounded up
	// to a multiple of the shard count); <=0 selects the evalcache default.
	HWCacheCapacity int
	// HWCacheShards sets the cache's lock-sharding factor; <=0 selects the
	// evalcache default.
	HWCacheShards int
	// LayerCostMemo memoizes the MAESTRO cost model per ⟨layer shape,
	// dataflow style, PEs, BW⟩ under the HWCache layer, so designs that
	// reuse a sub-accelerator configuration skip the cost model even when
	// the full design fingerprint is new. The memoized function is pure, so
	// results are bit-identical either way; the key space is bounded by the
	// workload's layer shapes times the hardware option grid.
	LayerCostMemo bool
	// ShareLayerMemo promotes the layer-cost memo from per-evaluator to the
	// process-wide memo of maestro.SharedCostMemo (keyed by the full
	// cost-model configuration), so fresh evaluators — the Table I/II
	// baselines build one per approach — start warm. It implies the
	// LayerCostMemo behavior; results are bit-identical either way, only
	// the per-evaluator hit counters and wall clock change.
	ShareLayerMemo bool
	// AccMemo, when non-nil, is a shared accuracy-predictor memo: every
	// evaluator handed the same memo reuses each other's
	// training-and-validating results (the predictor is a pure function of
	// ⟨dataset, architecture⟩, so sharing is bit-identical). Experiments
	// use one memo across the runs of one table so later searches start
	// warm; nil keeps the seed behavior of one private memo per evaluator.
	AccMemo *AccuracyMemo
	// SharedHWCache, when non-nil, replaces the evaluator's private
	// hardware-evaluation cache with a caller-owned one, so several
	// explorers (e.g. the concurrent jobs of one nasaicd process) reuse each
	// other's mapping-and-scheduling results. The cached evaluation is a
	// pure function of its inputs, so sharing is bit-identical; it overrides
	// HWCache/HWCacheCapacity/HWCacheShards.
	SharedHWCache *evalcache.Cache[HWMetrics]
	// CacheDir, when non-empty, backs the layer-cost memo and the (private)
	// hardware-evaluation cache with a persistent on-disk warm tier: the
	// evaluator loads matching snapshots from this directory at construction
	// and Evaluator.SaveCaches writes them back, so a fresh process starts
	// with ~100% memo hit rates from the first episode. The files are
	// versioned and checksummed, keyed by the cost-model calibration (and,
	// for the hardware cache, the workload and hardware space), and every
	// load failure — missing, torn, corrupt, stale version, different
	// calibration — silently degrades to a cold start. Both tiers memoize
	// pure functions and gob round-trips float64s bit-exactly, so a warm
	// start changes work counters, never results. A SharedHWCache is not
	// loaded or saved here; its owner persists the bundle (see
	// pkg/nasaic.SharedMemos).
	CacheDir string
	// SolverMoveScanMin, SolverExhaustSplitMin and SolverMaxWorkers expose
	// internal/sched's parallel-scan thresholds (minimum candidate moves per
	// heuristic refinement round, minimum enumeration size per exhaustive
	// solve, and the per-solve worker-pool bound) instead of the package's
	// single-core-tuned constants. 0 selects the sched defaults; results are
	// bit-identical for any setting (the parallel scans reduce in a
	// deterministic order) — only wall clock changes.
	SolverMoveScanMin     int
	SolverExhaustSplitMin int
	SolverMaxWorkers      int
	// SolverNoCheckpoint disables the HAP heuristic's checkpointed move-scan
	// simulator, making every candidate move replay the whole schedule
	// instead of resuming from the moved layer's snapshot. The checkpointed
	// path is bit-identical (enforced by internal/sched's differential
	// tests) and roughly 2x faster per refinement round; the zero value
	// keeps it on.
	SolverNoCheckpoint bool
	// BatchedController routes each episode's φ hardware-only rollouts and
	// their policy-gradient accumulation through the controller's lockstep
	// SampleBatch/AccumulateBatch fast path (matrix-matrix nn kernels).
	// The batched path performs the same floating-point operations in the
	// same order as φ sequential rollouts — results are bit-identical
	// either way (enforced by internal/rl's differential tests); only wall
	// clock changes.
	BatchedController bool

	Cost maestro.Config
	HW   accel.Space
}

// DefaultConfig returns the paper's settings (§V-A).
func DefaultConfig() Config {
	return Config{
		Episodes:          500,
		HWSteps:           10,
		Rho:               10,
		Gamma:             1.0,
		Hidden:            48,
		Seed:              1,
		Workers:           0,
		TrainEpochs:       30,
		LR:                0.03,
		LRDecay:           0.5,
		LRDecaySteps:      40,
		Batch:             5,
		EntropyCoef:       0.015,
		ReplayCoef:        0.3,
		Refine:            true,
		HWCache:           true,
		LayerCostMemo:     true,
		BatchedController: true,
		Cost:              maestro.DefaultConfig(),
		HW:                accel.DefaultSpace(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Episodes <= 0 {
		return fmt.Errorf("core: Episodes must be positive")
	}
	if c.HWSteps < 0 {
		return fmt.Errorf("core: HWSteps must be non-negative")
	}
	if c.Rho <= 0 {
		return fmt.Errorf("core: Rho must be positive")
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("core: Gamma must be in (0,1]")
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("core: Hidden must be positive")
	}
	if c.HW.NumSubs <= 0 || len(c.HW.Styles) == 0 || len(c.HW.PEOptions) == 0 || len(c.HW.BWOptions) == 0 {
		return fmt.Errorf("core: hardware space is empty")
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: LR must be positive")
	}
	if c.Batch <= 0 {
		return fmt.Errorf("core: Batch must be positive")
	}
	if c.EntropyCoef < 0 {
		return fmt.Errorf("core: EntropyCoef must be non-negative")
	}
	return c.Cost.Validate()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.NumCPU()
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}
