package core

import (
	"testing"

	"nasaic/internal/workload"
)

// fastConfig returns a reduced-budget configuration for unit tests.
func fastConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Episodes = 60
	cfg.HWSteps = 4
	cfg.Seed = seed
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Episodes = 0 },
		func(c *Config) { c.HWSteps = -1 },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.Gamma = 0 },
		func(c *Config) { c.Gamma = 1.5 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.EntropyCoef = -1 },
		func(c *Config) { c.HW.NumSubs = 0 },
		func(c *Config) { c.Cost.EnergyMAC = 0 },
	}
	for i, m := range muts {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestExplorerDecodeRoundtrip(t *testing.T) {
	w := workload.W1()
	x, err := New(w, fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Controller decision count = arch decisions + 3 per sub-accelerator.
	wantArch := w.Tasks[0].Space.NumChoices() + w.Tasks[1].Space.NumChoices()
	if x.archLen != wantArch {
		t.Errorf("archLen = %d, want %d", x.archLen, wantArch)
	}
	wantTotal := wantArch + 3*x.Cfg.HW.NumSubs
	if got := x.ctrl.NumDecisions(); got != wantTotal {
		t.Errorf("controller decisions = %d, want %d", got, wantTotal)
	}

	// A full zero action vector decodes to the smallest nets and the first
	// hardware options.
	actions := make([]int, wantTotal)
	choices, nets, err := x.decodeArch(actions)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 || len(nets) != 2 {
		t.Fatal("wrong task count")
	}
	small0 := w.Tasks[0].Space.MustDecode(w.Tasks[0].Space.Smallest())
	if nets[0].Signature() != small0.Signature() {
		t.Error("zero actions should decode to the smallest architecture")
	}
	d := x.decodeDesign(actions)
	if len(d.Subs) != x.Cfg.HW.NumSubs {
		t.Errorf("design has %d subs, want %d", len(d.Subs), x.Cfg.HW.NumSubs)
	}
	if d.Subs[0].DF != x.Cfg.HW.Styles[0] || d.Subs[0].PEs != x.Cfg.HW.PEOptions[0] {
		t.Error("zero hardware actions should select first options")
	}
}

func TestHWMask(t *testing.T) {
	x, err := New(workload.W1(), fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	mask := x.hwMask()
	for i, on := range mask {
		want := i >= x.archLen
		if on != want {
			t.Errorf("mask[%d] = %v, want %v", i, on, want)
		}
	}
}

func TestRunFindsFeasibleSolutions(t *testing.T) {
	w := workload.W3() // the easiest feasibility region
	x, err := New(w, fastConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.Best == nil {
		t.Fatal("no feasible solution found on W3 in 60 episodes")
	}
	if !res.Best.Feasible || res.Best.Penalty != 0 {
		t.Error("best solution must be feasible with zero penalty")
	}
	sp := w.Specs
	if res.Best.Latency > sp.LatencyCycles || res.Best.EnergyNJ > sp.EnergyNJ || res.Best.AreaUM2 > sp.AreaUM2 {
		t.Errorf("best solution violates specs: %s", res.Best)
	}
	// Every explored solution must meet the specs (the paper's guarantee).
	for _, s := range res.Explored {
		if s.Latency > sp.LatencyCycles || s.EnergyNJ > sp.EnergyNJ || s.AreaUM2 > sp.AreaUM2 {
			t.Errorf("explored solution violates specs: %s", s)
		}
	}
	// Explored list is sorted by weighted accuracy descending.
	for i := 1; i < len(res.Explored); i++ {
		if res.Explored[i].Weighted > res.Explored[i-1].Weighted {
			t.Error("explored solutions not sorted by weighted accuracy")
		}
	}
	if res.Best.Weighted != res.Explored[0].Weighted {
		t.Error("best must head the explored list")
	}
	if len(res.History) != 60 {
		t.Errorf("history length %d, want 60", len(res.History))
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		x, err := New(workload.W3(), fastConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		return x.Run()
	}
	a, b := run(), run()
	if (a.Best == nil) != (b.Best == nil) {
		t.Fatal("determinism broken: one run found a solution, the other did not")
	}
	if a.Best != nil {
		if a.Best.Weighted != b.Best.Weighted || a.Best.Design.String() != b.Best.Design.String() {
			t.Errorf("same seed produced different bests:\n%s\n%s", a.Best, b.Best)
		}
	}
	if len(a.Explored) != len(b.Explored) || a.Pruned != b.Pruned {
		t.Error("exploration trajectory not deterministic")
	}
}

func TestEarlyPruningSkipsTraining(t *testing.T) {
	// Impossible specs: everything is pruned and no training happens.
	w := workload.W1()
	w.Specs.LatencyCycles = 10
	w.Specs.EnergyNJ = 10
	w.Specs.AreaUM2 = 10
	cfg := fastConfig(2)
	cfg.Episodes = 10
	x, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.Best != nil || len(res.Explored) != 0 {
		t.Error("impossible specs must yield no feasible solution")
	}
	if res.Pruned != 10 {
		t.Errorf("all 10 episodes should be pruned, got %d", res.Pruned)
	}
	if res.Trainings != 0 {
		t.Errorf("early pruning must skip training, got %d trainings", res.Trainings)
	}
	if res.HWEvals == 0 {
		t.Error("hardware exploration should still run")
	}
}

func TestSolutionString(t *testing.T) {
	w := workload.W3()
	x, err := New(w, fastConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.Best == nil {
		t.Skip("no feasible solution in short run")
	}
	s := res.Best.String()
	if s == "" || len(s) < 20 {
		t.Errorf("solution string too short: %q", s)
	}
}
