package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nasaic/internal/workload"
)

func runWithCacheDir(t *testing.T, w workload.Workload, dir string, episodes int, mutate func(*Config)) (*Result, EvalStats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Episodes = episodes
	cfg.Seed = 7
	cfg.Workers = 4
	cfg.CacheDir = dir
	if mutate != nil {
		mutate(&cfg)
	}
	x, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if err := x.SaveCaches(); err != nil {
		t.Fatalf("SaveCaches: %v", err)
	}
	return res, x.Evaluator().EvalStats()
}

// The warm tier's hard line: a second cold-process run pointed at the same
// cache directory must return bit-identical results while doing (almost) no
// hardware-evaluation or cost-model work — every memoized key is served from
// disk, so only the work counters change.
func TestWarmStartBitIdenticalAndSkipsRecomputation(t *testing.T) {
	episodes := 12
	if testing.Short() {
		episodes = 6
	}
	w := workload.W3()
	dir := t.TempDir()

	coldRes, coldStats := runWithCacheDir(t, w, dir, episodes, nil)
	ref := outcomeFingerprint(coldRes)
	if ref == "" {
		t.Fatal("empty reference fingerprint")
	}
	if coldStats.HWEvals == 0 {
		t.Fatal("cold run reports zero hardware evaluations; test is vacuous")
	}

	// A fresh explorer simulates the second process: nothing shared
	// in-process (private memo, private cache), only the files under dir.
	warmRes, warmStats := runWithCacheDir(t, w, dir, episodes, nil)
	if got := outcomeFingerprint(warmRes); got != ref {
		t.Errorf("warm run diverged from cold run:\n--- cold ---\n%s--- warm ---\n%s", ref, got)
	}
	if warmStats.HWEvals != 0 {
		t.Errorf("warm run recomputed %d hardware evaluations, want 0 (all %d requests memoized)",
			warmStats.HWEvals, warmStats.HWRequests)
	}
	if warmStats.LayerCostRequests > 0 && warmStats.LayerCostHits != warmStats.LayerCostRequests {
		t.Errorf("warm run layer-cost hits %d of %d requests, want 100%%",
			warmStats.LayerCostHits, warmStats.LayerCostRequests)
	}

	// A third run must also leave the snapshot loadable (save-after-load is
	// a fixpoint, not a corruption amplifier).
	thirdRes, _ := runWithCacheDir(t, w, dir, episodes, nil)
	if got := outcomeFingerprint(thirdRes); got != ref {
		t.Error("third (warm) run diverged")
	}
}

// A changed cost-model calibration must retire the snapshot: the run starts
// cold (recomputes) instead of serving costs from the wrong physics.
func TestWarmTierInvalidatedByCalibrationChange(t *testing.T) {
	episodes := 6
	w := workload.W3()
	dir := t.TempDir()
	if _, st := runWithCacheDir(t, w, dir, episodes, nil); st.HWEvals == 0 {
		t.Fatal("cold run reports zero hardware evaluations")
	}

	_, stats := runWithCacheDir(t, w, dir, episodes, func(cfg *Config) {
		cfg.Cost.EnergyScale *= 1.25
	})
	if stats.HWEvals == 0 {
		t.Error("recalibrated run served stale snapshots: zero hardware evaluations")
	}
}

// Corrupting every snapshot on disk must degrade the next run to a cold
// start — same results, no crash.
func TestWarmTierCorruptFilesDegradeToCold(t *testing.T) {
	episodes := 6
	w := workload.W3()
	dir := t.TempDir()
	coldRes, _ := runWithCacheDir(t, w, dir, episodes, nil)
	ref := outcomeFingerprint(coldRes)

	files, err := filepath.Glob(filepath.Join(dir, "*.cache"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no snapshot files written (err=%v)", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	res, stats := runWithCacheDir(t, w, dir, episodes, nil)
	if got := outcomeFingerprint(res); got != ref {
		t.Error("run after snapshot corruption diverged from the cold reference")
	}
	if stats.HWEvals == 0 {
		t.Error("corrupt snapshots were served: zero hardware evaluations")
	}
}

// The snapshot files carry the expected naming scheme, so operators can
// recognize (and safely delete) warm-tier state.
func TestWarmTierFileNaming(t *testing.T) {
	w := workload.W3()
	dir := t.TempDir()
	runWithCacheDir(t, w, dir, 6, nil)
	files, err := filepath.Glob(filepath.Join(dir, "*.cache"))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, f := range files {
		kinds = append(kinds, filepath.Base(f))
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "layercost-") || !strings.Contains(joined, "hweval-") {
		t.Fatalf("snapshot files %v miss the layercost-/hweval- prefixes", kinds)
	}
}
