// Package noc is a discrete-event simulator for the data delivery path of
// one sub-accelerator: a DMA engine streams tiles from the global buffer
// over a bandwidth-limited NoC link into a double-buffered PE array that
// computes on one tile while the next is in flight (the standard design of
// the templates in internal/dataflow; NVDLA and Shidiannao both
// double-buffer their working sets).
//
// The analytic cost model (internal/maestro) collapses this pipeline into
// latency ≈ max(computeSteps, trafficBytes/bandwidth) + fill. This package
// exists to validate that collapse: the simulator executes the tile pipeline
// event by event, and the cross-validation tests assert the analytic value
// is within a small bound of the simulated one across the parameter space.
// It also models what the analytic path deliberately ignores — contention
// between sub-accelerators sharing the global interconnect — quantifying the
// error of treating sub-accelerator NoC shares as independent (§III-➋ gives
// every sub-accelerator a dedicated bandwidth share, which is what the
// hardware's NIC arbitration enforces).
package noc

import "fmt"

// Tile is one unit of pipelined work: the bytes that must cross the NoC
// before its compute can start, and the compute cycles it then occupies the
// PE array for.
type Tile struct {
	Bytes         int64
	ComputeCycles int64
}

// Link models one sub-accelerator's NoC allocation.
type Link struct {
	// BytesPerCycle is the provisioned bandwidth (GB/s at 1 GHz ≡ B/cycle).
	BytesPerCycle float64
}

// transferCycles returns the cycles to move n bytes over the link.
func (l Link) transferCycles(n int64) int64 {
	if l.BytesPerCycle <= 0 {
		panic("noc: non-positive bandwidth")
	}
	c := int64(float64(n) / l.BytesPerCycle)
	if float64(c)*l.BytesPerCycle < float64(n) {
		c++
	}
	if c < 1 && n > 0 {
		c = 1
	}
	return c
}

// Simulate runs the double-buffered tile pipeline and returns the makespan
// in cycles: tile i+1 transfers while tile i computes; compute of tile i
// starts when both its transfer and the previous tile's compute are done.
func Simulate(l Link, tiles []Tile) int64 {
	var xferDone, compDone int64
	for _, t := range tiles {
		if t.Bytes < 0 || t.ComputeCycles < 0 {
			panic(fmt.Sprintf("noc: negative tile %+v", t))
		}
		xferDone += l.transferCycles(t.Bytes) // transfers are serialized on the link
		start := xferDone
		if compDone > start {
			start = compDone
		}
		compDone = start + t.ComputeCycles
	}
	return compDone
}

// Analytic returns the closed-form approximation the cost model uses:
// max(total compute, total transfer) + first-tile fill.
func Analytic(l Link, tiles []Tile) int64 {
	var comp, bytes int64
	for _, t := range tiles {
		comp += t.ComputeCycles
		bytes += t.Bytes
	}
	xfer := l.transferCycles(bytes)
	fill := int64(0)
	if len(tiles) > 0 {
		fill = l.transferCycles(tiles[0].Bytes)
	}
	if comp > xfer {
		return comp + fill
	}
	return xfer + fill
}

// EvenTiles splits a layer's total traffic and compute into n equal tiles,
// the shape produced by the dataflow templates' regular loop nests.
func EvenTiles(totalBytes, totalCompute int64, n int) []Tile {
	if n <= 0 {
		panic("noc: tile count must be positive")
	}
	tiles := make([]Tile, n)
	for i := range tiles {
		tiles[i] = Tile{
			Bytes:         totalBytes / int64(n),
			ComputeCycles: totalCompute / int64(n),
		}
	}
	// Put the remainders on the first tile so totals are exact.
	tiles[0].Bytes += totalBytes % int64(n)
	tiles[0].ComputeCycles += totalCompute % int64(n)
	return tiles
}

// SharedResult reports a contention experiment.
type SharedResult struct {
	// Isolated is each stream's makespan with its dedicated share.
	Isolated []int64
	// Shared is each stream's makespan when all streams compete for the
	// summed link with fair round-robin arbitration.
	Shared []int64
}

// SimulateShared runs k tile streams over one shared link of the summed
// bandwidth with cycle-granular fair sharing, versus each stream on its
// dedicated share. With fair arbitration and equal shares the two match
// closely, which is why the paper (and our evaluator) can treat
// per-sub-accelerator bandwidth shares as independent links.
func SimulateShared(shares []Link, streams [][]Tile) SharedResult {
	if len(shares) != len(streams) {
		panic("noc: share/stream count mismatch")
	}
	res := SharedResult{
		Isolated: make([]int64, len(streams)),
		Shared:   make([]int64, len(streams)),
	}
	var total float64
	for i, l := range shares {
		res.Isolated[i] = Simulate(l, streams[i])
		total += l.BytesPerCycle
	}

	// Shared simulation: at every cycle, streams with an in-flight transfer
	// split the summed bandwidth proportionally to their provisioned share
	// (weighted fair queuing with work conservation); each stream's PE
	// array computes ready tiles in order, one at a time.
	type state struct {
		ti        int     // next tile to transfer
		left      float64 // bytes left on the in-flight transfer
		ready     []int64 // FIFO of compute durations whose data arrived
		compUntil int64   // engine busy until this cycle
		computed  int
	}
	sts := make([]state, len(streams))
	done := 0
	for i := range sts {
		if len(streams[i]) == 0 {
			done++
			continue
		}
		sts[i].left = float64(streams[i][0].Bytes)
	}

	var cycle int64
	for done < len(streams) {
		cycle++
		var activeShare float64
		for i := range sts {
			if sts[i].computed < len(streams[i]) && sts[i].ti < len(streams[i]) {
				activeShare += shares[i].BytesPerCycle
			}
		}
		for i := range sts {
			st := &sts[i]
			if st.computed >= len(streams[i]) {
				continue
			}
			if st.ti < len(streams[i]) && activeShare > 0 {
				bw := total * shares[i].BytesPerCycle / activeShare
				st.left -= bw
				for st.left <= 0 && st.ti < len(streams[i]) {
					st.ready = append(st.ready, streams[i][st.ti].ComputeCycles)
					st.ti++
					if st.ti < len(streams[i]) {
						st.left += float64(streams[i][st.ti].Bytes)
					}
				}
			}
			if len(st.ready) > 0 && cycle >= st.compUntil {
				st.compUntil = cycle + st.ready[0]
				st.ready = st.ready[1:]
			}
			if st.ti >= len(streams[i]) && len(st.ready) == 0 && cycle >= st.compUntil {
				st.computed = len(streams[i])
				res.Shared[i] = maxI64(cycle, st.compUntil)
				done++
			}
		}
	}
	return res
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
