package noc

import (
	"testing"
	"testing/quick"
)

func TestTransferCycles(t *testing.T) {
	l := Link{BytesPerCycle: 8}
	if got := l.transferCycles(64); got != 8 {
		t.Errorf("64B at 8B/cy = %d cycles, want 8", got)
	}
	if got := l.transferCycles(65); got != 9 {
		t.Errorf("65B at 8B/cy = %d cycles, want 9 (ceiling)", got)
	}
	if got := l.transferCycles(0); got != 0 {
		t.Errorf("0B = %d cycles, want 0", got)
	}
	if got := l.transferCycles(1); got != 1 {
		t.Errorf("1B = %d cycles, want 1", got)
	}
}

func TestSimulateComputeBound(t *testing.T) {
	// Huge compute, tiny traffic: makespan = fill + total compute.
	l := Link{BytesPerCycle: 64}
	tiles := EvenTiles(640, 100000, 10)
	got := Simulate(l, tiles)
	want := int64(1) + 100000 // first tile transfer (64B -> 1 cycle) + compute
	if got != want {
		t.Errorf("compute-bound makespan = %d, want %d", got, want)
	}
}

func TestSimulateBandwidthBound(t *testing.T) {
	// Huge traffic, tiny compute: makespan ≈ total transfer + last compute.
	l := Link{BytesPerCycle: 1}
	tiles := EvenTiles(100000, 10, 10)
	got := Simulate(l, tiles)
	if got < 100000 || got > 100000+10+1 {
		t.Errorf("bandwidth-bound makespan = %d, want ~100001", got)
	}
}

func TestEvenTilesExact(t *testing.T) {
	tiles := EvenTiles(1003, 77, 7)
	var bytes, comp int64
	for _, ti := range tiles {
		bytes += ti.Bytes
		comp += ti.ComputeCycles
	}
	if bytes != 1003 || comp != 77 {
		t.Errorf("EvenTiles loses work: %d bytes, %d compute", bytes, comp)
	}
}

// The cross-validation property backing the analytic cost model: for evenly
// tiled pipelines the closed form max(compute, transfer) + fill is within
// one tile's worth of the event-driven simulation.
func TestAnalyticMatchesSimulation(t *testing.T) {
	f := func(bw8, nt8 uint8, bytes16, comp16 uint16) bool {
		bw := float64(bw8%63 + 1)
		n := int(nt8%30 + 2)
		totalBytes := int64(bytes16)*50 + int64(n)
		totalComp := int64(comp16)*20 + int64(n)
		l := Link{BytesPerCycle: bw}
		tiles := EvenTiles(totalBytes, totalComp, n)

		sim := Simulate(l, tiles)
		ana := Analytic(l, tiles)

		// One tile of slack in either direction plus rounding.
		perTile := l.transferCycles(tiles[0].Bytes) + tiles[0].ComputeCycles + int64(n) + 2
		diff := sim - ana
		if diff < 0 {
			diff = -diff
		}
		return diff <= perTile
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Simulation can never beat both bounds: makespan >= total compute and
// makespan >= total transfer time.
func TestSimulationLowerBounds(t *testing.T) {
	f := func(bw8, nt8 uint8, bytes16, comp16 uint16) bool {
		bw := float64(bw8%63 + 1)
		n := int(nt8%20 + 1)
		totalBytes := int64(bytes16) * 10
		totalComp := int64(comp16) * 10
		l := Link{BytesPerCycle: bw}
		tiles := EvenTiles(totalBytes, totalComp, n)
		sim := Simulate(l, tiles)
		return sim >= totalComp && sim >= l.transferCycles(totalBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Fair sharing with proportional shares: each stream's shared makespan
// stays close to its isolated makespan (the property that lets the
// evaluator treat per-sub-accelerator bandwidth shares as dedicated links).
func TestSharedMatchesIsolated(t *testing.T) {
	shares := []Link{{BytesPerCycle: 16}, {BytesPerCycle: 48}}
	streams := [][]Tile{
		EvenTiles(32000, 1500, 20),
		EvenTiles(96000, 1800, 20),
	}
	res := SimulateShared(shares, streams)
	for i := range streams {
		iso, sh := res.Isolated[i], res.Shared[i]
		diff := sh - iso
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.20*float64(iso)+64 {
			t.Errorf("stream %d: shared %d vs isolated %d differs more than 20%%", i, sh, iso)
		}
	}
}

// Work conservation: when one stream is idle the other may finish earlier
// than isolated, never later than 2x its isolated bandwidth-bound time.
func TestSharedWorkConservation(t *testing.T) {
	shares := []Link{{BytesPerCycle: 8}, {BytesPerCycle: 56}}
	streams := [][]Tile{
		EvenTiles(80000, 10, 10), // bandwidth hungry, small share
		{},                       // idle
	}
	res := SimulateShared(shares, streams)
	// With the idle stream's bandwidth redistributed, stream 0 gets the
	// full 64 B/cycle: ~80000/64 = 1250 cycles rather than 10000.
	if res.Shared[0] > 2*1250+100 {
		t.Errorf("work conservation failed: shared makespan %d", res.Shared[0])
	}
}

func TestSimulatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad bw":    func() { Simulate(Link{}, []Tile{{Bytes: 1, ComputeCycles: 1}}) },
		"neg tile":  func() { Simulate(Link{BytesPerCycle: 1}, []Tile{{Bytes: -1}}) },
		"bad tiles": func() { EvenTiles(10, 10, 0) },
		"mismatch":  func() { SimulateShared([]Link{{BytesPerCycle: 1}}, nil) },
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
