package search

import (
	"context"
	"testing"

	"nasaic/internal/core"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

func fastCfg(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// The paper's headline comparison: architectures from spec-blind NAS cannot
// be made to fit the specs by any amount of hardware search (Table I).
func TestNASToASICViolatesSpecs(t *testing.T) {
	for _, w := range []workload.Workload{workload.W1(), workload.W2()} {
		c, err := NASToASIC(context.Background(), w, fastCfg(3), 150, 200)
		if err != nil {
			t.Fatal(err)
		}
		if c.Feasible {
			t.Errorf("%s: NAS→ASIC unexpectedly met the specs: L=%g E=%g A=%g",
				w.Name, float64(c.Latency), c.EnergyNJ, c.AreaUM2)
		}
		// The NAS networks should be near the accuracy ceiling.
		if c.Accuracies[0] < 0.93 {
			t.Errorf("%s: NAS CIFAR accuracy %f suspiciously low", w.Name, c.Accuracies[0])
		}
	}
}

func TestASICToHWNASMeetsSpecs(t *testing.T) {
	for _, w := range []workload.Workload{workload.W1(), workload.W2()} {
		c, err := ASICToHWNAS(context.Background(), w, fastCfg(3), 500, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Feasible {
			t.Errorf("%s: ASIC→HW-NAS found no feasible architecture", w.Name)
		}
		sp := w.Specs
		if c.Latency > sp.LatencyCycles || c.EnergyNJ > sp.EnergyNJ || c.AreaUM2 > sp.AreaUM2 {
			t.Errorf("%s: claimed-feasible candidate violates specs", w.Name)
		}
	}
}

func TestMonteCarloProducts(t *testing.T) {
	w := workload.W3()
	res, err := MonteCarlo(context.Background(), w, fastCfg(7), 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 400 {
		t.Fatalf("All has %d points, want 400", len(res.All))
	}
	if res.BestFeasible == nil {
		t.Fatal("no feasible point among 400 W3 samples (feasible region should be easy)")
	}
	if res.ClosestToSpec == nil {
		t.Fatal("no closest-to-spec point")
	}
	if !res.BestFeasible.Feasible || !res.ClosestToSpec.Feasible {
		t.Error("selected points must be feasible")
	}
	// The star maximizes weighted accuracy among feasible points.
	for _, c := range res.All {
		if c.Feasible && c.Weighted > res.BestFeasible.Weighted {
			t.Error("BestFeasible is not the best feasible point")
		}
	}
}

// Fig. 1's message: the closest-to-spec heuristic is generally not the
// accuracy-optimal feasible point. With enough samples the two must differ
// (weak form: best weighted >= closest's weighted).
func TestHeuristicNotBetterThanStar(t *testing.T) {
	res, err := MonteCarlo(context.Background(), workload.W3(), fastCfg(11), 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFeasible == nil || res.ClosestToSpec == nil {
		t.Skip("not enough feasible points")
	}
	if res.ClosestToSpec.Weighted > res.BestFeasible.Weighted {
		t.Error("closest-to-spec point cannot beat the best feasible point")
	}
}

func TestRandomDesignAlwaysValid(t *testing.T) {
	hw := core.DefaultConfig().HW
	rng := stats.NewRNG(1)
	for i := 0; i < 200; i++ {
		d := RandomDesign(hw, rng)
		if err := d.Validate(hw.Limits); err != nil {
			t.Fatalf("RandomDesign produced invalid design: %v", err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := NASToASIC(context.Background(), workload.W1(), fastCfg(5), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NASToASIC(context.Background(), workload.W1(), fastCfg(5), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Design.String() != b.Design.String() || a.Weighted != b.Weighted {
		t.Error("NASToASIC not deterministic for a fixed seed")
	}
}
