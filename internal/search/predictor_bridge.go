package search

import (
	"nasaic/internal/dnn"
	"nasaic/internal/predictor"
	"nasaic/internal/workload"
)

// predictorAccuracy evaluates a network's converged quality on the task's
// dataset. Kept in its own file so the baseline logic reads cleanly against
// the paper's description.
func predictorAccuracy(t workload.TaskSpec, n *dnn.Network) float64 {
	return predictor.Accuracy(t.Dataset, n)
}
