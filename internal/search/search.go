// Package search implements the comparison approaches of §V-C and Fig. 1:
//
//   - NASToASIC — successive optimization: mono-objective NAS first [1],
//     then brute-force hardware exploration for the fixed architectures.
//   - ASICToHWNAS — a 10,000-run Monte Carlo search for the ASIC design
//     closest to the design specs, then hardware-aware NAS [30] on that
//     fixed design.
//   - MonteCarlo — random co-sampling of (architectures, design) pairs,
//     which yields Fig. 1's optimal star and closest-to-spec heuristic
//     square.
//
// All approaches share NASAIC's evaluator so comparisons are apples-to-
// apples.
package search

import (
	"context"
	"math"

	"nasaic/internal/accel"
	"nasaic/internal/core"
	"nasaic/internal/dnn"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Candidate is one evaluated (architectures, design) point.
type Candidate struct {
	Choices  [][]int
	Networks []*dnn.Network
	Design   accel.Design

	Accuracies []float64
	Weighted   float64
	Latency    int64
	EnergyNJ   float64
	AreaUM2    float64
	Feasible   bool
}

// evalCandidate fills the metrics of a candidate via the shared evaluator.
func evalCandidate(ctx context.Context, e *core.Evaluator, w workload.Workload, nets []*dnn.Network,
	choices [][]int, d accel.Design) (Candidate, error) {
	m, err := e.HWEvalCtx(ctx, nets, d)
	if err != nil {
		return Candidate{}, err
	}
	accs := e.Accuracies(nets)
	return Candidate{
		Choices:  choices,
		Networks: nets,
		Design:   d,

		Accuracies: accs,
		Weighted:   w.Weighted(accs),
		Latency:    m.Latency,
		EnergyNJ:   m.EnergyNJ,
		AreaUM2:    m.AreaUM2,
		Feasible:   m.Feasible,
	}, nil
}

// nasArchitectures runs mono-objective NAS per task: it samples the space
// and returns the highest-accuracy architecture found (with the saturating
// accuracy model this converges to the capacity-maximal region, matching the
// paper's observation that spec-blind NAS picks networks too large for the
// hardware).
func nasArchitectures(w workload.Workload, samples int, rng *stats.RNG) ([][]int, []*dnn.Network) {
	choices := make([][]int, len(w.Tasks))
	nets := make([]*dnn.Network, len(w.Tasks))
	for ti, t := range w.Tasks {
		best := t.Space.Largest()
		bestNet := t.Space.MustDecode(best)
		bestAcc := taskAccuracy(t, bestNet)
		for s := 0; s < samples; s++ {
			c := t.Space.Random(rng)
			n := t.Space.MustDecode(c)
			if a := taskAccuracy(t, n); a > bestAcc {
				best, bestNet, bestAcc = c, n, a
			}
		}
		choices[ti] = best
		nets[ti] = bestNet
	}
	return choices, nets
}

func taskAccuracy(t workload.TaskSpec, n *dnn.Network) float64 {
	return predictorAccuracy(t, n)
}

// RandomDesign samples a resource-feasible design from the hardware space.
func RandomDesign(hw accel.Space, rng *stats.RNG) accel.Design {
	for {
		subs := make([]accel.SubAccel, hw.NumSubs)
		for i := range subs {
			subs[i] = accel.SubAccel{
				DF:  hw.Styles[rng.Intn(len(hw.Styles))],
				PEs: hw.PEOptions[rng.Intn(len(hw.PEOptions))],
				BW:  hw.BWOptions[rng.Intn(len(hw.BWOptions))],
			}
		}
		d := accel.NewDesign(subs...)
		if d.Validate(hw.Limits) == nil {
			return d
		}
	}
}

// NASToASIC runs the successive baseline: NAS ignores hardware, then
// hwSamples random hardware designs are brute-force evaluated for the fixed
// architectures; the design with the lowest penalty (closest to
// satisfiable) is returned. In the paper, no design satisfies the specs for
// the NAS-chosen networks (Table I, rows "NAS→ASIC"). The context is checked
// per sample; cancellation returns its error.
func NASToASIC(ctx context.Context, w workload.Workload, cfg core.Config, archSamples, hwSamples int) (Candidate, error) {
	e, err := core.NewEvaluator(w, cfg)
	if err != nil {
		return Candidate{}, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x0a51c)
	choices, nets := nasArchitectures(w, archSamples, rng)

	best := Candidate{}
	bestPen := math.Inf(1)
	for s := 0; s < hwSamples; s++ {
		d := RandomDesign(cfg.HW, rng)
		m, err := e.HWEvalCtx(ctx, nets, d)
		if err != nil {
			return Candidate{}, err
		}
		pen := e.Penalty(m)
		// Prefer lower penalty; among (near-)equals prefer lower latency so
		// the reported best-effort design is the performance frontier.
		if pen < bestPen-1e-9 || (pen < bestPen+1e-9 && m.Latency < best.Latency) {
			bestPen = pen
			best, err = evalCandidate(ctx, e, w, nets, choices, d)
			if err != nil {
				return Candidate{}, err
			}
		}
	}
	// Snapshot the warm tier (a no-op without Config.CacheDir); the baseline
	// hammers the same layer shapes NASAIC does, so later searches start warm.
	_ = e.SaveCaches()
	return best, nil
}

// ClosestToSpecDesign runs the Monte Carlo hardware search of the
// ASIC→HW-NAS baseline: mcRuns random designs are evaluated with the
// NAS-identified architectures and the design with the smallest normalized
// distance to the spec point ⟨LS, ES, AS⟩ is returned. The context is
// checked per sample; cancellation returns its error.
func ClosestToSpecDesign(ctx context.Context, w workload.Workload, e *core.Evaluator, cfg core.Config,
	nets []*dnn.Network, mcRuns int, rng *stats.RNG) (accel.Design, error) {
	sp := w.Specs
	best := RandomDesign(cfg.HW, rng)
	bestDist := math.Inf(1)
	bestWithinArea := false
	for s := 0; s < mcRuns; s++ {
		d := RandomDesign(cfg.HW, rng)
		m, err := e.HWEvalCtx(ctx, nets, d)
		if err != nil {
			return accel.Design{}, err
		}
		// Area is (nearly) architecture-independent, so a design whose area
		// already exceeds AS can never host a spec-satisfying architecture;
		// prefer designs inside the area budget.
		withinArea := m.AreaUM2 <= sp.AreaUM2
		if bestWithinArea && !withinArea {
			continue
		}
		dl := float64(m.Latency)/float64(sp.LatencyCycles) - 1
		de := m.EnergyNJ/sp.EnergyNJ - 1
		da := m.AreaUM2/sp.AreaUM2 - 1
		dist := dl*dl + de*de + da*da
		if dist < bestDist || (withinArea && !bestWithinArea) {
			bestDist, best, bestWithinArea = dist, d, withinArea
		}
	}
	return best, nil
}

// ASICToHWNAS runs the second baseline: fix the closest-to-spec design from
// mcRuns Monte Carlo hardware samples, then run hardware-aware NAS on that
// design — random architecture search keeping the best feasible weighted
// accuracy (an MnasNet-style single-design search [30]).
func ASICToHWNAS(ctx context.Context, w workload.Workload, cfg core.Config, mcRuns, nasSamples int) (Candidate, error) {
	e, err := core.NewEvaluator(w, cfg)
	if err != nil {
		return Candidate{}, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x17a5)
	_, nasNets := nasArchitectures(w, 200, rng)
	design, err := ClosestToSpecDesign(ctx, w, e, cfg, nasNets, mcRuns, rng)
	if err != nil {
		return Candidate{}, err
	}

	var best Candidate
	have := false
	for s := 0; s < nasSamples; s++ {
		choices := make([][]int, len(w.Tasks))
		nets := make([]*dnn.Network, len(w.Tasks))
		for ti, t := range w.Tasks {
			choices[ti] = t.Space.Random(rng)
			nets[ti] = t.Space.MustDecode(choices[ti])
		}
		m, err := e.HWEvalCtx(ctx, nets, design)
		if err != nil {
			return Candidate{}, err
		}
		if !m.Feasible {
			continue
		}
		c, err := evalCandidate(ctx, e, w, nets, choices, design)
		if err != nil {
			return Candidate{}, err
		}
		if !have || c.Weighted > best.Weighted {
			best, have = c, true
		}
	}
	if !have {
		// Fall back to the smallest architectures so callers always get a
		// concrete candidate to report.
		choices := make([][]int, len(w.Tasks))
		nets := make([]*dnn.Network, len(w.Tasks))
		for ti, t := range w.Tasks {
			choices[ti] = t.Space.Smallest()
			nets[ti] = t.Space.MustDecode(choices[ti])
		}
		best, err = evalCandidate(ctx, e, w, nets, choices, design)
		if err != nil {
			return Candidate{}, err
		}
	}
	_ = e.SaveCaches() // persist the warm tier; no-op without Config.CacheDir
	return best, nil
}

// MonteCarloResult holds the products of the random co-search.
type MonteCarloResult struct {
	// All contains every evaluated point (for Fig. 1 scatter export).
	All []Candidate
	// BestFeasible maximizes weighted accuracy subject to the specs
	// (Fig. 1's star).
	BestFeasible *Candidate
	// ClosestToSpec is the feasible point minimizing the normalized
	// distance to the spec corner (Fig. 1's heuristic square).
	ClosestToSpec *Candidate
	// Stats reports the evaluator work the search performed, including
	// hardware-evaluation cache effectiveness (random co-sampling rarely
	// repeats points, so its hit rate lower-bounds every other approach).
	Stats core.EvalStats
}

// MonteCarlo co-samples runs random (architectures, design) pairs. The
// context is checked per sample; cancellation returns its error.
func MonteCarlo(ctx context.Context, w workload.Workload, cfg core.Config, runs int) (*MonteCarloResult, error) {
	e, err := core.NewEvaluator(w, cfg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x3ca7e)
	res := &MonteCarloResult{}
	sp := w.Specs
	bestDist := math.Inf(1)
	for s := 0; s < runs; s++ {
		choices := make([][]int, len(w.Tasks))
		nets := make([]*dnn.Network, len(w.Tasks))
		for ti, t := range w.Tasks {
			choices[ti] = t.Space.Random(rng)
			nets[ti] = t.Space.MustDecode(choices[ti])
		}
		d := RandomDesign(cfg.HW, rng)
		c, err := evalCandidate(ctx, e, w, nets, choices, d)
		if err != nil {
			return nil, err
		}
		res.All = append(res.All, c)
		if !c.Feasible {
			continue
		}
		cc := c
		if res.BestFeasible == nil || c.Weighted > res.BestFeasible.Weighted {
			res.BestFeasible = &cc
		}
		dl := 1 - float64(c.Latency)/float64(sp.LatencyCycles)
		de := 1 - c.EnergyNJ/sp.EnergyNJ
		da := 1 - c.AreaUM2/sp.AreaUM2
		dist := dl*dl + de*de + da*da
		if dist < bestDist {
			bestDist = dist
			res.ClosestToSpec = &cc
		}
	}
	res.Stats = e.EvalStats()
	_ = e.SaveCaches() // persist the warm tier; no-op without Config.CacheDir
	return res, nil
}
