package experiments

import (
	"context"
	"fmt"
	"io"

	"nasaic/internal/core"
	"nasaic/internal/dnn"
	"nasaic/internal/export"
	"nasaic/internal/predictor"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Table2 reproduces Table II: on the homogeneous CIFAR-10 workload W3
// (specs ⟨4e5, 1e9, 4e9⟩), compare
//
//   - NAS — spec-blind architecture search paired with the maximum
//     single accelerator ⟨dla, 4096, 64⟩;
//   - Single Acc. — NASAIC restricted to one sub-accelerator; the network
//     executes twice sequentially, so latency and energy specs are halved;
//   - Homo. Acc. — NASAIC restricted to one sub-accelerator with half the
//     PE/bandwidth/area/energy budget, then instantiated twice;
//   - Hetero. Acc. — full NASAIC on W3 with two sub-accelerators.
//
// The returned SearchStats aggregate the three NASAIC runs' evaluator work
// (including hardware-evaluation cache effectiveness).
func Table2(ctx context.Context, b Budget) ([]ApproachResult, SearchStats, error) {
	w3 := workload.W3()
	sp := w3.Specs
	cfg := b.config()
	// One accuracy memo for all four approaches (see Table1).
	cfg.AccMemo = b.accMemo()

	var out []ApproachResult
	var stats SearchStats

	// -- NAS with maximum hardware ------------------------------------------
	nasRow, err := table2NAS(ctx, w3, b, cfg)
	if err != nil {
		return nil, stats, err
	}
	out = append(out, nasRow)

	// -- Single accelerator --------------------------------------------------
	singleW := singleCIFARWorkload("W3-single", workload.Specs{
		LatencyCycles: sp.LatencyCycles / 2,
		EnergyNJ:      sp.EnergyNJ / 2,
		AreaUM2:       sp.AreaUM2,
	})
	singleCfg := cfg
	singleCfg.HW = singleSubSpace(4096, 64)
	single, singleRes, err := runRestricted(ctx, "Single Acc.", singleW, singleCfg, 1)
	if err != nil {
		return nil, stats, err
	}
	out = append(out, single)
	stats.add(singleRes)

	// -- Homogeneous accelerators -------------------------------------------
	homoW := singleCIFARWorkload("W3-homo", workload.Specs{
		LatencyCycles: sp.LatencyCycles,
		EnergyNJ:      sp.EnergyNJ / 2,
		AreaUM2:       sp.AreaUM2 / 2,
	})
	homoCfg := cfg
	homoCfg.HW = singleSubSpace(2048, 32)
	homo, homoRes, err := runRestricted(ctx, "Homo. Acc.", homoW, homoCfg, 2)
	if err != nil {
		return nil, stats, err
	}
	out = append(out, homo)
	stats.add(homoRes)

	// -- Heterogeneous accelerators (full NASAIC) ----------------------------
	x, err := core.New(w3, cfg)
	if err != nil {
		return nil, stats, err
	}
	res, err := x.RunContext(ctx)
	if err != nil {
		return nil, stats, err
	}
	_ = x.SaveCaches() // persist the warm tier; no-op without Budget.CacheDir
	if res.Best == nil {
		return nil, stats, fmt.Errorf("experiments: NASAIC found no feasible W3 solution")
	}
	stats.add(res)
	hetero := ApproachResult{
		Workload: "W3", Approach: "Hetero. Acc. (NASAIC)",
		Hardware: res.Best.Design.String(),
		Latency:  res.Best.Latency, EnergyNJ: res.Best.EnergyNJ,
		AreaUM2: res.Best.AreaUM2, Feasible: res.Best.Feasible,
	}
	for i, t := range w3.Tasks {
		hetero.Rows = append(hetero.Rows, DatasetRow{
			Dataset:  t.Dataset.String(),
			Metric:   t.Dataset.Metric(),
			Arch:     archString(t.Space, res.Best.ArchChoices[i]),
			Accuracy: res.Best.Accuracies[i],
		})
	}
	out = append(out, hetero)
	return out, stats, nil
}

// table2NAS evaluates the spec-blind NAS row: the best-accuracy architecture
// on the maximum single accelerator, running both W3 task instances.
func table2NAS(ctx context.Context, w3 workload.Workload, b Budget, cfg core.Config) (ApproachResult, error) {
	e, err := core.NewEvaluator(w3, cfg)
	if err != nil {
		return ApproachResult{}, err
	}
	rng := stats.NewRNG(b.Seed ^ 0x7a2)
	sp := w3.Tasks[0].Space
	bestChoices := sp.Largest()
	bestNet := sp.MustDecode(bestChoices)
	bestAcc := predictor.Accuracy(predictor.CIFAR10, bestNet)
	for s := 0; s < b.NASSamples; s++ {
		c := sp.Random(rng)
		n := sp.MustDecode(c)
		if a := predictor.Accuracy(predictor.CIFAR10, n); a > bestAcc {
			bestChoices, bestNet, bestAcc = c, n, a
		}
	}
	d := maxSingleDesign()
	m, err := e.HWEvalCtx(ctx, []*dnn.Network{bestNet, bestNet}, d)
	if err != nil {
		return ApproachResult{}, err
	}
	_ = e.SaveCaches() // persist the warm tier; no-op without Budget.CacheDir
	return ApproachResult{
		Workload: "W3", Approach: "NAS",
		Hardware: d.Subs[0].String(),
		Rows: []DatasetRow{{
			Dataset: "CIFAR-10", Metric: "accuracy",
			Arch: archString(sp, bestChoices), Accuracy: bestAcc,
		}},
		Latency: m.Latency, EnergyNJ: m.EnergyNJ, AreaUM2: m.AreaUM2, Feasible: m.Feasible,
	}, nil
}

// runRestricted runs NASAIC on a single-task workload with a restricted
// hardware space and reports the result scaled by `copies` accelerator
// instances (Homo. Acc. duplicates the found design).
func runRestricted(ctx context.Context, name string, w workload.Workload, cfg core.Config, copies int) (ApproachResult, *core.Result, error) {
	x, err := core.New(w, cfg)
	if err != nil {
		return ApproachResult{}, nil, err
	}
	res, err := x.RunContext(ctx)
	if err != nil {
		return ApproachResult{}, nil, err
	}
	_ = x.SaveCaches() // persist the warm tier; no-op without Budget.CacheDir
	if res.Best == nil {
		return ApproachResult{}, nil, fmt.Errorf("experiments: %s search found no feasible solution", name)
	}
	hwStr := res.Best.Design.String()
	lat := res.Best.Latency
	energy := res.Best.EnergyNJ
	area := res.Best.AreaUM2
	if copies == 2 {
		hwStr = "2x " + hwStr
		energy *= 2
		area *= 2
	} else {
		// Single accelerator executes the network twice sequentially.
		hwStr = res.Best.Design.String()
		lat *= 2
		energy *= 2
	}
	ar := ApproachResult{
		Workload: "W3", Approach: name, Hardware: hwStr,
		Latency: lat, EnergyNJ: energy, AreaUM2: area, Feasible: res.Best.Feasible,
	}
	arch := archString(w.Tasks[0].Space, res.Best.ArchChoices[0])
	if copies == 2 {
		arch = "2x " + arch
	}
	ar.Rows = append(ar.Rows, DatasetRow{
		Dataset: "CIFAR-10", Metric: "accuracy",
		Arch: arch, Accuracy: res.Best.Accuracies[0],
	})
	return ar, res, nil
}

// RenderTable2 writes the Table II comparison.
func RenderTable2(w io.Writer, rows []ApproachResult) {
	header := []string{"Approach", "Hardware", "Architecture", "Accuracy", "L /cycles", "E /nJ", "A /um2", "Sat."}
	var cells [][]string
	for _, r := range rows {
		for i, d := range r.Rows {
			line := []string{"", "", d.Arch, export.Pct(d.Accuracy), "", "", "", ""}
			if i == 0 {
				line[0] = r.Approach
				line[1] = r.Hardware
				line[4] = export.Sci(float64(r.Latency))
				line[5] = export.Sci(r.EnergyNJ)
				line[6] = export.Sci(r.AreaUM2)
				line[7] = export.Mark(r.Feasible)
			}
			cells = append(cells, line)
		}
	}
	export.Table(w, header, cells)
}
