package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"nasaic/internal/workload"
)

func tinyBudget(seed int64) Budget {
	return Budget{Episodes: 60, MCRuns: 250, NASSamples: 60, HWSamples: 80, Seed: seed}
}

// The Table I shape: NAS→ASIC violates the specs on both workloads; the
// other two approaches satisfy them; NASAIC's accuracy beats or matches
// ASIC→HW-NAS on the weighted metric.
func TestTable1Shape(t *testing.T) {
	rows, _, err := Table1(context.Background(), tinyBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 approach rows (3 per workload), got %d", len(rows))
	}
	byKey := map[string]ApproachResult{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Approach] = r
	}
	for _, wn := range []string{"W1", "W2"} {
		nas := byKey[wn+"/NAS->ASIC"]
		if nas.Feasible {
			t.Errorf("%s: NAS->ASIC should violate the specs", wn)
		}
		for _, app := range []string{"ASIC->HW-NAS", "NASAIC"} {
			r := byKey[wn+"/"+app]
			if !r.Feasible {
				t.Errorf("%s/%s: expected a spec-satisfying solution", wn, app)
			}
		}
		// NASAIC should not lose much accuracy vs the spec-blind NAS nets.
		nasaic := byKey[wn+"/NASAIC"]
		var nasW, naW float64
		for i := range nas.Rows {
			nasW += nas.Rows[i].Accuracy
			naW += nasaic.Rows[i].Accuracy
		}
		if naW < nasW-0.12*float64(len(nas.Rows)) {
			t.Errorf("%s: NASAIC weighted accuracy dropped too far: %f vs NAS %f", wn, naW, nasW)
		}
	}
}

// The Table II shape: NAS violates; the three NASAIC variants satisfy; the
// heterogeneous design's best network beats the single-accelerator network.
func TestTable2Shape(t *testing.T) {
	rows, _, err := Table2(context.Background(), tinyBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	if rows[0].Approach != "NAS" || rows[0].Feasible {
		t.Errorf("NAS row should violate specs: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if !r.Feasible {
			t.Errorf("%s should satisfy specs", r.Approach)
		}
	}
	nasAcc := rows[0].Rows[0].Accuracy
	for _, r := range rows[1:] {
		if r.Rows[0].Accuracy > nasAcc+0.005 {
			t.Errorf("%s accuracy %.4f should not exceed unconstrained NAS %.4f",
				r.Approach, r.Rows[0].Accuracy, nasAcc)
		}
	}
	// The heterogeneous row reports two networks.
	hetero := rows[3]
	if len(hetero.Rows) != 2 {
		t.Errorf("heterogeneous NASAIC should report two networks, got %d", len(hetero.Rows))
	}
}

func TestFig1Shape(t *testing.T) {
	d, err := Fig1(context.Background(), tinyBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NASASIC) == 0 {
		t.Fatal("no NAS->ASIC points")
	}
	// Fig. 1's core message: every successive NAS→ASIC point violates specs.
	for _, p := range d.NASASIC {
		if p.Feasible {
			t.Errorf("NAS->ASIC point unexpectedly feasible: %+v", p)
			break
		}
	}
	if d.Optimal == nil {
		t.Fatal("Monte Carlo found no feasible point")
	}
	if d.OptimalAcc <= 0 || d.OptimalAcc > 1 {
		t.Errorf("optimal accuracy %f out of range", d.OptimalAcc)
	}
	// The MC optimum cannot be worse than the heuristic square.
	if d.Heuristic != nil && d.HeuristicAcc > d.OptimalAcc {
		t.Error("heuristic point beats the MC optimum")
	}
	// The NAS accuracy upper-bounds everything feasible.
	if d.OptimalAcc > d.NASAcc+0.005 {
		t.Errorf("feasible optimum %.4f should not beat unconstrained NAS %.4f", d.OptimalAcc, d.NASAcc)
	}
}

func TestFig6Shape(t *testing.T) {
	for _, w := range []workload.Workload{workload.W3(), workload.W1()} {
		d, err := Fig6(context.Background(), w, tinyBudget(5))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sp := w.Specs
		for _, p := range d.Explored {
			if p.Latency > sp.LatencyCycles || p.EnergyNJ > sp.EnergyNJ || p.AreaUM2 > sp.AreaUM2 {
				t.Errorf("%s: explored point violates specs: %+v", w.Name, p)
				break
			}
		}
		if d.Best.Weighted <= 0 {
			t.Errorf("%s: missing best point", w.Name)
		}
		if len(d.LowerBounds) == 0 {
			t.Errorf("%s: missing lower-bound series", w.Name)
		}
		// Best must beat the smallest-architecture lower bound.
		lower := w.Weighted(d.LowerAccs)
		if d.Best.Weighted <= lower {
			t.Errorf("%s: best weighted %.4f does not beat lower bound %.4f",
				w.Name, d.Best.Weighted, lower)
		}
	}
}

func TestRenderers(t *testing.T) {
	b := tinyBudget(1)
	rows, _, err := Table1(context.Background(), Budget{Episodes: 40, MCRuns: 120, NASSamples: 40, HWSamples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"NASAIC", "W1", "W2", "CIFAR-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 rendering missing %q", want)
		}
	}

	d, err := Fig1(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderFig1(&buf, d)
	if !strings.Contains(buf.String(), "Fig.1") {
		t.Error("fig 1 rendering missing title")
	}

	header, csvRows := Table1CSV(rows)
	if len(header) == 0 || len(csvRows) == 0 {
		t.Error("empty table 1 CSV")
	}
	ph, pr := PointsCSV(d.NASASIC, "nas_asic")
	if len(ph) != 6 || len(pr) != len(d.NASASIC) {
		t.Error("points CSV shape wrong")
	}
}
