package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden table renderings")

// The Table I / Table II renderings at QuickBudget are golden-pinned: every
// number the benchmark harness prints (architectures, hardware tuples,
// accuracies, latency/energy/area, feasibility marks) must stay bit-identical
// under performance work. The hardware-evaluation cache, the in-batch dedup,
// and the worker count are all designed to be invisible here — a diff in
// these files means reported results changed, which needs an explicit
// `go test ./internal/experiments -run Golden -update` and a review of why.
//
// Everything upstream is deterministic in Budget.Seed, so the goldens are
// stable across runs and across cache modes on the same float hardware.
func testTableGolden(t *testing.T, name string, render func() ([]byte, error)) {
	if testing.Short() {
		t.Skip("QuickBudget regeneration is too slow for -short")
	}
	got, err := render()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden rendering.\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

func TestTable1GoldenQuickBudget(t *testing.T) {
	testTableGolden(t, "table1_quickbudget.golden", func() ([]byte, error) {
		rows, _, err := Table1(context.Background(), QuickBudget())
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		RenderTable1(&buf, rows)
		return buf.Bytes(), nil
	})
}

func TestTable2GoldenQuickBudget(t *testing.T) {
	testTableGolden(t, "table2_quickbudget.golden", func() ([]byte, error) {
		rows, _, err := Table2(context.Background(), QuickBudget())
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		RenderTable2(&buf, rows)
		return buf.Bytes(), nil
	})
}

// The cache must not leak into reported numbers: a cache-disabled QuickBudget
// Table II render has to match the same golden file byte for byte. (Table II
// is the cheaper of the two tables; Table I's cross-mode equality is covered
// at unit level by internal/core's determinism tests.)
func TestTable2GoldenCacheOff(t *testing.T) {
	testTableGolden(t, "table2_quickbudget.golden", func() ([]byte, error) {
		b := QuickBudget()
		b.DisableHWCache = true
		rows, _, err := Table2(context.Background(), b)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		RenderTable2(&buf, rows)
		return buf.Bytes(), nil
	})
}
