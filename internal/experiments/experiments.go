// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Table I (NAS→ASIC vs ASIC→HW-NAS vs NASAIC on W1/W2),
// Table II (single vs homogeneous vs heterogeneous accelerators on W3),
// Fig. 1 (design-space exploration for CIFAR-10) and Fig. 6 (NASAIC
// exploration results for W1–W3). The same entry points back the cmd/
// binaries and the root bench_test.go harness; a Scale parameter shrinks
// search budgets so benchmarks finish in minutes while the shapes persist.
package experiments

import (
	"nasaic/internal/accel"
	"nasaic/internal/core"
	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/predictor"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Budget scales the search effort of every experiment.
type Budget struct {
	// Episodes is NASAIC's β (paper: 500).
	Episodes int
	// MCRuns is the Monte Carlo sample count (paper: 10,000).
	MCRuns int
	// NASSamples bounds the mono-objective NAS sampling of the baselines.
	NASSamples int
	// HWSamples bounds the brute-force hardware exploration of NAS→ASIC.
	HWSamples int
	// Seed drives every deterministic RNG.
	Seed int64
	// DisableHWCache turns off the hardware-evaluation cache (the zero
	// value keeps it on). Results are bit-identical either way; only wall
	// clock and the reported evaluation counts change.
	DisableHWCache bool
	// DisableLayerMemo turns off the evaluator's per-layer cost-model memo
	// (the zero value keeps it on). As with the cache, results are
	// bit-identical either way.
	DisableLayerMemo bool
	// SharedMemo promotes the layer-cost memo to the process-wide
	// maestro.SharedCostMemo and shares one accuracy-predictor memo across
	// all of an experiment's searches, so the Table I/II baselines — which
	// build a fresh evaluator per approach — start warm. Both memoize pure
	// functions: results are bit-identical, only the reported hit rates,
	// training counts and wall clock change.
	SharedMemo bool
	// SequentialController disables the controller's lockstep batched
	// sampling/BPTT fast path (the zero value keeps it on). The batched
	// path is bit-identical to the sequential one; this switch exists for
	// the speedup control benchmarks.
	SequentialController bool
	// NoSolverCheckpoint disables the HAP heuristic's checkpointed
	// move-scan simulator (the zero value keeps it on). Bit-identical
	// either way; exists for the solver speedup controls.
	NoSolverCheckpoint bool
	// CacheDir backs the layer-cost memo and hardware-evaluation caches of
	// every search in the experiment with a persistent on-disk warm tier
	// (see core.Config.CacheDir): snapshots under this directory are loaded
	// when each evaluator is built and written back after each search, so a
	// second process pointed at the same directory replays the experiment
	// with ~100% memo hit rates. Empty (the zero value) keeps the warm tier
	// off. Results are bit-identical either way; only the reported hit
	// rates and wall clock change.
	CacheDir string
}

// PaperBudget is the full-fidelity configuration of §V-A.
func PaperBudget() Budget {
	return Budget{Episodes: 500, MCRuns: 10000, NASSamples: 500, HWSamples: 2000, Seed: 1}
}

// QuickBudget is the reduced configuration used by `go test -bench`; shapes
// (who wins, what is feasible) are preserved, absolute search quality is
// slightly lower. The reduction is documented in EXPERIMENTS.md.
func QuickBudget() Budget {
	return Budget{Episodes: 150, MCRuns: 1200, NASSamples: 120, HWSamples: 300, Seed: 1}
}

func (b Budget) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Episodes = b.Episodes
	cfg.Seed = b.Seed
	cfg.HWCache = !b.DisableHWCache
	cfg.LayerCostMemo = !b.DisableLayerMemo
	cfg.ShareLayerMemo = b.SharedMemo
	cfg.BatchedController = !b.SequentialController
	cfg.SolverNoCheckpoint = b.NoSolverCheckpoint
	cfg.CacheDir = b.CacheDir
	return cfg
}

// accMemo returns the experiment-wide accuracy memo (nil unless SharedMemo).
func (b Budget) accMemo() *core.AccuracyMemo {
	if !b.SharedMemo {
		return nil
	}
	return core.NewAccuracyMemo()
}

// SearchStats aggregates evaluator work across an experiment's NASAIC runs:
// how many hardware evaluations were requested, how many actually ran, how
// many the evalcache layer or the in-batch dedup absorbed, and how much of
// the cost-model traffic the per-layer memo served.
type SearchStats struct {
	Trainings         int
	HWRequests        int
	HWEvals           int
	HWCacheHits       int
	HWDeduped         int
	LayerCostRequests int
	LayerCostHits     int
}

// HitPct returns the percentage of hardware requests served from cache.
func (s SearchStats) HitPct() float64 {
	return stats.Pct(int64(s.HWCacheHits), int64(s.HWRequests))
}

// LayerHitPct returns the percentage of cost-model queries served by the
// evaluator's per-layer memo.
func (s SearchStats) LayerHitPct() float64 {
	return stats.Pct(int64(s.LayerCostHits), int64(s.LayerCostRequests))
}

// add folds one NASAIC run's counters into the aggregate.
func (s *SearchStats) add(res *core.Result) {
	s.Trainings += res.Trainings
	s.HWRequests += res.HWRequests
	s.HWEvals += res.HWEvals
	s.HWCacheHits += res.HWCacheHits
	s.HWDeduped += res.HWDeduped
	s.LayerCostRequests += res.LayerCostRequests
	s.LayerCostHits += res.LayerCostHits
}

// archString renders the selected hyperparameter values of a choice vector
// in the paper's tuple notation.
func archString(sp *dnn.Space, choices []int) string {
	return sp.ValuesString(choices)
}

// DatasetRow is one dataset line within an approach row (Table I groups two
// datasets per approach).
type DatasetRow struct {
	Dataset  string
	Metric   string
	Arch     string
	Accuracy float64
}

// ApproachResult is one approach's outcome on one workload.
type ApproachResult struct {
	Workload string
	Approach string
	Hardware string
	Rows     []DatasetRow

	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
	Feasible bool
}

// singleCIFARWorkload builds a one-task CIFAR-10 workload with the given
// specs (used by Fig. 1 and the Table II single/homogeneous rows).
func singleCIFARWorkload(name string, specs workload.Specs) workload.Workload {
	return workload.Workload{
		Name: name,
		Tasks: []workload.TaskSpec{
			{Name: "cifar", Dataset: predictor.CIFAR10, Space: dnn.CIFARResNetSpace(), Weight: 1},
		},
		Specs: specs,
	}
}

// singleSubSpace restricts the hardware space to one sub-accelerator with
// the given resource limits.
func singleSubSpace(maxPEs, maxBW int) accel.Space {
	full := accel.DefaultSpace()
	s := accel.Space{
		Limits:  accel.Limits{MaxPEs: maxPEs, MaxBW: maxBW},
		NumSubs: 1,
		Styles:  full.Styles,
	}
	for _, p := range full.PEOptions {
		if p > 0 && p <= maxPEs {
			s.PEOptions = append(s.PEOptions, p)
		}
	}
	for _, b := range full.BWOptions {
		if b <= maxBW {
			s.BWOptions = append(s.BWOptions, b)
		}
	}
	return s
}

// maxSingleDesign is the all-resources single accelerator the paper pairs
// with spec-blind NAS in Table II: ⟨dla, 4096, 64⟩.
func maxSingleDesign() accel.Design {
	return accel.NewDesign(
		accel.SubAccel{DF: dataflow.NVDLA, PEs: 4096, BW: 64},
		accel.SubAccel{DF: dataflow.Shidiannao, PEs: 0, BW: 8},
	)
}
