package experiments

import (
	"context"
	"fmt"
	"io"

	"nasaic/internal/core"
	"nasaic/internal/dnn"
	"nasaic/internal/export"
	"nasaic/internal/pareto"
	"nasaic/internal/search"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// MetricPoint is one solution in the (latency, energy, area) space with its
// quality annotation.
type MetricPoint struct {
	Latency  int64
	EnergyNJ float64
	AreaUM2  float64
	Weighted float64
	Feasible bool
}

func toPoint(lat int64, e, a, wgt float64, feas bool) MetricPoint {
	return MetricPoint{Latency: lat, EnergyNJ: e, AreaUM2: a, Weighted: wgt, Feasible: feas}
}

// Fig1Data holds the four solution families of Fig. 1 for the CIFAR-10
// classification study.
type Fig1Data struct {
	Specs workload.Specs
	// NASASIC are successive NAS→ASIC points (circles): the spec-blind
	// architecture paired with many hardware designs.
	NASASIC []MetricPoint
	// HWNAS is the hardware-aware-NAS-on-fixed-design point (triangle).
	HWNAS MetricPoint
	// Heuristic is the closest-to-spec Monte Carlo point (square).
	Heuristic *MetricPoint
	// Optimal is the best feasible Monte Carlo point (star).
	Optimal *MetricPoint
	// Accuracies for the annotation boxes.
	NASAcc, HWNASAcc, HeuristicAcc, OptimalAcc float64
}

// Fig1Workload is the single-task CIFAR-10 workload of the introduction's
// motivating study, with specs sized for one network (half the W3 budget).
func Fig1Workload() workload.Workload {
	return singleCIFARWorkload("Fig1", workload.Specs{
		LatencyCycles: 2e5, EnergyNJ: 5e8, AreaUM2: 4e9,
	})
}

// Fig1 regenerates the motivating design-space exploration.
func Fig1(ctx context.Context, b Budget) (*Fig1Data, error) {
	w := Fig1Workload()
	cfg := b.config()
	// With Budget.SharedMemo, the NAS→ASIC sweep, the HW-NAS baseline and
	// the Monte Carlo search (each building its own evaluator) share one
	// accuracy memo.
	cfg.AccMemo = b.accMemo()
	e, err := core.NewEvaluator(w, cfg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(b.Seed ^ 0xf191)

	d := &Fig1Data{Specs: w.Specs}

	// Circles: the NAS-chosen architecture across many hardware designs.
	sp := w.Tasks[0].Space
	nasChoices := sp.Largest()
	nasNet := sp.MustDecode(nasChoices)
	accs := e.Accuracies([]*dnn.Network{nasNet})
	d.NASAcc = accs[0]
	for s := 0; s < b.HWSamples; s++ {
		des := search.RandomDesign(cfg.HW, rng)
		m, err := e.HWEvalCtx(ctx, []*dnn.Network{nasNet}, des)
		if err != nil {
			return nil, err
		}
		d.NASASIC = append(d.NASASIC, toPoint(m.Latency, m.EnergyNJ, m.AreaUM2, accs[0], m.Feasible))
	}

	// Triangle: hardware-aware NAS on the closest-to-spec fixed design.
	hwnas, err := search.ASICToHWNAS(ctx, w, cfg, b.MCRuns/2, b.NASSamples*3)
	if err != nil {
		return nil, err
	}
	d.HWNAS = toPoint(hwnas.Latency, hwnas.EnergyNJ, hwnas.AreaUM2, hwnas.Weighted, hwnas.Feasible)
	d.HWNASAcc = hwnas.Weighted

	// Star and square: Monte Carlo co-search.
	mc, err := search.MonteCarlo(ctx, w, cfg, b.MCRuns)
	if err != nil {
		return nil, err
	}
	if mc.BestFeasible != nil {
		p := toPoint(mc.BestFeasible.Latency, mc.BestFeasible.EnergyNJ, mc.BestFeasible.AreaUM2,
			mc.BestFeasible.Weighted, true)
		d.Optimal = &p
		d.OptimalAcc = mc.BestFeasible.Weighted
	}
	if mc.ClosestToSpec != nil {
		p := toPoint(mc.ClosestToSpec.Latency, mc.ClosestToSpec.EnergyNJ, mc.ClosestToSpec.AreaUM2,
			mc.ClosestToSpec.Weighted, true)
		d.Heuristic = &p
		d.HeuristicAcc = mc.ClosestToSpec.Weighted
	}
	_ = e.SaveCaches() // persist the warm tier; no-op without Budget.CacheDir
	return d, nil
}

// Fig6Data holds one workload panel of Fig. 6.
type Fig6Data struct {
	Workload workload.Workload
	// Explored are NASAIC's feasible solutions (green diamonds).
	Explored []MetricPoint
	// Best is the highest-weighted-accuracy solution (red star).
	Best     MetricPoint
	BestAccs []float64
	// LowerBounds pair the smallest architectures with sampled designs
	// (blue crosses).
	LowerBounds []MetricPoint
	LowerAccs   []float64
	// Pruned counts episodes whose training was skipped.
	Pruned int
	// ParetoIdx indexes the explored solutions that are non-dominated in
	// (latency, energy, area, −weighted accuracy).
	ParetoIdx []int
	// Stats reports the NASAIC run's evaluator work, including hardware-
	// evaluation cache effectiveness.
	Stats SearchStats
}

// Fig6 regenerates one panel of Fig. 6 for the given workload.
func Fig6(ctx context.Context, w workload.Workload, b Budget) (*Fig6Data, error) {
	cfg := b.config()
	cfg.AccMemo = b.accMemo()
	x, err := core.New(w, cfg)
	if err != nil {
		return nil, err
	}
	res, err := x.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, fmt.Errorf("experiments: fig 6 %s: no feasible solution", w.Name)
	}
	d := &Fig6Data{Workload: w, Pruned: res.Pruned}
	d.Stats.add(res)
	var pts []pareto.Point
	for i, s := range res.Explored {
		d.Explored = append(d.Explored, toPoint(s.Latency, s.EnergyNJ, s.AreaUM2, s.Weighted, true))
		pts = append(pts, pareto.Point{
			Values: []float64{float64(s.Latency), s.EnergyNJ, s.AreaUM2, -s.Weighted},
			Tag:    i,
		})
	}
	for _, p := range pareto.Front(pts) {
		d.ParetoIdx = append(d.ParetoIdx, p.Tag)
	}
	d.Best = toPoint(res.Best.Latency, res.Best.EnergyNJ, res.Best.AreaUM2, res.Best.Weighted, true)
	d.BestAccs = res.Best.Accuracies

	// Lower bounds: smallest architecture per task across sampled designs.
	e := x.Evaluator()
	nets := make([]*dnn.Network, len(w.Tasks))
	for i, t := range w.Tasks {
		nets[i] = t.Space.MustDecode(t.Space.Smallest())
	}
	d.LowerAccs = e.Accuracies(nets)
	rng := stats.NewRNG(b.Seed ^ 0xf606)
	n := b.HWSamples / 4
	if n < 30 {
		n = 30
	}
	for s := 0; s < n; s++ {
		des := search.RandomDesign(cfg.HW, rng)
		m, err := e.HWEvalCtx(ctx, nets, des)
		if err != nil {
			return nil, err
		}
		d.LowerBounds = append(d.LowerBounds,
			toPoint(m.Latency, m.EnergyNJ, m.AreaUM2, w.Weighted(d.LowerAccs), m.Feasible))
	}
	_ = x.SaveCaches() // persist the warm tier; no-op without Budget.CacheDir
	return d, nil
}

// RenderFig1 draws the latency-energy projection with the spec corner.
func RenderFig1(wr io.Writer, d *Fig1Data) {
	var pts []export.Point
	for _, p := range d.NASASIC {
		pts = append(pts, export.Point{X: float64(p.Latency), Y: p.EnergyNJ, Series: "o"})
	}
	pts = append(pts, export.Point{X: float64(d.HWNAS.Latency), Y: d.HWNAS.EnergyNJ, Series: "^"})
	if d.Heuristic != nil {
		pts = append(pts, export.Point{X: float64(d.Heuristic.Latency), Y: d.Heuristic.EnergyNJ, Series: "#"})
	}
	if d.Optimal != nil {
		pts = append(pts, export.Point{X: float64(d.Optimal.Latency), Y: d.Optimal.EnergyNJ, Series: "*"})
	}
	pts = append(pts, export.Point{X: float64(d.Specs.LatencyCycles), Y: d.Specs.EnergyNJ, Series: "D"})
	export.Scatter(wr, "Fig.1: NAS/ASIC design space (o=NAS->ASIC ^=HW-NAS #=heuristic *=MC-optimal D=specs)",
		"latency/cycles", "energy/nJ", 72, 20, pts)
	fmt.Fprintf(wr, "NAS->ASIC accuracy: %s  HW-aware NAS: %s  heuristic: %s  MC optimal: %s\n",
		export.Pct(d.NASAcc), export.Pct(d.HWNASAcc), export.Pct(d.HeuristicAcc), export.Pct(d.OptimalAcc))
}

// RenderFig6 draws one Fig. 6 panel (latency-energy projection).
func RenderFig6(wr io.Writer, d *Fig6Data) {
	var pts []export.Point
	for _, p := range d.LowerBounds {
		pts = append(pts, export.Point{X: float64(p.Latency), Y: p.EnergyNJ, Series: "+"})
	}
	for _, p := range d.Explored {
		pts = append(pts, export.Point{X: float64(p.Latency), Y: p.EnergyNJ, Series: "o"})
	}
	sp := d.Workload.Specs
	pts = append(pts,
		export.Point{X: float64(sp.LatencyCycles), Y: sp.EnergyNJ, Series: "D"},
		export.Point{X: float64(d.Best.Latency), Y: d.Best.EnergyNJ, Series: "*"},
	)
	export.Scatter(wr, fmt.Sprintf("Fig.6 %s (o=explored +=lower-bound *=best D=specs)", d.Workload.Name),
		"latency/cycles", "energy/nJ", 72, 20, pts)
	for i, t := range d.Workload.Tasks {
		fmt.Fprintf(wr, "%s best %s: %s (lower bound %s)\n",
			t.Dataset, t.Dataset.Metric(), export.Pct(d.BestAccs[i]), export.Pct(d.LowerAccs[i]))
	}
	fmt.Fprintf(wr, "%d of %d explored solutions are Pareto-optimal in (L, E, A, -accuracy)\n",
		len(d.ParetoIdx), len(d.Explored))
}

// PointsCSV exports metric points for plotting.
func PointsCSV(points []MetricPoint, series string) ([]string, [][]string) {
	header := []string{"series", "latency_cycles", "energy_nj", "area_um2", "weighted", "feasible"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			series,
			fmt.Sprintf("%d", p.Latency),
			fmt.Sprintf("%.6g", p.EnergyNJ),
			fmt.Sprintf("%.6g", p.AreaUM2),
			fmt.Sprintf("%.4f", p.Weighted),
			fmt.Sprintf("%v", p.Feasible),
		})
	}
	return header, rows
}
