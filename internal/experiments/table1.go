package experiments

import (
	"context"
	"fmt"
	"io"

	"nasaic/internal/core"
	"nasaic/internal/export"
	"nasaic/internal/search"
	"nasaic/internal/workload"
)

// Table1 reproduces Table I: on W1 and W2, compare successive NAS→ASIC,
// ASIC→HW-NAS, and NASAIC under the unified design specs. The returned
// SearchStats aggregate the NASAIC runs' evaluator work (including
// hardware-evaluation cache effectiveness) across both workloads.
func Table1(ctx context.Context, b Budget) ([]ApproachResult, SearchStats, error) {
	var out []ApproachResult
	var stats SearchStats
	// With Budget.SharedMemo, one accuracy memo spans both workloads and
	// every approach (the memo key includes the dataset, so cross-workload
	// sharing is sound); the layer-cost memo is process-wide via the
	// evaluator configuration.
	acc := b.accMemo()
	for _, w := range []workload.Workload{workload.W1(), workload.W2()} {
		rows, st, err := table1Workload(ctx, w, b, acc)
		if err != nil {
			return nil, stats, fmt.Errorf("experiments: table 1 on %s: %w", w.Name, err)
		}
		out = append(out, rows...)
		stats.add(st)
	}
	return out, stats, nil
}

func table1Workload(ctx context.Context, w workload.Workload, b Budget, acc *core.AccuracyMemo) ([]ApproachResult, *core.Result, error) {
	cfg := b.config()
	cfg.AccMemo = acc

	nas, err := search.NASToASIC(ctx, w, cfg, b.NASSamples, b.HWSamples)
	if err != nil {
		return nil, nil, err
	}
	hwnas, err := search.ASICToHWNAS(ctx, w, cfg, b.MCRuns, b.NASSamples*3)
	if err != nil {
		return nil, nil, err
	}
	x, err := core.New(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := x.RunContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	// Snapshot the warm tier (a no-op without Budget.CacheDir) so the next
	// process replays this workload warm; save failures never fail the table.
	_ = x.SaveCaches()
	if res.Best == nil {
		return nil, nil, fmt.Errorf("NASAIC found no feasible solution in %d episodes", cfg.Episodes)
	}

	fromCandidate := func(name string, c search.Candidate) ApproachResult {
		ar := ApproachResult{
			Workload: w.Name, Approach: name, Hardware: c.Design.String(),
			Latency: c.Latency, EnergyNJ: c.EnergyNJ, AreaUM2: c.AreaUM2, Feasible: c.Feasible,
		}
		for i, t := range w.Tasks {
			ar.Rows = append(ar.Rows, DatasetRow{
				Dataset:  t.Dataset.String(),
				Metric:   t.Dataset.Metric(),
				Arch:     archString(t.Space, c.Choices[i]),
				Accuracy: c.Accuracies[i],
			})
		}
		return ar
	}

	nasaicRow := ApproachResult{
		Workload: w.Name, Approach: "NASAIC", Hardware: res.Best.Design.String(),
		Latency: res.Best.Latency, EnergyNJ: res.Best.EnergyNJ,
		AreaUM2: res.Best.AreaUM2, Feasible: res.Best.Feasible,
	}
	for i, t := range w.Tasks {
		nasaicRow.Rows = append(nasaicRow.Rows, DatasetRow{
			Dataset:  t.Dataset.String(),
			Metric:   t.Dataset.Metric(),
			Arch:     archString(t.Space, res.Best.ArchChoices[i]),
			Accuracy: res.Best.Accuracies[i],
		})
	}

	return []ApproachResult{
		fromCandidate("NAS->ASIC", nas),
		fromCandidate("ASIC->HW-NAS", hwnas),
		nasaicRow,
	}, res, nil
}

// RenderTable1 writes the Table I comparison in the paper's layout.
func RenderTable1(w io.Writer, rows []ApproachResult) {
	header := []string{"Work.", "Approach", "Hardware", "Dataset", "Accuracy", "L /cycles", "E /nJ", "A /um2", "Specs"}
	var cells [][]string
	for _, r := range rows {
		for i, d := range r.Rows {
			line := []string{"", "", "", d.Dataset, export.Pct(d.Accuracy), "", "", "", ""}
			if i == 0 {
				line[0] = r.Workload
				line[1] = r.Approach
				line[2] = r.Hardware
				line[5] = export.Sci(float64(r.Latency))
				line[6] = export.Sci(r.EnergyNJ)
				line[7] = export.Sci(r.AreaUM2)
				line[8] = export.Mark(r.Feasible)
			}
			cells = append(cells, line)
		}
	}
	export.Table(w, header, cells)
}

// Table1CSV returns header and rows for machine-readable export.
func Table1CSV(rows []ApproachResult) ([]string, [][]string) {
	header := []string{"workload", "approach", "hardware", "dataset", "arch", "accuracy", "latency_cycles", "energy_nj", "area_um2", "feasible"}
	var out [][]string
	for _, r := range rows {
		for _, d := range r.Rows {
			out = append(out, []string{
				r.Workload, r.Approach, r.Hardware, d.Dataset, d.Arch,
				fmt.Sprintf("%.4f", d.Accuracy),
				fmt.Sprintf("%d", r.Latency),
				fmt.Sprintf("%.6g", r.EnergyNJ),
				fmt.Sprintf("%.6g", r.AreaUM2),
				fmt.Sprintf("%v", r.Feasible),
			})
		}
	}
	return header, out
}
