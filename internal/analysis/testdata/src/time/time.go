// Package time is a hermetic fixture stub of the real time package.
package time

type Time struct{ wall uint64 }

type Duration int64

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Until(t Time) Duration        { return 0 }
func (t Time) Sub(u Time) Duration { return 0 }
