// Package http is a hermetic fixture stub of the real net/http package.
package http

type ResponseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

type Flusher interface{ Flush() }
