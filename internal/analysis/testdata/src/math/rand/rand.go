// Package rand is a hermetic fixture stub of the real math/rand package.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand        { return &Rand{src} }
func NewSource(seed int64) Source { return nil }

func Int() int                           { return 0 }
func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Perm(n int) []int                   { return nil }
func Shuffle(n int, swap func(i, j int)) {}

func (r *Rand) Int() int         { return 0 }
func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }
