// Package math is a hermetic fixture stub of the real math package.
package math

func FMA(x, y, z float64) float64 { return x*y + z }

func Sqrt(x float64) float64 { return 0 }
