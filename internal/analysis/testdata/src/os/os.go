// Package os is a hermetic fixture stub of the real os package.
package os

type File struct{ fd int }

func (f *File) Sync() error                 { return nil }
func (f *File) Write(p []byte) (int, error) { return len(p), nil }
