// Package sync is a hermetic fixture stub of the real sync package: the
// analyzers match it by path and method name only, and stubbing keeps
// fixture type-checking fast and offline.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
