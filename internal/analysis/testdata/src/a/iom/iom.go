// Package iom exercises the lockio analyzer: no logging or network/HTTP
// writes while an io-guarded mutex is held.
package iom

import (
	"log"
	"net/http"
	"sync"
)

type Server struct {
	mu   sync.Mutex //lint:guard io
	logf func(string, ...any)
	n    int
}

func (s *Server) LogUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	log.Printf("n=%d", s.n) // want `log.Printf while holding an io-guarded mutex`
}

func (s *Server) LogfFieldUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logf("n=%d", s.n) // want `logf call while holding an io-guarded mutex`
}

func (s *Server) HTTPWriteUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.WriteHeader(200)      // want `net/http WriteHeader while holding an io-guarded mutex`
	w.Write([]byte("busy")) // want `net/http Write while holding an io-guarded mutex`
}

// The fix shape: copy state under the lock, release, then do the IO.
func (s *Server) LogOutsideLock() {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	log.Printf("n=%d", n) // after Unlock: ok
}

func (s *Server) HTTPWriteOutsideLock(w http.ResponseWriter) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_ = n
	w.WriteHeader(200) // after Unlock: ok
}

// An allow directive (with reason) suppresses a deliberate exception.
func (s *Server) LogAllowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	log.Printf("n=%d", s.n) //lint:allow lockio startup banner, printed before the server is shared
}

// An unguarded mutex places no IO restrictions.
type Plain struct {
	mu sync.Mutex
	n  int
}

func (p *Plain) LogUnderPlainLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	log.Printf("n=%d", p.n) // p.mu carries no guard: ok
}
