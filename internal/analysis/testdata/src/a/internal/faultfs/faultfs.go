// Package faultfs is a fixture stand-in for the repository's
// internal/faultfs (matched by path suffix, like journal).
package faultfs

type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}
