// Package rl exercises the //lint:allow directive layer itself, inside a
// determinism-scoped package (path suffix internal/rl).
package rl

import "time"

func missingReason() {
	// A reason-less directive is rejected AND suppresses nothing: the
	// underlying diagnostic still fires.
	_ = time.Now() //lint:allow determinism // want `//lint:allow determinism is missing a reason` `wall-clock time.Now`
}

func unknownAnalyzer() {
	_ = time.Now() // want `wall-clock time.Now`
	_ = 0          //lint:allow tuborfish reasons do not save an unknown analyzer name // want `names unknown analyzer "tuborfish"`
}

func properlyAllowed() {
	_ = time.Now() //lint:allow determinism metrics timestamp, never feeds results
}

func unusedDirective() {
	x := 1 //lint:allow determinism nothing here actually trips the rule // want `unused //lint:allow determinism directive`
	_ = x
}
