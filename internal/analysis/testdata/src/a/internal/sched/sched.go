// Package sched exercises the determinism analyzer inside a
// result-affecting package (path suffix internal/sched).
package sched

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

type result struct {
	energy float64
	names  []string
}

func wallClock() {
	t := time.Now()   // want `wall-clock time.Now`
	_ = time.Since(t) // want `wall-clock time.Since`
	_ = time.Until(t) // want `wall-clock time.Until`
	_ = t.Sub(t)      // method on a Time value, not a clock read: ok
}

func allowedWallClock() {
	// A reasoned allow suppresses the diagnostic.
	t := time.Now() //lint:allow determinism heartbeat timestamp, never feeds results
	_ = t
}

func globalRand() int {
	_ = rand.Float64()  // want `global math/rand.Float64`
	return rand.Intn(8) // want `global math/rand.Intn`
}

func seededRand() float64 {
	r := rand.New(rand.NewSource(42)) // constructors over explicit seeds: ok
	return r.Float64()                // method on an explicit stream: ok
}

func fma(x, y, z float64) float64 {
	return math.FMA(x, y, z) // want `math.FMA rounds differently`
}

func mapOrderFeedsSlice(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) // want `append inside range over map`
	}
	return names
}

func mapCollectThenSort(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) // sorted immediately after the loop: ok
	}
	sort.Strings(names)
	return names
}

func mapOrderFeedsFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside range over map`
	}
	return sum
}

func mapIntSumOK(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integer addition is associative: ok
	}
	return sum
}

func mapOrderFeedsString(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want `string concatenation inside range over map`
	}
	return out
}

func mapOrderFeedsChannel(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

func mapOrderFeedsReturn(m map[string]result) (string, bool) {
	for k, v := range m {
		if v.energy > 1 {
			return k, true // want `return inside range over map`
		}
	}
	return "", false
}

func mapReturnConstOK(m map[string]int) bool {
	for _, v := range m {
		if v > 1 {
			return true // constant result: any matching entry gives the same answer
		}
	}
	return false
}

func sliceRangeOK(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slice iteration order is fixed: ok
	}
	return sum
}
