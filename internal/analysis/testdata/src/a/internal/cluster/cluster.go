// Package cluster exercises the ctxplumb analyzer inside a ctx-first
// package (path suffix internal/cluster).
package cluster

import "context"

func detachedBackground() context.Context {
	return context.Background() // want `context.Background severs the caller's cancellation chain`
}

func detachedTODO() context.Context {
	return context.TODO() // want `context.TODO severs the caller's cancellation chain`
}

func lifecycleRoot() context.Context {
	return context.Background() //lint:allow ctxplumb daemon lifecycle root, cancelled by Close
}

// DrainAll loops but never consults its context: it advertises
// cancellability it does not deliver.
func DrainAll(ctx context.Context, items []int) int { // want `exported DrainAll loops but never consults its context.Context parameter`
	sum := 0
	for _, v := range items {
		sum += v
	}
	return sum
}

// DrainPolling polls ctx.Err in its loop: ok.
func DrainPolling(ctx context.Context, items []int) (int, error) {
	sum := 0
	for _, v := range items {
		if err := ctx.Err(); err != nil {
			return sum, err
		}
		sum += v
	}
	return sum, nil
}

// DrainDelegating passes ctx to the per-item work: ok.
func DrainDelegating(ctx context.Context, items []int) int {
	sum := 0
	for _, v := range items {
		sum += work(ctx, v)
	}
	return sum
}

// NoLoop has no loop, so an unused ctx is not this analyzer's business.
func NoLoop(ctx context.Context, v int) int { return v + 1 }

// drainInternal is unexported: callers inside the package see the body.
func drainInternal(ctx context.Context, items []int) int {
	sum := 0
	for _, v := range items {
		sum += v
	}
	return sum
}

// DrainIgnored declares it ignores its context outright.
func DrainIgnored(_ context.Context, items []int) int { // want `exported DrainIgnored loops but never consults its context.Context parameter`
	sum := 0
	for _, v := range items {
		sum += v
	}
	return sum
}

func work(ctx context.Context, v int) int { return v }
