// Package journal is a fixture stand-in for the repository's
// internal/journal: the journallock analyzer matches any package whose
// import path ends in internal/journal, so this fixture scopes exactly
// like the real one.
package journal

type Record struct {
	Type string
	Job  string
}

type Journal struct{ state int }

func (j *Journal) Append(rec Record) error { return nil }
func (j *Journal) Close() error            { return nil }
func (j *Journal) Compact()                {}

// SegmentCount is a read-only accessor: safe under any lock.
func (j *Journal) SegmentCount() int { return 0 }
