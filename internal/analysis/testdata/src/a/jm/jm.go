// Package jm reconstructs PR 8's journal-under-mutex bug shape for the
// journallock analyzer: a manager whose hot mutex is annotated
// //lint:guard journal and whose Submit path appends to the journal (a
// group-commit fsync) while holding it.
package jm

import (
	"os"
	"sync"

	"a/internal/faultfs"
	"a/internal/journal"
)

type Manager struct {
	mu sync.Mutex //lint:guard journal
	jn *journal.Journal
	f  *os.File
	ff faultfs.File

	seq  int
	jobs map[string]int
}

// SubmitPR8Bug is the exact PR 8 bug: journaling (and its fsync) while
// holding the manager's hot mutex.
func (m *Manager) SubmitPR8Bug(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	m.jn.Append(journal.Record{Type: "submitted", Job: id}) // want `journal.Append while holding a journal-guarded mutex`
	m.jobs[id] = m.seq
}

// SubmitFixed is the PR 8 fix shape: reserve under the lock, journal
// outside it, publish under the lock again.
func (m *Manager) SubmitFixed(id string) {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	m.jn.Append(journal.Record{Type: "submitted", Job: id}) // outside the lock: ok
	m.mu.Lock()
	m.jobs[id] = seq
	m.mu.Unlock()
}

// journalEvent is a local wrapper around the journal: calls to it under
// the mutex are caught transitively.
func (m *Manager) journalEvent(id string) {
	m.jn.Append(journal.Record{Type: "event", Job: id})
}

func (m *Manager) EmitLocked(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalEvent(id) // want `journalEvent transitively appends to the journal`
}

// Syncs under the lock are the same class of bug, through any fsync path.
func (m *Manager) FlushLocked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.f.Sync()  // want `os.Sync while holding a journal-guarded mutex`
	m.ff.Sync() // want `faultfs.Sync while holding a journal-guarded mutex`
}

// Read-only journal accessors are safe under any lock.
func (m *Manager) SegmentsLocked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jn.SegmentCount()
}

// A goroutine spawned under the lock does not inherit it.
func (m *Manager) SpawnLocked(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go m.journalEvent(id) // the goroutine runs without the caller's lock: ok
}

// An unguarded mutex may journal freely: the invariant is per-annotation.
type PerJob struct {
	mu sync.Mutex
	jn *journal.Journal
}

func (j *PerJob) FinishLocked(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.jn.Append(journal.Record{Type: "finished", Job: id}) // j.mu carries no guard: ok
}

// An allow directive (with reason) suppresses a deliberate exception.
func (m *Manager) SettleAllowed(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jn.Append(journal.Record{Type: "settle", Job: id}) //lint:allow journallock constructor-time path, no contenders exist yet
}

// Guard annotations must sit on a named mutex field.
type Broken struct {
	count int //lint:guard journal // want `//lint:guard must annotate a sync.Mutex`
}

type BrokenClass struct {
	mu sync.Mutex //lint:guard fsync // want `names no valid class`
}
