// Package notresult holds the same shapes as the sched fixture in a
// package outside the result-affecting set: nothing may be reported.
package notresult

import (
	"math"
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalRand() float64 { return rand.Float64() }

func fma(x, y, z float64) float64 { return math.FMA(x, y, z) }

func mapOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
