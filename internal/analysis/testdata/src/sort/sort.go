// Package sort is a hermetic fixture stub of the real sort package.
package sort

func Ints(x []int)                          {}
func Strings(x []string)                    {}
func Slice(x any, less func(i, j int) bool) {}
