// Package log is a hermetic fixture stub of the real log package.
package log

func Printf(format string, v ...any) {}
func Println(v ...any)               {}
