package analysis_test

import (
	"testing"

	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

// TestLockIOFixtures proves the lockio analyzer rejects logging and
// HTTP writes under an //lint:guard io mutex and accepts the
// copy-then-release-then-write fix shape, unguarded mutexes and
// reasoned allows.
func TestLockIOFixtures(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/iom", analysis.LockIO)
}
