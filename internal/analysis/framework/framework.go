// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that nasaiclint's analyzers are
// written against. The container this repository builds in has no module
// proxy access, so the real x/tools module cannot be fetched; this package
// provides the same three-part contract on the standard library alone:
//
//   - Analyzer / Pass / Diagnostic types mirroring go/analysis (framework.go)
//   - a `go vet -vettool` unit-checker driver speaking cmd/go's vet.cfg
//     JSON protocol, plus a standalone mode that re-execs `go vet`
//     (unitchecker.go)
//   - an analysistest-style fixture harness driven by `// want "regexp"`
//     comments under testdata/src (analysistest.go)
//
// The deliberate omissions relative to x/tools are facts (cross-package
// analysis state) and SSA: every analyzer in this repository is intra-package
// and AST/type-info driven, so neither is needed. If the module proxy ever
// becomes reachable, porting the analyzers to the real go/analysis is a
// mechanical rename: the field and method names match.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> suppression directives.
	Name string

	// Doc is the analyzer's documentation: first line is a summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	// Fset positions every file in Files.
	Fset *token.FileSet

	// Files are the parsed source files of the package under analysis,
	// including any in-package _test.go files when driven by `go vet`
	// (diagnostics positioned in _test.go files are dropped by the driver;
	// tests are exempt from every rule in this suite).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for the package's syntax trees.
	TypesInfo *types.Info

	// PkgPath is the unit's import path with any test-variant decoration
	// (`pkg [pkg.test]`) trimmed. Path-scoped analyzers match suffixes of
	// this, so fixtures under testdata/src/nasaic/internal/... scope
	// exactly like the real tree.
	PkgPath string

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos using fmt formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// CalleeFunc resolves the static callee of call, or nil if the callee is not
// a declared function or method (conversions, function-typed variables,
// built-ins). Shared by every analyzer in the suite.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgSuffix reports whether pkgPath is path (exactly) or ends with
// "/"+path — e.g. IsPkgSuffix("nasaic/internal/sched", "internal/sched").
// Matching by suffix lets test fixtures under testdata/src reproduce the
// repository's package scoping without sharing its module path.
func IsPkgSuffix(pkgPath, path string) bool {
	if pkgPath == path {
		return true
	}
	n := len(pkgPath) - len(path)
	return n > 0 && pkgPath[n-1] == '/' && pkgPath[n:] == path
}

// InAnyPkg reports whether pkgPath suffix-matches any of paths.
func InAnyPkg(pkgPath string, paths []string) bool {
	for _, p := range paths {
		if IsPkgSuffix(pkgPath, p) {
			return true
		}
	}
	return false
}
