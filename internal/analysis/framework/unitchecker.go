package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Config is the JSON schema of the vet.cfg file cmd/go hands a -vettool for
// each analysis unit. Field names must match cmd/go/internal/work exactly;
// only the fields this driver consumes are declared.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built on this framework. It speaks
// the three invocation protocols cmd/go uses —
//
//	tool -V=full          print a version fingerprint for the build cache
//	tool -flags           print the tool's flags as JSON
//	tool <unit>.cfg       analyze one package unit (the core protocol)
//
// — and otherwise treats its arguments as package patterns, re-execing
// `go vet -vettool=<self> <patterns...>` so that `nasaiclint ./...` and
// `go vet -vettool=$(which nasaiclint) ./...` are the same run. cmd/go
// handles export data, caching and parallelism in both spellings.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			// The exact shape cmd/go's tool-ID parser expects from an
			// unversioned tool: "<name> version devel ... buildID=<x>".
			fmt.Printf("%s version devel comments-go-here buildID=02M4W8E11Y6VB=o7R1r3m3bRT+42G5XA7Pj71o\n", progname)
			return
		case a == "-flags":
			// No tool-specific flags; cmd/go wants a JSON flag inventory.
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help":
			fmt.Fprintf(os.Stderr, "usage: %s [package pattern...]\n\nAnalyzers:\n", progname)
			for _, an := range analyzers {
				doc := an.Doc
				if i := strings.IndexByte(doc, '\n'); i >= 0 {
					doc = doc[:i]
				}
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", an.Name, doc)
			}
			os.Exit(2)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := AnalyzeUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s\n", d)
			}
			os.Exit(2)
		}
		return
	}
	// Standalone mode: delegate orchestration to cmd/go.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", progname, err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: go vet: %v\n", progname, err)
		os.Exit(1)
	}
}

// AnalyzeUnit loads one vet.cfg unit, type-checks it from the export data
// cmd/go supplies, and runs the analyzers. It always writes the (empty)
// facts file cmd/go expects at cfg.VetxOutput — this suite uses no
// cross-package facts — and returns the surviving diagnostics.
func AnalyzeUnit(cfgFile string, analyzers []*Analyzer) ([]PositionedDiagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts output: %w", err)
		}
	}
	if cfg.VetxOnly {
		// This unit is a dependency analyzed only for facts; we keep none.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup receives a canonical package path; cmd/go provides the
		// export data location for every transitive dependency.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImp.Import(importPath)
		}),
		Sizes:     types.SizesFor(cfg.Compiler, goarch()),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i] // "pkg [pkg.test]" test-variant decoration
	}
	return Run(fset, files, pkg, info, pkgPath, analyzers)
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
