package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture is this framework's analysistest.Run: it loads the fixture
// package rooted at <testdata>/src/<pkgPath>, type-checks it (imports
// resolve against sibling fixture packages first — including tiny stubs of
// stdlib packages like sync or time, which keeps fixtures hermetic and fast
// — then against the real standard library compiled from source), runs the
// analyzers through the same driver `go vet` uses (so //lint:allow
// filtering and lintdirective problems behave identically), and compares
// the result against `// want "regexp"` comment expectations.
//
// Expectation syntax, matching x/tools analysistest:
//
//	code() // want "first regexp" "second regexp"
//
// Each quoted pattern must match a distinct diagnostic reported on that
// line; diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
func RunFixture(t *testing.T, testdata, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	ld := &fixtureLoader{
		root: filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loadedPkg{},
	}
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := Run(ld.fset, lp.files, lp.pkg, lp.info, pkgPath, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPath, err)
	}
	checkWants(t, ld.fset, lp.files, diags)
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loadedPkg
	// fallback lazily holds a source-mode importer for real stdlib packages
	// a fixture imports without stubbing.
	fallback types.Importer
}

func (ld *fixtureLoader) load(pkgPath string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[pkgPath]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := NewTypesInfo()
	tc := &types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := tc.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", pkgPath, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.pkgs[pkgPath] = lp
	return lp, nil
}

func (ld *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if ld.fallback == nil {
		ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.fallback.Import(path)
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants compares diagnostics against the fixtures' // want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []PositionedDiagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want marker may open the comment or trail other text
				// (e.g. after a //lint: directive under test).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					idx = strings.Index(c.Text, "//want ")
				}
				if idx < 0 {
					continue
				}
				body := c.Text[idx:]
				posn := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(body, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", posn, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, pattern: pat, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		hit := false
		for _, w := range wants {
			if w.matched || w.file != d.Posn.Filename || w.line != d.Posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}
