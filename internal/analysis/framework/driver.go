package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DirectiveName is the analyzer name under which problems with //lint:
// directives themselves (a missing reason, an unknown rule) are reported.
// Directive problems are never suppressible.
const DirectiveName = "lintdirective"

// A PositionedDiagnostic is a diagnostic resolved to a concrete file
// position, ready for printing or comparison against test expectations.
type PositionedDiagnostic struct {
	Posn     token.Position
	Analyzer string
	Message  string
}

func (d PositionedDiagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Posn, d.Message, d.Analyzer)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	posn     token.Position // position of the comment itself
	analyzer string
	used     bool
}

// Run applies every analyzer (plus the //lint:allow directive layer) to one
// type-checked package and returns the surviving diagnostics sorted by
// position. Suppression and exemption rules, in order:
//
//   - diagnostics positioned in _test.go files are dropped: tests may use
//     wall clocks, ad-hoc contexts and unordered iteration freely;
//   - a diagnostic on line L of file F is suppressed by a
//     `//lint:allow <analyzer> <reason>` comment on line L (trailing) or
//     line L-1 (preceding) of F naming its analyzer;
//   - an allow directive with no reason, or naming no known analyzer, is
//     itself a diagnostic (analyzer "lintdirective"), as is a directive
//     that suppressed nothing — stale allowlist entries fail the build.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) ([]PositionedDiagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []PositionedDiagnostic
	allows, dirProblems := parseAllows(fset, files, known)

	var raw []PositionedDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   pkgPath,
			report: func(d Diagnostic) {
				raw = append(raw, PositionedDiagnostic{
					Posn:     fset.Position(d.Pos),
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	for _, d := range raw {
		if strings.HasSuffix(d.Posn.Filename, "_test.go") {
			continue
		}
		if suppressed(allows, d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, dirProblems...)
	for _, dir := range allows {
		if !dir.used && !strings.HasSuffix(dir.posn.Filename, "_test.go") {
			out = append(out, PositionedDiagnostic{
				Posn:     dir.posn,
				Analyzer: DirectiveName,
				Message:  fmt.Sprintf("unused //lint:allow %s directive: no %s diagnostic on this or the next line", dir.analyzer, dir.analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Posn, out[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// parseAllows extracts every //lint:allow directive, reporting malformed
// ones (missing reason, unknown analyzer) as lintdirective diagnostics.
// Directives inside _test.go files are ignored entirely.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allowDirective, []PositionedDiagnostic) {
	var allows []*allowDirective
	var problems []PositionedDiagnostic
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				// Fixture `// want` markers embedded in the comment are
				// harness expectations, not part of the directive.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				posn := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					problems = append(problems, PositionedDiagnostic{
						Posn:     posn,
						Analyzer: DirectiveName,
						Message:  "malformed //lint:allow: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					names := make([]string, 0, len(known))
					for k := range known {
						names = append(names, k)
					}
					sort.Strings(names)
					problems = append(problems, PositionedDiagnostic{
						Posn:     posn,
						Analyzer: DirectiveName,
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)", name, strings.Join(names, ", ")),
					})
					continue
				}
				if len(fields) < 2 {
					problems = append(problems, PositionedDiagnostic{
						Posn:     posn,
						Analyzer: DirectiveName,
						Message:  fmt.Sprintf("//lint:allow %s is missing a reason: every suppression must say why it is safe", name),
					})
					continue
				}
				allows = append(allows, &allowDirective{posn: posn, analyzer: name})
			}
		}
	}
	return allows, problems
}

// suppressed reports (and marks) whether an allow directive covers d: same
// file, naming d's analyzer, on d's line (trailing comment) or the line
// immediately above (preceding comment).
func suppressed(allows []*allowDirective, d PositionedDiagnostic) bool {
	hit := false
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.posn.Filename != d.Posn.Filename {
			continue
		}
		if a.posn.Line == d.Posn.Line || a.posn.Line == d.Posn.Line-1 {
			a.used = true
			hit = true
		}
	}
	return hit
}
