package framework_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"nasaic/internal/analysis/framework"
)

func TestIsPkgSuffix(t *testing.T) {
	cases := []struct {
		pkgPath, path string
		want          bool
	}{
		{"nasaic/internal/sched", "internal/sched", true},
		{"internal/sched", "internal/sched", true},
		{"a/internal/sched", "internal/sched", true},
		{"nasaic/internal/sched_test", "internal/sched", false}, // x_test variant is a different package
		{"nasaic/internal/schedx", "internal/sched", false},
		{"nasaic/xinternal/sched", "internal/sched", false}, // path-boundary, not substring
		{"sched", "internal/sched", false},
		{"", "internal/sched", false},
	}
	for _, c := range cases {
		if got := framework.IsPkgSuffix(c.pkgPath, c.path); got != c.want {
			t.Errorf("IsPkgSuffix(%q, %q) = %v, want %v", c.pkgPath, c.path, got, c.want)
		}
	}
}

// TestVetToolProtocol is the end-to-end pin of the unitchecker protocol:
// it builds the real nasaiclint binary, points `go vet -vettool` at it
// over a scratch module containing a determinism violation in a package
// path ending internal/sched, and asserts the run fails with our
// diagnostic; adding a reasoned //lint:allow must make the same run pass.
// This is exactly how CI invokes the linter over the repository.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	lint := filepath.Join(t.TempDir(), "nasaiclint")
	build := exec.Command(goTool, "build", "-o", lint, "nasaic/cmd/nasaiclint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nasaiclint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	pkg := filepath.Join(mod, "internal", "sched")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(pkg, "sched.go"), `package sched

import "time"

func Stamp() time.Time { return time.Now() }
`)

	vet := func() (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+lint, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet()
	if err == nil {
		t.Fatalf("go vet unexpectedly clean over a wall-clock read in internal/sched:\n%s", out)
	}
	if !strings.Contains(out, "wall-clock time.Now") || !strings.Contains(out, "[determinism]") {
		t.Fatalf("go vet failed without the expected determinism diagnostic:\n%s", out)
	}

	writeFile(t, filepath.Join(pkg, "sched.go"), `package sched

import "time"

func Stamp() time.Time {
	return time.Now() //lint:allow determinism scratch fixture: timestamp feeds no results
}
`)
	if out, err := vet(); err != nil {
		t.Fatalf("go vet still failing after a reasoned allow: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
