package analysis_test

import (
	"testing"

	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

// TestJournalLockFixtures proves the journallock analyzer rejects the PR 8
// bug reconstruction — a journal append (group-commit fsync) while holding
// the //lint:guard journal manager mutex — along with transitive local
// wrappers and direct fsyncs, while accepting the PR 8 fix shape
// (reserve under lock → journal outside → publish), read-only journal
// accessors, goroutine spawns, unguarded mutexes and reasoned allows.
func TestJournalLockFixtures(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/jm", analysis.JournalLock)
}
