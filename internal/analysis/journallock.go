package analysis

import (
	"go/ast"
	"go/types"

	"nasaic/internal/analysis/framework"
)

// JournalLock enforces journal-before-publish hygiene: no journal append or
// fsync while a //lint:guard journal mutex is held.
var JournalLock = &framework.Analyzer{
	Name: "journallock",
	Doc: `forbid journal appends and fsyncs under a guarded mutex

Mutex fields annotated //lint:guard journal must never be held across a
call into internal/journal (whose Append group-commits an fsync), an
internal/faultfs or os.File Sync, or any function in the same package that
transitively makes such a call. Holding a hot lock across a group-commit
fsync serializes every reader behind disk latency — the exact PR 8 bug
(jobs.Manager.Submit journaling while holding Manager.mu). The analysis is
intra-package and source-order: Lock() opens a critical section, Unlock()
closes it, defer Unlock() extends it to the end of the function.`,
	Run: runJournalLock,
}

func runJournalLock(pass *framework.Pass) error {
	guards, problems := collectGuards(pass)
	for _, p := range problems {
		pass.Reportf(p.pos, "%s", p.msg)
	}
	if len(guards) == 0 {
		return nil
	}
	entering := journalEnteringFuncs(pass)
	for _, f := range pass.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			trackLocks(pass.TypesInfo, guards, body, func(call *ast.CallExpr, held guardClass) {
				if held&guardJournal == 0 {
					return
				}
				fn := framework.CalleeFunc(pass.TypesInfo, call)
				if fn == nil {
					return
				}
				switch {
				case isJournalEnteringBase(fn):
					pass.Reportf(call.Pos(), "%s.%s while holding a journal-guarded mutex: the journal group-commits an fsync, so every contender stalls behind disk latency; journal outside the lock, then publish", pkgName(fn), fn.Name())
				case entering[fn]:
					pass.Reportf(call.Pos(), "%s transitively appends to the journal and is called while holding a journal-guarded mutex; journal outside the lock, then publish", fn.Name())
				}
			})
		})
	}
	return nil
}

// isJournalEnteringBase reports whether fn directly enters a journal or
// fsync path: any function or method of internal/journal, a Sync on
// internal/faultfs files, or (*os.File).Sync.
func isJournalEnteringBase(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch {
	case framework.IsPkgSuffix(pkg.Path(), "internal/journal"):
		// Only the mutating/fsyncing entry points; read-only accessors
		// (States, Recovery, Terminal, ...) are safe under any lock.
		switch fn.Name() {
		case "Append", "Close", "Compact", "Open":
			return true
		}
		return false
	case framework.IsPkgSuffix(pkg.Path(), "internal/faultfs") && fn.Name() == "Sync":
		return true
	case pkg.Path() == "os" && fn.Name() == "Sync":
		return true
	}
	return false
}

// journalEnteringFuncs computes the package-local functions that
// (transitively, within this package) call into a journal/fsync path, by
// fixed point over the intra-package call graph.
func journalEnteringFuncs(pass *framework.Pass) map[*types.Func]bool {
	type declFunc struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []declFunc
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls = append(decls, declFunc{fn, fd.Body})
			}
		}
	}
	entering := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if entering[d.fn] {
				continue
			}
			found := false
			ast.Inspect(d.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if fn := framework.CalleeFunc(pass.TypesInfo, call); fn != nil {
					if isJournalEnteringBase(fn) || entering[fn] {
						found = true
					}
				}
				return !found
			})
			if found {
				entering[d.fn] = true
				changed = true
			}
		}
	}
	return entering
}

func pkgName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
