package analysis

import (
	"go/ast"
	"go/types"

	"nasaic/internal/analysis/framework"
)

// LockIO enforces IO hygiene under hot locks: no logging and no
// network/HTTP writes while a //lint:guard io mutex is held.
var LockIO = &framework.Analyzer{
	Name: "lockio",
	Doc: `forbid logging and network writes under a guarded mutex

Mutex fields annotated //lint:guard io must never be held across a log
call (package log, or any logf/Logf function value or method — the
daemon's injectable loggers), an http.ResponseWriter write/flush, or a
net.Conn write. Logging formats and writes to stderr under the lock;
HTTP/conn writes block on a remote peer — either stalls every contender.
Copy the state out under the lock, release it, then log or write.`,
	Run: runLockIO,
}

func runLockIO(pass *framework.Pass) error {
	guards, _ := collectGuards(pass) // guard-annotation problems are journallock's to report
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			trackLocks(pass.TypesInfo, guards, body, func(call *ast.CallExpr, held guardClass) {
				if held&guardIO == 0 {
					return
				}
				if msg := ioCallKind(pass.TypesInfo, call); msg != "" {
					pass.Reportf(call.Pos(), "%s while holding an io-guarded mutex stalls every contender; copy state under the lock, release it, then perform the IO", msg)
				}
			})
		})
	}
	return nil
}

// ioCallKind classifies call as an IO operation forbidden under an
// io-guarded mutex, returning a short description or "".
func ioCallKind(info *types.Info, call *ast.CallExpr) string {
	if fn := framework.CalleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "log" {
			return "log." + fn.Name()
		}
		if fn.Name() == "Logf" || fn.Name() == "logf" {
			return fn.Name() + " call"
		}
		if sig := fn.Signature(); sig.Recv() != nil {
			switch fn.Name() {
			case "Write", "WriteHeader", "WriteString", "Flush", "FlushError":
				if p := recvPkgPath(sig.Recv().Type()); p == "net/http" || p == "net" {
					return p + " " + fn.Name()
				}
			}
		}
		return ""
	}
	// Dynamic call through a function-typed value: the injectable logf
	// fields (jobs.Options.Logf and friends).
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil && isLogfValue(obj) {
			return obj.Name() + " call"
		}
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil && isLogfValue(obj) {
			return obj.Name() + " call"
		}
	}
	return ""
}

// isLogfValue reports whether obj is a function-typed variable or field
// named logf/Logf.
func isLogfValue(obj types.Object) bool {
	if obj.Name() != "logf" && obj.Name() != "Logf" {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}

// recvPkgPath returns the package path of the receiver's named type.
func recvPkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}
