// Package analysis is nasaiclint's invariant suite: custom static
// analyzers that machine-check, at build time, the correctness rules the
// repository's differential and determinism test suites pin dynamically.
// The analyzers run through the go/analysis-compatible framework in the
// framework subpackage (stdlib-only; see its doc for why x/tools is not
// imported) and ship in the cmd/nasaiclint multichecker, wired into CI as
// `go vet -vettool` before any test runs.
//
// # Rule catalogue
//
// Each rule encodes an invariant and names the dynamic suite that pins the
// same invariant after the fact; the analyzer rejects the violating code
// before it runs.
//
// determinism — results are bit-identical everywhere: across runs, hosts,
// worker counts, cache modes and restarts. Pinned dynamically by the
// determinism suites (internal/core TestDeterministicAcrossWorkers and
// friends), the solver reference differentials (internal/sched
// differential_test.go, bnb_reference_test.go), the batched-vs-sequential
// RL differentials (internal/rl, internal/nn) and the golden Table I/II
// renderings (internal/experiments). Statically, inside the
// result-affecting packages internal/{sched,core,nn,rl,maestro,stats} the
// analyzer forbids wall-clock reads (time.Now/Since/Until), global
// math/rand draws (process-wide stream ⇒ worker interleaving leaks into
// results; use stats.RNG), math.FMA (fused rounding differs across
// architectures), and range-over-map bodies whose effect depends on
// iteration order: appends not followed by a sort of the collected slice,
// channel sends, float/string compound accumulation, and returns derived
// from the iteration variables.
//
// journallock — journal-before-publish, but never journal-under-lock.
// Pinned dynamically by the jobs crash/recovery suites (internal/jobs
// restart and fault-injection tests) and the PR 8 regression test that
// stalls every fsync and asserts Get/List stay prompt while Submit blocks.
// Statically, a mutex field annotated `//lint:guard journal` must never be
// held across internal/journal's mutating entry points (Append
// group-commits an fsync), an internal/faultfs or os.File Sync, or a
// package-local function that transitively calls one. The exact PR 8 bug —
// jobs.Manager.Submit journaling while holding Manager.mu — is the
// analyzer's canonical failing fixture (testdata/src/a/jm).
//
// ctxplumb — cancellation is end-to-end: every public operation in
// internal/{core,sched,jobs,cluster} threads its caller's context. Pinned
// dynamically by the cancellation suites (sched ctx tests, core
// mid-run/deadline/goroutine-leak checks, facade cancel tests, jobs/cluster
// cancel-and-stream tests). Statically the analyzer flags
// context.Background()/context.TODO() outside tests (deliberate roots —
// non-ctx compat shims, daemon lifecycle contexts, detached cleanup — carry
// reasoned //lint:allow directives) and exported loop-bearing functions
// that accept a context but never consult it.
//
// lockio — no IO under hot locks. Pinned dynamically by the SSE
// stalled-reader teardown tests and the multi-tenant soak's
// time-to-running bounds (a log or network write under jobs.Manager.mu
// would stretch them). Statically, a mutex annotated `//lint:guard io`
// must never be held across package log calls, logf/Logf function values
// or methods (the daemon's injectable loggers), http.ResponseWriter writes
// or net.Conn writes.
//
// # Suppression
//
// A diagnostic is suppressed by a same-line or preceding-line comment
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory, the analyzer name must exist, and a directive
// that suppresses nothing is itself an error ("lintdirective") — the
// allowlist cannot rot silently. Tests (_test.go files) are exempt from
// every rule.
//
// # Running
//
//	go build -o bin/nasaiclint ./cmd/nasaiclint
//	go vet -vettool=bin/nasaiclint ./...
//
// Fixtures under testdata/src/... prove every rule fires on its known bug
// shapes and stays quiet on the sanctioned patterns; see the *_test.go
// files for the catalogue of shapes.
package analysis
