package analysis_test

import (
	"testing"

	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

// TestDirectiveLayer proves the //lint:allow machinery itself: a directive
// without a reason is rejected, an unknown analyzer name is rejected, a
// well-formed directive suppresses exactly its diagnostic, and a directive
// that suppresses nothing is flagged as stale.
func TestDirectiveLayer(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/internal/rl", analysis.Determinism)
}
