package analysis

import (
	"go/ast"
	"go/types"

	"nasaic/internal/analysis/framework"
)

// ctxPkgs are the packages whose public operations are context-first: every
// long-running path must be cancellable end to end.
var ctxPkgs = []string{
	"internal/core",
	"internal/sched",
	"internal/jobs",
	"internal/cluster",
}

// CtxPlumb enforces the context-plumbing discipline in ctx-first packages.
var CtxPlumb = &framework.Analyzer{
	Name: "ctxplumb",
	Doc: `enforce context plumbing in ctx-first packages

Inside ` + "`internal/{core,sched,jobs,cluster}`" + ` (tests exempt):
context.Background() and context.TODO() sever the caller's cancellation
chain and are flagged — thread the caller's ctx, or annotate deliberate
roots (compat shims for non-ctx APIs, daemon lifecycle contexts) with
//lint:allow ctxplumb <reason>. Exported loop-bearing functions that
accept a context.Context but never consult it (no Done/Err poll, never
passed on) are flagged too: they advertise cancellability they don't
deliver.`,
	Run: runCtxPlumb,
}

func runCtxPlumb(pass *framework.Pass) error {
	if !framework.InAnyPkg(pass.PkgPath, ctxPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fn := framework.CalleeFunc(pass.TypesInfo, call)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s severs the caller's cancellation chain in a ctx-first package: thread the caller's ctx or //lint:allow ctxplumb <reason>", fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkCtxLoop(pass, fd)
			}
		}
	}
	return nil
}

// checkCtxLoop flags exported loop-bearing functions whose context
// parameter is never consulted.
func checkCtxLoop(pass *framework.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Body == nil || fd.Type.Params == nil {
		return
	}

	// Collect context.Context parameters.
	var ctxObjs []types.Object
	unnamedCtx := false
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			unnamedCtx = true
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				unnamedCtx = true
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				ctxObjs = append(ctxObjs, obj)
			}
		}
	}
	if len(ctxObjs) == 0 && !unnamedCtx {
		return
	}

	hasLoop := false
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				for _, c := range ctxObjs {
					if obj == c {
						used = true
					}
				}
			}
		}
		return true
	})
	if hasLoop && !used {
		pass.Reportf(fd.Name.Pos(), "exported %s loops but never consults its context.Context parameter: poll ctx.Err/Done in the loop or pass ctx to the work it calls", fd.Name.Name)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
