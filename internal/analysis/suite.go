package analysis

import "nasaic/internal/analysis/framework"

// Suite returns every nasaiclint analyzer, in reporting order. The
// framework driver adds the //lint:allow directive layer (analyzer name
// "lintdirective") on top: missing reasons, unknown analyzer names and
// unused suppressions are diagnostics in their own right.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		Determinism,
		JournalLock,
		CtxPlumb,
		LockIO,
	}
}
